// The benchmark harness: one benchmark per reproduced figure/experiment
// (see EXPERIMENTS.md for the mapping and the recorded results). The paper
// is an impossibility result, so the quantities of interest are the sizes
// and costs of the constructions — steps of α, messages per broadcast,
// pipeline latency — rather than throughput records; custom metrics
// (steps/op, sends/broadcast, ...) report the construction shapes.
package nobroadcast_test

import (
	"fmt"
	"io"
	"testing"
	"time"

	"nobroadcast/internal/adversary"
	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/core"
	"nobroadcast/internal/model"
	"nobroadcast/internal/net"
	"nobroadcast/internal/obs"
	"nobroadcast/internal/sched"
	"nobroadcast/internal/sharedmem"
	"nobroadcast/internal/spec"
	"nobroadcast/internal/trace"
)

// BenchmarkFigure1 (F1): the adversarial construction of Figure 1 —
// k = 3, N = 2 — including the mechanical Lemma 1-8/10 verification.
func BenchmarkFigure1(b *testing.B) {
	c, err := broadcast.Lookup("first-k")
	if err != nil {
		b.Fatal(err)
	}
	var steps int
	for i := 0; i < b.N; i++ {
		res, err := adversary.Run(adversary.Options{K: 3, N: 2, NewAutomaton: c.NewAutomaton})
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := res.Verify(); !ok {
			b.Fatal("lemma verification failed")
		}
		steps = res.Alpha.X.Len()
	}
	b.ReportMetric(float64(steps), "alpha-steps")
}

// BenchmarkNSoloConstruction (E1): Algorithm 1 across the (k, N) grid for
// a representative implementation; alpha-steps shows how the construction
// grows (p_k's resets make it superlinear in N for agreement-using
// implementations).
func BenchmarkNSoloConstruction(b *testing.B) {
	c, err := broadcast.Lookup("kbo")
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{2, 3, 4} {
		for _, n := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("k=%d/N=%d", k, n), func(b *testing.B) {
				var steps int
				for i := 0; i < b.N; i++ {
					res, err := adversary.Run(adversary.Options{K: k, N: n, NewAutomaton: c.NewAutomaton})
					if err != nil {
						b.Fatal(err)
					}
					steps = res.Alpha.X.Len()
				}
				b.ReportMetric(float64(steps), "alpha-steps")
			})
		}
	}
}

// BenchmarkLemmaVerification (E2): the mechanical Lemma 1-8/10 checks on a
// fixed construction.
func BenchmarkLemmaVerification(b *testing.B) {
	c, err := broadcast.Lookup("kbo")
	if err != nil {
		b.Fatal(err)
	}
	res, err := adversary.Run(adversary.Options{K: 3, N: 4, NewAutomaton: c.NewAutomaton})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := res.Verify(); !ok {
			b.Fatal("verification failed")
		}
	}
}

// BenchmarkImpossibility (E3): the full Theorem 1 pipeline per candidate.
func BenchmarkImpossibility(b *testing.B) {
	for _, name := range []string{"first-k", "k-stepped", "sa-tagged", "kbo"} {
		name := name
		b.Run(name, func(b *testing.B) {
			c, err := broadcast.Lookup(name)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := core.RunImpossibility(c, 2, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// adversarialBeta builds a reusable admissible trace for the symmetry
// benchmarks.
func adversarialBeta(b *testing.B, name string, k, n int) *trace.Trace {
	b.Helper()
	c, err := broadcast.Lookup(name)
	if err != nil {
		b.Fatal(err)
	}
	res, err := adversary.Run(adversary.Options{K: k, N: n, NewAutomaton: c.NewAutomaton})
	if err != nil {
		b.Fatal(err)
	}
	return res.Beta
}

// BenchmarkSymmetryCheckers (E4/E5/E11): the compositionality and
// content-neutrality testers on an adversarial trace.
func BenchmarkSymmetryCheckers(b *testing.B) {
	tr := adversarialBeta(b, "kbo", 2, 2)
	s := spec.KBOOrder(2)
	b.Run("compositional", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep, err := spec.CheckCompositional(s, tr, spec.SymmetryOptions{Seed: 1})
			if err != nil || !rep.Holds {
				b.Fatalf("rep=%+v err=%v", rep, err)
			}
		}
	})
	b.Run("content-neutral", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep, err := spec.CheckContentNeutral(s, tr, spec.SymmetryOptions{Seed: 1})
			if err != nil || !rep.Holds {
				b.Fatalf("rep=%+v err=%v", rep, err)
			}
		}
	})
}

// BenchmarkFirstKSolvesKSA (E6): one full k-SA resolution (5 processes,
// k = 2) over the First-k broadcast on the deterministic runtime, with
// the decision histogram shape reported as distinct-decisions.
func BenchmarkFirstKSolvesKSA(b *testing.B) {
	c, err := broadcast.Lookup("first-k")
	if err != nil {
		b.Fatal(err)
	}
	inputs := []model.Value{"v1", "v2", "v3", "v4", "v5"}
	var distinct int
	for i := 0; i < b.N; i++ {
		rt, err := sched.New(sched.Config{
			N: 5, NewAutomaton: c.NewAutomaton, Oracle: c.OracleFor(2),
			NewApp: broadcast.NewFirstDecider, Inputs: inputs,
		})
		if err != nil {
			b.Fatal(err)
		}
		tr, err := rt.RunRandom(sched.RunOptions{Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		ix := trace.BuildIndex(tr)
		distinct = len(ix.DistinctDecisions(sched.DefaultAppObject))
		if distinct > 2 {
			b.Fatalf("agreement violated: %d distinct", distinct)
		}
	}
	b.ReportMetric(float64(distinct), "distinct-decisions")
}

// BenchmarkTotalOrderConsensus (E7): one consensus resolution over Total
// Order broadcast, n = 4.
func BenchmarkTotalOrderConsensus(b *testing.B) {
	c, err := broadcast.Lookup("total-order")
	if err != nil {
		b.Fatal(err)
	}
	inputs := []model.Value{"v1", "v2", "v3", "v4"}
	for i := 0; i < b.N; i++ {
		rt, err := sched.New(sched.Config{
			N: 4, NewAutomaton: c.NewAutomaton, Oracle: c.OracleFor(1),
			NewApp: broadcast.NewFirstDecider, Inputs: inputs,
		})
		if err != nil {
			b.Fatal(err)
		}
		tr, err := rt.RunRandom(sched.RunOptions{Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		ix := trace.BuildIndex(tr)
		if len(ix.DistinctDecisions(sched.DefaultAppObject)) != 1 {
			b.Fatal("consensus disagreement")
		}
	}
}

// BenchmarkSharedMemKSC (E9): the k-SC-from-k-SA construction in shared
// memory, n = 5, k = 3.
func BenchmarkSharedMemKSC(b *testing.B) {
	inputs := []sharedmem.Value{"a", "b", "c", "d", "e"}
	for i := 0; i < b.N; i++ {
		outs, err := sharedmem.RunKSC(3, inputs, sharedmem.RunOptions{Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if err := sharedmem.CheckKSC(3, inputs, outs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKBORefutation (E10): adversarial run + fair completion + k-BO
// ordering refutation.
func BenchmarkKBORefutation(b *testing.B) {
	c, err := broadcast.Lookup("kbo")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := adversary.Run(adversary.Options{K: 2, N: 1, NewAutomaton: c.NewAutomaton})
		if err != nil {
			b.Fatal(err)
		}
		ext, err := res.Extend(0)
		if err != nil {
			b.Fatal(err)
		}
		if v := spec.KBOOrder(2).Check(ext); v == nil {
			b.Fatal("refutation failed")
		}
	}
}

// BenchmarkBroadcastCost (E12): per-broadcast message and step cost of
// each candidate on the deterministic runtime — who pays what for its
// ordering guarantee.
func BenchmarkBroadcastCost(b *testing.B) {
	const n, k, perProc = 4, 2, 4
	for _, c := range broadcast.AllCandidates() {
		c := c
		b.Run(c.Name, func(b *testing.B) {
			var sends, steps, broadcasts int
			for i := 0; i < b.N; i++ {
				rt, err := sched.New(sched.Config{N: n, NewAutomaton: c.NewAutomaton, Oracle: c.OracleFor(k)})
				if err != nil {
					b.Fatal(err)
				}
				var reqs []sched.BroadcastReq
				for p := 1; p <= n; p++ {
					for j := 0; j < perProc; j++ {
						reqs = append(reqs, sched.BroadcastReq{Proc: model.ProcID(p), Payload: model.Payload(fmt.Sprintf("b%d-%d", p, j))})
					}
				}
				tr, err := rt.RunFair(sched.RunOptions{Broadcasts: reqs})
				if err != nil {
					b.Fatal(err)
				}
				sends, steps, broadcasts = 0, tr.X.Len(), n*perProc
				for _, s := range tr.X.Steps {
					if s.Kind == model.KindSend {
						sends++
					}
				}
			}
			b.ReportMetric(float64(sends)/float64(broadcasts), "sends/broadcast")
			b.ReportMetric(float64(steps)/float64(broadcasts), "steps/broadcast")
		})
	}
}

// BenchmarkConcurrentThroughput (E12): end-to-end broadcast latency on the
// concurrent goroutine runtime (broadcast until delivered everywhere).
func BenchmarkConcurrentThroughput(b *testing.B) {
	for _, name := range []string{"send-to-all", "reliable", "causal"} {
		name := name
		b.Run(name, func(b *testing.B) {
			c, err := broadcast.Lookup(name)
			if err != nil {
				b.Fatal(err)
			}
			const n = 4
			nw, err := net.New(net.Config{N: n, NewAutomaton: c.NewAutomaton, K: 2})
			if err != nil {
				b.Fatal(err)
			}
			defer nw.Stop()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := nw.Broadcast(model.ProcID(i%n+1), model.Payload(fmt.Sprintf("t%d", i))); err != nil {
					b.Fatal(err)
				}
			}
			want := int64(b.N)
			if !nw.WaitUntil(func() bool {
				for p := 1; p <= n; p++ {
					if nw.Delivered(model.ProcID(p)) < want {
						return false
					}
				}
				return true
			}, 2*time.Minute) {
				b.Fatal("deliveries incomplete")
			}
		})
	}
}

// BenchmarkSpecChecking: raw spec-checking cost on a sizable trace (the
// k-BO clique search is the most expensive checker).
func BenchmarkSpecChecking(b *testing.B) {
	c, err := broadcast.Lookup("total-order")
	if err != nil {
		b.Fatal(err)
	}
	rt, err := sched.New(sched.Config{N: 4, NewAutomaton: c.NewAutomaton, Oracle: c.OracleFor(1)})
	if err != nil {
		b.Fatal(err)
	}
	var reqs []sched.BroadcastReq
	for p := 1; p <= 4; p++ {
		for j := 0; j < 8; j++ {
			reqs = append(reqs, sched.BroadcastReq{Proc: model.ProcID(p), Payload: model.Payload(fmt.Sprintf("s%d-%d", p, j))})
		}
	}
	tr, err := rt.RunFair(sched.RunOptions{Broadcasts: reqs})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(tr.X.Len()), "trace-steps")
	for _, s := range []spec.Spec{spec.BasicBroadcast(), spec.TotalOrder(), spec.KBOOrder(2), spec.Channels()} {
		s := s
		b.Run(s.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if v := s.Check(tr); v != nil {
					b.Fatal(v)
				}
			}
		})
	}
}

// BenchmarkSchedObs (E13): scheduler throughput with observability off
// (nil registry — the default for every library call), on (registry
// attached, no event sink), and streaming (JSONL events to io.Discard).
// The off/on delta is the true cost of the instrumentation hooks on the
// deterministic runtime's hot path.
func BenchmarkSchedObs(b *testing.B) {
	c, err := broadcast.Lookup("reliable")
	if err != nil {
		b.Fatal(err)
	}
	const n, perProc = 4, 4
	runOnce := func(b *testing.B, reg *obs.Registry) {
		rt, err := sched.New(sched.Config{N: n, NewAutomaton: c.NewAutomaton, Oracle: c.OracleFor(2), Obs: reg})
		if err != nil {
			b.Fatal(err)
		}
		var reqs []sched.BroadcastReq
		for p := 1; p <= n; p++ {
			for j := 0; j < perProc; j++ {
				reqs = append(reqs, sched.BroadcastReq{Proc: model.ProcID(p), Payload: model.Payload(fmt.Sprintf("b%d-%d", p, j))})
			}
		}
		tr, err := rt.RunFair(sched.RunOptions{Broadcasts: reqs})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(tr.X.Len()), "steps/run")
	}
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runOnce(b, nil)
		}
	})
	b.Run("on", func(b *testing.B) {
		reg := obs.New()
		for i := 0; i < b.N; i++ {
			runOnce(b, reg)
		}
	})
	b.Run("streaming", func(b *testing.B) {
		reg := obs.New()
		reg.AttachEvents(obs.NewEventLog(io.Discard))
		for i := 0; i < b.N; i++ {
			runOnce(b, reg)
		}
	})
}
