// Ablation benchmarks for the design decisions called out in DESIGN.md §4:
// exhaustive versus sampled subset enumeration in the compositionality
// tester, the cost of the k-BO clique search as conflict density grows,
// snapshot retry cost under write contention, and the deterministic-versus-
// concurrent runtime overhead on identical workloads.
package nobroadcast_test

import (
	"fmt"
	"testing"

	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/model"
	"nobroadcast/internal/net"
	"nobroadcast/internal/sched"
	"nobroadcast/internal/sharedmem"
	"nobroadcast/internal/spec"
	"nobroadcast/internal/trace"
	"nobroadcast/internal/workload"
)

// BenchmarkAblationSubsetEnumeration compares the compositionality
// tester's exhaustive mode (2^m restrictions) against structured+random
// sampling on the same trace. Exhaustive is complete but exponential;
// sampling is the default above 12 messages — this quantifies the trade.
func BenchmarkAblationSubsetEnumeration(b *testing.B) {
	c, err := broadcast.Lookup("total-order")
	if err != nil {
		b.Fatal(err)
	}
	rt, err := sched.New(sched.Config{N: 3, NewAutomaton: c.NewAutomaton, Oracle: c.OracleFor(1)})
	if err != nil {
		b.Fatal(err)
	}
	reqs, err := workload.Generate(workload.Config{N: 3, Messages: 10, Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	tr, err := rt.RunFair(sched.RunOptions{Broadcasts: reqs})
	if err != nil {
		b.Fatal(err)
	}
	s := spec.TotalOrder()
	b.Run("exhaustive", func(b *testing.B) {
		var checked int
		for i := 0; i < b.N; i++ {
			rep, err := spec.CheckCompositional(s, tr, spec.SymmetryOptions{MaxExhaustiveMsgs: 10})
			if err != nil || !rep.Holds {
				b.Fatalf("%+v %v", rep, err)
			}
			checked = rep.Checked
		}
		b.ReportMetric(float64(checked), "restrictions")
	})
	b.Run("sampled", func(b *testing.B) {
		var checked int
		for i := 0; i < b.N; i++ {
			rep, err := spec.CheckCompositional(s, tr, spec.SymmetryOptions{MaxExhaustiveMsgs: 1, RandomSubsets: 32, Seed: 1})
			if err != nil || !rep.Holds {
				b.Fatalf("%+v %v", rep, err)
			}
			checked = rep.Checked
		}
		b.ReportMetric(float64(checked), "restrictions")
	})
}

// BenchmarkAblationCliqueSearch measures the k-BO checker — whose core is
// an exact (k+1)-clique search on the conflict graph — as the number of
// pairwise-conflicting messages grows. Conflict-free traces are cheap;
// dense all-own-first traces are the worst case.
func BenchmarkAblationCliqueSearch(b *testing.B) {
	for _, msgs := range []int{4, 8, 16, 32} {
		msgs := msgs
		b.Run(fmt.Sprintf("dense-msgs=%d", msgs), func(b *testing.B) {
			// Every process broadcasts msgs/n messages and delivers all
			// its own first: maximal cross-sender conflicts.
			const n = 4
			x := model.NewExecution(n)
			id := model.MsgID(1)
			owned := make(map[model.ProcID][]model.MsgID)
			for p := 1; p <= n; p++ {
				for j := 0; j < msgs/n; j++ {
					pid := model.ProcID(p)
					x.Append(
						model.Step{Proc: pid, Kind: model.KindBroadcastInvoke, Msg: id, Payload: model.Payload(fmt.Sprintf("d%d", id))},
						model.Step{Proc: pid, Kind: model.KindBroadcastReturn, Msg: id},
					)
					owned[pid] = append(owned[pid], id)
					id++
				}
			}
			for p := 1; p <= n; p++ {
				pid := model.ProcID(p)
				for _, m := range owned[pid] {
					x.Append(model.Step{Proc: pid, Kind: model.KindDeliver, Peer: pid, Msg: m, Payload: x.PayloadOf(m)})
				}
				for q := 1; q <= n; q++ {
					if q == p {
						continue
					}
					for _, m := range owned[model.ProcID(q)] {
						x.Append(model.Step{Proc: pid, Kind: model.KindDeliver, Peer: model.ProcID(q), Msg: m, Payload: x.PayloadOf(m)})
					}
				}
			}
			tr := trace.New(x)
			// k = n-1 = 3: a 4-clique exists (one message per process).
			s := spec.KBOOrder(n - 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if v := s.Check(tr); v == nil {
					b.Fatal("expected violation on the dense trace")
				}
			}
		})
	}
}

// BenchmarkAblationSnapshotContention measures the double-collect snapshot
// under increasing writer counts: each retry is a full collect, and
// contention multiplies retries (the price of the honest non-atomic
// snapshot; an oracle snapshot would flatten this line).
func BenchmarkAblationSnapshotContention(b *testing.B) {
	for _, writers := range []int{1, 2, 4, 8} {
		writers := writers
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n := writers + 1
				programs := make([]sharedmem.Program, n)
				for w := 0; w < writers; w++ {
					w := w
					programs[w] = func(env *sharedmem.Env) {
						for j := 0; j < 6; j++ {
							env.Write("c", sharedmem.Value(fmt.Sprintf("w%d-%d", w, j)))
						}
					}
				}
				programs[n-1] = func(env *sharedmem.Env) {
					for j := 0; j < 4; j++ {
						env.Snapshot("c")
					}
				}
				if _, err := sharedmem.Run(1, programs, sharedmem.RunOptions{Seed: uint64(i + 1)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRuntimes runs the same reliable-broadcast workload on
// the deterministic step-driven runtime and the concurrent goroutine
// runtime: the cost of full schedule control versus real concurrency.
func BenchmarkAblationRuntimes(b *testing.B) {
	const n, msgs = 4, 12
	reqs, err := workload.Generate(workload.Config{N: n, Messages: msgs, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("deterministic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rt, err := sched.New(sched.Config{N: n, NewAutomaton: broadcast.NewReliable})
			if err != nil {
				b.Fatal(err)
			}
			tr, err := rt.RunFair(sched.RunOptions{Broadcasts: reqs})
			if err != nil || !tr.Complete {
				b.Fatalf("err=%v complete=%v", err, tr != nil && tr.Complete)
			}
		}
	})
	b.Run("concurrent", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nw, err := net.New(net.Config{N: n, NewAutomaton: broadcast.NewReliable})
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range reqs {
				if _, err := nw.Broadcast(r.Proc, r.Payload); err != nil {
					b.Fatal(err)
				}
			}
			ok := nw.WaitUntil(func() bool {
				for p := 1; p <= n; p++ {
					if nw.Delivered(model.ProcID(p)) < int64(msgs) {
						return false
					}
				}
				return true
			}, 0)
			for !ok {
				ok = nw.WaitUntil(func() bool {
					for p := 1; p <= n; p++ {
						if nw.Delivered(model.ProcID(p)) < int64(msgs) {
							return false
						}
					}
					return true
				}, 1e9)
			}
			nw.Stop()
		}
	})
}
