# Convenience targets for the reproduction artifact.
.PHONY: all test race bench figure1 impossibility outputs
all: test
test:
	go build ./... && go vet ./... && go test ./...
race:
	go test -race ./internal/net ./internal/sharedmem ./internal/sched
bench:
	go test -bench=. -benchmem ./...
figure1:
	go run ./examples/figure1
impossibility:
	go run ./cmd/impossibility -all -k 2 -v
outputs:
	go test ./... 2>&1 | tee test_output.txt
	go test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt
