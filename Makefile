# Convenience targets for the reproduction artifact.
.PHONY: all test race bench bench-all figure1 impossibility outputs metrics-smoke
all: test
test:
	go build ./... && go vet ./... && go test ./...
race:
	go test -race ./internal/net ./internal/sharedmem ./internal/sched ./internal/conformance
stress:
	go test -race -count=3 -run 'Reentrant|Concurrent|Stress|Stop|Reorder' ./internal/net
# bench: the PR 3 headline comparison — one streaming pass of the online
# checkers versus checkpointed re-runs of the batch reference predicates on
# the same 100k-step trace — recorded as BENCH_PR3.json. -benchtime 1x
# because one batch iteration already takes minutes (the batch causal check
# is quadratic; that is the point).
bench:
	go test -run '^$$' -bench 'BenchmarkSpec(Online|Batch)$$' -benchtime 1x ./internal/spec | tee /tmp/bench_pr3.txt
	awk '/^BenchmarkSpecOnline/ { online=$$3; steps=$$5 } \
	  /^BenchmarkSpecBatch/ { batch=$$3 } \
	  END { if (!online || !batch) exit 1; \
	    printf "{\n  \"benchmark\": \"online spec checkers vs repeated batch checking\",\n  \"trace_steps\": %.0f,\n  \"specs\": [\"FIFO-Order\", \"Causal-Order\"],\n  \"batch_checkpoints\": 4,\n  \"online_ns_per_op\": %.0f,\n  \"batch_ns_per_op\": %.0f,\n  \"speedup\": %.1f\n}\n", steps, online, batch, batch/online }' \
	  /tmp/bench_pr3.txt > BENCH_PR3.json
	cat BENCH_PR3.json
bench-all:
	go test -bench=. -benchmem ./...
figure1:
	go run ./examples/figure1
impossibility:
	go run ./cmd/impossibility -all -k 2 -v
# metrics-smoke: the observability layer end to end — run the pipeline with
# -metrics and -events, check the phase spans appear and the event log is
# valid JSONL (one object per line, each with ts and event keys).
metrics-smoke:
	go run ./cmd/impossibility -all -k 2 -metrics -events /tmp/nobroadcast-events.jsonl > /tmp/nobroadcast-metrics.txt
	grep -q 'pipeline.adversary' /tmp/nobroadcast-metrics.txt
	grep -q 'pipeline.nsolo-check' /tmp/nobroadcast-metrics.txt
	grep -q 'pipeline.restriction' /tmp/nobroadcast-metrics.txt
	grep -q 'pipeline.renaming' /tmp/nobroadcast-metrics.txt
	grep -q 'pipeline.replay' /tmp/nobroadcast-metrics.txt
	grep -q 'sched.steps' /tmp/nobroadcast-metrics.txt
	awk 'NF && ($$0 !~ /^\{"ts":".*","event":".*\}$$/) { bad=1 } END { exit bad }' /tmp/nobroadcast-events.jsonl
	@echo "metrics smoke test passed"
outputs:
	go test ./... 2>&1 | tee test_output.txt
	go test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt
