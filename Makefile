# Convenience targets for the reproduction artifact.
.PHONY: all test race bench bench-pr4 bench-pr6 bench-pr7 bench-pr8 bench-pr9 bench-all fuzz-smoke figure1 impossibility outputs metrics-smoke serve-smoke load-smoke fabric-smoke socket-smoke profile-feed
all: test
test:
	go build ./... && go vet ./... && go test ./...
race:
	go test -race ./internal/net ./internal/nettcp ./internal/sharedmem ./internal/sched ./internal/conformance ./internal/sweep ./internal/explore ./internal/fabric ./internal/serve
stress:
	go test -race -count=3 -run 'Reentrant|Concurrent|Stress|Stop|Reorder' ./internal/net

# Benchmark artifacts follow one pattern: run a benchmark selection, tee
# the raw transcript under /tmp, then distill it into a JSON artifact with
# an awk program held in a make variable. bench-json is the shared distill
# step: $(call bench-json,RAW-FILE(S),AWK-VARIABLE-NAME,OUT.json) — the awk
# program is passed by variable *name* (its text contains commas, which
# $(call) would split on).
define bench-json
	awk $($(2)) $(1) > $(3)
	cat $(3)
endef

# bench: the PR 3 headline comparison — one streaming pass of the online
# checkers versus checkpointed re-runs of the batch reference predicates on
# the same 100k-step trace — recorded as BENCH_PR3.json. -benchtime 1x
# because one batch iteration already takes minutes (the batch causal check
# is quadratic; that is the point).
AWK_PR3 = '/^BenchmarkSpecOnline/ { online=$$3; steps=$$5 } \
  /^BenchmarkSpecBatch/ { batch=$$3 } \
  END { if (!online || !batch) exit 1; \
    printf "{\n  \"benchmark\": \"online spec checkers vs repeated batch checking\",\n  \"trace_steps\": %.0f,\n  \"specs\": [\"FIFO-Order\", \"Causal-Order\"],\n  \"batch_checkpoints\": 4,\n  \"online_ns_per_op\": %.0f,\n  \"batch_ns_per_op\": %.0f,\n  \"speedup\": %.1f\n}\n", steps, online, batch, batch/online }'
bench:
	go test -run '^$$' -bench 'BenchmarkSpec(Online|Batch)$$' -benchtime 1x ./internal/spec | tee /tmp/bench_pr3.txt
	$(call bench-json,/tmp/bench_pr3.txt,AWK_PR3,BENCH_PR3.json)

# bench-pr4: the PR 4 headline numbers — sweep wall-clock at 1 vs 4
# workers (the CPU-bound E1 grid scales with cores; the latency-bound
# conformance corpus overlaps timer waits and speeds up even on one core)
# and the hot-path allocation wins (VC encode/decode, trace append) —
# recorded as BENCH_PR4.json with the host's GOMAXPROCS for context.
AWK_PR4 = '/^BenchmarkSweepE1\/workers=1/ { e1w1=$$3 } \
  /^BenchmarkSweepE1\/workers=4/ { e1w4=$$3 } \
  /^BenchmarkSweepConformance\/workers=1/ { cw1=$$3 } \
  /^BenchmarkSweepConformance\/workers=4/ { cw4=$$3 } \
  /^BenchmarkVCEncodeDecode\/old/ { vcold=$$3; vcoldalloc=$$7 } \
  /^BenchmarkVCEncodeDecode\/new/ { vcnew=$$3; vcnewalloc=$$7 } \
  /^BenchmarkTraceAppend\/naive/ { trn=$$3; trnb=$$5 } \
  /^BenchmarkTraceAppend\/chunked/ { trc=$$3; trcb=$$5 } \
  END { if (!e1w1 || !e1w4 || !cw1 || !cw4 || !vcold || !vcnew || !trn || !trc) exit 1; \
    e1s=e1w1/e1w4; cs=cw1/cw4; head=(cs>e1s)?cs:e1s; \
    printf "{\n  \"benchmark\": \"parallel sweep engine and hot-path allocation overhaul\",\n  \"gomaxprocs\": %d,\n  \"headline_sweep_speedup_4v1\": %.2f,\n  \"sweep_e1\": {\n    \"workers1_ns_per_op\": %.0f,\n    \"workers4_ns_per_op\": %.0f,\n    \"speedup_4v1\": %.2f\n  },\n  \"sweep_conformance\": {\n    \"workers1_ns_per_op\": %.0f,\n    \"workers4_ns_per_op\": %.0f,\n    \"speedup_4v1\": %.2f\n  },\n  \"vc_encode_decode\": {\n    \"old_ns_per_op\": %.0f,\n    \"new_ns_per_op\": %.0f,\n    \"old_allocs_per_op\": %.0f,\n    \"new_allocs_per_op\": %.0f\n  },\n  \"trace_append_100k\": {\n    \"naive_ns_per_op\": %.0f,\n    \"chunked_ns_per_op\": %.0f,\n    \"naive_bytes_per_op\": %.0f,\n    \"chunked_bytes_per_op\": %.0f\n  }\n}\n", \
      gomaxprocs, head, e1w1, e1w4, e1s, cw1, cw4, cs, vcold, vcnew, vcoldalloc, vcnewalloc, trn, trc, trnb, trcb }'
bench-pr4:
	go test -run '^$$' -bench 'BenchmarkSweep(E1|Conformance)$$' -benchtime 5x ./internal/sweep | tee /tmp/bench_pr4.txt
	go test -run '^$$' -bench 'BenchmarkVCEncodeDecode$$' -benchmem ./internal/vc | tee -a /tmp/bench_pr4.txt
	go test -run '^$$' -bench 'BenchmarkTraceAppend$$' -benchmem ./internal/model | tee -a /tmp/bench_pr4.txt
	awk -v gomaxprocs=$$(nproc) $(AWK_PR4) /tmp/bench_pr4.txt > BENCH_PR4.json
	cat BENCH_PR4.json
bench-all:
	go test -bench=. -benchmem ./...
figure1:
	go run ./examples/figure1
impossibility:
	go run ./cmd/impossibility -all -k 2 -v
# metrics-smoke: the observability layer end to end — run the pipeline with
# -metrics and -events, check the phase spans appear and the event log is
# valid JSONL (one object per line, each with ts and event keys).
metrics-smoke:
	go run ./cmd/impossibility -all -k 2 -metrics -events /tmp/nobroadcast-events.jsonl > /tmp/nobroadcast-metrics.txt
	grep -q 'pipeline.adversary' /tmp/nobroadcast-metrics.txt
	grep -q 'pipeline.nsolo-check' /tmp/nobroadcast-metrics.txt
	grep -q 'pipeline.restriction' /tmp/nobroadcast-metrics.txt
	grep -q 'pipeline.renaming' /tmp/nobroadcast-metrics.txt
	grep -q 'pipeline.replay' /tmp/nobroadcast-metrics.txt
	grep -q 'sched.steps' /tmp/nobroadcast-metrics.txt
	awk 'NF && ($$0 !~ /^\{"ts":".*","event":".*\}$$/) { bad=1 } END { exit bad }' /tmp/nobroadcast-events.jsonl
	@echo "metrics smoke test passed"
# serve-smoke: the daemon end to end — start ksasimd, run the same job
# twice, require the repeat to be a cache hit (X-Cache header and the
# serve.cache_hits counter on /vars), then SIGTERM and require a clean
# drain: exit code 0 and the drain banner in the log.
serve-smoke:
	go build -o /tmp/ksasimd ./cmd/ksasimd
	@set -e; \
	/tmp/ksasimd -addr 127.0.0.1:8321 > /tmp/ksasimd.log 2>&1 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 100); do curl -sf http://127.0.0.1:8321/healthz >/dev/null 2>&1 && break; sleep 0.1; done; \
	curl -sf -XPOST http://127.0.0.1:8321/v1/run -d '{"candidate":"fifo","n":3}' >/dev/null; \
	curl -sf -XPOST http://127.0.0.1:8321/v1/run -d '{"candidate":"fifo","n":3}' -D /tmp/ksasimd-h2.txt >/dev/null; \
	grep -qi 'x-cache: hit' /tmp/ksasimd-h2.txt; \
	curl -sf http://127.0.0.1:8321/vars | grep -q '"serve.cache_hits":1'; \
	kill -TERM $$pid; \
	rc=0; wait $$pid || rc=$$?; \
	trap - EXIT; \
	test $$rc -eq 0; \
	grep -q 'drained cleanly' /tmp/ksasimd.log; \
	echo "serve smoke test passed"
# load-smoke: the serving path under generated load — start ksasimd with
# tracing and pprof on, point ksasimload at it for a short closed-loop
# burst, and require nonzero throughput plus a parseable JSON report and
# a clean daemon drain.
load-smoke:
	go build -o /tmp/ksasimd ./cmd/ksasimd
	go build -o /tmp/ksasimload ./cmd/ksasimload
	@set -e; \
	/tmp/ksasimd -addr 127.0.0.1:8322 -trace -pprof > /tmp/ksasimd-load.log 2>&1 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 100); do curl -sf http://127.0.0.1:8322/healthz >/dev/null 2>&1 && break; sleep 0.1; done; \
	/tmp/ksasimload -addr http://127.0.0.1:8322 -requests 200 -concurrency 4 -duration 60s -universe 16 -json /tmp/ksasimload-smoke.json; \
	curl -sf http://127.0.0.1:8322/debug/runtime | grep -q goroutines; \
	kill -TERM $$pid; \
	rc=0; wait $$pid || rc=$$?; \
	trap - EXIT; \
	test $$rc -eq 0; \
	grep -q 'drained cleanly' /tmp/ksasimd-load.log; \
	python3 -c 'import json; r = json.load(open("/tmp/ksasimload-smoke.json")); assert r["throughput_rps"] > 0, r; assert r["requests"] == 200, r; assert r["latency_us"]["p99"] >= r["latency_us"]["p50"] > 0, r'; \
	echo "load smoke test passed"

# bench-pr6: the PR 6 headline artifact — a closed-loop ksasimload run
# against a local daemon, recorded as BENCH_PR6.json (latency quantiles,
# throughput, cache hit rate, daemon counter deltas). The load generator
# writes the JSON itself; no awk distillation needed.
bench-pr6:
	go build -o /tmp/ksasimd ./cmd/ksasimd
	go build -o /tmp/ksasimload ./cmd/ksasimload
	@set -e; \
	/tmp/ksasimd -addr 127.0.0.1:8323 > /tmp/ksasimd-bench.log 2>&1 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 100); do curl -sf http://127.0.0.1:8323/healthz >/dev/null 2>&1 && break; sleep 0.1; done; \
	/tmp/ksasimload -addr http://127.0.0.1:8323 -duration 10s -concurrency 8 -universe 64 -json BENCH_PR6.json; \
	kill -TERM $$pid; wait $$pid; \
	trap - EXIT
	cat BENCH_PR6.json
# bench-pr7: the PR 7 headline artifact — the binary ksatrace wire format
# against JSONL, as BENCH_PR7.json. Two comparisons over the same
# 100k-step trace: the end-to-end serving path (decode + online checkers,
# what /v1/check does per upload) and pure decode (where the block format
# and string interning pay off). The awk program scans for unit tokens
# (ns/op, allocs/op, trace-steps) instead of fixed columns, so the
# distill survives benchmark-output column drift.
AWK_PR7 = '/^Benchmark(StreamCheck|WireDecode)\// { \
    ns=0; al=0; st=0; \
    for (i=2; i<=NF; i++) { \
      if ($$i == "ns/op") ns=$$(i-1); \
      if ($$i == "allocs/op") al=$$(i-1); \
      if ($$i == "trace-steps") st=$$(i-1); \
    } \
    if ($$1 ~ /^BenchmarkStreamCheck\/jsonl/)  { cjns=ns; steps=st } \
    if ($$1 ~ /^BenchmarkStreamCheck\/binary/) { cbns=ns } \
    if ($$1 ~ /^BenchmarkWireDecode\/jsonl/)   { djns=ns; djal=al } \
    if ($$1 ~ /^BenchmarkWireDecode\/binary/)  { dbns=ns; dbal=al } \
  } \
  END { if (!cjns || !cbns || !djns || !dbns || !steps) exit 1; \
    printf "{\n  \"benchmark\": \"trace wire format v1: binary ksatrace vs JSONL\",\n  \"trace_steps\": %.0f,\n  \"stream_check\": {\n    \"jsonl_ns_per_op\": %.0f,\n    \"binary_ns_per_op\": %.0f,\n    \"jsonl_steps_per_sec\": %.0f,\n    \"binary_steps_per_sec\": %.0f,\n    \"binary_speedup\": %.2f\n  },\n  \"decode_only\": {\n    \"jsonl_ns_per_op\": %.0f,\n    \"binary_ns_per_op\": %.0f,\n    \"jsonl_steps_per_sec\": %.0f,\n    \"binary_steps_per_sec\": %.0f,\n    \"binary_speedup\": %.2f,\n    \"jsonl_allocs_per_step\": %.3f,\n    \"binary_allocs_per_step\": %.3f\n  }\n}\n", \
      steps, cjns, cbns, steps*1e9/cjns, steps*1e9/cbns, cjns/cbns, \
      djns, dbns, steps*1e9/djns, steps*1e9/dbns, djns/dbns, \
      djal/steps, dbal/steps }'
bench-pr7:
	go test -run '^$$' -bench 'BenchmarkStreamCheck$$' -benchmem ./internal/spec | tee /tmp/bench_pr7.txt
	go test -run '^$$' -bench 'BenchmarkWireDecode$$' -benchmem ./internal/trace | tee -a /tmp/bench_pr7.txt
	$(call bench-json,/tmp/bench_pr7.txt,AWK_PR7,BENCH_PR7.json)

# bench-pr8: the PR 8 headline artifact — the violation-hunting fleet on
# the kbo candidate (the abstraction the paper refutes), recorded as
# BENCH_PR8.json: schedules/sec through the exploration path, violations
# found, and mean minimized-prefix length, for both the random and the
# PCT sampler. Everything but the schedules/sec figure is deterministic
# in the seeds below.
AWK_PR8 = '/: explore / { strat=""; \
    for (i=1; i<=NF; i++) if ($$i ~ /^strategy=/) { s=$$i; sub("strategy=","",s); strat=s; order[++nstrat]=s } } \
  /schedules violate/ { split($$1, a, "/"); viol[strat]=a[1]; scheds[strat]=a[2]; \
    for (i=2; i<=NF; i++) if ($$i == "schedules/sec)") { r=$$(i-1); sub(/\(/,"",r); rate[strat]=r } } \
  /minimized [0-9]+ -> [0-9]+ decisions/ { full[strat]+=$$2; minsum[strat]+=$$4; nmin[strat]++ } \
  END { if (nstrat != 2) exit 1; \
    printf "{\n  \"benchmark\": \"schedule exploration: violation hunting and delta-debugging on kbo n=4 k=2\",\n  \"runs\": {\n"; \
    for (j=1; j<=nstrat; j++) { s=order[j]; \
      if (!scheds[s] || !viol[s] || !nmin[s]) exit 1; \
      printf "    \"%s\": {\n      \"schedules\": %d,\n      \"violations\": %d,\n      \"hit_rate\": %.3f,\n      \"schedules_per_sec\": %d,\n      \"findings_minimized\": %d,\n      \"mean_schedule_len\": %.1f,\n      \"mean_minimized_len\": %.1f\n    }%s\n", \
        s, scheds[s], viol[s], viol[s]/scheds[s], rate[s], nmin[s], full[s]/nmin[s], minsum[s]/nmin[s], (j<nstrat)?",":""; } \
    printf "  }\n}\n" }'
bench-pr8:
	go build -o /tmp/ksasim ./cmd/ksasim
	/tmp/ksasim -b kbo -n 4 -k 2 -explore -strategy random -schedules 400 -seed 1 -minimize 3 | tee /tmp/bench_pr8.txt
	/tmp/ksasim -b kbo -n 4 -k 2 -explore -strategy pct -depth 3 -schedules 400 -seed 1 -minimize 3 | tee -a /tmp/bench_pr8.txt
	$(call bench-json,/tmp/bench_pr8.txt,AWK_PR8,BENCH_PR8.json)

# bench-pr9: the PR 9 headline artifact — aggregate conformance-corpus
# throughput on a single daemon vs a coordinator sharding the same grid
# over 2 and 4 in-process worker daemons, as BENCH_PR9.json. The corpus
# is latency-bound (timer waits dominate each cell), so the fabric's
# overlap shows near-linear speedup even on one core; fresh seeds per
# iteration keep every cache out of the measurement.
AWK_PR9 = '/^BenchmarkFabricCorpus\/single/ { s1=$$3 } \
  /^BenchmarkFabricCorpus\/workers=2/ { w2=$$3 } \
  /^BenchmarkFabricCorpus\/workers=4/ { w4=$$3 } \
  END { if (!s1 || !w2 || !w4) exit 1; \
    printf "{\n  \"benchmark\": \"distributed sweep fabric: conformance corpus sharded over worker daemons\",\n  \"gomaxprocs\": %d,\n  \"workload\": \"full conformance corpus (30 cells), merged byte-identical to single-host\",\n  \"single_daemon_ns_per_op\": %.0f,\n  \"fabric_2workers_ns_per_op\": %.0f,\n  \"fabric_4workers_ns_per_op\": %.0f,\n  \"speedup_2v1\": %.2f,\n  \"speedup_4v1\": %.2f\n}\n", gomaxprocs, s1, w2, w4, s1/w2, s1/w4 }'
bench-pr9:
	go test -run '^$$' -bench 'BenchmarkFabricCorpus$$' -benchtime 5x ./internal/serve | tee /tmp/bench_pr9.txt
	awk -v gomaxprocs=$$(nproc) $(AWK_PR9) /tmp/bench_pr9.txt > BENCH_PR9.json
	cat BENCH_PR9.json

# fabric-smoke: the cluster path end to end, twice. First in-process — a
# coordinator with two worker daemons (one an injected straggler) runs
# one corpus sweep; the test asserts the merged body is byte-identical to
# a single-host run and that work-stealing engaged (fabric.steals > 0).
# Then with real OS processes: two ksasimd workers and a coordinator
# daemon on loopback TCP; the coordinator's sharded corpus body must be
# byte-identical to a single worker's, and a worker must execute a
# tcp-runtime job (a nettcp socket cluster inside the worker process).
fabric-smoke:
	go test -run 'TestFabricSmoke$$' -count=1 -v ./internal/serve
	go build -o /tmp/ksasimd ./cmd/ksasimd
	@set -e; \
	/tmp/ksasimd -addr 127.0.0.1:8331 > /tmp/ksasimd-fw1.log 2>&1 & w1=$$!; \
	/tmp/ksasimd -addr 127.0.0.1:8332 > /tmp/ksasimd-fw2.log 2>&1 & w2=$$!; \
	/tmp/ksasimd -addr 127.0.0.1:8330 -coordinator http://127.0.0.1:8331,http://127.0.0.1:8332 > /tmp/ksasimd-fco.log 2>&1 & co=$$!; \
	trap 'kill $$w1 $$w2 $$co 2>/dev/null || true' EXIT; \
	for p in 8330 8331 8332; do \
	  for i in $$(seq 1 100); do curl -sf http://127.0.0.1:$$p/healthz >/dev/null 2>&1 && break; sleep 0.1; done; \
	done; \
	curl -sf -XPOST http://127.0.0.1:8331/v1/corpus -d '{"seed":23}' > /tmp/fabric-single.json; \
	curl -sf -XPOST http://127.0.0.1:8330/v1/corpus -d '{"seed":23}' > /tmp/fabric-fleet.json; \
	cmp /tmp/fabric-single.json /tmp/fabric-fleet.json; \
	curl -sf -XPOST http://127.0.0.1:8332/v1/run \
	  -d '{"candidate":"send-to-all","runtime":"tcp","n":3,"workload":{"messages":6}}' \
	  | grep -q '"complete":true'; \
	kill -TERM $$w1 $$w2 $$co; \
	rc=0; wait $$w1 || rc=$$?; test $$rc -eq 0; \
	rc=0; wait $$w2 || rc=$$?; test $$rc -eq 0; \
	rc=0; wait $$co || rc=$$?; test $$rc -eq 0; \
	trap - EXIT; \
	echo "fabric smoke test passed (in-process + process workers)"

# socket-smoke: the TCP socket transport end to end with real OS
# processes — ksasim re-execs itself once per CAMP node (-node), the
# harness merges the per-node .ktr streams, and the verdict must agree
# with the deterministic runtime. Runs twice: direct unicast with the
# oracle round-trip (first-k), and rebroadcast flood mode.
socket-smoke:
	go build -o /tmp/ksasim ./cmd/ksasim
	/tmp/ksasim -sockets -b first-k -n 3 -k 2 -seed 42 | tee /tmp/socket-smoke.txt
	/tmp/ksasim -sockets -b reliable -n 3 -k 1 -seed 7 -rebroadcast | tee -a /tmp/socket-smoke.txt
	grep -c 'verdicts-agree=true delivery-sets-agree=true' /tmp/socket-smoke.txt | grep -qx 2
	grep -c 'complete=true' /tmp/socket-smoke.txt | grep -qx 2
	@echo "socket smoke test passed"

# profile-feed: CPU profile of the checker hot path (every registered
# spec's online Feed loop) for pprof archaeology:
#   go tool pprof /tmp/spec.test /tmp/feed.pprof
profile-feed:
	go test -run '^$$' -bench 'BenchmarkCheckerFeed$$' -benchtime 2x \
	  -cpuprofile /tmp/feed.pprof -o /tmp/spec.test ./internal/spec
	@echo "profile written to /tmp/feed.pprof (binary /tmp/spec.test)"

# fuzz-smoke: a short budgeted run of every fuzz target — enough to catch
# an outright decoder regression on the seed-adjacent frontier without
# holding CI hostage to a real fuzzing campaign.
fuzz-smoke:
	go test -run '^$$' -fuzz 'FuzzStepReader$$' -fuzztime 15s ./internal/trace

outputs:
	go test ./... 2>&1 | tee test_output.txt
	go test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt
