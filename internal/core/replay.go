package core

import (
	"fmt"

	"nobroadcast/internal/model"
	"nobroadcast/internal/sched"
	"nobroadcast/internal/trace"
)

// This file implements the replay step of Lemma 9: running the solver 𝓐
// deterministically against the broadcast events a given execution assigns
// to one process. Because 𝓐 is deterministic and only observes broadcast
// events, executions with identical per-process event sequences are
// indistinguishable to it — replaying δ reproduces the solo-run behavior.

// replayEnv adapts a fixed event trace to the sched.AppEnv interface.
type replayEnv struct {
	id model.ProcID
	n  int
	// invokes are the broadcast invocations the trace attributes to the
	// process, matched in order against the app's Broadcast calls.
	invokes []model.Step
	next    int
	// extra counts Broadcast calls beyond the trace's invocations (legal:
	// the trace may be a restriction that dropped later messages).
	extra   int
	decided bool
	dec     model.Value
	err     error
}

var _ sched.AppEnv = (*replayEnv)(nil)

func (e *replayEnv) ID() model.ProcID { return e.id }
func (e *replayEnv) N() int           { return e.n }

// Broadcast matches the app's invocation against the trace.
func (e *replayEnv) Broadcast(payload model.Payload) {
	if e.next >= len(e.invokes) {
		e.extra++
		return
	}
	want := e.invokes[e.next]
	e.next++
	if want.Payload != payload {
		e.err = fmt.Errorf("core: replay of %v: app broadcasts %q, trace records %q (execution not well-formed w.r.t. the algorithm)", e.id, payload, want.Payload)
	}
}

// Decide captures the app's one-shot decision.
func (e *replayEnv) Decide(v model.Value) {
	if e.decided {
		return
	}
	e.decided = true
	e.dec = v
}

// ReplayOnTrace drives the app with the broadcast events the trace assigns
// to process id and returns the value the app decides. It verifies that
// the app's own broadcasts match the trace's invocations (Definition 1's
// third condition, conformance to the algorithm) and errors if the app
// never decides.
func ReplayOnTrace(app sched.App, id model.ProcID, n int, input model.Value, t *trace.Trace) (model.Value, error) {
	env := &replayEnv{id: id, n: n}
	for _, s := range t.X.Steps {
		if s.Proc == id && s.Kind == model.KindBroadcastInvoke {
			env.invokes = append(env.invokes, s)
		}
	}
	app.Init(env, input)
	if env.err != nil {
		return "", env.err
	}
	for _, s := range t.X.Steps {
		if s.Proc != id {
			continue
		}
		switch s.Kind {
		case model.KindDeliver:
			app.OnDeliver(env, s.Peer, s.Msg, s.Payload)
		case model.KindBroadcastReturn:
			app.OnReturn(env, s.Msg)
		}
		if env.err != nil {
			return "", env.err
		}
	}
	if !env.decided {
		return "", fmt.Errorf("core: replay of %v: app never decides on the given events", id)
	}
	return env.dec, nil
}
