package core_test

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/core"
	"nobroadcast/internal/model"
	"nobroadcast/internal/obs"
	"nobroadcast/internal/sched"
	"nobroadcast/internal/spec"
	"nobroadcast/internal/sweep"
	"nobroadcast/internal/trace"
)

func mustCandidate(t *testing.T, name string) broadcast.Candidate {
	t.Helper()
	c, err := broadcast.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func runPipeline(t *testing.T, name string, k int) *core.Result {
	t.Helper()
	res, err := core.RunImpossibility(mustCandidate(t, name), k, core.Options{})
	if err != nil {
		t.Fatalf("RunImpossibility(%s, k=%d): %v", name, k, err)
	}
	return res
}

func TestRunImpossibilityValidation(t *testing.T) {
	if _, err := core.RunImpossibility(mustCandidate(t, "kbo"), 1, core.Options{}); err == nil {
		t.Error("expected error for k=1 (Theorem 1 poses 1 < k < n)")
	}
}

// TestRunSolo: the solo execution α_i delivers N_i messages before the
// decision, and k-SA-Validity forces the solo decision to equal the input.
func TestRunSolo(t *testing.T) {
	c := mustCandidate(t, "first-k")
	rec, tr, err := core.RunSolo(c, 2, 2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Decision != rec.Input {
		t.Errorf("solo decision %q != input %q", rec.Decision, rec.Input)
	}
	if rec.Ni < 1 {
		t.Errorf("N_i = %d, want >= 1", rec.Ni)
	}
	// Only p_2 takes app-level steps; others crash at the start.
	for _, s := range tr.X.Steps {
		if s.Kind == model.KindDeliver && s.Proc != 2 {
			t.Errorf("crashed %v delivered a message", s.Proc)
		}
	}
	if tr.X.Correct(1) || tr.X.Correct(3) {
		t.Error("p1 and p3 should be crashed in alpha_2")
	}
}

// TestLemma9Pipeline (experiment E3): the pipeline outcome per candidate
// matches the paper's diagnosis.
func TestLemma9Pipeline(t *testing.T) {
	tests := []struct {
		name string
		k    int
		want core.Outcome
	}{
		// §1.4: the one-shot strawman is not compositional.
		{"first-k", 2, core.OutcomeNotCompositional},
		{"first-k", 3, core.OutcomeNotCompositional},
		// §3.2: the iterated strawman is not compositional.
		{"k-stepped", 2, core.OutcomeNotCompositional},
		{"k-stepped", 3, core.OutcomeNotCompositional},
		// §3.3: the SA-tagged strawman is not content-neutral.
		{"sa-tagged", 2, core.OutcomeNotContentNeutral},
		{"sa-tagged", 3, core.OutcomeNotContentNeutral},
		// k-BO: compositional and content-neutral, so the contradiction
		// goes all the way through — Theorem 1's reductio, and with it
		// the corollary that k-BO is not implementable on k-SA.
		{"kbo", 2, core.OutcomeAgreementViolated},
		{"kbo", 3, core.OutcomeAgreementViolated},
		// Total order on a k-SA oracle (k > 1): same shape — consensus
		// power cannot come from k-SA.
		{"total-order", 2, core.OutcomeAgreementViolated},
	}
	t.Parallel()
	// The table is a candidate × k sweep (experiment E3): run it on the
	// parallel sweep engine, one pipeline per cell.
	_, err := sweep.Run(context.Background(), len(tests), sweep.Options{},
		func(_ context.Context, cell sweep.Cell) (struct{}, error) {
			tt := tests[cell.Index]
			c, err := broadcast.Lookup(tt.name)
			if err != nil {
				return struct{}{}, err
			}
			res, err := core.RunImpossibility(c, tt.k, core.Options{})
			if err != nil {
				return struct{}{}, fmt.Errorf("RunImpossibility(%s, k=%d): %w", tt.name, tt.k, err)
			}
			if res.Outcome != tt.want {
				return struct{}{}, fmt.Errorf("%s k=%d: outcome = %v, want %v (detail: %s)", tt.name, tt.k, res.Outcome, tt.want, res.Detail)
			}
			return struct{}{}, nil
		})
	if err != nil {
		t.Error(err)
	}
}

// TestAgreementViolationShape: when the contradiction completes, the
// replay produced exactly k+1 distinct decisions equal to the solo
// decisions, and δ is admitted by the spec while k-SA-Agreement fails on
// the implemented object.
func TestAgreementViolationShape(t *testing.T) {
	res := runPipeline(t, "kbo", 2)
	if res.Outcome != core.OutcomeAgreementViolated {
		t.Fatalf("outcome: %v (%s)", res.Outcome, res.Detail)
	}
	if len(res.ReplayDecisions) != 3 {
		t.Fatalf("replay decisions: %v", res.ReplayDecisions)
	}
	distinct := make(map[model.Value]bool)
	for i, rec := range res.Solo {
		pid := model.ProcID(i + 1)
		if res.ReplayDecisions[pid] != rec.Decision {
			t.Errorf("replay of %v decided %q, solo decided %q", pid, res.ReplayDecisions[pid], rec.Decision)
		}
		distinct[res.ReplayDecisions[pid]] = true
	}
	if len(distinct) != 3 {
		t.Errorf("expected 3 distinct decisions, got %v", res.ReplayDecisions)
	}
	// δ admitted by the candidate spec, by construction of the outcome.
	c := mustCandidate(t, "kbo")
	if v := c.Spec(2).Check(res.Delta); v != nil {
		t.Errorf("delta should be admitted: %s", v)
	}
	// The decisions, recorded as a k-SA object trace, violate agreement.
	x := model.NewExecution(3)
	for p, v := range res.ReplayDecisions {
		x.Append(
			model.Step{Proc: p, Kind: model.KindPropose, Obj: 1, Val: v},
			model.Step{Proc: p, Kind: model.KindDecide, Obj: 1, Val: v},
		)
	}
	if v := spec.KSA(2).Check(trace.New(x)); v == nil {
		t.Error("the replayed decisions should violate 2-SA-Agreement")
	}
}

// TestNotCompositionalWitness: for first-k, β is admitted but γ is not —
// and the violation is the first-k ordering property.
func TestNotCompositionalWitness(t *testing.T) {
	res := runPipeline(t, "first-k", 2)
	if res.Outcome != core.OutcomeNotCompositional {
		t.Fatalf("outcome: %v (%s)", res.Outcome, res.Detail)
	}
	c := mustCandidate(t, "first-k")
	if v := c.Spec(2).Check(res.Beta); v != nil {
		t.Errorf("beta should be admitted: %s", v)
	}
	if v := c.Spec(2).Check(res.Gamma); v == nil {
		t.Error("gamma should be rejected")
	} else if !strings.Contains(v.Property, "First-k") {
		t.Errorf("unexpected violated property: %s", v)
	}
	if res.Delta != nil {
		t.Error("delta should not be built when compositionality already failed")
	}
}

// TestNotContentNeutralWitness: for sa-tagged, γ is admitted but δ is not.
func TestNotContentNeutralWitness(t *testing.T) {
	res := runPipeline(t, "sa-tagged", 2)
	if res.Outcome != core.OutcomeNotContentNeutral {
		t.Fatalf("outcome: %v (%s)", res.Outcome, res.Detail)
	}
	c := mustCandidate(t, "sa-tagged")
	if v := c.Spec(2).Check(res.Gamma); v != nil {
		t.Errorf("gamma should be admitted: %s", v)
	}
	if v := c.Spec(2).Check(res.Delta); v == nil {
		t.Error("delta should be rejected")
	}
}

// TestLemmaReportsIncluded: the pipeline re-verifies Lemmas 1-8 and 10 on
// the adversarial construction.
func TestLemmaReportsIncluded(t *testing.T) {
	res := runPipeline(t, "kbo", 2)
	if len(res.LemmaReports) == 0 {
		t.Fatal("no lemma reports")
	}
	for _, rep := range res.LemmaReports {
		if !rep.OK {
			t.Errorf("%s: %s", rep.Lemma, rep.Err)
		}
	}
}

// TestStalledCandidateClassified: a candidate whose implementation cannot
// progress solo is classified as OutcomeNotSoloProgressing.
func TestStalledCandidateClassified(t *testing.T) {
	c := broadcast.Candidate{
		Name:         "stalling",
		Spec:         func(int) spec.Spec { return spec.BasicBroadcast() },
		NewAutomaton: func(model.ProcID) sched.Automaton { return &stallingAutomaton{} },
		OracleK:      0,
	}
	res, err := core.RunImpossibility(c, 2, core.Options{MaxStepsPerPhase: 300, MaxSoloEvents: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != core.OutcomeNotSoloProgressing {
		t.Errorf("outcome = %v (%s)", res.Outcome, res.Detail)
	}
}

// stallingAutomaton delivers only its first broadcast message, gated
// through a shared k-SA object; every later message stalls forever. The
// solo solver needs one delivery (N = 1), so stage 1 passes, and the
// adversary's line 25 reset forces p_k to need a second own delivery —
// which never comes: stage 3 detects the stall.
type stallingAutomaton struct {
	broadcasts int
	msg        model.MsgID
	payload    model.Payload
}

func (s *stallingAutomaton) Init(*sched.Env) {}
func (s *stallingAutomaton) OnBroadcast(env *sched.Env, msg model.MsgID, payload model.Payload) {
	env.ReturnBroadcast(msg)
	s.broadcasts++
	if s.broadcasts == 1 {
		s.msg, s.payload = msg, payload
		env.Propose(1, model.Value(payload))
	}
	// Later broadcasts: wait for peers forever.
}
func (s *stallingAutomaton) OnReceive(*sched.Env, model.ProcID, model.Payload) {}
func (s *stallingAutomaton) OnDecide(env *sched.Env, _ model.KSAID, _ model.Value) {
	env.Deliver(s.msg, env.ID(), s.payload)
}

// TestNoSoloDecisionClassified: a solver that never decides solo is
// classified as OutcomeNoSoloDecision.
func TestNoSoloDecisionClassified(t *testing.T) {
	c := mustCandidate(t, "send-to-all")
	c.NewSolver = func(model.ProcID) sched.App { return &neverDecideApp{} }
	res, err := core.RunImpossibility(c, 2, core.Options{MaxSoloEvents: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != core.OutcomeNoSoloDecision {
		t.Errorf("outcome = %v (%s)", res.Outcome, res.Detail)
	}
}

type neverDecideApp struct{}

func (neverDecideApp) Init(env sched.AppEnv, input model.Value)                         { env.Broadcast(model.Payload(input)) }
func (neverDecideApp) OnDeliver(sched.AppEnv, model.ProcID, model.MsgID, model.Payload) {}
func (neverDecideApp) OnReturn(sched.AppEnv, model.MsgID)                               {}

func TestOutcomeString(t *testing.T) {
	outs := []core.Outcome{
		core.OutcomeNoSoloDecision, core.OutcomeNotSoloProgressing,
		core.OutcomeImplementationIncorrect, core.OutcomeNotCompositional,
		core.OutcomeNotContentNeutral, core.OutcomeAgreementViolated,
	}
	seen := make(map[string]bool)
	for _, o := range outs {
		s := o.String()
		if s == "" || strings.HasPrefix(s, "Outcome(") || seen[s] {
			t.Errorf("bad outcome name %q", s)
		}
		seen[s] = true
	}
	if got := core.Outcome(99).String(); got != "Outcome(99)" {
		t.Errorf("unknown outcome: %q", got)
	}
}

// TestReplayConformance: the replayer rejects an execution whose recorded
// broadcasts do not match the algorithm's behavior.
func TestReplayConformance(t *testing.T) {
	x := model.NewExecution(3)
	x.Append(
		model.Step{Proc: 1, Kind: model.KindBroadcastInvoke, Msg: 1, Payload: "not-the-input"},
		model.Step{Proc: 1, Kind: model.KindDeliver, Peer: 1, Msg: 1, Payload: "not-the-input"},
	)
	_, err := core.ReplayOnTrace(broadcast.NewFirstDecider(1), 1, 3, "my-input", trace.New(x))
	if err == nil {
		t.Error("expected conformance error: FirstDecider broadcasts its input")
	}
}

func TestReplayNeverDecides(t *testing.T) {
	x := model.NewExecution(3) // no deliveries
	_, err := core.ReplayOnTrace(broadcast.NewFirstDecider(1), 1, 3, "v", trace.New(x))
	if err == nil || !strings.Contains(err.Error(), "never decides") {
		t.Errorf("expected never-decides error, got %v", err)
	}
}

func TestReplayDecides(t *testing.T) {
	x := model.NewExecution(3)
	x.Append(
		model.Step{Proc: 1, Kind: model.KindBroadcastInvoke, Msg: 1, Payload: "v"},
		model.Step{Proc: 1, Kind: model.KindDeliver, Peer: 1, Msg: 1, Payload: "v"},
		model.Step{Proc: 1, Kind: model.KindBroadcastReturn, Msg: 1},
	)
	dec, err := core.ReplayOnTrace(broadcast.NewFirstDecider(1), 1, 3, "v", trace.New(x))
	if err != nil {
		t.Fatal(err)
	}
	if dec != "v" {
		t.Errorf("decided %q", dec)
	}
}

// TestPipelineWithDepthSolver: a solver needing depth deliveries forces
// N = depth > 1; the pipeline's multi-message substitution still works and
// the diagnoses are unchanged.
func TestPipelineWithDepthSolver(t *testing.T) {
	for _, depth := range []int{2, 3} {
		c := mustCandidate(t, "first-k")
		c.NewSolver = broadcast.NewDepthDecider(depth)
		res, err := core.RunImpossibility(c, 2, core.Options{})
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if res.N != depth {
			t.Errorf("depth %d: N = %d, want %d", depth, res.N, depth)
		}
		for _, rec := range res.Solo {
			if rec.Ni != depth {
				t.Errorf("depth %d: %v has N_i = %d", depth, rec.Proc, rec.Ni)
			}
		}
		if res.Outcome != core.OutcomeNotCompositional {
			t.Errorf("depth %d: outcome = %v (%s)", depth, res.Outcome, res.Detail)
		}

		c2 := mustCandidate(t, "kbo")
		c2.NewSolver = broadcast.NewDepthDecider(depth)
		res2, err := core.RunImpossibility(c2, 2, core.Options{})
		if err != nil {
			t.Fatalf("depth %d kbo: %v", depth, err)
		}
		if res2.Outcome != core.OutcomeAgreementViolated {
			t.Errorf("depth %d kbo: outcome = %v (%s)", depth, res2.Outcome, res2.Detail)
		}
	}
}

// TestImplementationIncorrectClassified (stage 4): a candidate whose own
// specification rejects the adversarial β is classified as an incorrect
// implementation — the k-SA → B direction of the equivalence fails. The
// artificial spec forbids more than one broadcast per process, which the
// N = 2 construction (forced by a depth-2 solver)violates.
func TestImplementationIncorrectClassified(t *testing.T) {
	onePerProc := spec.Func{
		SpecName: "one-broadcast-per-process",
		CheckFn: func(tr *trace.Trace) *spec.Violation {
			counts := make(map[model.ProcID]int)
			for i, s := range tr.X.Steps {
				if s.Kind == model.KindBroadcastInvoke {
					counts[s.Proc]++
					if counts[s.Proc] > 1 {
						return &spec.Violation{Spec: "one-broadcast-per-process", Property: "One-Per-Process",
							Detail: "second broadcast", StepIdx: i}
					}
				}
			}
			return nil
		},
	}
	c := mustCandidate(t, "send-to-all")
	c.Spec = func(int) spec.Spec { return onePerProc }
	c.NewSolver = broadcast.NewDepthDecider(2) // forces N = 2
	res, err := core.RunImpossibility(c, 2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != core.OutcomeImplementationIncorrect {
		t.Errorf("outcome = %v (%s)", res.Outcome, res.Detail)
	}
	if res.Gamma != nil {
		t.Error("gamma should not be built when beta is already rejected")
	}
}

// TestRunSoloDetectsInvalidSolver: a solver whose solo decision is not its
// input breaks k-SA-Validity; RunSolo reports it instead of feeding the
// pipeline garbage.
func TestRunSoloDetectsInvalidSolver(t *testing.T) {
	c := mustCandidate(t, "send-to-all")
	c.NewSolver = func(model.ProcID) sched.App { return constDecideApp{} }
	if _, _, err := core.RunSolo(c, 2, 1, core.Options{}); err == nil {
		t.Error("expected k-SA-Validity error for the constant-deciding solver")
	}
}

type constDecideApp struct{}

func (constDecideApp) Init(env sched.AppEnv, input model.Value) {
	env.Broadcast(model.Payload(input))
}
func (constDecideApp) OnDeliver(env sched.AppEnv, _ model.ProcID, _ model.MsgID, _ model.Payload) {
	env.Decide("always-the-same")
}
func (constDecideApp) OnReturn(sched.AppEnv, model.MsgID) {}

// TestPipelineObservability: with a Registry attached, RunImpossibility
// records one span per pipeline phase and the stage events, and threads
// the registry into the scheduler and adversary underneath.
func TestPipelineObservability(t *testing.T) {
	c, err := broadcast.Lookup("kbo")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	var events bytes.Buffer
	reg.AttachEvents(obs.NewEventLog(&events))
	res, err := core.RunImpossibility(c, 2, core.Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != core.OutcomeAgreementViolated {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	names := make(map[string]int)
	for _, s := range reg.Spans() {
		names[s.Name]++
	}
	for _, want := range []string{
		"pipeline.solo", "pipeline.adversary", "pipeline.nsolo-check",
		"pipeline.spec-beta", "pipeline.restriction", "pipeline.renaming",
		"pipeline.replay",
	} {
		if names[want] != 1 {
			t.Errorf("span %q recorded %d times, want 1 (spans: %v)", want, names[want], names)
		}
	}
	// kbo runs 3 solo phases + the adversary's phases: one span per phase.
	if names["adversary.phase.p1"] != 1 {
		t.Errorf("adversary phase spans missing: %v", names)
	}
	if reg.Counter("sched.steps").Value() == 0 {
		t.Error("scheduler metrics not threaded through the pipeline")
	}
	if reg.Counter("core.pipelines").Value() != 1 {
		t.Error("core.pipelines not counted")
	}
	for _, want := range []string{`"event":"pipeline.start"`, `"event":"pipeline.solo_run"`, `"event":"pipeline.outcome"`, `"outcome":`} {
		if !bytes.Contains(events.Bytes(), []byte(want)) {
			t.Errorf("event log missing %s", want)
		}
	}
}

// TestPipelineOutcomeEventOnEarlyExit: classified early exits (e.g. a
// non-compositional spec) still emit the terminal outcome event.
func TestPipelineOutcomeEventOnEarlyExit(t *testing.T) {
	c, err := broadcast.Lookup("first-k")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	var events bytes.Buffer
	reg.AttachEvents(obs.NewEventLog(&events))
	res, err := core.RunImpossibility(c, 2, core.Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != core.OutcomeNotCompositional {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if !bytes.Contains(events.Bytes(), []byte(`"event":"pipeline.outcome"`)) {
		t.Error("outcome event missing on early-exit path")
	}
}
