// Package core implements the paper's primary contribution as an
// executable pipeline: the proof of Theorem 1 ("no content-neutral and
// compositional broadcast abstraction is equivalent to k-set agreement in
// CAMP_n[∅] for 1 < k < n"), instantiated on concrete candidate
// abstractions.
//
// For a candidate abstraction B — given as a specification, an
// implementation 𝓑 of B in CAMP_{k+1}[k-SA], and a solver 𝓐 of k-SA in
// CAMP_{k+1}[B] — the pipeline retraces the proof:
//
//  1. Solo executions (Lemma 9 setup): for each process p_i, run 𝓐 with
//     input i while every other process crashes initially; record the
//     messages p_i B-delivers before deciding (N_i of them) and the
//     decided value.
//  2. N := max(1, N_1, ..., N_{k+1}).
//  3. Adversarial construction (Lemma 10): run Algorithm 1 against 𝓑 to
//     obtain the N-solo execution β.
//  4. Check the candidate's specification admits β — if not, 𝓑 is not a
//     correct implementation of B on k-SA (the k-SA → B direction of the
//     equivalence fails; for k-BO this is the paper's corollary).
//  5. Restriction (compositionality): γ := β restricted to the first N_i
//     counted messages of each p_i. If the spec rejects γ, the spec is
//     not compositional — the witness the paper gives for the strawmen of
//     Sections 1.4 and 3.2.
//  6. Renaming (content-neutrality): δ := γ with each counted message
//     renamed to the corresponding solo-run message. If the spec rejects
//     δ, the spec is not content-neutral — the witness for Section 3.3.
//  7. Replay (the contradiction): for each p_i, replay 𝓐 against p_i's
//     events in δ. Indistinguishability from the solo run α_i forces p_i
//     to decide its own value: k+1 distinct decisions on one k-SA object,
//     violating k-SA-Agreement. If the spec admitted δ, the candidate
//     cannot be both content-neutral and compositional and equivalent to
//     k-SA — Theorem 1's contradiction, realized on this candidate.
//
// Every possible outcome refutes one hypothesis of the equivalence claim;
// the pipeline reports which.
package core

import (
	"fmt"

	"nobroadcast/internal/adversary"
	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/model"
	"nobroadcast/internal/obs"
	"nobroadcast/internal/sched"
	"nobroadcast/internal/spec"
	"nobroadcast/internal/trace"
)

// Outcome classifies how the equivalence claim of a candidate fails (or
// which stage of the pipeline could not proceed).
type Outcome int

// The outcomes, ordered by pipeline stage.
const (
	// OutcomeNoSoloDecision: the solver 𝓐 does not decide when running
	// alone — it fails k-SA-Termination in the wait-free model (t = n-1),
	// so B → k-SA does not hold with this solver.
	OutcomeNoSoloDecision Outcome = iota + 1
	// OutcomeNotSoloProgressing: the implementation 𝓑 stalls running
	// solo; by Lemma 7 a correct implementation cannot, so k-SA → B does
	// not hold with this implementation.
	OutcomeNotSoloProgressing
	// OutcomeImplementationIncorrect: the adversarial execution β is not
	// admitted by the candidate's own specification: 𝓑 does not implement
	// B (for k-BO, the corollary of Section 1.3).
	OutcomeImplementationIncorrect
	// OutcomeNotCompositional: β is admitted but its restriction γ is
	// not — the specification violates Definition 2.
	OutcomeNotCompositional
	// OutcomeNotContentNeutral: γ is admitted but its renaming δ is not —
	// the specification violates Definition 3.
	OutcomeNotContentNeutral
	// OutcomeAgreementViolated: δ is admitted and the replay of 𝓐 on δ
	// decides k+1 distinct values — the full Theorem 1 contradiction: a
	// content-neutral, compositional B equivalent to k-SA cannot exist,
	// so one of the candidate's claims is false.
	OutcomeAgreementViolated
)

var outcomeNames = map[Outcome]string{
	OutcomeNoSoloDecision:          "solver does not decide solo (B does not solve k-SA wait-free)",
	OutcomeNotSoloProgressing:      "implementation makes no solo progress (Lemma 7 witness)",
	OutcomeImplementationIncorrect: "adversarial execution violates the candidate's own specification (k-SA does not implement B)",
	OutcomeNotCompositional:        "specification is not compositional (restriction of an admissible execution rejected)",
	OutcomeNotContentNeutral:       "specification is not content-neutral (injective renaming of an admissible execution rejected)",
	OutcomeAgreementViolated:       "k-SA-Agreement violated on the substituted execution: k+1 distinct decisions (Theorem 1 contradiction)",
}

// String names the outcome.
func (o Outcome) String() string {
	if s, ok := outcomeNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// SoloRecord is the outcome of one solo execution α_i.
type SoloRecord struct {
	Proc model.ProcID
	// Input is the value proposed (distinct per process).
	Input model.Value
	// Decision is the value decided solo; by k-SA-Validity it equals
	// Input.
	Decision model.Value
	// DeliveredPayloads lists the contents of the messages p_i
	// B-delivered before deciding (the m_{i,1..N_i} of Lemma 9).
	DeliveredPayloads []model.Payload
	// Ni is len(DeliveredPayloads).
	Ni int
}

// Result is the full pipeline outcome for one candidate.
type Result struct {
	Candidate string
	K         int
	// N is max(1, N_1, ..., N_{k+1}).
	N       int
	Outcome Outcome
	// Detail is the stage-specific evidence (spec violation text, replay
	// decisions, ...).
	Detail string
	// Solo holds the per-process solo records (stage 1).
	Solo []SoloRecord
	// Adversary holds the Lemma 10 construction (stages 3-4), nil if the
	// pipeline failed earlier.
	Adversary *adversary.Result
	// LemmaReports are the mechanical Lemma 1-8/10 checks on the
	// construction.
	LemmaReports []adversary.LemmaReport
	// Beta, Gamma, Delta are the three executions of the Lemma 9
	// argument (nil for stages not reached).
	Beta, Gamma, Delta *trace.Trace
	// ReplayDecisions maps each process to the value it decides when 𝓐
	// is replayed against δ (stage 7).
	ReplayDecisions map[model.ProcID]model.Value
}

// Options tunes the pipeline.
type Options struct {
	// MaxSoloEvents bounds each solo execution (default 50000).
	MaxSoloEvents int
	// MaxStepsPerPhase is passed to the adversary (default 100000).
	MaxStepsPerPhase int
	// Obs receives pipeline observability: one span per phase of
	// RunImpossibility (solo runs, adversary, N-solo check, spec check on
	// β, restriction, renaming, replay), stage events, and — threaded
	// down — the sched/adversary metrics of the underlying runs. Nil
	// disables recording.
	Obs *obs.Registry
}

func (o Options) maxSolo() int {
	if o.MaxSoloEvents <= 0 {
		return 50000
	}
	return o.MaxSoloEvents
}

// soloInput is the distinct input value of process i in its solo run.
func soloInput(i model.ProcID) model.Value {
	return model.Value(fmt.Sprintf("solo-input-%d", int(i)))
}

// RunSolo executes α_i: process i runs the candidate's solver over the
// candidate's implementation while every other process crashes before
// taking a step.
func RunSolo(c broadcast.Candidate, k int, i model.ProcID, opts Options) (*SoloRecord, *trace.Trace, error) {
	n := k + 1
	inputs := make([]model.Value, n)
	for j := range inputs {
		inputs[j] = soloInput(model.ProcID(j + 1))
	}
	rt, err := sched.New(sched.Config{
		N:            n,
		NewAutomaton: c.NewAutomaton,
		Oracle:       c.OracleFor(k),
		NewApp:       c.SolverFor(),
		Inputs:       inputs,
		Obs:          opts.Obs,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("core: solo run: %w", err)
	}
	// Crash everyone but p_i before any scheduled event. (Init-time app
	// broadcasts of crashed processes were invoked before the crash; the
	// crash discards their queued actions, so no step of theirs executes.)
	for j := 1; j <= n; j++ {
		if model.ProcID(j) != i {
			if err := rt.Crash(model.ProcID(j)); err != nil {
				return nil, nil, fmt.Errorf("core: solo run: %w", err)
			}
		}
	}
	tr, err := rt.RunFair(sched.RunOptions{MaxEvents: opts.maxSolo()})
	if err != nil {
		return nil, nil, fmt.Errorf("core: solo run: %w", err)
	}
	tr.Name = fmt.Sprintf("alpha_%d(%s,k=%d)", int(i), c.Name, k)

	rec := &SoloRecord{Proc: i, Input: soloInput(i)}
	decided := false
	for _, s := range tr.X.Steps {
		if s.Proc != i {
			continue
		}
		switch {
		case s.Kind == model.KindDeliver && !decided:
			rec.DeliveredPayloads = append(rec.DeliveredPayloads, s.Payload)
		case s.Kind == model.KindDecide && s.Obj == sched.DefaultAppObject:
			decided = true
			rec.Decision = s.Val
		}
	}
	rec.Ni = len(rec.DeliveredPayloads)
	if !decided {
		return rec, tr, nil // caller classifies as OutcomeNoSoloDecision
	}
	if rec.Decision != rec.Input {
		// k-SA-Validity forces the solo decision to be the input.
		return nil, tr, fmt.Errorf("core: solo run of %v decided %q, not its input %q (k-SA-Validity broken by the solver)", i, rec.Decision, rec.Input)
	}
	return rec, tr, nil
}

// RunImpossibility retraces Theorem 1's proof on the candidate.
func RunImpossibility(c broadcast.Candidate, k int, opts Options) (*Result, error) {
	if k < 2 {
		return nil, fmt.Errorf("core: Theorem 1 concerns 1 < k < n; got k=%d", k)
	}
	reg := opts.Obs
	res := &Result{Candidate: c.Name, K: k}
	reg.Counter("core.pipelines").Inc()
	reg.Emit("pipeline.start", obs.Str("candidate", c.Name), obs.Int("k", int64(k)))
	// finish stamps the terminal event on every classified return path.
	finish := func() (*Result, error) {
		reg.Counter("core.outcomes").Inc()
		reg.Emit("pipeline.outcome",
			obs.Str("candidate", c.Name), obs.Int("k", int64(k)), obs.Int("n", int64(res.N)),
			obs.Str("outcome", res.Outcome.String()))
		return res, nil
	}

	// Stage 1: solo executions.
	soloSpan := reg.StartSpan("pipeline.solo")
	for i := 1; i <= k+1; i++ {
		rec, _, err := RunSolo(c, k, model.ProcID(i), opts)
		if err != nil {
			return nil, err
		}
		res.Solo = append(res.Solo, *rec)
		reg.Emit("pipeline.solo_run",
			obs.Str("candidate", c.Name), obs.Int("proc", int64(i)),
			obs.Int("ni", int64(rec.Ni)), obs.Str("decision", string(rec.Decision)))
		if rec.Decision == "" {
			soloSpan.End()
			res.Outcome = OutcomeNoSoloDecision
			res.Detail = fmt.Sprintf("%v never decides running alone", rec.Proc)
			return finish()
		}
	}
	soloSpan.End()

	// Stage 2: N.
	res.N = 1
	for _, rec := range res.Solo {
		if rec.Ni > res.N {
			res.N = rec.Ni
		}
	}

	// Stage 3: the adversarial N-solo construction (Lemma 10).
	advSpan := reg.StartSpan("pipeline.adversary")
	adv, err := adversary.Run(adversary.Options{
		K: k, N: res.N,
		NewAutomaton:     c.NewAutomaton,
		MaxStepsPerPhase: opts.MaxStepsPerPhase,
		Obs:              opts.Obs,
	})
	advSpan.End()
	if err != nil {
		var stall *adversary.ErrNotSoloProgressing
		if asStall(err, &stall) {
			res.Outcome = OutcomeNotSoloProgressing
			res.Detail = err.Error()
			return finish()
		}
		return nil, err
	}
	res.Adversary = adv
	res.Beta = adv.Beta
	checkSpan := reg.StartSpan("pipeline.nsolo-check")
	reports, ok := adv.Verify()
	checkSpan.End()
	res.LemmaReports = reports
	if !ok {
		return nil, fmt.Errorf("core: adversarial construction failed its own lemma checks: %+v", reports)
	}

	// Stage 4: does the candidate's spec admit β? The derived traces are
	// judged by streaming each once through the spec's online checker
	// (checkStreaming) — a violation's step index then points into the
	// derived trace, and candidate specs without a streaming form still
	// work through the buffered fallback.
	s := c.Spec(k)
	betaSpan := reg.StartSpan("pipeline.spec-beta")
	v := checkStreaming(s, adv.Beta)
	betaSpan.End()
	if v != nil {
		res.Outcome = OutcomeImplementationIncorrect
		res.Detail = v.String()
		return finish()
	}

	// Stage 5: restriction γ (compositionality).
	restrictSpan := reg.StartSpan("pipeline.restriction")
	keep := make(map[model.MsgID]bool)
	subst := make(map[model.MsgID]model.Payload)
	for i := 1; i <= k+1; i++ {
		pid := model.ProcID(i)
		rec := res.Solo[i-1]
		counted := adv.Counted[pid]
		for j := 0; j < rec.Ni; j++ {
			keep[counted[j]] = true
			subst[counted[j]] = rec.DeliveredPayloads[j]
		}
	}
	gamma := &trace.Trace{
		X:        adv.Beta.X.RestrictBroadcastOnly(keep),
		Complete: false,
		Name:     fmt.Sprintf("gamma(%s,k=%d,N=%d)", c.Name, k, res.N),
	}
	res.Gamma = gamma
	v = checkStreaming(s, gamma)
	restrictSpan.End()
	if v != nil {
		res.Outcome = OutcomeNotCompositional
		res.Detail = v.String()
		return finish()
	}

	// Stage 6: renaming δ (content-neutrality). Each counted message
	// becomes the corresponding solo-run message; distinct message
	// instances keep distinct identities, so the substitution is
	// injective on messages.
	renameSpan := reg.StartSpan("pipeline.renaming")
	delta := &trace.Trace{
		X:        gamma.X.RenameByMsg(subst),
		Complete: false,
		Name:     fmt.Sprintf("delta(%s,k=%d,N=%d)", c.Name, k, res.N),
	}
	res.Delta = delta
	v = checkStreaming(s, delta)
	renameSpan.End()
	if v != nil {
		res.Outcome = OutcomeNotContentNeutral
		res.Detail = v.String()
		return finish()
	}

	// Stage 7: replay 𝓐 against δ per process — indistinguishable from
	// the solo runs, so each process decides its own value.
	replaySpan := reg.StartSpan("pipeline.replay")
	res.ReplayDecisions = make(map[model.ProcID]model.Value, k+1)
	distinct := make(map[model.Value]bool)
	for i := 1; i <= k+1; i++ {
		pid := model.ProcID(i)
		dec, err := ReplayOnTrace(c.SolverFor()(pid), pid, k+1, soloInput(pid), delta)
		if err != nil {
			return nil, fmt.Errorf("core: replaying %v on delta: %w", pid, err)
		}
		res.ReplayDecisions[pid] = dec
		distinct[dec] = true
		if dec != res.Solo[i-1].Decision {
			return nil, fmt.Errorf("core: replay of %v on delta decided %q, solo run decided %q: indistinguishability broken", pid, dec, res.Solo[i-1].Decision)
		}
	}
	replaySpan.End()
	if len(distinct) <= k {
		return nil, fmt.Errorf("core: replay produced only %d distinct decisions; expected %d (pipeline invariant)", len(distinct), k+1)
	}
	res.Outcome = OutcomeAgreementViolated
	res.Detail = fmt.Sprintf("%d distinct values decided on one %d-SA object: %v", len(distinct), k, res.ReplayDecisions)
	return finish()
}

// checkStreaming judges a trace by streaming it once through the spec's
// online checker. Equivalent to s.Check for the specs this repo defines
// (their Check is the same adapter), but also gives candidate-supplied
// batch-only specs a uniform entry point via the buffered fallback.
func checkStreaming(s spec.Spec, t *trace.Trace) *spec.Violation {
	return spec.RunChecker(spec.NewCheckerFor(s, t.X.N), t)
}

func asStall(err error, target **adversary.ErrNotSoloProgressing) bool {
	e, ok := err.(*adversary.ErrNotSoloProgressing)
	if ok {
		*target = e
	}
	return ok
}
