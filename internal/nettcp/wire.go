// Package nettcp is the third transport: CAMP nodes as separate
// processes (or goroutine-isolated peers) wired over real TCP sockets.
// It reuses the automaton model of internal/sched and the fault
// machinery of internal/net, so the same candidates, workloads, and
// FaultPlans that run in-process run across loopback or real hosts.
//
// Topology follows the drand overlay sketched in SNIPPETS.md §3: every
// node listens on one TCP port, dials every peer once, and pumps egress
// frames through a dispatcher goroutine per peer. Frames are
// length-prefixed (uvarint) with a one-byte type tag and a JSON body.
// An optional rebroadcast mode floods each logical send to all peers
// with hash-based deduplication — first sight delivers (when addressed
// to this node) and relays once, so reliable-broadcast candidates keep
// making progress around severed links.
//
// A harness process coordinates a run: it collects the nodes' listen
// addresses, distributes the address book and run parameters, hosts the
// shared k-SA oracle (propose/decide round-trips travel over the control
// connection), injects broadcasts and crashes, and collects each node's
// literal `.ktr` trace stream over a dedicated connection. After the
// run, the per-node streams are merged into one causally-consistent
// linearization and compared by the same identity-erased projections the
// conformance harness applies to the in-process runtimes.
//
// Socket runs are conformance-checked, not byte-replayable: real
// schedulers and real sockets order events, so only the deterministic
// runtime's traces replay bit-identically. What the transport preserves
// is the verdict — see internal/conformance's socket corpus.
package nettcp

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	stdnet "net"
	"sync"
	"time"

	"nobroadcast/internal/model"
	"nobroadcast/internal/net"
)

// maxFrameBytes bounds one frame body, matching the binary trace
// format's block bound: a corrupt or malicious length prefix fails fast
// instead of sizing an allocation.
const maxFrameBytes = 1 << 26

// Frame types. Node→harness and harness→node frames travel on the
// control connection; fData travels node→node; fTraceHello opens the
// dedicated trace connection whose remaining bytes are a raw `.ktr`
// stream.
const (
	fHello      byte = 1  // node→harness: {id, addr} — registers a control conn
	fStart      byte = 2  // harness→node: run parameters + peer address book
	fReady      byte = 3  // node→harness: mesh wired, automaton initialized
	fBcast      byte = 4  // harness→node: invoke B.broadcast
	fCrash      byte = 5  // harness→node: crash the node (stop processing)
	fStop       byte = 6  // harness→node: finish cleanly (end marker, final status)
	fStatus     byte = 7  // node→harness: {delivered, returned} progress push
	fPropose    byte = 8  // node→harness: k-SA propose (blocks for fDecide)
	fDecide     byte = 9  // harness→node: k-SA decision value
	fPeerHello  byte = 10 // node→node: identifies the dialing peer
	fData       byte = 11 // node→node: one point-to-point message (or flood copy)
	fTraceHello byte = 12 // node→harness: opens the raw .ktr trace stream
)

// helloMsg registers a node's control connection and listen address.
type helloMsg struct {
	ID   int    `json:"id"`
	Addr string `json:"addr"`
}

// startMsg carries the run parameters from harness to node. Peers[i] is
// the listen address of process i+1.
type startMsg struct {
	N           int            `json:"n"`
	K           int            `json:"k"`
	Candidate   string         `json:"candidate"`
	Seed        uint64         `json:"seed"`
	MaxDelayNS  int64          `json:"max_delay_ns"`
	Rebroadcast bool           `json:"rebroadcast,omitempty"`
	Faults      *wireFaultPlan `json:"faults,omitempty"`
	Peers       []string       `json:"peers"`
}

// bcastMsg invokes B.broadcast at the receiving node with a
// harness-assigned global message identity.
type bcastMsg struct {
	Msg     model.MsgID   `json:"msg"`
	Payload model.Payload `json:"payload"`
}

// statusMsg is a node's progress push: cumulative deliveries and
// returned broadcast invocations.
type statusMsg struct {
	Delivered int64 `json:"delivered"`
	Returned  int64 `json:"returned"`
}

// ksaMsg is one k-SA propose (node→harness) or decide (harness→node).
type ksaMsg struct {
	Obj model.KSAID `json:"obj"`
	Val model.Value `json:"val"`
}

// peerHelloMsg identifies the dialing node on a node→node connection.
type peerHelloMsg struct {
	From int `json:"from"`
}

// dataMsg is one point-to-point message. From is the logical sender,
// Dest the logical receiver (in rebroadcast mode frames reach nodes
// other than Dest, which relay but do not deliver). Seq is the
// per-(From,Dest) send ordinal and Copy distinguishes fault-injected
// duplicates — together with the payload they key the rebroadcast
// dedup hash, so an injected duplicate still arrives twice. Via is the
// last relaying hop (0 = direct from the sender).
type dataMsg struct {
	From    int           `json:"from"`
	Dest    int           `json:"dest"`
	Seq     int64         `json:"seq"`
	Copy    int           `json:"copy"`
	Via     int           `json:"via,omitempty"`
	Payload model.Payload `json:"payload"`
}

// wireLinkFault is the JSON form of one per-link override (the
// in-memory form keys a map by a struct, which JSON cannot encode).
type wireLinkFault struct {
	From int     `json:"from"`
	To   int     `json:"to"`
	Drop float64 `json:"drop,omitempty"`
	Dup  float64 `json:"dup,omitempty"`
}

// wireFaultPlan is the JSON-encodable form of a net.FaultPlan.
type wireFaultPlan struct {
	Drop       float64         `json:"drop,omitempty"`
	Dup        float64         `json:"dup,omitempty"`
	Delay      *net.DelayDist  `json:"delay,omitempty"`
	Links      []wireLinkFault `json:"links,omitempty"`
	Partitions []net.Partition `json:"partitions,omitempty"`
}

// wireFaults converts a FaultPlan to its wire form (nil-safe).
func wireFaults(fp *net.FaultPlan) *wireFaultPlan {
	if fp == nil {
		return nil
	}
	w := &wireFaultPlan{Drop: fp.Drop, Dup: fp.Dup, Delay: fp.Delay, Partitions: fp.Partitions}
	for l, lf := range fp.Links {
		w.Links = append(w.Links, wireLinkFault{From: int(l.From), To: int(l.To), Drop: lf.Drop, Dup: lf.Dup})
	}
	return w
}

// plan converts the wire form back to a FaultPlan (nil-safe).
func (w *wireFaultPlan) plan() *net.FaultPlan {
	if w == nil {
		return nil
	}
	fp := &net.FaultPlan{Drop: w.Drop, Dup: w.Dup, Delay: w.Delay, Partitions: w.Partitions}
	if len(w.Links) > 0 {
		fp.Links = make(map[net.Link]net.LinkFaults, len(w.Links))
		for _, l := range w.Links {
			fp.Links[net.Link{From: model.ProcID(l.From), To: model.ProcID(l.To)}] =
				net.LinkFaults{Drop: l.Drop, Dup: l.Dup}
		}
	}
	return fp
}

// oneByteReader adapts an io.Reader to io.ByteReader without buffering,
// so a frame can be read off a connection whose following bytes belong
// to a different protocol (the trace connection's raw .ktr stream).
type oneByteReader struct{ r io.Reader }

func (b oneByteReader) ReadByte() (byte, error) {
	var p [1]byte
	_, err := io.ReadFull(b.r, p[:])
	return p[0], err
}

// readFrameFrom reads one length-prefixed frame without buffering past
// its end: the uvarint length byte-by-byte, then exactly the body.
func readFrameFrom(r io.Reader) (byte, []byte, error) {
	n, err := binary.ReadUvarint(oneByteReader{r})
	if err != nil {
		return 0, nil, err
	}
	if n < 1 || n > maxFrameBytes {
		return 0, nil, fmt.Errorf("nettcp: frame length %d outside [1, %d]", n, maxFrameBytes)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("nettcp: short frame: %w", err)
	}
	return body[0], body[1:], nil
}

// frameConn frames a connection: length-prefixed type-tagged JSON both
// ways. Sends are mutex-serialized (the dispatcher and the control
// pusher share egress); reads belong to a single reader goroutine.
type frameConn struct {
	c   stdnet.Conn
	wmu sync.Mutex
}

func newFrameConn(c stdnet.Conn) *frameConn { return &frameConn{c: c} }

// send writes one frame: uvarint(1+len(json)) ‖ type ‖ json.
func (fc *frameConn) send(t byte, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	buf := binary.AppendUvarint(nil, uint64(1+len(body)))
	buf = append(buf, t)
	buf = append(buf, body...)
	fc.wmu.Lock()
	defer fc.wmu.Unlock()
	_, err = fc.c.Write(buf)
	return err
}

// recv reads one frame. Only one goroutine may call recv.
func (fc *frameConn) recv() (byte, []byte, error) {
	return readFrameFrom(fc.c)
}

func (fc *frameConn) Close() error { return fc.c.Close() }

// decode unmarshals a frame body, naming the frame type on error.
func decode(t byte, body []byte, v any) error {
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("nettcp: bad frame type %d body: %w", t, err)
	}
	return nil
}

// dialRetry dials addr, retrying brief connection refusals while a peer
// or harness finishes binding its listener.
func dialRetry(addr string, timeout time.Duration) (stdnet.Conn, error) {
	deadline := time.Now().Add(timeout)
	for {
		c, err := stdnet.DialTimeout("tcp", addr, timeout)
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("nettcp: dial %s: %w", addr, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
