package nettcp

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"time"

	"nobroadcast/internal/model"
	"nobroadcast/internal/net"
	"nobroadcast/internal/obs"
	"nobroadcast/internal/sched"
	"nobroadcast/internal/trace"
)

// NodeHandle controls one spawned node: Kill tears it down abruptly (a
// killed process leaves a truncated trace stream), Wait joins its exit.
type NodeHandle interface {
	Kill() error
	Wait() error
}

// SpawnFunc starts node id pointed at the harness address and returns
// its handle. Nil ClusterConfig.Spawn means in-process goroutine nodes;
// ExecSpawn forks real processes.
type SpawnFunc func(id int, harnessAddr string) (NodeHandle, error)

// ClusterConfig configures a full socket run: a harness plus N spawned
// nodes.
type ClusterConfig struct {
	N, K      int
	Candidate string
	// NewAutomaton overrides the candidate for in-process nodes (ignored
	// by forked processes, which resolve the candidate by name).
	NewAutomaton func(id model.ProcID) sched.Automaton
	Seed         uint64
	MaxDelay     time.Duration
	Faults       *net.FaultPlan
	Rebroadcast  bool
	// Listen is the harness bind address; StartTimeout bounds startup.
	Listen       string
	StartTimeout time.Duration
	// Spawn starts each node. Nil runs nodes as goroutines in this
	// process — same wire protocol, same sockets, no fork.
	Spawn SpawnFunc
	// External skips spawning entirely: node processes are started by an
	// operator on other hosts and dial in on their own (multi-host mode).
	External bool
	Obs      *obs.Registry
}

// Cluster is a started socket run.
type Cluster struct {
	h       *Harness
	handles []NodeHandle
}

// goroutineHandle adapts an in-process Node to NodeHandle. The run
// result is latched so Wait is reentrant (Stop runs more than once in
// tests: once explicitly, once from cleanup).
type goroutineHandle struct {
	nd   *Node
	done chan struct{}
	err  error
}

func (g *goroutineHandle) Kill() error {
	g.nd.Kill()
	return nil
}

func (g *goroutineHandle) Wait() error {
	<-g.done
	return g.err
}

// procHandle adapts a forked process to NodeHandle.
type procHandle struct{ cmd *exec.Cmd }

func (p *procHandle) Kill() error { return p.cmd.Process.Kill() }
func (p *procHandle) Wait() error { return p.cmd.Wait() }

// ExecSpawn returns a SpawnFunc forking bin with argv(id, harnessAddr)
// as arguments — the harness side of cmd/ksasim's -node mode, which
// re-execs its own binary once per node.
func ExecSpawn(bin string, argv func(id int, harnessAddr string) []string) SpawnFunc {
	return func(id int, harnessAddr string) (NodeHandle, error) {
		cmd := exec.Command(bin, argv(id, harnessAddr)...)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("nettcp: spawn node %d: %w", id, err)
		}
		return &procHandle{cmd: cmd}, nil
	}
}

// StartCluster brings up a harness and its N nodes and completes the
// start handshake. Callers must Stop the cluster.
func StartCluster(cfg ClusterConfig) (*Cluster, error) {
	h, err := NewHarness(HarnessConfig{
		N: cfg.N, K: cfg.K, Candidate: cfg.Candidate, Seed: cfg.Seed,
		MaxDelay: cfg.MaxDelay, Faults: cfg.Faults, Rebroadcast: cfg.Rebroadcast,
		Listen: cfg.Listen, StartTimeout: cfg.StartTimeout, Obs: cfg.Obs,
	})
	if err != nil {
		return nil, err
	}
	cl := &Cluster{h: h}
	if !cfg.External {
		spawn := cfg.Spawn
		if spawn == nil {
			spawn = goroutineSpawn(cfg)
		}
		for id := 1; id <= cfg.N; id++ {
			hd, err := spawn(id, h.Addr())
			if err != nil {
				cl.Stop()
				return nil, err
			}
			cl.handles = append(cl.handles, hd)
		}
	}
	if err := h.Start(); err != nil {
		cl.Stop()
		return nil, err
	}
	return cl, nil
}

// goroutineSpawn runs nodes inside this process: full wire protocol
// over loopback sockets, without fork/exec. Tests and the serve layer
// use it; cmd/ksasim forks real processes via ExecSpawn.
func goroutineSpawn(cfg ClusterConfig) SpawnFunc {
	return func(id int, harnessAddr string) (NodeHandle, error) {
		nd, err := newNode(NodeConfig{
			ID: id, Harness: harnessAddr, NewAutomaton: cfg.NewAutomaton, Obs: cfg.Obs,
		})
		if err != nil {
			return nil, err
		}
		g := &goroutineHandle{nd: nd, done: make(chan struct{})}
		go func() {
			g.err = nd.run()
			close(g.done)
		}()
		return g, nil
	}
}

// Broadcast invokes B.broadcast at process p.
func (cl *Cluster) Broadcast(p model.ProcID, payload model.Payload) (model.MsgID, error) {
	return cl.h.Broadcast(p, payload)
}

// Crash crashes process p (it stops processing but exits cleanly).
func (cl *Cluster) Crash(p model.ProcID) error { return cl.h.Crash(p) }

// Kill abruptly terminates process p's node, leaving its trace stream
// truncated.
func (cl *Cluster) Kill(p model.ProcID) error {
	if p < 1 || int(p) > len(cl.handles) {
		return fmt.Errorf("nettcp: no spawned process %v", p)
	}
	return cl.handles[p-1].Kill()
}

// Delivered and Returned report process p's last-pushed progress.
func (cl *Cluster) Delivered(p model.ProcID) int64 { return cl.h.Delivered(p) }
func (cl *Cluster) Returned(p model.ProcID) int64  { return cl.h.Returned(p) }

// WaitUntil polls cond with bounded backoff until it holds or timeout.
func (cl *Cluster) WaitUntil(cond func() bool, timeout time.Duration) bool {
	return cl.h.WaitUntil(cond, timeout)
}

// Stop ends the run and joins the spawned nodes.
func (cl *Cluster) Stop() {
	cl.h.Stop()
	for _, hd := range cl.handles {
		hd.Wait()
	}
}

// Collect merges the per-node trace streams; call after Stop.
func (cl *Cluster) Collect() (*trace.Trace, []NodeTrace, error) { return cl.h.Collect() }

// Addr returns the harness listen address (for external nodes).
func (cl *Cluster) Addr() string { return cl.h.Addr() }

// ReadHostsFile parses a multi-host flag file: one line per node,
// "<id> <host>", '#' comments and blank lines ignored. It returns the
// highest id as N and the per-node host annotations (informational —
// nodes dial the harness, not the reverse). Operators start
// `ksasim -node -id <id> -harness <addr>` on each listed host.
func ReadHostsFile(path string) (n int, hosts map[int]string, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, err
	}
	defer f.Close()
	hosts = make(map[int]string)
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var id int
		var host string
		if _, err := fmt.Sscanf(text, "%d %s", &id, &host); err != nil {
			return 0, nil, fmt.Errorf("nettcp: %s:%d: want \"<id> <host>\", got %q", path, line, text)
		}
		if id < 1 {
			return 0, nil, fmt.Errorf("nettcp: %s:%d: node ids are 1-based, got %d", path, line, id)
		}
		if _, dup := hosts[id]; dup {
			return 0, nil, fmt.Errorf("nettcp: %s:%d: duplicate node id %d", path, line, id)
		}
		hosts[id] = host
		if id > n {
			n = id
		}
	}
	if err := sc.Err(); err != nil {
		return 0, nil, err
	}
	if len(hosts) == 0 {
		return 0, nil, fmt.Errorf("nettcp: %s lists no nodes", path)
	}
	if len(hosts) != n {
		return 0, nil, fmt.Errorf("nettcp: %s lists %d nodes but the highest id is %d — ids must be contiguous from 1", path, len(hosts), n)
	}
	return n, hosts, nil
}
