package nettcp

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/model"
	"nobroadcast/internal/net"
	"nobroadcast/internal/obs"
	"nobroadcast/internal/spec"
	"nobroadcast/internal/trace"
)

const testWait = 20 * time.Second

// startTestCluster brings up an in-process socket cluster (goroutine
// nodes, real loopback TCP) and registers cleanup.
func startTestCluster(t *testing.T, cfg ClusterConfig) *Cluster {
	t.Helper()
	cl, err := StartCluster(cfg)
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	t.Cleanup(cl.Stop)
	return cl
}

// broadcastAll injects per broadcasts at every node and waits for full
// delivery everywhere (n nodes × n·per messages each for send-to-all
// style candidates).
func broadcastAll(t *testing.T, cl *Cluster, n, per int) {
	t.Helper()
	for p := 1; p <= n; p++ {
		for i := 0; i < per; i++ {
			if _, err := cl.Broadcast(model.ProcID(p), model.Payload(fmt.Sprintf("m-%d-%d", p, i))); err != nil {
				t.Fatalf("Broadcast(%d): %v", p, err)
			}
		}
	}
	want := int64(n * per)
	ok := cl.WaitUntil(func() bool {
		for p := 1; p <= n; p++ {
			if cl.Delivered(model.ProcID(p)) < want || cl.Returned(model.ProcID(p)) < int64(per) {
				return false
			}
		}
		return true
	}, testWait)
	if !ok {
		for p := 1; p <= n; p++ {
			t.Logf("node %d: delivered=%d returned=%d", p, cl.Delivered(model.ProcID(p)), cl.Returned(model.ProcID(p)))
		}
		t.Fatal("cluster never reached full delivery")
	}
}

func TestClusterSendToAllConformsToSpec(t *testing.T) {
	const n, per = 3, 2
	cl := startTestCluster(t, ClusterConfig{N: n, K: 1, Candidate: "send-to-all", Seed: 7})
	broadcastAll(t, cl, n, per)
	cl.Stop()
	tr, perNode, err := cl.Collect()
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if !tr.Complete {
		t.Error("clean run collected an incomplete trace")
	}
	for _, nt := range perNode {
		if nt.Err != nil {
			t.Errorf("node %d stream error: %v", nt.ID, nt.Err)
		}
	}
	if v := spec.SendToAll().Check(tr); v != nil {
		t.Errorf("merged socket trace rejected: %v", v)
	}
}

func TestClusterOracleRoundTrip(t *testing.T) {
	// first-k consults the k-SA oracle on every delivery election, so
	// this run exercises the fPropose/fDecide control round-trip.
	const n, k, per = 3, 2, 2
	c, err := broadcast.Lookup("first-k")
	if err != nil {
		t.Fatal(err)
	}
	cl := startTestCluster(t, ClusterConfig{N: n, K: k, Candidate: "first-k", Seed: 11})
	broadcastAll(t, cl, n, per)
	cl.Stop()
	tr, _, err := cl.Collect()
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if v := c.Spec(k).Check(tr); v != nil {
		t.Errorf("merged first-k trace rejected: %v", v)
	}
	if v := spec.KSA(k).Check(tr); v != nil {
		t.Errorf("oracle usage violates k-SA: %v", v)
	}
}

func TestRebroadcastFloodDelivers(t *testing.T) {
	const n, per = 3, 2
	reg := obs.New()
	cl := startTestCluster(t, ClusterConfig{
		N: n, K: 1, Candidate: "reliable", Seed: 3, Rebroadcast: true, Obs: reg,
	})
	broadcastAll(t, cl, n, per)
	cl.Stop()
	tr, _, err := cl.Collect()
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if v := spec.BasicBroadcast().Check(tr); v != nil {
		t.Errorf("merged rebroadcast trace rejected: %v", v)
	}
	// Flooding a 3-node mesh necessarily relays and dedups: every frame
	// reaches its destination twice (direct + one relay hop).
	if reg.Counter("nettcp.rebroadcast.relays").Value() == 0 {
		t.Error("rebroadcast mode relayed nothing")
	}
	if reg.Counter("nettcp.rebroadcast.dedups").Value() == 0 {
		t.Error("rebroadcast mode deduplicated nothing")
	}
}

func TestCrashMidBroadcastEnvelope(t *testing.T) {
	// Failure envelope: a node crashes between a broadcast invocation
	// and the end of the run. The survivors keep delivering, the run
	// shuts down cleanly, and the merged trace carries the crash step
	// yet stays admissible.
	const n = 3
	cl := startTestCluster(t, ClusterConfig{N: n, K: 1, Candidate: "send-to-all", Seed: 5})
	if _, err := cl.Broadcast(1, "pre-crash"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Crash(2); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Broadcast(3, "post-crash"); err != nil {
		t.Fatal(err)
	}
	ok := cl.WaitUntil(func() bool {
		return cl.Delivered(1) >= 2 && cl.Delivered(3) >= 2
	}, testWait)
	if !ok {
		t.Fatalf("survivors stalled: delivered 1=%d 3=%d", cl.Delivered(1), cl.Delivered(3))
	}
	cl.Stop()
	tr, perNode, err := cl.Collect()
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if !tr.Complete {
		t.Error("crashed (not killed) node should still close its stream cleanly")
	}
	for _, nt := range perNode {
		if nt.Err != nil {
			t.Errorf("node %d stream error: %v", nt.ID, nt.Err)
		}
	}
	sawCrash := false
	for _, s := range tr.X.Steps {
		if s.Kind == model.KindCrash && s.Proc == 2 {
			sawCrash = true
		}
	}
	if !sawCrash {
		t.Error("merged trace misses the crash step of process 2")
	}
	if v := spec.SendToAll().Check(tr); v != nil {
		t.Errorf("crash envelope trace rejected: %v", v)
	}
}

func TestPartitionHealsOnSchedule(t *testing.T) {
	// Failure envelope: a loopback pair starts partitioned and heals on
	// schedule. Messages sent during the partition are lost at egress
	// (indistinguishable from infinite transit); messages sent after
	// the heal arrive.
	const heal = 400 * time.Millisecond
	cl := startTestCluster(t, ClusterConfig{
		N: 2, K: 1, Candidate: "send-to-all", Seed: 9,
		Faults: &net.FaultPlan{Partitions: []net.Partition{{
			A: []model.ProcID{1}, B: []model.ProcID{2}, Start: 0, Heal: heal,
		}}},
	})
	began := time.Now()
	if _, err := cl.Broadcast(1, "during-partition"); err != nil {
		t.Fatal(err)
	}
	if !cl.WaitUntil(func() bool { return cl.Delivered(1) >= 1 }, testWait) {
		t.Fatal("node 1 never self-delivered")
	}
	if got := cl.Delivered(2); got != 0 {
		t.Fatalf("node 2 delivered %d across an active partition", got)
	}
	// Egress partitions are evaluated against each node's own start
	// clock, slightly behind the cluster's; wait past both.
	time.Sleep(heal + 200*time.Millisecond - time.Since(began))
	if _, err := cl.Broadcast(1, "after-heal"); err != nil {
		t.Fatal(err)
	}
	if !cl.WaitUntil(func() bool { return cl.Delivered(2) >= 1 }, testWait) {
		t.Fatal("healed partition never let a message through")
	}
	cl.Stop()
	tr, _, err := cl.Collect()
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	// The message lost to the partition is a genuine reliability
	// violation, and it must be visible in the merged socket trace:
	// the liveness checker blames the never-delivered broadcast.
	v := spec.SendToAll().Check(tr)
	if v == nil {
		t.Fatal("partitioned run admitted by the reliable-delivery spec")
	}
	if !strings.Contains(v.Property, "Termination") {
		t.Errorf("expected a termination violation, got: %v", v)
	}
}

func TestKilledNodeTraceTruncated(t *testing.T) {
	// Failure envelope: a killed node (process death, not a modeled
	// crash) cuts its trace stream without the end marker; Collect
	// surfaces it as trace.ErrTruncated and the merged trace is marked
	// incomplete.
	const n = 3
	cl := startTestCluster(t, ClusterConfig{N: n, K: 1, Candidate: "send-to-all", Seed: 13})
	broadcastAll(t, cl, n, 1)
	if err := cl.Kill(3); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	cl.Stop()
	tr, perNode, err := cl.Collect()
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if !errors.Is(perNode[2].Err, trace.ErrTruncated) {
		t.Errorf("killed node stream error = %v, want trace.ErrTruncated", perNode[2].Err)
	}
	for _, nt := range perNode[:2] {
		if nt.Err != nil {
			t.Errorf("surviving node %d stream error: %v", nt.ID, nt.Err)
		}
	}
	if tr.Complete {
		t.Error("trace with a truncated stream marked complete")
	}
}

func TestMergeStreamsRespectsCrossStreamEnablers(t *testing.T) {
	inv := model.Step{Proc: 1, Kind: model.KindBroadcastInvoke, Msg: 1, Payload: "x"}
	del := model.Step{Proc: 2, Kind: model.KindDeliver, Peer: 1, Msg: 1, Payload: "x"}
	prop := model.Step{Proc: 1, Kind: model.KindPropose, Obj: 1, Val: "a"}
	dec := model.Step{Proc: 2, Kind: model.KindDecide, Obj: 1, Val: "a"}
	// Stream 1 (earlier in round-robin order) holds the dependents;
	// stream 2 holds the enablers. The merge must reorder across
	// streams while preserving each stream's own order.
	merged := mergeStreams([][]model.Step{{del, dec}, {inv, prop}})
	if len(merged) != 4 {
		t.Fatalf("merged %d of 4 steps", len(merged))
	}
	pos := func(want model.Step) int {
		for i, s := range merged {
			if s == want {
				return i
			}
		}
		t.Fatalf("step %+v missing from merge", want)
		return -1
	}
	if pos(inv) > pos(del) {
		t.Error("delivery merged before its broadcast invocation")
	}
	if pos(prop) > pos(dec) {
		t.Error("decision merged before its value's proposition")
	}
}

func TestMergeStreamsTerminatesOnTruncatedProducer(t *testing.T) {
	// The invoke of msg 99 was lost with a killed producer: the merge
	// must still emit the orphaned delivery and terminate.
	orphan := model.Step{Proc: 2, Kind: model.KindDeliver, Peer: 1, Msg: 99, Payload: "x"}
	other := model.Step{Proc: 3, Kind: model.KindBroadcastInvoke, Msg: 1, Payload: "y"}
	merged := mergeStreams([][]model.Step{{orphan}, {other}})
	if len(merged) != 2 {
		t.Fatalf("merged %d of 2 steps", len(merged))
	}
}

func TestWireFaultPlanRoundTrip(t *testing.T) {
	fp := &net.FaultPlan{
		Drop: 0.25, Dup: 0.125,
		Links: map[net.Link]net.LinkFaults{
			{From: 1, To: 2}: {Drop: 0.5},
			{From: 2, To: 1}: {Dup: 0.75},
		},
		Partitions: []net.Partition{{
			A: []model.ProcID{1}, B: []model.ProcID{2},
			Start: time.Second, Heal: 2 * time.Second,
		}},
	}
	got := wireFaults(fp).plan()
	if got.Drop != fp.Drop || got.Dup != fp.Dup {
		t.Errorf("global probabilities lost: %+v", got)
	}
	if len(got.Links) != 2 || got.Links[net.Link{From: 1, To: 2}].Drop != 0.5 ||
		got.Links[net.Link{From: 2, To: 1}].Dup != 0.75 {
		t.Errorf("per-link overrides lost: %+v", got.Links)
	}
	if len(got.Partitions) != 1 || got.Partitions[0].Heal != 2*time.Second {
		t.Errorf("partitions lost: %+v", got.Partitions)
	}
	if wireFaults(nil) != nil || (*wireFaultPlan)(nil).plan() != nil {
		t.Error("nil plans must stay nil through the wire")
	}
}

func TestReadHostsFile(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		path := dir + "/" + name
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	n, hosts, err := ReadHostsFile(write("ok", "# fleet\n1 10.0.0.1\n2 10.0.0.2\n\n3 10.0.0.3\n"))
	if err != nil {
		t.Fatalf("valid hosts file rejected: %v", err)
	}
	if n != 3 || hosts[2] != "10.0.0.2" {
		t.Errorf("parsed n=%d hosts=%v", n, hosts)
	}
	if _, _, err := ReadHostsFile(write("dup", "1 a\n1 b\n")); err == nil {
		t.Error("duplicate id accepted")
	}
	if _, _, err := ReadHostsFile(write("gap", "1 a\n3 c\n")); err == nil {
		t.Error("non-contiguous ids accepted")
	}
	if _, _, err := ReadHostsFile(write("empty", "# nothing\n")); err == nil {
		t.Error("empty hosts file accepted")
	}
}
