package nettcp

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	stdnet "net"
	"sync"
	"sync/atomic"
	"time"

	"nobroadcast/internal/model"
	"nobroadcast/internal/net"
	"nobroadcast/internal/obs"
	"nobroadcast/internal/sched"
	"nobroadcast/internal/trace"
)

// HarnessConfig configures a run coordinator.
type HarnessConfig struct {
	// N is the number of processes; K the oracle's agreement degree
	// (default 1).
	N, K int
	// Candidate names the broadcast abstraction nodes should run (nodes
	// with a NewAutomaton override ignore it, but it still labels the
	// collected trace).
	Candidate string
	// Seed feeds the per-node egress generators (derived positionally).
	Seed uint64
	// MaxDelay bounds each node's artificial egress delay.
	MaxDelay time.Duration
	// Faults is the fault plan every node's egress applies. Validated
	// against N here, before any node process starts.
	Faults *net.FaultPlan
	// Rebroadcast floods every copy to all peers with hash dedup.
	Rebroadcast bool
	// Listen is the harness bind address (default "127.0.0.1:0"; bind
	// "0.0.0.0:port" for multi-host runs).
	Listen string
	// StartTimeout bounds the wait for all nodes to register and become
	// ready (default 30s).
	StartTimeout time.Duration
	// Obs receives harness metrics. Nil disables recording.
	Obs *obs.Registry
}

// nodeLink is the harness's view of one node.
type nodeLink struct {
	id int

	mu      sync.Mutex
	fc      *frameConn // control connection; nil until hello
	addr    string
	rawLive stdnet.Conn // trace connection; nil until trace hello

	ready     chan struct{}
	traceDone chan struct{}
	traceMu   sync.Mutex
	traceBuf  bytes.Buffer

	delivered atomic.Int64
	returned  atomic.Int64
}

// Harness coordinates one socket run: it distributes the address book
// and run parameters, hosts the shared k-SA oracle, injects broadcasts
// and crashes, and collects the per-node trace streams.
type Harness struct {
	cfg    HarnessConfig
	ln     stdnet.Listener
	links  []*nodeLink
	msgSeq atomic.Int64

	oracleMu sync.Mutex
	oracle   *sched.FreeOracle

	helloCh chan int // control registrations, by node id
	traceCh chan int // trace registrations, by node id

	stopOnce sync.Once
	done     chan struct{}
	wg       sync.WaitGroup

	proposes, statuses *obs.Counter
}

// NewHarness binds the coordinator's listener and starts accepting node
// registrations. Callers spawn the node processes (or let a Cluster do
// it), then call Start.
func NewHarness(cfg HarnessConfig) (*Harness, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("nettcp: N must be positive, got %d", cfg.N)
	}
	if cfg.K < 1 {
		cfg.K = 1
	}
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.StartTimeout <= 0 {
		cfg.StartTimeout = 30 * time.Second
	}
	if err := cfg.Faults.Validate(cfg.N); err != nil {
		return nil, err
	}
	ln, err := stdnet.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("nettcp: harness listen: %w", err)
	}
	h := &Harness{
		cfg:      cfg,
		ln:       ln,
		links:    make([]*nodeLink, cfg.N),
		oracle:   sched.NewFreeOracle(cfg.K),
		helloCh:  make(chan int, cfg.N),
		traceCh:  make(chan int, cfg.N),
		done:     make(chan struct{}),
		proposes: cfg.Obs.Counter("nettcp.harness.proposes"),
		statuses: cfg.Obs.Counter("nettcp.harness.statuses"),
	}
	for i := range h.links {
		h.links[i] = &nodeLink{
			id:        i + 1,
			ready:     make(chan struct{}),
			traceDone: make(chan struct{}),
		}
	}
	go h.accept()
	return h, nil
}

// Addr returns the harness's listen address, for node -harness flags.
func (h *Harness) Addr() string { return h.ln.Addr().String() }

// accept identifies each inbound connection by its first frame: a
// control registration (fHello) or a trace stream (fTraceHello).
func (h *Harness) accept() {
	for {
		c, err := h.ln.Accept()
		if err != nil {
			return
		}
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			h.identify(c)
		}()
	}
}

// identify reads the first frame without buffering past it, so a trace
// connection's following raw `.ktr` bytes stay on the wire.
func (h *Harness) identify(c stdnet.Conn) {
	t, body, err := readFrameFrom(c)
	if err != nil {
		c.Close()
		return
	}
	var hm helloMsg
	if decode(t, body, &hm) != nil || hm.ID < 1 || hm.ID > h.cfg.N {
		c.Close()
		return
	}
	nl := h.links[hm.ID-1]
	switch t {
	case fHello:
		nl.mu.Lock()
		nl.fc = newFrameConn(c)
		nl.addr = hm.Addr
		nl.mu.Unlock()
		select {
		case h.helloCh <- hm.ID:
		default:
		}
		h.serveControl(nl)
	case fTraceHello:
		nl.mu.Lock()
		nl.rawLive = c
		nl.mu.Unlock()
		select {
		case h.traceCh <- hm.ID:
		default:
		}
		h.drainTrace(nl, c)
	default:
		c.Close()
	}
}

// serveControl handles one node's control frames until the connection
// drops: readiness, status pushes, and oracle round-trips.
func (h *Harness) serveControl(nl *nodeLink) {
	fc := nl.control()
	for {
		t, body, err := fc.recv()
		if err != nil {
			return
		}
		switch t {
		case fReady:
			select {
			case <-nl.ready:
			default:
				close(nl.ready)
			}
		case fStatus:
			var sm statusMsg
			if decode(t, body, &sm) != nil {
				continue
			}
			h.statuses.Inc()
			nl.delivered.Store(sm.Delivered)
			nl.returned.Store(sm.Returned)
		case fPropose:
			var km ksaMsg
			if decode(t, body, &km) != nil {
				continue
			}
			h.proposes.Inc()
			h.oracleMu.Lock()
			val := h.oracle.Propose(km.Obj, model.ProcID(nl.id), km.Val)
			h.oracleMu.Unlock()
			fc.send(fDecide, ksaMsg{Obj: km.Obj, Val: val})
		}
	}
}

// drainTrace buffers a node's raw trace stream until the node closes it
// (cleanly after the end marker, or abruptly on a kill).
func (h *Harness) drainTrace(nl *nodeLink, c stdnet.Conn) {
	defer close(nl.traceDone)
	defer c.Close()
	buf := make([]byte, 32*1024)
	for {
		n, err := c.Read(buf)
		if n > 0 {
			nl.traceMu.Lock()
			nl.traceBuf.Write(buf[:n])
			nl.traceMu.Unlock()
		}
		if err != nil {
			return
		}
	}
}

func (nl *nodeLink) control() *frameConn {
	nl.mu.Lock()
	defer nl.mu.Unlock()
	return nl.fc
}

// Start runs the registration handshake to completion: await all
// control registrations, distribute the start frame with the full
// address book, then await readiness from every node.
func (h *Harness) Start() error {
	deadline := time.NewTimer(h.cfg.StartTimeout)
	defer deadline.Stop()
	for seen := 0; seen < h.cfg.N; {
		select {
		case <-h.helloCh:
			seen++
		case <-deadline.C:
			return fmt.Errorf("nettcp: %d of %d nodes registered within %v", h.registered(), h.cfg.N, h.cfg.StartTimeout)
		}
	}
	start := startMsg{
		N:           h.cfg.N,
		K:           h.cfg.K,
		Candidate:   h.cfg.Candidate,
		Seed:        h.cfg.Seed,
		MaxDelayNS:  int64(h.cfg.MaxDelay),
		Rebroadcast: h.cfg.Rebroadcast,
		Faults:      wireFaults(h.cfg.Faults),
		Peers:       make([]string, h.cfg.N),
	}
	for i, nl := range h.links {
		nl.mu.Lock()
		start.Peers[i] = nl.addr
		nl.mu.Unlock()
	}
	for _, nl := range h.links {
		if err := nl.control().send(fStart, start); err != nil {
			return fmt.Errorf("nettcp: start frame to node %d: %w", nl.id, err)
		}
	}
	for _, nl := range h.links {
		select {
		case <-nl.ready:
		case <-deadline.C:
			return fmt.Errorf("nettcp: node %d not ready within %v", nl.id, h.cfg.StartTimeout)
		}
	}
	return nil
}

// registered counts nodes with a control connection.
func (h *Harness) registered() int {
	n := 0
	for _, nl := range h.links {
		if nl.control() != nil {
			n++
		}
	}
	return n
}

// Broadcast invokes B.broadcast at process p with a fresh global
// message identity.
func (h *Harness) Broadcast(p model.ProcID, payload model.Payload) (model.MsgID, error) {
	nl, err := h.link(p)
	if err != nil {
		return model.NoMsg, err
	}
	msg := model.MsgID(h.msgSeq.Add(1))
	if err := nl.control().send(fBcast, bcastMsg{Msg: msg, Payload: payload}); err != nil {
		return model.NoMsg, fmt.Errorf("nettcp: broadcast to node %d: %w", p, err)
	}
	return msg, nil
}

// Crash crashes process p: it stops processing events but still closes
// its trace stream cleanly at the end of the run.
func (h *Harness) Crash(p model.ProcID) error {
	nl, err := h.link(p)
	if err != nil {
		return err
	}
	return nl.control().send(fCrash, struct{}{})
}

// Delivered reports process p's last-pushed delivery count.
func (h *Harness) Delivered(p model.ProcID) int64 {
	nl, err := h.link(p)
	if err != nil {
		return 0
	}
	return nl.delivered.Load()
}

// Returned reports process p's last-pushed count of returned
// B.broadcast invocations.
func (h *Harness) Returned(p model.ProcID) int64 {
	nl, err := h.link(p)
	if err != nil {
		return 0
	}
	return nl.returned.Load()
}

func (h *Harness) link(p model.ProcID) (*nodeLink, error) {
	if p < 1 || int(p) > h.cfg.N {
		return nil, fmt.Errorf("nettcp: no process %v", p)
	}
	return h.links[p-1], nil
}

// WaitUntil polls cond until it holds or the timeout elapses, with the
// same bounded exponential backoff as the in-process runtime.
func (h *Harness) WaitUntil(cond func() bool, timeout time.Duration) bool {
	const (
		floor   = 200 * time.Microsecond
		ceiling = 5 * time.Millisecond
	)
	deadline := time.Now().Add(timeout)
	sleep := floor
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return cond()
		}
		time.Sleep(sleep)
		if sleep < ceiling {
			sleep *= 2
			if sleep > ceiling {
				sleep = ceiling
			}
		}
	}
}

// Stop ends the run: every reachable node gets a stop frame, trace
// streams drain (bounded), and the listener closes. Idempotent.
func (h *Harness) Stop() {
	h.stopOnce.Do(func() {
		for _, nl := range h.links {
			if fc := nl.control(); fc != nil {
				fc.send(fStop, struct{}{})
			}
		}
		drain := time.NewTimer(10 * time.Second)
		defer drain.Stop()
		for _, nl := range h.links {
			nl.mu.Lock()
			open := nl.rawLive != nil
			nl.mu.Unlock()
			if !open {
				continue
			}
			select {
			case <-nl.traceDone:
			case <-drain.C:
				nl.mu.Lock()
				nl.rawLive.Close()
				nl.mu.Unlock()
			}
		}
		close(h.done)
		h.ln.Close()
		for _, nl := range h.links {
			if fc := nl.control(); fc != nil {
				fc.Close()
			}
		}
		h.wg.Wait()
	})
}

// NodeTrace is the decoded trace stream of one node, with its
// end-of-stream condition: Err wraps trace.ErrTruncated when the node
// died without closing its stream (a killed process), nil on a clean
// end marker.
type NodeTrace struct {
	ID    int
	Steps []model.Step
	Err   error
}

// Collect decodes every node's trace stream and merges them into one
// execution. Call after Stop. The merged trace holds per-node step
// order exactly and interleaves streams so that cross-process
// constraints (a delivery's broadcast invocation, a decided value's
// proposition) precede their dependents — the identity-erased
// conformance projections are insensitive to the remaining ordering
// freedom. Complete is true only when every stream ended cleanly.
func (h *Harness) Collect() (*trace.Trace, []NodeTrace, error) {
	perNode := make([]NodeTrace, h.cfg.N)
	streams := make([][]model.Step, h.cfg.N)
	complete := true
	for i, nl := range h.links {
		nl.traceMu.Lock()
		raw := append([]byte(nil), nl.traceBuf.Bytes()...)
		nl.traceMu.Unlock()
		steps, err := decodeStream(raw)
		perNode[i] = NodeTrace{ID: i + 1, Steps: steps, Err: err}
		streams[i] = steps
		if err != nil {
			complete = false
		}
	}
	x := model.NewExecution(h.cfg.N)
	x.Append(mergeStreams(streams)...)
	tr := trace.New(x)
	tr.Complete = complete
	tr.Name = h.cfg.Candidate
	return tr, perNode, nil
}

// decodeStream reads one node's raw stream to its end, returning the
// steps that made it onto the wire plus the stream's terminal
// condition.
func decodeStream(raw []byte) ([]model.Step, error) {
	br, err := trace.NewBinaryReader(bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	var steps []model.Step
	for {
		s, err := br.Next()
		if errors.Is(err, io.EOF) {
			return steps, nil
		}
		if err != nil {
			return steps, err
		}
		steps = append(steps, s)
	}
}

// mergeStreams interleaves per-node step streams into one execution.
// Per-stream order is preserved exactly. Two cross-stream constraints
// hold steps back until their enablers merge: a delivery (or broadcast
// return) waits for its message's invocation, and a decision waits for
// its value's proposition — precisely the cross-process dependencies
// the spec checkers evaluate (BC-Validity and k-SA-Validity). When no
// stream's head is enabled (a truncated producer lost the enabling
// step), the lowest-numbered non-exhausted stream emits anyway so the
// merge always terminates.
func mergeStreams(streams [][]model.Step) []model.Step {
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	out := make([]model.Step, 0, total)
	idx := make([]int, len(streams))
	invoked := make(map[model.MsgID]bool)
	proposed := make(map[model.KSAID]map[model.Value]bool)

	note := func(s model.Step) {
		switch s.Kind {
		case model.KindBroadcastInvoke:
			invoked[s.Msg] = true
		case model.KindPropose:
			m := proposed[s.Obj]
			if m == nil {
				m = make(map[model.Value]bool)
				proposed[s.Obj] = m
			}
			m[s.Val] = true
		}
	}
	enabled := func(s model.Step) bool {
		switch s.Kind {
		case model.KindDeliver, model.KindBroadcastReturn:
			return s.Msg == model.NoMsg || invoked[s.Msg]
		case model.KindDecide:
			return proposed[s.Obj][s.Val]
		}
		return true
	}
	take := func(i int) {
		s := streams[i][idx[i]]
		idx[i]++
		note(s)
		out = append(out, s)
	}

	for len(out) < total {
		progress := false
		for i := range streams {
			for idx[i] < len(streams[i]) && enabled(streams[i][idx[i]]) {
				take(i)
				progress = true
			}
		}
		if progress {
			continue
		}
		for i := range streams {
			if idx[i] < len(streams[i]) {
				take(i)
				break
			}
		}
	}
	return out
}
