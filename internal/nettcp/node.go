package nettcp

import (
	"fmt"
	"hash/fnv"
	stdnet "net"
	"sync"
	"sync/atomic"
	"time"

	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/model"
	"nobroadcast/internal/net"
	"nobroadcast/internal/obs"
	"nobroadcast/internal/rng"
	"nobroadcast/internal/sched"
	"nobroadcast/internal/trace"
)

// NodeConfig configures one CAMP node process.
type NodeConfig struct {
	// ID is the node's process identity (1-based).
	ID int
	// Harness is the coordinator's listen address. Required.
	Harness string
	// Listen is the node's own listen address (default "127.0.0.1:0").
	Listen string
	// NewAutomaton overrides the candidate named in the start frame —
	// used by in-process tests running custom automata. Nil resolves the
	// candidate from the broadcast registry.
	NewAutomaton func(id model.ProcID) sched.Automaton
	// DialTimeout bounds each dial (harness, trace, peers); default 10s.
	DialTimeout time.Duration
	// Obs receives the node's metrics (nettcp.* counters plus the
	// net.faults.* counters of the egress). Nil disables recording.
	Obs *obs.Registry
}

// nodeEvent is one inbox entry: a point-to-point reception or a
// B.broadcast invocation injected by the harness.
type nodeEvent struct {
	kind    int // 0 receive, 1 broadcast
	from    model.ProcID
	msg     model.MsgID
	payload model.Payload
}

// Node is one CAMP process speaking the nettcp wire protocol. The event
// loop mirrors internal/net's node goroutine: a single goroutine runs
// the automaton's handlers and executes the emitted actions, so the
// determinism contract automata rely on holds here too.
type Node struct {
	cfg NodeConfig
	id  model.ProcID
	n   int

	automaton   sched.Automaton
	egress      *net.Egress
	rebroadcast bool

	control *frameConn
	traceC  stdnet.Conn
	ln      stdnet.Listener
	peers   []*frameConn // index p-1; nil at own id
	outs    []chan dataMsg

	inbox    chan nodeEvent
	decideCh chan model.Value
	stopCh   chan struct{}
	stopOnce sync.Once
	killed   atomic.Bool
	crashed  atomic.Bool

	// recMu serializes trace recording: the event loop and the control
	// reader (crash steps) both record.
	recMu sync.Mutex
	bw    *trace.BinaryWriter

	delivered atomic.Int64
	returned  atomic.Int64
	// seq[q-1] is the next send ordinal toward q; only the event loop
	// assigns ordinals (delayed copies capture theirs at Pass time).
	seq []int64

	// seen dedups flood copies in rebroadcast mode.
	seenMu sync.Mutex
	seen   map[uint64]struct{}

	delayWg sync.WaitGroup
	connWg  sync.WaitGroup

	framesOut, framesIn, relays, dedups *obs.Counter
}

// RunNode wires a node into the harness's run and blocks until the run
// ends (fStop, a kill, or a connection failure). It is the whole
// lifetime of a node process: cmd/ksasim's -node mode calls exactly
// this.
func RunNode(cfg NodeConfig) error {
	nd, err := newNode(cfg)
	if err != nil {
		return err
	}
	return nd.run()
}

func newNode(cfg NodeConfig) (*Node, error) {
	if cfg.ID < 1 {
		return nil, fmt.Errorf("nettcp: node id must be positive, got %d", cfg.ID)
	}
	if cfg.Harness == "" {
		return nil, fmt.Errorf("nettcp: node needs the harness address")
	}
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	return &Node{
		cfg:       cfg,
		id:        model.ProcID(cfg.ID),
		decideCh:  make(chan model.Value, 1),
		stopCh:    make(chan struct{}),
		seen:      make(map[uint64]struct{}),
		framesOut: cfg.Obs.Counter("nettcp.frames.out"),
		framesIn:  cfg.Obs.Counter("nettcp.frames.in"),
		relays:    cfg.Obs.Counter("nettcp.rebroadcast.relays"),
		dedups:    cfg.Obs.Counter("nettcp.rebroadcast.dedups"),
	}, nil
}

// run executes the node lifecycle: listen, register, receive the start
// frame, wire the mesh, init the automaton, signal ready, then serve the
// event loop until stopped.
func (nd *Node) run() error {
	sp := nd.cfg.Obs.StartSpan("nettcp.node.run")
	defer sp.End()

	var err error
	nd.ln, err = stdnet.Listen("tcp", nd.cfg.Listen)
	if err != nil {
		return fmt.Errorf("nettcp: node %d listen: %w", nd.cfg.ID, err)
	}
	defer nd.ln.Close()

	hc, err := dialRetry(nd.cfg.Harness, nd.cfg.DialTimeout)
	if err != nil {
		return err
	}
	nd.control = newFrameConn(hc)
	defer nd.control.Close()
	if err := nd.control.send(fHello, helloMsg{ID: nd.cfg.ID, Addr: nd.ln.Addr().String()}); err != nil {
		return fmt.Errorf("nettcp: node %d hello: %w", nd.cfg.ID, err)
	}

	t, body, err := nd.control.recv()
	if err != nil {
		return fmt.Errorf("nettcp: node %d awaiting start: %w", nd.cfg.ID, err)
	}
	if t != fStart {
		return fmt.Errorf("nettcp: node %d expected start frame, got type %d", nd.cfg.ID, t)
	}
	var start startMsg
	if err := decode(t, body, &start); err != nil {
		return err
	}
	if err := nd.applyStart(start); err != nil {
		return err
	}

	if err := nd.openTrace(start); err != nil {
		return err
	}
	go nd.acceptPeers()
	if err := nd.dialPeers(start.Peers); err != nil {
		return err
	}
	go nd.readControl()

	// The mesh is wired: Init may emit sends.
	nd.handle(func(env *sched.Env) { nd.automaton.Init(env) })
	if err := nd.control.send(fReady, struct{}{}); err != nil {
		return fmt.Errorf("nettcp: node %d ready: %w", nd.cfg.ID, err)
	}

	nd.loop()
	nd.shutdown()
	return nil
}

// applyStart validates the start frame and builds the automaton and
// egress from it.
func (nd *Node) applyStart(start startMsg) error {
	if start.N < 1 || nd.cfg.ID > start.N {
		return fmt.Errorf("nettcp: node %d outside system of %d processes", nd.cfg.ID, start.N)
	}
	if len(start.Peers) != start.N {
		return fmt.Errorf("nettcp: start frame carries %d peer addresses for %d processes", len(start.Peers), start.N)
	}
	nd.n = start.N
	nd.rebroadcast = start.Rebroadcast
	nd.inbox = make(chan nodeEvent, 1024)
	nd.seq = make([]int64, start.N)
	nd.peers = make([]*frameConn, start.N)
	nd.outs = make([]chan dataMsg, start.N)

	newAutomaton := nd.cfg.NewAutomaton
	if newAutomaton == nil {
		c, err := broadcast.Lookup(start.Candidate)
		if err != nil {
			return err
		}
		newAutomaton = c.NewAutomaton
	}
	nd.automaton = newAutomaton(nd.id)

	egress, err := net.NewEgress(start.Faults.plan(), start.N,
		rng.Derive(start.Seed, uint64(nd.cfg.ID)), time.Duration(start.MaxDelayNS), nd.cfg.Obs)
	if err != nil {
		return err
	}
	nd.egress = egress
	return nil
}

// openTrace dials the harness a second time and turns the connection
// into a raw wire-format-v1 stream after one identifying frame.
func (nd *Node) openTrace(start startMsg) error {
	tc, err := dialRetry(nd.cfg.Harness, nd.cfg.DialTimeout)
	if err != nil {
		return err
	}
	if err := newFrameConn(tc).send(fTraceHello, helloMsg{ID: nd.cfg.ID}); err != nil {
		tc.Close()
		return fmt.Errorf("nettcp: node %d trace hello: %w", nd.cfg.ID, err)
	}
	bw, err := trace.NewBinaryWriter(tc, trace.StreamHeader{
		N: start.N, Complete: true, Name: fmt.Sprintf("node-%d", nd.cfg.ID), Steps: -1,
	})
	if err != nil {
		tc.Close()
		return err
	}
	nd.traceC = tc
	nd.bw = bw
	return nil
}

// acceptPeers accepts inbound peer connections and serves each with a
// reader goroutine until the listener closes at shutdown.
func (nd *Node) acceptPeers() {
	for {
		c, err := nd.ln.Accept()
		if err != nil {
			return
		}
		nd.connWg.Add(1)
		go func() {
			defer nd.connWg.Done()
			defer c.Close()
			fc := newFrameConn(c)
			t, body, err := fc.recv()
			if err != nil || t != fPeerHello {
				return
			}
			var ph peerHelloMsg
			if decode(t, body, &ph) != nil {
				return
			}
			for {
				t, body, err := fc.recv()
				if err != nil {
					return
				}
				if t != fData {
					continue
				}
				var dm dataMsg
				if decode(t, body, &dm) != nil {
					continue
				}
				nd.framesIn.Inc()
				nd.onData(dm)
			}
		}()
	}
}

// dialPeers connects to every other node and starts one dispatcher
// goroutine per peer, drand-style: the event loop never blocks on a
// socket write — it hands frames to the peer's out channel and the
// dispatcher pumps them.
func (nd *Node) dialPeers(peers []string) error {
	for p := 1; p <= nd.n; p++ {
		if p == nd.cfg.ID {
			continue
		}
		c, err := dialRetry(peers[p-1], nd.cfg.DialTimeout)
		if err != nil {
			return err
		}
		fc := newFrameConn(c)
		if err := fc.send(fPeerHello, peerHelloMsg{From: nd.cfg.ID}); err != nil {
			c.Close()
			return fmt.Errorf("nettcp: node %d peer hello to %d: %w", nd.cfg.ID, p, err)
		}
		out := make(chan dataMsg, 1024)
		nd.peers[p-1] = fc
		nd.outs[p-1] = out
		nd.connWg.Add(1)
		go func(fc *frameConn, out chan dataMsg) {
			defer nd.connWg.Done()
			for {
				select {
				case dm := <-out:
					// Write errors mean the peer died or the run is
					// tearing down: a lost frame is indistinguishable
					// from one forever in transit.
					if fc.send(fData, dm) == nil {
						nd.framesOut.Inc()
					}
				case <-nd.stopCh:
					return
				}
			}
		}(fc, out)
	}
	return nil
}

// readControl serves the harness's control frames. A read error (the
// harness hung up) ends the run like an fStop would.
func (nd *Node) readControl() {
	for {
		t, body, err := nd.control.recv()
		if err != nil {
			nd.stop()
			return
		}
		switch t {
		case fBcast:
			var bm bcastMsg
			if decode(t, body, &bm) != nil {
				continue
			}
			nd.enqueue(nodeEvent{kind: 1, msg: bm.Msg, payload: bm.Payload})
		case fCrash:
			if nd.crashed.CompareAndSwap(false, true) {
				nd.record(model.Step{Proc: nd.id, Kind: model.KindCrash})
			}
		case fDecide:
			var km ksaMsg
			if decode(t, body, &km) != nil {
				continue
			}
			select {
			case nd.decideCh <- km.Val:
			case <-nd.stopCh:
				return
			}
		case fStop:
			nd.stop()
			return
		}
	}
}

// enqueue hands ev to the event loop without blocking the caller: a full
// inbox sheds to a goroutine parked until space frees or the run stops
// (the same non-FIFO shed internal/net uses).
func (nd *Node) enqueue(ev nodeEvent) {
	select {
	case nd.inbox <- ev:
	default:
		go func() {
			select {
			case nd.inbox <- ev:
			case <-nd.stopCh:
			}
		}()
	}
}

// loop is the node's event loop: one goroutine, exactly like a node
// goroutine of internal/net.
func (nd *Node) loop() {
	for {
		select {
		case <-nd.stopCh:
			return
		case ev := <-nd.inbox:
			if nd.crashed.Load() {
				continue // drain without processing
			}
			switch ev.kind {
			case 0:
				nd.handle(func(env *sched.Env) { nd.automaton.OnReceive(env, ev.from, ev.payload) })
			case 1:
				nd.record(model.Step{Proc: nd.id, Kind: model.KindBroadcastInvoke, Msg: ev.msg, Payload: ev.payload})
				nd.handle(func(env *sched.Env) { nd.automaton.OnBroadcast(env, ev.msg, ev.payload) })
			}
		}
	}
}

// handle runs a handler and executes the emitted actions, including the
// cascading effects of k-SA decisions — the remote twin of
// internal/net's handle, with the oracle round-trip travelling over the
// control connection.
func (nd *Node) handle(call func(env *sched.Env)) {
	env := sched.NewEnv(nd.id, nd.n)
	call(env)
	queue := env.TakeActions()
	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		switch a.Kind {
		case model.KindSend:
			nd.send(a.To, a.Payload)
		case model.KindPropose:
			nd.record(model.Step{Proc: nd.id, Kind: model.KindPropose, Obj: a.Obj, Val: a.Val})
			val, ok := nd.propose(a.Obj, a.Val)
			if !ok {
				return // stopping; the decision never arrives
			}
			nd.record(model.Step{Proc: nd.id, Kind: model.KindDecide, Obj: a.Obj, Val: val})
			env := sched.NewEnv(nd.id, nd.n)
			nd.automaton.OnDecide(env, a.Obj, val)
			queue = append(queue, env.TakeActions()...)
		case model.KindDeliver:
			nd.delivered.Add(1)
			nd.record(model.Step{Proc: nd.id, Kind: model.KindDeliver, Peer: a.Origin, Msg: a.Msg, Payload: a.Payload})
			nd.pushStatus()
		case model.KindBroadcastReturn:
			nd.returned.Add(1)
			nd.record(model.Step{Proc: nd.id, Kind: model.KindBroadcastReturn, Msg: a.Msg})
			nd.pushStatus()
		case model.KindInternal:
			// No effect at the transport layer.
		}
	}
}

// propose round-trips one k-SA proposition through the harness-hosted
// oracle. ok is false when the run stopped before the decision arrived.
func (nd *Node) propose(obj model.KSAID, val model.Value) (model.Value, bool) {
	if err := nd.control.send(fPropose, ksaMsg{Obj: obj, Val: val}); err != nil {
		return "", false
	}
	select {
	case v := <-nd.decideCh:
		return v, true
	case <-nd.stopCh:
		return "", false
	}
}

// send executes one KindSend action: the egress decides the copies and
// their transit delays, then each copy goes on the wire (or, addressed
// to self, back into the local inbox).
func (nd *Node) send(to model.ProcID, payload model.Payload) {
	if to < 1 || int(to) > nd.n {
		return
	}
	delays := nd.egress.Pass(nd.id, to)
	if len(delays) == 0 {
		return
	}
	seq := nd.seq[to-1]
	nd.seq[to-1]++
	for ci, d := range delays {
		dm := dataMsg{From: nd.cfg.ID, Dest: int(to), Seq: seq, Copy: ci, Payload: payload}
		if d == 0 {
			nd.emit(dm)
			continue
		}
		nd.delayWg.Add(1)
		go func(d time.Duration, dm dataMsg) {
			defer nd.delayWg.Done()
			select {
			case <-time.After(d):
				nd.emit(dm)
			case <-nd.stopCh:
			}
		}(d, dm)
	}
}

// emit puts one copy on the wire at its origin. In direct mode the
// frame goes straight to its destination (or the local inbox). In
// rebroadcast mode every copy floods to all peers — destination
// included — and dedup keeps each copy's first sighting only.
func (nd *Node) emit(dm dataMsg) {
	if !nd.rebroadcast {
		if dm.Dest == nd.cfg.ID {
			nd.enqueue(nodeEvent{kind: 0, from: model.ProcID(dm.From), payload: dm.Payload})
			return
		}
		nd.toPeer(dm.Dest, dm)
		return
	}
	nd.markSeen(dm)
	if dm.Dest == nd.cfg.ID {
		nd.enqueue(nodeEvent{kind: 0, from: model.ProcID(dm.From), payload: dm.Payload})
	}
	for p := 1; p <= nd.n; p++ {
		if p == nd.cfg.ID {
			continue
		}
		nd.toPeer(p, dm)
	}
}

// onData handles one inbound data frame. Direct mode delivers it to the
// event loop; rebroadcast mode dedups, relays once, and delivers only
// frames addressed here.
func (nd *Node) onData(dm dataMsg) {
	if nd.rebroadcast {
		if !nd.markSeen(dm) {
			nd.dedups.Inc()
			return
		}
		nd.relay(dm)
		if dm.Dest != nd.cfg.ID {
			return
		}
	}
	nd.enqueue(nodeEvent{kind: 0, from: model.ProcID(dm.From), payload: dm.Payload})
}

// relay forwards a first-sighted flood copy to every peer except
// ourselves, the origin, and the hop it arrived from.
func (nd *Node) relay(dm dataMsg) {
	via := dm.Via
	dm.Via = nd.cfg.ID
	for p := 1; p <= nd.n; p++ {
		if p == nd.cfg.ID || p == dm.From || p == via {
			continue
		}
		nd.relays.Inc()
		nd.toPeer(p, dm)
	}
}

// toPeer hands a frame to peer p's dispatcher. A full out channel
// blocks briefly: the dispatcher always drains (peer readers never
// block — see enqueue's shed), so this cannot deadlock.
func (nd *Node) toPeer(p int, dm dataMsg) {
	out := nd.outs[p-1]
	if out == nil {
		return
	}
	select {
	case out <- dm:
	case <-nd.stopCh:
	}
}

// markSeen records a flood copy's identity hash; false means it was
// already seen. The hash keys origin, destination, send ordinal, copy
// index, and payload, so fault-injected duplicates (distinct Copy)
// still arrive as duplicates.
func (nd *Node) markSeen(dm dataMsg) bool {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%d|%d|", dm.From, dm.Dest, dm.Seq, dm.Copy)
	h.Write([]byte(dm.Payload))
	key := h.Sum64()
	nd.seenMu.Lock()
	defer nd.seenMu.Unlock()
	if _, ok := nd.seen[key]; ok {
		return false
	}
	nd.seen[key] = struct{}{}
	return true
}

// record appends one step to the node's trace stream.
func (nd *Node) record(s model.Step) {
	nd.recMu.Lock()
	defer nd.recMu.Unlock()
	if nd.bw != nil {
		nd.bw.Step(s)
	}
}

// pushStatus sends the progress counters to the harness, best-effort.
func (nd *Node) pushStatus() {
	nd.control.send(fStatus, statusMsg{Delivered: nd.delivered.Load(), Returned: nd.returned.Load()})
}

// stop ends the run; idempotent.
func (nd *Node) stop() {
	nd.stopOnce.Do(func() { close(nd.stopCh) })
}

// Kill tears the node down abruptly — no trace end marker, no final
// status — emulating a killed process for in-process clusters. The
// harness observes the cut trace stream as trace.ErrTruncated.
func (nd *Node) Kill() {
	nd.killed.Store(true)
	nd.stop()
	if nd.traceC != nil {
		nd.traceC.Close()
	}
}

// shutdown finishes a clean run: delayed copies unpark, the trace
// stream's end marker flushes, and a final status reaches the harness
// before the connections close. A killed node skips the clean half.
func (nd *Node) shutdown() {
	nd.delayWg.Wait()
	if !nd.killed.Load() {
		nd.recMu.Lock()
		if nd.bw != nil {
			nd.bw.Close()
		}
		nd.recMu.Unlock()
		nd.pushStatus()
	}
	if nd.traceC != nil {
		nd.traceC.Close()
	}
	nd.ln.Close()
	for _, fc := range nd.peers {
		if fc != nil {
			fc.Close()
		}
	}
	nd.connWg.Wait()
}
