package explore

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"testing"

	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/model"
	"nobroadcast/internal/sched"
	"nobroadcast/internal/spec"
	"nobroadcast/internal/trace"
)

// smokeOptions is the seeded-fault exploration used across tests: the
// send-to-all candidate does not solve k-set-agreement for k < n, so
// its FirstDecider solver violates k-SA-Agreement under essentially
// every schedule — a guaranteed target for the hunting machinery.
func smokeOptions() Options {
	return Options{
		Candidate: "send-to-all", N: 3, K: 1,
		Strategy: "random", Schedules: 16, Seed: 42,
	}
}

// TestExploreFindsAndMinimizes: the exploration finds violations, delta-
// debugs them to a shorter decision prefix, and the minimized .ktr trace
// decodes to a violating execution that the batch checker confirms.
func TestExploreFindsAndMinimizes(t *testing.T) {
	res, err := Run(context.Background(), smokeOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations == 0 {
		t.Fatal("send-to-all with k<n should violate k-SA-Agreement")
	}
	if len(res.Findings) == 0 {
		t.Fatal("no findings minimized")
	}
	for _, f := range res.Findings {
		if f.Property != "k-SA-Agreement" {
			t.Fatalf("unexpected violated property %q", f.Property)
		}
		if f.MinLen == 0 || f.MinLen > f.ScheduleLen {
			t.Fatalf("minimized length %d vs schedule length %d", f.MinLen, f.ScheduleLen)
		}
		tr, err := trace.DecodeBinary(bytes.NewReader(f.KTR))
		if err != nil {
			t.Fatalf("minimized trace does not decode: %v", err)
		}
		if tr.Complete {
			t.Fatal("a violation-truncated trace must not be complete")
		}
		if tr.X.Len() != f.MinSteps {
			t.Fatalf("decoded %d steps, finding says %d", tr.X.Len(), f.MinSteps)
		}
		// The minimized execution violates the same property post hoc.
		v := spec.KSA(1).Check(tr)
		if v == nil || v.Property != f.Property {
			t.Fatalf("batch re-check of minimized trace: %v", v)
		}
	}
}

// TestExploreReproducesFromSeed: a finding's reported seed alone —
// plugged into a fresh runtime with the same parameters — reproduces the
// violation, the contract the CLI prints findings under.
func TestExploreReproducesFromSeed(t *testing.T) {
	o := smokeOptions()
	res, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	f := res.Findings[0]
	cand, err := broadcast.Lookup(o.Candidate)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []model.Value{"v1", "v2", "v3"}
	rt, err := sched.New(sched.Config{
		N: o.N, NewAutomaton: cand.NewAutomaton, Oracle: cand.OracleFor(o.K),
		NewApp: cand.SolverFor(), Inputs: inputs,
		LiveSpecs: []spec.Spec{cand.Spec(o.K), spec.KSA(o.K)},
	})
	if err != nil {
		t.Fatal(err)
	}
	strat, err := sched.NewStrategy(o.Strategy, o.Depth)
	if err != nil {
		t.Fatal(err)
	}
	_, err = rt.Run(strat, sched.RunOptions{Seed: f.Seed, MaxEvents: res.MaxEvents})
	var lve *sched.LiveViolationError
	if !errors.As(err, &lve) {
		t.Fatalf("want LiveViolationError from seed %d, got %v", f.Seed, err)
	}
	if lve.V.Property != f.Property || lve.StepIdx != f.StepIdx {
		t.Fatalf("seed %d reproduced (%s, step %d), finding says (%s, step %d)",
			f.Seed, lve.V.Property, lve.StepIdx, f.Property, f.StepIdx)
	}
}

// TestExploreDeterministicAcrossWorkers: the whole Result — counts,
// findings, minimized .ktr bytes — is byte-identical at any worker
// count (satellite: same seed + same strategy ⇒ same artifact at
// -workers 1/4/GOMAXPROCS).
func TestExploreDeterministicAcrossWorkers(t *testing.T) {
	encode := func(workers int) []byte {
		o := smokeOptions()
		o.Strategy = "pct"
		o.Depth = 3
		o.Crashes = 1
		o.Workers = workers
		res, err := Run(context.Background(), o)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	want := encode(1)
	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		if got := encode(w); !bytes.Equal(got, want) {
			t.Fatalf("result at %d workers diverged from serial run", w)
		}
	}
}

// TestExploreFindsKBO: the headline hunt — the k-bounded-order candidate
// (the abstraction the paper refutes) violates its own ordering spec
// under randomly sampled schedules with k=2, and the violation minimizes
// to a replayable .ktr counterexample. EXPERIMENTS.md E22 records the
// full-scale version of this run.
func TestExploreFindsKBO(t *testing.T) {
	res, err := Run(context.Background(), Options{
		Candidate: "kbo", N: 3, K: 2,
		Strategy: "random", Schedules: 10, Seed: 1, Minimize: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations == 0 {
		t.Fatal("no kbo ordering violation in 10 schedules (seed 1 is known to hit)")
	}
	f := res.Findings[0]
	if f.Property != "k-Bounded-Order" {
		t.Fatalf("violated %s/%s, want k-Bounded-Order", f.Spec, f.Property)
	}
	tr, err := trace.DecodeBinary(bytes.NewReader(f.KTR))
	if err != nil {
		t.Fatal(err)
	}
	cand, err := broadcast.Lookup("kbo")
	if err != nil {
		t.Fatal(err)
	}
	if v := cand.Spec(2).Check(tr); v == nil || v.Property != f.Property {
		t.Fatalf("batch re-check of minimized kbo trace: %v", v)
	}
}

// TestExploreValidation: unusable parameter combinations are rejected
// before any work is spent.
func TestExploreValidation(t *testing.T) {
	bad := []Options{
		{Candidate: "no-such", N: 3, K: 1, Strategy: "random", Schedules: 1},
		{Candidate: "send-to-all", N: 0, K: 1, Strategy: "random", Schedules: 1},
		{Candidate: "send-to-all", N: 3, K: 4, Strategy: "random", Schedules: 1},
		{Candidate: "send-to-all", N: 3, K: 1, Strategy: "random", Schedules: 0},
		{Candidate: "send-to-all", N: 3, K: 1, Strategy: "random", Schedules: 1, Crashes: 3},
		{Candidate: "send-to-all", N: 3, K: 1, Strategy: "zigzag", Schedules: 1},
	}
	for i, o := range bad {
		if _, err := Run(context.Background(), o); err == nil {
			t.Errorf("case %d: options %+v accepted", i, o)
		}
	}
}

// TestDdmin: the minimizer isolates the decisions a synthetic predicate
// depends on and the result is 1-minimal.
func TestDdmin(t *testing.T) {
	full := make([]sched.Event, 20)
	for i := range full {
		full[i] = sched.Event{Net: i}
	}
	needs := func(sub []sched.Event, net int) bool {
		for _, e := range sub {
			if e.Net == net {
				return true
			}
		}
		return false
	}
	tests := 0
	min, err := ddmin(full, func(sub []sched.Event) (bool, error) {
		tests++
		return needs(sub, 3) && needs(sub, 7), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(min) != 2 || min[0].Net != 3 || min[1].Net != 7 {
		t.Fatalf("ddmin kept %v", min)
	}
	if tests == 0 || tests > 200 {
		t.Fatalf("ddmin used %d tests", tests)
	}
}
