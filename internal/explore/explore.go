// Package explore hunts for specification-violating schedules: it fans
// seeds out across the schedule space of one broadcast candidate through
// internal/sweep, runs each seed under a pluggable sched.Strategy
// (random or PCT priority-based sampling) with the candidate's spec and
// k-SA checked live, and delta-debugs every violating schedule down to a
// minimized decision prefix recorded as a wire-format-v1 (.ktr) trace.
//
// This is the model checker ROADMAP item 3 describes: the deterministic
// runtime supplies replayability, the online checkers supply fail-fast
// verdicts, and the sweep engine supplies scale. Determinism is end to
// end — every cell's randomness derives positionally from the root seed
// (rng.Derive), results collect in cell order, and minimization replays
// are pure functions of the recorded decisions — so a Result, including
// the minimized .ktr bytes, is bit-identical at any worker count, and
// any finding reproduces from its reported seed alone.
package explore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"

	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/model"
	"nobroadcast/internal/obs"
	"nobroadcast/internal/rng"
	"nobroadcast/internal/sched"
	"nobroadcast/internal/spec"
	"nobroadcast/internal/sweep"
)

// Default bounds.
const (
	// DefaultMaxEvents bounds one schedule. Solver-driven runs quiesce
	// within a few hundred events at explorable system sizes; the bound
	// only cuts pathological schedules.
	DefaultMaxEvents = 5000
	// DefaultMinimize is how many violating schedules are delta-debugged
	// per exploration (the rest are counted but not minimized).
	DefaultMinimize = 3
)

// Options configures one exploration.
type Options struct {
	// Candidate names the broadcast abstraction under test (registry
	// name, e.g. "kbo" or "send-to-all").
	Candidate string
	// N is the number of processes, K the agreement degree: each run
	// drives the candidate's k-SA solver app with inputs v1..vN and
	// checks the candidate's own spec plus k-set-agreement live.
	N, K int
	// Strategy names the schedule sampler: "random", "pct", or "fair"
	// (fair explores nothing — every cell replays the same schedule —
	// but is allowed for baselines). Depth parameterizes "pct".
	Strategy string
	Depth    int
	// Schedules is the number of seeds to explore.
	Schedules int
	// Seed is the root seed; schedule i runs with rng.Derive(Seed, i).
	Seed uint64
	// MaxEvents bounds each schedule; zero selects DefaultMaxEvents.
	MaxEvents int
	// Crashes injects that many seeded crash faults per schedule (must
	// leave at least one process alive: 0 <= Crashes < N). Ordinals and
	// victims derive from the cell seed.
	Crashes int
	// Workers bounds the sweep pool; zero means GOMAXPROCS. The worker
	// count never changes the Result.
	Workers int
	// Minimize caps how many violating schedules are delta-debugged;
	// zero selects DefaultMinimize, negative disables minimization.
	Minimize int
	// Obs, when non-nil, receives exploration instrumentation (counters
	// explore.schedules / explore.violations / explore.steps /
	// explore.minimize_replays, histogram explore.min_len) on top of the
	// sweep's own metrics.
	Obs *obs.Registry
}

func (o Options) maxEvents() int {
	if o.MaxEvents <= 0 {
		return DefaultMaxEvents
	}
	return o.MaxEvents
}

func (o Options) minimize() int {
	switch {
	case o.Minimize == 0:
		return DefaultMinimize
	case o.Minimize < 0:
		return 0
	}
	return o.Minimize
}

// Finding is one violating schedule, minimized when within the
// exploration's Minimize budget (MinLen/MinSteps/KTR are zero otherwise).
type Finding struct {
	// Cell is the schedule's position in the sweep; Seed its derived
	// seed. Re-running the strategy with this seed (same candidate, n,
	// k, crashes, event bound) reproduces the violation exactly.
	Cell int    `json:"cell"`
	Seed uint64 `json:"seed"`
	// Spec/Property/Detail identify the violated property; StepIdx is
	// the violating step in the original schedule.
	Spec     string `json:"spec"`
	Property string `json:"property"`
	Detail   string `json:"detail,omitempty"`
	StepIdx  int    `json:"step_idx"`
	// ScheduleLen is the number of scheduler decisions up to the
	// violation; MinLen the decision count after delta-debugging and
	// MinSteps the recorded steps of the minimized run.
	ScheduleLen int `json:"schedule_len"`
	MinLen      int `json:"min_len,omitempty"`
	MinSteps    int `json:"min_steps,omitempty"`
	// KTR is the minimized violating trace in wire format v1
	// (application/x-ksatrace), ending at the violating step.
	KTR []byte `json:"ktr,omitempty"`
}

// Result is one exploration's deterministic outcome: identical Options
// (including Seed) produce byte-identical Results at any worker count.
// Wall-clock figures (schedules/sec) deliberately live outside, in obs
// metrics and caller-side timing, to keep the Result cacheable by value.
type Result struct {
	Candidate  string    `json:"candidate"`
	Strategy   string    `json:"strategy"`
	Depth      int       `json:"depth,omitempty"`
	N          int       `json:"n"`
	K          int       `json:"k"`
	Schedules  int       `json:"schedules"`
	Seed       uint64    `json:"seed"`
	MaxEvents  int       `json:"max_events"`
	Crashes    int       `json:"crashes,omitempty"`
	Violations int       `json:"violations"`
	TotalSteps int       `json:"total_steps"`
	Replays    int       `json:"minimize_replays,omitempty"`
	Findings   []Finding `json:"findings"`
}

// cellOut is one schedule's outcome inside the sweep.
type cellOut struct {
	steps     int
	v         *spec.Violation
	stepIdx   int
	decisions []sched.Event
}

// engine carries the per-exploration constants shared by search and
// minimization runs.
type engine struct {
	opts   Options
	cand   broadcast.Candidate
	inputs []model.Value
}

// validate resolves the candidate and rejects unusable parameter
// combinations.
func newEngine(o Options) (*engine, error) {
	cand, err := broadcast.Lookup(o.Candidate)
	if err != nil {
		return nil, err
	}
	if o.N < 1 || o.N > 64 {
		return nil, fmt.Errorf("explore: n must be in [1,64], got %d", o.N)
	}
	if o.K < 1 || o.K > o.N {
		return nil, fmt.Errorf("explore: k must be in [1,n], got %d", o.K)
	}
	if o.Schedules < 1 {
		return nil, fmt.Errorf("explore: schedules must be positive, got %d", o.Schedules)
	}
	if o.Crashes < 0 || o.Crashes >= o.N {
		return nil, fmt.Errorf("explore: crashes must be in [0,n), got %d", o.Crashes)
	}
	if _, err := sched.NewStrategy(o.Strategy, o.Depth); err != nil {
		return nil, err
	}
	inputs := make([]model.Value, o.N)
	for i := range inputs {
		inputs[i] = model.Value(fmt.Sprintf("v%d", i+1))
	}
	return &engine{opts: o, cand: cand, inputs: inputs}, nil
}

// runtime builds a fresh, identically-configured runtime for one run.
func (e *engine) runtime() (*sched.Runtime, error) {
	return sched.New(sched.Config{
		N:            e.opts.N,
		NewAutomaton: e.cand.NewAutomaton,
		Oracle:       e.cand.OracleFor(e.opts.K),
		NewApp:       e.cand.SolverFor(),
		Inputs:       e.inputs,
		LiveSpecs:    []spec.Spec{e.cand.Spec(e.opts.K), spec.KSA(e.opts.K)},
	})
}

// crashPlan derives the cell's seeded crash injections. The stream is
// separate from the strategy's (positional derivation off the cell
// seed), so the same faults hit whatever the strategy picks. Ordinals
// land early in the run — crashes beyond quiescence would be no-ops.
func (e *engine) crashPlan(cellSeed uint64) map[int]model.ProcID {
	if e.opts.Crashes == 0 {
		return nil
	}
	src := rng.New(rng.Derive(cellSeed, 0x6372617368)) // "crash"
	plan := make(map[int]model.ProcID, e.opts.Crashes)
	window := 64 * e.opts.N
	for len(plan) < e.opts.Crashes {
		plan[1+src.Intn(window)] = model.ProcID(1 + src.Intn(e.opts.N))
	}
	return plan
}

// runOptions builds the RunOptions for one cell seed.
func (e *engine) runOptions(cellSeed uint64) sched.RunOptions {
	return sched.RunOptions{
		Seed:      cellSeed,
		MaxEvents: e.opts.maxEvents(),
		CrashAt:   e.crashPlan(cellSeed),
	}
}

// search runs one schedule, recording its decisions. A live violation is
// a successful outcome (captured in the cellOut); any other run error is
// a genuine failure.
func (e *engine) search(c sweep.Cell) (cellOut, error) {
	rt, err := e.runtime()
	if err != nil {
		return cellOut{}, err
	}
	strat, err := sched.NewStrategy(e.opts.Strategy, e.opts.Depth)
	if err != nil {
		return cellOut{}, err
	}
	rec := sched.NewRecorder(strat)
	_, err = rt.Run(rec, e.runOptions(c.Seed))
	out := cellOut{steps: rt.StepCount()}
	var lve *sched.LiveViolationError
	switch {
	case err == nil:
	case errors.As(err, &lve):
		out.v = lve.V
		out.stepIdx = lve.StepIdx
		out.decisions = append([]sched.Event(nil), rec.Decisions()...)
	default:
		return cellOut{}, err
	}
	return out, nil
}

// reproduces replays a decision sequence and reports whether it still
// triggers a violation of the same property. replays counts attempts.
func (e *engine) reproduces(decisions []sched.Event, want *spec.Violation, cellSeed uint64, replays *int) (*sched.LiveViolationError, bool, error) {
	*replays++
	rt, err := e.runtime()
	if err != nil {
		return nil, false, err
	}
	_, err = rt.Run(sched.NewReplay(decisions), e.runOptions(cellSeed))
	var lve *sched.LiveViolationError
	switch {
	case err == nil:
		return nil, false, nil
	case errors.As(err, &lve):
		return lve, lve.V.Spec == want.Spec && lve.V.Property == want.Property, nil
	default:
		return nil, false, err
	}
}

// Run explores the schedule space. The returned Result is deterministic
// in Options; ctx cancels both the sweep and the minimization phase.
func Run(ctx context.Context, o Options) (*Result, error) {
	sh, err := Scan(ctx, o, 0, o.Schedules)
	if err != nil {
		return nil, err
	}
	return Merge(o, []*Shard{sh})
}

// Shard is the outcome of scanning one contiguous cell range [Lo, Hi) of
// an exploration. Because every cell's randomness derives positionally
// from the root seed, a Shard is a pure function of (Options, Lo, Hi):
// the same range scanned on any host, at any worker count, inside any
// partitioning, yields the same Shard — which is what lets a coordinator
// fan ranges out to a fleet and still merge a byte-identical Result.
type Shard struct {
	Lo         int            `json:"lo"`
	Hi         int            `json:"hi"`
	Violations int            `json:"violations"`
	TotalSteps int            `json:"total_steps"`
	Findings   []ShardFinding `json:"findings,omitempty"`
}

// ShardFinding carries one minimized finding plus the replay count its
// minimization spent. Replays stay per-finding (not summed into the
// shard) because the merged Result counts only the replays of the
// findings it keeps: a shard minimizes up to the budget within its own
// range, but globally-late findings are dropped at merge time and their
// replay cost must not leak into the deterministic Result.
type ShardFinding struct {
	Finding
	Replays int `json:"replays"`
}

// Scan explores the cell range [lo, hi) of the schedule space described
// by o. Cell seeds derive from the cell's GLOBAL index — rng.Derive(Seed,
// cell), not the position within this shard — so any partitioning of
// [0, Schedules) into Scan calls is bit-identical to one full-range run.
// Per-shard findings are minimized up to o's budget (a finding that is
// within the budget globally is necessarily within it in its own shard).
func Scan(ctx context.Context, o Options, lo, hi int) (*Shard, error) {
	e, err := newEngine(o)
	if err != nil {
		return nil, err
	}
	if lo < 0 || hi > o.Schedules || lo >= hi {
		return nil, fmt.Errorf("explore: shard range [%d,%d) outside schedules [0,%d)", lo, hi, o.Schedules)
	}
	outs, err := sweep.Run(ctx, hi-lo, sweep.Options{
		Workers: o.Workers,
		Seed:    o.Seed,
		Obs:     o.Obs,
	}, func(ctx context.Context, c sweep.Cell) (cellOut, error) {
		// Global positional seed: cell lo+c.Index of the exploration, not
		// cell c.Index of this shard.
		return e.search(sweep.Cell{Index: lo + c.Index, Seed: rng.Derive(o.Seed, uint64(lo+c.Index))})
	})
	if err != nil {
		return nil, err
	}

	sh := &Shard{Lo: lo, Hi: hi}
	reg := o.Obs
	replays := 0
	for i, out := range outs {
		cell := lo + i
		sh.TotalSteps += out.steps
		if out.v == nil {
			continue
		}
		sh.Violations++
		if len(sh.Findings) >= o.minimize() {
			continue
		}
		f := Finding{
			Cell: cell, Seed: rng.Derive(o.Seed, uint64(cell)),
			Spec: out.v.Spec, Property: out.v.Property, Detail: out.v.Detail,
			StepIdx: out.v.StepIdx, ScheduleLen: len(out.decisions),
		}
		min, r, err := e.minimizeFinding(ctx, out, f.Seed)
		if err != nil {
			return nil, err
		}
		replays += r
		if min != nil {
			f.MinLen = min.len
			f.MinSteps = min.steps
			f.KTR = min.ktr
			reg.Histogram("explore.min_len").Observe(int64(min.len))
		}
		sh.Findings = append(sh.Findings, ShardFinding{Finding: f, Replays: r})
	}
	reg.Counter("explore.schedules").Add(int64(hi - lo))
	reg.Counter("explore.violations").Add(int64(sh.Violations))
	reg.Counter("explore.steps").Add(int64(sh.TotalSteps))
	reg.Counter("explore.minimize_replays").Add(int64(replays))
	return sh, nil
}

// Merge assembles shards covering [0, o.Schedules) into the Result a
// single full-range run would produce, byte-identical: violation and
// step totals sum; findings concatenate in cell order up to the minimize
// budget (each shard over-collects at most its own budget, so the first
// budget findings globally are all present); Replays counts only the
// minimizations of the findings kept. Shards may arrive in any order but
// must tile the range exactly.
func Merge(o Options, shards []*Shard) (*Result, error) {
	ordered := make([]*Shard, len(shards))
	copy(ordered, shards)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Lo < ordered[j].Lo })
	next := 0
	for _, sh := range ordered {
		if sh == nil {
			return nil, fmt.Errorf("explore: merge: missing shard at cell %d", next)
		}
		if sh.Lo != next || sh.Hi <= sh.Lo {
			return nil, fmt.Errorf("explore: merge: shard [%d,%d) does not continue coverage at cell %d", sh.Lo, sh.Hi, next)
		}
		next = sh.Hi
	}
	if next != o.Schedules {
		return nil, fmt.Errorf("explore: merge: shards cover [0,%d), want [0,%d)", next, o.Schedules)
	}

	res := &Result{
		Candidate: o.Candidate, Strategy: o.Strategy, Depth: o.Depth,
		N: o.N, K: o.K, Schedules: o.Schedules, Seed: o.Seed,
		MaxEvents: o.maxEvents(), Crashes: o.Crashes,
		Findings: []Finding{},
	}
	for _, sh := range ordered {
		res.Violations += sh.Violations
		res.TotalSteps += sh.TotalSteps
		for _, sf := range sh.Findings {
			if len(res.Findings) >= o.minimize() {
				break
			}
			res.Replays += sf.Replays
			res.Findings = append(res.Findings, sf.Finding)
		}
	}
	return res, nil
}

// minimized is the outcome of delta-debugging one finding.
type minimized struct {
	len   int
	steps int
	ktr   []byte
}

// minimizeFinding ddmin-reduces the finding's decision sequence and
// encodes the minimized violating run as a .ktr trace.
func (e *engine) minimizeFinding(ctx context.Context, out cellOut, cellSeed uint64) (*minimized, int, error) {
	replays := 0
	test := func(decisions []sched.Event) (bool, error) {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		_, ok, err := e.reproduces(decisions, out.v, cellSeed, &replays)
		return ok, err
	}
	min, err := ddmin(out.decisions, test)
	if err != nil {
		return nil, replays, err
	}
	// Re-execute the minimized schedule once more for its trace; by
	// construction it still violates the same property.
	lve, ok, err := e.reproduces(min, out.v, cellSeed, &replays)
	if err != nil {
		return nil, replays, err
	}
	if !ok {
		return nil, replays, fmt.Errorf("explore: minimized schedule (%d decisions) stopped reproducing %s/%s", len(min), out.v.Spec, out.v.Property)
	}
	var ktr bytes.Buffer
	if err := lve.Trace.EncodeBinary(&ktr); err != nil {
		return nil, replays, err
	}
	return &minimized{len: len(min), steps: lve.Trace.X.Len(), ktr: ktr.Bytes()}, replays, nil
}
