package explore

import (
	"context"
	"encoding/json"
	"testing"
)

// shardOpts is a small exploration known to find violations (kbo's
// k-Bounded-Order breaks under random sampling at k=2), so the identity
// checks below cover findings, minimized .ktr bytes, and replay counts —
// not just the zero-violation counters.
func shardOpts() Options {
	return Options{
		Candidate: "kbo", N: 4, K: 2,
		Strategy: "random", Schedules: 24, Seed: 1,
		Minimize: 2, Workers: 2,
	}
}

// TestScanMergeMatchesRun is the invariant the distributed fabric is
// built on: any partitioning of [0, Schedules) into Scan ranges, merged,
// is byte-identical to one full-range Run.
func TestScanMergeMatchesRun(t *testing.T) {
	o := shardOpts()
	want, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if want.Violations == 0 || len(want.Findings) != 2 {
		t.Fatalf("test exploration found %d violations, %d findings; want violations>0 and exactly 2 findings",
			want.Violations, len(want.Findings))
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}

	// A fine-grained partition (single-cell shards) would also pass but
	// delta-debugs every violating cell in its own shard, which is most of
	// a minute; these cover the interesting cut shapes at test speed.
	partitions := [][]int{
		{0, 24},
		{0, 12, 24},
		{0, 5, 6, 17, 24},
	}
	for _, cuts := range partitions {
		var shards []*Shard
		// Scan out of order to exercise Merge's sorting.
		for i := len(cuts) - 2; i >= 0; i-- {
			sh, err := Scan(context.Background(), o, cuts[i], cuts[i+1])
			if err != nil {
				t.Fatalf("Scan[%d,%d): %v", cuts[i], cuts[i+1], err)
			}
			shards = append(shards, sh)
		}
		got, err := Merge(o, shards)
		if err != nil {
			t.Fatalf("Merge(%v): %v", cuts, err)
		}
		gotJSON, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if string(gotJSON) != string(wantJSON) {
			t.Errorf("partition %v: merged result differs from single-range run\n got: %s\nwant: %s", cuts, gotJSON, wantJSON)
		}
	}
}

// TestMergeRejectsBadCoverage: gaps, overlaps, and short coverage are
// structural errors, never silently merged.
func TestMergeRejectsBadCoverage(t *testing.T) {
	o := shardOpts()
	cases := map[string][]*Shard{
		"gap":     {{Lo: 0, Hi: 10}, {Lo: 12, Hi: 24}},
		"overlap": {{Lo: 0, Hi: 14}, {Lo: 12, Hi: 24}},
		"short":   {{Lo: 0, Hi: 20}},
		"empty":   {{Lo: 0, Hi: 0}, {Lo: 0, Hi: 24}},
		"nil":     {nil},
	}
	for name, shards := range cases {
		if _, err := Merge(o, shards); err == nil {
			t.Errorf("%s: Merge accepted bad shard coverage", name)
		}
	}
}

// TestScanRejectsBadRange: out-of-bounds shard ranges fail fast.
func TestScanRejectsBadRange(t *testing.T) {
	o := shardOpts()
	for _, r := range [][2]int{{-1, 5}, {0, 25}, {5, 5}, {6, 2}} {
		if _, err := Scan(context.Background(), o, r[0], r[1]); err == nil {
			t.Errorf("Scan[%d,%d): accepted out-of-range shard", r[0], r[1])
		}
	}
}
