package explore

import "nobroadcast/internal/sched"

// ddmin is Zeller/Hildebrandt delta debugging over a scheduler decision
// sequence: it returns a 1-minimal subsequence for which test still
// reports true (removing any single remaining chunk at the final
// granularity makes the violation vanish). test is assumed true for the
// full input; correctness does not depend on monotonicity — a candidate
// either reproduces the violation under the live checkers on replay or
// it does not, so the result is always a genuine violating schedule,
// just not necessarily a globally minimum one.
//
// Decisions removed from the middle remain meaningful because the replay
// strategy (sched.NewReplay) skips decisions that no longer apply and
// matches messages by endpoints rather than allocation-order ids.
func ddmin(decisions []sched.Event, test func([]sched.Event) (bool, error)) ([]sched.Event, error) {
	cur := append([]sched.Event(nil), decisions...)
	n := 2
	for len(cur) >= 2 && n <= len(cur) {
		chunk := (len(cur) + n - 1) / n
		reduced := false
		for start := 0; start < len(cur); start += chunk {
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			// Try the complement: everything except cur[start:end].
			cand := make([]sched.Event, 0, len(cur)-(end-start))
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[end:]...)
			ok, err := test(cand)
			if err != nil {
				return nil, err
			}
			if ok {
				cur = cand
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if n == len(cur) {
				break
			}
			n *= 2
			if n > len(cur) {
				n = len(cur)
			}
		}
	}
	return cur, nil
}
