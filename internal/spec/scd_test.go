package spec

import (
	"testing"

	"nobroadcast/internal/model"
)

// deliverBatch appends a delivery with a batch tag.
func (b *tb) deliverBatch(p model.ProcID, m model.MsgID, batch int64) {
	b.x.Append(model.Step{
		Proc: p, Kind: model.KindDeliver,
		Peer: b.x.Broadcaster(m), Msg: m, Payload: b.x.PayloadOf(m),
		Batch: batch,
	})
}

func TestSCDAcceptsCommonSetOrder(t *testing.T) {
	b := newTB(2)
	m1 := b.bcast(1, "a")
	m2 := b.bcast(2, "b")
	m3 := b.bcast(1, "c")
	// p1: {m1, m2} then {m3}; p2: {m1} then {m2, m3}. Pair (m1,m2):
	// p1 same-set, p2 m1 earlier — no strict opposition anywhere.
	b.deliverBatch(1, m1, 1)
	b.deliverBatch(1, m2, 1)
	b.deliverBatch(1, m3, 2)
	b.deliverBatch(2, m1, 1)
	b.deliverBatch(2, m2, 2)
	b.deliverBatch(2, m3, 2)
	wantOK(t, SCDOrder(), b.trace(true))
	wantOK(t, SCDBroadcast(), b.trace(true))
}

func TestSCDRejectsOppositeSets(t *testing.T) {
	b := newTB(2)
	m1 := b.bcast(1, "a")
	m2 := b.bcast(2, "b")
	// p1: {m1} then {m2}; p2: {m2} then {m1} — strictly opposite.
	b.deliverBatch(1, m1, 1)
	b.deliverBatch(1, m2, 2)
	b.deliverBatch(2, m2, 1)
	b.deliverBatch(2, m1, 2)
	wantViolation(t, SCDOrder(), b.trace(true), "Set-Constrained-Delivery")
}

func TestSCDSameSetResolvesConflict(t *testing.T) {
	// The same pair as above, but p2 delivers both in ONE set: the slack
	// that makes SCD weaker than Total Order.
	b := newTB(2)
	m1 := b.bcast(1, "a")
	m2 := b.bcast(2, "b")
	b.deliverBatch(1, m1, 1)
	b.deliverBatch(1, m2, 2)
	b.deliverBatch(2, m2, 7)
	b.deliverBatch(2, m1, 7)
	wantOK(t, SCDOrder(), b.trace(true))
	// The same trace violates Total Order (which ignores batches).
	wantViolation(t, TotalOrder(), b.trace(true), "Total-Order")
}

func TestSCDSingletonBatchesDegradeToTotalOrderCheck(t *testing.T) {
	// With Batch 0 everywhere, every delivery is its own set: SCD order
	// coincides with pairwise total order.
	b := newTB(2)
	m1 := b.bcast(1, "a")
	m2 := b.bcast(2, "b")
	b.deliver(1, m1)
	b.deliver(1, m2)
	b.deliver(2, m2)
	b.deliver(2, m1)
	wantViolation(t, SCDOrder(), b.trace(true), "Set-Constrained-Delivery")
}

func TestSCDPartialDeliveryUnconstrained(t *testing.T) {
	b := newTB(2)
	m1 := b.bcast(1, "a")
	m2 := b.bcast(2, "b")
	b.deliverBatch(1, m1, 1)
	b.deliverBatch(1, m2, 2)
	// p2 delivered only m2: no strict opposition yet (prefix-safety).
	b.deliverBatch(2, m2, 1)
	wantOK(t, SCDOrder(), b.trace(false))
}

func TestSCDIsCompositionalAndContentNeutral(t *testing.T) {
	b := newTB(2)
	m1 := b.bcast(1, "a")
	m2 := b.bcast(2, "b")
	m3 := b.bcast(1, "c")
	for _, p := range []model.ProcID{1, 2} {
		b.deliverBatch(p, m1, 1)
		b.deliverBatch(p, m2, 1)
		b.deliverBatch(p, m3, 2)
	}
	tr := b.trace(true)
	comp, err := CheckCompositional(SCDOrder(), tr, SymmetryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !comp.Holds {
		t.Errorf("SCD order should be compositional: subset %v: %v", comp.WitnessSubset, comp.Violation)
	}
	cn, err := CheckContentNeutral(SCDOrder(), tr, SymmetryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !cn.Holds {
		t.Errorf("SCD order should be content-neutral: %v", cn.Violation)
	}
}

func TestBatchIndexOrdinals(t *testing.T) {
	b := newTB(1)
	m1 := b.bcast(1, "a")
	m2 := b.bcast(1, "b")
	m3 := b.bcast(1, "c")
	m4 := b.bcast(1, "d")
	b.deliverBatch(1, m1, 5) // set 1
	b.deliverBatch(1, m2, 5) // set 1
	b.deliverBatch(1, m3, 0) // singleton set 2
	b.deliverBatch(1, m4, 5) // a NEW set 3 (tag reuse after a break)
	idx := batchIndex(b.trace(false))
	if idx[1][m1] != 1 || idx[1][m2] != 1 {
		t.Errorf("m1/m2 ordinals: %v", idx[1])
	}
	if idx[1][m3] != 2 {
		t.Errorf("m3 ordinal: %d", idx[1][m3])
	}
	if idx[1][m4] != 3 {
		t.Errorf("m4 ordinal after break: %d", idx[1][m4])
	}
}

func TestKSCDCliqueOfBatchConflicts(t *testing.T) {
	// Three processes, each delivering its own message in an earlier set
	// than the others': all pairs batch-conflict, violating 2-SCD but not
	// 3-SCD.
	b := newTB(3)
	ms := []model.MsgID{b.bcast(1, "a"), b.bcast(2, "b"), b.bcast(3, "c")}
	for p := 1; p <= 3; p++ {
		pid := model.ProcID(p)
		b.deliverBatch(pid, ms[p-1], 1)
		batch := int64(2)
		for q := 1; q <= 3; q++ {
			if q != p {
				b.deliverBatch(pid, ms[q-1], batch)
				batch++
			}
		}
	}
	wantViolation(t, KSCDOrder(2), b.trace(true), "k-Set-Constrained-Delivery")
	wantOK(t, KSCDOrder(3), b.trace(true))
	wantViolation(t, KSCDBroadcast(2), b.trace(true), "k-Set-Constrained-Delivery")
}

func TestKSCDSameSetBreaksClique(t *testing.T) {
	// As above, but p3 delivers everything in ONE set. p1 and p2 still
	// conflict on (m1, m2). A conflict on (m1, m3) or (m2, m3) would need
	// some process delivering m3 strictly first — only p3 could, and its
	// single-set delivery orders nothing. No 3-clique: 2-SCD holds.
	b := newTB(3)
	ms := []model.MsgID{b.bcast(1, "a"), b.bcast(2, "b"), b.bcast(3, "c")}
	for p := 1; p <= 2; p++ {
		pid := model.ProcID(p)
		b.deliverBatch(pid, ms[p-1], 1)
		batch := int64(2)
		for q := 1; q <= 3; q++ {
			if q != p {
				b.deliverBatch(pid, ms[q-1], batch)
				batch++
			}
		}
	}
	for q := 1; q <= 3; q++ {
		b.deliverBatch(3, ms[q-1], 1)
	}
	wantOK(t, KSCDOrder(2), b.trace(true))
	// SCD (k=1) still sees the p1/p2 conflict on (m1, m2).
	wantViolation(t, SCDOrder(), b.trace(true), "Set-Constrained-Delivery")
}

func TestSCDOrderIsOneSCD(t *testing.T) {
	// SCDOrder and KSCDOrder(1) agree on both an admissible and a
	// violating trace.
	mk := func(opposite bool) *tb {
		b := newTB(2)
		m1 := b.bcast(1, "a")
		m2 := b.bcast(2, "b")
		b.deliverBatch(1, m1, 1)
		b.deliverBatch(1, m2, 2)
		if opposite {
			b.deliverBatch(2, m2, 1)
			b.deliverBatch(2, m1, 2)
		} else {
			b.deliverBatch(2, m1, 1)
			b.deliverBatch(2, m2, 2)
		}
		return b
	}
	good := mk(false).trace(true)
	bad := mk(true).trace(true)
	if (SCDOrder().Check(good) == nil) != (KSCDOrder(1).Check(good) == nil) {
		t.Error("SCD and 1-SCD disagree on the admissible trace")
	}
	if (SCDOrder().Check(bad) == nil) != (KSCDOrder(1).Check(bad) == nil) {
		t.Error("SCD and 1-SCD disagree on the violating trace")
	}
}
