package spec

import (
	"fmt"

	"nobroadcast/internal/model"
)

// Online form of the set-constrained delivery predicates: the shared
// conflictStream in SCD mode assigns delivered-set ordinals as order keys
// (strict comparison means same-set messages conflict with nothing), so
// the SCD checker is exactly the total-order machinery over set ordinals
// and k-SCD is the clique checker over the same conflict graph.

// scdChecker rejects on the first strictly-opposite set ordering.
type scdChecker struct {
	i  int
	v  *Violation
	cs *conflictStream
}

func newSCDChecker(n int) *scdChecker {
	return &scdChecker{cs: newConflictStream(n, true)}
}

func (c *scdChecker) Feed(s model.Step) *Violation {
	if c.v != nil {
		return c.v
	}
	i := c.i
	c.i++
	if cf := c.cs.step(s); len(cf) > 0 {
		x := cf[0]
		c.v = &Violation{Spec: "SCD-Order", Property: "Set-Constrained-Delivery",
			Detail: fmt.Sprintf("%v delivers m%d in a strictly earlier set than m%d, while %v delivers m%d strictly earlier than m%d", x.p, x.a, x.b, x.q, x.b, x.a), StepIdx: i}
	}
	return c.v
}

func (c *scdChecker) Finish(bool) *Violation { return c.v }
