package spec

import (
	"fmt"
	"testing"

	"nobroadcast/internal/model"
	"nobroadcast/internal/rng"
	"nobroadcast/internal/trace"
)

// Tests for the incremental checking layer: the online checkers must be
// observationally equivalent to the retained whole-trace predicates
// (differential test over the full registry), must latch (online
// prefix-monotonicity), and must run in O(state) memory on unbounded
// streams (the million-delivery test feeds steps that are never stored).

// registryUnderTest instantiates every registry entry at the degrees the
// tests sweep.
func registryUnderTest() []struct {
	label string
	e     Entry
	s     Spec
} {
	var out []struct {
		label string
		e     Entry
		s     Spec
	}
	for _, e := range Registry() {
		ks := []int{1}
		if e.Parameterized {
			ks = []int{1, 2}
		}
		for _, k := range ks {
			label := e.Key
			if e.Parameterized {
				label = fmt.Sprintf("%s/k=%d", e.Key, k)
			}
			out = append(out, struct {
				label string
				e     Entry
				s     Spec
			}{label, e, e.New(k)})
		}
	}
	return out
}

// genTraceFull extends genTrace with the step kinds the broadcast-level
// generator omits: set-delivery Batch tags (for the SCD family), k-SA
// propositions and decisions (for the k-SA spec), and crashes (for
// well-formedness and uniform termination). The extra steps are random, so
// the k-SA clauses are violated often — which is what a differential test
// wants.
func genTraceFull(src *rng.Source, n, msgs int) *trace.Trace {
	tr := genTrace(src, n, msgs)
	x := tr.X
	// Sprinkle Batch tags over the deliveries: runs of consecutive
	// deliveries by one process occasionally share a positive batch id.
	batch := int64(0)
	for i := range x.Steps {
		if x.Steps[i].Kind != model.KindDeliver {
			continue
		}
		switch src.Intn(3) {
		case 0: // start a new set
			batch++
			x.Steps[i].Batch = batch
		case 1: // join the current set, if any
			if batch > 0 {
				x.Steps[i].Batch = batch
			}
		}
	}
	// Interleave a few k-SA propose/decide pairs and the odd crash.
	vals := []model.Value{"a", "b", "c"}
	out := make([]model.Step, 0, len(x.Steps)+8)
	for _, s := range x.Steps {
		out = append(out, s)
		if src.Intn(8) == 0 {
			p := model.ProcID(1 + src.Intn(n))
			obj := model.KSAID(1 + src.Intn(2))
			out = append(out, model.Step{Proc: p, Kind: model.KindPropose, Obj: obj, Val: vals[src.Intn(len(vals))]})
			if src.Bool() {
				out = append(out, model.Step{Proc: p, Kind: model.KindDecide, Obj: obj, Val: vals[src.Intn(len(vals))]})
			}
		}
		if src.Intn(40) == 0 {
			out = append(out, model.Step{Proc: model.ProcID(1 + src.Intn(n)), Kind: model.KindCrash})
		}
	}
	x.Steps = out
	return tr
}

// TestOnlineEqualsBatch is the differential test of the refactor: for
// every registry spec, streaming a trace through the online checker must
// produce the same verdict as the retained whole-trace predicate. Leaf
// specs must agree on the violated property; composites are only required
// to agree on admissibility (the batch form blames the first component in
// declaration order, the online form the first in time order). Specs whose
// checker latches at the exact batch step index are additionally compared
// on StepIdx.
func TestOnlineEqualsBatch(t *testing.T) {
	src := rng.New(412)
	specs := registryUnderTest()
	for round := 0; round < 80; round++ {
		tr := genTraceFull(src.Split(), 3, 5)
		for _, complete := range []bool{false, true} {
			tr.Complete = complete
			for _, su := range specs {
				batch := CheckBatch(su.s, tr)
				online := RunChecker(NewCheckerFor(su.s, tr.X.N), tr)
				if su.e.Composite {
					if (batch == nil) != (online == nil) {
						t.Fatalf("round %d complete=%v: %s admissibility diverges: batch=%v online=%v\ntrace:\n%s",
							round, complete, su.label, batch, online, tr.X)
					}
					continue
				}
				if !SameVerdict(batch, online) {
					t.Fatalf("round %d complete=%v: %s verdicts diverge: batch=%v online=%v\ntrace:\n%s",
						round, complete, su.label, batch, online, tr.X)
				}
				if su.e.ExactStep && batch != nil && batch.StepIdx != online.StepIdx {
					t.Fatalf("round %d complete=%v: %s step index diverges: batch=%d online=%d\ntrace:\n%s",
						round, complete, su.label, batch.StepIdx, online.StepIdx, tr.X)
				}
			}
		}
	}
}

// TestOnlineEqualsBatchOnCorners pins the conflict-family checkers on the
// corner the random generator never produces: deliveries that precede (or
// lack) the corresponding broadcast. Their streams park such deliveries
// until the broadcast arrives, which must reproduce the batch predicates'
// broadcast-only scans exactly.
func TestOnlineEqualsBatchOnCorners(t *testing.T) {
	n := 3
	b := func(p model.ProcID, m model.MsgID) []model.Step {
		return []model.Step{
			{Proc: p, Kind: model.KindBroadcastInvoke, Msg: m, Payload: model.Payload(fmt.Sprintf("c%d", m))},
			{Proc: p, Kind: model.KindBroadcastReturn, Msg: m},
		}
	}
	d := func(p, from model.ProcID, m model.MsgID) model.Step {
		return model.Step{Proc: p, Kind: model.KindDeliver, Peer: from, Msg: m, Payload: model.Payload(fmt.Sprintf("c%d", m))}
	}
	cat := func(groups ...[]model.Step) *trace.Trace {
		x := model.NewExecution(n)
		for _, g := range groups {
			x.Append(g...)
		}
		return &trace.Trace{X: x}
	}
	corners := map[string]*trace.Trace{
		// Both deliveries of m2 precede its broadcast; the opposite orders
		// at p1/p2 still form a Total-Order conflict.
		"deliver-before-broadcast": cat(
			b(1, 1),
			[]model.Step{d(1, 1, 1), d(1, 2, 2), d(2, 2, 2), d(2, 1, 1)},
			b(2, 2),
		),
		// m2 is never broadcast at all: the batch conflict scan (broadcast
		// messages only) ignores it, so no conflict exists.
		"never-broadcast": cat(
			b(1, 1),
			[]model.Step{d(1, 1, 1), d(1, 2, 2), d(2, 2, 2), d(2, 1, 1)},
		),
		// A delivery by a process id outside 1..n: the batch pair scans
		// never look at it.
		"foreign-proc": cat(
			b(1, 1), b(2, 2),
			[]model.Step{d(9, 1, 1), d(9, 2, 2), d(1, 1, 1), d(1, 2, 2), d(2, 2, 2), d(2, 1, 1)},
		),
	}
	conflictFamily := []Spec{TotalOrder(), KBOOrder(1), KBOOrder(2), SCDOrder(), KSCDOrder(1), MutualOrder(), FirstKOrder(1)}
	for name, tr := range corners {
		for _, s := range conflictFamily {
			batch := CheckBatch(s, tr)
			online := RunChecker(NewCheckerFor(s, tr.X.N), tr)
			if (batch == nil) != (online == nil) {
				t.Errorf("%s: %s diverges: batch=%v online=%v", name, s.Name(), batch, online)
			}
		}
	}
}

// TestOnlineCheckersLatch: once a checker returns a violation, every later
// Feed and Finish returns that same violation — the online counterpart of
// prefix monotonicity, table-driven over the full registry.
func TestOnlineCheckersLatch(t *testing.T) {
	src := rng.New(733)
	specs := registryUnderTest()
	for round := 0; round < 40; round++ {
		tr := genTraceFull(src.Split(), 3, 5)
		for _, su := range specs {
			c := NewCheckerFor(su.s, tr.X.N)
			var first *Violation
			for i, s := range tr.X.Steps {
				v := c.Feed(s)
				if first == nil {
					first = v
					continue
				}
				if v != first {
					t.Fatalf("round %d: %s did not latch at step %d: had %v, now %v", round, su.label, i, first, v)
				}
			}
			if fin := c.Finish(true); first != nil && fin != first {
				t.Fatalf("round %d: %s Finish broke the latch: had %v, got %v", round, su.label, first, fin)
			}
		}
	}
}

// TestBatchPrefixMonotoneRegistry: the retained batch predicates of every
// pure-safety registry entry are prefix-monotone — a violated prefix means
// a violated full trace. (Liveness entries are excluded: an incomplete
// prefix can be inadmissible for a pending delivery the full trace
// performs.)
func TestBatchPrefixMonotoneRegistry(t *testing.T) {
	src := rng.New(881)
	specs := registryUnderTest()
	for round := 0; round < 25; round++ {
		tr := genTraceFull(src.Split(), 3, 4)
		for _, su := range specs {
			if su.e.Liveness {
				continue
			}
			full := CheckBatch(su.s, tr) != nil
			for cut := 0; cut <= tr.X.Len(); cut++ {
				prefix := &trace.Trace{X: &model.Execution{N: tr.X.N, Steps: tr.X.Steps[:cut]}}
				if CheckBatch(su.s, prefix) != nil && !full {
					t.Fatalf("round %d: %s violated at prefix %d but not on the full trace:\n%s", round, su.label, cut, tr.X)
				}
			}
		}
	}
}

// conflictHeavyTrace builds a trace whose conflict graph is a large
// clique-free mess: every pair of messages is delivered in opposite orders
// by some pair of processes, forcing the clique search to do real work.
func conflictHeavyTrace(n, msgs int) *trace.Trace {
	x := model.NewExecution(n)
	for m := 1; m <= msgs; m++ {
		p := model.ProcID(1 + (m-1)%n)
		x.Append(
			model.Step{Proc: p, Kind: model.KindBroadcastInvoke, Msg: model.MsgID(m), Payload: model.Payload(fmt.Sprintf("h%d", m))},
			model.Step{Proc: p, Kind: model.KindBroadcastReturn, Msg: model.MsgID(m)},
		)
	}
	// p1 delivers in ascending order, p2 in descending: every pair
	// conflicts, so the conflict graph is a complete graph on msgs nodes.
	for m := 1; m <= msgs; m++ {
		p := model.ProcID(1 + (m-1)%n)
		x.Append(model.Step{Proc: 1, Kind: model.KindDeliver, Peer: p, Msg: model.MsgID(m), Payload: model.Payload(fmt.Sprintf("h%d", m))})
	}
	for m := msgs; m >= 1; m-- {
		p := model.ProcID(1 + (m-1)%n)
		x.Append(model.Step{Proc: 2, Kind: model.KindDeliver, Peer: p, Msg: model.MsgID(m), Payload: model.Payload(fmt.Sprintf("h%d", m))})
	}
	return &trace.Trace{X: x}
}

// TestCliqueBudget: the bounded clique search reports a distinct
// "budget exceeded" violation instead of hanging when the conflict graph
// is too dense for the configured budget.
func TestCliqueBudget(t *testing.T) {
	tr := conflictHeavyTrace(3, 12)

	// Sanity: with the default budget the search completes and finds a
	// genuine clique violation.
	if v := KBOOrder(2).Check(tr); v == nil || v.Property == PropCliqueBudget {
		t.Fatalf("default budget: want a genuine 2-BO violation, got %v", v)
	}

	// A starved checker must fail with the budget violation, not a wrong
	// admissibility answer and not a hang.
	c := newCliqueChecker(3, 11, false, "2-BO-Broadcast", "k-Bounded-Order", kboCliqueDetail, 5)
	v := RunChecker(c, tr)
	if v == nil || v.Property != PropCliqueBudget {
		t.Fatalf("budget=5: want %s violation, got %v", PropCliqueBudget, v)
	}

	// findCliqueBudget itself: exceeded is reported, and with a generous
	// budget the same inputs yield the clique.
	ix := tr.Index()
	pairs := conflictPairs(tr.X.N, ix, 0)
	adj := make(map[model.MsgID]map[model.MsgID]bool)
	nodes := make(map[model.MsgID]bool)
	for _, c := range pairs {
		if adj[c.a] == nil {
			adj[c.a] = make(map[model.MsgID]bool)
		}
		if adj[c.b] == nil {
			adj[c.b] = make(map[model.MsgID]bool)
		}
		adj[c.a][c.b], adj[c.b][c.a] = true, true
		nodes[c.a], nodes[c.b] = true, true
	}
	var all []model.MsgID
	for m := range nodes {
		all = append(all, m)
	}
	tiny := 3
	if _, exceeded := findCliqueBudget(all, adj, 6, &tiny); !exceeded {
		t.Fatalf("budget=3: search of a 12-node complete graph should exhaust the budget")
	}
	big := 1 << 20
	clique, exceeded := findCliqueBudget(all, adj, 6, &big)
	if exceeded || len(clique) != 6 {
		t.Fatalf("budget=1<<20: want a 6-clique, got %v (exceeded=%v)", clique, exceeded)
	}
}

// TestStreamingMillionDeliveries checks FIFO and causal order over a
// million-delivery execution without ever materializing it: steps are
// synthesized one at a time and fed straight to the monitor, so only the
// checkers' summary state (per-sender cursors and vector-clock frontiers)
// is resident.
func TestStreamingMillionDeliveries(t *testing.T) {
	const n = 5
	const msgs = 200_000 // × n deliveries = 1M deliveries
	mon := NewMonitor(n, FIFOOrder(), CausalOrder())
	feed := func(s model.Step) {
		if v := mon.Feed(s); v != nil {
			t.Fatalf("step %d: unexpected violation: %v", mon.Steps()-1, v)
		}
	}
	for m := 1; m <= msgs; m++ {
		from := model.ProcID(1 + (m-1)%n)
		pay := model.Payload(fmt.Sprintf("s%d", m))
		feed(model.Step{Proc: from, Kind: model.KindBroadcastInvoke, Msg: model.MsgID(m), Payload: pay})
		feed(model.Step{Proc: from, Kind: model.KindBroadcastReturn, Msg: model.MsgID(m)})
		// Everyone delivers in global broadcast order: FIFO- and
		// causal-admissible.
		for p := 1; p <= n; p++ {
			feed(model.Step{Proc: model.ProcID(p), Kind: model.KindDeliver, Peer: from, Msg: model.MsgID(m), Payload: pay})
		}
	}
	if v := mon.Finish(false); v != nil {
		t.Fatalf("finish: unexpected violation: %v", v)
	}
	if want := msgs * (2 + n); mon.Steps() != want {
		t.Fatalf("monitor saw %d steps, want %d", mon.Steps(), want)
	}
}

// TestMonitorVerdicts: the monitor latches per-spec verdicts independently
// and Finish is idempotent.
func TestMonitorVerdicts(t *testing.T) {
	n := 2
	x := model.NewExecution(n)
	x.Append(
		model.Step{Proc: 1, Kind: model.KindBroadcastInvoke, Msg: 1, Payload: "a"},
		model.Step{Proc: 1, Kind: model.KindBroadcastReturn, Msg: 1},
		model.Step{Proc: 1, Kind: model.KindBroadcastInvoke, Msg: 2, Payload: "b"},
		model.Step{Proc: 1, Kind: model.KindBroadcastReturn, Msg: 2},
		// p2 delivers p1's second message with the first still missing:
		// the FIFO checker latches right here, at step 4.
		model.Step{Proc: 2, Kind: model.KindDeliver, Peer: 1, Msg: 2, Payload: "b"},
		model.Step{Proc: 2, Kind: model.KindDeliver, Peer: 1, Msg: 1, Payload: "a"},
	)
	tr := &trace.Trace{X: x}
	mon := NewMonitor(n, FIFOOrder(), BasicBroadcast())
	var firstIdx int
	for i, s := range tr.X.Steps {
		if v := mon.Feed(s); v != nil {
			firstIdx = i
			break
		}
	}
	if v, idx := mon.Violation(); v == nil || idx != firstIdx || idx != 4 {
		t.Fatalf("want FIFO violation latched at step 4, got %v at %d", v, idx)
	}
	if v, ok := mon.Verdict(FIFOOrder().Name()); !ok || v == nil {
		t.Fatalf("FIFO verdict not latched: %v %v", v, ok)
	}
	if v, ok := mon.Verdict(BasicBroadcast().Name()); !ok || v != nil {
		t.Fatalf("Basic should be clean so far: %v %v", v, ok)
	}
	v1 := mon.Finish(false)
	v2 := mon.Finish(false)
	if v1 != v2 {
		t.Fatalf("Finish not idempotent: %v vs %v", v1, v2)
	}
}
