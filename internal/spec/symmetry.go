package spec

import (
	"fmt"
	"sort"

	"nobroadcast/internal/model"
	"nobroadcast/internal/rng"
	"nobroadcast/internal/trace"
)

// This file implements testers for the paper's two symmetry properties.
//
// Both properties quantify over all executions admitted by a specification;
// on a concrete admissible trace, the testers check the property's
// conclusion for that trace: every restriction (Definition 2) and every
// injective renaming (Definition 3) of the trace must remain admissible.
// A single failing restriction or renaming is a counterexample proving the
// specification non-compositional or non-content-neutral; passing all
// generated transformations is (necessarily) evidence, not proof.

// SymmetryOptions tunes the transformation generators.
type SymmetryOptions struct {
	// MaxExhaustiveMsgs bounds exhaustive subset enumeration: if the
	// trace broadcasts at most this many messages, all 2^m subsets are
	// tried. Zero selects the default (12).
	MaxExhaustiveMsgs int
	// RandomSubsets is the number of random subsets tried beyond the
	// structured ones when exhaustive enumeration is off. Zero selects
	// the default (64).
	RandomSubsets int
	// RandomRenamings is the number of random payload permutations tried
	// in addition to the structured renamings. Zero selects the default (8).
	RandomRenamings int
	// Seed feeds the deterministic generator.
	Seed uint64
	// ExtraRenamings are tried verbatim (after injectivity validation).
	ExtraRenamings []model.Renaming
}

func (o SymmetryOptions) withDefaults() SymmetryOptions {
	if o.MaxExhaustiveMsgs == 0 {
		o.MaxExhaustiveMsgs = 12
	}
	if o.RandomSubsets == 0 {
		o.RandomSubsets = 64
	}
	if o.RandomRenamings == 0 {
		o.RandomRenamings = 8
	}
	return o
}

// CompositionalityReport is the outcome of CheckCompositional.
type CompositionalityReport struct {
	// Holds is true when every generated restriction stayed admissible.
	Holds bool
	// Checked counts the restrictions evaluated.
	Checked int
	// WitnessSubset is a message subset whose restriction is inadmissible
	// (nil when Holds).
	WitnessSubset []model.MsgID
	// Violation is the spec violation on the witness restriction.
	Violation *Violation
}

// CheckCompositional tests Definition 2 on a concrete trace: for the spec
// to be compositional, the restriction of the admissible trace t onto any
// subset of its messages must remain admissible. It returns an error if t
// itself is not admitted by s (the property's precondition fails).
func CheckCompositional(s Spec, t *trace.Trace, opts SymmetryOptions) (*CompositionalityReport, error) {
	opts = opts.withDefaults()
	if v := s.Check(t); v != nil {
		return nil, fmt.Errorf("spec: base trace not admitted by %s: %s", s.Name(), v)
	}
	msgs := t.X.Messages()
	rep := &CompositionalityReport{Holds: true}
	try := func(keep map[model.MsgID]bool) bool {
		restricted := &trace.Trace{X: t.X.Restrict(keep), Complete: t.Complete, Name: t.Name}
		rep.Checked++
		if v := s.Check(restricted); v != nil {
			rep.Holds = false
			rep.Violation = v
			rep.WitnessSubset = sortedKeys(keep)
			return false
		}
		return true
	}

	if len(msgs) <= opts.MaxExhaustiveMsgs {
		total := 1 << len(msgs)
		for mask := 0; mask < total; mask++ {
			keep := make(map[model.MsgID]bool, len(msgs))
			for i, m := range msgs {
				if mask&(1<<i) != 0 {
					keep[m] = true
				}
			}
			if !try(keep) {
				return rep, nil
			}
		}
		return rep, nil
	}

	// Structured subsets: drop-one, halves, and per-process message sets.
	for _, drop := range msgs {
		keep := make(map[model.MsgID]bool, len(msgs)-1)
		for _, m := range msgs {
			if m != drop {
				keep[m] = true
			}
		}
		if !try(keep) {
			return rep, nil
		}
	}
	half := make(map[model.MsgID]bool, len(msgs)/2)
	for i, m := range msgs {
		if i%2 == 0 {
			half[m] = true
		}
	}
	if !try(half) {
		return rep, nil
	}
	for pn := 1; pn <= t.X.N; pn++ {
		keep := make(map[model.MsgID]bool)
		for _, m := range t.X.BroadcastOrder(model.ProcID(pn)) {
			keep[m] = true
		}
		if !try(keep) {
			return rep, nil
		}
	}

	src := rng.New(opts.Seed)
	for r := 0; r < opts.RandomSubsets; r++ {
		keep := make(map[model.MsgID]bool)
		for _, m := range msgs {
			if src.Bool() {
				keep[m] = true
			}
		}
		if !try(keep) {
			return rep, nil
		}
	}
	return rep, nil
}

func sortedKeys(set map[model.MsgID]bool) []model.MsgID {
	out := make([]model.MsgID, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ContentNeutralityReport is the outcome of CheckContentNeutral.
type ContentNeutralityReport struct {
	// Holds is true when every generated renaming stayed admissible.
	Holds bool
	// Checked counts the renamings evaluated.
	Checked int
	// WitnessRenaming is an injective renaming whose application is
	// inadmissible (nil when Holds).
	WitnessRenaming model.Renaming
	// Violation is the spec violation on the witness renaming.
	Violation *Violation
}

// CheckContentNeutral tests Definition 3 on a concrete trace: for the spec
// to be content-neutral, replacing the trace's messages through any
// injective function must preserve admissibility. It returns an error if t
// itself is not admitted by s.
func CheckContentNeutral(s Spec, t *trace.Trace, opts SymmetryOptions) (*ContentNeutralityReport, error) {
	opts = opts.withDefaults()
	if v := s.Check(t); v != nil {
		return nil, fmt.Errorf("spec: base trace not admitted by %s: %s", s.Name(), v)
	}
	payloads := t.X.Payloads()
	rep := &ContentNeutralityReport{Holds: true}
	try := func(r model.Renaming) (bool, error) {
		renamed, err := t.X.Rename(r)
		if err != nil {
			return true, fmt.Errorf("spec: generated non-injective renaming: %w", err)
		}
		rep.Checked++
		rt := &trace.Trace{X: renamed, Complete: t.Complete, Name: t.Name}
		if v := s.Check(rt); v != nil {
			rep.Holds = false
			rep.Violation = v
			rep.WitnessRenaming = r
			return false, nil
		}
		return true, nil
	}

	var renamings []model.Renaming

	// Fresh contents: every payload becomes a structureless token. This
	// is the strongest generic attack on content-dependent specs: any
	// special syntactic form (such as the SA(ksa,v) tags of Section 3.3)
	// is erased.
	fresh := make(model.Renaming, len(payloads))
	for i, p := range payloads {
		fresh[p] = model.Payload(fmt.Sprintf("cn-fresh-%d", i))
	}
	renamings = append(renamings, fresh)

	// Structure injection: every payload becomes an SA(ksa, v) tag. The
	// fresh renaming above can only erase content structure; this one
	// creates it, which is what catches specs whose ordering property
	// applies to specially-formed messages only (Section 3.3).
	inject := make(model.Renaming, len(payloads))
	for i, p := range payloads {
		inject[p] = SATag(1, model.Value(fmt.Sprintf("cn-inj-%d", i)))
	}
	renamings = append(renamings, inject)

	// Reversal: payload i takes payload (len-1-i)'s content.
	if len(payloads) > 1 {
		rev := make(model.Renaming, len(payloads))
		for i, p := range payloads {
			rev[p] = payloads[len(payloads)-1-i]
		}
		renamings = append(renamings, rev)
	}

	// Random permutations of the payload set.
	src := rng.New(opts.Seed)
	for r := 0; r < opts.RandomRenamings && len(payloads) > 1; r++ {
		perm := src.Perm(len(payloads))
		m := make(model.Renaming, len(payloads))
		for i, p := range payloads {
			m[p] = payloads[perm[i]]
		}
		renamings = append(renamings, m)
	}
	renamings = append(renamings, opts.ExtraRenamings...)

	for _, r := range renamings {
		ok, err := try(r)
		if err != nil {
			return nil, err
		}
		if !ok {
			return rep, nil
		}
	}
	return rep, nil
}
