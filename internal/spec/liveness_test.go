package spec

import (
	"testing"

	"nobroadcast/internal/model"
)

func TestUniformReliableAccepts(t *testing.T) {
	b := newTB(3)
	m := b.bcast(1, "a")
	b.deliver(1, m)
	b.deliver(2, m)
	b.deliver(3, m)
	wantOK(t, UniformReliable(), b.trace(true))
}

func TestUniformReliableRejectsPartialDelivery(t *testing.T) {
	// The faulty sender delivered its own message, p3 did not: plain
	// reliable broadcast tolerates this only if NOBODY delivered; uniform
	// reliable does not.
	b := newTB(3)
	m := b.bcast(1, "a")
	b.deliver(1, m)
	b.crash(1)
	// p2 also delivered (it got the direct send), p3 never does.
	b.deliver(2, m)
	wantViolation(t, UniformReliable(), b.trace(true), "BC-Uniform-Termination")
	// The plain (CS) termination property exempts the faulty sender's
	// message entirely — same trace, weaker spec, admissible.
	wantOK(t, BasicBroadcast(), b.trace(true))
}

func TestUniformReliableFaultyDelivererStillBinds(t *testing.T) {
	// Even a delivery by a process that later crashes obliges everyone.
	b := newTB(3)
	m := b.bcast(1, "a")
	b.deliver(1, m)
	b.crash(1)
	wantViolation(t, UniformReliable(), b.trace(true), "BC-Uniform-Termination")
}

func TestUniformReliableUndeliveredEverywhereOK(t *testing.T) {
	// Sender crashes before anyone delivers: vacuously fine.
	b := newTB(3)
	b.x.Append(model.Step{Proc: 1, Kind: model.KindBroadcastInvoke, Msg: 1, Payload: "a"})
	b.crash(1)
	wantOK(t, UniformReliable(), b.trace(true))
}

func TestUniformReliableIncompleteSkipsLiveness(t *testing.T) {
	b := newTB(3)
	m := b.bcast(1, "a")
	b.deliver(1, m)
	wantOK(t, UniformReliable(), b.trace(false))
}

func TestMutualOrderAccepts(t *testing.T) {
	// p1 sees m2 before its own m1; p2 sees its own first — legal, only
	// BOTH-own-first is forbidden.
	b := newTB(2)
	m1 := b.bcast(1, "a")
	m2 := b.bcast(2, "b")
	b.deliver(1, m2)
	b.deliver(1, m1)
	b.deliver(2, m2)
	b.deliver(2, m1)
	wantOK(t, MutualOrder(), b.trace(true))
	wantOK(t, MutualBroadcast(), b.trace(true))
}

func TestMutualOrderRejectsMutualInvisibility(t *testing.T) {
	b := newTB(2)
	m1 := b.bcast(1, "a")
	m2 := b.bcast(2, "b")
	b.deliver(1, m1) // own first at p1
	b.deliver(1, m2)
	b.deliver(2, m2) // own first at p2
	b.deliver(2, m1)
	wantViolation(t, MutualOrder(), b.trace(true), "Mutual")
}

func TestMutualOrderSameSenderExempt(t *testing.T) {
	// Two messages by the same sender never conflict under the mutual
	// property.
	b := newTB(2)
	m1 := b.bcast(1, "a")
	m2 := b.bcast(1, "b")
	b.deliver(1, m1)
	b.deliver(1, m2)
	b.deliver(2, m2)
	b.deliver(2, m1)
	wantOK(t, MutualOrder(), b.trace(true))
}

func TestMutualOrderPrefixSafe(t *testing.T) {
	// p2 has not delivered m1 yet: the violation requires all four
	// deliveries, so the prefix is admissible.
	b := newTB(2)
	m1 := b.bcast(1, "a")
	m2 := b.bcast(2, "b")
	b.deliver(1, m1)
	b.deliver(1, m2)
	b.deliver(2, m2)
	wantOK(t, MutualOrder(), b.trace(false))
}

func TestMutualOrderSymmetryProperties(t *testing.T) {
	b := newTB(2)
	m1 := b.bcast(1, "a")
	m2 := b.bcast(2, "b")
	b.deliver(1, m2)
	b.deliver(1, m1)
	b.deliver(2, m2)
	b.deliver(2, m1)
	tr := b.trace(true)
	comp, err := CheckCompositional(MutualOrder(), tr, SymmetryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !comp.Holds {
		t.Errorf("mutual order should be compositional: %v", comp.Violation)
	}
	cn, err := CheckContentNeutral(MutualOrder(), tr, SymmetryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !cn.Holds {
		t.Errorf("mutual order should be content-neutral: %v", cn.Violation)
	}
}
