package spec

import (
	"fmt"

	"nobroadcast/internal/model"
	"nobroadcast/internal/trace"
)

// Channels checks the three point-to-point channel properties of Section 2:
// SR-Validity, SR-No-Duplication, and SR-Termination. The first two are
// safety properties checked on every trace; SR-Termination is liveness and
// only evaluated on complete traces.
func Channels() Spec {
	return streamSpec{name: "SR-Channels", batch: checkChannels,
		mk: func(n int) Checker { return newChannelsChecker(n) }}
}

func checkChannels(t *trace.Trace) *Violation {
	x := t.X

	// SR-Validity: a receive of message instance m from p_s at p_r must be
	// preceded by a send of m by p_s to p_r.
	type dest struct {
		from, to model.ProcID
	}
	sent := make(map[model.MsgID]dest)
	receivedBy := make(map[model.MsgID]map[model.ProcID]int) // msg -> receiver -> count
	for i, s := range x.Steps {
		switch s.Kind {
		case model.KindSend:
			if _, dup := sent[s.Msg]; dup {
				// Message instances are unique; reusing an instance id on
				// a second send is a recording error surfaced as a
				// validity violation.
				return &Violation{Spec: "SR-Channels", Property: "SR-Validity",
					Detail: fmt.Sprintf("message instance m%d sent twice", s.Msg), StepIdx: i}
			}
			sent[s.Msg] = dest{from: s.Proc, to: s.Peer}
		case model.KindReceive:
			d, ok := sent[s.Msg]
			if !ok {
				return &Violation{Spec: "SR-Channels", Property: "SR-Validity",
					Detail: fmt.Sprintf("%v receives m%d from %v, never sent", s.Proc, s.Msg, s.Peer), StepIdx: i}
			}
			if d.from != s.Peer || d.to != s.Proc {
				return &Violation{Spec: "SR-Channels", Property: "SR-Validity",
					Detail: fmt.Sprintf("%v receives m%d from %v, but m%d was sent by %v to %v", s.Proc, s.Msg, s.Peer, s.Msg, d.from, d.to), StepIdx: i}
			}
			m := receivedBy[s.Msg]
			if m == nil {
				m = make(map[model.ProcID]int)
				receivedBy[s.Msg] = m
			}
			m[s.Proc]++
			// SR-No-Duplication: no process receives the same message
			// more than once.
			if m[s.Proc] > 1 {
				return &Violation{Spec: "SR-Channels", Property: "SR-No-Duplication",
					Detail: fmt.Sprintf("%v receives m%d twice", s.Proc, s.Msg), StepIdx: i}
			}
		}
	}

	// SR-Termination: on complete traces, every message sent to a correct
	// process is received.
	if t.Complete {
		correct := x.CorrectSet()
		for m, d := range sent {
			if !correct[d.to] {
				continue
			}
			if receivedBy[m][d.to] == 0 {
				return &Violation{Spec: "SR-Channels", Property: "SR-Termination",
					Detail: fmt.Sprintf("m%d sent by %v to correct %v never received", m, d.from, d.to), StepIdx: -1}
			}
		}
	}
	return nil
}
