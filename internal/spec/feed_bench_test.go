package spec

import (
	"testing"
)

// BenchmarkCheckerFeed measures the per-step Feed cost of every
// registered spec's online checker, streaming the same admissible trace
// through each. This is the checker hot path the serving layer sits on
// (every /v1/check and every net-runtime live monitor is a Feed loop),
// and the profile target behind `make profile-feed`. 20k steps keeps the
// total-order family — whose online form is quadratic in delivered
// messages, visibly so in this table — under a second per pass.
func BenchmarkCheckerFeed(b *testing.B) {
	const n, k = 5, 2
	tr := benchTrace(n, 20_000)
	for _, e := range Registry() {
		b.Run(e.Key, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := NewCheckerFor(e.New(k), n)
				for _, s := range tr.X.Steps {
					if v := c.Feed(s); v != nil {
						b.Fatalf("%s latched on the admissible bench trace: %v", e.Key, v)
					}
				}
			}
			b.ReportMetric(float64(tr.X.Len()), "trace-steps")
		})
	}
}
