package spec

import (
	"fmt"
	"sort"
	"strings"

	"nobroadcast/internal/model"
	"nobroadcast/internal/trace"
)

// This file implements the set-delivery generalization the paper's Section
// 3.1 remark sets aside for readability: Set-Constrained Delivery
// Broadcast (SCD Broadcast [16]) and its k-SCD extension [15] deliver
// messages within unordered sets rather than individually. The model
// supports it through the Batch field of delivery steps: deliveries by one
// process sharing a positive Batch value form one delivered set; Batch 0
// marks an ordinary singleton delivery.
//
// SCD's ordering property, batch-wise: for any two messages m and m',
// no two processes deliver them in strictly opposite set orders — if p
// delivers (a set containing) m strictly before (a set containing) m',
// then no q delivers m' strictly before m. Messages inside the same set
// are unordered, which is exactly the slack that makes SCD implementable
// from read/write registers [16] where Total Order is not.

// batchIndex maps, per process, each delivered message to the ordinal of
// the delivered set containing it. Consecutive deliveries sharing a
// positive Batch share an ordinal; Batch-0 deliveries are singleton sets.
func batchIndex(t *trace.Trace) map[model.ProcID]map[model.MsgID]int {
	out := make(map[model.ProcID]map[model.MsgID]int)
	cur := make(map[model.ProcID]int64) // current batch tag per process
	ord := make(map[model.ProcID]int)   // current set ordinal per process
	for _, s := range t.X.Steps {
		if s.Kind != model.KindDeliver {
			continue
		}
		m := out[s.Proc]
		if m == nil {
			m = make(map[model.MsgID]int)
			out[s.Proc] = m
		}
		if s.Batch == 0 || s.Batch != cur[s.Proc] {
			ord[s.Proc]++
			cur[s.Proc] = s.Batch
		}
		if _, dup := m[s.Msg]; !dup {
			m[s.Msg] = ord[s.Proc]
		}
	}
	return out
}

// SCDOrder checks the set-constrained delivery ordering property. It is
// prefix-safe: a strict opposite ordering of two delivered sets cannot be
// undone by any extension.
func SCDOrder() Spec {
	return streamSpec{name: "SCD-Order", batch: checkSCD,
		mk: func(n int) Checker { return newSCDChecker(n) }}
}

// SCDBroadcast composes the SCD order with the universal properties.
func SCDBroadcast() Spec {
	return All("SCD-Broadcast", BasicBroadcast(), SCDOrder())
}

// KSCDOrder checks the ordering property of k-SCD Broadcast [15], the
// set-delivery form of k-Bounded Order: every set of k+1 messages contains
// two messages whose delivered-set order agrees at all processes. A finite
// trace violates it iff some k+1 messages are pairwise batch-conflicting —
// each pair delivered in strictly opposite set orders by two processes.
// SCDOrder is the k = 1 case.
func KSCDOrder(k int) Spec {
	name := fmt.Sprintf("%d-SCD-Order", k)
	return streamSpec{
		name:  name,
		batch: func(t *trace.Trace) *Violation { return checkKSCD(t, k) },
		mk: func(n int) Checker {
			return newCliqueChecker(n, k, true, name, "k-Set-Constrained-Delivery", kscdCliqueDetail, DefaultCliqueBudget)
		},
	}
}

// KSCDBroadcast composes the k-SCD order with the universal properties.
func KSCDBroadcast(k int) Spec {
	return All(fmt.Sprintf("%d-SCD-Broadcast", k), BasicBroadcast(), KSCDOrder(k))
}

func checkKSCD(t *trace.Trace, k int) *Violation {
	name := fmt.Sprintf("%d-SCD-Order", k)
	ix := t.Index()
	batches := batchIndex(t)
	msgs := ix.MessagesSorted()
	adj := make(map[model.MsgID]map[model.MsgID]bool)
	link := func(a, b model.MsgID) {
		if adj[a] == nil {
			adj[a] = make(map[model.MsgID]bool)
		}
		if adj[b] == nil {
			adj[b] = make(map[model.MsgID]bool)
		}
		adj[a][b] = true
		adj[b][a] = true
	}
	for i := 0; i < len(msgs); i++ {
		for j := i + 1; j < len(msgs); j++ {
			a, b := msgs[i], msgs[j]
			var before, after bool
			for pn := 1; pn <= t.X.N; pn++ {
				p := model.ProcID(pn)
				ba, oka := batches[p][a]
				bb, okb := batches[p][b]
				if !oka || !okb {
					continue
				}
				switch {
				case ba < bb:
					before = true
				case bb < ba:
					after = true
				}
			}
			if before && after {
				link(a, b)
			}
		}
	}
	if len(adj) == 0 {
		return nil
	}
	nodes := make([]model.MsgID, 0, len(adj))
	for m := range adj {
		nodes = append(nodes, m)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	budget := DefaultCliqueBudget
	clique, exceeded := findCliqueBudget(nodes, adj, k+1, &budget)
	if exceeded {
		return cliqueBudgetViolation(name, -1)
	}
	if clique != nil {
		parts := make([]string, len(clique))
		for i, m := range clique {
			parts[i] = fmt.Sprintf("m%d", m)
		}
		return &Violation{Spec: name, Property: "k-Set-Constrained-Delivery",
			Detail: fmt.Sprintf("messages {%s} %s", strings.Join(parts, ","), fmt.Sprintf(kscdCliqueDetail, k+1)), StepIdx: -1}
	}
	return nil
}

func checkSCD(t *trace.Trace) *Violation {
	ix := t.Index()
	batches := batchIndex(t)
	msgs := ix.MessagesSorted()
	for i := 0; i < len(msgs); i++ {
		for j := i + 1; j < len(msgs); j++ {
			a, b := msgs[i], msgs[j]
			var before, after model.ProcID
			for pn := 1; pn <= t.X.N; pn++ {
				p := model.ProcID(pn)
				ba, oka := batches[p][a]
				bb, okb := batches[p][b]
				if !oka || !okb {
					continue
				}
				switch {
				case ba < bb:
					before = p
				case bb < ba:
					after = p
				}
				// ba == bb: same set, unordered — constrains nobody.
			}
			if before != model.NoProc && after != model.NoProc {
				return &Violation{Spec: "SCD-Order", Property: "Set-Constrained-Delivery",
					Detail: fmt.Sprintf("%v delivers m%d in a strictly earlier set than m%d, while %v delivers m%d strictly earlier than m%d", before, a, b, after, b, a), StepIdx: -1}
			}
		}
	}
	return nil
}
