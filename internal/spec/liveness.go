package spec

import (
	"fmt"

	"nobroadcast/internal/model"
	"nobroadcast/internal/trace"
)

// This file adds the liveness-flavoured specifications cited in Section
// 3.2's opening: Uniform Reliable Broadcast [13], whose delivery guarantee
// extends to messages delivered by faulty processes, and the ordering
// property of Mutual Broadcast [9], the abstraction computationally
// equivalent to read/write registers.

// UniformReliable checks Uniform Reliable Broadcast: the four universal
// properties plus BC-Uniform-Termination — if ANY process (correct or
// faulty) B-delivers a message, then every correct process eventually
// B-delivers it. Like all termination properties it is evaluated on
// complete traces only.
func UniformReliable() Spec {
	return All("Uniform-Reliable-Broadcast", BasicBroadcast(),
		streamSpec{name: "Uniform-Reliable-Broadcast", batch: checkUniformTermination,
			mk: func(n int) Checker { return newUniformChecker(n) }})
}

func checkUniformTermination(t *trace.Trace) *Violation {
	if !t.Complete {
		return nil
	}
	x := t.X
	correct := x.CorrectSet()
	ix := t.Index()
	for m := range ix.Broadcasts {
		deliveredSomewhere := model.NoProc
		for pn := 1; pn <= x.N; pn++ {
			if _, ok := ix.DeliveryPos[model.ProcID(pn)][m]; ok {
				deliveredSomewhere = model.ProcID(pn)
				break
			}
		}
		if deliveredSomewhere == model.NoProc {
			continue
		}
		for pn := 1; pn <= x.N; pn++ {
			pid := model.ProcID(pn)
			if !correct[pid] {
				continue
			}
			if _, ok := ix.DeliveryPos[pid][m]; !ok {
				return &Violation{Spec: "Uniform-Reliable-Broadcast", Property: "BC-Uniform-Termination",
					Detail: fmt.Sprintf("m%d was B-delivered by %v but correct %v never B-delivers it", m, deliveredSomewhere, pid), StepIdx: -1}
			}
		}
	}
	return nil
}

// MutualOrder checks the ordering property of Mutual Broadcast [9]: for
// any two messages m broadcast by p and m' broadcast by q (p ≠ q), it is
// forbidden that p delivers its own m before m' while q delivers its own
// m' before m — at least one of the two broadcasters must see the other's
// message first. (This is the broadcast-level reflection of register
// atomicity: two writes cannot both be invisible to each other.)
//
// Prefix-safety: the violating situation requires both processes to have
// delivered both messages with their own strictly first, which no
// extension can undo.
func MutualOrder() Spec {
	return streamSpec{name: "Mutual-Order", batch: checkMutualOrder,
		mk: func(int) Checker { return newMutualChecker() }}
}

// MutualBroadcast composes the mutual order with the universal properties.
func MutualBroadcast() Spec {
	return All("Mutual-Broadcast", BasicBroadcast(), MutualOrder())
}

func checkMutualOrder(t *trace.Trace) *Violation {
	ix := t.Index()
	msgs := ix.MessagesSorted()
	for i := 0; i < len(msgs); i++ {
		for j := i + 1; j < len(msgs); j++ {
			m, m2 := msgs[i], msgs[j]
			p := ix.Broadcasts[m].From
			q := ix.Broadcasts[m2].From
			if p == q {
				continue
			}
			pPos := ix.DeliveryPos[p]
			qPos := ix.DeliveryPos[q]
			pm, ok1 := pPos[m]
			pm2, ok2 := pPos[m2]
			qm2, ok3 := qPos[m2]
			qm, ok4 := qPos[m]
			if ok1 && ok2 && ok3 && ok4 && pm < pm2 && qm2 < qm {
				return &Violation{Spec: "Mutual-Order", Property: "Mutual",
					Detail: fmt.Sprintf("%v delivers its own m%d before m%d, and %v delivers its own m%d before m%d: the two broadcasts are mutually invisible", p, m, m2, q, m2, m), StepIdx: -1}
			}
		}
	}
	return nil
}
