package spec

import (
	"fmt"
	"testing"

	"nobroadcast/internal/model"
	"nobroadcast/internal/trace"
)

// --- Experiment E4: k-Stepped Broadcast is NOT compositional (§3.2) ---

// TestKSteppedNotCompositional reproduces the paper's exact counterexample:
// the 1-stepped predicate holds on the full 4-message trace, but its
// restriction onto {m1', m2} does not, because the sequence numbers a are
// only contextually relevant within the full execution.
func TestKSteppedNotCompositional(t *testing.T) {
	b, msgs := paperKSteppedTrace()
	rep, err := CheckCompositional(KSteppedOrder(1), b.trace(true), SymmetryOptions{})
	if err != nil {
		t.Fatalf("CheckCompositional: %v", err)
	}
	if rep.Holds {
		t.Fatalf("1-Stepped-Order reported compositional after %d restrictions; the paper's counterexample should refute it", rep.Checked)
	}
	if rep.Violation == nil || rep.Violation.Property != "k-Stepped" {
		t.Errorf("unexpected violation: %v", rep.Violation)
	}
	// The paper's witness {m1', m2} must itself be a counterexample
	// (exhaustive enumeration may find a different one first).
	keep := map[model.MsgID]bool{msgs[1]: true, msgs[2]: true}
	restricted := b.trace(true)
	restricted.X = restricted.X.Restrict(keep)
	if v := KSteppedOrder(1).Check(restricted); v == nil {
		t.Error("the paper's witness restriction {m1', m2} was admitted")
	}
}

// TestKSteppedIsContentNeutral: the k-stepped predicate never inspects
// payloads, so renaming preserves admissibility.
func TestKSteppedIsContentNeutral(t *testing.T) {
	b, _ := paperKSteppedTrace()
	rep, err := CheckContentNeutral(KSteppedOrder(1), b.trace(true), SymmetryOptions{})
	if err != nil {
		t.Fatalf("CheckContentNeutral: %v", err)
	}
	if !rep.Holds {
		t.Errorf("k-stepped should be content-neutral; renaming %v violated: %v", rep.WitnessRenaming, rep.Violation)
	}
}

// --- Experiment E4 bis: First-k Broadcast is NOT compositional (§1.4) ---

func TestFirstKNotCompositional(t *testing.T) {
	b := newTB(2)
	m1 := b.bcast(1, "a")
	m2 := b.bcast(2, "b")
	m3 := b.bcast(1, "c")
	// Both processes deliver m1 first (one distinct first, fine for k=1),
	// then diverge on m2/m3.
	b.deliver(1, m1)
	b.deliver(1, m2)
	b.deliver(1, m3)
	b.deliver(2, m1)
	b.deliver(2, m3)
	b.deliver(2, m2)
	rep, err := CheckCompositional(FirstKOrder(1), b.trace(true), SymmetryOptions{})
	if err != nil {
		t.Fatalf("CheckCompositional: %v", err)
	}
	if rep.Holds {
		t.Fatal("First-1-Order reported compositional; dropping m1 should refute it")
	}
	// Removing m1 exposes the divergent firsts.
	keep := map[model.MsgID]bool{m2: true, m3: true}
	restricted := b.trace(true)
	restricted.X = restricted.X.Restrict(keep)
	if v := FirstKOrder(1).Check(restricted); v == nil {
		t.Error("restriction {m2,m3} was admitted by First-1-Order")
	}
}

// --- Experiment E5: SA-tagged broadcast is NOT content-neutral (§3.3) ---

func TestSATaggedNotContentNeutral(t *testing.T) {
	// Base trace: three plain messages delivered first divergently — the
	// SA-tagged predicate ignores plain payloads, so it is admissible.
	b := kboCliqueTrace(3)
	tr := b.trace(true)
	if v := SATaggedOrder(2).Check(tr); v != nil {
		t.Fatalf("base trace should be admissible: %s", v)
	}
	rep, err := CheckContentNeutral(SATaggedOrder(2), tr, SymmetryOptions{})
	if err != nil {
		t.Fatalf("CheckContentNeutral: %v", err)
	}
	if rep.Holds {
		t.Fatalf("SA-Tagged-2-Order reported content-neutral after %d renamings; injecting SA tags should refute it", rep.Checked)
	}
	if rep.WitnessRenaming == nil {
		t.Error("missing witness renaming")
	}
}

// TestSATaggedIsCompositional: the SA-tagged predicate evaluates the same
// first-delivery rule on any message subset, so restrictions preserve it.
func TestSATaggedIsCompositional(t *testing.T) {
	b := newTB(3)
	// Tagged messages all delivered in a common order, plus plain noise.
	ma := b.bcast(1, SATag(1, "a"))
	noise := b.bcast(2, "noise")
	mb := b.bcast(2, SATag(1, "b"))
	for p := 1; p <= 3; p++ {
		b.deliver(model.ProcID(p), ma)
		b.deliver(model.ProcID(p), noise)
		b.deliver(model.ProcID(p), mb)
	}
	rep, err := CheckCompositional(SATaggedOrder(1), b.trace(true), SymmetryOptions{})
	if err != nil {
		t.Fatalf("CheckCompositional: %v", err)
	}
	if !rep.Holds {
		t.Errorf("SA-tagged should be compositional; subset %v violated: %v", rep.WitnessSubset, rep.Violation)
	}
}

// --- Experiment E11: the classical specs satisfy both symmetry properties ---

func TestClassicalSpecsSymmetric(t *testing.T) {
	// A trace admissible by all classical specs at once: a single common
	// total order respecting FIFO and causality.
	build := func() *tb {
		b := newTB(3)
		m1 := b.bcast(1, "a")
		for p := 1; p <= 3; p++ {
			b.deliver(model.ProcID(p), m1)
		}
		m2 := b.bcast(2, "b")
		for p := 1; p <= 3; p++ {
			b.deliver(model.ProcID(p), m2)
		}
		m3 := b.bcast(1, "c")
		for p := 1; p <= 3; p++ {
			b.deliver(model.ProcID(p), m3)
		}
		return b
	}
	specs := []Spec{
		SendToAll(),
		FIFOBroadcast(),
		CausalBroadcast(),
		TotalOrderBroadcast(),
		KBOBroadcast(1),
		KBOBroadcast(2),
	}
	for _, s := range specs {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			tr := build().trace(true)
			comp, err := CheckCompositional(s, tr, SymmetryOptions{})
			if err != nil {
				t.Fatalf("CheckCompositional: %v", err)
			}
			if !comp.Holds {
				t.Errorf("%s not compositional: subset %v: %v", s.Name(), comp.WitnessSubset, comp.Violation)
			}
			cn, err := CheckContentNeutral(s, tr, SymmetryOptions{})
			if err != nil {
				t.Fatalf("CheckContentNeutral: %v", err)
			}
			if !cn.Holds {
				t.Errorf("%s not content-neutral: %v", s.Name(), cn.Violation)
			}
			if comp.Checked == 0 || cn.Checked == 0 {
				t.Error("testers checked no transformations")
			}
		})
	}
}

// KBO with divergence: still compositional (the conflict graph of a
// restriction is a subgraph, so clique-freeness is preserved).
func TestKBOCompositionalWithConflicts(t *testing.T) {
	b := kboCliqueTrace(3)
	rep, err := CheckCompositional(KBOOrder(3), b.trace(true), SymmetryOptions{})
	if err != nil {
		t.Fatalf("CheckCompositional: %v", err)
	}
	if !rep.Holds {
		t.Errorf("3-BO should be compositional: subset %v: %v", rep.WitnessSubset, rep.Violation)
	}
}

func TestCheckCompositionalRejectsInadmissibleBase(t *testing.T) {
	b := kboCliqueTrace(3)
	if _, err := CheckCompositional(KBOOrder(2), b.trace(true), SymmetryOptions{}); err == nil {
		t.Error("expected error: base trace violates 2-BO")
	}
	if _, err := CheckContentNeutral(KBOOrder(2), b.trace(true), SymmetryOptions{}); err == nil {
		t.Error("expected error: base trace violates 2-BO")
	}
}

func TestCheckCompositionalLargeTraceSampling(t *testing.T) {
	// More messages than MaxExhaustiveMsgs: the structured+random subset
	// path runs. Use a spec that always holds to exercise the plumbing.
	b := newTB(2)
	var ms []model.MsgID
	for i := 0; i < 16; i++ {
		ms = append(ms, b.bcast(model.ProcID(1+i%2), model.Payload(fmt.Sprintf("m%d", i))))
	}
	for _, p := range []model.ProcID{1, 2} {
		for _, m := range ms {
			b.deliver(p, m)
		}
	}
	rep, err := CheckCompositional(TotalOrder(), b.trace(true), SymmetryOptions{MaxExhaustiveMsgs: 4, RandomSubsets: 8, Seed: 1})
	if err != nil {
		t.Fatalf("CheckCompositional: %v", err)
	}
	if !rep.Holds {
		t.Errorf("total order should be compositional: %v", rep.Violation)
	}
	// drop-one(16) + half(1) + per-proc(2) + random(8) = 27
	if rep.Checked != 27 {
		t.Errorf("Checked = %d, want 27", rep.Checked)
	}
}

func TestCheckContentNeutralExtraRenamings(t *testing.T) {
	b := newTB(2)
	m := b.bcast(1, "plain")
	b.deliver(1, m)
	b.deliver(2, m)
	tr := b.trace(true)
	// A spec that rejects a magic payload: trivially not content-neutral,
	// witnessed only through the extra renaming.
	magic := Func{SpecName: "no-magic", CheckFn: func(tt *trace.Trace) *Violation {
		for i, s := range tt.X.Steps {
			if s.Kind == model.KindBroadcastInvoke && s.Payload == "magic" {
				return &Violation{Spec: "no-magic", Property: "Magic", Detail: "magic payload", StepIdx: i}
			}
		}
		return nil
	}}
	rep, err := CheckContentNeutral(magic, tr, SymmetryOptions{
		ExtraRenamings: []model.Renaming{{"plain": "magic"}},
	})
	if err != nil {
		t.Fatalf("CheckContentNeutral: %v", err)
	}
	if rep.Holds {
		t.Error("no-magic spec should fail content-neutrality via the extra renaming")
	}
}
