package spec

import (
	"fmt"
	"testing"

	"nobroadcast/internal/model"
	"nobroadcast/internal/trace"
)

// benchTrace builds a FIFO/causal-admissible trace of roughly `steps`
// steps: round-robin broadcasters, every process delivering in global
// broadcast order.
func benchTrace(n, steps int) *trace.Trace {
	msgs := steps / (n + 2)
	x := model.NewExecution(n)
	for m := 1; m <= msgs; m++ {
		from := model.ProcID(1 + (m-1)%n)
		pay := model.Payload(fmt.Sprintf("b%d", m))
		x.Append(
			model.Step{Proc: from, Kind: model.KindBroadcastInvoke, Msg: model.MsgID(m), Payload: pay},
			model.Step{Proc: from, Kind: model.KindBroadcastReturn, Msg: model.MsgID(m)},
		)
		for p := 1; p <= n; p++ {
			x.Append(model.Step{Proc: model.ProcID(p), Kind: model.KindDeliver, Peer: from, Msg: model.MsgID(m), Payload: pay})
		}
	}
	return &trace.Trace{X: x}
}

// benchSpecs are the specifications both benchmark variants evaluate.
func benchSpecs() []Spec { return []Spec{FIFOOrder(), CausalOrder()} }

// benchCheckpointEvery is how often a monitoring loop wants a verdict over
// the growing execution. The batch reference predicates are quadratic in
// the prefix length (the causal check rebuilds every causal past), so the
// checkpoints are kept sparse — four per 100k-step trace — purely to keep
// the benchmark's wall-clock tolerable; denser checkpoints only widen the
// gap in the online form's favor.
const benchCheckpointEvery = 25_000

// BenchmarkSpecOnline measures continuous monitoring with the incremental
// checkers: one pass over the stream, each step fed once, a verdict
// available after every step for free.
func BenchmarkSpecOnline(b *testing.B) {
	tr := benchTrace(5, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mon := NewMonitor(tr.X.N, benchSpecs()...)
		for _, s := range tr.X.Steps {
			if v := mon.Feed(s); v != nil {
				b.Fatalf("unexpected violation: %v", v)
			}
		}
		if v := mon.Finish(false); v != nil {
			b.Fatalf("unexpected violation: %v", v)
		}
	}
	b.ReportMetric(float64(tr.X.Len()), "trace-steps")
}

// BenchmarkSpecBatch measures the same monitoring loop implemented the
// pre-refactor way: re-running the whole-trace reference predicates over
// the growing prefix at every checkpoint.
func BenchmarkSpecBatch(b *testing.B) {
	tr := benchTrace(5, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for cut := benchCheckpointEvery; cut <= tr.X.Len(); cut += benchCheckpointEvery {
			prefix := &trace.Trace{X: &model.Execution{N: tr.X.N, Steps: tr.X.Steps[:cut]}}
			for _, s := range benchSpecs() {
				if v := CheckBatch(s, prefix); v != nil {
					b.Fatalf("unexpected violation: %v", v)
				}
			}
		}
	}
}
