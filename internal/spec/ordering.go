package spec

import (
	"fmt"
	"sort"
	"strings"

	"nobroadcast/internal/model"
	"nobroadcast/internal/trace"
)

// This file implements the ordering predicates of Section 3.2 and the
// counterexample abstractions of Sections 1.4 and 3.3. Each predicate is a
// pure safety spec; the *Broadcast constructors compose it with the four
// universal properties of Section 3.1.

// FIFOOrder checks FIFO delivery: if a process broadcasts m before m', no
// process delivers m' without having delivered m first.
func FIFOOrder() Spec {
	return streamSpec{name: "FIFO-Order", batch: checkFIFO,
		mk: func(int) Checker { return newFIFOChecker() }}
}

// FIFOBroadcast is FIFO order plus the universal broadcast properties.
func FIFOBroadcast() Spec {
	return All("FIFO-Broadcast", BasicBroadcast(), FIFOOrder())
}

func checkFIFO(t *trace.Trace) *Violation {
	x := t.X
	// seq[m] = (sender, index of m in sender's broadcast sequence).
	type slot struct {
		from model.ProcID
		idx  int
	}
	seq := make(map[model.MsgID]slot)
	counts := make(map[model.ProcID]int)
	// deliveredCount[p][sender] = number of sender's messages p delivered,
	// which must advance in broadcast order with no gaps.
	deliveredIdx := make(map[model.ProcID]map[model.ProcID]int)
	bseq := make(map[model.ProcID][]model.MsgID)
	for i, s := range x.Steps {
		switch s.Kind {
		case model.KindBroadcastInvoke:
			seq[s.Msg] = slot{from: s.Proc, idx: counts[s.Proc]}
			counts[s.Proc]++
			bseq[s.Proc] = append(bseq[s.Proc], s.Msg)
		case model.KindDeliver:
			sl, ok := seq[s.Msg]
			if !ok {
				continue // BC-Validity's concern, not FIFO's
			}
			dm := deliveredIdx[s.Proc]
			if dm == nil {
				dm = make(map[model.ProcID]int)
				deliveredIdx[s.Proc] = dm
			}
			if want := dm[sl.from]; sl.idx != want {
				return &Violation{Spec: "FIFO-Order", Property: "FIFO",
					Detail: fmt.Sprintf("%v delivers m%d (message #%d of %v) but has delivered only %d of %v's earlier messages", s.Proc, s.Msg, sl.idx+1, sl.from, want, sl.from), StepIdx: i}
			}
			dm[sl.from]++
		}
	}
	return nil
}

// CausalOrder checks causal delivery: if broadcast(m) happened-before
// broadcast(m'), no process delivers m' without having delivered m first.
// Happened-before is the transitive closure of (a) local broadcast order
// and (b) delivering m before broadcasting m'.
func CausalOrder() Spec {
	return streamSpec{name: "Causal-Order", batch: checkCausal,
		mk: func(int) Checker { return newCausalChecker() }}
}

// CausalBroadcast is causal order plus the universal broadcast properties.
func CausalBroadcast() Spec {
	return All("Causal-Broadcast", BasicBroadcast(), CausalOrder())
}

func checkCausal(t *trace.Trace) *Violation {
	x := t.X
	// past[m] = set of messages whose broadcast happened-before m's.
	past := make(map[model.MsgID]map[model.MsgID]bool)
	// procPast[p] = messages p has broadcast or delivered so far (its
	// causal history of broadcast events).
	procPast := make(map[model.ProcID]map[model.MsgID]bool)
	delivered := make(map[model.ProcID]map[model.MsgID]bool)
	addAll := func(dst, src map[model.MsgID]bool) {
		for m := range src {
			dst[m] = true
		}
	}
	for i, s := range x.Steps {
		switch s.Kind {
		case model.KindBroadcastInvoke:
			pp := procPast[s.Proc]
			if pp == nil {
				pp = make(map[model.MsgID]bool)
				procPast[s.Proc] = pp
			}
			mp := make(map[model.MsgID]bool, len(pp))
			addAll(mp, pp)
			past[s.Msg] = mp
			pp[s.Msg] = true
		case model.KindDeliver:
			// Check: every message in m's causal past must already be
			// delivered at s.Proc.
			dm := delivered[s.Proc]
			if dm == nil {
				dm = make(map[model.MsgID]bool)
				delivered[s.Proc] = dm
			}
			for pred := range past[s.Msg] {
				if !dm[pred] {
					return &Violation{Spec: "Causal-Order", Property: "Causal",
						Detail: fmt.Sprintf("%v delivers m%d before its causal predecessor m%d", s.Proc, s.Msg, pred), StepIdx: i}
				}
			}
			dm[s.Msg] = true
			pp := procPast[s.Proc]
			if pp == nil {
				pp = make(map[model.MsgID]bool)
				procPast[s.Proc] = pp
			}
			// The delivered message and its past join p's causal history.
			pp[s.Msg] = true
			addAll(pp, past[s.Msg])
		}
	}
	return nil
}

// TotalOrder checks pairwise delivery agreement: no two processes deliver
// two messages in opposite orders. This is the safety core of Total Order
// Broadcast, the abstraction computationally equivalent to consensus [7].
func TotalOrder() Spec {
	return streamSpec{name: "Total-Order", batch: checkTotalOrder,
		mk: func(n int) Checker { return newTotalOrderChecker(n) }}
}

func checkTotalOrder(t *trace.Trace) *Violation {
	ix := t.Index()
	if a, b, p, q := findConflict(t.X.N, ix); a != model.NoMsg {
		return &Violation{Spec: "Total-Order", Property: "Total-Order",
			Detail: fmt.Sprintf("%v delivers m%d before m%d but %v delivers m%d before m%d", p, a, b, q, b, a), StepIdx: -1}
	}
	return nil
}

// TotalOrderBroadcast is total order plus the universal properties.
func TotalOrderBroadcast() Spec {
	return All("Total-Order-Broadcast", BasicBroadcast(), TotalOrder())
}

// findConflict returns one conflicting pair (a delivered before b at p, b
// before a at q), or NoMsg if none exists.
func findConflict(n int, ix *trace.Index) (a, b model.MsgID, p, q model.ProcID) {
	conflicts := conflictPairs(n, ix, 1)
	if len(conflicts) == 0 {
		return model.NoMsg, model.NoMsg, model.NoProc, model.NoProc
	}
	c := conflicts[0]
	return c.a, c.b, c.p, c.q
}

type conflict struct {
	a, b model.MsgID
	p, q model.ProcID
}

// conflictPairs computes the pairs of messages delivered in opposite
// orders by two processes. A pair conflicts only when both processes
// delivered both messages: "delivered versus not yet delivered" can still
// be repaired in an extension, so counting it would break prefix-safety.
// If limit > 0, at most limit conflicts are returned.
func conflictPairs(n int, ix *trace.Index, limit int) []conflict {
	msgs := ix.MessagesSorted()
	var out []conflict
	for i := 0; i < len(msgs); i++ {
		for j := i + 1; j < len(msgs); j++ {
			a, b := msgs[i], msgs[j]
			var before, after model.ProcID
			for pn := 1; pn <= n; pn++ {
				p := model.ProcID(pn)
				pos := ix.DeliveryPos[p]
				pa, oka := pos[a]
				pb, okb := pos[b]
				if !oka || !okb {
					continue
				}
				if pa < pb {
					before = p
				} else {
					after = p
				}
			}
			if before != model.NoProc && after != model.NoProc {
				out = append(out, conflict{a: a, b: b, p: before, q: after})
				if limit > 0 && len(out) >= limit {
					return out
				}
			}
		}
	}
	return out
}

// KBOOrder checks the ordering property of k-Bounded Order Broadcast [15]:
// every set of k+1 messages contains two messages delivered in the same
// order by all processes. A finite trace violates it iff some k+1 messages
// are pairwise conflicting (each pair delivered in opposite orders by two
// processes) — a (k+1)-clique in the conflict graph. Conflicts are
// irreparable, so the check is prefix-safe.
func KBOOrder(k int) Spec {
	name := fmt.Sprintf("%d-BO-Order", k)
	return streamSpec{
		name:  name,
		batch: func(t *trace.Trace) *Violation { return checkKBO(t, k) },
		mk: func(n int) Checker {
			return newCliqueChecker(n, k, false, name, "k-Bounded-Order", kboCliqueDetail, DefaultCliqueBudget)
		},
	}
}

// KBOBroadcast is the k-BO ordering property plus the universal properties.
func KBOBroadcast(k int) Spec {
	return All(fmt.Sprintf("%d-BO-Broadcast", k), BasicBroadcast(), KBOOrder(k))
}

// kboCliqueDetail and kscdCliqueDetail are the per-spec wording after the
// clique list in a violation Detail ("%d" is the clique size k+1).
const (
	kboCliqueDetail  = "are pairwise delivered in opposite orders by some processes; every set of %d messages must contain a commonly-ordered pair"
	kscdCliqueDetail = "are pairwise delivered in strictly opposite set orders; every set of %d messages must contain a commonly set-ordered pair"
)

func checkKBO(t *trace.Trace, k int) *Violation {
	name := fmt.Sprintf("%d-BO-Order", k)
	ix := t.Index()
	pairs := conflictPairs(t.X.N, ix, 0)
	if len(pairs) == 0 {
		return nil
	}
	adj := make(map[model.MsgID]map[model.MsgID]bool)
	for _, c := range pairs {
		if adj[c.a] == nil {
			adj[c.a] = make(map[model.MsgID]bool)
		}
		if adj[c.b] == nil {
			adj[c.b] = make(map[model.MsgID]bool)
		}
		adj[c.a][c.b] = true
		adj[c.b][c.a] = true
	}
	nodes := make([]model.MsgID, 0, len(adj))
	for m := range adj {
		nodes = append(nodes, m)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	budget := DefaultCliqueBudget
	clique, exceeded := findCliqueBudget(nodes, adj, k+1, &budget)
	if exceeded {
		return cliqueBudgetViolation(name, -1)
	}
	if clique != nil {
		parts := make([]string, len(clique))
		for i, m := range clique {
			parts[i] = fmt.Sprintf("m%d", m)
		}
		return &Violation{Spec: name, Property: "k-Bounded-Order",
			Detail: fmt.Sprintf("messages {%s} %s", strings.Join(parts, ","), fmt.Sprintf(kboCliqueDetail, k+1)), StepIdx: -1}
	}
	return nil
}

// DefaultCliqueBudget bounds the branch-and-bound clique search (in
// candidate-node expansions). Clique is NP-hard in general; an adversarial
// trace could otherwise drive the k-BO / k-SCD check super-polynomial
// silently. Conflict graphs of recorded executions are tiny, so the
// budget is far beyond anything a legitimate check needs.
const DefaultCliqueBudget = 1 << 20

// cliqueBudgetViolation is the distinct verdict returned when the search
// exhausts its budget: the trace is rejected as unverifiable rather than
// silently accepted or searched without bound.
func cliqueBudgetViolation(name string, stepIdx int) *Violation {
	return &Violation{Spec: name, Property: PropCliqueBudget,
		Detail: fmt.Sprintf("conflict-graph clique search exceeded the %d-node exploration budget; trace rejected as unverifiable", DefaultCliqueBudget), StepIdx: stepIdx}
}

// PropCliqueBudget is the Property of a budget-exceeded violation.
const PropCliqueBudget = "Clique-Search-Budget"

// findClique searches for a clique of the requested size in the conflict
// graph, using a simple branch-and-bound over nodes in increasing id
// order. This is exact, not approximate; findCliqueBudget bounds the
// search and reports exhaustion distinctly.
func findClique(nodes []model.MsgID, adj map[model.MsgID]map[model.MsgID]bool, size int) []model.MsgID {
	budget := DefaultCliqueBudget
	clique, _ := findCliqueBudget(nodes, adj, size, &budget)
	return clique
}

// findCliqueBudget is findClique under an explicit expansion budget. Every
// candidate node considered decrements *budget; when it runs out the
// search stops and exceeded is true (the clique result is then
// meaningless). The budget is a pointer so incremental callers can spread
// one budget across many searches.
func findCliqueBudget(nodes []model.MsgID, adj map[model.MsgID]map[model.MsgID]bool, size int, budget *int) (clique []model.MsgID, exceeded bool) {
	var cur []model.MsgID
	var rec func(start int) []model.MsgID
	rec = func(start int) []model.MsgID {
		if exceeded {
			return nil
		}
		if len(cur) == size {
			out := make([]model.MsgID, size)
			copy(out, cur)
			return out
		}
		for i := start; i < len(nodes); i++ {
			if *budget <= 0 {
				exceeded = true
				return nil
			}
			*budget--
			if len(cur)+(len(nodes)-i) < size {
				return nil // not enough nodes left
			}
			cand := nodes[i]
			ok := true
			for _, c := range cur {
				if !adj[c][cand] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			cur = append(cur, cand)
			if found := rec(i + 1); found != nil {
				return found
			}
			cur = cur[:len(cur)-1]
		}
		return nil
	}
	return rec(0), exceeded
}

// FirstKOrder checks the "simplistic" one-shot ordering property of
// Section 1.4: at most k distinct messages are delivered as the very first
// message by the processes. The paper's point is that this spec, while
// equivalent to one instance of k-SA, is content-neutral but NOT
// compositional; the symmetry testers demonstrate it.
func FirstKOrder(k int) Spec {
	return streamSpec{
		name:  fmt.Sprintf("First-%d-Order", k),
		batch: func(t *trace.Trace) *Violation { return checkFirstK(t, k) },
		mk:    func(n int) Checker { return newFirstKChecker(n, k) },
	}
}

func checkFirstK(t *trace.Trace, k int) *Violation {
	ix := t.Index()
	firsts := make(map[model.MsgID]bool)
	for pn := 1; pn <= t.X.N; pn++ {
		if ds := ix.Deliveries[model.ProcID(pn)]; len(ds) > 0 {
			firsts[ds[0]] = true
		}
	}
	if len(firsts) > k {
		return &Violation{Spec: fmt.Sprintf("First-%d-Order", k), Property: "First-k",
			Detail: fmt.Sprintf("%d distinct messages delivered first, at most %d allowed", len(firsts), k), StepIdx: -1}
	}
	return nil
}

// FirstKBroadcast composes the first-k order with the universal properties.
func FirstKBroadcast(k int) Spec {
	return All(fmt.Sprintf("First-%d-Broadcast", k), BasicBroadcast(), FirstKOrder(k))
}

// KSteppedOrder checks the ordering property of the k-Stepped Broadcast of
// Section 3.2: for each a, let S_a be the set containing the a-th message
// broadcast by each process; at most k messages of S_a may be delivered
// before any other message of S_a by some process. The paper shows this
// spec content-neutral but not compositional (the restriction shifts the
// sequence numbers a).
func KSteppedOrder(k int) Spec {
	return streamSpec{
		name:  fmt.Sprintf("%d-Stepped-Order", k),
		batch: func(t *trace.Trace) *Violation { return checkKStepped(t, k) },
		mk:    func(n int) Checker { return newKSteppedChecker(n, k) },
	}
}

// KSteppedBroadcast composes the k-stepped order with the universal
// properties.
func KSteppedBroadcast(k int) Spec {
	return All(fmt.Sprintf("%d-Stepped-Broadcast", k), BasicBroadcast(), KSteppedOrder(k))
}

func checkKStepped(t *trace.Trace, k int) *Violation {
	name := fmt.Sprintf("%d-Stepped-Order", k)
	ix := t.Index()
	// Group messages by their broadcast sequence number a (0-based here).
	bySeq := make(map[int]map[model.MsgID]bool)
	maxSeq := 0
	for pn := 1; pn <= t.X.N; pn++ {
		for a, m := range ix.BroadcastSeq[model.ProcID(pn)] {
			if bySeq[a] == nil {
				bySeq[a] = make(map[model.MsgID]bool)
			}
			bySeq[a][m] = true
			if a > maxSeq {
				maxSeq = a
			}
		}
	}
	for a := 0; a <= maxSeq; a++ {
		sa := bySeq[a]
		if len(sa) <= k {
			continue // at most k messages exist: property vacuous
		}
		firsts := make(map[model.MsgID]bool)
		for pn := 1; pn <= t.X.N; pn++ {
			p := model.ProcID(pn)
			for _, m := range ix.Deliveries[p] {
				if sa[m] {
					firsts[m] = true
					break // only the first S_a message of p counts
				}
			}
		}
		if len(firsts) > k {
			return &Violation{Spec: name, Property: "k-Stepped",
				Detail: fmt.Sprintf("step %d: %d distinct messages of S_%d delivered first within S_%d, at most %d allowed", a+1, len(firsts), a+1, a+1, k), StepIdx: -1}
		}
	}
	return nil
}

// SA-tagged payloads implement the non-content-neutral strawman of Section
// 3.3: the ordering property applies only to messages of the special form
// SA(ksa, v). SATag encodes such a payload; ParseSATag decodes it.

const saTagPrefix = "SA|"

// SATag encodes the payload SA(obj, v).
func SATag(obj model.KSAID, v model.Value) model.Payload {
	return model.Payload(fmt.Sprintf("%s%d|%s", saTagPrefix, int(obj), string(v)))
}

// ParseSATag decodes an SA-tagged payload, reporting ok=false for plain
// payloads.
func ParseSATag(p model.Payload) (obj model.KSAID, v model.Value, ok bool) {
	s := string(p)
	if !strings.HasPrefix(s, saTagPrefix) {
		return 0, "", false
	}
	rest := s[len(saTagPrefix):]
	idx := strings.IndexByte(rest, '|')
	if idx < 0 {
		return 0, "", false
	}
	var o int
	if _, err := fmt.Sscanf(rest[:idx], "%d", &o); err != nil {
		return 0, "", false
	}
	return model.KSAID(o), model.Value(rest[idx+1:]), true
}

// SATaggedOrder checks the non-content-neutral ordering property of
// Section 3.3: for each k-SA identifier ksa, at most k distinct messages of
// the form SA(ksa, _) are delivered first (among the SA(ksa, _) messages)
// by any process. It is compositional — the predicate is evaluated on
// every subset of messages the same way — but inspects message contents,
// violating content-neutrality, which the symmetry testers demonstrate.
func SATaggedOrder(k int) Spec {
	return streamSpec{
		name:  fmt.Sprintf("SA-Tagged-%d-Order", k),
		batch: func(t *trace.Trace) *Violation { return checkSATagged(t, k) },
		mk:    func(n int) Checker { return newSATaggedChecker(n, k) },
	}
}

// SATaggedBroadcast composes the SA-tagged order with the universal
// properties.
func SATaggedBroadcast(k int) Spec {
	return All(fmt.Sprintf("SA-Tagged-%d-Broadcast", k), BasicBroadcast(), SATaggedOrder(k))
}

func checkSATagged(t *trace.Trace, k int) *Violation {
	name := fmt.Sprintf("SA-Tagged-%d-Order", k)
	ix := t.Index()
	// tagged[obj] = set of messages of the form SA(obj, _).
	tagged := make(map[model.KSAID]map[model.MsgID]bool)
	for m, info := range ix.Broadcasts {
		if obj, _, ok := ParseSATag(info.Payload); ok {
			if tagged[obj] == nil {
				tagged[obj] = make(map[model.MsgID]bool)
			}
			tagged[obj][m] = true
		}
	}
	objs := make([]model.KSAID, 0, len(tagged))
	for o := range tagged {
		objs = append(objs, o)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
	for _, obj := range objs {
		set := tagged[obj]
		firsts := make(map[model.MsgID]bool)
		for pn := 1; pn <= t.X.N; pn++ {
			p := model.ProcID(pn)
			for _, m := range ix.Deliveries[p] {
				if set[m] {
					firsts[m] = true
					break
				}
			}
		}
		if len(firsts) > k {
			return &Violation{Spec: name, Property: "SA-Tagged-First-k",
				Detail: fmt.Sprintf("%v: %d distinct SA-tagged messages delivered first, at most %d allowed", obj, len(firsts), k), StepIdx: -1}
		}
	}
	return nil
}
