package spec

import (
	"bytes"
	"io"
	"testing"

	"nobroadcast/internal/trace"
)

// BenchmarkStreamCheck is the end-to-end serving-path comparison behind
// BENCH_PR7.json: decode an uploaded trace stream and feed every step
// to the online checkers, exactly what /v1/check does, over the same
// 100k-step trace pre-encoded in each wire format. The delta between
// the sub-benchmarks is pure decode cost — the Monitor work is
// identical — so this measures what the binary format buys a checking
// client end to end.
func BenchmarkStreamCheck(b *testing.B) {
	tr := benchTrace(5, 100_000)
	steps := tr.X.Len()
	var jsonl, bin bytes.Buffer
	if err := tr.EncodeJSONL(&jsonl); err != nil {
		b.Fatal(err)
	}
	if err := tr.EncodeBinary(&bin); err != nil {
		b.Fatal(err)
	}
	check := func(b *testing.B, sr trace.Reader) {
		b.Helper()
		mon := NewMonitor(sr.Header().N, benchSpecs()...)
		got := 0
		for {
			s, err := sr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			if v := mon.Feed(s); v != nil {
				b.Fatalf("unexpected violation: %v", v)
			}
			got++
		}
		if v := mon.Finish(false); v != nil {
			b.Fatalf("unexpected violation: %v", v)
		}
		if got != steps {
			b.Fatalf("checked %d steps, want %d", got, steps)
		}
	}
	b.Run("jsonl", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sr, err := trace.NewStepReader(bytes.NewReader(jsonl.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			check(b, sr)
		}
		b.ReportMetric(float64(steps), "trace-steps")
	})
	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sr, err := trace.NewBinaryReader(bytes.NewReader(bin.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			check(b, sr)
		}
		b.ReportMetric(float64(steps), "trace-steps")
	})
}
