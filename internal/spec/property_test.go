package spec

import (
	"fmt"
	"testing"

	"nobroadcast/internal/model"
	"nobroadcast/internal/rng"
	"nobroadcast/internal/trace"
)

// genTrace builds a random broadcast-level trace: procs broadcast messages
// at random points and deliver random subsets of the broadcast messages in
// random orders (no duplication, valid origins). The traces are admissible
// by BC-Validity/No-Duplication by construction but deliberately violate
// ordering specs often — which is what the monotonicity property needs.
func genTrace(src *rng.Source, n, msgs int) *trace.Trace {
	x := model.NewExecution(n)
	type binfo struct {
		id      model.MsgID
		from    model.ProcID
		payload model.Payload
	}
	var broadcastSoFar []binfo
	delivered := make([]map[model.MsgID]bool, n+1)
	for p := 1; p <= n; p++ {
		delivered[p] = make(map[model.MsgID]bool)
	}
	nextID := model.MsgID(1)
	for nextID <= model.MsgID(msgs) || src.Intn(4) != 0 {
		if nextID <= model.MsgID(msgs) && (len(broadcastSoFar) == 0 || src.Bool()) {
			p := model.ProcID(1 + src.Intn(n))
			b := binfo{id: nextID, from: p, payload: model.Payload(fmt.Sprintf("g%d", nextID))}
			nextID++
			broadcastSoFar = append(broadcastSoFar, b)
			x.Append(
				model.Step{Proc: p, Kind: model.KindBroadcastInvoke, Msg: b.id, Payload: b.payload},
				model.Step{Proc: p, Kind: model.KindBroadcastReturn, Msg: b.id},
			)
			continue
		}
		// Random delivery of a not-yet-delivered message at a random proc.
		p := model.ProcID(1 + src.Intn(n))
		var candidates []binfo
		for _, b := range broadcastSoFar {
			if !delivered[p][b.id] {
				candidates = append(candidates, b)
			}
		}
		if len(candidates) == 0 {
			if nextID > model.MsgID(msgs) {
				break
			}
			continue
		}
		b := candidates[src.Intn(len(candidates))]
		delivered[p][b.id] = true
		x.Append(model.Step{Proc: p, Kind: model.KindDeliver, Peer: b.from, Msg: b.id, Payload: b.payload})
	}
	return &trace.Trace{X: x, Complete: false}
}

// safetySpecs are the prefix-monotone specifications under test.
func safetySpecs() []Spec {
	return []Spec{
		BasicBroadcast(),
		FIFOOrder(),
		CausalOrder(),
		TotalOrder(),
		KBOOrder(1),
		KBOOrder(2),
		KSteppedOrder(1),
		KSteppedOrder(2),
		FirstKOrder(1),
		FirstKOrder(2),
		SATaggedOrder(1),
		MutualOrder(),
		WellFormed(),
	}
}

// TestSafetyPrefixMonotone: once a finite trace violates a safety spec,
// every extension violates it too — equivalently, if any prefix is
// violated the full trace is. Checking prefixes of random traces covers
// both directions.
func TestSafetyPrefixMonotone(t *testing.T) {
	src := rng.New(2024)
	for round := 0; round < 60; round++ {
		tr := genTrace(src.Split(), 3, 5)
		for _, s := range safetySpecs() {
			full := s.Check(tr) != nil
			prefixViolated := false
			for cut := 0; cut <= tr.X.Len(); cut++ {
				prefix := &trace.Trace{X: &model.Execution{N: tr.X.N, Steps: tr.X.Steps[:cut]}}
				if s.Check(prefix) != nil {
					prefixViolated = true
					break
				}
			}
			if prefixViolated && !full {
				t.Errorf("round %d: %s violated on a prefix but not on the full trace:\n%s", round, s.Name(), tr.X)
			}
		}
	}
}

// TestKBORestrictionInvariance (compositionality as a property test): for
// random traces admitted by k-BO, every random restriction stays admitted
// (conflict graphs of restrictions are subgraphs).
func TestKBORestrictionInvariance(t *testing.T) {
	src := rng.New(7)
	checked := 0
	for round := 0; round < 120 && checked < 30; round++ {
		tr := genTrace(src.Split(), 3, 5)
		s := KBOOrder(2)
		if s.Check(tr) != nil {
			continue // only admissible traces feed the property
		}
		checked++
		sub := src.Split()
		for trial := 0; trial < 8; trial++ {
			keep := make(map[model.MsgID]bool)
			for _, m := range tr.X.Messages() {
				if sub.Bool() {
					keep[m] = true
				}
			}
			restricted := &trace.Trace{X: tr.X.Restrict(keep)}
			if v := s.Check(restricted); v != nil {
				t.Fatalf("round %d: restriction broke 2-BO: %s\nsubset %v of trace:\n%s", round, v, keep, tr.X)
			}
		}
	}
	if checked < 10 {
		t.Fatalf("generator produced too few admissible traces (%d)", checked)
	}
}

// TestContentNeutralRenamingInvariance: for the payload-blind specs, the
// verdict (admitted or violated, and the violated property) is invariant
// under injective renamings of random traces — a stronger property than
// Definition 3, which only requires admissibility to be preserved.
func TestContentNeutralRenamingInvariance(t *testing.T) {
	src := rng.New(99)
	blind := []Spec{BasicBroadcast(), FIFOOrder(), CausalOrder(), TotalOrder(), KBOOrder(2), KSteppedOrder(1), FirstKOrder(1), MutualOrder()}
	for round := 0; round < 40; round++ {
		tr := genTrace(src.Split(), 3, 4)
		// Fresh injective renaming.
		ren := make(model.Renaming)
		for i, p := range tr.X.Payloads() {
			ren[p] = model.Payload(fmt.Sprintf("fresh-%d-%d", round, i))
		}
		renamed, err := tr.X.Rename(ren)
		if err != nil {
			t.Fatal(err)
		}
		rt := &trace.Trace{X: renamed}
		for _, s := range blind {
			v1, v2 := s.Check(tr), s.Check(rt)
			if (v1 == nil) != (v2 == nil) {
				t.Errorf("round %d: %s verdict changed under renaming: %v vs %v", round, s.Name(), v1, v2)
			}
			if v1 != nil && v2 != nil && v1.Property != v2.Property {
				t.Errorf("round %d: %s violated property changed: %s vs %s", round, s.Name(), v1.Property, v2.Property)
			}
		}
	}
}

// TestGeneratorSanity: generated traces satisfy BC-Validity and
// BC-No-Duplication by construction.
func TestGeneratorSanity(t *testing.T) {
	src := rng.New(5)
	for round := 0; round < 30; round++ {
		tr := genTrace(src.Split(), 4, 6)
		if v := BasicBroadcast().Check(tr); v != nil {
			t.Fatalf("round %d: generator produced invalid trace: %s", round, v)
		}
		if v := WellFormed().Check(tr); v != nil {
			t.Fatalf("round %d: generator produced ill-formed trace: %s", round, v)
		}
	}
}

// TestOrderingSpecsViolatedSometimes: the generator is adversarial enough
// to exercise the violation paths of every ordering spec.
func TestOrderingSpecsViolatedSometimes(t *testing.T) {
	src := rng.New(31)
	hit := map[string]bool{}
	specs := []Spec{FIFOOrder(), CausalOrder(), TotalOrder(), KBOOrder(1), KSteppedOrder(1), FirstKOrder(1), MutualOrder()}
	for round := 0; round < 200; round++ {
		tr := genTrace(src.Split(), 3, 5)
		for _, s := range specs {
			if s.Check(tr) != nil {
				hit[s.Name()] = true
			}
		}
	}
	for _, s := range specs {
		if !hit[s.Name()] {
			t.Errorf("%s never violated across 200 random traces: generator too tame", s.Name())
		}
	}
}
