package spec

import (
	"testing"

	"nobroadcast/internal/model"
	"nobroadcast/internal/trace"
)

func TestBasicBroadcastAccepts(t *testing.T) {
	b := newTB(2)
	m := b.bcast(1, "a")
	b.deliver(1, m)
	b.deliver(2, m)
	wantOK(t, BasicBroadcast(), b.trace(true))
}

func TestSendToAllIsBasic(t *testing.T) {
	if SendToAll().Name() != "Send-To-All" {
		t.Errorf("name = %q", SendToAll().Name())
	}
	b := newTB(2)
	m := b.bcast(1, "a")
	b.deliver(1, m)
	b.deliver(2, m)
	wantOK(t, SendToAll(), b.trace(true))
}

func TestBCValidityUnbroadcast(t *testing.T) {
	b := newTB(2)
	b.x.Append(model.Step{Proc: 1, Kind: model.KindDeliver, Peer: 2, Msg: 9, Payload: "x"})
	wantViolation(t, BasicBroadcast(), b.trace(false), "BC-Validity")
}

func TestBCValidityWrongOrigin(t *testing.T) {
	b := newTB(3)
	m := b.bcast(1, "a")
	b.x.Append(model.Step{Proc: 2, Kind: model.KindDeliver, Peer: 3, Msg: m, Payload: "a"})
	wantViolation(t, BasicBroadcast(), b.trace(false), "BC-Validity")
}

func TestBCValidityPayloadMismatch(t *testing.T) {
	b := newTB(2)
	m := b.bcast(1, "a")
	b.x.Append(model.Step{Proc: 2, Kind: model.KindDeliver, Peer: 1, Msg: m, Payload: "tampered"})
	wantViolation(t, BasicBroadcast(), b.trace(false), "BC-Validity")
}

func TestBCValidityDoubleBroadcast(t *testing.T) {
	b := newTB(2)
	b.x.Append(
		model.Step{Proc: 1, Kind: model.KindBroadcastInvoke, Msg: 1, Payload: "a"},
		model.Step{Proc: 1, Kind: model.KindBroadcastReturn, Msg: 1},
		model.Step{Proc: 2, Kind: model.KindBroadcastInvoke, Msg: 1, Payload: "b"},
	)
	wantViolation(t, BasicBroadcast(), b.trace(false), "BC-Validity")
}

func TestBCNoDuplication(t *testing.T) {
	b := newTB(2)
	m := b.bcast(1, "a")
	b.deliver(2, m)
	b.deliver(2, m)
	wantViolation(t, BasicBroadcast(), b.trace(false), "BC-No-Duplication")
}

func TestBCLocalTermination(t *testing.T) {
	b := newTB(2)
	// Invocation without return.
	b.x.Append(model.Step{Proc: 1, Kind: model.KindBroadcastInvoke, Msg: 1, Payload: "a"})
	b.deliver(1, 1)
	b.deliver(2, 1)
	wantOK(t, BasicBroadcast(), b.trace(false)) // prefix: fine
	wantViolation(t, BasicBroadcast(), b.trace(true), "BC-Local-Termination")
}

func TestBCLocalTerminationFaultyExempt(t *testing.T) {
	b := newTB(2)
	b.x.Append(model.Step{Proc: 1, Kind: model.KindBroadcastInvoke, Msg: 1, Payload: "a"})
	b.crash(1)
	wantOK(t, BasicBroadcast(), b.trace(true))
}

func TestBCGlobalCSTermination(t *testing.T) {
	b := newTB(3)
	m := b.bcast(1, "a")
	b.deliver(1, m)
	b.deliver(2, m)
	// p3 never delivers; p1 is correct, so on a complete trace this is a
	// violation.
	wantOK(t, BasicBroadcast(), b.trace(false))
	wantViolation(t, BasicBroadcast(), b.trace(true), "BC-Global-CS-Termination")
}

func TestBCGlobalCSTerminationFaultySenderExempt(t *testing.T) {
	b := newTB(3)
	m := b.bcast(1, "a")
	b.deliver(1, m)
	b.crash(1)
	// Faulty sender: other processes need not deliver (the "CS" of the
	// property name: it is contingent on the sender's correctness).
	wantOK(t, BasicBroadcast(), b.trace(true))
}

func TestBCGlobalCSTerminationFaultyReceiverExempt(t *testing.T) {
	b := newTB(3)
	m := b.bcast(1, "a")
	b.deliver(1, m)
	b.deliver(2, m)
	b.crash(3)
	wantOK(t, BasicBroadcast(), b.trace(true))
}

// --- k-SA specification ---

func proposeStep(p model.ProcID, obj model.KSAID, v model.Value) model.Step {
	return model.Step{Proc: p, Kind: model.KindPropose, Obj: obj, Val: v}
}

func decideStep(p model.ProcID, obj model.KSAID, v model.Value) model.Step {
	return model.Step{Proc: p, Kind: model.KindDecide, Obj: obj, Val: v}
}

func TestKSAAccepts(t *testing.T) {
	x := model.NewExecution(3)
	x.Append(
		proposeStep(1, 1, "a"), decideStep(1, 1, "a"),
		proposeStep(2, 1, "b"), decideStep(2, 1, "b"),
		proposeStep(3, 1, "c"), decideStep(3, 1, "b"),
	)
	wantOK(t, KSA(2), &trace.Trace{X: x, Complete: true})
}

func TestKSAValidityUnproposed(t *testing.T) {
	x := model.NewExecution(2)
	x.Append(proposeStep(1, 1, "a"), decideStep(1, 1, "z"))
	wantViolation(t, KSA(2), &trace.Trace{X: x}, "k-SA-Validity")
}

func TestKSAValidityDecideWithoutPropose(t *testing.T) {
	x := model.NewExecution(2)
	x.Append(proposeStep(1, 1, "a"), decideStep(2, 1, "a"))
	wantViolation(t, KSA(2), &trace.Trace{X: x}, "k-SA-Validity")
}

func TestKSAValidityAnotherProcessValue(t *testing.T) {
	// Deciding a value proposed by a different process is valid.
	x := model.NewExecution(2)
	x.Append(
		proposeStep(1, 1, "a"), decideStep(1, 1, "a"),
		proposeStep(2, 1, "b"), decideStep(2, 1, "a"),
	)
	wantOK(t, KSA(1), &trace.Trace{X: x, Complete: true})
}

func TestKSAAgreement(t *testing.T) {
	x := model.NewExecution(3)
	x.Append(
		proposeStep(1, 1, "a"), decideStep(1, 1, "a"),
		proposeStep(2, 1, "b"), decideStep(2, 1, "b"),
		proposeStep(3, 1, "c"), decideStep(3, 1, "c"),
	)
	wantViolation(t, KSA(2), &trace.Trace{X: x}, "k-SA-Agreement")
	wantOK(t, KSA(3), &trace.Trace{X: x, Complete: true})
}

func TestKSAAgreementPerObject(t *testing.T) {
	// Two objects with 2 distinct decisions each: fine for k=2.
	x := model.NewExecution(2)
	x.Append(
		proposeStep(1, 1, "a"), decideStep(1, 1, "a"),
		proposeStep(2, 1, "b"), decideStep(2, 1, "b"),
		proposeStep(1, 2, "c"), decideStep(1, 2, "c"),
		proposeStep(2, 2, "d"), decideStep(2, 2, "d"),
	)
	wantOK(t, KSA(2), &trace.Trace{X: x, Complete: true})
}

func TestKSAOneShot(t *testing.T) {
	x := model.NewExecution(2)
	x.Append(proposeStep(1, 1, "a"), decideStep(1, 1, "a"), proposeStep(1, 1, "b"))
	wantViolation(t, KSA(2), &trace.Trace{X: x}, "One-Shot")

	y := model.NewExecution(2)
	y.Append(proposeStep(1, 1, "a"), decideStep(1, 1, "a"), decideStep(1, 1, "a"))
	wantViolation(t, KSA(2), &trace.Trace{X: y}, "One-Shot")
}

func TestKSATermination(t *testing.T) {
	x := model.NewExecution(2)
	x.Append(proposeStep(1, 1, "a"))
	wantOK(t, KSA(2), &trace.Trace{X: x, Complete: false})
	wantViolation(t, KSA(2), &trace.Trace{X: x, Complete: true}, "k-SA-Termination")
}

func TestKSATerminationFaultyExempt(t *testing.T) {
	x := model.NewExecution(2)
	x.Append(proposeStep(1, 1, "a"), model.Step{Proc: 1, Kind: model.KindCrash})
	wantOK(t, KSA(2), &trace.Trace{X: x, Complete: true})
}
