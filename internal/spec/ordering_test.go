package spec

import (
	"fmt"
	"testing"

	"nobroadcast/internal/model"
)

func TestFIFOAccepts(t *testing.T) {
	b := newTB(2)
	m1 := b.bcast(1, "a")
	m2 := b.bcast(1, "b")
	b.deliver(1, m1)
	b.deliver(1, m2)
	b.deliver(2, m1)
	b.deliver(2, m2)
	wantOK(t, FIFOOrder(), b.trace(true))
	wantOK(t, FIFOBroadcast(), b.trace(true))
}

func TestFIFORejectsReorder(t *testing.T) {
	b := newTB(2)
	m1 := b.bcast(1, "a")
	m2 := b.bcast(1, "b")
	b.deliver(2, m2) // m2 before m1: FIFO violation
	b.deliver(2, m1)
	_ = m1
	wantViolation(t, FIFOOrder(), b.trace(false), "FIFO")
}

func TestFIFOAllowsCrossSenderReorder(t *testing.T) {
	b := newTB(2)
	m1 := b.bcast(1, "a")
	m2 := b.bcast(2, "b")
	b.deliver(1, m1)
	b.deliver(1, m2)
	b.deliver(2, m2)
	b.deliver(2, m1)
	wantOK(t, FIFOOrder(), b.trace(true))
}

func TestCausalAccepts(t *testing.T) {
	b := newTB(2)
	m1 := b.bcast(1, "a")
	b.deliver(1, m1)
	b.deliver(2, m1)
	m2 := b.bcast(2, "reply") // causally after m1 at p2
	b.deliver(2, m2)
	b.deliver(1, m2)
	wantOK(t, CausalOrder(), b.trace(true))
	wantOK(t, CausalBroadcast(), b.trace(true))
}

func TestCausalRejectsReplyBeforeCause(t *testing.T) {
	b := newTB(3)
	m1 := b.bcast(1, "a")
	b.deliver(1, m1)
	b.deliver(2, m1)
	m2 := b.bcast(2, "reply")
	b.deliver(2, m2)
	// p3 delivers the reply before its cause.
	b.deliver(3, m2)
	b.deliver(3, m1)
	wantViolation(t, CausalOrder(), b.trace(false), "Causal")
}

func TestCausalRejectsLocalOrderViolation(t *testing.T) {
	b := newTB(2)
	m1 := b.bcast(1, "a")
	m2 := b.bcast(1, "b") // local order: m1 -> m2
	b.deliver(2, m2)
	b.deliver(2, m1)
	_ = m1
	wantViolation(t, CausalOrder(), b.trace(false), "Causal")
}

func TestCausalTransitivity(t *testing.T) {
	b := newTB(3)
	m1 := b.bcast(1, "a")
	b.deliver(1, m1)
	b.deliver(2, m1)
	m2 := b.bcast(2, "b") // m1 -> m2
	b.deliver(2, m2)
	b.deliver(3, m2)
	m3 := b.bcast(3, "c") // m2 -> m3, so m1 -> m3 transitively
	b.deliver(3, m3)
	// p1 delivers m3 without m1's successor m2 — wait, p1 already has m1.
	// Deliver m3 at p1 before m2: causal violation (m2 -> m3).
	b.deliver(1, m3)
	wantViolation(t, CausalOrder(), b.trace(false), "Causal")
}

func TestCausalAllowsConcurrent(t *testing.T) {
	b := newTB(2)
	m1 := b.bcast(1, "a")
	m2 := b.bcast(2, "b") // concurrent with m1
	b.deliver(1, m1)
	b.deliver(1, m2)
	b.deliver(2, m2)
	b.deliver(2, m1)
	wantOK(t, CausalOrder(), b.trace(true))
}

func TestTotalOrderAccepts(t *testing.T) {
	b := newTB(2)
	m1 := b.bcast(1, "a")
	m2 := b.bcast(2, "b")
	b.deliver(1, m1)
	b.deliver(1, m2)
	b.deliver(2, m1)
	b.deliver(2, m2)
	wantOK(t, TotalOrder(), b.trace(true))
	wantOK(t, TotalOrderBroadcast(), b.trace(true))
}

func TestTotalOrderRejectsDisagreement(t *testing.T) {
	b := newTB(2)
	m1 := b.bcast(1, "a")
	m2 := b.bcast(2, "b")
	b.deliver(1, m1)
	b.deliver(1, m2)
	b.deliver(2, m2)
	b.deliver(2, m1)
	wantViolation(t, TotalOrder(), b.trace(false), "Total-Order")
}

func TestTotalOrderPrefixSafe(t *testing.T) {
	// p1 delivered both, p2 delivered only m2: no violation yet (p2 may
	// deliver m1 later... but then orders would conflict; still, the
	// prefix itself must not be flagged since p2's m1 delivery has not
	// happened).
	b := newTB(2)
	m1 := b.bcast(1, "a")
	m2 := b.bcast(2, "b")
	b.deliver(1, m1)
	b.deliver(1, m2)
	b.deliver(2, m2)
	wantOK(t, TotalOrder(), b.trace(false))
}

// kboCliqueTrace builds a trace over n = size processes where each process
// broadcasts one message and delivers its own first, then everyone
// delivers everything — making all cross-sender pairs conflict.
func kboCliqueTrace(size int) *tb {
	b := newTB(size)
	msgs := make([]model.MsgID, size)
	for p := 1; p <= size; p++ {
		msgs[p-1] = b.bcast(model.ProcID(p), model.Payload(fmt.Sprintf("v%d", p)))
	}
	for p := 1; p <= size; p++ {
		b.deliver(model.ProcID(p), msgs[p-1]) // own first
		for q := 1; q <= size; q++ {
			if q != p {
				b.deliver(model.ProcID(p), msgs[q-1])
			}
		}
	}
	return b
}

func TestKBORejectsCliqueOfKPlus1(t *testing.T) {
	// 3 processes, each delivering its own message first: all 3 pairs
	// conflict, so 2-BO is violated (every 3 messages must contain a
	// commonly ordered pair) but 3-BO holds.
	b := kboCliqueTrace(3)
	wantViolation(t, KBOOrder(2), b.trace(true), "k-Bounded-Order")
	wantOK(t, KBOOrder(3), b.trace(true))
}

func TestKBOTotalOrderIsOneBO(t *testing.T) {
	b := newTB(2)
	m1 := b.bcast(1, "a")
	m2 := b.bcast(2, "b")
	for _, p := range []model.ProcID{1, 2} {
		b.deliver(p, m1)
		b.deliver(p, m2)
	}
	wantOK(t, KBOOrder(1), b.trace(true))
}

func TestKBOOneBORejectsAnyConflict(t *testing.T) {
	b := newTB(2)
	m1 := b.bcast(1, "a")
	m2 := b.bcast(2, "b")
	b.deliver(1, m1)
	b.deliver(1, m2)
	b.deliver(2, m2)
	b.deliver(2, m1)
	wantViolation(t, KBOOrder(1), b.trace(true), "k-Bounded-Order")
}

func TestKBOCommonlyOrderedPairSaves(t *testing.T) {
	// 3 messages; m1,m2 conflict but m3 is ordered after both everywhere:
	// every 3-set contains a commonly ordered pair, so 2-BO holds.
	b := newTB(2)
	m1 := b.bcast(1, "a")
	m2 := b.bcast(2, "b")
	m3 := b.bcast(1, "c")
	b.deliver(1, m1)
	b.deliver(1, m2)
	b.deliver(1, m3)
	b.deliver(2, m2)
	b.deliver(2, m1)
	b.deliver(2, m3)
	wantOK(t, KBOOrder(2), b.trace(true))
}

func TestKBOBroadcastComposite(t *testing.T) {
	b := kboCliqueTrace(3)
	wantViolation(t, KBOBroadcast(2), b.trace(true), "k-Bounded-Order")
}

func TestFirstKOrder(t *testing.T) {
	// 3 processes with 3 distinct first deliveries: violates First-2.
	b := kboCliqueTrace(3)
	wantViolation(t, FirstKOrder(2), b.trace(true), "First-k")
	wantOK(t, FirstKOrder(3), b.trace(true))
}

func TestFirstKOrderAgreeingFirsts(t *testing.T) {
	b := newTB(3)
	m1 := b.bcast(1, "a")
	for p := 1; p <= 3; p++ {
		b.deliver(model.ProcID(p), m1)
	}
	wantOK(t, FirstKOrder(1), b.trace(true))
	wantOK(t, FirstKBroadcast(1), b.trace(true))
}

// paperKSteppedTrace is the execution of Section 3.2's compositionality
// counterexample: p1 and p2 each 1-Stepped-broadcast two messages (m_i then
// m'_i); p1 delivers [m1, m1', m2, m2'], p2 delivers [m1, m2, m1', m2'].
// (The paper numbers processes p0,p1; we use p1,p2.)
func paperKSteppedTrace() (*tb, [4]model.MsgID) {
	b := newTB(2)
	m1 := b.bcast(1, "m1")
	mp1 := b.bcast(1, "m1'")
	m2 := b.bcast(2, "m2")
	mp2 := b.bcast(2, "m2'")
	// p1: [m1, m1', m2, m2']
	b.deliver(1, m1)
	b.deliver(1, mp1)
	b.deliver(1, m2)
	b.deliver(1, mp2)
	// p2: [m1, m2, m1', m2']
	b.deliver(2, m1)
	b.deliver(2, m2)
	b.deliver(2, mp1)
	b.deliver(2, mp2)
	return b, [4]model.MsgID{m1, mp1, m2, mp2}
}

func TestKSteppedAcceptsPaperTrace(t *testing.T) {
	// Both processes deliver m1 before m2 (the S_1 set) and m1' before m2'
	// (the S_2 set), so the 1-stepped predicate holds on the full trace.
	b, _ := paperKSteppedTrace()
	wantOK(t, KSteppedOrder(1), b.trace(true))
	wantOK(t, KSteppedBroadcast(1), b.trace(true))
}

func TestKSteppedRejectsDivergentFirsts(t *testing.T) {
	b := newTB(2)
	m1 := b.bcast(1, "a")
	m2 := b.bcast(2, "b")
	// S_1 = {m1, m2}; p1 delivers m1 first within S_1, p2 delivers m2
	// first: 2 distinct firsts > k=1.
	b.deliver(1, m1)
	b.deliver(1, m2)
	b.deliver(2, m2)
	b.deliver(2, m1)
	wantViolation(t, KSteppedOrder(1), b.trace(true), "k-Stepped")
	wantOK(t, KSteppedOrder(2), b.trace(true))
}

func TestSATagRoundTrip(t *testing.T) {
	p := SATag(7, "hello")
	obj, v, ok := ParseSATag(p)
	if !ok || obj != 7 || v != "hello" {
		t.Errorf("ParseSATag(%q) = %v, %q, %v", p, obj, v, ok)
	}
	if _, _, ok := ParseSATag("plain"); ok {
		t.Error("plain payload parsed as SA tag")
	}
	if _, _, ok := ParseSATag("SA|nonsense"); ok {
		t.Error("malformed tag parsed")
	}
	if _, _, ok := ParseSATag("SA|x|y"); ok {
		t.Error("non-numeric object parsed")
	}
}

func TestSATaggedOrder(t *testing.T) {
	b := newTB(3)
	// Three processes each broadcast an SA-tagged proposal for object 1.
	m := make([]model.MsgID, 3)
	for p := 1; p <= 3; p++ {
		m[p-1] = b.bcast(model.ProcID(p), SATag(1, model.Value(fmt.Sprintf("v%d", p))))
	}
	// Each delivers its own first: 3 distinct SA firsts for object 1.
	for p := 1; p <= 3; p++ {
		b.deliver(model.ProcID(p), m[p-1])
		for q := 1; q <= 3; q++ {
			if q != p {
				b.deliver(model.ProcID(p), m[q-1])
			}
		}
	}
	wantViolation(t, SATaggedOrder(2), b.trace(true), "SA-Tagged-First-k")
	wantOK(t, SATaggedOrder(3), b.trace(true))
}

func TestSATaggedOrderIgnoresPlainMessages(t *testing.T) {
	// Plain (untagged) messages delivered first divergently do not count.
	b := kboCliqueTrace(3)
	wantOK(t, SATaggedOrder(1), b.trace(true))
	wantOK(t, SATaggedBroadcast(1), b.trace(true))
}

func TestSATaggedOrderPerObject(t *testing.T) {
	b := newTB(2)
	ma := b.bcast(1, SATag(1, "a"))
	mb := b.bcast(2, SATag(2, "b"))
	// Different objects: each has one first, fine for k=1.
	b.deliver(1, ma)
	b.deliver(1, mb)
	b.deliver(2, mb)
	b.deliver(2, ma)
	wantOK(t, SATaggedOrder(1), b.trace(true))
}
