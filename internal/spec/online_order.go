package spec

import (
	"fmt"
	"sort"
	"strings"

	"nobroadcast/internal/model"
)

// This file holds the online checkers for the ordering predicates of
// Sections 1.4, 3.2 and 3.3: FIFO per-sender cursors, causal vector-clock
// frontiers, the pairwise conflict tracker shared by Total Order / k-BO /
// SCD / k-SCD, and the first-delivery counters of the strawman specs.
//
// Faithfulness note: the checkers return verdicts identical to the batch
// predicates on every trace in which a message's broadcast precedes its
// deliveries — which both runtimes guarantee by recording order (an
// invocation is always recorded before any delivery it causes). The
// conflict-based checkers additionally handle late broadcasts exactly
// (deliveries of a not-yet-broadcast message are parked and joined to the
// conflict graph when the broadcast arrives, matching the batch scan over
// broadcast messages only).

// fifoChecker streams checkFIFO: one cursor per (receiver, sender) pair —
// the number of the sender's messages the receiver has delivered, which
// must advance in broadcast order with no gaps.
type fifoChecker struct {
	i            int
	v            *Violation
	seq          map[model.MsgID]fifoSlot
	counts       map[model.ProcID]int
	deliveredIdx map[model.ProcID]map[model.ProcID]int
}

type fifoSlot struct {
	from model.ProcID
	idx  int
}

func newFIFOChecker() *fifoChecker {
	return &fifoChecker{
		seq:          make(map[model.MsgID]fifoSlot),
		counts:       make(map[model.ProcID]int),
		deliveredIdx: make(map[model.ProcID]map[model.ProcID]int),
	}
}

func (c *fifoChecker) Feed(s model.Step) *Violation {
	if c.v != nil {
		return c.v
	}
	i := c.i
	c.i++
	switch s.Kind {
	case model.KindBroadcastInvoke:
		c.seq[s.Msg] = fifoSlot{from: s.Proc, idx: c.counts[s.Proc]}
		c.counts[s.Proc]++
	case model.KindDeliver:
		sl, ok := c.seq[s.Msg]
		if !ok {
			return nil // BC-Validity's concern, not FIFO's
		}
		dm := c.deliveredIdx[s.Proc]
		if dm == nil {
			dm = make(map[model.ProcID]int)
			c.deliveredIdx[s.Proc] = dm
		}
		if want := dm[sl.from]; sl.idx != want {
			c.v = &Violation{Spec: "FIFO-Order", Property: "FIFO",
				Detail: fmt.Sprintf("%v delivers m%d (message #%d of %v) but has delivered only %d of %v's earlier messages", s.Proc, s.Msg, sl.idx+1, sl.from, want, sl.from), StepIdx: i}
			return c.v
		}
		dm[sl.from]++
	}
	return nil
}

func (c *fifoChecker) Finish(bool) *Violation { return c.v }

// causalChecker streams checkCausal without materializing past sets.
//
// The batch predicate keeps an explicit message set per causal past —
// O(M²) memory. The streaming form exploits that causal pasts are
// per-sender prefix-closed: a process's causal history restricted to one
// sender's broadcasts is always a prefix of that sender's broadcast
// sequence (by induction — histories grow by unioning snapshots that are
// themselves prefix-shaped, plus the next own broadcast). A past is then
// a vector clock (one prefix length per sender), and the delivery check
// compares the vector against the receiver's delivered-prefix frontier,
// consulting the out-of-order buffer for the gap. Deliveries of
// never-broadcast messages (possible only on BC-invalid traces) carry no
// vector and are tracked in explicit side sets, preserving the batch
// verdict there too.
type causalChecker struct {
	i    int
	v    *Violation
	bseq map[model.ProcID][]model.MsgID
	meta map[model.MsgID]*causalMsg
	// hist[p][q] = length of the prefix of q's broadcasts in p's causal
	// history; histUnknown[p] = never-broadcast messages in that history.
	hist        map[model.ProcID]map[model.ProcID]int
	histUnknown map[model.ProcID]map[model.MsgID]bool
	// prefix[p][q] = length of the contiguous prefix of q's broadcasts p
	// has delivered; ooo[p][q] = delivered broadcast ordinals beyond it.
	prefix           map[model.ProcID]map[model.ProcID]int
	ooo              map[model.ProcID]map[model.ProcID]map[int]bool
	deliveredUnknown map[model.ProcID]map[model.MsgID]bool
}

type causalMsg struct {
	sender  model.ProcID
	seq     int
	vc      map[model.ProcID]int
	unknown []model.MsgID
}

func newCausalChecker() *causalChecker {
	return &causalChecker{
		bseq:             make(map[model.ProcID][]model.MsgID),
		meta:             make(map[model.MsgID]*causalMsg),
		hist:             make(map[model.ProcID]map[model.ProcID]int),
		histUnknown:      make(map[model.ProcID]map[model.MsgID]bool),
		prefix:           make(map[model.ProcID]map[model.ProcID]int),
		ooo:              make(map[model.ProcID]map[model.ProcID]map[int]bool),
		deliveredUnknown: make(map[model.ProcID]map[model.MsgID]bool),
	}
}

func (c *causalChecker) hasDelivered(p model.ProcID, m model.MsgID) bool {
	if c.deliveredUnknown[p][m] {
		return true
	}
	mm := c.meta[m]
	if mm == nil {
		return false
	}
	if mm.seq < c.prefix[p][mm.sender] {
		return true
	}
	return c.ooo[p][mm.sender][mm.seq]
}

func (c *causalChecker) Feed(s model.Step) *Violation {
	if c.v != nil {
		return c.v
	}
	i := c.i
	c.i++
	switch s.Kind {
	case model.KindBroadcastInvoke:
		p := s.Proc
		seq := len(c.bseq[p])
		vc := make(map[model.ProcID]int, len(c.hist[p]))
		for q, l := range c.hist[p] {
			vc[q] = l
		}
		var unk []model.MsgID
		for m := range c.histUnknown[p] {
			unk = append(unk, m)
		}
		c.meta[s.Msg] = &causalMsg{sender: p, seq: seq, vc: vc, unknown: unk}
		c.bseq[p] = append(c.bseq[p], s.Msg)
		if c.hist[p] == nil {
			c.hist[p] = make(map[model.ProcID]int)
		}
		c.hist[p][p] = seq + 1
	case model.KindDeliver:
		p := s.Proc
		mm := c.meta[s.Msg]
		if mm == nil {
			// Never broadcast: no causal past to check (matching the
			// batch predicate); it still joins p's delivered set and
			// causal history.
			if c.deliveredUnknown[p] == nil {
				c.deliveredUnknown[p] = make(map[model.MsgID]bool)
			}
			c.deliveredUnknown[p][s.Msg] = true
			if c.histUnknown[p] == nil {
				c.histUnknown[p] = make(map[model.MsgID]bool)
			}
			c.histUnknown[p][s.Msg] = true
			return nil
		}
		// Every message in m's causal past must already be delivered at p.
		pre := c.prefix[p]
		for q, need := range mm.vc {
			from := pre[q]
			for j := from; j < need; j++ {
				if !c.ooo[p][q][j] {
					c.v = &Violation{Spec: "Causal-Order", Property: "Causal",
						Detail: fmt.Sprintf("%v delivers m%d before its causal predecessor m%d", p, s.Msg, c.bseq[q][j]), StepIdx: i}
					return c.v
				}
			}
		}
		for _, u := range mm.unknown {
			if !c.hasDelivered(p, u) {
				c.v = &Violation{Spec: "Causal-Order", Property: "Causal",
					Detail: fmt.Sprintf("%v delivers m%d before its causal predecessor m%d", p, s.Msg, u), StepIdx: i}
				return c.v
			}
		}
		// Record the delivery in the prefix/out-of-order structure.
		if pre == nil {
			pre = make(map[model.ProcID]int)
			c.prefix[p] = pre
		}
		switch {
		case mm.seq == pre[mm.sender]:
			pre[mm.sender]++
			buf := c.ooo[p][mm.sender]
			for buf[pre[mm.sender]] {
				delete(buf, pre[mm.sender])
				pre[mm.sender]++
			}
		case mm.seq > pre[mm.sender]:
			if c.ooo[p] == nil {
				c.ooo[p] = make(map[model.ProcID]map[int]bool)
			}
			if c.ooo[p][mm.sender] == nil {
				c.ooo[p][mm.sender] = make(map[int]bool)
			}
			c.ooo[p][mm.sender][mm.seq] = true
		}
		// The delivered message and its past join p's causal history.
		h := c.hist[p]
		if h == nil {
			h = make(map[model.ProcID]int)
			c.hist[p] = h
		}
		for q, l := range mm.vc {
			if l > h[q] {
				h[q] = l
			}
		}
		if mm.seq+1 > h[mm.sender] {
			h[mm.sender] = mm.seq + 1
		}
		if len(mm.unknown) > 0 {
			if c.histUnknown[p] == nil {
				c.histUnknown[p] = make(map[model.MsgID]bool)
			}
			for _, u := range mm.unknown {
				c.histUnknown[p][u] = true
			}
		}
	}
	return nil
}

func (c *causalChecker) Finish(bool) *Violation { return c.v }

// orderTracker maintains the per-process order key of each first delivery
// and, per process pair, the list of messages both have delivered. When a
// message becomes common to a pair, one linear scan over the pair's
// previously-common messages finds every newly-created opposite-order
// conflict — the online replacement for the batch all-pairs scan.
type orderTracker struct {
	n      int
	pos    []map[model.MsgID]int
	common map[pairPQ][]model.MsgID
}

type pairPQ struct{ p, q model.ProcID }

func newOrderTracker(n int) *orderTracker {
	t := &orderTracker{n: n, pos: make([]map[model.MsgID]int, n+1), common: make(map[pairPQ][]model.MsgID)}
	for p := 1; p <= n; p++ {
		t.pos[p] = make(map[model.MsgID]int)
	}
	return t
}

// observe registers the first delivery of m by p with the given order key
// and returns the conflicts it creates. Keys are compared strictly, so
// equal keys (messages in the same delivered set, SCD mode) conflict with
// nothing — matching the batch predicates.
func (t *orderTracker) observe(p model.ProcID, m model.MsgID, key int) []conflict {
	t.pos[p][m] = key
	var out []conflict
	for qn := 1; qn <= t.n; qn++ {
		q := model.ProcID(qn)
		if q == p {
			continue
		}
		kq, ok := t.pos[q][m]
		if !ok {
			continue
		}
		pk := pairPQ{p, q}
		if q < p {
			pk = pairPQ{q, p}
		}
		for _, prev := range t.common[pk] {
			dp := key - t.pos[p][prev]
			dq := kq - t.pos[q][prev]
			switch {
			case dp > 0 && dq < 0: // prev before m at p, m before prev at q
				out = append(out, conflict{a: prev, b: m, p: p, q: q})
			case dp < 0 && dq > 0:
				out = append(out, conflict{a: m, b: prev, p: p, q: q})
			}
		}
		t.common[pk] = append(t.common[pk], m)
	}
	return out
}

// conflictStream adapts a step stream to orderTracker.observe calls: it
// assigns order keys (delivery positions, or delivered-set ordinals in
// SCD mode), deduplicates to first deliveries, and parks deliveries of
// not-yet-broadcast messages until the broadcast arrives — the batch
// predicates scan broadcast messages only, so conflicts involving a
// message only exist once it is broadcast.
type conflictStream struct {
	n   int
	trk *orderTracker
	// scd selects delivered-set ordinal keys (batchIndex semantics: the
	// ordinal advances on every delivery whose Batch tag is zero or
	// differs from the previous delivery's).
	scd            bool
	dcount         []int
	curBatch       []int64
	ord            []int
	seen           []map[model.MsgID]bool
	known          map[model.MsgID]bool
	pendingUnknown map[model.MsgID]map[model.ProcID]int
}

func newConflictStream(n int, scd bool) *conflictStream {
	f := &conflictStream{
		n:              n,
		trk:            newOrderTracker(n),
		scd:            scd,
		dcount:         make([]int, n+1),
		curBatch:       make([]int64, n+1),
		ord:            make([]int, n+1),
		seen:           make([]map[model.MsgID]bool, n+1),
		known:          make(map[model.MsgID]bool),
		pendingUnknown: make(map[model.MsgID]map[model.ProcID]int),
	}
	for p := 1; p <= n; p++ {
		f.seen[p] = make(map[model.MsgID]bool)
	}
	return f
}

// step consumes one step and returns the new conflicts it creates.
func (f *conflictStream) step(s model.Step) []conflict {
	switch s.Kind {
	case model.KindBroadcastInvoke:
		if f.known[s.Msg] {
			return nil
		}
		f.known[s.Msg] = true
		pu := f.pendingUnknown[s.Msg]
		if pu == nil {
			return nil
		}
		delete(f.pendingUnknown, s.Msg)
		procs := make([]model.ProcID, 0, len(pu))
		for p := range pu {
			procs = append(procs, p)
		}
		sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
		var out []conflict
		for _, p := range procs {
			out = append(out, f.trk.observe(p, s.Msg, pu[p])...)
		}
		return out
	case model.KindDeliver:
		p := s.Proc
		if p < 1 || int(p) > f.n {
			return nil // outside p1..pn: the batch pair scan ignores it
		}
		var key int
		if f.scd {
			if s.Batch == 0 || s.Batch != f.curBatch[p] {
				f.ord[p]++
				f.curBatch[p] = s.Batch
			}
			key = f.ord[p]
		} else {
			key = f.dcount[p]
			f.dcount[p]++
		}
		if f.seen[p][s.Msg] {
			return nil
		}
		f.seen[p][s.Msg] = true
		if !f.known[s.Msg] {
			pu := f.pendingUnknown[s.Msg]
			if pu == nil {
				pu = make(map[model.ProcID]int)
				f.pendingUnknown[s.Msg] = pu
			}
			pu[p] = key
			return nil
		}
		return f.trk.observe(p, s.Msg, key)
	}
	return nil
}

// totalOrderChecker rejects on the first opposite-order conflict.
type totalOrderChecker struct {
	i  int
	v  *Violation
	cs *conflictStream
}

func newTotalOrderChecker(n int) *totalOrderChecker {
	return &totalOrderChecker{cs: newConflictStream(n, false)}
}

func (c *totalOrderChecker) Feed(s model.Step) *Violation {
	if c.v != nil {
		return c.v
	}
	i := c.i
	c.i++
	if cf := c.cs.step(s); len(cf) > 0 {
		x := cf[0]
		c.v = &Violation{Spec: "Total-Order", Property: "Total-Order",
			Detail: fmt.Sprintf("%v delivers m%d before m%d but %v delivers m%d before m%d", x.p, x.a, x.b, x.q, x.b, x.a), StepIdx: i}
	}
	return c.v
}

func (c *totalOrderChecker) Finish(bool) *Violation { return c.v }

// cliqueChecker is the shared streaming core of k-BO and k-SCD: it
// accumulates conflict edges and, on each new edge, searches for a
// (k+1)-clique containing that edge among the endpoints' common
// neighbors, under the shared exploration budget.
type cliqueChecker struct {
	name     string
	property string
	detail   string // wording after the clique list
	k        int
	i        int
	v        *Violation
	cs       *conflictStream
	adj      map[model.MsgID]map[model.MsgID]bool
	budget   int
}

func newCliqueChecker(n, k int, scd bool, name, property, detail string, budget int) *cliqueChecker {
	return &cliqueChecker{
		name:     name,
		property: property,
		detail:   detail,
		k:        k,
		cs:       newConflictStream(n, scd),
		adj:      make(map[model.MsgID]map[model.MsgID]bool),
		budget:   budget,
	}
}

func (c *cliqueChecker) Feed(s model.Step) *Violation {
	if c.v != nil {
		return c.v
	}
	i := c.i
	c.i++
	for _, cf := range c.cs.step(s) {
		if c.adj[cf.a][cf.b] {
			continue
		}
		linkConflict(c.adj, cf.a, cf.b)
		// A (k+1)-clique through the new edge needs a (k-1)-clique among
		// the edge's common neighbors.
		var cands []model.MsgID
		for m := range c.adj[cf.a] {
			if m != cf.b && c.adj[cf.b][m] {
				cands = append(cands, m)
			}
		}
		sort.Slice(cands, func(x, y int) bool { return cands[x] < cands[y] })
		clique, exceeded := findCliqueBudget(cands, c.adj, c.k+1-2, &c.budget)
		if exceeded {
			c.v = cliqueBudgetViolation(c.name, i)
			return c.v
		}
		if clique == nil {
			continue
		}
		full := append([]model.MsgID{cf.a, cf.b}, clique...)
		sort.Slice(full, func(x, y int) bool { return full[x] < full[y] })
		parts := make([]string, len(full))
		for j, m := range full {
			parts[j] = fmt.Sprintf("m%d", m)
		}
		c.v = &Violation{Spec: c.name, Property: c.property,
			Detail: fmt.Sprintf("messages {%s} %s", strings.Join(parts, ","), fmt.Sprintf(c.detail, c.k+1)), StepIdx: i}
		return c.v
	}
	return nil
}

func (c *cliqueChecker) Finish(bool) *Violation { return c.v }

func linkConflict(adj map[model.MsgID]map[model.MsgID]bool, a, b model.MsgID) {
	if adj[a] == nil {
		adj[a] = make(map[model.MsgID]bool)
	}
	if adj[b] == nil {
		adj[b] = make(map[model.MsgID]bool)
	}
	adj[a][b] = true
	adj[b][a] = true
}

// firstKChecker counts distinct first-delivered messages.
type firstKChecker struct {
	name      string
	k, n      int
	i         int
	v         *Violation
	firstSeen []bool
	firsts    map[model.MsgID]bool
}

func newFirstKChecker(n, k int) *firstKChecker {
	return &firstKChecker{
		name:      fmt.Sprintf("First-%d-Order", k),
		k:         k,
		n:         n,
		firstSeen: make([]bool, n+1),
		firsts:    make(map[model.MsgID]bool),
	}
}

func (c *firstKChecker) Feed(s model.Step) *Violation {
	if c.v != nil {
		return c.v
	}
	i := c.i
	c.i++
	if s.Kind != model.KindDeliver || s.Proc < 1 || int(s.Proc) > c.n {
		return nil
	}
	if c.firstSeen[s.Proc] {
		return nil
	}
	c.firstSeen[s.Proc] = true
	c.firsts[s.Msg] = true
	if len(c.firsts) > c.k {
		c.v = &Violation{Spec: c.name, Property: "First-k",
			Detail: fmt.Sprintf("%d distinct messages delivered first, at most %d allowed", len(c.firsts), c.k), StepIdx: i}
	}
	return c.v
}

func (c *firstKChecker) Finish(bool) *Violation { return c.v }

// ksteppedChecker tracks, per broadcast ordinal a, the size of the group
// S_a and the set of S_a messages delivered first-within-S_a by some
// process. Both counts only grow, so the latched verdict equals the batch
// verdict on every trace where broadcasts precede deliveries.
type ksteppedChecker struct {
	name        string
	k, n        int
	i           int
	v           *Violation
	bcount      []int
	groupOf     map[model.MsgID]int
	groupSize   map[int]int
	firstSa     []map[int]bool
	groupFirsts map[int]map[model.MsgID]bool
}

func newKSteppedChecker(n, k int) *ksteppedChecker {
	c := &ksteppedChecker{
		name:        fmt.Sprintf("%d-Stepped-Order", k),
		k:           k,
		n:           n,
		bcount:      make([]int, n+1),
		groupOf:     make(map[model.MsgID]int),
		groupSize:   make(map[int]int),
		firstSa:     make([]map[int]bool, n+1),
		groupFirsts: make(map[int]map[model.MsgID]bool),
	}
	for p := 1; p <= n; p++ {
		c.firstSa[p] = make(map[int]bool)
	}
	return c
}

func (c *ksteppedChecker) check(a, i int) *Violation {
	if c.groupSize[a] <= c.k || len(c.groupFirsts[a]) <= c.k {
		return nil
	}
	c.v = &Violation{Spec: c.name, Property: "k-Stepped",
		Detail: fmt.Sprintf("step %d: %d distinct messages of S_%d delivered first within S_%d, at most %d allowed", a+1, len(c.groupFirsts[a]), a+1, a+1, c.k), StepIdx: i}
	return c.v
}

func (c *ksteppedChecker) Feed(s model.Step) *Violation {
	if c.v != nil {
		return c.v
	}
	i := c.i
	c.i++
	switch s.Kind {
	case model.KindBroadcastInvoke:
		if s.Proc < 1 || int(s.Proc) > c.n {
			return nil
		}
		if _, dup := c.groupOf[s.Msg]; dup {
			return nil
		}
		a := c.bcount[s.Proc]
		c.bcount[s.Proc]++
		c.groupOf[s.Msg] = a
		c.groupSize[a]++
		return c.check(a, i)
	case model.KindDeliver:
		if s.Proc < 1 || int(s.Proc) > c.n {
			return nil
		}
		a, ok := c.groupOf[s.Msg]
		if !ok {
			return nil
		}
		if c.firstSa[s.Proc][a] {
			return nil
		}
		c.firstSa[s.Proc][a] = true
		if c.groupFirsts[a] == nil {
			c.groupFirsts[a] = make(map[model.MsgID]bool)
		}
		c.groupFirsts[a][s.Msg] = true
		return c.check(a, i)
	}
	return nil
}

func (c *ksteppedChecker) Finish(bool) *Violation { return c.v }

// saTaggedChecker counts, per k-SA identifier, the distinct SA-tagged
// messages delivered first-among-tagged by some process.
type saTaggedChecker struct {
	name    string
	k, n    int
	i       int
	v       *Violation
	bseen   map[model.MsgID]bool
	tagged  map[model.MsgID]model.KSAID
	seenObj []map[model.KSAID]bool
	firsts  map[model.KSAID]map[model.MsgID]bool
}

func newSATaggedChecker(n, k int) *saTaggedChecker {
	c := &saTaggedChecker{
		name:    fmt.Sprintf("SA-Tagged-%d-Order", k),
		k:       k,
		n:       n,
		bseen:   make(map[model.MsgID]bool),
		tagged:  make(map[model.MsgID]model.KSAID),
		seenObj: make([]map[model.KSAID]bool, n+1),
		firsts:  make(map[model.KSAID]map[model.MsgID]bool),
	}
	for p := 1; p <= n; p++ {
		c.seenObj[p] = make(map[model.KSAID]bool)
	}
	return c
}

func (c *saTaggedChecker) Feed(s model.Step) *Violation {
	if c.v != nil {
		return c.v
	}
	i := c.i
	c.i++
	switch s.Kind {
	case model.KindBroadcastInvoke:
		if c.bseen[s.Msg] {
			return nil
		}
		c.bseen[s.Msg] = true
		if obj, _, ok := ParseSATag(s.Payload); ok {
			c.tagged[s.Msg] = obj
		}
	case model.KindDeliver:
		if s.Proc < 1 || int(s.Proc) > c.n {
			return nil
		}
		obj, ok := c.tagged[s.Msg]
		if !ok {
			return nil
		}
		if c.seenObj[s.Proc][obj] {
			return nil
		}
		c.seenObj[s.Proc][obj] = true
		if c.firsts[obj] == nil {
			c.firsts[obj] = make(map[model.MsgID]bool)
		}
		c.firsts[obj][s.Msg] = true
		if len(c.firsts[obj]) > c.k {
			c.v = &Violation{Spec: c.name, Property: "SA-Tagged-First-k",
				Detail: fmt.Sprintf("%v: %d distinct SA-tagged messages delivered first, at most %d allowed", obj, len(c.firsts[obj]), c.k), StepIdx: i}
		}
	}
	return c.v
}

func (c *saTaggedChecker) Finish(bool) *Violation { return c.v }

// mutualChecker detects mutual invisibility online: when a process r
// delivers a message x broadcast by w ≠ r, the delivery can only complete
// the forbidden four-delivery pattern if r already delivered one of its
// own messages o while w delivered its own x strictly before o — a scan
// over r's own-delivered list against w's positions. A message delivered
// before its broadcast is seen carries no attribution yet; the broadcast,
// when it arrives, re-runs the same scan retroactively (delivs remembers
// who first-delivered each message), so late broadcasts cannot hide a
// completed pattern.
type mutualChecker struct {
	i       int
	v       *Violation
	bcaster map[model.MsgID]model.ProcID
	dcount  map[model.ProcID]int
	pos     map[model.ProcID]map[model.MsgID]int
	own     map[model.ProcID][]model.MsgID
	delivs  map[model.MsgID][]model.ProcID
}

func newMutualChecker() *mutualChecker {
	return &mutualChecker{
		bcaster: make(map[model.MsgID]model.ProcID),
		dcount:  make(map[model.ProcID]int),
		pos:     make(map[model.ProcID]map[model.MsgID]int),
		own:     make(map[model.ProcID][]model.MsgID),
		delivs:  make(map[model.MsgID][]model.ProcID),
	}
}

func (c *mutualChecker) Feed(s model.Step) *Violation {
	if c.v != nil {
		return c.v
	}
	i := c.i
	c.i++
	switch s.Kind {
	case model.KindBroadcastInvoke:
		w, x := s.Proc, s.Msg
		if _, dup := c.bcaster[x]; dup {
			break
		}
		c.bcaster[x] = w
		wx, ok := c.pos[w][x]
		if !ok {
			break // w has not delivered x; no pattern can involve x yet
		}
		// x was delivered before this broadcast attributed it: it is now
		// one of w's own messages, and every earlier foreign delivery of x
		// skipped its pattern scan — repeat it here.
		c.own[w] = append(c.own[w], x)
		for _, r := range c.delivs[x] {
			if r == w {
				continue
			}
			rx := c.pos[r][x]
			for _, o := range c.own[r] {
				ro := c.pos[r][o]
				if wo, ok2 := c.pos[w][o]; ok2 && ro < rx && wx < wo {
					c.v = &Violation{Spec: "Mutual-Order", Property: "Mutual",
						Detail: fmt.Sprintf("%v delivers its own m%d before m%d, and %v delivers its own m%d before m%d: the two broadcasts are mutually invisible", r, o, x, w, x, o), StepIdx: i}
					return c.v
				}
			}
		}
	case model.KindDeliver:
		r, x := s.Proc, s.Msg
		key := c.dcount[r]
		c.dcount[r]++
		pm := c.pos[r]
		if pm == nil {
			pm = make(map[model.MsgID]int)
			c.pos[r] = pm
		}
		if _, dup := pm[x]; dup {
			return nil
		}
		w, known := c.bcaster[x]
		if known && w != r {
			wpos := c.pos[w]
			if wx, ok := wpos[x]; ok { // w delivered its own x already
				for _, o := range c.own[r] {
					if wo, ok2 := wpos[o]; ok2 && wx < wo {
						c.v = &Violation{Spec: "Mutual-Order", Property: "Mutual",
							Detail: fmt.Sprintf("%v delivers its own m%d before m%d, and %v delivers its own m%d before m%d: the two broadcasts are mutually invisible", r, o, x, w, x, o), StepIdx: i}
						return c.v
					}
				}
			}
		}
		pm[x] = key
		c.delivs[x] = append(c.delivs[x], r)
		if known && w == r {
			c.own[r] = append(c.own[r], x)
		}
	}
	return nil
}

func (c *mutualChecker) Finish(bool) *Violation { return c.v }

// uniformChecker evaluates BC-Uniform-Termination at Finish from the
// retained delivered-by tables.
type uniformChecker struct {
	crashTracker
	i           int
	v           *Violation
	bcast       map[model.MsgID]bool
	deliveredBy map[model.MsgID]model.ProcID
	delivered   map[model.ProcID]map[model.MsgID]bool
}

func newUniformChecker(n int) *uniformChecker {
	return &uniformChecker{
		crashTracker: newCrashTracker(n),
		bcast:        make(map[model.MsgID]bool),
		deliveredBy:  make(map[model.MsgID]model.ProcID),
		delivered:    make(map[model.ProcID]map[model.MsgID]bool),
	}
}

func (c *uniformChecker) Feed(s model.Step) *Violation {
	if c.v != nil {
		return c.v
	}
	c.i++
	c.observe(s)
	switch s.Kind {
	case model.KindBroadcastInvoke:
		c.bcast[s.Msg] = true
	case model.KindDeliver:
		if s.Proc >= 1 && int(s.Proc) <= c.n {
			if _, ok := c.deliveredBy[s.Msg]; !ok {
				c.deliveredBy[s.Msg] = s.Proc
			}
			dm := c.delivered[s.Proc]
			if dm == nil {
				dm = make(map[model.MsgID]bool)
				c.delivered[s.Proc] = dm
			}
			dm[s.Msg] = true
		}
	}
	return nil
}

func (c *uniformChecker) Finish(complete bool) *Violation {
	if c.v != nil || !complete {
		return c.v
	}
	for m := range c.bcast {
		by, ok := c.deliveredBy[m]
		if !ok {
			continue
		}
		for pn := 1; pn <= c.n; pn++ {
			pid := model.ProcID(pn)
			if !c.correct(pid) {
				continue
			}
			if !c.delivered[pid][m] {
				c.v = &Violation{Spec: "Uniform-Reliable-Broadcast", Property: "BC-Uniform-Termination",
					Detail: fmt.Sprintf("m%d was B-delivered by %v but correct %v never B-delivers it", m, by, pid), StepIdx: -1}
				return c.v
			}
		}
	}
	return nil
}
