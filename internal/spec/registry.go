package spec

import (
	"fmt"
	"sort"
)

// The registry names every specification this package defines, for the
// CLIs (cmd/checker -spec) and for table-driven tests that want to sweep
// the full spec inventory (prefix monotonicity, online-vs-batch
// differentials) without maintaining a parallel list.

// Entry is one named specification constructor.
type Entry struct {
	// Key is the CLI name.
	Key string
	// Parameterized reports that New uses its k argument (ignored
	// otherwise).
	Parameterized bool
	// New constructs the spec.
	New func(k int) Spec
	// Composite reports that the spec is an All() composition (its batch
	// check is component-ordered, so online and batch forms may blame a
	// different component on multiply-violated traces).
	Composite bool
	// Liveness reports that the spec includes clauses evaluated only on
	// complete traces (so it is not a pure prefix-monotone safety spec).
	Liveness bool
	// ExactStep reports that the spec's online checker latches at exactly
	// the step index the batch predicate reports; other specs report -1
	// or scan-order witnesses. Used by the differential tests.
	ExactStep bool
}

// Registry returns every named specification, sorted by key.
func Registry() []Entry {
	entries := []Entry{
		{Key: "well-formed", New: func(int) Spec { return WellFormed() }, ExactStep: true},
		{Key: "channels", New: func(int) Spec { return Channels() }, Liveness: true, ExactStep: true},
		{Key: "basic", New: func(int) Spec { return SendToAll() }, Liveness: true, ExactStep: true},
		{Key: "send-to-all", New: func(int) Spec { return SendToAll() }, Liveness: true, ExactStep: true},
		{Key: "ksa", Parameterized: true, New: func(k int) Spec { return KSA(k) }, Liveness: true, ExactStep: true},

		// Pure ordering predicates (leaf safety specs).
		{Key: "fifo-order", New: func(int) Spec { return FIFOOrder() }, ExactStep: true},
		{Key: "causal-order", New: func(int) Spec { return CausalOrder() }, ExactStep: true},
		{Key: "total-order-only", New: func(int) Spec { return TotalOrder() }},
		{Key: "kbo-order", Parameterized: true, New: func(k int) Spec { return KBOOrder(k) }},
		{Key: "first-k-order", Parameterized: true, New: func(k int) Spec { return FirstKOrder(k) }},
		{Key: "k-stepped-order", Parameterized: true, New: func(k int) Spec { return KSteppedOrder(k) }},
		{Key: "sa-tagged-order", Parameterized: true, New: func(k int) Spec { return SATaggedOrder(k) }},
		{Key: "mutual-order", New: func(int) Spec { return MutualOrder() }},
		{Key: "scd-order", New: func(int) Spec { return SCDOrder() }},
		{Key: "kscd-order", Parameterized: true, New: func(k int) Spec { return KSCDOrder(k) }},

		// Composites: ordering plus the universal broadcast properties.
		{Key: "fifo", New: func(int) Spec { return FIFOBroadcast() }, Composite: true, Liveness: true},
		{Key: "causal", New: func(int) Spec { return CausalBroadcast() }, Composite: true, Liveness: true},
		{Key: "total-order", New: func(int) Spec { return TotalOrderBroadcast() }, Composite: true, Liveness: true},
		{Key: "kbo", Parameterized: true, New: func(k int) Spec { return KBOBroadcast(k) }, Composite: true, Liveness: true},
		{Key: "k-stepped", Parameterized: true, New: func(k int) Spec { return KSteppedBroadcast(k) }, Composite: true, Liveness: true},
		{Key: "first-k", Parameterized: true, New: func(k int) Spec { return FirstKBroadcast(k) }, Composite: true, Liveness: true},
		{Key: "sa-tagged", Parameterized: true, New: func(k int) Spec { return SATaggedBroadcast(k) }, Composite: true, Liveness: true},
		{Key: "mutual", New: func(int) Spec { return MutualBroadcast() }, Composite: true, Liveness: true},
		{Key: "uniform-reliable", New: func(int) Spec { return UniformReliable() }, Composite: true, Liveness: true},
		{Key: "scd", New: func(int) Spec { return SCDBroadcast() }, Composite: true, Liveness: true},
		{Key: "kscd", Parameterized: true, New: func(k int) Spec { return KSCDBroadcast(k) }, Composite: true, Liveness: true},
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	return entries
}

// ByName resolves a registry key to a constructed spec; k is used by
// parameterized entries.
func ByName(name string, k int) (Spec, error) {
	for _, e := range Registry() {
		if e.Key == name {
			if e.Parameterized && k < 1 {
				return nil, fmt.Errorf("spec %q requires k >= 1, got %d", name, k)
			}
			return e.New(k), nil
		}
	}
	return nil, fmt.Errorf("unknown spec %q", name)
}

// Names returns every registry key, sorted.
func Names() []string {
	es := Registry()
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.Key
	}
	return out
}
