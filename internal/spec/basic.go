package spec

import (
	"fmt"

	"nobroadcast/internal/model"
	"nobroadcast/internal/trace"
)

// BasicBroadcast checks the four properties every broadcast abstraction
// must verify (Section 3.1): BC-Validity and BC-No-Duplication (safety),
// and BC-Local-Termination and BC-Global-CS-Termination (liveness, checked
// on complete traces only). In the model CAMP_n[∅] this specification alone
// is the Send-To-All broadcast.
func BasicBroadcast() Spec {
	return streamSpec{name: "Basic-Broadcast", batch: checkBasicBroadcast,
		mk: func(n int) Checker { return newBasicChecker(n) }}
}

// SendToAll is the basic broadcast under its usual name: it admits exactly
// the executions satisfying the four universal properties.
func SendToAll() Spec {
	return streamSpec{name: "Send-To-All", batch: checkBasicBroadcast,
		mk: func(n int) Checker { return newBasicChecker(n) }}
}

func checkBasicBroadcast(t *trace.Trace) *Violation {
	x := t.X

	// BC-Validity: if p B-delivers m from q, then q previously B-broadcast
	// m. "Previously" is positional: the invocation appears earlier.
	broadcast := make(map[model.MsgID]model.ProcID)
	payloadAt := make(map[model.MsgID]model.Payload)
	delivered := make(map[model.ProcID]map[model.MsgID]bool)
	for i, s := range x.Steps {
		switch s.Kind {
		case model.KindBroadcastInvoke:
			if from, dup := broadcast[s.Msg]; dup {
				return &Violation{Spec: "Basic-Broadcast", Property: "BC-Validity",
					Detail: fmt.Sprintf("message m%d broadcast twice (by %v and %v); broadcast messages are unique", s.Msg, from, s.Proc), StepIdx: i}
			}
			broadcast[s.Msg] = s.Proc
			payloadAt[s.Msg] = s.Payload
		case model.KindDeliver:
			from, ok := broadcast[s.Msg]
			if !ok {
				return &Violation{Spec: "Basic-Broadcast", Property: "BC-Validity",
					Detail: fmt.Sprintf("%v B-delivers m%d from %v, never broadcast", s.Proc, s.Msg, s.Peer), StepIdx: i}
			}
			if from != s.Peer {
				return &Violation{Spec: "Basic-Broadcast", Property: "BC-Validity",
					Detail: fmt.Sprintf("%v B-delivers m%d from %v, but m%d was broadcast by %v", s.Proc, s.Msg, s.Peer, s.Msg, from), StepIdx: i}
			}
			if got, want := s.Payload, payloadAt[s.Msg]; got != want {
				return &Violation{Spec: "Basic-Broadcast", Property: "BC-Validity",
					Detail: fmt.Sprintf("%v B-delivers m%d with content %q, broadcast with %q", s.Proc, s.Msg, got, want), StepIdx: i}
			}
			// BC-No-Duplication: a process does not B-deliver the same
			// message more than once.
			dm := delivered[s.Proc]
			if dm == nil {
				dm = make(map[model.MsgID]bool)
				delivered[s.Proc] = dm
			}
			if dm[s.Msg] {
				return &Violation{Spec: "Basic-Broadcast", Property: "BC-No-Duplication",
					Detail: fmt.Sprintf("%v B-delivers m%d twice", s.Proc, s.Msg), StepIdx: i}
			}
			dm[s.Msg] = true
		}
	}

	if !t.Complete {
		return nil
	}
	correct := x.CorrectSet()
	ix := t.Index()

	// BC-Local-Termination: a correct process's broadcast invocation
	// eventually returns.
	for m, info := range ix.Broadcasts {
		if correct[info.From] && info.Returned < 0 {
			return &Violation{Spec: "Basic-Broadcast", Property: "BC-Local-Termination",
				Detail: fmt.Sprintf("correct %v never returns from B.broadcast(m%d)", info.From, m), StepIdx: info.StepIdx}
		}
	}

	// BC-Global-CS-Termination: a message B-broadcast by a correct process
	// is eventually B-delivered by all correct processes.
	for m, info := range ix.Broadcasts {
		if !correct[info.From] {
			continue
		}
		for p := 1; p <= x.N; p++ {
			pid := model.ProcID(p)
			if !correct[pid] {
				continue
			}
			if _, ok := ix.DeliveryPos[pid][m]; !ok {
				return &Violation{Spec: "Basic-Broadcast", Property: "BC-Global-CS-Termination",
					Detail: fmt.Sprintf("m%d broadcast by correct %v never B-delivered by correct %v", m, info.From, pid), StepIdx: -1}
			}
		}
	}
	return nil
}

// KSA checks the three defining properties of the k-set-agreement problem
// (Section 4.1) on every k-SA object used in the trace: k-SA-Validity,
// k-SA-Agreement (at most k distinct decided values per object), and
// k-SA-Termination (liveness; complete traces only). It also enforces the
// one-shot discipline: one propose per process per object.
func KSA(k int) Spec {
	return streamSpec{
		name:  fmt.Sprintf("%d-SA", k),
		batch: func(t *trace.Trace) *Violation { return checkKSA(t, k) },
		mk:    func(n int) Checker { return newKSAChecker(n, k) },
	}
}

func checkKSA(t *trace.Trace, k int) *Violation {
	name := fmt.Sprintf("%d-SA", k)
	x := t.X

	proposed := make(map[model.KSAID]map[model.ProcID]model.Value)
	valuesProposed := make(map[model.KSAID]map[model.Value]bool)
	decided := make(map[model.KSAID]map[model.ProcID]model.Value)
	distinct := make(map[model.KSAID]map[model.Value]bool)
	for i, s := range x.Steps {
		switch s.Kind {
		case model.KindPropose:
			pm := proposed[s.Obj]
			if pm == nil {
				pm = make(map[model.ProcID]model.Value)
				proposed[s.Obj] = pm
				valuesProposed[s.Obj] = make(map[model.Value]bool)
			}
			if _, dup := pm[s.Proc]; dup {
				return &Violation{Spec: name, Property: "One-Shot",
					Detail: fmt.Sprintf("%v proposes twice on %v", s.Proc, s.Obj), StepIdx: i}
			}
			pm[s.Proc] = s.Val
			valuesProposed[s.Obj][s.Val] = true
		case model.KindDecide:
			if _, ok := proposed[s.Obj][s.Proc]; !ok {
				return &Violation{Spec: name, Property: "k-SA-Validity",
					Detail: fmt.Sprintf("%v decides on %v without proposing", s.Proc, s.Obj), StepIdx: i}
			}
			if !valuesProposed[s.Obj][s.Val] {
				return &Violation{Spec: name, Property: "k-SA-Validity",
					Detail: fmt.Sprintf("%v decides %q on %v, never proposed", s.Proc, s.Val, s.Obj), StepIdx: i}
			}
			dm := decided[s.Obj]
			if dm == nil {
				dm = make(map[model.ProcID]model.Value)
				decided[s.Obj] = dm
				distinct[s.Obj] = make(map[model.Value]bool)
			}
			if _, dup := dm[s.Proc]; dup {
				return &Violation{Spec: name, Property: "One-Shot",
					Detail: fmt.Sprintf("%v decides twice on %v", s.Proc, s.Obj), StepIdx: i}
			}
			dm[s.Proc] = s.Val
			distinct[s.Obj][s.Val] = true
			if len(distinct[s.Obj]) > k {
				return &Violation{Spec: name, Property: "k-SA-Agreement",
					Detail: fmt.Sprintf("%d distinct values decided on %v, at most %d allowed", len(distinct[s.Obj]), s.Obj, k), StepIdx: i}
			}
		}
	}

	if !t.Complete {
		return nil
	}
	correct := x.CorrectSet()
	for obj, pm := range proposed {
		for p := range pm {
			if !correct[p] {
				continue
			}
			if _, ok := decided[obj][p]; !ok {
				return &Violation{Spec: name, Property: "k-SA-Termination",
					Detail: fmt.Sprintf("correct %v proposed on %v but never decides", p, obj), StepIdx: -1}
			}
		}
	}
	return nil
}
