package spec

import (
	"testing"

	"nobroadcast/internal/model"
	"nobroadcast/internal/trace"
)

func send(p, q model.ProcID, m model.MsgID, pl model.Payload) model.Step {
	return model.Step{Proc: p, Kind: model.KindSend, Peer: q, Msg: m, Payload: pl}
}

func recv(p, q model.ProcID, m model.MsgID, pl model.Payload) model.Step {
	return model.Step{Proc: p, Kind: model.KindReceive, Peer: q, Msg: m, Payload: pl}
}

func TestChannelsAccepts(t *testing.T) {
	x := model.NewExecution(2)
	x.Append(
		send(1, 2, 1, "a"),
		recv(2, 1, 1, "a"),
		send(2, 2, 2, "self"),
		recv(2, 2, 2, "self"),
	)
	wantOK(t, Channels(), &trace.Trace{X: x, Complete: true})
}

func TestChannelsSRValidityUnsent(t *testing.T) {
	x := model.NewExecution(2)
	x.Append(recv(2, 1, 1, "a"))
	wantViolation(t, Channels(), &trace.Trace{X: x}, "SR-Validity")
}

func TestChannelsSRValidityWrongSender(t *testing.T) {
	x := model.NewExecution(3)
	x.Append(
		send(1, 2, 1, "a"),
		recv(2, 3, 1, "a"), // claims to come from p3
	)
	wantViolation(t, Channels(), &trace.Trace{X: x}, "SR-Validity")
}

func TestChannelsSRValidityWrongReceiver(t *testing.T) {
	x := model.NewExecution(3)
	x.Append(
		send(1, 2, 1, "a"),
		recv(3, 1, 1, "a"), // delivered to p3, was sent to p2
	)
	wantViolation(t, Channels(), &trace.Trace{X: x}, "SR-Validity")
}

func TestChannelsSRValidityDoubleSend(t *testing.T) {
	x := model.NewExecution(2)
	x.Append(send(1, 2, 1, "a"), send(1, 2, 1, "a"))
	wantViolation(t, Channels(), &trace.Trace{X: x}, "SR-Validity")
}

func TestChannelsSRNoDuplication(t *testing.T) {
	x := model.NewExecution(2)
	x.Append(
		send(1, 2, 1, "a"),
		recv(2, 1, 1, "a"),
		recv(2, 1, 1, "a"),
	)
	wantViolation(t, Channels(), &trace.Trace{X: x}, "SR-No-Duplication")
}

func TestChannelsSRTerminationOnComplete(t *testing.T) {
	x := model.NewExecution(2)
	x.Append(send(1, 2, 1, "a"))
	// Incomplete trace: liveness not evaluated.
	wantOK(t, Channels(), &trace.Trace{X: x, Complete: false})
	// Complete trace with the receiver correct: violation.
	wantViolation(t, Channels(), &trace.Trace{X: x, Complete: true}, "SR-Termination")
}

func TestChannelsSRTerminationFaultyReceiverExempt(t *testing.T) {
	x := model.NewExecution(2)
	x.Append(
		send(1, 2, 1, "a"),
		model.Step{Proc: 2, Kind: model.KindCrash},
	)
	// p2 crashed: its pending message need not be received.
	wantOK(t, Channels(), &trace.Trace{X: x, Complete: true})
}
