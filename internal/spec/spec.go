// Package spec provides machine-checkable specifications: predicates over
// recorded executions. It covers the three property families of the paper —
// the send/receive channel properties (Section 2), the broadcast
// abstraction properties (Section 3.1) and ordering predicates (Section
// 3.2), and the k-set-agreement properties (Section 4.1) — together with
// testers for the two symmetry properties the paper introduces:
// compositionality (Definition 2) and content-neutrality (Definition 3).
//
// # Safety versus liveness
//
// Safety specifications are prefix-monotone violation detectors: once a
// finite trace violates them, every extension does too, so checking them on
// an execution prefix is sound. Liveness specifications (the termination
// properties) are only evaluated on traces marked Complete, i.e. runs that
// terminated with every correct process quiescent and no message in flight;
// on incomplete traces they vacuously pass.
package spec

import (
	"fmt"

	"nobroadcast/internal/model"
	"nobroadcast/internal/trace"
)

// Violation describes why a trace is not admitted by a specification.
// A nil *Violation means the trace is admissible.
type Violation struct {
	// Spec is the name of the violated specification.
	Spec string
	// Property is the specific property within the spec, using the
	// paper's names (e.g. "BC-Validity", "k-SA-Agreement").
	Property string
	// Detail is a human-readable account of the counterexample.
	Detail string
	// StepIdx is the index of the violating step when identifiable, else -1.
	StepIdx int
}

// String renders the violation for logs and test failures.
func (v *Violation) String() string {
	if v == nil {
		return "admissible"
	}
	where := ""
	if v.StepIdx >= 0 {
		where = fmt.Sprintf(" at step %d", v.StepIdx)
	}
	return fmt.Sprintf("%s: %s violated%s: %s", v.Spec, v.Property, where, v.Detail)
}

// Spec is a specification: a predicate on executions. Check returns nil if
// the trace is admitted, else a description of the violation.
type Spec interface {
	Name() string
	Check(t *trace.Trace) *Violation
}

// Func adapts a function to the Spec interface.
type Func struct {
	SpecName string
	CheckFn  func(t *trace.Trace) *Violation
}

var _ Spec = Func{}

// Name implements Spec.
func (f Func) Name() string { return f.SpecName }

// Check implements Spec.
func (f Func) Check(t *trace.Trace) *Violation { return f.CheckFn(t) }

// All combines specifications; the composite admits a trace iff every
// component does. Check returns the first violation found, in declaration
// order; the composite's online checker (see allSpec) reports the first
// violation in time order instead — the two can differ in blame, never in
// admissibility.
func All(name string, specs ...Spec) Spec {
	return allSpec{name: name, specs: specs}
}

// WellFormed checks the machine-checkable parts of Definition 1
// (well-formed executions): only processes p_1..p_n take steps, no process
// takes a step after crashing, and broadcast invocations and responses
// alternate per process (an operation is only invoked after the previous
// invocation returned). The third condition of Definition 1 — conformance
// of the steps to the algorithm — is enforced by construction by the
// deterministic runtime and is not re-derivable from a trace alone.
func WellFormed() Spec {
	return streamSpec{name: "Well-Formed", batch: checkWellFormed,
		mk: func(n int) Checker { return newWellFormedChecker(n) }}
}

func checkWellFormed(t *trace.Trace) *Violation {
	x := t.X
	crashed := make(map[model.ProcID]bool)
	inFlight := make(map[model.ProcID]model.MsgID) // proc -> msg of open broadcast invocation
	open := make(map[model.ProcID]bool)
	for i, s := range x.Steps {
		if s.Proc < 1 || int(s.Proc) > x.N {
			return &Violation{Spec: "Well-Formed", Property: "Participants",
				Detail: fmt.Sprintf("step by %v outside p1..p%d", s.Proc, x.N), StepIdx: i}
		}
		if crashed[s.Proc] {
			return &Violation{Spec: "Well-Formed", Property: "Crash-Finality",
				Detail: fmt.Sprintf("%v takes a step after crashing", s.Proc), StepIdx: i}
		}
		switch s.Kind {
		case model.KindCrash:
			crashed[s.Proc] = true
		case model.KindBroadcastInvoke:
			if open[s.Proc] {
				return &Violation{Spec: "Well-Formed", Property: "Invocation-Alternation",
					Detail: fmt.Sprintf("%v invokes B.broadcast(m%d) before returning from B.broadcast(m%d)", s.Proc, s.Msg, inFlight[s.Proc]), StepIdx: i}
			}
			open[s.Proc] = true
			inFlight[s.Proc] = s.Msg
		case model.KindBroadcastReturn:
			if !open[s.Proc] {
				return &Violation{Spec: "Well-Formed", Property: "Invocation-Alternation",
					Detail: fmt.Sprintf("%v returns from B.broadcast(m%d) without an open invocation", s.Proc, s.Msg), StepIdx: i}
			}
			if inFlight[s.Proc] != s.Msg {
				return &Violation{Spec: "Well-Formed", Property: "Invocation-Alternation",
					Detail: fmt.Sprintf("%v returns from B.broadcast(m%d), but the open invocation is m%d", s.Proc, s.Msg, inFlight[s.Proc]), StepIdx: i}
			}
			open[s.Proc] = false
		}
	}
	return nil
}
