package spec

import (
	"strings"
	"testing"

	"nobroadcast/internal/model"
	"nobroadcast/internal/trace"
)

// tb is a small builder for broadcast-level test traces.
type tb struct {
	x      *model.Execution
	nextID model.MsgID
}

func newTB(n int) *tb {
	return &tb{x: model.NewExecution(n), nextID: 1}
}

// bcast appends a broadcast invocation (and return) of a fresh message by
// p, returning the message id.
func (b *tb) bcast(p model.ProcID, payload model.Payload) model.MsgID {
	id := b.nextID
	b.nextID++
	b.x.Append(
		model.Step{Proc: p, Kind: model.KindBroadcastInvoke, Msg: id, Payload: payload},
		model.Step{Proc: p, Kind: model.KindBroadcastReturn, Msg: id},
	)
	return id
}

// deliver appends a delivery of m at p; the origin and payload are looked
// up from the broadcast invocation.
func (b *tb) deliver(p model.ProcID, m model.MsgID) {
	b.x.Append(model.Step{Proc: p, Kind: model.KindDeliver, Peer: b.x.Broadcaster(m), Msg: m, Payload: b.x.PayloadOf(m)})
}

func (b *tb) crash(p model.ProcID) {
	b.x.Append(model.Step{Proc: p, Kind: model.KindCrash})
}

func (b *tb) trace(complete bool) *trace.Trace {
	return &trace.Trace{X: b.x, Complete: complete}
}

func wantOK(t *testing.T, s Spec, tr *trace.Trace) {
	t.Helper()
	if v := s.Check(tr); v != nil {
		t.Errorf("%s rejected admissible trace: %s", s.Name(), v)
	}
}

func wantViolation(t *testing.T, s Spec, tr *trace.Trace, property string) *Violation {
	t.Helper()
	v := s.Check(tr)
	if v == nil {
		t.Fatalf("%s admitted a violating trace (expected %s violation)", s.Name(), property)
	}
	if v.Property != property {
		t.Fatalf("%s reported %s, expected %s (%s)", s.Name(), v.Property, property, v)
	}
	return v
}

func TestViolationString(t *testing.T) {
	var v *Violation
	if v.String() != "admissible" {
		t.Errorf("nil violation String = %q", v.String())
	}
	v = &Violation{Spec: "S", Property: "P", Detail: "d", StepIdx: 3}
	if got := v.String(); !strings.Contains(got, "S") || !strings.Contains(got, "P") || !strings.Contains(got, "step 3") {
		t.Errorf("String = %q", got)
	}
	v.StepIdx = -1
	if got := v.String(); strings.Contains(got, "step") {
		t.Errorf("String with StepIdx=-1 mentions step: %q", got)
	}
}

func TestAllCombinesInOrder(t *testing.T) {
	hit := []string{}
	mk := func(name string, v *Violation) Spec {
		return Func{SpecName: name, CheckFn: func(*trace.Trace) *Violation {
			hit = append(hit, name)
			return v
		}}
	}
	s := All("combo", mk("a", nil), mk("b", &Violation{Spec: "b", Property: "X"}), mk("c", nil))
	if s.Name() != "combo" {
		t.Errorf("Name = %q", s.Name())
	}
	v := s.Check(newTB(1).trace(false))
	if v == nil || v.Spec != "b" {
		t.Errorf("Check = %v", v)
	}
	if len(hit) != 2 {
		t.Errorf("short-circuit failed, hit %v", hit)
	}
}

func TestWellFormedAccepts(t *testing.T) {
	b := newTB(2)
	m := b.bcast(1, "a")
	b.deliver(1, m)
	b.deliver(2, m)
	b.crash(2)
	wantOK(t, WellFormed(), b.trace(true))
}

func TestWellFormedRejectsOutsideProcess(t *testing.T) {
	b := newTB(2)
	b.x.Append(model.Step{Proc: 3, Kind: model.KindInternal})
	wantViolation(t, WellFormed(), b.trace(false), "Participants")
}

func TestWellFormedRejectsStepsAfterCrash(t *testing.T) {
	b := newTB(2)
	b.crash(1)
	b.x.Append(model.Step{Proc: 1, Kind: model.KindInternal})
	wantViolation(t, WellFormed(), b.trace(false), "Crash-Finality")
}

func TestWellFormedRejectsNestedInvocations(t *testing.T) {
	b := newTB(2)
	b.x.Append(
		model.Step{Proc: 1, Kind: model.KindBroadcastInvoke, Msg: 1, Payload: "a"},
		model.Step{Proc: 1, Kind: model.KindBroadcastInvoke, Msg: 2, Payload: "b"},
	)
	wantViolation(t, WellFormed(), b.trace(false), "Invocation-Alternation")
}

func TestWellFormedRejectsSpuriousReturn(t *testing.T) {
	b := newTB(2)
	b.x.Append(model.Step{Proc: 1, Kind: model.KindBroadcastReturn, Msg: 1})
	wantViolation(t, WellFormed(), b.trace(false), "Invocation-Alternation")
}

func TestWellFormedRejectsMismatchedReturn(t *testing.T) {
	b := newTB(2)
	b.x.Append(
		model.Step{Proc: 1, Kind: model.KindBroadcastInvoke, Msg: 1, Payload: "a"},
		model.Step{Proc: 1, Kind: model.KindBroadcastReturn, Msg: 2},
	)
	wantViolation(t, WellFormed(), b.trace(false), "Invocation-Alternation")
}
