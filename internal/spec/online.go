package spec

import (
	"fmt"

	"nobroadcast/internal/model"
)

// This file holds the online checkers for the per-step specifications
// whose batch loops translate directly: well-formedness, the universal
// broadcast properties, the channel properties, and k-SA. Each checker's
// Feed body is the corresponding batch loop body, so the two forms return
// identical verdicts by construction (asserted by the differential
// tests).

// wellFormedChecker streams checkWellFormed.
type wellFormedChecker struct {
	n        int
	i        int
	v        *Violation
	crashed  map[model.ProcID]bool
	inFlight map[model.ProcID]model.MsgID
	open     map[model.ProcID]bool
}

func newWellFormedChecker(n int) *wellFormedChecker {
	return &wellFormedChecker{
		n:        n,
		crashed:  make(map[model.ProcID]bool),
		inFlight: make(map[model.ProcID]model.MsgID),
		open:     make(map[model.ProcID]bool),
	}
}

func (c *wellFormedChecker) fail(v *Violation) *Violation { c.v = v; return v }

func (c *wellFormedChecker) Feed(s model.Step) *Violation {
	if c.v != nil {
		return c.v
	}
	i := c.i
	c.i++
	if s.Proc < 1 || int(s.Proc) > c.n {
		return c.fail(&Violation{Spec: "Well-Formed", Property: "Participants",
			Detail: fmt.Sprintf("step by %v outside p1..p%d", s.Proc, c.n), StepIdx: i})
	}
	if c.crashed[s.Proc] {
		return c.fail(&Violation{Spec: "Well-Formed", Property: "Crash-Finality",
			Detail: fmt.Sprintf("%v takes a step after crashing", s.Proc), StepIdx: i})
	}
	switch s.Kind {
	case model.KindCrash:
		c.crashed[s.Proc] = true
	case model.KindBroadcastInvoke:
		if c.open[s.Proc] {
			return c.fail(&Violation{Spec: "Well-Formed", Property: "Invocation-Alternation",
				Detail: fmt.Sprintf("%v invokes B.broadcast(m%d) before returning from B.broadcast(m%d)", s.Proc, s.Msg, c.inFlight[s.Proc]), StepIdx: i})
		}
		c.open[s.Proc] = true
		c.inFlight[s.Proc] = s.Msg
	case model.KindBroadcastReturn:
		if !c.open[s.Proc] {
			return c.fail(&Violation{Spec: "Well-Formed", Property: "Invocation-Alternation",
				Detail: fmt.Sprintf("%v returns from B.broadcast(m%d) without an open invocation", s.Proc, s.Msg), StepIdx: i})
		}
		if c.inFlight[s.Proc] != s.Msg {
			return c.fail(&Violation{Spec: "Well-Formed", Property: "Invocation-Alternation",
				Detail: fmt.Sprintf("%v returns from B.broadcast(m%d), but the open invocation is m%d", s.Proc, s.Msg, c.inFlight[s.Proc]), StepIdx: i})
		}
		c.open[s.Proc] = false
	}
	return nil
}

func (c *wellFormedChecker) Finish(bool) *Violation { return c.v }

// crashTracker gives checkers with liveness clauses the correct set.
type crashTracker struct {
	n       int
	crashed map[model.ProcID]bool
}

func newCrashTracker(n int) crashTracker {
	return crashTracker{n: n, crashed: make(map[model.ProcID]bool)}
}

func (c *crashTracker) observe(s model.Step) {
	if s.Kind == model.KindCrash {
		c.crashed[s.Proc] = true
	}
}

func (c *crashTracker) correct(p model.ProcID) bool { return !c.crashed[p] }

// basicBcast is the retained per-message broadcast summary of
// basicChecker (the streaming replacement for Index.Broadcasts).
type basicBcast struct {
	from     model.ProcID
	stepIdx  int
	returned bool
}

// basicChecker streams checkBasicBroadcast: BC-Validity and
// BC-No-Duplication per step, the two termination clauses at Finish.
type basicChecker struct {
	crashTracker
	i         int
	v         *Violation
	bcasts    map[model.MsgID]*basicBcast
	payloadAt map[model.MsgID]model.Payload
	delivered map[model.ProcID]map[model.MsgID]bool
}

func newBasicChecker(n int) *basicChecker {
	return &basicChecker{
		crashTracker: newCrashTracker(n),
		bcasts:       make(map[model.MsgID]*basicBcast),
		payloadAt:    make(map[model.MsgID]model.Payload),
		delivered:    make(map[model.ProcID]map[model.MsgID]bool),
	}
}

func (c *basicChecker) fail(v *Violation) *Violation { c.v = v; return v }

func (c *basicChecker) Feed(s model.Step) *Violation {
	if c.v != nil {
		return c.v
	}
	i := c.i
	c.i++
	c.observe(s)
	switch s.Kind {
	case model.KindBroadcastInvoke:
		if info, dup := c.bcasts[s.Msg]; dup {
			return c.fail(&Violation{Spec: "Basic-Broadcast", Property: "BC-Validity",
				Detail: fmt.Sprintf("message m%d broadcast twice (by %v and %v); broadcast messages are unique", s.Msg, info.from, s.Proc), StepIdx: i})
		}
		c.bcasts[s.Msg] = &basicBcast{from: s.Proc, stepIdx: i}
		c.payloadAt[s.Msg] = s.Payload
	case model.KindBroadcastReturn:
		if info, ok := c.bcasts[s.Msg]; ok {
			info.returned = true
		}
	case model.KindDeliver:
		info, ok := c.bcasts[s.Msg]
		if !ok {
			return c.fail(&Violation{Spec: "Basic-Broadcast", Property: "BC-Validity",
				Detail: fmt.Sprintf("%v B-delivers m%d from %v, never broadcast", s.Proc, s.Msg, s.Peer), StepIdx: i})
		}
		if info.from != s.Peer {
			return c.fail(&Violation{Spec: "Basic-Broadcast", Property: "BC-Validity",
				Detail: fmt.Sprintf("%v B-delivers m%d from %v, but m%d was broadcast by %v", s.Proc, s.Msg, s.Peer, s.Msg, info.from), StepIdx: i})
		}
		if got, want := s.Payload, c.payloadAt[s.Msg]; got != want {
			return c.fail(&Violation{Spec: "Basic-Broadcast", Property: "BC-Validity",
				Detail: fmt.Sprintf("%v B-delivers m%d with content %q, broadcast with %q", s.Proc, s.Msg, got, want), StepIdx: i})
		}
		dm := c.delivered[s.Proc]
		if dm == nil {
			dm = make(map[model.MsgID]bool)
			c.delivered[s.Proc] = dm
		}
		if dm[s.Msg] {
			return c.fail(&Violation{Spec: "Basic-Broadcast", Property: "BC-No-Duplication",
				Detail: fmt.Sprintf("%v B-delivers m%d twice", s.Proc, s.Msg), StepIdx: i})
		}
		dm[s.Msg] = true
	}
	return nil
}

func (c *basicChecker) Finish(complete bool) *Violation {
	if c.v != nil || !complete {
		return c.v
	}
	for m, info := range c.bcasts {
		if c.correct(info.from) && !info.returned {
			return c.fail(&Violation{Spec: "Basic-Broadcast", Property: "BC-Local-Termination",
				Detail: fmt.Sprintf("correct %v never returns from B.broadcast(m%d)", info.from, m), StepIdx: info.stepIdx})
		}
	}
	for m, info := range c.bcasts {
		if !c.correct(info.from) {
			continue
		}
		for p := 1; p <= c.n; p++ {
			pid := model.ProcID(p)
			if !c.correct(pid) {
				continue
			}
			if !c.delivered[pid][m] {
				return c.fail(&Violation{Spec: "Basic-Broadcast", Property: "BC-Global-CS-Termination",
					Detail: fmt.Sprintf("m%d broadcast by correct %v never B-delivered by correct %v", m, info.from, pid), StepIdx: -1})
			}
		}
	}
	return nil
}

// channelsChecker streams checkChannels.
type channelsChecker struct {
	crashTracker
	i          int
	v          *Violation
	sent       map[model.MsgID]srDest
	receivedBy map[model.MsgID]map[model.ProcID]int
}

type srDest struct {
	from, to model.ProcID
}

func newChannelsChecker(n int) *channelsChecker {
	return &channelsChecker{
		crashTracker: newCrashTracker(n),
		sent:         make(map[model.MsgID]srDest),
		receivedBy:   make(map[model.MsgID]map[model.ProcID]int),
	}
}

func (c *channelsChecker) fail(v *Violation) *Violation { c.v = v; return v }

func (c *channelsChecker) Feed(s model.Step) *Violation {
	if c.v != nil {
		return c.v
	}
	i := c.i
	c.i++
	c.observe(s)
	switch s.Kind {
	case model.KindSend:
		if _, dup := c.sent[s.Msg]; dup {
			return c.fail(&Violation{Spec: "SR-Channels", Property: "SR-Validity",
				Detail: fmt.Sprintf("message instance m%d sent twice", s.Msg), StepIdx: i})
		}
		c.sent[s.Msg] = srDest{from: s.Proc, to: s.Peer}
	case model.KindReceive:
		d, ok := c.sent[s.Msg]
		if !ok {
			return c.fail(&Violation{Spec: "SR-Channels", Property: "SR-Validity",
				Detail: fmt.Sprintf("%v receives m%d from %v, never sent", s.Proc, s.Msg, s.Peer), StepIdx: i})
		}
		if d.from != s.Peer || d.to != s.Proc {
			return c.fail(&Violation{Spec: "SR-Channels", Property: "SR-Validity",
				Detail: fmt.Sprintf("%v receives m%d from %v, but m%d was sent by %v to %v", s.Proc, s.Msg, s.Peer, s.Msg, d.from, d.to), StepIdx: i})
		}
		m := c.receivedBy[s.Msg]
		if m == nil {
			m = make(map[model.ProcID]int)
			c.receivedBy[s.Msg] = m
		}
		m[s.Proc]++
		if m[s.Proc] > 1 {
			return c.fail(&Violation{Spec: "SR-Channels", Property: "SR-No-Duplication",
				Detail: fmt.Sprintf("%v receives m%d twice", s.Proc, s.Msg), StepIdx: i})
		}
	}
	return nil
}

func (c *channelsChecker) Finish(complete bool) *Violation {
	if c.v != nil || !complete {
		return c.v
	}
	for m, d := range c.sent {
		if !c.correct(d.to) {
			continue
		}
		if c.receivedBy[m][d.to] == 0 {
			return c.fail(&Violation{Spec: "SR-Channels", Property: "SR-Termination",
				Detail: fmt.Sprintf("m%d sent by %v to correct %v never received", m, d.from, d.to), StepIdx: -1})
		}
	}
	return nil
}

// ksaChecker streams checkKSA: the one-shot discipline, k-SA-Validity,
// and k-SA-Agreement per step (the streaming decision tables), and
// k-SA-Termination at Finish.
type ksaChecker struct {
	crashTracker
	k              int
	name           string
	i              int
	v              *Violation
	proposed       map[model.KSAID]map[model.ProcID]model.Value
	valuesProposed map[model.KSAID]map[model.Value]bool
	decided        map[model.KSAID]map[model.ProcID]model.Value
	distinct       map[model.KSAID]map[model.Value]bool
}

func newKSAChecker(n, k int) *ksaChecker {
	return &ksaChecker{
		crashTracker:   newCrashTracker(n),
		k:              k,
		name:           fmt.Sprintf("%d-SA", k),
		proposed:       make(map[model.KSAID]map[model.ProcID]model.Value),
		valuesProposed: make(map[model.KSAID]map[model.Value]bool),
		decided:        make(map[model.KSAID]map[model.ProcID]model.Value),
		distinct:       make(map[model.KSAID]map[model.Value]bool),
	}
}

func (c *ksaChecker) fail(v *Violation) *Violation { c.v = v; return v }

func (c *ksaChecker) Feed(s model.Step) *Violation {
	if c.v != nil {
		return c.v
	}
	i := c.i
	c.i++
	c.observe(s)
	switch s.Kind {
	case model.KindPropose:
		pm := c.proposed[s.Obj]
		if pm == nil {
			pm = make(map[model.ProcID]model.Value)
			c.proposed[s.Obj] = pm
			c.valuesProposed[s.Obj] = make(map[model.Value]bool)
		}
		if _, dup := pm[s.Proc]; dup {
			return c.fail(&Violation{Spec: c.name, Property: "One-Shot",
				Detail: fmt.Sprintf("%v proposes twice on %v", s.Proc, s.Obj), StepIdx: i})
		}
		pm[s.Proc] = s.Val
		c.valuesProposed[s.Obj][s.Val] = true
	case model.KindDecide:
		if _, ok := c.proposed[s.Obj][s.Proc]; !ok {
			return c.fail(&Violation{Spec: c.name, Property: "k-SA-Validity",
				Detail: fmt.Sprintf("%v decides on %v without proposing", s.Proc, s.Obj), StepIdx: i})
		}
		if !c.valuesProposed[s.Obj][s.Val] {
			return c.fail(&Violation{Spec: c.name, Property: "k-SA-Validity",
				Detail: fmt.Sprintf("%v decides %q on %v, never proposed", s.Proc, s.Val, s.Obj), StepIdx: i})
		}
		dm := c.decided[s.Obj]
		if dm == nil {
			dm = make(map[model.ProcID]model.Value)
			c.decided[s.Obj] = dm
			c.distinct[s.Obj] = make(map[model.Value]bool)
		}
		if _, dup := dm[s.Proc]; dup {
			return c.fail(&Violation{Spec: c.name, Property: "One-Shot",
				Detail: fmt.Sprintf("%v decides twice on %v", s.Proc, s.Obj), StepIdx: i})
		}
		dm[s.Proc] = s.Val
		c.distinct[s.Obj][s.Val] = true
		if len(c.distinct[s.Obj]) > c.k {
			return c.fail(&Violation{Spec: c.name, Property: "k-SA-Agreement",
				Detail: fmt.Sprintf("%d distinct values decided on %v, at most %d allowed", len(c.distinct[s.Obj]), s.Obj, c.k), StepIdx: i})
		}
	}
	return nil
}

func (c *ksaChecker) Finish(complete bool) *Violation {
	if c.v != nil || !complete {
		return c.v
	}
	for obj, pm := range c.proposed {
		for p := range pm {
			if !c.correct(p) {
				continue
			}
			if _, ok := c.decided[obj][p]; !ok {
				return c.fail(&Violation{Spec: c.name, Property: "k-SA-Termination",
					Detail: fmt.Sprintf("correct %v proposed on %v but never decides", p, obj), StepIdx: -1})
			}
		}
	}
	return nil
}
