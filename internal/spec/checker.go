package spec

import (
	"fmt"

	"nobroadcast/internal/model"
	"nobroadcast/internal/trace"
)

// This file defines the incremental checking layer: every specification in
// this package is backed by an online Checker that consumes one step at a
// time and keeps only per-spec summary state (FIFO cursors, vector-clock
// frontiers, conflict sets, decision tables) instead of the whole trace.
// Spec.Check remains the public batch entry point, implemented as a thin
// adapter that streams the trace through a fresh checker, so every
// existing call site keeps working; the original whole-trace predicates
// are retained behind CheckBatch for differential testing and as the
// reference semantics.

// Checker is an online specification checker. Feed consumes the next step
// of the execution and returns a violation as soon as one exists; Finish
// evaluates the end-of-trace (liveness) clauses, with complete reporting
// whether the run terminated with every correct process quiescent (the
// same meaning as trace.Trace.Complete — liveness is vacuous otherwise).
//
// Checkers latch: once Feed or Finish has returned a violation, every
// later call returns the same violation. This is the online counterpart
// of prefix-monotonicity — a violated prefix stays violated in every
// extension. Checkers track their own step index; the StepIdx of a
// violation returned by Feed refers to the position of the offending step
// in the fed sequence.
//
// A Checker is single-goroutine; callers that feed from several
// goroutines must serialize (the concurrent runtime feeds under its trace
// recorder's mutex).
type Checker interface {
	Feed(s model.Step) *Violation
	Finish(complete bool) *Violation
}

// Streaming is implemented by specifications that provide an online
// checker. Every spec constructed by this package implements it; n is the
// number of processes of the execution to be checked.
type Streaming interface {
	Spec
	NewChecker(n int) Checker
}

// Batch is implemented by specifications that retain their whole-trace
// reference predicate alongside the streaming form.
type Batch interface {
	Spec
	CheckBatch(t *trace.Trace) *Violation
}

// RunChecker streams an entire trace through a checker and returns its
// verdict: the first per-step violation, else the Finish-time verdict.
func RunChecker(c Checker, t *trace.Trace) *Violation {
	for _, s := range t.X.Steps {
		if v := c.Feed(s); v != nil {
			return v
		}
	}
	return c.Finish(t.Complete)
}

// NewCheckerFor returns an online checker for any Spec: the spec's own
// checker when it is Streaming, else a fallback that buffers steps and
// evaluates the batch predicate at Finish time (correct, but without the
// per-step early detection or the memory bound).
func NewCheckerFor(s Spec, n int) Checker {
	if st, ok := s.(Streaming); ok {
		return st.NewChecker(n)
	}
	return &bufferedChecker{s: s, x: model.NewExecution(n)}
}

// CheckBatch evaluates a spec's whole-trace reference predicate when it
// retains one, else falls back to Check. Used by the differential tests
// and benchmarks comparing the online and batch forms.
func CheckBatch(s Spec, t *trace.Trace) *Violation {
	if b, ok := s.(Batch); ok {
		return b.CheckBatch(t)
	}
	return s.Check(t)
}

// SameVerdict reports whether two violations agree as verdicts: both nil,
// or naming the same spec and property. Details and step indices are not
// compared — details may enumerate map-ordered witnesses.
func SameVerdict(a, b *Violation) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || (a.Spec == b.Spec && a.Property == b.Property)
}

// streamSpec is the standard implementation of a specification in this
// package: a name, the retained whole-trace reference predicate, and the
// online checker constructor. Check streams the trace through a fresh
// checker, so batch call sites get the online semantics transparently.
type streamSpec struct {
	name  string
	batch func(t *trace.Trace) *Violation
	mk    func(n int) Checker
}

var (
	_ Streaming = streamSpec{}
	_ Batch     = streamSpec{}
)

func (s streamSpec) Name() string                         { return s.name }
func (s streamSpec) Check(t *trace.Trace) *Violation      { return RunChecker(s.mk(t.X.N), t) }
func (s streamSpec) CheckBatch(t *trace.Trace) *Violation { return s.batch(t) }
func (s streamSpec) NewChecker(n int) Checker             { return s.mk(n) }

// allSpec is the composite returned by All. Check preserves the historic
// semantics — component specs are checked in declaration order, whole
// trace each — while NewChecker multiplexes one checker per component and
// reports the first violation in *time* order. The two can disagree on
// which component is blamed when several are violated, never on
// admissibility.
type allSpec struct {
	name  string
	specs []Spec
}

var (
	_ Streaming = allSpec{}
	_ Batch     = allSpec{}
)

func (a allSpec) Name() string { return a.name }

func (a allSpec) Check(t *trace.Trace) *Violation {
	for _, s := range a.specs {
		if v := s.Check(t); v != nil {
			return v
		}
	}
	return nil
}

func (a allSpec) CheckBatch(t *trace.Trace) *Violation {
	for _, s := range a.specs {
		if v := CheckBatch(s, t); v != nil {
			return v
		}
	}
	return nil
}

func (a allSpec) NewChecker(n int) Checker {
	cks := make([]Checker, len(a.specs))
	for i, s := range a.specs {
		cks[i] = NewCheckerFor(s, n)
	}
	return &multiChecker{cks: cks}
}

// multiChecker feeds every component checker and latches the first
// violation any of them reports.
type multiChecker struct {
	cks []Checker
	v   *Violation
}

func (c *multiChecker) Feed(s model.Step) *Violation {
	if c.v != nil {
		return c.v
	}
	for _, ck := range c.cks {
		if v := ck.Feed(s); v != nil && c.v == nil {
			c.v = v
		}
	}
	return c.v
}

func (c *multiChecker) Finish(complete bool) *Violation {
	if c.v != nil {
		return c.v
	}
	for _, ck := range c.cks {
		if v := ck.Finish(complete); v != nil {
			c.v = v
			return c.v
		}
	}
	return nil
}

// bufferedChecker is the fallback for user-supplied specs without a
// streaming form: it buffers the fed steps and runs the batch predicate
// once at Finish. No per-step early detection.
type bufferedChecker struct {
	s Spec
	x *model.Execution
	v *Violation
}

func (c *bufferedChecker) Feed(s model.Step) *Violation {
	if c.v != nil {
		return c.v
	}
	c.x.Append(s)
	return nil
}

func (c *bufferedChecker) Finish(complete bool) *Violation {
	if c.v != nil {
		return c.v
	}
	c.v = c.s.Check(&trace.Trace{X: c.x, Complete: complete})
	return c.v
}

// SpecVerdict is one spec's latched verdict inside a Monitor.
type SpecVerdict struct {
	Spec      string
	Violation *Violation // nil = no violation observed (so far)
	StepIdx   int        // index of the latching step, -1 for Finish-time or none
}

// Monitor runs several specifications' checkers over one step stream. It
// is the unit the runtimes embed for live checking: feed every recorded
// step, then read the latched per-spec verdicts. Feed returns the overall
// first violation (nil until one occurs), so callers can fail fast while
// the monitor keeps collecting verdicts for the remaining specs.
type Monitor struct {
	steps    int
	entries  []*monEntry
	first    *Violation
	firstIdx int
	finished bool
}

type monEntry struct {
	spec Spec
	ck   Checker
	v    *Violation
	idx  int
}

// NewMonitor builds a monitor over the given specs for an n-process
// execution.
func NewMonitor(n int, specs ...Spec) *Monitor {
	m := &Monitor{firstIdx: -1}
	for _, s := range specs {
		m.entries = append(m.entries, &monEntry{spec: s, ck: NewCheckerFor(s, n), idx: -1})
	}
	return m
}

// Feed advances every non-violated checker by one step and returns the
// overall first violation (latched).
func (m *Monitor) Feed(s model.Step) *Violation {
	idx := m.steps
	m.steps++
	for _, e := range m.entries {
		if e.v != nil {
			continue
		}
		if v := e.ck.Feed(s); v != nil {
			e.v, e.idx = v, idx
			if m.first == nil {
				m.first, m.firstIdx = v, idx
			}
		}
	}
	return m.first
}

// Finish evaluates the end-of-trace clauses of every spec that has not
// already violated. It is idempotent.
func (m *Monitor) Finish(complete bool) *Violation {
	if m.finished {
		return m.first
	}
	m.finished = true
	for _, e := range m.entries {
		if e.v != nil {
			continue
		}
		if v := e.ck.Finish(complete); v != nil {
			e.v = v
			if m.first == nil {
				m.first = v
			}
		}
	}
	return m.first
}

// Violation returns the overall first violation and the index of the step
// that latched it (-1 when none, or when it latched at Finish).
func (m *Monitor) Violation() (*Violation, int) { return m.first, m.firstIdx }

// Steps returns how many steps have been fed.
func (m *Monitor) Steps() int { return m.steps }

// Verdict returns the latched verdict for the named spec; ok reports
// whether that spec is monitored at all.
func (m *Monitor) Verdict(specName string) (v *Violation, ok bool) {
	for _, e := range m.entries {
		if e.spec.Name() == specName {
			return e.v, true
		}
	}
	return nil, false
}

// Verdicts returns every monitored spec's latched verdict, in monitor
// order.
func (m *Monitor) Verdicts() []SpecVerdict {
	out := make([]SpecVerdict, len(m.entries))
	for i, e := range m.entries {
		out[i] = SpecVerdict{Spec: e.spec.Name(), Violation: e.v, StepIdx: e.idx}
	}
	return out
}

// String summarizes the monitor state for logs.
func (m *Monitor) String() string {
	bad := 0
	for _, e := range m.entries {
		if e.v != nil {
			bad++
		}
	}
	return fmt.Sprintf("monitor{%d specs, %d steps, %d violated}", len(m.entries), m.steps, bad)
}
