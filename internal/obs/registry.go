package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a named collection of metrics, spans, and an optional event
// sink. Get-or-create accessors (Counter, Gauge, Histogram) are intended
// for setup time — instrumented layers resolve their handles once, at
// construction, and hold the returned pointers for the hot path.
//
// All methods are safe on a nil *Registry: accessors return nil handles
// (themselves no-op recorders), StartSpan returns a no-op span, and Emit
// returns immediately. A nil Registry is therefore the disabled state.
type Registry struct {
	start time.Time

	mu       sync.Mutex
	order    []metricEntry
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	spanMu sync.Mutex
	spans  []SpanRecord

	// spanSeq allocates span ids for trace-linked spans (StartSpanCtx).
	// Ids are unique per registry and never reused, so a JSONL consumer
	// can key a span tree by (trace, span).
	spanSeq atomic.Uint64

	events atomic.Pointer[EventLog]
}

type metricEntry struct {
	kind byte // 'c', 'g', 'h'
	name string
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		start:    time.Now(),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Nil on a
// nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = NewCounter()
		r.counters[name] = c
		r.order = append(r.order, metricEntry{kind: 'c', name: name})
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = NewGauge()
		r.gauges[name] = g
		r.order = append(r.order, metricEntry{kind: 'g', name: name})
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use (later calls ignore the bounds).
func (r *Registry) Histogram(name string, bounds ...int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds...)
		r.hists[name] = h
		r.order = append(r.order, metricEntry{kind: 'h', name: name})
	}
	return h
}

// SpanRecord is one completed span. Trace, Span, and Parent are set
// only for spans opened through StartSpanCtx under a traced context
// (Trace empty otherwise); Parent 0 marks a trace's root span.
type SpanRecord struct {
	Name     string
	Start    time.Time
	Duration time.Duration
	Trace    string
	Span     uint64
	Parent   uint64
}

// Span times one phase of a run. End records it on the registry (and emits
// a "span" event when an event sink is attached). A nil *Span is a no-op,
// so callers may unconditionally defer End.
type Span struct {
	r     *Registry
	name  string
	start time.Time

	// trace linkage, set by StartSpanCtx on traced contexts.
	trace  string
	span   uint64
	parent uint64
}

// StartSpan opens a named span. Nil (a no-op span) on a nil registry.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{r: r, name: name, start: time.Now()}
}

// End closes the span and returns its duration (0 on nil). Trace-linked
// spans carry their trace/span/parent ids into both the SpanRecord and
// the emitted "span" event (the parent field is omitted on roots).
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	s.r.spanMu.Lock()
	s.r.spans = append(s.r.spans, SpanRecord{
		Name: s.name, Start: s.start, Duration: d,
		Trace: s.trace, Span: s.span, Parent: s.parent,
	})
	s.r.spanMu.Unlock()
	switch {
	case s.trace == "":
		s.r.Emit("span", Str("name", s.name), Int("dur_us", d.Microseconds()))
	case s.parent == 0:
		s.r.Emit("span", Str("name", s.name), Int("dur_us", d.Microseconds()),
			Str("trace", s.trace), Int("span", int64(s.span)))
	default:
		s.r.Emit("span", Str("name", s.name), Int("dur_us", d.Microseconds()),
			Str("trace", s.trace), Int("span", int64(s.span)), Int("parent", int64(s.parent)))
	}
	return d
}

// Spans returns the completed spans in end order.
func (r *Registry) Spans() []SpanRecord {
	if r == nil {
		return nil
	}
	r.spanMu.Lock()
	defer r.spanMu.Unlock()
	out := make([]SpanRecord, len(r.spans))
	copy(out, r.spans)
	return out
}

// snapshot views for the sinks.

type counterView struct {
	name string
	val  int64
}

type gaugeView struct {
	name     string
	val, max int64
}

type histView struct {
	name string
	snap HistogramSnapshot
}

// views copies the registered metrics in registration order.
func (r *Registry) views() (cs []counterView, gs []gaugeView, hs []histView) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.order {
		switch e.kind {
		case 'c':
			cs = append(cs, counterView{name: e.name, val: r.counters[e.name].Value()})
		case 'g':
			g := r.gauges[e.name]
			gs = append(gs, gaugeView{name: e.name, val: g.Value(), max: g.Max()})
		case 'h':
			hs = append(hs, histView{name: e.name, snap: r.hists[e.name].Snapshot()})
		}
	}
	return cs, gs, hs
}
