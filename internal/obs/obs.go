// Package obs is the repository's zero-dependency instrumentation core:
// lock-free atomic counters and gauges, fixed-bucket histograms, span-based
// phase timing, and structured events, collected in a Registry and exported
// through pluggable sinks (human-readable summary, Prometheus text
// exposition, JSONL event log, HTTP endpoint).
//
// Two design constraints shape the API, both imposed by the deterministic
// scheduler this package instruments:
//
//   - Recorders never perturb the run. Metrics observe executions; they
//     must not alter scheduling, message order, or any recorded step.
//     Counters and gauges are plain atomics, histograms are fixed arrays
//     of atomics, and nothing in the hot path takes a lock or allocates.
//   - Disabled means free. Every recorder method is a no-op on a nil
//     receiver, so instrumented code holds possibly-nil handles and calls
//     them unconditionally. With no Registry configured the entire
//     instrumentation layer reduces to nil checks — zero allocations,
//     no atomics, measured by BenchmarkObsOverhead.
//
// The usual wiring: a CLI builds one Registry when -metrics or -events is
// passed, threads it through the Config structs of the execution layers
// (sched, net, adversary, core), and renders WriteSummary or attaches a
// JSONL EventLog at the end of the run. Libraries never create registries;
// they accept one (possibly nil) and register named metrics against it.
package obs

import "sync/atomic"

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter is a no-op recorder.
type Counter struct {
	v atomic.Int64
}

// NewCounter returns a standalone counter not attached to any registry
// (used by layers that keep their own snapshots even when observability
// is disabled, e.g. internal/net's StatsSnapshot).
func NewCounter() *Counter { return new(Counter) }

// Inc adds 1.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (n must be non-negative for the Prometheus exposition to
// stay truthful; this is not enforced).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value that can move both ways. It also
// tracks the maximum value ever set, which turns a watermark (in-flight
// messages, local_del progress) into a one-number summary. The zero value
// is ready; a nil *Gauge is a no-op recorder.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// NewGauge returns a standalone gauge not attached to any registry.
func NewGauge() *Gauge { return new(Gauge) }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	g.bumpMax(v)
}

// Add adjusts the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.bumpMax(g.v.Add(delta))
}

// Inc adds 1; Dec subtracts 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

func (g *Gauge) bumpMax(v int64) {
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the highest value the gauge has held (0 on nil).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}
