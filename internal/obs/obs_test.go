package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := r.Counter("c"); again != c {
		t.Error("Counter is not get-or-create")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 || g.Max() != 7 {
		t.Errorf("gauge = %d max %d, want 4 max 7", g.Value(), g.Max())
	}
	g.Inc()
	g.Dec()
	if g.Value() != 4 {
		t.Errorf("inc/dec: gauge = %d, want 4", g.Value())
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := NewCounter()
	g := NewGauge()
	h := NewHistogram(10, 100)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(j % 200))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 || g.Max() != 8000 {
		t.Errorf("gauge = %d max %d, want 8000/8000", g.Value(), g.Max())
	}
	if s := h.Snapshot(); s.Count != 8000 {
		t.Errorf("histogram count = %d, want 8000", s.Count)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	for _, v := range []int64{0, 1, 2, 50, 99, 100, 101, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 8 || s.Max != 5000 {
		t.Fatalf("count=%d max=%d, want 8/5000", s.Count, s.Max)
	}
	// Buckets: <=1: {0,1}; <=10: {2}; <=100: {50,99,100}; +Inf: {101,5000}.
	want := []int64{2, 1, 3, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	// p50: rank 4 of 8 lands one observation into the (10,100] bucket of
	// three, so interpolation reports 10 + (1/3)·90 = 40.
	if q := s.Quantile(0.5); q != 40 {
		t.Errorf("p50 = %d, want 40", q)
	}
	if q := s.Quantile(1.0); q != 5000 {
		t.Errorf("p100 = %d, want 5000 (overflow max)", q)
	}
}

func TestHistogramBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on non-increasing bounds")
		}
	}()
	NewHistogram(5, 5)
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(3)
	r.Gauge("y").Set(1)
	r.Histogram("z", 1, 2).Observe(9)
	r.StartSpan("phase").End()
	r.Emit("ev", Str("a", "b"), Int("n", 1))
	r.AttachEvents(nil)
	if err := r.WriteSummary(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if r.Spans() != nil || r.Counter("x").Value() != 0 {
		t.Error("nil registry leaked state")
	}
}

func TestSpans(t *testing.T) {
	r := New()
	s := r.StartSpan("alpha")
	time.Sleep(time.Millisecond)
	if d := s.End(); d <= 0 {
		t.Errorf("span duration = %v, want > 0", d)
	}
	spans := r.Spans()
	if len(spans) != 1 || spans[0].Name != "alpha" {
		t.Fatalf("spans = %+v", spans)
	}
}

func TestEventLogJSONL(t *testing.T) {
	r := New()
	var buf bytes.Buffer
	l := NewEventLog(&buf)
	r.AttachEvents(l)
	r.Emit("phase.enter", Int("proc", 3), Str("name", "solo"))
	r.Emit("quote\"and\\slash", Str("text", "line\nbreak\ttab\x01ctl"))
	r.StartSpan("sp").End()
	if l.Count() != 3 {
		t.Fatalf("event count = %d, want 3", l.Count())
	}
	if err := l.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3:\n%s", len(lines), buf.String())
	}
	// Every line must be one valid JSON object with ts and event.
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d invalid JSON: %v\n%s", i, err, line)
		}
		if _, err := time.Parse(time.RFC3339Nano, m["ts"].(string)); err != nil {
			t.Errorf("line %d bad ts: %v", i, err)
		}
		if m["event"] == "" {
			t.Errorf("line %d missing event", i)
		}
	}
	var m map[string]any
	json.Unmarshal([]byte(lines[0]), &m)
	if m["proc"] != float64(3) || m["name"] != "solo" {
		t.Errorf("fields not preserved: %v", m)
	}
	json.Unmarshal([]byte(lines[1]), &m)
	if m["text"] != "line\nbreak\ttab\x01ctl" {
		t.Errorf("escaping not round-trippable: %q", m["text"])
	}
	// Detach: further events are dropped.
	r.AttachEvents(nil)
	r.Emit("dropped")
	if l.Count() != 3 {
		t.Errorf("detached sink still received events")
	}
}

func TestWriteSummary(t *testing.T) {
	r := New()
	r.Counter("sched.steps").Add(42)
	r.Gauge("net.in_flight").Set(3)
	r.Histogram("net.delay_us", 10, 100).Observe(50)
	r.Histogram("empty.hist", 1)
	r.StartSpan("pipeline.replay").End()
	var buf bytes.Buffer
	if err := r.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, w := range []string{"pipeline.replay", "sched.steps", "42", "net.in_flight", "(max 3)", "net.delay_us", "count=1", "(no observations)"} {
		if !strings.Contains(out, w) {
			t.Errorf("summary missing %q:\n%s", w, out)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("sched.steps").Add(7)
	r.Gauge("net.in_flight").Set(2)
	h := r.Histogram("depth", 1, 4)
	h.Observe(0)
	h.Observe(3)
	h.Observe(9)
	r.StartSpan("pipeline.solo").End()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wants := []string{
		"# TYPE sched_steps counter\nsched_steps 7",
		"# TYPE net_in_flight gauge\nnet_in_flight 2",
		`depth_bucket{le="1"} 1`,
		`depth_bucket{le="4"} 2`,
		`depth_bucket{le="+Inf"} 3`,
		"depth_sum 12",
		"depth_count 3",
		"pipeline_solo_count 1",
		"pipeline_solo_seconds_total",
	}
	for _, w := range wants {
		if !strings.Contains(out, w) {
			t.Errorf("prometheus output missing %q:\n%s", w, out)
		}
	}
}

func TestServeHTTP(t *testing.T) {
	r := New()
	r.Counter("runs").Inc()
	r.Gauge("depth").Set(5)

	for _, tc := range []struct {
		path, want string
	}{
		{"/", "runs"},
		{"/metrics", "# TYPE runs counter"},
		{"/vars", `"runs":1`},
	} {
		rec := httptest.NewRecorder()
		r.ServeHTTP(rec, httptest.NewRequest("GET", tc.path, nil))
		if rec.Code != 200 {
			t.Errorf("%s: status %d", tc.path, rec.Code)
		}
		if !strings.Contains(rec.Body.String(), tc.want) {
			t.Errorf("%s: missing %q in %q", tc.path, tc.want, rec.Body.String())
		}
	}
	// /vars must be valid JSON.
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/vars", nil))
	var m map[string]int64
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("/vars not JSON: %v", err)
	}
	if m["depth"] != 5 {
		t.Errorf("/vars depth = %d, want 5", m["depth"])
	}

	var nilReg *Registry
	rec = httptest.NewRecorder()
	nilReg.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != 503 {
		t.Errorf("nil registry: status %d, want 503", rec.Code)
	}
}

// TestDisabledRecordersAllocateNothing is the testable face of the
// BenchmarkObsOverhead claim: with no registry, the recorder calls that sit
// on the scheduler's hot path must not allocate at all.
func TestDisabledRecordersAllocateNothing(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", 1, 10)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(9)
		h.Observe(4)
		r.Emit("ev", Int("n", 1), Str("s", "x"))
	})
	if allocs != 0 {
		t.Errorf("disabled recorders allocate %v allocs/op, want 0", allocs)
	}
}

// TestEnabledEmitWithoutSinkAllocatesNothing covers the common production
// state: registry present (counters live) but no event sink attached.
func TestEnabledEmitWithoutSinkAllocatesNothing(t *testing.T) {
	r := New()
	c := r.Counter("c")
	h := r.Histogram("h", 1, 10)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(4)
		r.Emit("ev", Int("n", 1), Str("s", "x"))
	})
	if allocs != 0 {
		t.Errorf("sink-less recorders allocate %v allocs/op, want 0", allocs)
	}
}
