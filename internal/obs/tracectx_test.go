package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestTraceContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if _, ok := TraceFrom(ctx); ok {
		t.Fatal("background context reports a trace")
	}
	tc := TraceContext{TraceID: "abc123", SpanID: 7}
	ctx = ContextWithTrace(ctx, tc)
	got, ok := TraceFrom(ctx)
	if !ok || got != tc {
		t.Fatalf("TraceFrom = %+v ok=%v, want %+v", got, ok, tc)
	}
	// The zero TraceContext is "untraced" and must not be stored.
	if ctx2 := ContextWithTrace(context.Background(), TraceContext{}); ctx2 != context.Background() {
		t.Error("empty trace context changed the context")
	}
}

func TestNewTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("trace id lengths = %d/%d, want 16: %q %q", len(a), len(b), a, b)
	}
	if a == b {
		t.Fatalf("consecutive trace ids collide: %q", a)
	}
	for _, c := range a {
		if !strings.ContainsRune("0123456789abcdef", c) {
			t.Fatalf("trace id %q is not lowercase hex", a)
		}
	}
}

// TestStartSpanCtxBuildsATree: nested StartSpanCtx calls under one trace
// share the trace id and chain parent pointers root → child → leaf, in
// both the SpanRecords and the emitted span events.
func TestStartSpanCtxBuildsATree(t *testing.T) {
	r := New()
	var buf bytes.Buffer
	r.AttachEvents(NewEventLog(&buf))

	ctx := ContextWithTrace(context.Background(), TraceContext{TraceID: "t1"})
	root, ctx := r.StartSpanCtx(ctx, "root")
	child, cctx := r.StartSpanCtx(ctx, "child")
	leaf, _ := r.StartSpanCtx(cctx, "leaf")
	leaf.End()
	child.End()
	root.End()

	spans := r.Spans() // end order: leaf, child, root
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	lf, ch, rt := spans[0], spans[1], spans[2]
	for _, s := range spans {
		if s.Trace != "t1" {
			t.Errorf("span %q trace = %q, want t1", s.Name, s.Trace)
		}
	}
	if rt.Parent != 0 {
		t.Errorf("root parent = %d, want 0", rt.Parent)
	}
	if ch.Parent != rt.Span || lf.Parent != ch.Span {
		t.Errorf("parent chain broken: root=%d child=(%d parent %d) leaf=(%d parent %d)",
			rt.Span, ch.Span, ch.Parent, lf.Span, lf.Parent)
	}
	if rt.Span == ch.Span || ch.Span == lf.Span || rt.Span == lf.Span {
		t.Errorf("span ids not unique: %d %d %d", rt.Span, ch.Span, lf.Span)
	}

	// The JSONL mirror: every span event carries trace and span; parent
	// appears on non-roots only.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("event lines = %d, want 3", len(lines))
	}
	byName := map[string]map[string]any{}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad span event %q: %v", line, err)
		}
		byName[m["name"].(string)] = m
	}
	if byName["root"]["trace"] != "t1" || byName["leaf"]["trace"] != "t1" {
		t.Errorf("events missing trace field: %v", byName)
	}
	if _, has := byName["root"]["parent"]; has {
		t.Error("root span event has a parent field")
	}
	if byName["leaf"]["parent"] != byName["child"]["span"] {
		t.Errorf("leaf parent %v != child span %v", byName["leaf"]["parent"], byName["child"]["span"])
	}
}

// TestStartSpanCtxUntraced: without a trace in ctx the span behaves like
// a plain StartSpan (no trace linkage, no trace fields in the event)
// and the context comes back unchanged.
func TestStartSpanCtxUntraced(t *testing.T) {
	r := New()
	var buf bytes.Buffer
	r.AttachEvents(NewEventLog(&buf))
	ctx := context.Background()
	sp, ctx2 := r.StartSpanCtx(ctx, "plain")
	if ctx2 != ctx {
		t.Error("untraced StartSpanCtx changed the context")
	}
	sp.End()
	if s := r.Spans()[0]; s.Trace != "" || s.Span != 0 || s.Parent != 0 {
		t.Errorf("untraced span leaked trace linkage: %+v", s)
	}
	if strings.Contains(buf.String(), "trace") {
		t.Errorf("untraced span event has trace fields: %s", buf.String())
	}
}

func TestStartSpanIfTraced(t *testing.T) {
	r := New()
	if sp, _ := r.StartSpanIfTraced(context.Background(), "skip"); sp != nil {
		t.Error("untraced StartSpanIfTraced returned a live span")
	}
	if len(r.Spans()) != 0 {
		t.Error("untraced StartSpanIfTraced recorded a span")
	}
	ctx := ContextWithTrace(context.Background(), TraceContext{TraceID: "t2"})
	sp, _ := r.StartSpanIfTraced(ctx, "cell")
	if sp == nil {
		t.Fatal("traced StartSpanIfTraced returned nil")
	}
	sp.End()
	if s := r.Spans()[0]; s.Trace != "t2" || s.Span == 0 {
		t.Errorf("traced span not linked: %+v", s)
	}

	// Nil registry: both variants are free and safe.
	var nilReg *Registry
	if sp, c := nilReg.StartSpanCtx(ctx, "x"); sp != nil || c != ctx {
		t.Error("nil registry StartSpanCtx not a no-op")
	}
	if sp, c := nilReg.StartSpanIfTraced(ctx, "x"); sp != nil || c != ctx {
		t.Error("nil registry StartSpanIfTraced not a no-op")
	}
}

// TestTracePathDisabledAllocatesNothing is the trace-context face of the
// zero-overhead contract: with tracing off (nil registry, or a live
// registry on an untraced context), the per-request trace plumbing on
// the serving hot path must not allocate.
func TestTracePathDisabledAllocatesNothing(t *testing.T) {
	ctx := context.Background()
	var nilReg *Registry
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := TraceFrom(ctx); ok {
			t.Fatal("unexpected trace")
		}
		sp, _ := nilReg.StartSpanCtx(ctx, "off")
		sp.End()
		sp2, _ := nilReg.StartSpanIfTraced(ctx, "off")
		sp2.End()
	})
	if allocs != 0 {
		t.Errorf("disabled trace path allocates %v allocs/op, want 0", allocs)
	}

	r := New()
	allocs = testing.AllocsPerRun(1000, func() {
		sp, _ := r.StartSpanIfTraced(ctx, "off")
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("untraced StartSpanIfTraced allocates %v allocs/op, want 0", allocs)
	}
}
