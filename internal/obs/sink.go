package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// WriteSummary renders the registry as a human-readable report: completed
// spans (in end order, with per-name totals when a name repeats), then
// counters, gauges, and histograms in registration order. This is what
// the CLIs print under -metrics.
func (r *Registry) WriteSummary(w io.Writer) error {
	if r == nil {
		return nil
	}
	spans := r.Spans()
	cs, gs, hs := r.views()

	if len(spans) > 0 {
		fmt.Fprintln(w, "-- spans ----------------------------------------")
		for _, s := range spans {
			fmt.Fprintf(w, "  %-40s %12s\n", s.Name, fmtDuration(s.Duration))
		}
	}
	if len(cs) > 0 {
		fmt.Fprintln(w, "-- counters -------------------------------------")
		for _, c := range cs {
			fmt.Fprintf(w, "  %-40s %12d\n", c.name, c.val)
		}
	}
	if len(gs) > 0 {
		fmt.Fprintln(w, "-- gauges ---------------------------------------")
		for _, g := range gs {
			fmt.Fprintf(w, "  %-40s %12d  (max %d)\n", g.name, g.val, g.max)
		}
	}
	if len(hs) > 0 {
		fmt.Fprintln(w, "-- histograms -----------------------------------")
		for _, h := range hs {
			s := h.snap
			if s.Count == 0 {
				fmt.Fprintf(w, "  %-40s (no observations)\n", h.name)
				continue
			}
			mean := float64(s.Sum) / float64(s.Count)
			fmt.Fprintf(w, "  %-40s count=%d mean=%.1f p50=%d p90=%d p99=%d p999=%d max=%d\n",
				h.name, s.Count, mean,
				s.Quantile(0.50), s.Quantile(0.90), s.Quantile(0.99), s.Quantile(0.999), s.Max)
		}
	}
	if l := r.EventLogged(); l != nil {
		fmt.Fprintf(w, "-- events: %d written --------------------------\n", l.Count())
	}
	return nil
}

// fmtDuration renders a duration with stable, scan-friendly units.
func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as-is, histograms with
// cumulative _bucket/_sum/_count series, and spans aggregated per name as
// <name>_seconds_total and <name>_count. Metric names are sanitized to
// the Prometheus grammar.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	cs, gs, hs := r.views()
	for _, c := range cs {
		n := promName(c.name)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, c.val)
	}
	for _, g := range gs {
		n := promName(g.name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, g.val)
		fmt.Fprintf(w, "# TYPE %s_max gauge\n%s_max %d\n", n, n, g.max)
	}
	for _, h := range hs {
		n := promName(h.name)
		s := h.snap
		fmt.Fprintf(w, "# TYPE %s histogram\n", n)
		var cum int64
		for i, b := range s.Bounds {
			cum += s.Counts[i]
			fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", n, b, cum)
		}
		cum += s.Counts[len(s.Counts)-1]
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, cum)
		fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", n, s.Sum, n, s.Count)
	}
	// Aggregate spans per name for a scrape-friendly view.
	type agg struct {
		total time.Duration
		count int64
	}
	byName := make(map[string]*agg)
	var names []string
	for _, s := range r.Spans() {
		a, ok := byName[s.Name]
		if !ok {
			a = &agg{}
			byName[s.Name] = a
			names = append(names, s.Name)
		}
		a.total += s.Duration
		a.count++
	}
	sort.Strings(names)
	for _, name := range names {
		n := promName(name)
		a := byName[name]
		fmt.Fprintf(w, "# TYPE %s_seconds_total counter\n%s_seconds_total %g\n", n, n, a.total.Seconds())
		fmt.Fprintf(w, "# TYPE %s_count counter\n%s_count %d\n", n, n, a.count)
	}
	return nil
}

// promName maps a dotted metric name onto the Prometheus name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if ok {
			b.WriteByte(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}
