package obs

import (
	"fmt"
	"net/http"
)

// ServeHTTP makes the registry an http.Handler for long-running processes
// (cmd/ksasim -http). Three views, in the spirit of expvar:
//
//	GET /            plain-text human summary
//	GET /metrics     Prometheus text exposition
//	GET /vars        JSON object of counters and gauges
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if r == nil {
		http.Error(w, "observability disabled", http.StatusServiceUnavailable)
		return
	}
	switch req.URL.Path {
	case "/metrics":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	case "/vars":
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		cs, gs, _ := r.views()
		var b []byte
		b = append(b, '{')
		first := true
		for _, c := range cs {
			if !first {
				b = append(b, ',')
			}
			first = false
			b = appendJSONString(b, c.name)
			b = append(b, ':')
			b = fmt.Appendf(b, "%d", c.val)
		}
		for _, g := range gs {
			if !first {
				b = append(b, ',')
			}
			first = false
			b = appendJSONString(b, g.name)
			b = append(b, ':')
			b = fmt.Appendf(b, "%d", g.val)
		}
		b = append(b, '}', '\n')
		w.Write(b)
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.WriteSummary(w)
	}
}
