package obs

import (
	"context"
	"io"
	"testing"
)

// BenchmarkObsOverhead measures the hot-path recorders in the three states
// instrumented code can meet:
//
//	disabled:  nil registry — the recorders must cost nil checks only
//	           (0 allocs/op; this is the state of every run without
//	           -metrics/-events, so scheduler throughput is unaffected);
//	enabled:   registry attached, no event sink — atomic adds;
//	streaming: JSONL sink attached — the only state allowed to do work.
//
// EXPERIMENTS.md records the measured numbers alongside the end-to-end
// instrumented-vs-uninstrumented scheduler throughput.
func BenchmarkObsOverhead(b *testing.B) {
	run := func(b *testing.B, r *Registry) {
		c := r.Counter("bench.counter")
		g := r.Gauge("bench.gauge")
		h := r.Histogram("bench.hist", DefaultDepthBuckets...)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Inc()
			g.Set(int64(i))
			h.Observe(int64(i & 127))
			r.Emit("bench.event", Int("i", int64(i)), Str("kind", "send"))
		}
	}
	b.Run("disabled", func(b *testing.B) {
		run(b, nil)
	})
	b.Run("enabled", func(b *testing.B) {
		run(b, New())
	})
	b.Run("streaming", func(b *testing.B) {
		r := New()
		r.AttachEvents(NewEventLog(io.Discard))
		run(b, r)
	})

	// The trace-context path, in the states the serving hot path meets:
	// tracing off (nil registry, or registry without a traced context —
	// both must be 0 allocs/op) and tracing on (the only state allowed
	// to allocate: span id assignment plus the derived context).
	runTrace := func(b *testing.B, r *Registry, ctx context.Context) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sp, sctx := r.StartSpanCtx(ctx, "bench.request")
			cell, _ := r.StartSpanIfTraced(sctx, "bench.cell")
			cell.End()
			sp.End()
		}
	}
	b.Run("trace-disabled", func(b *testing.B) {
		runTrace(b, nil, context.Background())
	})
	b.Run("trace-untraced", func(b *testing.B) {
		// Registry live, no trace in ctx: StartSpanIfTraced must skip;
		// StartSpanCtx records a plain span (the sweep.wall case).
		runTrace(b, New(), context.Background())
	})
	b.Run("trace-enabled", func(b *testing.B) {
		runTrace(b, New(), ContextWithTrace(context.Background(), TraceContext{TraceID: "bench"}))
	})
}
