package obs

import "sync/atomic"

// Histogram is a fixed-bucket histogram over int64 observations (step
// latencies in microseconds, queue depths, messages per broadcast, ...).
// Bucket bounds are fixed at construction, so Observe is a linear scan
// over a small array of atomics: lock-free and allocation-free. A nil
// *Histogram is a no-op recorder.
type Histogram struct {
	// bounds are inclusive upper bounds; observations above the last bound
	// land in the overflow bucket.
	bounds   []int64
	buckets  []atomic.Int64 // len(bounds)+1, last is overflow (+Inf)
	count    atomic.Int64
	sum      atomic.Int64
	observed atomic.Int64 // max observation
}

// NewHistogram returns a standalone histogram with the given inclusive
// upper bounds, which must be strictly increasing.
func NewHistogram(bounds ...int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(bounds)+1)}
}

// DefaultDepthBuckets suits queue depths and per-phase step counts.
var DefaultDepthBuckets = []int64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 1024}

// DefaultLatencyBuckets suits microsecond latencies from sub-µs handler
// calls up to long phases.
var DefaultLatencyBuckets = []int64{1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 50000, 100000, 1000000}

// Observe records one observation.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.observed.Load()
		if v <= m || h.observed.CompareAndSwap(m, v) {
			break
		}
	}
}

// HistogramSnapshot is a plain copy of a histogram's state.
type HistogramSnapshot struct {
	Bounds []int64 // inclusive upper bounds; the final bucket is +Inf
	Counts []int64 // len(Bounds)+1
	Count  int64
	Sum    int64
	Max    int64
}

// Snapshot copies the current state (zero value on nil).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
		Max:    h.observed.Load(),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile estimates the q-th quantile of the observations by linear
// interpolation inside the bucket the quantile rank falls into
// (Prometheus histogram_quantile semantics): the bucket's observations
// are assumed uniformly spread between its lower and upper bound, so a
// p999 landing in a wide latency bucket is no longer quantized to the
// bucket edge. The bucketed exactness is kept where it existed before:
// a rank landing exactly on a bucket's last observation returns that
// bucket's upper bound, the overflow bucket reports Max (the largest
// observation ever seen), and the first bucket interpolates from 0
// (observations are assumed non-negative, as every histogram in this
// repository is).
//
// q is clamped to (0, 1]: q <= 0 behaves like the smallest recorded
// rank, q > 1 like the largest. An empty snapshot returns 0.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	target := q * float64(s.Count)
	if target < 1 {
		target = 1
	}
	if target > float64(s.Count) {
		target = float64(s.Count)
	}
	var cum int64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		prev := float64(cum)
		cum += c
		if float64(cum) < target {
			continue
		}
		if i >= len(s.Bounds) {
			return s.Max // overflow bucket: unbounded above, Max is honest
		}
		hi := s.Bounds[i]
		frac := (target - prev) / float64(c)
		if frac >= 1 {
			return hi // exact boundary hit: the pre-interpolation answer
		}
		var lo int64
		if i > 0 {
			lo = s.Bounds[i-1]
		} else if hi < 0 {
			lo = hi
		}
		return lo + int64(frac*float64(hi-lo))
	}
	return s.Max
}
