package obs

import (
	"io"
	"strconv"
	"sync"
	"time"
)

// Field is one key/value of a structured event. Fields are plain values —
// building them never allocates, and Emit does not retain them, so the
// variadic field slice stays on the caller's stack.
type Field struct {
	key   string
	str   string
	num   int64
	isStr bool
}

// Str builds a string-valued field.
func Str(key, val string) Field { return Field{key: key, str: val, isStr: true} }

// Int builds an integer-valued field.
func Int(key string, val int64) Field { return Field{key: key, num: val} }

// EventLog serializes structured events as JSONL: one JSON object per
// line, with "ts" (RFC3339Nano, UTC), "event", and the given fields, in
// order. Serialization is hand-rolled (no reflection, no encoding/json)
// so the enabled path allocates only when the internal buffer grows.
type EventLog struct {
	mu    sync.Mutex
	w     io.Writer
	buf   []byte
	count int64
	err   error
}

// NewEventLog wraps a writer. The caller owns the writer's lifetime
// (Close the underlying file after detaching the log).
func NewEventLog(w io.Writer) *EventLog {
	return &EventLog{w: w, buf: make([]byte, 0, 256)}
}

// Count returns the number of events written.
func (l *EventLog) Count() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// Err returns the first write error encountered, if any.
func (l *EventLog) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

func (l *EventLog) emit(event string, fields []Field) {
	now := time.Now().UTC()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buf[:0]
	b = append(b, `{"ts":"`...)
	b = now.AppendFormat(b, time.RFC3339Nano)
	b = append(b, `","event":`...)
	b = appendJSONString(b, event)
	for _, f := range fields {
		b = append(b, ',')
		b = appendJSONString(b, f.key)
		b = append(b, ':')
		if f.isStr {
			b = appendJSONString(b, f.str)
		} else {
			b = strconv.AppendInt(b, f.num, 10)
		}
	}
	b = append(b, '}', '\n')
	l.buf = b // keep the grown capacity
	if _, err := l.w.Write(b); err != nil && l.err == nil {
		l.err = err
	}
	l.count++
}

// AttachEvents connects an event sink; subsequent Emit calls stream to it.
// Attaching nil detaches (Emit becomes free again).
func (r *Registry) AttachEvents(l *EventLog) {
	if r == nil {
		return
	}
	r.events.Store(l)
}

// EventLogged returns the attached sink, or nil.
func (r *Registry) EventLogged() *EventLog {
	if r == nil {
		return nil
	}
	return r.events.Load()
}

// Emit records a structured event on the attached sink. With no sink (or
// a nil registry) it returns immediately without touching the fields —
// the disabled path is two pointer loads and costs no allocation.
func (r *Registry) Emit(event string, fields ...Field) {
	if r == nil {
		return
	}
	l := r.events.Load()
	if l == nil {
		return
	}
	l.emit(event, fields)
}

// appendJSONString appends s as a JSON string literal. Valid UTF-8 passes
// through; quotes, backslashes, and control characters are escaped.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '\t':
			b = append(b, '\\', 't')
		case c == '\r':
			b = append(b, '\\', 'r')
		case c < 0x20:
			const hex = "0123456789abcdef"
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}
