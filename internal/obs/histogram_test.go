package obs

import (
	"sync"
	"testing"
)

// quantileBucketed is the pre-interpolation Quantile: the upper bound of
// the bucket containing the target rank, Max for the overflow bucket.
// Kept verbatim as the reference the interpolation is pinned against.
func quantileBucketed(s HistogramSnapshot, q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	target := int64(q * float64(s.Count))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= target {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return s.Max
		}
	}
	return s.Max
}

// TestQuantileInterpolationVsBucketed pins old against new behavior on a
// wide latency bucket: 1000 observations all recorded in (1000, 100000].
// The bucketed quantile collapsed every percentile to the bucket edge
// 100000; interpolation spreads the ranks across the bucket — and the
// exact-boundary hit (q=1.0, rank == the bucket's last observation)
// still returns the edge, matching the old answer.
func TestQuantileInterpolationVsBucketed(t *testing.T) {
	h := NewHistogram(1000, 100000)
	for i := 0; i < 1000; i++ {
		h.Observe(50000)
	}
	s := h.Snapshot()

	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		if old := quantileBucketed(s, q); old != 100000 {
			t.Fatalf("bucketed q%g = %d, want the 100000 bucket edge", q, old)
		}
	}
	// Interpolated: rank q·1000 of 1000 uniform-assumed points in
	// (1000, 100000] sits at 1000 + q·99000.
	for _, tc := range []struct {
		q    float64
		want int64
	}{
		{0.5, 1000 + 49500},
		{0.9, 1000 + 89100},
		{0.999, 1000 + 98901},
	} {
		if got := s.Quantile(tc.q); got != tc.want {
			t.Errorf("interpolated q%g = %d, want %d", tc.q, got, tc.want)
		}
	}
	// Exact boundary hit: the very last rank is the bucket's last
	// observation, so old and new agree on the upper bound.
	if old, now := quantileBucketed(s, 1.0), s.Quantile(1.0); old != 100000 || now != 100000 {
		t.Errorf("boundary hit: bucketed=%d interpolated=%d, want 100000/100000", old, now)
	}
}

// TestQuantileExactBoundaryHits: whenever the target rank lands exactly
// on a bucket's cumulative count, interpolation must reproduce the
// bucketed answer (the bucket's upper bound).
func TestQuantileExactBoundaryHits(t *testing.T) {
	h := NewHistogram(10, 20, 30, 40)
	for _, v := range []int64{5, 5, 15, 15, 25, 25, 35, 35} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// 8 observations, 2 per bucket: ranks 2,4,6,8 are boundary hits.
	for i, q := range []float64{0.25, 0.5, 0.75, 1.0} {
		want := s.Bounds[i]
		if got, old := s.Quantile(q), quantileBucketed(s, q); got != want || old != want {
			t.Errorf("q%g: interpolated=%d bucketed=%d, want %d", q, got, old, want)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	t.Run("empty snapshot", func(t *testing.T) {
		var s HistogramSnapshot
		for _, q := range []float64{0, 0.5, 1, 2} {
			if got := s.Quantile(q); got != 0 {
				t.Errorf("empty Quantile(%g) = %d, want 0", q, got)
			}
		}
		if s = NewHistogram(1, 10).Snapshot(); s.Quantile(0.99) != 0 {
			t.Errorf("unobserved histogram Quantile = %d, want 0", s.Quantile(0.99))
		}
	})
	t.Run("single bucket", func(t *testing.T) {
		h := NewHistogram(100)
		h.Observe(7)
		s := h.Snapshot()
		// One observation: every quantile is a boundary hit on the only
		// bucket, so the bound comes back exactly.
		for _, q := range []float64{0.01, 0.5, 1} {
			if got := s.Quantile(q); got != 100 {
				t.Errorf("single-bucket Quantile(%g) = %d, want 100", q, got)
			}
		}
		h.Observe(7)
		h.Observe(7)
		h.Observe(7)
		// Rank 2 of 4 in (0-assumed, 100]: interpolates to 50.
		if got := h.Snapshot().Quantile(0.5); got != 50 {
			t.Errorf("single-bucket p50 of 4 = %d, want 50", got)
		}
	})
	t.Run("q=0 clamps to the first rank", func(t *testing.T) {
		h := NewHistogram(10, 100)
		h.Observe(5)
		h.Observe(50)
		s := h.Snapshot()
		if got, want := s.Quantile(0), s.Quantile(0.5); got != want {
			t.Errorf("Quantile(0) = %d, want the rank-1 value %d", got, want)
		}
	})
	t.Run("q>1 clamps to the last rank", func(t *testing.T) {
		h := NewHistogram(10, 100)
		h.Observe(5)
		h.Observe(50)
		h.Observe(5000)
		s := h.Snapshot()
		if got, want := s.Quantile(4.2), s.Quantile(1); got != want {
			t.Errorf("Quantile(4.2) = %d, want the q=1 value %d", got, want)
		}
		if got := s.Quantile(4.2); got != s.Max {
			t.Errorf("Quantile(4.2) = %d, want Max %d (overflow bucket)", got, s.Max)
		}
	})
	t.Run("overflow-only observations report Max", func(t *testing.T) {
		h := NewHistogram(1, 2)
		h.Observe(99)
		h.Observe(1000)
		s := h.Snapshot()
		if got := s.Quantile(0.5); got != 1000 {
			t.Errorf("overflow p50 = %d, want Max 1000", got)
		}
	})
}

// TestHistogramObserveWhileSnapshot exercises concurrent Observe against
// Snapshot/Quantile under the race detector: snapshots must be
// internally usable (never panic, quantiles within the observed range)
// while writers are live, and the final drained snapshot must be exact.
func TestHistogramObserveWhileSnapshot(t *testing.T) {
	h := NewHistogram(DefaultLatencyBuckets...)
	const writers, perWriter = 4, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				h.Observe(int64(j%997) * int64(w+1))
			}
		}(w)
	}
	var snaps int
	go func() {
		defer close(stop)
		wg.Wait()
	}()
	for {
		s := h.Snapshot()
		snaps++
		if s.Count > 0 {
			// A mid-flight snapshot is not field-atomic (Max may trail the
			// buckets), so the sound invariant is: the quantile is
			// non-negative and no larger than anything Quantile can return —
			// the snapshot Max or the last finite bucket bound.
			hi := s.Max
			if b := s.Bounds[len(s.Bounds)-1]; b > hi {
				hi = b
			}
			if q := s.Quantile(0.999); q < 0 || q > hi {
				t.Errorf("mid-flight p999 = %d outside [0, %d]", q, hi)
			}
		}
		select {
		case <-stop:
			final := h.Snapshot()
			if final.Count != writers*perWriter {
				t.Fatalf("final count = %d, want %d", final.Count, writers*perWriter)
			}
			var cum int64
			for _, c := range final.Counts {
				cum += c
			}
			if cum != final.Count {
				t.Fatalf("bucket sum = %d, count = %d", cum, final.Count)
			}
			if snaps == 0 {
				t.Fatal("no snapshots taken")
			}
			return
		default:
		}
	}
}
