package obs

import (
	"context"
	"math/rand/v2"
	"strconv"
)

// TraceContext names a position inside one request's span tree: the
// trace every span of the request shares, and the span id that acts as
// the parent of whatever is opened next. It travels through
// context.Context (ContextWithTrace / TraceFrom), so instrumentation
// layers that never see each other — the HTTP handler, the admission
// queue, the sweep worker pool, the runtimes — still stitch their spans
// into one connected tree.
//
// The zero TraceContext (empty TraceID) means "untraced"; storing it is
// a no-op. SpanID 0 is the root: spans opened under it emit no parent
// field.
type TraceContext struct {
	TraceID string
	SpanID  uint64
}

// traceKey is the private context key; TraceContext values are stored
// by value, so reading one back never aliases mutable state.
type traceKey struct{}

// ContextWithTrace returns a context carrying tc. An untraced tc
// returns ctx unchanged, so callers can thread possibly-empty trace
// contexts unconditionally.
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	if tc.TraceID == "" {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, tc)
}

// TraceFrom extracts the trace context from ctx. ok is false (and tc
// zero) on an untraced context. The lookup is one context walk and no
// allocation — cheap enough for hot paths that are usually untraced.
func TraceFrom(ctx context.Context) (tc TraceContext, ok bool) {
	tc, ok = ctx.Value(traceKey{}).(TraceContext)
	return tc, ok
}

// NewTraceID mints a fresh 16-hex-digit trace id. Ids only need to be
// unique among the traces one consumer correlates, not cryptographic,
// so a process-seeded PRNG draw is enough.
func NewTraceID() string {
	var buf [16]byte
	b := strconv.AppendUint(buf[:0], rand.Uint64()|1<<63, 16)
	return string(b)
}

// StartSpanCtx opens a named span like StartSpan and, when ctx carries
// a trace context, links it into the trace: the span gets the trace id,
// the context's span id as parent, and a fresh id of its own. The
// returned context carries the new span as parent, so nested
// StartSpanCtx calls build a tree. On an untraced ctx the span is a
// plain StartSpan span and ctx comes back unchanged; on a nil registry
// both returns are free ((nil, ctx), zero allocations).
func (r *Registry) StartSpanCtx(ctx context.Context, name string) (*Span, context.Context) {
	if r == nil {
		return nil, ctx
	}
	s := r.StartSpan(name)
	if tc, ok := TraceFrom(ctx); ok {
		s.trace = tc.TraceID
		s.parent = tc.SpanID
		s.span = r.spanSeq.Add(1)
		ctx = ContextWithTrace(ctx, TraceContext{TraceID: tc.TraceID, SpanID: s.span})
	}
	return s, ctx
}

// StartSpanIfTraced is StartSpanCtx for spans that only exist to serve
// a trace: on an untraced ctx (or nil registry) it records nothing and
// returns (nil, ctx) without allocating. Per-cell sweep spans and the
// serving path's queue/job spans use it so untraced runs — every CLI
// sweep, every request without tracing enabled — pay nil checks only.
func (r *Registry) StartSpanIfTraced(ctx context.Context, name string) (*Span, context.Context) {
	if r == nil {
		return nil, ctx
	}
	if _, ok := TraceFrom(ctx); !ok {
		return nil, ctx
	}
	return r.StartSpanCtx(ctx, name)
}
