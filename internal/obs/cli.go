package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
)

// CLI binds the observability flags every command shares:
//
//	-metrics        print a metrics summary after the run
//	-events <path>  stream structured JSONL events to a file
//
// The flow in a main: c := obs.BindFlags(fs); reg, err := c.Registry()
// (nil registry when neither flag is passed — everything downstream
// nil-checks for free); thread reg through the run; defer/call
// c.Finish(out) to print the summary and close the event log.
type CLI struct {
	// Metrics mirrors -metrics; Events mirrors -events.
	Metrics bool
	Events  string

	reg *Registry
	f   *os.File
	log *EventLog
}

// BindFlags registers the flags on fs and returns the handle.
func BindFlags(fs *flag.FlagSet) *CLI {
	c := &CLI{}
	fs.BoolVar(&c.Metrics, "metrics", false, "print a metrics summary (phase spans, counters, gauges, histograms) after the run")
	fs.StringVar(&c.Events, "events", "", "write structured JSONL events to this `path`")
	return c
}

// Registry builds (once) and returns the registry implied by the parsed
// flags: nil when observability was not requested, a plain registry for
// -metrics, and a registry with an attached JSONL sink for -events.
func (c *CLI) Registry() (*Registry, error) {
	if c == nil || (!c.Metrics && c.Events == "") {
		return nil, nil
	}
	if c.reg == nil {
		c.reg = New()
		if c.Events != "" {
			f, err := os.Create(c.Events)
			if err != nil {
				return nil, fmt.Errorf("obs: creating event log: %w", err)
			}
			c.f = f
			c.log = NewEventLog(f)
			c.reg.AttachEvents(c.log)
		}
	}
	return c.reg, nil
}

// Finish renders the -metrics summary to w and closes the -events file,
// reporting any deferred write error. Safe to call when no flag was set.
func (c *CLI) Finish(w io.Writer) error {
	if c == nil || c.reg == nil {
		return nil
	}
	if c.Metrics {
		if err := c.reg.WriteSummary(w); err != nil {
			return err
		}
	}
	if c.f != nil {
		c.reg.AttachEvents(nil)
		werr := c.log.Err()
		cerr := c.f.Close()
		c.f = nil
		if werr != nil {
			return fmt.Errorf("obs: event log: %w", werr)
		}
		if cerr != nil {
			return cerr
		}
		fmt.Fprintf(w, "%d events written to %s\n", c.log.Count(), c.Events)
	}
	return nil
}
