package sweep_test

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"nobroadcast/internal/adversary"
	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/sweep"
)

// e1Cell runs one cell of the E1 grid — the adversarial construction for
// one (k, N) point — and returns a summary line covering everything the
// experiment asserts on, plus a value drawn from the cell's own RNG so the
// test also exercises the seed-derivation path.
func e1Cell(cand broadcast.Candidate) func(context.Context, sweep.Pair, sweep.Cell) (string, error) {
	return func(_ context.Context, p sweep.Pair, c sweep.Cell) (string, error) {
		res, err := adversary.Run(adversary.Options{K: p.A, N: p.B, NewAutomaton: cand.NewAutomaton})
		if err != nil {
			return "", err
		}
		reports, ok := res.Verify()
		counted := 0
		for _, ms := range res.Counted {
			counted += len(ms)
		}
		return fmt.Sprintf("k=%d N=%d steps=%d resets=%d adoptions=%d counted=%d lemmas=%d ok=%t probe=%#x",
			p.A, p.B, res.Alpha.X.Len(), res.Resets, res.Adoptions, counted,
			len(reports), ok, c.RNG().Uint64()), nil
	}
}

// TestSweepDeterministicAcrossWorkerCounts is the engine's headline
// property: the aggregate result of a real grid — E1's adversarial
// construction over (k, N) points — is byte-identical whether the sweep
// runs serially, on 4 workers, or on GOMAXPROCS workers.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	t.Parallel()
	cand, err := broadcast.Lookup("kbo")
	if err != nil {
		t.Fatal(err)
	}
	grid := sweep.Pairs(sweep.Range(2, 4), sweep.Range(1, 3))
	cell := e1Cell(cand)

	aggregate := func(workers int) string {
		lines, err := sweep.Run(context.Background(), len(grid),
			sweep.Options{Workers: workers, Seed: 0xE1},
			func(ctx context.Context, c sweep.Cell) (string, error) {
				return cell(ctx, grid[c.Index], c)
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return strings.Join(lines, "\n")
	}

	serial := aggregate(1)
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		if got := aggregate(workers); got != serial {
			t.Errorf("aggregate at %d workers differs from serial run:\n--- serial ---\n%s\n--- %d workers ---\n%s",
				workers, serial, workers, got)
		}
	}
}
