package sweep_test

import (
	"context"
	"fmt"
	"testing"

	"nobroadcast/internal/adversary"
	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/conformance"
	"nobroadcast/internal/sweep"
)

// BenchmarkSweepE1 times the E1 grid — the adversarial construction over
// (k, N) points — at different worker counts. The grid cells are pure CPU
// (the deterministic runtime never sleeps), so the speedup tracks
// GOMAXPROCS: on a single-core host workers=4 is a wash, on a 4-core
// runner it approaches 4×.
func BenchmarkSweepE1(b *testing.B) {
	cand, err := broadcast.Lookup("kbo")
	if err != nil {
		b.Fatal(err)
	}
	grid := sweep.Pairs(sweep.Range(2, 5), sweep.Range(1, 4))
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := sweep.Run(context.Background(), len(grid),
					sweep.Options{Workers: workers, Seed: 0xE1},
					func(_ context.Context, c sweep.Cell) (int, error) {
						p := grid[c.Index]
						res, err := adversary.Run(adversary.Options{K: p.A, N: p.B, NewAutomaton: cand.NewAutomaton})
						if err != nil {
							return 0, err
						}
						return res.Alpha.X.Len(), nil
					})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSweepConformance times the differential corpus at different
// worker counts. Corpus cells are latency-bound, not CPU-bound — the
// concurrent runtime spends most of each cell waiting out message delays —
// so overlapping cells pays even on a single core: this is the bench that
// demonstrates the sweep engine's wall-clock win on any host.
func BenchmarkSweepConformance(b *testing.B) {
	cfgs := conformance.Corpus(7)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := conformance.RunCorpus(context.Background(), cfgs, workers, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
