// Package sweep runs parameter grids — (candidate, k, N, seed, …) cells —
// across a bounded worker pool while keeping the aggregate result
// bit-identical to a serial run. Determinism under parallelism rests on two
// rules:
//
//  1. Every cell's randomness comes from a generator seeded by
//     rng.Derive(root, index) — a pure function of the sweep's root seed
//     and the cell's position, independent of which worker runs the cell
//     or in what order.
//  2. Results land in a slice indexed by cell position, so collection
//     order is the cell order, not completion order.
//
// A cell that panics is captured (value plus stack) and surfaced as a
// structured *CellError rather than tearing the pool down; with
// Options.FailFast the first failure cancels the remaining cells instead.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"nobroadcast/internal/obs"
	"nobroadcast/internal/rng"
)

// Options configures one sweep.
type Options struct {
	// Workers bounds the number of cells in flight. Zero or negative means
	// runtime.GOMAXPROCS(0).
	Workers int
	// Seed is the root seed; cell i runs with Seed derived as
	// rng.Derive(Seed, i). The worker count never enters the derivation.
	Seed uint64
	// FailFast cancels outstanding cells after the first failure. Without
	// it every cell runs and all failures are reported together.
	FailFast bool
	// Obs, when non-nil, receives sweep instrumentation: counters
	// sweep.cells_started / sweep.cells_completed / sweep.cells_failed and
	// sweep.busy_ns (summed per-cell wall time, for wall-vs-cpu
	// comparison), gauge sweep.inflight, and a "sweep.wall" span per Run.
	Obs *obs.Registry
}

// Cell identifies one unit of sweep work: its position in the grid and the
// seed every run of that position receives.
type Cell struct {
	Index int
	Seed  uint64
}

// RNG returns a fresh generator for the cell. Multiple calls return
// generators with identical streams.
func (c Cell) RNG() *rng.Source { return rng.New(c.Seed) }

// CellError wraps a failure of one cell with its position.
type CellError struct {
	Index int
	Err   error
}

func (e *CellError) Error() string { return fmt.Sprintf("cell %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying error to errors.Is / errors.As.
func (e *CellError) Unwrap() error { return e.Err }

// PanicError is the error a panicking cell is converted to.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// Errors aggregates every failed cell of a sweep, ordered by cell index.
type Errors []*CellError

func (es Errors) Error() string {
	if len(es) == 1 {
		return es[0].Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d cells failed:", len(es))
	for _, e := range es {
		b.WriteString("\n\t")
		b.WriteString(e.Error())
	}
	return b.String()
}

// Unwrap exposes the individual cell errors to errors.Is / errors.As.
func (es Errors) Unwrap() []error {
	out := make([]error, len(es))
	for i, e := range es {
		out[i] = e
	}
	return out
}

// Run evaluates fn over cells 0..n-1 on a bounded worker pool and returns
// the results in cell order. The returned slice always has length n; a
// cell that failed (or was cancelled) leaves the zero T at its index.
//
// The error is nil when every cell succeeded; otherwise it is an Errors
// listing every failed cell by index. Cancellation — the caller's ctx, or
// fail-fast after a first failure — surfaces as cells failing with
// context.Canceled.
//
// fn must be safe to call from multiple goroutines for distinct cells.
// Determinism contract: if fn's output depends only on its Cell (using
// Cell.Seed / Cell.RNG for all randomness), the returned slice is
// bit-identical for every worker count.
func Run[T any](ctx context.Context, n int, opts Options, fn func(ctx context.Context, c Cell) (T, error)) ([]T, error) {
	results := make([]T, max(n, 0))
	if n <= 0 {
		return results, nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	reg := opts.Obs
	started := reg.Counter("sweep.cells_started")
	completed := reg.Counter("sweep.cells_completed")
	failed := reg.Counter("sweep.cells_failed")
	busyNS := reg.Counter("sweep.busy_ns")
	inflight := reg.Gauge("sweep.inflight")
	// The wall span joins the caller's trace when ctx carries one (the
	// serving path), so per-request span trees extend into the pool;
	// untraced callers get the same standalone sweep.wall span as before.
	span, ctx := reg.StartSpanCtx(ctx, "sweep.wall")
	defer span.End()

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		failures Errors
		wg       sync.WaitGroup
	)
	fail := func(i int, err error) {
		mu.Lock()
		failures = append(failures, &CellError{Index: i, Err: err})
		mu.Unlock()
		failed.Inc()
		if opts.FailFast {
			cancel()
		}
	}

	// runCell isolates the recover scope so a panic in fn aborts only the
	// cell, not the worker. Traced runs get a per-cell span nested under
	// sweep.wall (and pass the derived context on, so spans fn opens nest
	// under the cell); untraced runs skip the span entirely — a grid of
	// thousands of cells must not accumulate thousands of span records.
	runCell := func(c Cell) (result T, err error) {
		cellSpan, cctx := reg.StartSpanIfTraced(ctx, "sweep.cell")
		defer cellSpan.End()
		defer func() {
			if v := recover(); v != nil {
				err = &PanicError{Value: v, Stack: debug.Stack()}
			}
		}()
		return fn(cctx, c)
	}

	idx := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				// A cell handed over concurrently with cancellation is
				// failed, not run: after fail-fast fires, no further fn
				// call starts.
				if ctx.Err() != nil {
					fail(i, context.Cause(ctx))
					continue
				}
				started.Inc()
				inflight.Inc()
				t0 := time.Now()
				v, err := runCell(Cell{Index: i, Seed: rng.Derive(opts.Seed, uint64(i))})
				busyNS.Add(time.Since(t0).Nanoseconds())
				inflight.Dec()
				if err != nil {
					fail(i, err)
				} else {
					results[i] = v
					completed.Inc()
				}
			}
		}()
	}

feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			// Cells never handed to a worker fail with the cancellation
			// cause, so callers can tell "not run" from "ran and failed".
			for ; i < n; i++ {
				fail(i, context.Cause(ctx))
			}
			break feed
		}
	}
	close(idx)
	wg.Wait()

	if len(failures) == 0 {
		return results, nil
	}
	sort.Slice(failures, func(a, b int) bool { return failures[a].Index < failures[b].Index })
	return results, failures
}

// Range returns the inclusive integer range lo..hi as a slice (empty when
// hi < lo), a convenience for building sweep grids.
func Range(lo, hi int) []int {
	if hi < lo {
		return nil
	}
	out := make([]int, 0, hi-lo+1)
	for v := lo; v <= hi; v++ {
		out = append(out, v)
	}
	return out
}

// Pair is one point of a two-axis grid.
type Pair struct{ A, B int }

// Pairs returns the row-major cross product a × b: the cell order every
// two-axis sweep in this repository uses.
func Pairs(a, b []int) []Pair {
	out := make([]Pair, 0, len(a)*len(b))
	for _, x := range a {
		for _, y := range b {
			out = append(out, Pair{A: x, B: y})
		}
	}
	return out
}

// IsCancelled reports whether err (possibly an Errors aggregate) is due
// solely to cancellation rather than real cell failures.
func IsCancelled(err error) bool {
	var es Errors
	if !errors.As(err, &es) {
		return errors.Is(err, context.Canceled)
	}
	for _, e := range es {
		if !errors.Is(e.Err, context.Canceled) {
			return false
		}
	}
	return len(es) > 0
}
