package sweep

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"nobroadcast/internal/obs"
	"nobroadcast/internal/rng"
)

func TestRunCollectsInCellOrder(t *testing.T) {
	t.Parallel()
	for _, workers := range []int{1, 3, 8} {
		got, err := Run(context.Background(), 100, Options{Workers: workers},
			func(_ context.Context, c Cell) (int, error) { return c.Index * c.Index, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: results[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunEmptyAndNegative(t *testing.T) {
	t.Parallel()
	for _, n := range []int{0, -3} {
		got, err := Run(context.Background(), n, Options{},
			func(_ context.Context, _ Cell) (int, error) { return 1, nil })
		if err != nil || len(got) != 0 {
			t.Errorf("n=%d: got %v, %v; want empty, nil", n, got, err)
		}
	}
}

func TestRunSeedsAreWorkerIndependent(t *testing.T) {
	t.Parallel()
	const root = 42
	collect := func(workers int) []uint64 {
		seeds, err := Run(context.Background(), 64, Options{Workers: workers, Seed: root},
			func(_ context.Context, c Cell) (uint64, error) { return c.Seed, nil })
		if err != nil {
			t.Fatal(err)
		}
		return seeds
	}
	base := collect(1)
	for i, s := range base {
		if want := rng.Derive(root, uint64(i)); s != want {
			t.Fatalf("cell %d seed = %#x, want Derive = %#x", i, s, want)
		}
	}
	for _, workers := range []int{4, 16} {
		for i, s := range collect(workers) {
			if s != base[i] {
				t.Fatalf("workers=%d: cell %d seed differs from serial run", workers, i)
			}
		}
	}
}

func TestRunCapturesPanics(t *testing.T) {
	t.Parallel()
	got, err := Run(context.Background(), 5, Options{Workers: 2},
		func(_ context.Context, c Cell) (int, error) {
			if c.Index == 3 {
				panic("boom in cell three")
			}
			return c.Index, nil
		})
	var es Errors
	if !errors.As(err, &es) || len(es) != 1 {
		t.Fatalf("err = %v, want Errors with one cell", err)
	}
	if es[0].Index != 3 {
		t.Errorf("failed cell = %d, want 3", es[0].Index)
	}
	var pe *PanicError
	if !errors.As(es[0], &pe) {
		t.Fatalf("cell error %v does not unwrap to *PanicError", es[0])
	}
	if pe.Value != "boom in cell three" {
		t.Errorf("panic value = %v", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "sweep") {
		t.Error("panic stack not captured")
	}
	// The pool survived: every other cell still produced its result.
	for _, i := range []int{0, 1, 2, 4} {
		if got[i] != i {
			t.Errorf("results[%d] = %d after unrelated panic", i, got[i])
		}
	}
}

func TestRunAggregatesAllFailuresByIndex(t *testing.T) {
	t.Parallel()
	sentinel := errors.New("odd cell")
	_, err := Run(context.Background(), 10, Options{Workers: 4},
		func(_ context.Context, c Cell) (int, error) {
			if c.Index%2 == 1 {
				return 0, fmt.Errorf("cell says: %w", sentinel)
			}
			return c.Index, nil
		})
	var es Errors
	if !errors.As(err, &es) || len(es) != 5 {
		t.Fatalf("err = %v, want 5 aggregated failures", err)
	}
	for i, e := range es {
		if want := 2*i + 1; e.Index != want {
			t.Errorf("failures[%d].Index = %d, want %d (sorted by cell)", i, e.Index, want)
		}
		if !errors.Is(e, sentinel) {
			t.Errorf("failures[%d] does not unwrap to the sentinel", i)
		}
	}
	if !errors.Is(err, sentinel) {
		t.Error("aggregate Errors does not unwrap to the sentinel")
	}
}

func TestRunFailFastCancelsRemainingCells(t *testing.T) {
	t.Parallel()
	// One worker makes the schedule sequential: cell 2 fails, so cells
	// 3..9 must be cancelled without running.
	ran := make([]bool, 10)
	_, err := Run(context.Background(), 10, Options{Workers: 1, FailFast: true},
		func(_ context.Context, c Cell) (int, error) {
			ran[c.Index] = true
			if c.Index == 2 {
				return 0, errors.New("fatal cell")
			}
			return c.Index, nil
		})
	var es Errors
	if !errors.As(err, &es) {
		t.Fatalf("err = %v, want Errors", err)
	}
	if len(es) != 8 {
		t.Fatalf("got %d failures, want 8 (the fatal cell plus 7 cancelled)", len(es))
	}
	if es[0].Index != 2 || es[0].Err.Error() != "fatal cell" {
		t.Errorf("first failure = %v, want the fatal cell", es[0])
	}
	for i := 3; i < 10; i++ {
		if ran[i] {
			t.Errorf("cell %d ran after fail-fast cancellation", i)
		}
		if !errors.Is(es[i-2], context.Canceled) {
			t.Errorf("cell %d error = %v, want context.Canceled", i, es[i-2].Err)
		}
	}
}

func TestRunHonorsCallerCancellation(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, err := Run(ctx, 4, Options{Workers: 2},
		func(_ context.Context, c Cell) (int, error) { return c.Index + 1, nil })
	if len(got) != 4 {
		t.Fatalf("len(results) = %d, want 4 (zero-filled)", len(got))
	}
	if !IsCancelled(err) {
		t.Fatalf("err = %v, want pure cancellation", err)
	}
	var es Errors
	if !errors.As(err, &es) || len(es) != 4 {
		t.Fatalf("err = %v, want 4 cancelled cells", err)
	}
}

func TestIsCancelledDistinguishesRealFailures(t *testing.T) {
	t.Parallel()
	if IsCancelled(nil) {
		t.Error("IsCancelled(nil)")
	}
	mixed := Errors{
		{Index: 0, Err: context.Canceled},
		{Index: 1, Err: errors.New("real")},
	}
	if IsCancelled(mixed) {
		t.Error("IsCancelled true on a mix of cancellations and real failures")
	}
	pure := Errors{{Index: 0, Err: context.Canceled}}
	if !IsCancelled(pure) {
		t.Error("IsCancelled false on pure cancellation")
	}
}

func TestRunObsInstrumentation(t *testing.T) {
	t.Parallel()
	reg := obs.New()
	_, err := Run(context.Background(), 8, Options{Workers: 2, Obs: reg},
		func(_ context.Context, c Cell) (int, error) {
			if c.Index == 5 {
				return 0, errors.New("one failure")
			}
			return 0, nil
		})
	if err == nil {
		t.Fatal("expected one failure")
	}
	if v := reg.Counter("sweep.cells_started").Value(); v != 8 {
		t.Errorf("cells_started = %d, want 8", v)
	}
	if v := reg.Counter("sweep.cells_completed").Value(); v != 7 {
		t.Errorf("cells_completed = %d, want 7", v)
	}
	if v := reg.Counter("sweep.cells_failed").Value(); v != 1 {
		t.Errorf("cells_failed = %d, want 1", v)
	}
	if v := reg.Gauge("sweep.inflight").Value(); v != 0 {
		t.Errorf("inflight = %d after Run returned", v)
	}
	if m := reg.Gauge("sweep.inflight").Max(); m < 1 || m > 2 {
		t.Errorf("inflight max = %d, want within worker bound 2", m)
	}
	spans := reg.Spans()
	if len(spans) != 1 || spans[0].Name != "sweep.wall" {
		t.Fatalf("spans = %v, want one sweep.wall", spans)
	}
	if reg.Counter("sweep.busy_ns").Value() < 0 {
		t.Error("busy_ns negative")
	}
}

// TestRunTracedSpans: under a traced context the pool emits one
// sweep.cell span per cell, parented on the sweep.wall span, all
// sharing the caller's trace id — and the derived context reaches fn so
// deeper instrumentation keeps nesting.
func TestRunTracedSpans(t *testing.T) {
	t.Parallel()
	reg := obs.New()
	ctx := obs.ContextWithTrace(context.Background(), obs.TraceContext{TraceID: "sweep-test"})
	_, err := Run(ctx, 4, Options{Workers: 2, Obs: reg},
		func(cctx context.Context, c Cell) (int, error) {
			tc, ok := obs.TraceFrom(cctx)
			if !ok || tc.TraceID != "sweep-test" || tc.SpanID == 0 {
				t.Errorf("cell %d: fn context not traced: %+v ok=%v", c.Index, tc, ok)
			}
			return c.Index, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	var wall obs.SpanRecord
	cells := 0
	for _, s := range reg.Spans() {
		switch s.Name {
		case "sweep.wall":
			wall = s
		case "sweep.cell":
			cells++
		}
	}
	if wall.Trace != "sweep-test" || wall.Span == 0 {
		t.Fatalf("sweep.wall not trace-linked: %+v", wall)
	}
	if cells != 4 {
		t.Fatalf("sweep.cell spans = %d, want 4", cells)
	}
	for _, s := range reg.Spans() {
		if s.Name == "sweep.cell" && (s.Trace != "sweep-test" || s.Parent != wall.Span) {
			t.Errorf("cell span not parented on wall: %+v (wall span %d)", s, wall.Span)
		}
	}
}

func TestRangeAndPairs(t *testing.T) {
	t.Parallel()
	if got := Range(2, 5); len(got) != 4 || got[0] != 2 || got[3] != 5 {
		t.Errorf("Range(2,5) = %v", got)
	}
	if got := Range(3, 3); len(got) != 1 || got[0] != 3 {
		t.Errorf("Range(3,3) = %v", got)
	}
	if got := Range(5, 2); got != nil {
		t.Errorf("Range(5,2) = %v, want nil", got)
	}
	ps := Pairs([]int{1, 2}, []int{10, 20, 30})
	want := []Pair{{1, 10}, {1, 20}, {1, 30}, {2, 10}, {2, 20}, {2, 30}}
	if len(ps) != len(want) {
		t.Fatalf("Pairs = %v", ps)
	}
	for i := range want {
		if ps[i] != want[i] {
			t.Errorf("Pairs[%d] = %v, want %v (row-major)", i, ps[i], want[i])
		}
	}
}

func TestParseRange(t *testing.T) {
	t.Parallel()
	cases := []struct {
		in     string
		lo, hi int
		ok     bool
	}{
		{"3", 3, 3, true},
		{"2..5", 2, 5, true},
		{" 2 .. 5 ", 2, 5, true},
		{"7..7", 7, 7, true},
		{"5..2", 0, 0, false},
		{"", 0, 0, false},
		{"a..b", 0, 0, false},
		{"2..", 0, 0, false},
		{"-3", 0, 0, false},
		{"-2..5", 0, 0, false},
		{"-5..-2", 0, 0, false},
		{"2..100000000", 0, 0, false},
	}
	for _, c := range cases {
		lo, hi, err := ParseRange(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseRange(%q) err = %v, want ok=%t", c.in, err, c.ok)
			continue
		}
		if c.ok && (lo != c.lo || hi != c.hi) {
			t.Errorf("ParseRange(%q) = %d..%d, want %d..%d", c.in, lo, hi, c.lo, c.hi)
		}
	}
}

// TestParseRangeSpanCap: an unbounded span fails with a structured
// *SpanError before any grid is allocated, and the cap is configurable.
func TestParseRangeSpanCap(t *testing.T) {
	t.Parallel()
	_, _, err := ParseRange("2..100000000")
	var se *SpanError
	if !errors.As(err, &se) {
		t.Fatalf("ParseRange err = %v, want *SpanError", err)
	}
	if se.Lo != 2 || se.Hi != 100000000 || se.MaxCells != DefaultMaxSpan {
		t.Errorf("SpanError = %+v", se)
	}
	if _, _, err := ParseRangeMax("1..10", 5); err == nil {
		t.Error("ParseRangeMax(1..10, 5) accepted a span over the cap")
	}
	if lo, hi, err := ParseRangeMax("1..5", 5); err != nil || lo != 1 || hi != 5 {
		t.Errorf("ParseRangeMax(1..5, 5) = %d..%d, %v; want 1..5", lo, hi, err)
	}
}

func TestCellRNGIsReplayable(t *testing.T) {
	t.Parallel()
	c := Cell{Index: 7, Seed: rng.Derive(99, 7)}
	a, b := c.RNG(), c.RNG()
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("two RNGs from the same cell diverge")
		}
	}
}
