package sweep

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseRange parses the CLI grid-axis syntax: a single integer "3" (a
// one-point range) or an inclusive span "2..5". The span must be ascending.
func ParseRange(s string) (lo, hi int, err error) {
	if a, b, ok := strings.Cut(s, ".."); ok {
		lo, err = strconv.Atoi(strings.TrimSpace(a))
		if err != nil {
			return 0, 0, fmt.Errorf("sweep: bad range %q: %v", s, err)
		}
		hi, err = strconv.Atoi(strings.TrimSpace(b))
		if err != nil {
			return 0, 0, fmt.Errorf("sweep: bad range %q: %v", s, err)
		}
		if hi < lo {
			return 0, 0, fmt.Errorf("sweep: descending range %q", s)
		}
		return lo, hi, nil
	}
	lo, err = strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return 0, 0, fmt.Errorf("sweep: bad range %q: %v", s, err)
	}
	return lo, lo, nil
}
