package sweep

import (
	"fmt"
	"strconv"
	"strings"
)

// DefaultMaxSpan caps the number of grid points a single parsed range may
// produce when the caller does not choose its own bound. A sweep axis is
// a handful-to-thousands of cells; a span like "2..100000000" is a typo
// (or abuse, once ranges arrive over HTTP) that would otherwise allocate
// the whole grid before any downstream validation runs.
const DefaultMaxSpan = 1 << 20

// SpanError is the structured rejection of a range whose point count
// exceeds the cap. Callers can errors.As it out to report the offending
// bounds and limit (an HTTP layer would map it to 400, not OOM).
type SpanError struct {
	Range    string
	Lo, Hi   int
	Span     int
	MaxCells int
}

func (e *SpanError) Error() string {
	return fmt.Sprintf("sweep: range %q spans %d points, exceeding the cap of %d cells", e.Range, e.Span, e.MaxCells)
}

// ParseRange parses the CLI grid-axis syntax: a single integer "3" (a
// one-point range) or an inclusive span "2..5". The span must be
// ascending, its low bound non-negative, and its point count within
// DefaultMaxSpan (use ParseRangeMax to pick the cap).
func ParseRange(s string) (lo, hi int, err error) {
	return ParseRangeMax(s, DefaultMaxSpan)
}

// ParseRangeMax is ParseRange with a caller-chosen cap on the number of
// points the range may span; maxCells <= 0 selects DefaultMaxSpan. An
// oversized span fails with a *SpanError before anything is allocated.
func ParseRangeMax(s string, maxCells int) (lo, hi int, err error) {
	if maxCells <= 0 {
		maxCells = DefaultMaxSpan
	}
	if a, b, ok := strings.Cut(s, ".."); ok {
		lo, err = strconv.Atoi(strings.TrimSpace(a))
		if err != nil {
			return 0, 0, fmt.Errorf("sweep: bad range %q: %v", s, err)
		}
		hi, err = strconv.Atoi(strings.TrimSpace(b))
		if err != nil {
			return 0, 0, fmt.Errorf("sweep: bad range %q: %v", s, err)
		}
	} else {
		lo, err = strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return 0, 0, fmt.Errorf("sweep: bad range %q: %v", s, err)
		}
		hi = lo
	}
	if lo < 0 {
		return 0, 0, fmt.Errorf("sweep: range %q has negative low bound %d", s, lo)
	}
	if hi < lo {
		return 0, 0, fmt.Errorf("sweep: descending range %q", s)
	}
	if span := hi - lo + 1; span > maxCells {
		return 0, 0, &SpanError{Range: s, Lo: lo, Hi: hi, Span: span, MaxCells: maxCells}
	}
	return lo, hi, nil
}
