package sharedmem

import (
	"fmt"

	"nobroadcast/internal/model"
)

// This file implements Commit-Adopt (also known as graded agreement), the
// classical wait-free shared-memory building block of set-agreement
// algorithms (Gafni's rounds, and the adopt-commit objects used by the
// k-SA constructions the paper's Section 1.3 points to).
//
// A commit-adopt object offers one operation, propose(v), returning a pair
// (grade, value) with grade ∈ {Adopt, Commit} such that:
//
//   - CA-Validity: the returned value was proposed by some process;
//   - CA-Commitment: if every proposer proposes the same value, every
//     returned grade is Commit;
//   - CA-Agreement: if any process returns (Commit, v), every process
//     returns value v (with either grade).
//
// The two-phase register implementation: phase 1, write your proposal and
// collect; if the collect is unanimous, carry the value as "clean"; phase
// 2, write (clean, value) and collect; commit if every phase-2 entry seen
// is clean with your value, adopt a clean value if one is seen, else keep
// your own.

// Grade is the commit-adopt outcome grade.
type Grade int

// The grades.
const (
	// Adopt means the value must be carried to the next round.
	Adopt Grade = iota + 1
	// Commit means the value is decided: every other process at least
	// adopted it.
	Commit
)

// String names the grade.
func (g Grade) String() string {
	switch g {
	case Adopt:
		return "adopt"
	case Commit:
		return "commit"
	default:
		return fmt.Sprintf("Grade(%d)", int(g))
	}
}

// CAOutput is one commit-adopt result.
type CAOutput struct {
	Proc  model.ProcID
	Grade Grade
	Val   Value
}

// caPhase1 and caPhase2 name the object's register arrays; a tag keeps
// distinct objects apart.
func caPhase1(tag string) string { return "ca1-" + tag }
func caPhase2(tag string) string { return "ca2-" + tag }

// cleanMark prefixes phase-2 values written by processes that saw a
// unanimous phase 1.
const cleanMark = "C|"

// CommitAdopt executes the two-phase commit-adopt protocol for the object
// named tag with proposal v, using the calling process's Env. Proposals
// must be non-empty.
func CommitAdopt(env *Env, tag string, v Value) CAOutput {
	// Phase 1: publish the proposal, then collect.
	env.Write(caPhase1(tag), v)
	seen := env.Collect(caPhase1(tag))
	unanimous := true
	for _, o := range seen {
		if o != "" && o != v {
			unanimous = false
			break
		}
	}
	// Phase 2: publish (clean?, value), then collect.
	p2 := Value(string(v))
	if unanimous {
		p2 = Value(cleanMark + string(v))
	}
	env.Write(caPhase2(tag), p2)
	seen2 := env.Collect(caPhase2(tag))

	allCleanMine := true
	var cleanVal Value
	hasClean := false
	for _, o := range seen2 {
		if o == "" {
			continue
		}
		s := string(o)
		if len(s) >= len(cleanMark) && s[:len(cleanMark)] == cleanMark {
			val := Value(s[len(cleanMark):])
			hasClean = true
			cleanVal = val
			if val != v {
				allCleanMine = false
			}
		} else {
			allCleanMine = false
		}
	}
	switch {
	case allCleanMine && unanimous:
		return CAOutput{Proc: env.ID(), Grade: Commit, Val: v}
	case hasClean:
		return CAOutput{Proc: env.ID(), Grade: Adopt, Val: cleanVal}
	default:
		return CAOutput{Proc: env.ID(), Grade: Adopt, Val: v}
	}
}

// RunCommitAdopt runs one commit-adopt object for n processes with the
// given proposals under the options, returning the outputs of processes
// that completed.
func RunCommitAdopt(inputs []Value, opts RunOptions) ([]CAOutput, error) {
	for i, in := range inputs {
		if in == "" {
			return nil, fmt.Errorf("sharedmem: input of p%d is empty", i+1)
		}
	}
	outs := make([]CAOutput, 0, len(inputs))
	programs := make([]Program, len(inputs))
	for i, in := range inputs {
		in := in
		programs[i] = func(env *Env) {
			outs = append(outs, CommitAdopt(env, "obj", in))
		}
	}
	if _, err := Run(1, programs, opts); err != nil {
		return nil, err
	}
	return outs, nil
}

// CheckCommitAdopt verifies the three commit-adopt properties on a set of
// outputs given the proposals.
func CheckCommitAdopt(inputs []Value, outs []CAOutput) error {
	proposed := make(map[Value]bool, len(inputs))
	allSame := true
	for _, in := range inputs {
		proposed[in] = true
		if in != inputs[0] {
			allSame = false
		}
	}
	var committed Value
	hasCommit := false
	for _, o := range outs {
		if !proposed[o.Val] {
			return fmt.Errorf("sharedmem: %v returned unproposed %q (CA-Validity)", o.Proc, o.Val)
		}
		if o.Grade != Adopt && o.Grade != Commit {
			return fmt.Errorf("sharedmem: %v returned invalid grade %v", o.Proc, o.Grade)
		}
		if allSame && o.Grade != Commit {
			return fmt.Errorf("sharedmem: unanimous proposals but %v only adopted (CA-Commitment)", o.Proc)
		}
		if o.Grade == Commit {
			if hasCommit && committed != o.Val {
				return fmt.Errorf("sharedmem: two different values committed: %q and %q", committed, o.Val)
			}
			hasCommit = true
			committed = o.Val
		}
	}
	if hasCommit {
		for _, o := range outs {
			if o.Val != committed {
				return fmt.Errorf("sharedmem: %q committed but %v returned %q (CA-Agreement)", committed, o.Proc, o.Val)
			}
		}
	}
	return nil
}
