package sharedmem

import (
	"fmt"
	"sort"

	"nobroadcast/internal/model"
)

// This file implements the shared-memory equivalence the paper's Section
// 1.3 builds its contrast on: k-set agreement and k-simultaneous consensus
// (k-SC) are equivalent in the crash-prone asynchronous read/write model
// (Afek, Gafni, Rajsbaum, Raynal, Travers [1]), while in message passing
// k-SC is strictly harder than k-SA (Bouzid, Travers [6]).
//
// k-simultaneous consensus gives each process one operation that returns a
// pair (i, v), 1 ≤ i ≤ k, such that any two processes returning the same
// index i return the same value v, and every returned value was proposed.
//
// The construction of k-SC from one k-SA object and atomic snapshots:
//
//  1. w := KSA.propose(input)          — at most k distinct w exist;
//  2. write w into your slot of a shared array;
//  3. V := snapshot(array)             — the set of values written so far.
//
// Atomic-snapshot views are totally ordered by containment, so two
// processes whose views contain the same number of distinct values have
// the same view; returning (|V|, max(V)) therefore satisfies index
// agreement, and 1 ≤ |V| ≤ k because only k-SA decisions are written.
//
// The reverse direction is immediate: k-SC's value component solves k-SA.

// KSCOutput is the result of a k-simultaneous-consensus invocation.
type KSCOutput struct {
	Proc  model.ProcID
	Index int
	Val   Value
}

// kscArray is the shared array name used by the construction.
const kscArray = "ksc-decided"

// kscObject is the k-SA object backing the construction.
const kscObject model.KSAID = 1

// KSCProgram returns the program run by one process to execute the k-SC
// construction with the given input; the output is delivered through the
// out callback (invoked at most once, before the program returns).
// Inputs must be non-empty (the empty value marks unwritten registers).
func KSCProgram(input Value, out func(KSCOutput)) Program {
	return func(env *Env) {
		w := env.Propose(kscObject, input)
		env.Write(kscArray, w)
		view := env.Snapshot(kscArray)
		distinct := distinctNonEmpty(view)
		out(KSCOutput{
			Proc:  env.ID(),
			Index: len(distinct),
			Val:   distinct[len(distinct)-1], // max, by sortedness
		})
	}
}

// distinctNonEmpty returns the sorted distinct non-empty values of a view.
func distinctNonEmpty(view []Value) []Value {
	set := make(map[Value]bool, len(view))
	for _, v := range view {
		if v != "" {
			set[v] = true
		}
	}
	out := make([]Value, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RunKSC runs the k-SC construction for n processes with the given inputs
// under the options, returning the outputs of the processes that
// completed. This is the k-SA → k-SC direction of the equivalence.
func RunKSC(k int, inputs []Value, opts RunOptions) ([]KSCOutput, error) {
	for i, in := range inputs {
		if in == "" {
			return nil, fmt.Errorf("sharedmem: input of p%d is empty; non-empty inputs required", i+1)
		}
	}
	outs := make([]KSCOutput, 0, len(inputs))
	programs := make([]Program, len(inputs))
	for i, in := range inputs {
		programs[i] = KSCProgram(in, func(o KSCOutput) { outs = append(outs, o) })
	}
	if _, err := Run(k, programs, opts); err != nil {
		return nil, err
	}
	return outs, nil
}

// CheckKSC verifies the three k-SC properties on a set of outputs:
// index range (1 ≤ i ≤ k), index agreement (same index ⇒ same value), and
// validity (every value was proposed).
func CheckKSC(k int, inputs []Value, outs []KSCOutput) error {
	proposed := make(map[Value]bool, len(inputs))
	for _, in := range inputs {
		proposed[in] = true
	}
	byIndex := make(map[int]Value)
	for _, o := range outs {
		if o.Index < 1 || o.Index > k {
			return fmt.Errorf("sharedmem: %v returned index %d outside [1,%d]", o.Proc, o.Index, k)
		}
		if !proposed[o.Val] {
			return fmt.Errorf("sharedmem: %v returned unproposed value %q", o.Proc, o.Val)
		}
		if prev, ok := byIndex[o.Index]; ok && prev != o.Val {
			return fmt.Errorf("sharedmem: index %d maps to both %q and %q", o.Index, prev, o.Val)
		}
		byIndex[o.Index] = o.Val
	}
	return nil
}

// RunKSAFromKSC runs the k-SC → k-SA direction: each process executes the
// k-SC construction and decides the value component. It returns the
// per-process decisions of completing processes.
func RunKSAFromKSC(k int, inputs []Value, opts RunOptions) (map[model.ProcID]Value, error) {
	outs, err := RunKSC(k, inputs, opts)
	if err != nil {
		return nil, err
	}
	decisions := make(map[model.ProcID]Value, len(outs))
	for _, o := range outs {
		decisions[o.Proc] = o.Val
	}
	return decisions, nil
}

// CheckKSA verifies the k-SA properties on shared-memory decisions:
// validity (decided values were proposed) and agreement (at most k
// distinct).
func CheckKSA(k int, inputs []Value, decisions map[model.ProcID]Value) error {
	proposed := make(map[Value]bool, len(inputs))
	for _, in := range inputs {
		proposed[in] = true
	}
	distinct := make(map[Value]bool)
	for p, v := range decisions {
		if !proposed[v] {
			return fmt.Errorf("sharedmem: %v decided unproposed %q", p, v)
		}
		distinct[v] = true
	}
	if len(distinct) > k {
		return fmt.Errorf("sharedmem: %d distinct decisions, at most %d allowed", len(distinct), k)
	}
	return nil
}
