package sharedmem

import (
	"fmt"
	"testing"

	"nobroadcast/internal/model"
)

func TestRunValidation(t *testing.T) {
	if _, err := Run(1, nil, RunOptions{}); err == nil {
		t.Error("expected error for no programs")
	}
}

func TestRegisterWriteRead(t *testing.T) {
	var got Value
	programs := []Program{
		func(env *Env) { env.Write("r", "hello") },
		func(env *Env) {
			// Spin until p1's write is visible (the scheduler interleaves
			// fairly enough at random for this to terminate).
			for {
				if v := env.Read("r", 1); v != "" {
					got = v
					return
				}
			}
		},
	}
	completed, err := Run(1, programs, RunOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !completed[1] || !completed[2] {
		t.Fatalf("completed = %v", completed)
	}
	if got != "hello" {
		t.Errorf("read %q", got)
	}
}

func TestSingleWriterSlots(t *testing.T) {
	var views [][]Value
	n := 3
	programs := make([]Program, n)
	for i := 0; i < n; i++ {
		i := i
		programs[i] = func(env *Env) {
			env.Write("a", Value(fmt.Sprintf("v%d", i+1)))
			views = append(views, env.Collect("a"))
		}
	}
	if _, err := Run(1, programs, RunOptions{Seed: 9}); err != nil {
		t.Fatal(err)
	}
	// Each process's own slot must hold its own value in its collect.
	if len(views) != 3 {
		t.Fatalf("views: %d", len(views))
	}
}

func TestCrashStopsProcess(t *testing.T) {
	steps := 0
	programs := []Program{
		func(env *Env) {
			for i := 0; i < 1000; i++ {
				env.Write("r", Value(fmt.Sprintf("%d", i)))
				steps++
			}
		},
	}
	completed, err := Run(1, programs, RunOptions{Seed: 1, CrashAt: map[int]model.ProcID{5: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if completed[1] {
		t.Error("crashed process reported completed")
	}
	if steps >= 1000 {
		t.Error("crash did not stop the program")
	}
}

func TestDeterministicSchedules(t *testing.T) {
	run := func(seed uint64) []Value {
		var order []Value
		programs := make([]Program, 3)
		for i := 0; i < 3; i++ {
			i := i
			programs[i] = func(env *Env) {
				env.Write("a", Value(fmt.Sprintf("w%d", i)))
				order = append(order, env.Read("a", 1))
			}
		}
		if _, err := Run(1, programs, RunOptions{Seed: seed}); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("schedules diverged at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestStepBound(t *testing.T) {
	programs := []Program{func(env *Env) {
		for {
			env.Read("r", 1) // never terminates
		}
	}}
	if _, err := Run(1, programs, RunOptions{Seed: 1, MaxSteps: 100}); err == nil {
		t.Error("expected step-bound error")
	}
}

// TestSnapshotViewsContainmentOrdered: the double-collect snapshot views
// taken by concurrent processes are totally ordered by containment — the
// linearizability property the k-SC construction relies on. Exercised
// over many seeds.
func TestSnapshotViewsContainmentOrdered(t *testing.T) {
	n := 4
	for seed := uint64(1); seed <= 40; seed++ {
		var views [][]Value
		programs := make([]Program, n)
		for i := 0; i < n; i++ {
			i := i
			programs[i] = func(env *Env) {
				env.Write("s", Value(fmt.Sprintf("x%d", i+1)))
				views = append(views, env.Snapshot("s"))
			}
		}
		if _, err := Run(1, programs, RunOptions{Seed: seed}); err != nil {
			t.Fatal(err)
		}
		sets := make([]map[Value]bool, len(views))
		for i, v := range views {
			sets[i] = make(map[Value]bool)
			for _, x := range v {
				if x != "" {
					sets[i][x] = true
				}
			}
			// Self-inclusion: a snapshot taken after one's own write
			// contains one's own value.
			if len(sets[i]) == 0 {
				t.Errorf("seed %d: empty snapshot view", seed)
			}
		}
		for i := range sets {
			for j := range sets {
				if !contains(sets[i], sets[j]) && !contains(sets[j], sets[i]) {
					t.Errorf("seed %d: views %v and %v are containment-incomparable", seed, views[i], views[j])
				}
			}
		}
	}
}

func contains(a, b map[Value]bool) bool {
	for v := range b {
		if !a[v] {
			return false
		}
	}
	return true
}

// TestKSAOracleAgreement: the in-model k-SA objects decide at most k
// distinct values, and proposers of already-decided values keep them.
func TestKSAOracleAgreement(t *testing.T) {
	s := newKSAStore(2)
	if got := s.propose(1, "a"); got != "a" {
		t.Errorf("first: %q", got)
	}
	if got := s.propose(1, "b"); got != "b" {
		t.Errorf("second: %q", got)
	}
	if got := s.propose(1, "c"); got != "b" {
		t.Errorf("third: %q", got)
	}
	if got := s.propose(2, "z"); got != "z" {
		t.Errorf("fresh object: %q", got)
	}
}

func inputsFor(n int) []Value {
	in := make([]Value, n)
	for i := range in {
		in[i] = Value(fmt.Sprintf("in-%d", i+1))
	}
	return in
}

// TestKSCEquivalenceForward (experiment E9, k-SA → k-SC): the construction
// satisfies the three k-SC properties over many seeds, n, and k.
func TestKSCEquivalenceForward(t *testing.T) {
	for _, n := range []int{3, 5, 8} {
		for k := 2; k < n; k++ {
			for seed := uint64(1); seed <= 12; seed++ {
				inputs := inputsFor(n)
				outs, err := RunKSC(k, inputs, RunOptions{Seed: seed})
				if err != nil {
					t.Fatalf("n=%d k=%d seed=%d: %v", n, k, seed, err)
				}
				if len(outs) != n {
					t.Fatalf("n=%d k=%d seed=%d: %d outputs", n, k, seed, len(outs))
				}
				if err := CheckKSC(k, inputs, outs); err != nil {
					t.Errorf("n=%d k=%d seed=%d: %v", n, k, seed, err)
				}
			}
		}
	}
}

// TestKSCEquivalenceForwardWithCrashes: the construction is wait-free —
// properties hold for survivors under up to n-1 crashes.
func TestKSCEquivalenceForwardWithCrashes(t *testing.T) {
	n, k := 4, 2
	for seed := uint64(1); seed <= 12; seed++ {
		inputs := inputsFor(n)
		outs, err := RunKSC(k, inputs, RunOptions{
			Seed:    seed,
			CrashAt: map[int]model.ProcID{2: 1, 7: 3, 11: 4},
		})
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if err := CheckKSC(k, inputs, outs); err != nil {
			t.Errorf("seed=%d: %v", seed, err)
		}
	}
}

// TestKSCEquivalenceBackward (experiment E9, k-SC → k-SA): deciding the
// value component solves k-SA.
func TestKSCEquivalenceBackward(t *testing.T) {
	for _, n := range []int{3, 6} {
		for k := 2; k < n; k++ {
			for seed := uint64(1); seed <= 10; seed++ {
				inputs := inputsFor(n)
				decs, err := RunKSAFromKSC(k, inputs, RunOptions{Seed: seed})
				if err != nil {
					t.Fatalf("n=%d k=%d seed=%d: %v", n, k, seed, err)
				}
				if err := CheckKSA(k, inputs, decs); err != nil {
					t.Errorf("n=%d k=%d seed=%d: %v", n, k, seed, err)
				}
				if len(decs) != n {
					t.Errorf("n=%d k=%d seed=%d: only %d decisions", n, k, seed, len(decs))
				}
			}
		}
	}
}

func TestRunKSCRejectsEmptyInput(t *testing.T) {
	if _, err := RunKSC(2, []Value{"a", ""}, RunOptions{}); err == nil {
		t.Error("expected error for empty input")
	}
}

func TestCheckKSCRejections(t *testing.T) {
	inputs := []Value{"a", "b"}
	if err := CheckKSC(2, inputs, []KSCOutput{{Proc: 1, Index: 0, Val: "a"}}); err == nil {
		t.Error("index 0 should fail")
	}
	if err := CheckKSC(2, inputs, []KSCOutput{{Proc: 1, Index: 3, Val: "a"}}); err == nil {
		t.Error("index 3 should fail for k=2")
	}
	if err := CheckKSC(2, inputs, []KSCOutput{{Proc: 1, Index: 1, Val: "zzz"}}); err == nil {
		t.Error("unproposed value should fail")
	}
	if err := CheckKSC(2, inputs, []KSCOutput{
		{Proc: 1, Index: 1, Val: "a"}, {Proc: 2, Index: 1, Val: "b"},
	}); err == nil {
		t.Error("index disagreement should fail")
	}
	if err := CheckKSC(2, inputs, []KSCOutput{
		{Proc: 1, Index: 1, Val: "a"}, {Proc: 2, Index: 2, Val: "b"},
	}); err != nil {
		t.Errorf("legal outputs rejected: %v", err)
	}
}

func TestCheckKSARejections(t *testing.T) {
	inputs := []Value{"a", "b", "c"}
	if err := CheckKSA(2, inputs, map[model.ProcID]Value{1: "zzz"}); err == nil {
		t.Error("unproposed decision should fail")
	}
	if err := CheckKSA(2, inputs, map[model.ProcID]Value{1: "a", 2: "b", 3: "c"}); err == nil {
		t.Error("3 distinct decisions should fail for k=2")
	}
	if err := CheckKSA(2, inputs, map[model.ProcID]Value{1: "a", 2: "b", 3: "b"}); err != nil {
		t.Errorf("legal decisions rejected: %v", err)
	}
}

func TestDistinctNonEmpty(t *testing.T) {
	got := distinctNonEmpty([]Value{"", "b", "a", "b", ""})
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("distinctNonEmpty = %v", got)
	}
}

// --- Commit-Adopt (graded agreement) ---

func TestCommitAdoptUnanimousCommits(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		inputs := []Value{"same", "same", "same", "same"}
		outs, err := RunCommitAdopt(inputs, RunOptions{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckCommitAdopt(inputs, outs); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		for _, o := range outs {
			if o.Grade != Commit || o.Val != "same" {
				t.Errorf("seed %d: %v returned (%v, %q)", seed, o.Proc, o.Grade, o.Val)
			}
		}
	}
}

func TestCommitAdoptContendedStillAgrees(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		inputs := []Value{"a", "b", "a", "c"}
		outs, err := RunCommitAdopt(inputs, RunOptions{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckCommitAdopt(inputs, outs); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestCommitAdoptSoloCommits(t *testing.T) {
	// A process running alone (the others crash before taking any step)
	// must commit — wait-freedom plus CA-Commitment for the singleton
	// participant set. Inert peer programs model the initial crashes.
	var out CAOutput
	programs := []Program{
		func(env *Env) { out = CommitAdopt(env, "solo", "only") },
		func(*Env) {},
		func(*Env) {},
	}
	if _, err := Run(1, programs, RunOptions{Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if out.Grade != Commit || out.Val != "only" {
		t.Errorf("solo run returned (%v, %q), want (commit, only)", out.Grade, out.Val)
	}
}

func TestCommitAdoptWithCrashes(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		inputs := []Value{"a", "b", "a"}
		outs, err := RunCommitAdopt(inputs, RunOptions{
			Seed:    seed,
			CrashAt: map[int]model.ProcID{5: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckCommitAdopt(inputs, outs); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestCommitAdoptRejectsEmptyInput(t *testing.T) {
	if _, err := RunCommitAdopt([]Value{"a", ""}, RunOptions{}); err == nil {
		t.Error("expected error for empty input")
	}
}

func TestCheckCommitAdoptRejections(t *testing.T) {
	inputs := []Value{"a", "b"}
	if err := CheckCommitAdopt(inputs, []CAOutput{{Proc: 1, Grade: Commit, Val: "z"}}); err == nil {
		t.Error("unproposed value should fail")
	}
	if err := CheckCommitAdopt(inputs, []CAOutput{{Proc: 1, Grade: 0, Val: "a"}}); err == nil {
		t.Error("invalid grade should fail")
	}
	if err := CheckCommitAdopt([]Value{"a", "a"}, []CAOutput{{Proc: 1, Grade: Adopt, Val: "a"}}); err == nil {
		t.Error("unanimous adopt should fail CA-Commitment")
	}
	if err := CheckCommitAdopt(inputs, []CAOutput{
		{Proc: 1, Grade: Commit, Val: "a"}, {Proc: 2, Grade: Adopt, Val: "b"},
	}); err == nil {
		t.Error("commit with divergent adopt should fail CA-Agreement")
	}
	if err := CheckCommitAdopt(inputs, []CAOutput{
		{Proc: 1, Grade: Commit, Val: "a"}, {Proc: 2, Grade: Commit, Val: "b"},
	}); err == nil {
		t.Error("two committed values should fail")
	}
	if err := CheckCommitAdopt(inputs, []CAOutput{
		{Proc: 1, Grade: Commit, Val: "a"}, {Proc: 2, Grade: Adopt, Val: "a"},
	}); err != nil {
		t.Errorf("legal outputs rejected: %v", err)
	}
}

func TestGradeString(t *testing.T) {
	if Adopt.String() != "adopt" || Commit.String() != "commit" {
		t.Error("grade names wrong")
	}
	if Grade(9).String() != "Grade(9)" {
		t.Error("unknown grade name wrong")
	}
}

// TestCommitAdoptChain: iterating commit-adopt objects converges once
// proposals coincide — the round structure of shared-memory agreement
// algorithms.
func TestCommitAdoptChain(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		n := 3
		inputs := []Value{"x", "y", "z"}
		current := make([]Value, n)
		copy(current, inputs)
		committed := make(map[model.ProcID]Value)
		var mu = &committed // silence linters about closure capture clarity
		_ = mu
		for round := 1; round <= 4 && len(committed) < n; round++ {
			outs := make([]CAOutput, 0, n)
			programs := make([]Program, n)
			tag := fmt.Sprintf("round-%d", round)
			for i := 0; i < n; i++ {
				i := i
				programs[i] = func(env *Env) {
					outs = append(outs, CommitAdopt(env, tag, current[i]))
				}
			}
			if _, err := Run(1, programs, RunOptions{Seed: seed + uint64(round)*97}); err != nil {
				t.Fatal(err)
			}
			agree := true
			for _, o := range outs {
				current[o.Proc-1] = o.Val
				if o.Grade == Commit {
					committed[o.Proc] = o.Val
				}
				if o.Val != outs[0].Val {
					agree = false
				}
			}
			if agree && round < 4 {
				// Next round is unanimous: everyone commits.
				continue
			}
		}
		// Whatever happened, committed values (if any) must be unique and
		// match every process's current estimate.
		var cv Value
		for _, v := range committed {
			if cv == "" {
				cv = v
			}
			if v != cv {
				t.Fatalf("seed %d: two committed values %q %q", seed, cv, v)
			}
		}
		if cv != "" {
			for i, v := range current {
				if v != cv {
					t.Errorf("seed %d: p%d estimate %q after commit of %q", seed, i+1, v, cv)
				}
			}
		}
	}
}
