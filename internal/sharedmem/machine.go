// Package sharedmem implements the crash-prone asynchronous shared-memory
// model CARW_n[k-SA]: processes communicating through atomic single-writer
// multi-reader registers, with access to k-set-agreement objects.
//
// The package exists for the contrast the paper draws in Section 1.3 and
// its conclusion: k-SA is equivalent to a broadcast abstraction in shared
// memory but not in message passing. The executable form of that contrast
// is the equivalence, in shared memory, between k-SA and k-simultaneous
// consensus (k-SC) established by Afek, Gafni, Rajsbaum, Raynal and
// Travers [1] — the very result the paper's argument leans on (k-SC is
// strictly harder than k-SA in message passing [6]).
//
// The model is executed by a deterministic coroutine scheduler: each
// process runs as a goroutine whose shared-memory operations (register
// reads and writes, k-SA propositions) are individual atomic steps; the
// scheduler interleaves them under a seeded schedule and can crash
// processes between steps. Register collects and snapshots are NOT atomic
// primitives — they are implemented honestly as sequences of single-
// register reads (double-collect), so the linearizability of snapshot
// views is a property of the algorithm, verified by tests, not an oracle
// gift.
package sharedmem

import (
	"fmt"
	"sync"

	"nobroadcast/internal/model"
	"nobroadcast/internal/rng"
)

// Value is a shared-memory register value. The empty string is the initial
// value of every register.
type Value = model.Value

// Memory is the shared store: named arrays of n SWMR registers plus the
// k-SA objects. It is only accessed from the scheduler goroutine; atomic
// operations are functions executed there one at a time.
type Memory struct {
	n    int
	regs map[string][]regCell
	ksa  *ksaStore
}

type regCell struct {
	val Value
	seq uint64 // write counter, used by double-collect snapshots
}

func newMemory(n, k int) *Memory {
	return &Memory{n: n, regs: make(map[string][]regCell), ksa: newKSAStore(k)}
}

func (m *Memory) array(name string) []regCell {
	a, ok := m.regs[name]
	if !ok {
		a = make([]regCell, m.n)
		m.regs[name] = a
	}
	return a
}

// ksaStore provides the k-SA objects of CARW_n[k-SA] with the same
// adoption rule as the message-passing oracle: the first proposals
// contribute up to k distinct decided values, later proposers adopt the
// most recent one.
type ksaStore struct {
	k       int
	decided map[model.KSAID][]Value
}

func newKSAStore(k int) *ksaStore {
	return &ksaStore{k: k, decided: make(map[model.KSAID][]Value)}
}

func (s *ksaStore) propose(obj model.KSAID, v Value) Value {
	vals := s.decided[obj]
	for _, d := range vals {
		if d == v {
			return v
		}
	}
	if len(vals) < s.k {
		s.decided[obj] = append(vals, v)
		return v
	}
	return vals[len(vals)-1]
}

// Program is the sequential code of one process. It runs in its own
// goroutine and performs shared-memory steps through the Env. Returning
// ends the process (it halts correctly); a crash injected by the scheduler
// aborts it at its next step.
type Program func(env *Env)

// errCrashed aborts a crashed process's program via panic/recover inside
// the framework (programs never observe it).
type crashSignal struct{}

// Env is a process's handle on the shared memory. All methods block until
// the scheduler grants the step; each granted step executes atomically.
type Env struct {
	id model.ProcID
	n  int
	// pending carries the next atomic operation to the scheduler.
	pending chan func(m *Memory) Value
	// resume carries the operation's result back, or a crash signal.
	resume chan stepResult
}

type stepResult struct {
	val     Value
	crashed bool
}

// ID returns the process identity (1-based).
func (e *Env) ID() model.ProcID { return e.id }

// N returns the number of processes.
func (e *Env) N() int { return e.n }

// step submits one atomic operation and waits for its result.
func (e *Env) step(op func(m *Memory) Value) Value {
	e.pending <- op
	res := <-e.resume
	if res.crashed {
		panic(crashSignal{})
	}
	return res.val
}

// Write atomically writes v into the calling process's register of the
// named array (single-writer: a process only writes its own slot).
func (e *Env) Write(array string, v Value) {
	id := e.id
	e.step(func(m *Memory) Value {
		a := m.array(array)
		a[id-1] = regCell{val: v, seq: a[id-1].seq + 1}
		return ""
	})
}

// Read atomically reads register j (1-based) of the named array.
func (e *Env) Read(array string, j int) Value {
	e.mustIndex(j)
	return e.step(func(m *Memory) Value {
		return m.array(array)[j-1].val
	})
}

// readCell reads value and sequence number (used by Snapshot).
func (e *Env) readCell(array string, j int) (Value, uint64) {
	e.mustIndex(j)
	var seq uint64
	v := e.step(func(m *Memory) Value {
		c := m.array(array)[j-1]
		seq = c.seq
		return c.val
	})
	return v, seq
}

func (e *Env) mustIndex(j int) {
	if j < 1 || j > e.n {
		panic(fmt.Sprintf("sharedmem: register index %d out of [1,%d]", j, e.n))
	}
}

// Collect reads all n registers of the array, one atomic read at a time
// (NOT atomic as a whole).
func (e *Env) Collect(array string) []Value {
	out := make([]Value, e.n)
	for j := 1; j <= e.n; j++ {
		out[j-1] = e.Read(array, j)
	}
	return out
}

// Snapshot returns an atomic snapshot of the array by double collect: it
// repeatedly collects (value, sequence) pairs until two consecutive
// collects are identical. A clean double collect is linearizable at any
// point between its two collects, so snapshot views are totally ordered by
// containment — the property the k-SC construction needs, and which the
// tests verify. The loop terminates when writers eventually stop (all
// programs here write finitely many times).
func (e *Env) Snapshot(array string) []Value {
	prev := make([]uint64, e.n)
	for j := 1; j <= e.n; j++ {
		_, prev[j-1] = e.readCell(array, j)
	}
	for {
		same := true
		cur := make([]uint64, e.n)
		next := make([]Value, e.n)
		for j := 1; j <= e.n; j++ {
			next[j-1], cur[j-1] = e.readCell(array, j)
			if cur[j-1] != prev[j-1] {
				same = false
			}
		}
		if same {
			return next
		}
		prev = cur
	}
}

// Propose atomically proposes v on the k-SA object obj and returns the
// decided value.
func (e *Env) Propose(obj model.KSAID, v Value) Value {
	return e.step(func(m *Memory) Value {
		return m.ksa.propose(obj, v)
	})
}

// RunOptions configures a shared-memory run.
type RunOptions struct {
	// Seed drives the scheduler's choices.
	Seed uint64
	// MaxSteps bounds the run; zero selects the default (1 << 20).
	MaxSteps int
	// CrashAt injects crashes: after the step with the given ordinal, the
	// listed process is crashed.
	CrashAt map[int]model.ProcID
}

func (o RunOptions) maxSteps() int {
	if o.MaxSteps <= 0 {
		return 1 << 20
	}
	return o.MaxSteps
}

// Run executes the programs (one per process, index i runs as p_{i+1}) in
// the model CARW_n[k-SA] under a seeded schedule. It returns the set of
// processes that completed their program (crashed processes are absent).
// It returns an error if the step bound is exceeded while processes are
// still running.
func Run(k int, programs []Program, opts RunOptions) (completed map[model.ProcID]bool, err error) {
	n := len(programs)
	if n == 0 {
		return nil, fmt.Errorf("sharedmem: no programs")
	}
	mem := newMemory(n, k)
	src := rng.New(opts.Seed)

	envs := make([]*Env, n)
	var wg sync.WaitGroup
	done := make([]chan struct{}, n)
	for i := range programs {
		envs[i] = &Env{
			id:      model.ProcID(i + 1),
			n:       n,
			pending: make(chan func(*Memory) Value),
			resume:  make(chan stepResult),
		}
		done[i] = make(chan struct{})
	}
	for i, prog := range programs {
		i, prog := i, prog
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(done[i])
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(crashSignal); !ok {
						panic(r) // programming error: re-raise
					}
				}
			}()
			prog(envs[i])
		}()
	}

	// The scheduler is strictly lock-step: between scheduling decisions,
	// every live process is parked at a step boundary (its next operation
	// sits in parked[i]) or has finished. At most one program goroutine
	// runs user code at any moment, so programs and their callbacks never
	// race with each other.
	completed = make(map[model.ProcID]bool, n)
	crashed := make(map[int]bool, n)
	finished := make(map[int]bool, n)
	parked := make([]func(*Memory) Value, n)

	// park waits until process i reaches its next step boundary or
	// finishes.
	park := func(i int) {
		select {
		case op := <-envs[i].pending:
			parked[i] = op
		case <-done[i]:
			finished[i] = true
			completed[model.ProcID(i+1)] = true
		}
	}
	// poison aborts process i at its parked step and joins its goroutine.
	poison := func(i int) {
		crashed[i] = true
		if parked[i] != nil {
			parked[i] = nil
			envs[i].resume <- stepResult{crashed: true}
		}
		<-done[i]
	}

	for i := range programs {
		park(i)
	}
	defer func() {
		for i := 0; i < n; i++ {
			if !crashed[i] && !finished[i] {
				poison(i)
			}
		}
		wg.Wait()
	}()

	runnable := func() []int {
		var out []int
		for i := 0; i < n; i++ {
			if !crashed[i] && !finished[i] {
				out = append(out, i)
			}
		}
		return out
	}

	for steps := 0; ; steps++ {
		if p, ok := opts.CrashAt[steps]; ok && int(p) >= 1 && int(p) <= n && !crashed[int(p)-1] && !finished[int(p)-1] {
			poison(int(p) - 1)
		}
		candidates := runnable()
		if len(candidates) == 0 {
			return completed, nil
		}
		if steps >= opts.maxSteps() {
			return completed, fmt.Errorf("sharedmem: step bound %d exceeded with %d processes still running", opts.maxSteps(), len(candidates))
		}
		i := candidates[src.Intn(len(candidates))]
		op := parked[i]
		parked[i] = nil
		envs[i].resume <- stepResult{val: op(mem)}
		park(i)
	}
}
