package sched

import (
	"fmt"
	"testing"

	"nobroadcast/internal/model"
)

// echoAutomaton is a minimal broadcast implementation for runtime unit
// tests: on broadcast it sends to all and returns; on receive it delivers.
type echoAutomaton struct {
	delivered map[model.MsgID]bool
}

func newEcho(model.ProcID) Automaton {
	return &echoAutomaton{delivered: make(map[model.MsgID]bool)}
}

func (e *echoAutomaton) Init(*Env) {}

func (e *echoAutomaton) OnBroadcast(env *Env, msg model.MsgID, payload model.Payload) {
	// Encode (origin, msg) in the payload crudely for the test.
	env.SendAll(payload)
	env.ReturnBroadcast(msg)
	e.delivered[msg] = false // remember our own broadcast id
	env.Deliver(msg, env.ID(), payload)
}

func (e *echoAutomaton) OnReceive(*Env, model.ProcID, model.Payload) {}

func (e *echoAutomaton) OnDecide(*Env, model.KSAID, model.Value) {}

// proposerAutomaton proposes its id to object 1 at init and records the
// decision.
type proposerAutomaton struct {
	id      model.ProcID
	decided model.Value
}

func (p *proposerAutomaton) Init(env *Env) {
	env.Propose(1, model.Value(p.id.String()))
}
func (p *proposerAutomaton) OnBroadcast(*Env, model.MsgID, model.Payload) {}
func (p *proposerAutomaton) OnReceive(*Env, model.ProcID, model.Payload)  {}
func (p *proposerAutomaton) OnDecide(_ *Env, _ model.KSAID, v model.Value) {
	p.decided = v
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{N: 0, NewAutomaton: newEcho}); err == nil {
		t.Error("expected error for N=0")
	}
	if _, err := New(Config{N: 2}); err == nil {
		t.Error("expected error for missing NewAutomaton")
	}
}

func TestInvokeBroadcastRecordsSteps(t *testing.T) {
	r, err := New(Config{N: 2, NewAutomaton: newEcho})
	if err != nil {
		t.Fatal(err)
	}
	msg, err := r.InvokeBroadcast(1, "hello")
	if err != nil {
		t.Fatal(err)
	}
	if msg == model.NoMsg {
		t.Fatal("no message id")
	}
	x := r.Execution()
	if x.Len() != 1 || x.Steps[0].Kind != model.KindBroadcastInvoke {
		t.Fatalf("execution: %s", x)
	}
	if !r.HasPending(1) {
		t.Error("p1 should have pending actions")
	}
	if got := r.OpenBroadcast(1); got != msg {
		t.Errorf("OpenBroadcast = %d, want %d", got, msg)
	}
}

func TestInvokeBroadcastRejectsNested(t *testing.T) {
	r, err := New(Config{N: 2, NewAutomaton: func(model.ProcID) Automaton {
		// An automaton that never returns from broadcast.
		return &proposerOnly{}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.InvokeBroadcast(1, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.InvokeBroadcast(1, "b"); err == nil {
		t.Error("expected well-formedness error for nested invocation")
	}
}

type proposerOnly struct{}

func (proposerOnly) Init(*Env)                                    {}
func (proposerOnly) OnBroadcast(*Env, model.MsgID, model.Payload) {}
func (proposerOnly) OnReceive(*Env, model.ProcID, model.Payload)  {}
func (proposerOnly) OnDecide(*Env, model.KSAID, model.Value)      {}

func TestExecNextSendAndReceive(t *testing.T) {
	r, err := New(Config{N: 2, NewAutomaton: newEcho})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.InvokeBroadcast(1, "x"); err != nil {
		t.Fatal(err)
	}
	// Echo automaton queued: send(p1), send(p2), return, deliver.
	step, ok, err := r.ExecNext(1)
	if err != nil || !ok || step.Kind != model.KindSend || step.Peer != 1 {
		t.Fatalf("step1 = %v ok=%v err=%v", step, ok, err)
	}
	step, ok, _ = r.ExecNext(1)
	if !ok || step.Kind != model.KindSend || step.Peer != 2 {
		t.Fatalf("step2 = %v", step)
	}
	if got := len(r.InFlight()); got != 2 {
		t.Fatalf("in flight = %d", got)
	}
	// Deliver to p2 by instance id.
	inst := r.InFlight()[1].Msg
	rstep, err := r.ReceiveInstance(inst)
	if err != nil || rstep.Kind != model.KindReceive || rstep.Proc != 2 || rstep.Peer != 1 {
		t.Fatalf("receive = %v err=%v", rstep, err)
	}
	if _, err := r.ReceiveInstance(inst); err == nil {
		t.Error("second receive of the same instance should fail")
	}
	// Remaining: return, deliver at p1.
	step, ok, _ = r.ExecNext(1)
	if !ok || step.Kind != model.KindBroadcastReturn {
		t.Fatalf("step3 = %v", step)
	}
	if r.OpenBroadcast(1) != model.NoMsg {
		t.Error("broadcast should be closed after return")
	}
	step, ok, _ = r.ExecNext(1)
	if !ok || step.Kind != model.KindDeliver || step.Peer != 1 {
		t.Fatalf("step4 = %v", step)
	}
	if r.HasPending(1) {
		t.Error("p1 queue should be empty")
	}
	_, ok, err = r.ExecNext(1)
	if err != nil || ok {
		t.Errorf("ExecNext on empty queue: ok=%v err=%v", ok, err)
	}
}

func TestProposeBlocksUntilDecide(t *testing.T) {
	var auto *proposerAutomaton
	r, err := New(Config{
		N: 1,
		NewAutomaton: func(id model.ProcID) Automaton {
			auto = &proposerAutomaton{id: id}
			return auto
		},
		Oracle: NewFreeOracle(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Init queued the propose.
	step, ok, _ := r.ExecNext(1)
	if !ok || step.Kind != model.KindPropose {
		t.Fatalf("step = %v", step)
	}
	if !r.Blocked(1) {
		t.Error("p1 should be blocked on the proposition")
	}
	if _, ok, _ := r.ExecNext(1); ok {
		t.Error("blocked process must not execute actions")
	}
	dstep, err := r.FireDecide(1)
	if err != nil || dstep.Kind != model.KindDecide {
		t.Fatalf("decide = %v err=%v", dstep, err)
	}
	if r.Blocked(1) {
		t.Error("p1 should be unblocked")
	}
	if auto.decided != "p1" {
		t.Errorf("decided %q, want p1 (FreeOracle first value)", auto.decided)
	}
	if _, err := r.FireDecide(1); err == nil {
		t.Error("FireDecide without pending decision should fail")
	}
}

func TestFreeOracle(t *testing.T) {
	o := NewFreeOracle(2)
	if got := o.Propose(1, 1, "a"); got != "a" {
		t.Errorf("first proposal decided %q", got)
	}
	if got := o.Propose(1, 2, "b"); got != "b" {
		t.Errorf("second proposal decided %q", got)
	}
	if got := o.Propose(1, 3, "c"); got != "b" {
		t.Errorf("third proposal decided %q, want adoption of b", got)
	}
	// Re-proposing an already-decided value decides it.
	if got := o.Propose(1, 4, "a"); got != "a" {
		t.Errorf("re-proposal of a decided %q", got)
	}
	// Objects are independent.
	if got := o.Propose(2, 1, "z"); got != "z" {
		t.Errorf("fresh object decided %q", got)
	}
}

func TestCrash(t *testing.T) {
	r, err := New(Config{N: 2, NewAutomaton: newEcho})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.InvokeBroadcast(1, "x"); err != nil {
		t.Fatal(err)
	}
	if err := r.Crash(1); err != nil {
		t.Fatal(err)
	}
	if !r.Crashed(1) || r.HasPending(1) {
		t.Error("crashed process should have no pending work")
	}
	if err := r.Crash(1); err == nil {
		t.Error("double crash should fail")
	}
	if _, err := r.InvokeBroadcast(1, "y"); err == nil {
		t.Error("broadcast on crashed process should fail")
	}
	last := r.Execution().Steps[r.Execution().Len()-1]
	if last.Kind != model.KindCrash {
		t.Errorf("last step = %v, want crash", last)
	}
}

func TestQuiescent(t *testing.T) {
	r, err := New(Config{N: 2, NewAutomaton: newEcho})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Quiescent() {
		t.Error("fresh runtime should be quiescent")
	}
	if _, err := r.InvokeBroadcast(1, "x"); err != nil {
		t.Fatal(err)
	}
	if r.Quiescent() {
		t.Error("pending actions: not quiescent")
	}
	tr, err := r.RunFair(RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Complete {
		t.Error("fair run should reach quiescence")
	}
	if !r.Quiescent() {
		t.Error("should be quiescent after fair run")
	}
}

func TestQuiescentIgnoresMessagesToCrashed(t *testing.T) {
	r, err := New(Config{N: 2, NewAutomaton: newEcho})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.InvokeBroadcast(1, "x"); err != nil {
		t.Fatal(err)
	}
	if err := r.Crash(2); err != nil {
		t.Fatal(err)
	}
	for r.HasPending(1) {
		if _, _, err := r.ExecNext(1); err != nil {
			t.Fatal(err)
		}
	}
	// Receive p1's self-send; the message to crashed p2 stays in flight.
	for i := 0; i < len(r.InFlight()); i++ {
		if r.InFlight()[i].Peer == 1 {
			if _, err := r.ReceiveIndex(i); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if !r.Quiescent() {
		t.Errorf("messages to crashed processes must not block quiescence; in flight: %v", r.InFlight())
	}
	if _, err := r.ReceiveInstance(r.InFlight()[0].Msg); err == nil {
		t.Error("delivery to crashed process should fail")
	}
}

func TestRunFairDeterministic(t *testing.T) {
	run := func() string {
		r, err := New(Config{N: 3, NewAutomaton: newEcho})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := r.RunFair(RunOptions{Broadcasts: []BroadcastReq{{Proc: 1, Payload: "a"}, {Proc: 2, Payload: "b"}}})
		if err != nil {
			t.Fatal(err)
		}
		return tr.X.String()
	}
	if run() != run() {
		t.Error("RunFair is not deterministic")
	}
}

func TestRunRandomDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) string {
		r, err := New(Config{N: 3, NewAutomaton: newEcho})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := r.RunRandom(RunOptions{Seed: seed, Broadcasts: []BroadcastReq{{Proc: 1, Payload: "a"}, {Proc: 2, Payload: "b"}}})
		if err != nil {
			t.Fatal(err)
		}
		return tr.X.String()
	}
	if run(7) != run(7) {
		t.Error("RunRandom with equal seeds diverged")
	}
	if run(7) == run(8) {
		t.Error("RunRandom with different seeds produced identical schedules (suspicious)")
	}
}

func TestRunRandomCrashInjection(t *testing.T) {
	r, err := New(Config{N: 2, NewAutomaton: newEcho})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := r.RunRandom(RunOptions{
		Seed:       1,
		Broadcasts: []BroadcastReq{{Proc: 1, Payload: "a"}},
		CrashAt:    map[int]model.ProcID{0: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.X.Correct(2) {
		t.Error("p2 should have crashed")
	}
	if !tr.Complete {
		t.Error("run should still reach quiescence")
	}
}

func TestRunMaxEventsBounds(t *testing.T) {
	r, err := New(Config{N: 2, NewAutomaton: newEcho})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := r.RunRandom(RunOptions{Seed: 1, MaxEvents: 2, Broadcasts: []BroadcastReq{{Proc: 1, Payload: "a"}}})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Complete {
		t.Error("bounded run should be incomplete")
	}
}

func TestAppLifecycle(t *testing.T) {
	r, err := New(Config{
		N:            2,
		NewAutomaton: newEcho,
		NewApp: func(id model.ProcID) App {
			return &decideOnDeliverApp{}
		},
		Inputs: []model.Value{"va", "vb"},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := r.RunFair(RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.AppDecided(1) || !r.AppDecided(2) {
		t.Error("apps should have decided")
	}
	// The app-level propose/decide steps are recorded under the app object.
	var proposes, decides int
	for _, s := range tr.X.Steps {
		if s.Obj == DefaultAppObject {
			switch s.Kind {
			case model.KindPropose:
				proposes++
			case model.KindDecide:
				decides++
			}
		}
	}
	if proposes != 2 || decides != 2 {
		t.Errorf("app steps: %d proposes, %d decides", proposes, decides)
	}
}

// decideOnDeliverApp broadcasts its input and decides on first delivery.
type decideOnDeliverApp struct{ done bool }

func (a *decideOnDeliverApp) Init(env AppEnv, input model.Value) {
	env.Broadcast(model.Payload(input))
}
func (a *decideOnDeliverApp) OnDeliver(env AppEnv, _ model.ProcID, _ model.MsgID, payload model.Payload) {
	if !a.done {
		a.done = true
		env.Decide(model.Value(payload))
	}
	env.Decide("second-call-ignored")
}
func (a *decideOnDeliverApp) OnReturn(AppEnv, model.MsgID) {}

func TestAppDecideIsOneShot(t *testing.T) {
	r, err := New(Config{
		N:            1,
		NewAutomaton: newEcho,
		NewApp:       func(model.ProcID) App { return &decideOnDeliverApp{} },
		Inputs:       []model.Value{"v"},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := r.RunFair(RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	decides := 0
	for _, s := range tr.X.Steps {
		if s.Kind == model.KindDecide && s.Obj == DefaultAppObject {
			decides++
		}
	}
	if decides != 1 {
		t.Errorf("app decided %d times, want 1", decides)
	}
}

// proposeThenActAutomaton emits a propose followed immediately by more
// actions in the same handler — the runtime must hold the later actions
// back until the decision fires (propose blocks, per the Env contract).
type proposeThenActAutomaton struct{}

func (proposeThenActAutomaton) Init(env *Env) {
	env.Propose(1, "v")
	env.Send(1, "after-propose")
	env.Internal("also-after")
}
func (proposeThenActAutomaton) OnBroadcast(*Env, model.MsgID, model.Payload) {}
func (proposeThenActAutomaton) OnReceive(*Env, model.ProcID, model.Payload)  {}
func (proposeThenActAutomaton) OnDecide(*Env, model.KSAID, model.Value)      {}

func TestActionsAfterProposeHeldUntilDecide(t *testing.T) {
	r, err := New(Config{N: 1, NewAutomaton: func(model.ProcID) Automaton { return proposeThenActAutomaton{} }})
	if err != nil {
		t.Fatal(err)
	}
	step, ok, _ := r.ExecNext(1)
	if !ok || step.Kind != model.KindPropose {
		t.Fatalf("first step = %v", step)
	}
	// The queued send must not be executable while blocked.
	if _, ok, _ := r.ExecNext(1); ok {
		t.Fatal("action executed while blocked on proposition")
	}
	if _, err := r.FireDecide(1); err != nil {
		t.Fatal(err)
	}
	step, ok, _ = r.ExecNext(1)
	if !ok || step.Kind != model.KindSend || step.Payload != "after-propose" {
		t.Fatalf("post-decide step = %v", step)
	}
	step, ok, _ = r.ExecNext(1)
	if !ok || step.Kind != model.KindInternal || step.Note != "also-after" {
		t.Fatalf("post-decide step 2 = %v", step)
	}
}

func TestReceiveIndexValidation(t *testing.T) {
	r, err := New(Config{N: 1, NewAutomaton: newEcho})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReceiveIndex(0); err == nil {
		t.Error("expected error for empty network")
	}
	if _, err := r.ReceiveIndex(-1); err == nil {
		t.Error("expected error for negative index")
	}
	if _, err := r.ReceiveInstance(42); err == nil {
		t.Error("expected error for unknown instance")
	}
}

func TestProcValidation(t *testing.T) {
	r, err := New(Config{N: 1, NewAutomaton: newEcho})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.InvokeBroadcast(0, "x"); err == nil {
		t.Error("expected error for p0")
	}
	if _, err := r.InvokeBroadcast(2, "x"); err == nil {
		t.Error("expected error for p2 in 1-process system")
	}
	if r.HasPending(9) || r.Blocked(9) || r.Crashed(9) {
		t.Error("queries on unknown process should be false")
	}
	if r.OpenBroadcast(9) != model.NoMsg {
		t.Error("OpenBroadcast on unknown process should be NoMsg")
	}
	if err := r.Crash(9); err == nil {
		t.Error("expected error crashing unknown process")
	}
	if _, err := r.FireDecide(9); err == nil {
		t.Error("expected error firing decide on unknown process")
	}
}

func TestMsgIDsNeverCollide(t *testing.T) {
	r, err := New(Config{N: 2, NewAutomaton: newEcho})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[model.MsgID]bool)
	for i := 0; i < 5; i++ {
		msg, err := r.InvokeBroadcast(1, model.Payload(fmt.Sprintf("m%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if seen[msg] {
			t.Fatalf("broadcast id m%d reused", msg)
		}
		seen[msg] = true
		for r.HasPending(1) {
			step, ok, err := r.ExecNext(1)
			if err != nil || !ok {
				t.Fatal(err)
			}
			if step.Kind == model.KindSend {
				if seen[step.Msg] {
					t.Fatalf("send instance m%d collides", step.Msg)
				}
				seen[step.Msg] = true
			}
		}
	}
}

func TestEnvExportTakeActions(t *testing.T) {
	env := NewEnv(2, 3)
	if env.ID() != 2 || env.N() != 3 {
		t.Fatalf("env identity: %v %d", env.ID(), env.N())
	}
	env.Send(1, "a")
	env.Propose(4, "v")
	env.Deliver(7, 3, "c")
	env.ReturnBroadcast(7)
	env.Internal("n")
	acts := env.TakeActions()
	if len(acts) != 5 {
		t.Fatalf("actions: %d", len(acts))
	}
	if acts[0].Kind != model.KindSend || acts[0].To != 1 || acts[0].Payload != "a" {
		t.Errorf("send action: %+v", acts[0])
	}
	if acts[1].Kind != model.KindPropose || acts[1].Obj != 4 || acts[1].Val != "v" {
		t.Errorf("propose action: %+v", acts[1])
	}
	if acts[2].Kind != model.KindDeliver || acts[2].Origin != 3 || acts[2].Msg != 7 {
		t.Errorf("deliver action: %+v", acts[2])
	}
	if acts[3].Kind != model.KindBroadcastReturn || acts[3].Msg != 7 {
		t.Errorf("return action: %+v", acts[3])
	}
	if acts[4].Kind != model.KindInternal || acts[4].Note != "n" {
		t.Errorf("internal action: %+v", acts[4])
	}
	// Drained: a second call is empty.
	if got := env.TakeActions(); len(got) != 0 {
		t.Errorf("TakeActions not draining: %d left", len(got))
	}
}

func TestAppDecidedQueries(t *testing.T) {
	r, err := New(Config{
		N:            1,
		NewAutomaton: newEcho,
		NewApp:       func(model.ProcID) App { return &decideOnDeliverApp{} },
		Inputs:       []model.Value{"v"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.AppDecided(1) {
		t.Error("not decided yet")
	}
	if r.AppDecided(9) {
		t.Error("unknown process cannot have decided")
	}
	if _, err := r.RunFair(RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if !r.AppDecided(1) {
		t.Error("should have decided")
	}
}

func TestRunFairCrashInjection(t *testing.T) {
	r, err := New(Config{N: 2, NewAutomaton: newEcho})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := r.RunFair(RunOptions{
		Broadcasts: []BroadcastReq{{Proc: 1, Payload: "a"}, {Proc: 2, Payload: "b"}},
		CrashAt:    map[int]model.ProcID{1: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.X.Correct(2) {
		t.Error("p2 should have crashed under RunFair")
	}
	if !tr.Complete {
		t.Error("run should complete")
	}
}

func TestQuiescentWithPendingBroadcastsOfCrashed(t *testing.T) {
	// A queued upper-layer broadcast for a crashed process must not block
	// completeness.
	r, err := New(Config{N: 2, NewAutomaton: newEcho})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := r.RunRandom(RunOptions{
		Seed:       3,
		Broadcasts: []BroadcastReq{{Proc: 1, Payload: "a"}, {Proc: 2, Payload: "b"}, {Proc: 2, Payload: "c"}},
		CrashAt:    map[int]model.ProcID{0: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Complete {
		t.Error("crashed process's queued broadcasts must not block quiescence")
	}
}
