package sched

import "nobroadcast/internal/model"

// This file exposes the Env action collector to alternative runtimes
// (internal/net runs the same automata under real concurrency and needs
// to drain the actions a handler emitted).

// NewEnv returns a standalone action collector for process id of an
// n-process system.
func NewEnv(id model.ProcID, n int) *Env {
	return &Env{id: id, n: n}
}

// Action is the exported view of one emitted action.
type Action struct {
	Kind model.StepKind
	// To is the destination of a send.
	To model.ProcID
	// Origin is the broadcaster of a delivered message.
	Origin  model.ProcID
	Msg     model.MsgID
	Payload model.Payload
	Obj     model.KSAID
	Val     model.Value
	Note    string
}

// TakeActions drains and returns the actions emitted on the Env since the
// last call, in emission order.
func (e *Env) TakeActions() []Action {
	out := make([]Action, len(e.emitted))
	for i, a := range e.emitted {
		out[i] = Action{
			Kind:    a.kind,
			Msg:     a.msg,
			Payload: a.payload,
			Obj:     a.obj,
			Val:     a.val,
			Note:    a.note,
		}
		switch a.kind {
		case model.KindSend:
			out[i].To = a.to
		case model.KindDeliver:
			out[i].Origin = a.to
		}
	}
	e.emitted = e.emitted[:0]
	return out
}
