// Package sched implements the deterministic, step-driven runtime for the
// model CAMP_n[k-SA]: processes are deterministic reactive automata whose
// externally visible actions (sends, receives, k-SA propositions and
// decisions, broadcast invocations, responses and deliveries) are executed
// one step at a time under the full control of a scheduler.
//
// The paper's proof requires this level of control twice: Algorithm 1 needs
// "p_i's next local step in C(α), according to B" (internal/adversary
// drives the runtime step by step), and Definition 1 requires executions to
// be well-formed with respect to the algorithm, which the runtime
// guarantees by construction — every recorded step is produced by running
// the algorithm's own handlers.
//
// Two kinds of code run on the runtime:
//
//   - Automaton: an implementation of a broadcast abstraction B in
//     CAMP_n[k-SA] (the algorithm 𝓑 of the paper). It reacts to broadcast
//     invocations, message receptions, and k-SA decisions by emitting
//     actions.
//   - App: an algorithm 𝓐 solving k-SA in CAMP_n[B]. It consumes
//     B-deliveries and emits B-broadcasts and one decision.
//
// Determinism contract: handlers must be pure functions of the automaton's
// state and the event; given the same event sequence they must emit the
// same actions. The runtime replays are used by the proof machinery
// (Lemma 9's indistinguishability argument), so this is load-bearing and
// covered by replay-determinism tests.
package sched

import (
	"fmt"

	"nobroadcast/internal/model"
	"nobroadcast/internal/obs"
	"nobroadcast/internal/spec"
	"nobroadcast/internal/trace"
)

// Automaton is a deterministic reactive process implementing a broadcast
// abstraction on top of send/receive and k-SA objects.
//
// Handlers emit actions through the Env. Emitted actions are queued and
// executed later, one per scheduler step; they do not take effect during
// the handler call. After calling Env.Propose, the automaton must not emit
// further actions until the matching OnDecide (propose blocks, k-SA being
// an operation with a return value); the runtime enforces this by holding
// queued actions back until the decision fires.
type Automaton interface {
	// Init is called once before any other handler.
	Init(env *Env)
	// OnBroadcast is called when the upper layer invokes B.broadcast.
	// msg is the identity of the fresh broadcast message.
	OnBroadcast(env *Env, msg model.MsgID, payload model.Payload)
	// OnReceive is called when a point-to-point message is received.
	OnReceive(env *Env, from model.ProcID, payload model.Payload)
	// OnDecide is called when a pending k-SA proposition decides.
	OnDecide(env *Env, obj model.KSAID, val model.Value)
}

// App is a deterministic algorithm running on top of a broadcast
// abstraction (the algorithm 𝓐 of the paper, solving k-SA in CAMP_n[B]).
type App interface {
	// Init is called once with the process's input value (the value it
	// proposes to the implemented object).
	Init(env AppEnv, input model.Value)
	// OnDeliver is called when the underlying broadcast B-delivers a
	// message.
	OnDeliver(env AppEnv, from model.ProcID, msg model.MsgID, payload model.Payload)
	// OnReturn is called when a B.broadcast invocation issued by this
	// process returns.
	OnReturn(env AppEnv, msg model.MsgID)
}

// AppEnv is the interface the runtime (and the replayer of internal/core)
// presents to an App.
type AppEnv interface {
	// ID returns the process's identity; N the number of processes.
	ID() model.ProcID
	N() int
	// Broadcast invokes B.broadcast with the given content.
	Broadcast(payload model.Payload)
	// Decide outputs the app's decision on the implemented object. Only
	// the first call has an effect (the object is one-shot).
	Decide(v model.Value)
}

// Oracle provides the k-SA objects of the model CAMP_n[k-SA]. Propose is
// called when a propose action executes and must return the value the
// process will decide; the runtime records the decision as a separate step
// fired by the scheduler. Implementations must satisfy k-SA-Validity and
// k-SA-Agreement; the paper's adversary supplies its own oracle
// implementing the decision table of Algorithm 1 (lines 16-20).
type Oracle interface {
	Propose(obj model.KSAID, proc model.ProcID, v model.Value) model.Value
}

// FreeOracle is the default k-SA oracle: the first proposals contribute up
// to k distinct decided values; later proposers adopt the most recent
// decided value. The zero value is not usable; use NewFreeOracle.
type FreeOracle struct {
	k       int
	decided map[model.KSAID][]model.Value
}

var _ Oracle = (*FreeOracle)(nil)

// NewFreeOracle returns an oracle for k-set agreement.
func NewFreeOracle(k int) *FreeOracle {
	return &FreeOracle{k: k, decided: make(map[model.KSAID][]model.Value)}
}

// Propose implements Oracle.
func (o *FreeOracle) Propose(obj model.KSAID, proc model.ProcID, v model.Value) model.Value {
	vals := o.decided[obj]
	for _, d := range vals {
		if d == v {
			return v // value already decided: deciding it again is free
		}
	}
	if len(vals) < o.k {
		o.decided[obj] = append(vals, v)
		return v
	}
	return vals[len(vals)-1]
}

// action is one queued externally-visible action of an automaton.
type action struct {
	kind    model.StepKind
	to      model.ProcID
	msg     model.MsgID
	payload model.Payload
	obj     model.KSAID
	val     model.Value
	note    string
}

// Env collects the actions an automaton emits during a handler call.
type Env struct {
	id      model.ProcID
	n       int
	emitted []action
}

// ID returns the process identity the automaton runs as.
func (e *Env) ID() model.ProcID { return e.id }

// N returns the number of processes.
func (e *Env) N() int { return e.n }

// Send queues a point-to-point send of payload to process to.
func (e *Env) Send(to model.ProcID, payload model.Payload) {
	e.emitted = append(e.emitted, action{kind: model.KindSend, to: to, payload: payload})
}

// SendAll queues a send of payload to every process, including the sender
// (the paper's network is complete and includes self-loops).
func (e *Env) SendAll(payload model.Payload) {
	for p := 1; p <= e.n; p++ {
		e.Send(model.ProcID(p), payload)
	}
}

// Propose queues a proposition of val on the k-SA object obj. The matching
// decision arrives through OnDecide; no action emitted after Propose
// executes before the decision does.
func (e *Env) Propose(obj model.KSAID, val model.Value) {
	e.emitted = append(e.emitted, action{kind: model.KindPropose, obj: obj, val: val})
}

// Deliver queues the B-delivery of broadcast message msg (broadcast by
// origin, with the given content) to the local upper layer.
func (e *Env) Deliver(msg model.MsgID, origin model.ProcID, payload model.Payload) {
	e.emitted = append(e.emitted, action{kind: model.KindDeliver, to: origin, msg: msg, payload: payload})
}

// ReturnBroadcast queues the response of the B.broadcast invocation that
// created msg.
func (e *Env) ReturnBroadcast(msg model.MsgID) {
	e.emitted = append(e.emitted, action{kind: model.KindBroadcastReturn, msg: msg})
}

// Internal queues an internal computation step, visible in traces for
// debugging but ignored by all specifications.
func (e *Env) Internal(note string) {
	e.emitted = append(e.emitted, action{kind: model.KindInternal, note: note})
}

// inFlight is a sent, not yet received, point-to-point message.
type inFlight struct {
	inst    model.MsgID
	from    model.ProcID
	to      model.ProcID
	payload model.Payload
}

// procState is the runtime state of one process.
type procState struct {
	id        model.ProcID
	automaton Automaton
	app       App
	pending   []action
	// blocked is set between the execution of a propose action and the
	// firing of its decision.
	blocked bool
	// pendingDecide holds the oracle's answer awaiting FireDecide.
	pendingDecide *struct {
		obj model.KSAID
		val model.Value
	}
	crashed bool
	// openBroadcast is the message id of the in-progress B.broadcast
	// invocation, or NoMsg.
	openBroadcast model.MsgID
	// appDecided tracks the one-shot output of the app.
	appDecided bool
}

// Config configures a Runtime.
type Config struct {
	// N is the number of processes (p_1..p_N).
	N int
	// NewAutomaton builds the broadcast algorithm instance for each
	// process. Required.
	NewAutomaton func(id model.ProcID) Automaton
	// Oracle provides the k-SA objects. Defaults to NewFreeOracle(1),
	// which is usually wrong for k>1 workloads — set it explicitly.
	Oracle Oracle
	// NewApp optionally builds a k-SA-solving application per process.
	NewApp func(id model.ProcID) App
	// Inputs are the app's proposed values, indexed by process-1.
	Inputs []model.Value
	// AppObject is the k-SA object identity under which app proposals
	// and decisions are recorded. Defaults to DefaultAppObject.
	AppObject model.KSAID
	// Obs receives runtime metrics (step counts per kind, dispatched
	// events, queue depths, crash injections). Nil disables recording
	// entirely; the hot path then costs nil checks only.
	Obs *obs.Registry
	// LiveSpecs are specifications checked online while the run executes:
	// every recorded step is fed to each spec's incremental checker the
	// moment it is appended. RunRandom and RunFair stop at the first
	// violating step (see LiveViolationError); the verdicts are available
	// through LiveMonitor whether or not a violation occurred.
	LiveSpecs []spec.Spec
	// Sink, when non-nil, receives every recorded step the moment it is
	// appended — a live tee for streaming consumers, typically a
	// trace.BinaryWriter persisting the run in wire format v1 without the
	// step log ever being materialized twice. Called synchronously on the
	// recording path; a slow sink slows the run.
	Sink trace.Sink
}

// DefaultAppObject is the object id used to record app-level (implemented)
// k-SA propositions and decisions, chosen high to stay clear of oracle
// object ids.
const DefaultAppObject model.KSAID = 1000

// Runtime executes automata step by step and records the execution.
type Runtime struct {
	cfg Config
	// buf holds the recorded steps in chunked blocks (no realloc-and-copy
	// growth on long runs); x is the contiguous view, materialized lazily
	// by Execution and extended incrementally as the run grows.
	buf     model.StepBuffer
	x       *model.Execution
	procs   []*procState
	network []inFlight
	nextMsg model.MsgID
	met     *schedMetrics
	// envFree pools the action slices handlers emit into: dispatch reuses
	// a drained slice's backing array instead of allocating one per
	// handler call. Handlers never run nested (only the dispatch loop
	// invokes them), so a small free list suffices.
	envFree [][]action
	// mon checks LiveSpecs incrementally as steps are recorded; nil when
	// no live specs are configured.
	mon     *spec.Monitor
	liveV   *spec.Violation
	liveIdx int
	// evScratch backs enabledEvents: enumeration runs once per scheduled
	// step, so the slice is reused across steps instead of allocated
	// fresh (strategies must not retain it — see the Strategy contract).
	evScratch []Event
}

// New builds a runtime. It returns an error on invalid configuration.
func New(cfg Config) (*Runtime, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("sched: N must be positive, got %d", cfg.N)
	}
	if cfg.NewAutomaton == nil {
		return nil, fmt.Errorf("sched: NewAutomaton is required")
	}
	if cfg.Oracle == nil {
		cfg.Oracle = NewFreeOracle(1)
	}
	if cfg.AppObject == model.NoKSA {
		cfg.AppObject = DefaultAppObject
	}
	r := &Runtime{
		cfg:     cfg,
		x:       model.NewExecution(cfg.N),
		procs:   make([]*procState, cfg.N),
		nextMsg: 1,
		met:     newSchedMetrics(cfg.Obs),
		liveIdx: -1,
	}
	if len(cfg.LiveSpecs) > 0 {
		// Built before the init loop below: app initialization records
		// Propose steps, which the live checkers must see too.
		r.mon = spec.NewMonitor(cfg.N, cfg.LiveSpecs...)
	}
	for i := 0; i < cfg.N; i++ {
		id := model.ProcID(i + 1)
		ps := &procState{id: id, automaton: cfg.NewAutomaton(id)}
		if cfg.NewApp != nil {
			ps.app = cfg.NewApp(id)
		}
		r.procs[i] = ps
	}
	for _, ps := range r.procs {
		r.runAutomaton(ps, func(env *Env) { ps.automaton.Init(env) })
	}
	for _, ps := range r.procs {
		if ps.app == nil {
			continue
		}
		input := model.Value(fmt.Sprintf("input-%d", ps.id))
		if int(ps.id)-1 < len(cfg.Inputs) {
			input = cfg.Inputs[ps.id-1]
		}
		r.record(model.Step{Proc: ps.id, Kind: model.KindPropose, Obj: cfg.AppObject, Val: input})
		ps.app.Init(&appEnv{rt: r, ps: ps}, input)
	}
	return r, nil
}

// Execution returns the execution recorded so far. Callers must not
// mutate it while the runtime is still running. The returned value is the
// runtime's canonical execution: steps recorded since the previous call
// are appended to it (one exact-size reallocation at most), and later
// calls extend the same object, so traces built from it observe run
// extensions just as they did when recording appended directly.
func (r *Runtime) Execution() *model.Execution {
	r.x.Steps = r.buf.AppendTo(r.x.Steps)
	return r.x
}

// StepCount returns the number of steps recorded so far without
// materializing the execution.
func (r *Runtime) StepCount() int { return r.buf.Len() }

// record appends a step to the execution and counts it. With live specs
// configured, the step is also fed to their incremental checkers, and the
// first overall violation is latched together with its step index. A
// configured Sink observes the step last, after it is durably buffered.
func (r *Runtime) record(s model.Step) {
	idx := r.buf.Len()
	r.buf.Append(s)
	r.met.record(s)
	if r.mon != nil {
		if v := r.mon.Feed(s); v != nil && r.liveV == nil {
			r.liveV = v
			r.liveIdx = idx
		}
	}
	if r.cfg.Sink != nil {
		r.cfg.Sink.Step(s)
	}
}

// LiveViolation returns the first violation latched by the live checkers
// and the index of the step that caused it (nil, -1 when none, or when no
// live specs are configured).
func (r *Runtime) LiveViolation() (*spec.Violation, int) { return r.liveV, r.liveIdx }

// LiveMonitor returns the live checking monitor, nil when no live specs
// are configured. Callers that want end-of-trace (liveness) verdicts must
// call its Finish once the run is over.
func (r *Runtime) LiveMonitor() *spec.Monitor { return r.mon }

// NewMsgID allocates a fresh message identity (shared between broadcast
// messages and point-to-point instances, so identities never collide).
func (r *Runtime) NewMsgID() model.MsgID {
	id := r.nextMsg
	r.nextMsg++
	return id
}

// proc returns the state of process p.
func (r *Runtime) proc(p model.ProcID) (*procState, error) {
	if p < 1 || int(p) > r.cfg.N {
		return nil, fmt.Errorf("sched: no process %v", p)
	}
	return r.procs[p-1], nil
}

// runAutomaton invokes an automaton handler and appends the emitted
// actions to the process's queue. The emission slice comes from a per-
// runtime free list: the actions are copied onto the process queue as soon
// as the handler returns, so the backing array is immediately reusable by
// the next dispatch instead of garbage.
func (r *Runtime) runAutomaton(ps *procState, call func(env *Env)) {
	var scratch []action
	if k := len(r.envFree); k > 0 {
		scratch = r.envFree[k-1]
		r.envFree = r.envFree[:k-1]
	}
	env := Env{id: ps.id, n: r.cfg.N, emitted: scratch}
	call(&env)
	r.met.emitted(len(env.emitted))
	ps.pending = append(ps.pending, env.emitted...)
	if cap(env.emitted) > 0 {
		r.envFree = append(r.envFree, env.emitted[:0])
	}
}

// appEnv adapts the runtime to the AppEnv interface.
type appEnv struct {
	rt *Runtime
	ps *procState
}

var _ AppEnv = (*appEnv)(nil)

func (e *appEnv) ID() model.ProcID { return e.ps.id }
func (e *appEnv) N() int           { return e.rt.cfg.N }

// Broadcast invokes B.broadcast on the process's broadcast automaton. The
// invocation is a step recorded immediately: in the paper's model the
// invocation event is the app's own step, not a queued action.
func (e *appEnv) Broadcast(payload model.Payload) {
	e.rt.invokeBroadcast(e.ps, payload)
}

// Decide records the app's one-shot decision on the implemented object.
func (e *appEnv) Decide(v model.Value) {
	if e.ps.appDecided {
		return
	}
	e.ps.appDecided = true
	e.rt.record(model.Step{Proc: e.ps.id, Kind: model.KindDecide, Obj: e.rt.cfg.AppObject, Val: v})
}
