package sched

import (
	"fmt"
	"sort"

	"nobroadcast/internal/model"
	"nobroadcast/internal/rng"
)

// This file defines the pluggable scheduling layer: a Strategy owns the
// one decision the run loop delegates — which enabled event executes
// next. The deterministic fair schedule and the seeded uniform-random
// schedule (previously monolithic loops in run.go) are strategies, as is
// the PCT priority-based sampler used by internal/explore to hunt for
// violating schedules. The paper's adversarial scheduler remains separate
// (internal/adversary drives the event primitives directly; it needs to
// interleave construction bookkeeping between steps, not just pick).

// EventKind enumerates the scheduler's choices.
type EventKind uint8

// The event kinds a scheduler picks among.
const (
	// EventExec executes the process's next queued action.
	EventExec EventKind = iota
	// EventDecide fires the process's pending k-SA decision.
	EventDecide
	// EventReceive delivers an in-flight point-to-point message.
	EventReceive
	// EventInvoke invokes the process's next queued upper-layer broadcast.
	EventInvoke
)

// String names the kind for logs and minimized-schedule dumps.
func (k EventKind) String() string {
	switch k {
	case EventExec:
		return "exec"
	case EventDecide:
		return "decide"
	case EventReceive:
		return "receive"
	case EventInvoke:
		return "invoke"
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Event is one enabled scheduler choice. Proc is the acting process (the
// receiver, for EventReceive). For EventReceive, Net is the message's
// current index in the in-flight queue — valid only for the step it was
// enumerated for — while Msg and From identify the message instance
// stably (replay matching uses From, which survives re-execution with a
// different event prefix; Msg is allocation-order dependent).
type Event struct {
	Kind EventKind
	Proc model.ProcID
	Net  int
	Msg  model.MsgID
	From model.ProcID
}

// String renders the event for schedule dumps.
func (e Event) String() string {
	if e.Kind == EventReceive {
		return fmt.Sprintf("receive(%v<-%v m%d)", e.Proc, e.From, e.Msg)
	}
	return fmt.Sprintf("%s(%v)", e.Kind, e.Proc)
}

// StopRun is the sentinel a Strategy returns from Next to end the run
// before the event bound: the recorded prefix becomes the run's trace.
// Replay strategies use it when their decision sequence is exhausted.
const StopRun = -1

// Strategy picks the next event of a run. The run loop (Runtime.Run)
// calls Begin once, then Next once per step with the non-empty slice of
// currently enabled events; Next returns the index of the event to
// execute, or StopRun to end the run at the current prefix.
//
// Determinism contract: a Strategy must be a pure function of (a) the
// RunOptions it saw at Begin — in particular all randomness must come
// from a generator seeded by opts.Seed — and (b) the sequence of enabled
// sets it has been shown. It must not retain the enabled slice across
// calls (the run loop reuses its backing array), must not consult wall
// clocks, global generators, or map iteration order, and must not mutate
// the runtime. Replays with equal seeds then produce bit-identical
// traces, which Lemma 9's indistinguishability machinery and the
// explore/sweep fan-out both rely on.
type Strategy interface {
	// Name identifies the strategy ("fair", "random", "pct", ...).
	Name() string
	// Begin resets the strategy for a fresh run on rt. Strategies are
	// single-run state machines; reusing one for another run requires no
	// more than the Begin call.
	Begin(rt *Runtime, opts RunOptions)
	// Next returns the index into enabled of the event to execute at
	// step (0-based count of executed events), or StopRun. enabled is
	// non-empty and must not be retained.
	Next(enabled []Event, step int) int
}

// CrashPointer is optionally implemented by strategies whose schedules
// honor RunOptions.CrashAt injections only at specific points. The run
// loop asks before every step; strategies that do not implement it have
// due crashes applied before every step (the historical RunRandom
// timing). The fair strategy implements it to preserve the historical
// RunFair timing: crashes fire at process-slot boundaries, never inside
// a round's delivery pass.
type CrashPointer interface {
	AtCrashPoint() bool
}

// NewFair returns the deterministic fair strategy: each round lets every
// process p_1..p_n invoke one queued upper-layer broadcast if possible
// and take one action or decision, then delivers every message that was
// in flight when the round's delivery pass began, oldest first. Message
// transit is thus bounded by one round — a convenient synchronous-looking
// special case of the asynchronous model. Ignores opts.Seed.
func NewFair() Strategy { return &fairStrategy{} }

// NewRandom returns the seeded uniform-random strategy: each step picks
// uniformly among the enabled events, driven by a generator seeded with
// opts.Seed. The historical RunRandom schedule, bit for bit.
func NewRandom() Strategy { return &randomStrategy{} }

// fairStrategy replays the historical RunFair round structure one pick
// at a time: slot phase (process p invokes, then decides-or-executes),
// then the delivery phase over the messages in flight at its start.
type fairStrategy struct {
	rt *Runtime
	n  int
	// deliver is false in the slot phase (process p's slot, invoked set
	// once the slot consumed its invoke pick) and true in the delivery
	// phase (budget old messages left to consider; skip dead-receiver
	// messages parked at the queue front).
	deliver bool
	p       int
	invoked bool
	budget  int
	skip    int
}

func (s *fairStrategy) Name() string { return "fair" }

func (s *fairStrategy) Begin(rt *Runtime, opts RunOptions) {
	*s = fairStrategy{rt: rt, n: rt.cfg.N, p: 1}
}

// find returns the index of the first enabled event of the given kind by
// the given process, or -1.
func find(enabled []Event, kind EventKind, p model.ProcID) int {
	for i, e := range enabled {
		if e.Kind == kind && e.Proc == p {
			return i
		}
	}
	return -1
}

// findNet returns the index of the enabled receive event for in-flight
// queue position net, or -1 (the message targets a crashed process).
func findNet(enabled []Event, net int) int {
	for i, e := range enabled {
		if e.Kind == EventReceive && e.Net == net {
			return i
		}
	}
	return -1
}

func (s *fairStrategy) Next(enabled []Event, step int) int {
	// Two sweeps: the first covers the remaining slots of the current
	// round plus its delivery phase; after wrapping, the second covers a
	// full fresh round. A non-empty enabled set guarantees a pick within
	// one full round, so the second sweep always succeeds.
	for sweep := 0; sweep < 2; sweep++ {
		for !s.deliver && s.p <= s.n {
			pid := model.ProcID(s.p)
			if !s.invoked {
				if i := find(enabled, EventInvoke, pid); i >= 0 {
					s.invoked = true
					return i
				}
			}
			// The slot's one action: a pending decision fires, else the
			// next queued action executes. Either way the slot ends.
			i := find(enabled, EventDecide, pid)
			if i < 0 {
				i = find(enabled, EventExec, pid)
			}
			s.p++
			s.invoked = false
			if i >= 0 {
				return i
			}
		}
		if !s.deliver {
			// Deliver everything currently in flight to live processes.
			// Receivers may send more; those wait for the next round.
			s.deliver = true
			s.budget = len(s.rt.network)
			s.skip = 0
		}
		for s.budget > 0 {
			if i := findNet(enabled, s.skip); i >= 0 {
				s.budget--
				return i
			}
			// The oldest unconsidered message targets a crashed process:
			// it stays parked at the queue front and the scan moves on.
			s.skip++
			s.budget--
		}
		// Delivery pass exhausted: wrap to the next round.
		s.deliver = false
		s.p = 1
		s.invoked = false
	}
	// Unreachable: enabled was non-empty and a full round considers
	// every process and every deliverable message.
	return 0
}

// AtCrashPoint implements CrashPointer: the historical RunFair honored
// crash injections at the start of each process slot — never between a
// slot's invoke and its action, and never inside a delivery pass. A
// delivery phase with no deliverable old message left is already at the
// next round's first slot boundary.
func (s *fairStrategy) AtCrashPoint() bool {
	if !s.deliver {
		return !s.invoked && s.p <= s.n
	}
	for i := s.skip; i < s.skip+s.budget && i < len(s.rt.network); i++ {
		if ps, err := s.rt.proc(s.rt.network[i].to); err == nil && !ps.crashed {
			return false // a deliverable old message remains: mid-pass
		}
	}
	return true
}

// randomStrategy picks uniformly among the enabled events.
type randomStrategy struct {
	src *rng.Source
}

func (s *randomStrategy) Name() string { return "random" }

func (s *randomStrategy) Begin(rt *Runtime, opts RunOptions) {
	s.src = rng.New(opts.Seed)
}

func (s *randomStrategy) Next(enabled []Event, step int) int {
	return s.src.Intn(len(enabled))
}

// DefaultPCTDepth is the number of priority change points a PCT strategy
// uses when none is configured.
const DefaultPCTDepth = 3

// NewPCT returns a PCT-style priority-based sampler [Burckhardt et al.,
// ASPLOS 2010], adapted to the message-passing runtime: the schedulable
// entities are processes (exec/decide/invoke events) and in-flight
// message instances (receive events). Every entity draws a random high
// priority on first sight and the highest-priority enabled event runs;
// at depth step ordinals drawn uniformly from the run's event budget,
// the entity about to be scheduled is demoted below every initial
// priority. Each run is thus a schedule with at most depth priority
// inversions — the shape that surfaces bugs needing d ordering
// "accidents" with probability ≥ 1/(n·k^(d-1)) in the original analysis,
// and empirically finds ordering violations far faster than uniform
// sampling. depth <= 0 selects DefaultPCTDepth. Seeded by opts.Seed.
func NewPCT(depth int) Strategy {
	if depth <= 0 {
		depth = DefaultPCTDepth
	}
	return &pctStrategy{depth: depth}
}

// pctEntity is one schedulable unit: a process, or (for receive events)
// a message instance.
type pctEntity struct {
	proc model.ProcID
	msg  model.MsgID
}

func eventEntity(e Event) pctEntity {
	if e.Kind == EventReceive {
		return pctEntity{msg: e.Msg}
	}
	return pctEntity{proc: e.Proc}
}

type pctStrategy struct {
	depth   int
	src     *rng.Source
	prio    map[pctEntity]uint64
	change  map[int]bool
	demoted uint64
}

func (s *pctStrategy) Name() string { return "pct" }

func (s *pctStrategy) Begin(rt *Runtime, opts RunOptions) {
	s.src = rng.New(opts.Seed)
	s.prio = make(map[pctEntity]uint64)
	s.change = make(map[int]bool, s.depth)
	s.demoted = 0
	// Change points are drawn over the full event budget; draws landing
	// on the same ordinal merge (a run then has fewer inversions), and
	// ordinals past the actual run length never fire. Both are standard
	// PCT behavior — the d inversions are "at most d".
	for i := 0; i < s.depth; i++ {
		s.change[s.src.Intn(opts.maxEvents())] = true
	}
}

// priority returns the entity's priority, drawing a fresh high one (top
// bit set, so always above the 0..depth-1 demotion band) on first sight.
// First-sight order follows the deterministic enabled order, so the
// generator stream — and with it the whole schedule — is a pure function
// of the seed.
func (s *pctStrategy) priority(ent pctEntity) uint64 {
	p, ok := s.prio[ent]
	if !ok {
		p = s.src.Uint64() | 1<<63
		s.prio[ent] = p
	}
	return p
}

func (s *pctStrategy) pick(enabled []Event) int {
	best, bestP := 0, uint64(0)
	for i, e := range enabled {
		if p := s.priority(eventEntity(e)); i == 0 || p > bestP {
			best, bestP = i, p
		}
	}
	return best
}

func (s *pctStrategy) Next(enabled []Event, step int) int {
	best := s.pick(enabled)
	if s.change[step] {
		// Change point: demote the entity about to run below every
		// initial priority and schedule under the new order. Demotions
		// keep their relative age (0, 1, 2, ...), as in the original
		// algorithm.
		s.prio[eventEntity(enabled[best])] = s.demoted
		s.demoted++
		best = s.pick(enabled)
	}
	return best
}

// NewReplay returns a strategy that re-executes a recorded decision
// sequence (see Recorder). Each step the next decision is matched
// against the enabled events — by (kind, process) for process events;
// receives prefer the exact message instance and fall back to the
// oldest in-flight message with the same (receiver, sender). Replaying
// an unmodified recorded sequence is therefore bit-exact (the run
// evolves identically, so every instance id lines up), while a
// subsequence — MsgIDs renumber once any event is dropped — replays as
// "execute these decisions, in order, as far as they still apply".
// Decisions that match nothing enabled are skipped, and when the
// sequence is exhausted the run stops (StopRun). That skip-and-stop
// semantics is exactly the re-execution the delta-debugging minimizer in
// internal/explore needs: a minimized candidate either reproduces the
// violation under the live checkers or it does not, and correctness
// never depends on the matching being semantically exact.
func NewReplay(decisions []Event) Strategy {
	return &replayStrategy{decisions: decisions}
}

type replayStrategy struct {
	decisions []Event
	cursor    int
}

func (s *replayStrategy) Name() string { return "replay" }

func (s *replayStrategy) Begin(rt *Runtime, opts RunOptions) { s.cursor = 0 }

// match returns the index of the enabled event the decision applies to,
// or -1. An exact instance-id match wins (bit-exact full-sequence
// replay); otherwise the oldest same-(receiver, sender) message stands
// in — MsgIDs are allocated in execution order, so dropping an earlier
// event renumbers every later message and exact-id-only matching would
// make every minimization candidate vacuous.
func match(enabled []Event, d Event) int {
	fallback := -1
	for i, e := range enabled {
		if e.Kind != d.Kind || e.Proc != d.Proc {
			continue
		}
		if d.Kind != EventReceive {
			return i
		}
		if e.From != d.From {
			continue
		}
		if e.Msg == d.Msg {
			return i
		}
		if fallback < 0 {
			fallback = i
		}
	}
	return fallback
}

func (s *replayStrategy) Next(enabled []Event, step int) int {
	for s.cursor < len(s.decisions) {
		d := s.decisions[s.cursor]
		s.cursor++
		if i := match(enabled, d); i >= 0 {
			return i
		}
	}
	return StopRun
}

// Recorder wraps a strategy and records the event chosen at every step,
// producing the decision sequence NewReplay re-executes. The wrapper is
// transparent: it forwards Begin/Next/AtCrashPoint, so a recorded run is
// bit-identical to an unrecorded one.
type Recorder struct {
	inner     Strategy
	decisions []Event
}

// NewRecorder wraps inner.
func NewRecorder(inner Strategy) *Recorder { return &Recorder{inner: inner} }

// Name implements Strategy.
func (r *Recorder) Name() string { return r.inner.Name() }

// Begin implements Strategy, clearing the recorded sequence.
func (r *Recorder) Begin(rt *Runtime, opts RunOptions) {
	r.decisions = r.decisions[:0]
	r.inner.Begin(rt, opts)
}

// Next implements Strategy.
func (r *Recorder) Next(enabled []Event, step int) int {
	i := r.inner.Next(enabled, step)
	if i >= 0 && i < len(enabled) {
		r.decisions = append(r.decisions, enabled[i])
	}
	return i
}

// AtCrashPoint implements CrashPointer by delegation; an ungated inner
// strategy keeps the default apply-anywhere timing.
func (r *Recorder) AtCrashPoint() bool {
	if cp, ok := r.inner.(CrashPointer); ok {
		return cp.AtCrashPoint()
	}
	return true
}

// Decisions returns the recorded sequence. The slice aliases the
// recorder's buffer; copy it before the next Begin.
func (r *Recorder) Decisions() []Event { return r.decisions }

// StrategyNames lists the selectable strategy names for CLI help.
func StrategyNames() []string { return []string{"fair", "random", "pct"} }

// NewStrategy resolves a strategy by name ("fair", "random", "pct");
// pctDepth parameterizes "pct" (<= 0 selects DefaultPCTDepth).
func NewStrategy(name string, pctDepth int) (Strategy, error) {
	switch name {
	case "fair":
		return NewFair(), nil
	case "random":
		return NewRandom(), nil
	case "pct":
		return NewPCT(pctDepth), nil
	}
	return nil, fmt.Errorf("sched: unknown strategy %q (have %v)", name, StrategyNames())
}

// crashSchedule is the run loop's normalized view of RunOptions.CrashAt:
// injections sorted by (ordinal, process), applied in that deterministic
// order when due. (The historical RunFair iterated the map per slot, so
// two injections becoming due at the same slot fired in random map
// order; the sort fixes that without moving any single injection.)
type crashSchedule struct {
	points []crashPoint
	next   int
}

type crashPoint struct {
	at int
	p  model.ProcID
}

func newCrashSchedule(crashAt map[int]model.ProcID) crashSchedule {
	if len(crashAt) == 0 {
		return crashSchedule{}
	}
	pts := make([]crashPoint, 0, len(crashAt))
	for at, p := range crashAt {
		pts = append(pts, crashPoint{at: at, p: p})
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].at != pts[j].at {
			return pts[i].at < pts[j].at
		}
		return pts[i].p < pts[j].p
	})
	return crashSchedule{points: pts}
}

// pending reports whether any injection is still unapplied.
func (c *crashSchedule) pending() bool { return c.next < len(c.points) }

// apply crashes every process whose injection ordinal has been reached.
// Crashing an already-crashed process is ignored.
func (c *crashSchedule) apply(r *Runtime, count int) error {
	for c.next < len(c.points) && c.points[c.next].at <= count {
		p := c.points[c.next].p
		c.next++
		if r.Crashed(p) {
			continue
		}
		if err := r.Crash(p); err != nil {
			return err
		}
	}
	return nil
}
