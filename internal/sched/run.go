package sched

import (
	"fmt"

	"nobroadcast/internal/model"
	"nobroadcast/internal/spec"
	"nobroadcast/internal/trace"
)

// This file provides the unified strategy-driven run loop on top of the
// event primitives: crash injection, enabled-event enumeration, and
// fail-fast live checking are shared, while the pick itself is delegated
// to a Strategy (strategy.go). RunFair and RunRandom are thin wrappers
// preserving the historical entry points and their exact schedules. The
// paper's adversarial scheduler lives in internal/adversary.

// RunOptions configures a scheduler run.
type RunOptions struct {
	// Seed drives seeded strategies (random, pct). Ignored by fair.
	Seed uint64
	// MaxEvents bounds the run; zero selects the default (100000).
	// Exceeding the bound returns an incomplete trace, not an error: the
	// run is a valid execution prefix.
	MaxEvents int
	// CrashAt injects crashes: after the event with the given ordinal has
	// executed, the listed process crashes. Crashing an already-crashed
	// process is ignored. Strategies implementing CrashPointer can defer
	// a due injection to their next crash point (fair defers to slot
	// boundaries).
	CrashAt map[int]model.ProcID
	// Broadcasts feeds upper-layer B.broadcast invocations: each entry
	// (proc, payload) is invoked, in per-process order, as soon as the
	// process's previous invocation has returned (well-formedness
	// requires alternating invocations and responses). Runs driven by an
	// App usually leave this empty.
	Broadcasts []BroadcastReq
}

// BroadcastReq is an upper-layer broadcast request.
type BroadcastReq struct {
	Proc    model.ProcID
	Payload model.Payload
}

// LiveViolationError is returned by Run (and the RunFair/RunRandom
// wrappers) when a live spec checker rejects a recorded step: the run
// stops at the violating step instead of executing to the event bound.
// Trace holds the recorded prefix truncated to end at the violating
// step, with Complete left false — the run was cut short, so liveness
// verdicts over it are vacuous by design.
type LiveViolationError struct {
	V       *spec.Violation
	StepIdx int
	Trace   *trace.Trace
}

// Error implements error.
func (e *LiveViolationError) Error() string {
	return fmt.Sprintf("sched: live spec violation at step %d: %v", e.StepIdx, e.V)
}

// liveError wraps the latched live violation, nil when none. The trace
// is truncated to the violating step: a handler dispatch records several
// steps at once, so the raw execution may extend past the step the
// checker latched, and downstream consumers must not mistake the cut
// run for a longer (or complete) one.
func (r *Runtime) liveError() error {
	if r.liveV == nil {
		return nil
	}
	x := r.Execution()
	steps := x.Steps
	if n := r.liveIdx + 1; n >= 0 && n <= len(steps) {
		steps = steps[:n:n]
	}
	trunc := &model.Execution{N: x.N, Steps: steps}
	return &LiveViolationError{V: r.liveV, StepIdx: r.liveIdx, Trace: &trace.Trace{X: trunc}}
}

func (o RunOptions) maxEvents() int {
	if o.MaxEvents <= 0 {
		return 100000
	}
	return o.MaxEvents
}

// runState carries the per-run scheduling state.
type runState struct {
	// queues holds not-yet-invoked upper-layer broadcasts per process.
	queues map[model.ProcID][]model.Payload
}

func newRunState(opts RunOptions) *runState {
	st := &runState{queues: make(map[model.ProcID][]model.Payload)}
	for _, b := range opts.Broadcasts {
		st.queues[b.Proc] = append(st.queues[b.Proc], b.Payload)
	}
	return st
}

// canInvoke reports whether process p may take its next upper-layer
// broadcast invocation: alive, not blocked mid-proposition, and no open
// invocation.
func (r *Runtime) canInvoke(st *runState, p model.ProcID) bool {
	ps, err := r.proc(p)
	if err != nil {
		return false
	}
	return len(st.queues[p]) > 0 && !ps.crashed && !ps.blocked && ps.openBroadcast == model.NoMsg
}

// enabledEvents lists the currently enabled events in a deterministic
// order. The returned slice is backed by a per-runtime scratch buffer
// reused across steps (enumeration runs once per scheduled event and
// dominated allocations in long explorations); callers — strategies
// included — must not retain it past the step.
func (r *Runtime) enabledEvents(st *runState) []Event {
	out := r.evScratch[:0]
	for _, ps := range r.procs {
		if ps.crashed {
			continue
		}
		if ps.blocked && ps.pendingDecide != nil {
			out = append(out, Event{Kind: EventDecide, Proc: ps.id})
		} else if !ps.blocked && len(ps.pending) > 0 {
			out = append(out, Event{Kind: EventExec, Proc: ps.id})
		}
		if r.canInvoke(st, ps.id) {
			out = append(out, Event{Kind: EventInvoke, Proc: ps.id})
		}
	}
	for i, f := range r.network {
		if to, err := r.proc(f.to); err == nil && !to.crashed {
			out = append(out, Event{Kind: EventReceive, Proc: f.to, Net: i, Msg: f.inst, From: f.from})
		}
	}
	r.evScratch = out
	return out
}

func (r *Runtime) execEvent(st *runState, e Event) error {
	switch e.Kind {
	case EventExec:
		_, ok, err := r.ExecNext(e.Proc)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("sched: exec event on %v not enabled", e.Proc)
		}
		return nil
	case EventDecide:
		_, err := r.FireDecide(e.Proc)
		return err
	case EventReceive:
		_, err := r.ReceiveIndex(e.Net)
		return err
	case EventInvoke:
		q := st.queues[e.Proc]
		if len(q) == 0 {
			return fmt.Errorf("sched: no queued broadcast for %v", e.Proc)
		}
		st.queues[e.Proc] = q[1:]
		_, err := r.InvokeBroadcast(e.Proc, q[0])
		return err
	default:
		return fmt.Errorf("sched: unknown event kind %d", e.Kind)
	}
}

// quiescentWith reports quiescence including the run's pending
// upper-layer broadcasts on live processes.
func (r *Runtime) quiescentWith(st *runState) bool {
	if !r.Quiescent() {
		return false
	}
	for p, q := range st.queues {
		if len(q) == 0 {
			continue
		}
		if ps, err := r.proc(p); err == nil && !ps.crashed {
			return false
		}
	}
	return true
}

// Run drives the runtime under the given strategy until quiescence, the
// event bound, a strategy-requested stop, or a live spec violation
// (returned as *LiveViolationError). Each step the loop applies due
// crash injections (at the strategy's crash points, see CrashPointer),
// enumerates the enabled events, and executes the strategy's pick. It
// returns the recorded trace, with Complete set iff the run reached
// quiescence. Equal (strategy, options) pairs produce bit-identical
// traces — see the Strategy determinism contract.
func (r *Runtime) Run(s Strategy, opts RunOptions) (*trace.Trace, error) {
	st := newRunState(opts)
	s.Begin(r, opts)
	cp, gated := s.(CrashPointer)
	crashes := newCrashSchedule(opts.CrashAt)
	count := 0
	for count < opts.maxEvents() {
		if crashes.pending() && (!gated || cp.AtCrashPoint()) {
			if err := crashes.apply(r, count); err != nil {
				return nil, err
			}
		}
		enabled := r.enabledEvents(st)
		if len(enabled) == 0 {
			break
		}
		pick := s.Next(enabled, count)
		if pick == StopRun {
			break
		}
		if pick < 0 || pick >= len(enabled) {
			return nil, fmt.Errorf("sched: strategy %s picked %d of %d enabled events", s.Name(), pick, len(enabled))
		}
		if err := r.execEvent(st, enabled[pick]); err != nil {
			return nil, err
		}
		count++
		if err := r.liveError(); err != nil {
			r.met.dispatched(count)
			return nil, err
		}
	}
	r.met.dispatched(count)
	return &trace.Trace{X: r.Execution(), Complete: r.quiescentWith(st)}, nil
}

// RunRandom drives the runtime with a uniformly random (seeded,
// deterministic) choice among enabled events until quiescence or the event
// bound. Equivalent to Run(NewRandom(), opts).
func (r *Runtime) RunRandom(opts RunOptions) (*trace.Trace, error) {
	return r.Run(NewRandom(), opts)
}

// RunFair drives the runtime with the deterministic fair schedule (see
// NewFair). Equivalent to Run(NewFair(), opts).
func (r *Runtime) RunFair(opts RunOptions) (*trace.Trace, error) {
	return r.Run(NewFair(), opts)
}
