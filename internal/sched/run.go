package sched

import (
	"fmt"

	"nobroadcast/internal/model"
	"nobroadcast/internal/rng"
	"nobroadcast/internal/spec"
	"nobroadcast/internal/trace"
)

// This file provides generic schedulers on top of the event primitives:
// a deterministic fair scheduler and a seeded random scheduler with crash
// injection. The paper's adversarial scheduler lives in internal/adversary.

// RunOptions configures a scheduler run.
type RunOptions struct {
	// Seed drives the random scheduler. Ignored by RunFair.
	Seed uint64
	// MaxEvents bounds the run; zero selects the default (100000).
	// Exceeding the bound returns an incomplete trace, not an error: the
	// run is a valid execution prefix.
	MaxEvents int
	// CrashAt injects crashes: after the event with the given ordinal has
	// executed, the listed process crashes. Crashing an already-crashed
	// process is ignored.
	CrashAt map[int]model.ProcID
	// Broadcasts feeds upper-layer B.broadcast invocations: each entry
	// (proc, payload) is invoked, in per-process order, as soon as the
	// process's previous invocation has returned (well-formedness
	// requires alternating invocations and responses). Runs driven by an
	// App usually leave this empty.
	Broadcasts []BroadcastReq
}

// BroadcastReq is an upper-layer broadcast request.
type BroadcastReq struct {
	Proc    model.ProcID
	Payload model.Payload
}

// LiveViolationError is returned by RunRandom and RunFair when a live
// spec checker rejects a recorded step: the run stops at the violating
// step instead of executing to the event bound. Trace holds the recorded
// prefix up to and including that step (never complete — the run was cut
// short).
type LiveViolationError struct {
	V       *spec.Violation
	StepIdx int
	Trace   *trace.Trace
}

// Error implements error.
func (e *LiveViolationError) Error() string {
	return fmt.Sprintf("sched: live spec violation at step %d: %v", e.StepIdx, e.V)
}

// liveError wraps the latched live violation, nil when none.
func (r *Runtime) liveError() error {
	if r.liveV == nil {
		return nil
	}
	return &LiveViolationError{V: r.liveV, StepIdx: r.liveIdx, Trace: &trace.Trace{X: r.Execution()}}
}

func (o RunOptions) maxEvents() int {
	if o.MaxEvents <= 0 {
		return 100000
	}
	return o.MaxEvents
}

// event is one enabled scheduler choice.
type event struct {
	kind int // 0 exec, 1 decide, 2 receive, 3 invoke broadcast
	proc model.ProcID
	net  int
}

// runState carries the per-run scheduling state.
type runState struct {
	// queues holds not-yet-invoked upper-layer broadcasts per process.
	queues map[model.ProcID][]model.Payload
}

func newRunState(opts RunOptions) *runState {
	st := &runState{queues: make(map[model.ProcID][]model.Payload)}
	for _, b := range opts.Broadcasts {
		st.queues[b.Proc] = append(st.queues[b.Proc], b.Payload)
	}
	return st
}

// canInvoke reports whether process p may take its next upper-layer
// broadcast invocation: alive, not blocked mid-proposition, and no open
// invocation.
func (r *Runtime) canInvoke(st *runState, p model.ProcID) bool {
	ps, err := r.proc(p)
	if err != nil {
		return false
	}
	return len(st.queues[p]) > 0 && !ps.crashed && !ps.blocked && ps.openBroadcast == model.NoMsg
}

// enabledEvents lists the currently enabled events in a deterministic
// order.
func (r *Runtime) enabledEvents(st *runState) []event {
	var out []event
	for _, ps := range r.procs {
		if ps.crashed {
			continue
		}
		if ps.blocked && ps.pendingDecide != nil {
			out = append(out, event{kind: 1, proc: ps.id})
		} else if !ps.blocked && len(ps.pending) > 0 {
			out = append(out, event{kind: 0, proc: ps.id})
		}
		if r.canInvoke(st, ps.id) {
			out = append(out, event{kind: 3, proc: ps.id})
		}
	}
	for i, f := range r.network {
		if to, err := r.proc(f.to); err == nil && !to.crashed {
			out = append(out, event{kind: 2, net: i})
		}
	}
	return out
}

func (r *Runtime) execEvent(st *runState, e event) error {
	switch e.kind {
	case 0:
		_, ok, err := r.ExecNext(e.proc)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("sched: exec event on %v not enabled", e.proc)
		}
		return nil
	case 1:
		_, err := r.FireDecide(e.proc)
		return err
	case 2:
		_, err := r.ReceiveIndex(e.net)
		return err
	case 3:
		q := st.queues[e.proc]
		if len(q) == 0 {
			return fmt.Errorf("sched: no queued broadcast for %v", e.proc)
		}
		st.queues[e.proc] = q[1:]
		_, err := r.InvokeBroadcast(e.proc, q[0])
		return err
	default:
		return fmt.Errorf("sched: unknown event kind %d", e.kind)
	}
}

// quiescentWith reports quiescence including the run's pending
// upper-layer broadcasts on live processes.
func (r *Runtime) quiescentWith(st *runState) bool {
	if !r.Quiescent() {
		return false
	}
	for p, q := range st.queues {
		if len(q) == 0 {
			continue
		}
		if ps, err := r.proc(p); err == nil && !ps.crashed {
			return false
		}
	}
	return true
}

// RunRandom drives the runtime with a uniformly random (seeded,
// deterministic) choice among enabled events until quiescence or the event
// bound. It returns the recorded trace, with Complete set iff the run
// reached quiescence.
func (r *Runtime) RunRandom(opts RunOptions) (*trace.Trace, error) {
	st := newRunState(opts)
	src := rng.New(opts.Seed)
	count := 0
	for count < opts.maxEvents() {
		if p, ok := opts.CrashAt[count]; ok && !r.Crashed(p) {
			if err := r.Crash(p); err != nil {
				return nil, err
			}
		}
		events := r.enabledEvents(st)
		if len(events) == 0 {
			break
		}
		if err := r.execEvent(st, events[src.Intn(len(events))]); err != nil {
			return nil, err
		}
		if err := r.liveError(); err != nil {
			r.met.dispatched(count + 1)
			return nil, err
		}
		count++
	}
	r.met.dispatched(count)
	return &trace.Trace{X: r.Execution(), Complete: r.quiescentWith(st)}, nil
}

// RunFair drives the runtime with a deterministic fair schedule: each
// round lets every live process invoke a queued broadcast if possible and
// execute one action or decision, then delivers every message currently in
// flight (oldest first). Message transit is thus bounded by one round — a
// convenient synchronous-looking special case of the asynchronous model.
func (r *Runtime) RunFair(opts RunOptions) (*trace.Trace, error) {
	st := newRunState(opts)
	count := 0
	max := opts.maxEvents()
	// RunFair executes several events per pass, so crash points are
	// honored at the first opportunity at or after their scheduled event
	// ordinal.
	maybeCrash := func() error {
		for at, p2 := range opts.CrashAt {
			if count >= at && !r.Crashed(p2) {
				if err := r.Crash(p2); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for count < max {
		progress := false
		for p := 1; p <= r.cfg.N; p++ {
			if err := maybeCrash(); err != nil {
				return nil, err
			}
			pid := model.ProcID(p)
			if r.canInvoke(st, pid) {
				if err := r.execEvent(st, event{kind: 3, proc: pid}); err != nil {
					return nil, err
				}
				progress = true
				count++
			}
			if r.Blocked(pid) {
				if _, err := r.FireDecide(pid); err != nil {
					return nil, err
				}
				progress = true
				count++
			} else if r.HasPending(pid) {
				if _, ok, err := r.ExecNext(pid); err != nil {
					return nil, err
				} else if ok {
					progress = true
					count++
				}
			}
			if err := r.liveError(); err != nil {
				r.met.dispatched(count)
				return nil, err
			}
		}
		// Deliver everything currently in flight to live processes.
		// Receivers may send more; those wait for the next round.
		snapshot := len(r.network)
		for i := 0; i < snapshot && i < len(r.network); {
			f := r.network[i]
			if to, err := r.proc(f.to); err == nil && !to.crashed {
				if _, err := r.ReceiveIndex(i); err != nil {
					return nil, err
				}
				if err := r.liveError(); err != nil {
					r.met.dispatched(count + 1)
					return nil, err
				}
				progress = true
				count++
				snapshot-- // the slice shifted left; same index, one fewer old message
				continue
			}
			i++
		}
		if !progress {
			break
		}
	}
	r.met.dispatched(count)
	return &trace.Trace{X: r.Execution(), Complete: r.quiescentWith(st)}, nil
}
