package sched_test

// Golden replay tests for the scheduler run loops. The testdata files
// were generated from the pre-Strategy monolithic RunFair/RunRandom
// implementations (PR 7 tree); the refactored strategy-based loops must
// reproduce them byte for byte — same steps, same order, same Complete
// flag — or replay determinism (Lemma 9's foundation) is broken.
//
// Regenerate with UPDATE_SCHED_GOLDENS=1 go test ./internal/sched — but
// only when a trace change is intended and understood; a diff here is a
// finding, not noise.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/model"
	"nobroadcast/internal/sched"
	"nobroadcast/internal/trace"
	"nobroadcast/internal/workload"
)

// goldenCase is one pinned (config, schedule) pair.
type goldenCase struct {
	name      string
	candidate string
	n, k      int
	app       bool // drive the candidate's solver app with inputs
	messages  int  // upper-layer broadcasts when app is false
	wseed     uint64
	random    bool // RunRandom(seed) vs RunFair
	seed      uint64
	crashAt   map[int]model.ProcID
}

var goldenCases = []goldenCase{
	{name: "fair_fifo", candidate: "fifo", n: 3, k: 1, messages: 6, wseed: 11},
	{name: "fair_reliable_crash", candidate: "reliable", n: 4, k: 1, messages: 8, wseed: 3,
		crashAt: map[int]model.ProcID{6: 4}},
	{name: "random_fifo_crash", candidate: "fifo", n: 3, k: 1, messages: 6, wseed: 11,
		random: true, seed: 2, crashAt: map[int]model.ProcID{5: 3}},
	{name: "random_firstk_app", candidate: "first-k", n: 4, k: 2, app: true, random: true, seed: 7},
	{name: "random_kbo_app", candidate: "kbo", n: 4, k: 2, app: true, random: true, seed: 5},
}

// runGolden executes one golden case on the current runtime.
func runGolden(t *testing.T, gc goldenCase) *trace.Trace {
	t.Helper()
	cand, err := broadcast.Lookup(gc.candidate)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sched.Config{N: gc.n, NewAutomaton: cand.NewAutomaton, Oracle: cand.OracleFor(gc.k)}
	opts := sched.RunOptions{Seed: gc.seed, CrashAt: gc.crashAt}
	if gc.app {
		cfg.NewApp = cand.SolverFor()
		cfg.Inputs = make([]model.Value, gc.n)
		for i := range cfg.Inputs {
			cfg.Inputs[i] = model.Value(fmt.Sprintf("v%d", i+1))
		}
	} else {
		reqs, err := workload.Generate(workload.Config{
			Kind: workload.Uniform, N: gc.n, Messages: gc.messages, Seed: gc.wseed,
		})
		if err != nil {
			t.Fatal(err)
		}
		opts.Broadcasts = reqs
	}
	rt, err := sched.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var tr *trace.Trace
	if gc.random {
		tr, err = rt.RunRandom(opts)
	} else {
		tr, err = rt.RunFair(opts)
	}
	if err != nil {
		t.Fatalf("%s: run: %v", gc.name, err)
	}
	return tr
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden_"+name+".jsonl")
}

func TestRunLoopGoldens(t *testing.T) {
	update := os.Getenv("UPDATE_SCHED_GOLDENS") != ""
	for _, gc := range goldenCases {
		t.Run(gc.name, func(t *testing.T) {
			tr := runGolden(t, gc)
			var buf bytes.Buffer
			if err := tr.EncodeJSONL(&buf); err != nil {
				t.Fatal(err)
			}
			path := goldenPath(gc.name)
			if update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with UPDATE_SCHED_GOLDENS=1 to generate): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("trace diverged from pre-refactor golden %s\n got %d bytes, want %d bytes",
					path, buf.Len(), len(want))
			}
		})
	}
}
