package sched

import (
	"nobroadcast/internal/model"
	"nobroadcast/internal/obs"
)

// schedMetrics holds the runtime's metric handles, resolved once at
// construction. A nil *schedMetrics (no Registry configured) makes every
// recorder below a nil-check no-op, keeping the deterministic scheduler's
// hot path allocation-free and throughput-neutral — see
// BenchmarkObsOverhead and BenchmarkSchedObs.
type schedMetrics struct {
	// steps counts every recorded step; kinds breaks them down per
	// StepKind (indexed by the kind value).
	steps *obs.Counter
	kinds [model.KindCrash + 1]*obs.Counter
	// actions counts actions emitted by automaton handlers (they execute
	// later, one per scheduler step; the delta to steps is queue pressure).
	actions *obs.Counter
	// events counts scheduler events dispatched by the generic runners.
	events *obs.Counter
	// crashes counts injected crashes.
	crashes *obs.Counter
	// inFlight tracks the in-flight point-to-point message set (the
	// adversary's `sent` set); its Max is the network watermark.
	inFlight *obs.Gauge
	// pendingDepth samples the action-queue depth at each ExecNext.
	pendingDepth *obs.Histogram
}

func newSchedMetrics(reg *obs.Registry) *schedMetrics {
	if reg == nil {
		return nil
	}
	m := &schedMetrics{
		steps:        reg.Counter("sched.steps"),
		actions:      reg.Counter("sched.actions_emitted"),
		events:       reg.Counter("sched.events_dispatched"),
		crashes:      reg.Counter("sched.crashes"),
		inFlight:     reg.Gauge("sched.in_flight"),
		pendingDepth: reg.Histogram("sched.pending_depth", obs.DefaultDepthBuckets...),
	}
	for k := model.KindSend; k <= model.KindCrash; k++ {
		m.kinds[k] = reg.Counter("sched.steps." + k.String())
	}
	return m
}

// record counts one recorded step.
func (m *schedMetrics) record(s model.Step) {
	if m == nil {
		return
	}
	m.steps.Inc()
	if k := int(s.Kind); k > 0 && k < len(m.kinds) {
		m.kinds[s.Kind].Inc()
	}
}

// emitted counts actions queued by a handler call.
func (m *schedMetrics) emitted(n int) {
	if m == nil {
		return
	}
	m.actions.Add(int64(n))
}

// dispatched counts scheduler events executed by a generic runner.
func (m *schedMetrics) dispatched(n int) {
	if m == nil {
		return
	}
	m.events.Add(int64(n))
}

// crashed counts one injected crash.
func (m *schedMetrics) crashed() {
	if m == nil {
		return
	}
	m.crashes.Inc()
}

// network tracks the in-flight message count.
func (m *schedMetrics) network(n int) {
	if m == nil {
		return
	}
	m.inFlight.Set(int64(n))
}

// depth samples an action-queue depth.
func (m *schedMetrics) depth(n int) {
	if m == nil {
		return
	}
	m.pendingDepth.Observe(int64(n))
}
