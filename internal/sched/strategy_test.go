package sched

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"nobroadcast/internal/model"
	"nobroadcast/internal/spec"
	"nobroadcast/internal/trace"
)

func encodeTrace(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.EncodeJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

var strategyTestBroadcasts = []BroadcastReq{
	{Proc: 1, Payload: "a"}, {Proc: 2, Payload: "b"},
	{Proc: 3, Payload: "c"}, {Proc: 1, Payload: "d"},
}

func echoRuntime(t *testing.T, n int) *Runtime {
	t.Helper()
	r, err := New(Config{N: n, NewAutomaton: newEcho})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestPCTDeterminism: the PCT sampler is a pure function of its seed —
// same seed replays bit-identically, and different seeds actually explore
// (at least two distinct schedules among a handful of seeds).
func TestPCTDeterminism(t *testing.T) {
	run := func(seed uint64) []byte {
		r := echoRuntime(t, 3)
		tr, err := r.Run(NewPCT(3), RunOptions{Seed: seed, Broadcasts: strategyTestBroadcasts})
		if err != nil {
			t.Fatal(err)
		}
		if !tr.Complete {
			t.Fatalf("seed %d: echo run should quiesce", seed)
		}
		return encodeTrace(t, tr)
	}
	if !bytes.Equal(run(7), run(7)) {
		t.Fatal("same seed produced different PCT schedules")
	}
	distinct := map[string]bool{}
	for seed := uint64(1); seed <= 6; seed++ {
		distinct[string(run(seed))] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("6 seeds produced %d distinct schedules; PCT is not exploring", len(distinct))
	}
}

// TestRecorderReplayRoundTrip: recording a run is transparent, and
// replaying the recorded decision sequence on a fresh runtime reproduces
// the trace byte for byte — the foundation the explore minimizer builds
// on.
func TestRecorderReplayRoundTrip(t *testing.T) {
	opts := RunOptions{Seed: 3, Broadcasts: strategyTestBroadcasts,
		CrashAt: map[int]model.ProcID{9: 3}}

	plain := echoRuntime(t, 3)
	want, err := plain.RunRandom(opts)
	if err != nil {
		t.Fatal(err)
	}

	rec := NewRecorder(NewRandom())
	recorded := echoRuntime(t, 3)
	tr, err := recorded.Run(rec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeTrace(t, tr), encodeTrace(t, want)) {
		t.Fatal("recording changed the schedule")
	}
	if len(rec.Decisions()) == 0 {
		t.Fatal("no decisions recorded")
	}

	replayed := echoRuntime(t, 3)
	got, err := replayed.Run(NewReplay(rec.Decisions()), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeTrace(t, got), encodeTrace(t, want)) {
		t.Fatal("replay diverged from the recorded run")
	}
}

// TestReplayPrefixStops: an exhausted decision sequence stops the run
// (StopRun) and the prefix trace is not marked complete.
func TestReplayPrefixStops(t *testing.T) {
	opts := RunOptions{Seed: 3, Broadcasts: strategyTestBroadcasts}
	rec := NewRecorder(NewRandom())
	full, err := echoRuntime(t, 3).Run(rec, opts)
	if err != nil {
		t.Fatal(err)
	}
	half := append([]Event(nil), rec.Decisions()[:len(rec.Decisions())/2]...)
	tr, err := echoRuntime(t, 3).Run(NewReplay(half), opts)
	if err != nil {
		t.Fatal(err)
	}
	if tr.X.Len() >= full.X.Len() {
		t.Fatalf("half the decisions produced %d steps, full run %d", tr.X.Len(), full.X.Len())
	}
	if tr.Complete {
		t.Fatal("a cut-short replay must not claim completeness")
	}
}

// TestFairCrashOrderDeterministic: several injections becoming due at the
// same fair crash point fire in sorted (ordinal, process) order — the
// run replays bit-identically. (The pre-Strategy RunFair iterated the
// CrashAt map, so simultaneous injections fired in random map order.)
func TestFairCrashOrderDeterministic(t *testing.T) {
	opts := RunOptions{Broadcasts: strategyTestBroadcasts,
		CrashAt: map[int]model.ProcID{4: 2, 5: 3}}
	run := func() []byte {
		tr, err := echoRuntime(t, 3).RunFair(opts)
		if err != nil {
			t.Fatal(err)
		}
		return encodeTrace(t, tr)
	}
	first := run()
	for i := 0; i < 10; i++ {
		if !bytes.Equal(run(), first) {
			t.Fatal("fair run with simultaneous crash injections is not deterministic")
		}
	}
}

// TestNewStrategy: name resolution round-trips and unknown names error.
func TestNewStrategy(t *testing.T) {
	for _, name := range StrategyNames() {
		s, err := NewStrategy(name, 0)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name() != name {
			t.Fatalf("NewStrategy(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := NewStrategy("round-robin", 0); err == nil {
		t.Fatal("unknown strategy name should error")
	}
}

// decideThenActApp decides on its first delivery and keeps acting within
// the same scheduler event, so the runtime records steps after the
// violating decide before the run loop can observe the latched violation.
type decideThenActApp struct{}

func (decideThenActApp) Init(env AppEnv, input model.Value) {
	env.Broadcast(model.Payload(input))
}
func (decideThenActApp) OnDeliver(env AppEnv, from model.ProcID, msg model.MsgID, payload model.Payload) {
	env.Decide(model.Value(fmt.Sprint(payload)))
	env.Broadcast("post-violation")
}
func (decideThenActApp) OnReturn(AppEnv, model.MsgID) {}

// TestLiveViolationTraceTruncated: the trace carried by a
// LiveViolationError ends exactly at the violating step and is flagged
// incomplete, even when the runtime recorded further steps inside the
// same event dispatch — downstream checkers must never mistake the cut
// prefix for a longer or complete run.
func TestLiveViolationTraceTruncated(t *testing.T) {
	r, err := New(Config{
		N:            2,
		NewAutomaton: newEcho,
		NewApp:       func(model.ProcID) App { return decideThenActApp{} },
		Inputs:       []model.Value{"a", "b"},
		LiveSpecs:    []spec.Spec{spec.KSA(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.RunFair(RunOptions{})
	var lve *LiveViolationError
	if !errors.As(err, &lve) {
		t.Fatalf("want LiveViolationError, got %v", err)
	}
	if lve.V.Property != "k-SA-Agreement" {
		t.Fatalf("want k-SA-Agreement, got %v", lve.V)
	}
	if got := lve.Trace.X.Len(); got != lve.StepIdx+1 {
		t.Fatalf("trace has %d steps, violation at index %d", got, lve.StepIdx)
	}
	if last := lve.Trace.X.Steps[lve.StepIdx]; last.Kind != model.KindDecide {
		t.Fatalf("violating step should be the second decide, got %v", last)
	}
	if lve.Trace.Complete {
		t.Fatal("a run cut at a violation must not be complete")
	}
	// The truncation mattered: the app's post-decide broadcast was
	// recorded past the violating step.
	if r.StepCount() <= lve.StepIdx+1 {
		t.Fatalf("expected overshoot past step %d, runtime recorded %d", lve.StepIdx, r.StepCount())
	}
}
