package sched

import (
	"bytes"
	"errors"
	"testing"

	"nobroadcast/internal/model"
	"nobroadcast/internal/spec"
	"nobroadcast/internal/trace"
)

// dupDeliverAutomaton violates BC-No-Duplication: it delivers its own
// broadcast twice.
type dupDeliverAutomaton struct{}

func (dupDeliverAutomaton) Init(*Env) {}
func (dupDeliverAutomaton) OnBroadcast(env *Env, msg model.MsgID, payload model.Payload) {
	env.ReturnBroadcast(msg)
	env.Deliver(msg, env.ID(), payload)
	env.Deliver(msg, env.ID(), payload)
}
func (dupDeliverAutomaton) OnReceive(*Env, model.ProcID, model.Payload) {}
func (dupDeliverAutomaton) OnDecide(*Env, model.KSAID, model.Value)     {}

// TestLiveCheckingFailsFast: with a live spec configured, the run stops at
// the exact violating step with a LiveViolationError carrying the verdict
// and the recorded prefix, instead of running to quiescence and failing a
// post-hoc check.
func TestLiveCheckingFailsFast(t *testing.T) {
	r, err := New(Config{
		N:            2,
		NewAutomaton: func(model.ProcID) Automaton { return dupDeliverAutomaton{} },
		LiveSpecs:    []spec.Spec{spec.BasicBroadcast()},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.RunFair(RunOptions{Broadcasts: []BroadcastReq{{Proc: 1, Payload: "x"}}})
	var lve *LiveViolationError
	if !errors.As(err, &lve) {
		t.Fatalf("want LiveViolationError, got %v", err)
	}
	if lve.V == nil || lve.V.Property != "BC-No-Duplication" {
		t.Fatalf("want BC-No-Duplication, got %v", lve.V)
	}
	// The trace in the error ends at the violating step: invoke, return,
	// deliver, duplicate deliver.
	if lve.Trace == nil || lve.Trace.X.Len() != lve.StepIdx+1 {
		t.Fatalf("trace should end at the violating step: len=%d idx=%d", lve.Trace.X.Len(), lve.StepIdx)
	}
	if last := lve.Trace.X.Steps[lve.StepIdx]; last.Kind != model.KindDeliver {
		t.Fatalf("violating step should be the duplicate delivery, got %v", last)
	}
	if v, idx := r.LiveViolation(); v != lve.V || idx != lve.StepIdx {
		t.Fatalf("runtime latched (%v, %d), error says (%v, %d)", v, idx, lve.V, lve.StepIdx)
	}
}

// TestLiveCheckingFailsFastRandom: the random scheduler stops too.
func TestLiveCheckingFailsFastRandom(t *testing.T) {
	r, err := New(Config{
		N:            2,
		NewAutomaton: func(model.ProcID) Automaton { return dupDeliverAutomaton{} },
		LiveSpecs:    []spec.Spec{spec.BasicBroadcast()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.InvokeBroadcast(1, "x"); err != nil {
		t.Fatal(err)
	}
	_, err = r.RunRandom(RunOptions{Seed: 1})
	var lve *LiveViolationError
	if !errors.As(err, &lve) {
		t.Fatalf("want LiveViolationError, got %v", err)
	}
}

// TestLiveCheckingCleanRun: an admissible run is unaffected by live specs
// and its monitor holds clean verdicts afterwards.
func TestLiveCheckingCleanRun(t *testing.T) {
	r, err := New(Config{
		N:            2,
		NewAutomaton: newEcho,
		LiveSpecs:    []spec.Spec{spec.WellFormed(), spec.FIFOOrder()},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := r.RunFair(RunOptions{Broadcasts: []BroadcastReq{{Proc: 1, Payload: "a"}, {Proc: 2, Payload: "b"}}})
	if err != nil {
		t.Fatal(err)
	}
	if v, idx := r.LiveViolation(); v != nil || idx != -1 {
		t.Fatalf("clean run latched %v at %d", v, idx)
	}
	mon := r.LiveMonitor()
	if mon == nil {
		t.Fatal("no monitor despite LiveSpecs")
	}
	if mon.Steps() != tr.X.Len() {
		t.Fatalf("monitor saw %d steps, trace has %d", mon.Steps(), tr.X.Len())
	}
	mon.Finish(tr.Complete)
	for _, sv := range mon.Verdicts() {
		if sv.Violation != nil {
			t.Fatalf("%s violated on a clean run: %v", sv.Spec, sv.Violation)
		}
	}
}

// TestSinkTee: a configured Sink receives exactly the steps the runtime
// records, in order — demonstrated with the real consumer, a
// trace.BinaryWriter streaming the run into wire format v1 live.
func TestSinkTee(t *testing.T) {
	var buf bytes.Buffer
	bw, err := trace.NewBinaryWriter(&buf, trace.StreamHeader{N: 2, Steps: -1})
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(Config{N: 2, NewAutomaton: newEcho, Sink: bw})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := r.RunFair(RunOptions{Broadcasts: []BroadcastReq{{Proc: 1, Payload: "a"}, {Proc: 2, Payload: "b"}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := trace.DecodeBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.X.Len() != tr.X.Len() {
		t.Fatalf("sink stream has %d steps, run recorded %d", got.X.Len(), tr.X.Len())
	}
	for i := range got.X.Steps {
		if got.X.Steps[i] != tr.X.Steps[i] {
			t.Fatalf("sink step %d = %+v, recorded %+v", i, got.X.Steps[i], tr.X.Steps[i])
		}
	}
}
