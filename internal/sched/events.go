package sched

import (
	"fmt"

	"nobroadcast/internal/model"
)

// This file contains the scheduler-facing event interface: each method
// executes exactly one step (or injects one event) and records it on the
// execution. Schedulers — the generic ones in run.go and the paper's
// adversary in internal/adversary — compose runs from these primitives.

// InvokeBroadcast makes the upper layer of process p invoke B.broadcast
// with the given content. It records the invocation step, allocates the
// message identity, and runs the automaton's OnBroadcast handler. It
// returns the new message's identity.
func (r *Runtime) InvokeBroadcast(p model.ProcID, payload model.Payload) (model.MsgID, error) {
	ps, err := r.proc(p)
	if err != nil {
		return model.NoMsg, err
	}
	if ps.crashed {
		return model.NoMsg, fmt.Errorf("sched: %v is crashed", p)
	}
	if ps.openBroadcast != model.NoMsg {
		return model.NoMsg, fmt.Errorf("sched: %v has an open B.broadcast invocation (m%d); well-formedness requires returning first", p, ps.openBroadcast)
	}
	return r.invokeBroadcast(ps, payload), nil
}

func (r *Runtime) invokeBroadcast(ps *procState, payload model.Payload) model.MsgID {
	msg := r.NewMsgID()
	ps.openBroadcast = msg
	r.record(model.Step{Proc: ps.id, Kind: model.KindBroadcastInvoke, Msg: msg, Payload: payload})
	r.runAutomaton(ps, func(env *Env) { ps.automaton.OnBroadcast(env, msg, payload) })
	return msg
}

// HasPending reports whether process p has a queued action ready to
// execute (and is neither crashed nor blocked on a proposition).
func (r *Runtime) HasPending(p model.ProcID) bool {
	ps, err := r.proc(p)
	if err != nil {
		return false
	}
	return !ps.crashed && !ps.blocked && len(ps.pending) > 0
}

// Blocked reports whether process p awaits a k-SA decision.
func (r *Runtime) Blocked(p model.ProcID) bool {
	ps, err := r.proc(p)
	if err != nil {
		return false
	}
	return !ps.crashed && ps.blocked
}

// Crashed reports whether process p has crashed.
func (r *Runtime) Crashed(p model.ProcID) bool {
	ps, err := r.proc(p)
	if err != nil {
		return false
	}
	return ps.crashed
}

// OpenBroadcast returns the message id of p's in-progress B.broadcast
// invocation, or NoMsg.
func (r *Runtime) OpenBroadcast(p model.ProcID) model.MsgID {
	ps, err := r.proc(p)
	if err != nil {
		return model.NoMsg
	}
	return ps.openBroadcast
}

// ExecNext executes the next queued action of process p — "p's next local
// step according to the algorithm" in the words of Algorithm 1 (line 8) —
// and returns the recorded step. ok is false when p has no executable
// action (empty queue, crashed, or blocked on a proposition).
func (r *Runtime) ExecNext(p model.ProcID) (step model.Step, ok bool, err error) {
	ps, err := r.proc(p)
	if err != nil {
		return model.Step{}, false, err
	}
	if ps.crashed || ps.blocked || len(ps.pending) == 0 {
		return model.Step{}, false, nil
	}
	r.met.depth(len(ps.pending))
	a := ps.pending[0]
	ps.pending = ps.pending[1:]
	switch a.kind {
	case model.KindSend:
		inst := r.NewMsgID()
		step = model.Step{Proc: ps.id, Kind: model.KindSend, Peer: a.to, Msg: inst, Payload: a.payload}
		r.record(step)
		r.network = append(r.network, inFlight{inst: inst, from: ps.id, to: a.to, payload: a.payload})
		r.met.network(len(r.network))
	case model.KindPropose:
		step = model.Step{Proc: ps.id, Kind: model.KindPropose, Obj: a.obj, Val: a.val}
		r.record(step)
		val := r.cfg.Oracle.Propose(a.obj, ps.id, a.val)
		ps.blocked = true
		ps.pendingDecide = &struct {
			obj model.KSAID
			val model.Value
		}{obj: a.obj, val: val}
	case model.KindDeliver:
		step = model.Step{Proc: ps.id, Kind: model.KindDeliver, Peer: a.to, Msg: a.msg, Payload: a.payload}
		r.record(step)
		if ps.app != nil {
			ps.app.OnDeliver(&appEnv{rt: r, ps: ps}, a.to, a.msg, a.payload)
		}
	case model.KindBroadcastReturn:
		step = model.Step{Proc: ps.id, Kind: model.KindBroadcastReturn, Msg: a.msg}
		r.record(step)
		if ps.openBroadcast == a.msg {
			ps.openBroadcast = model.NoMsg
		}
		if ps.app != nil {
			ps.app.OnReturn(&appEnv{rt: r, ps: ps}, a.msg)
		}
	case model.KindInternal:
		step = model.Step{Proc: ps.id, Kind: model.KindInternal, Note: a.note}
		r.record(step)
	default:
		return model.Step{}, false, fmt.Errorf("sched: unknown queued action kind %v", a.kind)
	}
	return step, true, nil
}

// FireDecide completes process p's pending k-SA proposition: it records
// the decision step, unblocks the process, and runs OnDecide.
func (r *Runtime) FireDecide(p model.ProcID) (model.Step, error) {
	ps, err := r.proc(p)
	if err != nil {
		return model.Step{}, err
	}
	if ps.crashed {
		return model.Step{}, fmt.Errorf("sched: %v is crashed", p)
	}
	if !ps.blocked || ps.pendingDecide == nil {
		return model.Step{}, fmt.Errorf("sched: %v has no pending decision", p)
	}
	d := *ps.pendingDecide
	ps.pendingDecide = nil
	ps.blocked = false
	step := model.Step{Proc: ps.id, Kind: model.KindDecide, Obj: d.obj, Val: d.val}
	r.record(step)
	r.runAutomaton(ps, func(env *Env) { ps.automaton.OnDecide(env, d.obj, d.val) })
	return step, nil
}

// InFlight returns a snapshot of the in-flight point-to-point messages, in
// send order.
func (r *Runtime) InFlight() []model.Step {
	out := make([]model.Step, len(r.network))
	for i, f := range r.network {
		out[i] = model.Step{Proc: f.from, Kind: model.KindSend, Peer: f.to, Msg: f.inst, Payload: f.payload}
	}
	return out
}

// ReceiveIndex delivers the i-th in-flight message (by InFlight order):
// records the receive step at its destination and runs OnReceive. The
// destination must not have crashed.
func (r *Runtime) ReceiveIndex(i int) (model.Step, error) {
	if i < 0 || i >= len(r.network) {
		return model.Step{}, fmt.Errorf("sched: no in-flight message at index %d", i)
	}
	f := r.network[i]
	ps, err := r.proc(f.to)
	if err != nil {
		return model.Step{}, err
	}
	if ps.crashed {
		return model.Step{}, fmt.Errorf("sched: cannot deliver to crashed %v", f.to)
	}
	r.network = append(r.network[:i], r.network[i+1:]...)
	r.met.network(len(r.network))
	step := model.Step{Proc: f.to, Kind: model.KindReceive, Peer: f.from, Msg: f.inst, Payload: f.payload}
	r.record(step)
	r.runAutomaton(ps, func(env *Env) { ps.automaton.OnReceive(env, f.from, f.payload) })
	return step, nil
}

// ReceiveInstance delivers the in-flight message with the given instance
// identity.
func (r *Runtime) ReceiveInstance(inst model.MsgID) (model.Step, error) {
	for i, f := range r.network {
		if f.inst == inst {
			return r.ReceiveIndex(i)
		}
	}
	return model.Step{}, fmt.Errorf("sched: no in-flight message with instance id m%d", inst)
}

// Crash crashes process p: records the crash step, discards its queued
// actions, and makes it ineligible for any further event.
func (r *Runtime) Crash(p model.ProcID) error {
	ps, err := r.proc(p)
	if err != nil {
		return err
	}
	if ps.crashed {
		return fmt.Errorf("sched: %v already crashed", p)
	}
	ps.crashed = true
	ps.pending = nil
	ps.blocked = false
	ps.pendingDecide = nil
	r.record(model.Step{Proc: p, Kind: model.KindCrash})
	r.met.crashed()
	return nil
}

// Quiescent reports whether no event is enabled: every live process has an
// empty action queue and no pending decision, and no in-flight message is
// addressed to a live process.
func (r *Runtime) Quiescent() bool {
	for _, ps := range r.procs {
		if ps.crashed {
			continue
		}
		if len(ps.pending) > 0 || ps.blocked {
			return false
		}
	}
	for _, f := range r.network {
		if to, err := r.proc(f.to); err == nil && !to.crashed {
			return false
		}
	}
	return true
}

// AppDecided reports whether process p's app has produced its decision.
func (r *Runtime) AppDecided(p model.ProcID) bool {
	ps, err := r.proc(p)
	if err != nil {
		return false
	}
	return ps.appDecided
}
