package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/explore"
	"nobroadcast/internal/trace"
)

// Explore-specific service ceilings: the product of schedules and the
// per-schedule event bound caps the job's total work, sized so a cold
// exploration fits comfortably inside the default 60s job timeout.
const (
	maxSchedules     = 65536
	maxExploreEvents = 100000
	maxExploreWork   = 50_000_000 // schedules × max_events
	maxMinimize      = 8
)

// ExploreRequest is the body of POST /v1/explore: a violation-hunting
// sweep over the schedule space of one candidate (see internal/explore).
// The normalized form is the job's cache identity — exploration results
// are deterministic in these parameters at any worker count, so repeats
// are exact cache hits.
type ExploreRequest struct {
	Candidate string `json:"candidate"`
	N         int    `json:"n,omitempty"`         // processes, default 4
	K         int    `json:"k,omitempty"`         // agreement degree, default 2
	Strategy  string `json:"strategy,omitempty"`  // random | pct (default) | fair
	Depth     int    `json:"depth,omitempty"`     // pct priority-change points
	Schedules int    `json:"schedules,omitempty"` // seeds to explore, default 256
	Seed      uint64 `json:"seed,omitempty"`      // root seed
	MaxEvents int    `json:"max_events,omitempty"`
	Crashes   int    `json:"crashes,omitempty"`  // seeded crash faults per schedule
	Minimize  int    `json:"minimize,omitempty"` // findings to delta-debug; -1 disables
}

func (q *ExploreRequest) normalize() error {
	if q.N == 0 {
		q.N = 4
	}
	if q.N < 1 || q.N > maxProcs {
		return fmt.Errorf("n must be in 1..%d, got %d", maxProcs, q.N)
	}
	if q.K == 0 {
		q.K = 2
	}
	if q.K < 1 || q.K > q.N {
		return fmt.Errorf("k must be in 1..n, got k=%d n=%d", q.K, q.N)
	}
	if q.Strategy == "" {
		q.Strategy = "pct"
	}
	if q.Depth < 0 || q.Depth > 64 {
		return fmt.Errorf("depth must be in 0..64, got %d", q.Depth)
	}
	if q.Schedules == 0 {
		q.Schedules = 256
	}
	if q.Schedules < 1 || q.Schedules > maxSchedules {
		return fmt.Errorf("schedules must be in 1..%d, got %d", maxSchedules, q.Schedules)
	}
	if q.MaxEvents == 0 {
		q.MaxEvents = explore.DefaultMaxEvents
	}
	if q.MaxEvents < 1 || q.MaxEvents > maxExploreEvents {
		return fmt.Errorf("max_events must be in 1..%d, got %d", maxExploreEvents, q.MaxEvents)
	}
	if work := int64(q.Schedules) * int64(q.MaxEvents); work > maxExploreWork {
		return fmt.Errorf("schedules×max_events = %d exceeds the per-job work ceiling %d", work, maxExploreWork)
	}
	if q.Crashes < 0 || q.Crashes >= q.N {
		return fmt.Errorf("crashes must be in 0..n-1, got %d", q.Crashes)
	}
	if q.Minimize < -1 || q.Minimize > maxMinimize {
		return fmt.Errorf("minimize must be in -1..%d, got %d", maxMinimize, q.Minimize)
	}
	if _, err := broadcast.Lookup(q.Candidate); err != nil {
		return err
	}
	// Strategy names are validated by the exploration itself, but doing
	// it here turns a typo into a 400 instead of a failed job.
	if q.Strategy != "fair" && q.Strategy != "random" && q.Strategy != "pct" {
		return fmt.Errorf("strategy must be fair, random, or pct, got %q", q.Strategy)
	}
	return nil
}

func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	var q ExploreRequest
	if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if err := q.normalize(); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	hash := canonicalHash("explore", &q)
	s.runManaged(w, r, "explore", hash, q.Seed, func(ctx context.Context) (jobOutput, error) {
		// Coordinator mode shards the schedule range over the fleet; the
		// merged body is byte-identical to the local path (and so is the
		// cache identity above).
		if s.fab != nil && q.Schedules >= 2 {
			return s.executeExploreFabric(ctx, &q)
		}
		return s.executeExplore(ctx, &q)
	})
}

// exploreOptions maps a normalized request to the exploration options.
// Workers parameterizes only the local sweep pool; it never changes the
// Result (which is what makes the fabric's partitioning sound).
func (s *Server) exploreOptions(q *ExploreRequest) explore.Options {
	return explore.Options{
		Candidate: q.Candidate,
		N:         q.N,
		K:         q.K,
		Strategy:  q.Strategy,
		Depth:     q.Depth,
		Schedules: q.Schedules,
		Seed:      q.Seed,
		MaxEvents: q.MaxEvents,
		Crashes:   q.Crashes,
		Minimize:  q.Minimize,
		Workers:   s.cfg.Workers,
		Obs:       s.reg,
	}
}

// executeExplore runs the exploration and renders its deterministic
// Result as the response document. The first minimized finding's .ktr
// trace doubles as the job trace, so GET /v1/jobs/{id}/trace downloads
// the machine-found counterexample directly.
func (s *Server) executeExplore(ctx context.Context, q *ExploreRequest) (jobOutput, error) {
	s.explores.Inc()
	start := time.Now()
	res, err := explore.Run(ctx, s.exploreOptions(q))
	if err != nil {
		return jobOutput{}, err
	}
	// schedules/sec is the tracked benchmark of the exploration path; it
	// is wall-clock, so it lives in obs, never in the cacheable body.
	if secs := time.Since(start).Seconds(); secs > 0 {
		s.exploreRate.Observe(int64(float64(res.Schedules) / secs))
	}
	var tr *trace.Trace
	if len(res.Findings) > 0 && len(res.Findings[0].KTR) > 0 {
		if tr, err = trace.DecodeBinary(bytes.NewReader(res.Findings[0].KTR)); err != nil {
			return jobOutput{}, fmt.Errorf("serve: minimized trace does not decode: %w", err)
		}
	}
	return encodeBody(res, tr)
}
