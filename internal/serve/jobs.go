package serve

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"nobroadcast/internal/sweep"
	"nobroadcast/internal/trace"
)

// Job statuses.
const (
	StatusRunning   = "running"
	StatusDone      = "done"
	StatusFailed    = "failed"
	StatusCancelled = "cancelled"
	StatusRejected  = "rejected" // bounced off the saturated admission queue
)

// Job is one managed request: the canonical parameter hash it was keyed
// by, its lifecycle status, and — once settled — the response body every
// identical request is served from, plus the recorded trace.
//
// Every mutable field is written by settle under s.mu; readers must
// either hold s.mu (snapshot) or have observed <-done, which settle
// closes after its last write.
type Job struct {
	ID     string
	Kind   string
	Hash   string
	Status string
	Err    string

	// Body is the result document (immutable once Status is done).
	Body []byte
	// Trace is the recorded execution, when the job kind produces one.
	Trace *trace.Trace

	done chan struct{}
}

// newJobLocked mints a job record; the caller holds s.mu.
func (s *Server) newJobLocked(kind, hash string) *Job {
	s.seq++
	j := &Job{
		ID:     fmt.Sprintf("j%d", s.seq),
		Kind:   kind,
		Hash:   hash,
		Status: StatusRunning,
		done:   make(chan struct{}),
	}
	s.jobs[j.ID] = j
	return j
}

// settle publishes a job's outcome exactly once: success inserts it into
// the result cache (evicting LRU entries and their job records), failure
// parks it on the bounded failed ring. Either way the singleflight slot
// is released and waiters are woken.
func (s *Server) settle(j *Job, out jobOutput, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-j.done:
		return // already settled
	default:
	}
	if s.flight[j.Hash] == j {
		delete(s.flight, j.Hash)
	}
	if err != nil {
		switch {
		case errors.Is(err, errSaturated):
			j.Status = StatusRejected // counted by serve.jobs_rejected at the admission point
		case errors.Is(err, context.DeadlineExceeded):
			// The server-side job timeout fired. Same lifecycle status as a
			// client cancellation, but its own counter: a daemon timing jobs
			// out is overloaded or misconfigured, a client hanging up is not.
			j.Status = StatusCancelled
			s.timeouts.Inc()
		case errors.Is(err, context.Canceled):
			j.Status = StatusCancelled
			s.cancel.Inc()
		default:
			j.Status = StatusFailed
			s.failedC.Inc()
			var pe *sweep.PanicError
			if errors.As(err, &pe) {
				s.panics.Inc()
			}
		}
		j.Err = err.Error()
		s.parkLocked(j)
	} else {
		j.Status = StatusDone
		j.Body = out.body
		j.Trace = out.tr
		if j.Hash != "" && !out.uncacheable {
			s.cache.put(j.Hash, j)
		} else {
			// Hashless jobs (trace checks) and timing-sensitive results
			// (net runtime) are uncacheable; retain their records on the
			// bounded ring instead.
			s.parkLocked(j)
		}
		s.completed.Inc()
	}
	close(j.done)
}

// parkLocked retains a job record outside the result cache — failures and
// uncached check jobs — on a FIFO ring bounded like the cache, so job ids
// stay resolvable for a while without growing without bound. The caller
// holds s.mu.
func (s *Server) parkLocked(j *Job) {
	s.parked = append(s.parked, j.ID)
	for len(s.parked) > s.cfg.CacheEntries {
		delete(s.jobs, s.parked[0])
		s.parked = s.parked[1:]
	}
}

// lookup fetches a job by id.
func (s *Server) lookup(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// jobView is a consistent copy of a job's externally visible state,
// taken under s.mu so the GET handlers never race with a concurrent
// settle. Body and Trace are set exactly once (by settle, under the
// lock), so the copied references are immutable if Status is settled.
type jobView struct {
	ID     string
	Kind   string
	Hash   string
	Status string
	Err    string
	Body   []byte
	Trace  *trace.Trace
}

// snapshot copies a job's fields under s.mu; ok is false for ids that
// were never created or have been evicted.
func (s *Server) snapshot(id string) (jobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return jobView{}, false
	}
	return jobView{ID: j.ID, Kind: j.Kind, Hash: j.Hash, Status: j.Status, Err: j.Err, Body: j.Body, Trace: j.Trace}, true
}

// handleJob serves GET /v1/jobs/{id}: the job descriptor, with the
// result document embedded once the job settled.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.snapshot(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job (evicted or never created)")
		return
	}
	view := struct {
		ID       string          `json:"id"`
		Kind     string          `json:"kind"`
		Hash     string          `json:"hash"`
		Status   string          `json:"status"`
		Err      string          `json:"error,omitempty"`
		Result   json.RawMessage `json:"result,omitempty"`
		HasTrace bool            `json:"has_trace"`
	}{ID: j.ID, Kind: j.Kind, Hash: j.Hash, Status: j.Status, Err: j.Err, HasTrace: j.Trace != nil}
	// Check jobs settle with a JSONL body, which is not a single JSON
	// value and cannot be embedded in the descriptor document.
	if j.Status == StatusDone && json.Valid(j.Body) {
		view.Result = json.RawMessage(j.Body)
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(view)
}

// handleJobTrace serves GET /v1/jobs/{id}/trace: the recorded execution
// as a streaming download, never materialized as one response buffer.
// The format is negotiated by Accept: application/x-ksatrace selects
// wire format v1 (a .ktr attachment, typically 5-10× smaller), anything
// else gets the JSONL debug view. A still-running job answers
// immediately — pinning the connection for up to another full JobTimeout
// would stretch drains and tie up sockets — and the client polls.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.snapshot(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job (evicted or never created)")
		return
	}
	if j.Status == StatusRunning {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusConflict, "job still running; retry once it settles")
		return
	}
	if j.Trace == nil {
		httpError(w, http.StatusNotFound, "job recorded no trace")
		return
	}
	if strings.Contains(r.Header.Get("Accept"), trace.ContentTypeBinary) {
		w.Header().Set("Content-Type", trace.ContentTypeBinary)
		w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", j.ID+".ktr"))
		// Encode errors past the header mean the client hung up; the
		// connection is all there is to drop.
		j.Trace.EncodeBinary(w)
		return
	}
	w.Header().Set("Content-Type", trace.ContentTypeJSONL+"; charset=utf-8")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", j.ID+".jsonl"))
	if err := j.Trace.EncodeJSONL(w); err != nil {
		// Headers are gone; nothing to do but drop the connection.
		return
	}
}

// lru is a bounded most-recently-used cache of completed jobs keyed by
// parameter hash. onEvict releases the evicted job's secondary index
// entry; the caller holds the server mutex around every method.
type lru struct {
	cap     int
	ll      *list.List               // front = most recent; values are *Job
	entries map[string]*list.Element // hash -> element
	onEvict func(*Job)
}

func newLRU(capacity int, onEvict func(*Job)) *lru {
	return &lru{cap: capacity, ll: list.New(), entries: make(map[string]*list.Element), onEvict: onEvict}
}

func (c *lru) get(hash string) *Job {
	e, ok := c.entries[hash]
	if !ok {
		return nil
	}
	c.ll.MoveToFront(e)
	return e.Value.(*Job)
}

func (c *lru) put(hash string, j *Job) {
	if e, ok := c.entries[hash]; ok {
		c.ll.MoveToFront(e)
		e.Value = j
		return
	}
	c.entries[hash] = c.ll.PushFront(j)
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		old := back.Value.(*Job)
		c.ll.Remove(back)
		delete(c.entries, old.Hash)
		if c.onEvict != nil {
			c.onEvict(old)
		}
	}
}

func (c *lru) len() int { return c.ll.Len() }
