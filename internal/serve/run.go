package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"nobroadcast/internal/adversary"
	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/model"
	"nobroadcast/internal/net"
	"nobroadcast/internal/nettcp"
	"nobroadcast/internal/sched"
	"nobroadcast/internal/trace"
	"nobroadcast/internal/workload"
)

// Service-side parameter ceilings. Requests arrive over the network, so
// every axis that sizes an allocation is bounded before any work starts.
const (
	maxProcs    = 64
	maxMessages = 10000
	maxAdvK     = 8
	maxAdvN     = 64
	// The tcp runtime opens a full mesh of real loopback connections plus
	// harness control and trace streams per node, so it gets a tighter
	// process ceiling than the in-memory runtimes.
	maxTCPProcs = 16
)

// WorkloadSpec selects the broadcast request pattern of a /v1/run job.
type WorkloadSpec struct {
	// Kind is uniform (default), skewed, bursty, or single.
	Kind string `json:"kind,omitempty"`
	// Messages is the total number of broadcasts (default 3·n).
	Messages int `json:"messages,omitempty"`
	// Seed drives the randomized shapes.
	Seed uint64 `json:"seed,omitempty"`
	// BurstLen is the burst length for bursty (default 4).
	BurstLen int `json:"burst_len,omitempty"`
}

var workloadKinds = map[string]workload.Kind{
	"uniform": workload.Uniform,
	"skewed":  workload.Skewed,
	"bursty":  workload.Bursty,
	"single":  workload.Single,
}

// RunRequest is the body of POST /v1/run: one workload simulation on the
// deterministic ("sched") or concurrent ("net") runtime. The normalized
// form of this struct is the job's cache identity.
type RunRequest struct {
	Candidate string       `json:"candidate"`
	Runtime   string       `json:"runtime,omitempty"` // sched (default) | net | tcp
	N         int          `json:"n,omitempty"`       // processes, default 4
	K         int          `json:"k,omitempty"`       // agreement degree, default 2
	Seed      uint64       `json:"seed,omitempty"`    // concurrent/tcp runtime delay seed
	Drop      float64      `json:"drop,omitempty"`    // per-transit loss probability (net/tcp)
	Dup       float64      `json:"dup,omitempty"`     // per-transit duplication probability (net/tcp)
	Workload  WorkloadSpec `json:"workload"`
}

func (q *RunRequest) normalize() error {
	if q.Runtime == "" {
		q.Runtime = "sched"
	}
	if q.Runtime != "sched" && q.Runtime != "net" && q.Runtime != "tcp" {
		return fmt.Errorf("runtime must be \"sched\", \"net\", or \"tcp\", got %q", q.Runtime)
	}
	if q.N == 0 {
		q.N = 4
	}
	if q.N < 1 || q.N > maxProcs {
		return fmt.Errorf("n must be in 1..%d, got %d", maxProcs, q.N)
	}
	if q.Runtime == "tcp" && q.N > maxTCPProcs {
		return fmt.Errorf("n must be in 1..%d on the tcp runtime, got %d", maxTCPProcs, q.N)
	}
	if q.K == 0 {
		q.K = 2
	}
	if q.K < 1 || q.K > q.N {
		return fmt.Errorf("k must be in 1..n, got k=%d n=%d", q.K, q.N)
	}
	if q.Drop < 0 || q.Drop >= 1 || q.Dup < 0 || q.Dup >= 1 {
		return fmt.Errorf("drop/dup must be probabilities in [0,1), got %g/%g", q.Drop, q.Dup)
	}
	if (q.Drop != 0 || q.Dup != 0) && q.Runtime != "net" && q.Runtime != "tcp" {
		return fmt.Errorf("drop/dup need the net or tcp runtime (the deterministic runtime has no transport faults)")
	}
	if q.Workload.Kind == "" {
		q.Workload.Kind = "uniform"
	}
	if _, ok := workloadKinds[q.Workload.Kind]; !ok {
		return fmt.Errorf("unknown workload kind %q", q.Workload.Kind)
	}
	if q.Workload.Messages == 0 {
		q.Workload.Messages = 3 * q.N
	}
	if q.Workload.Messages < 1 || q.Workload.Messages > maxMessages {
		return fmt.Errorf("workload.messages must be in 1..%d, got %d", maxMessages, q.Workload.Messages)
	}
	if q.Workload.BurstLen == 0 {
		q.Workload.BurstLen = 4
	}
	if _, err := broadcast.Lookup(q.Candidate); err != nil {
		return err
	}
	return nil
}

// canonicalHash derives the cache identity of a normalized request: the
// endpoint kind plus the canonical JSON encoding (fixed field order, all
// defaults applied). Executions are pure functions of these parameters,
// so equal hashes mean byte-identical results.
func canonicalHash(kind string, v any) string {
	b, _ := json.Marshal(v)
	sum := sha256.Sum256(append([]byte(kind+"\x00"), b...))
	return hex.EncodeToString(sum[:16])
}

// RunResponse is the result document of a /v1/run job. The executing
// job's id travels in the X-Job-Id header, not the body, so cache hits
// stay byte-identical.
type RunResponse struct {
	Candidate  string `json:"candidate"`
	Runtime    string `json:"runtime"`
	N          int    `json:"n"`
	K          int    `json:"k"`
	Steps      int    `json:"steps"`
	Complete   bool   `json:"complete"`
	Verdict    string `json:"verdict,omitempty"` // empty = admissible
	Deliveries int    `json:"deliveries"`
	Sends      int64  `json:"sends,omitempty"`       // net runtime
	FaultDrops int64  `json:"fault_drops,omitempty"` // net runtime
	FaultDups  int64  `json:"fault_dups,omitempty"`  // net runtime
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var q RunRequest
	if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if err := q.normalize(); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	hash := canonicalHash("run", &q)
	s.runManaged(w, r, "run", hash, q.Seed, func(ctx context.Context) (jobOutput, error) {
		return s.executeRun(ctx, &q)
	})
}

// executeRun performs the simulation and renders the result document.
func (s *Server) executeRun(ctx context.Context, q *RunRequest) (jobOutput, error) {
	cand, err := broadcast.Lookup(q.Candidate)
	if err != nil {
		return jobOutput{}, err
	}
	reqs, err := workload.Generate(workload.Config{
		Kind:     workloadKinds[q.Workload.Kind],
		N:        q.N,
		Messages: q.Workload.Messages,
		Seed:     q.Workload.Seed,
		BurstLen: q.Workload.BurstLen,
	})
	if err != nil {
		return jobOutput{}, err
	}
	var tr *trace.Trace
	resp := RunResponse{Candidate: cand.Name, Runtime: q.Runtime, N: q.N, K: q.K}
	switch q.Runtime {
	case "sched":
		tr, err = s.runSched(ctx, cand, q, reqs, &resp)
	case "tcp":
		tr, err = s.runTCP(ctx, cand, q, reqs, &resp)
	default:
		tr, err = s.runNet(ctx, cand, q, reqs, &resp)
	}
	if err != nil {
		return jobOutput{}, err
	}
	if v := cand.Spec(q.K).Check(tr); v != nil {
		resp.Verdict = v.String()
	}
	resp.Steps = tr.X.Len()
	resp.Complete = tr.Complete
	for i := range tr.X.Steps {
		if tr.X.Steps[i].Kind == model.KindDeliver {
			resp.Deliveries++
		}
	}
	out, err := encodeBody(&resp, tr)
	// Net- and tcp-runtime documents are not pure functions of
	// (params, seed): both race real goroutines (or processes) against a
	// wall-clock convergence budget, so under load a faulty run can
	// settle with complete=false or different send/fault counts. Caching
	// one would replay a timing accident as the permanent verdict for
	// that parameter hash, so these jobs bypass the result cache.
	out.uncacheable = q.Runtime == "net" || q.Runtime == "tcp"
	return out, err
}

// encodeBody renders a result document to the bytes cached and served to
// this and every future identical request.
func encodeBody(doc any, tr *trace.Trace) (jobOutput, error) {
	b, err := json.Marshal(doc)
	if err != nil {
		return jobOutput{}, err
	}
	b = append(b, '\n')
	return jobOutput{body: b, tr: tr}, nil
}

// runSched executes the workload script on the deterministic runtime
// under the fair scheduler.
func (s *Server) runSched(ctx context.Context, cand broadcast.Candidate, q *RunRequest, reqs []sched.BroadcastReq, resp *RunResponse) (*trace.Trace, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sp, _ := s.reg.StartSpanIfTraced(ctx, "serve.runtime")
	defer sp.End()
	rt, err := sched.New(sched.Config{
		N:            q.N,
		NewAutomaton: cand.NewAutomaton,
		Oracle:       cand.OracleFor(q.K),
		Obs:          s.reg,
	})
	if err != nil {
		return nil, err
	}
	return rt.RunFair(sched.RunOptions{Broadcasts: reqs})
}

// oracleDegree resolves the candidate's oracle need against the
// workload's k (the same rule the cmd tools apply).
func oracleDegree(c broadcast.Candidate, k int) int {
	switch c.OracleK {
	case 0:
		return 1
	case -1:
		return k
	default:
		return c.OracleK
	}
}

// runNet executes the workload script on the concurrent goroutine
// runtime with trace recording on. The convergence wait polls in short
// slices so a cancelled job context stops the wait promptly.
func (s *Server) runNet(ctx context.Context, cand broadcast.Candidate, q *RunRequest, reqs []sched.BroadcastReq, resp *RunResponse) (*trace.Trace, error) {
	sp, _ := s.reg.StartSpanIfTraced(ctx, "serve.runtime")
	defer sp.End()
	var faults *net.FaultPlan
	if q.Drop != 0 || q.Dup != 0 {
		faults = &net.FaultPlan{Drop: q.Drop, Dup: q.Dup}
	}
	nw, err := net.New(net.Config{
		N:            q.N,
		NewAutomaton: cand.NewAutomaton,
		K:            oracleDegree(cand, q.K),
		MaxDelay:     100 * time.Microsecond,
		Seed:         q.Seed,
		Faults:       faults,
		RecordTrace:  true,
		Obs:          s.reg,
	})
	if err != nil {
		return nil, err
	}
	defer nw.Stop()
	submitted := make(map[model.ProcID]int64)
	for _, req := range reqs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p := req.Proc
		if !s.waitUntil(ctx, nw.WaitUntil, func() bool { return nw.Returned(p) >= submitted[p] }) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("serve: %v's broadcast never returned", p)
		}
		if _, err := nw.Broadcast(p, req.Payload); err != nil {
			return nil, err
		}
		submitted[p]++
	}
	want := int64(len(reqs))
	complete := s.waitUntil(ctx, nw.WaitUntil, func() bool {
		for p := 1; p <= q.N; p++ {
			if nw.Delivered(model.ProcID(p)) < want {
				return false
			}
		}
		for p, n := range submitted {
			if nw.Returned(p) < n {
				return false
			}
		}
		return true
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !complete && faults == nil {
		return nil, fmt.Errorf("serve: fault-free run did not converge within the job timeout")
	}
	nw.Stop()
	st := nw.StatsSnapshot()
	resp.Sends = st.Sent
	resp.FaultDrops = st.FaultDrops
	resp.FaultDups = st.FaultDups
	tr := nw.Trace()
	tr.Complete = complete
	return tr, nil
}

// waitUntil polls cond via the runtime's convergence wait in short
// slices until it holds, the job context ends, or the overall fault-wait
// budget (a fraction of the job timeout) runs out. The wait argument is
// the runtime's own bounded wait (net.Network.WaitUntil or
// nettcp.Cluster.WaitUntil — same shape on both transports).
func (s *Server) waitUntil(ctx context.Context, wait func(func() bool, time.Duration) bool, cond func() bool) bool {
	deadline := time.Now().Add(s.cfg.JobTimeout / 2)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	for {
		if wait(cond, 25*time.Millisecond) {
			return true
		}
		if ctx.Err() != nil || time.Now().After(deadline) {
			return false
		}
	}
}

// runTCP executes the workload script on the socket transport: an
// in-process nettcp cluster whose nodes speak the real wire protocol
// over loopback TCP, each recording its own trace stream; the harness
// merges the streams by the conformance projection. Like runNet, the
// run is conformance-grade rather than byte-replayable, so its result
// documents bypass the cache.
func (s *Server) runTCP(ctx context.Context, cand broadcast.Candidate, q *RunRequest, reqs []sched.BroadcastReq, resp *RunResponse) (*trace.Trace, error) {
	sp, _ := s.reg.StartSpanIfTraced(ctx, "serve.runtime")
	defer sp.End()
	var faults *net.FaultPlan
	if q.Drop != 0 || q.Dup != 0 {
		faults = &net.FaultPlan{Drop: q.Drop, Dup: q.Dup}
	}
	cl, err := nettcp.StartCluster(nettcp.ClusterConfig{
		N:         q.N,
		K:         oracleDegree(cand, q.K),
		Candidate: cand.Name,
		Seed:      q.Seed,
		Faults:    faults,
		Obs:       s.reg,
	})
	if err != nil {
		return nil, err
	}
	defer cl.Stop()
	submitted := make(map[model.ProcID]int64)
	for _, req := range reqs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p := req.Proc
		if !s.waitUntil(ctx, cl.WaitUntil, func() bool { return cl.Returned(p) >= submitted[p] }) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("serve: %v's broadcast never returned on the tcp runtime", p)
		}
		if _, err := cl.Broadcast(p, req.Payload); err != nil {
			return nil, err
		}
		submitted[p]++
	}
	want := int64(len(reqs))
	complete := s.waitUntil(ctx, cl.WaitUntil, func() bool {
		for p := 1; p <= q.N; p++ {
			if cl.Delivered(model.ProcID(p)) < want {
				return false
			}
		}
		for p, n := range submitted {
			if cl.Returned(p) < n {
				return false
			}
		}
		return true
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !complete && faults == nil {
		return nil, fmt.Errorf("serve: fault-free tcp run did not converge within the job timeout")
	}
	cl.Stop()
	tr, perNode, err := cl.Collect()
	if err != nil {
		return nil, err
	}
	for _, nt := range perNode {
		if nt.Err != nil {
			return nil, fmt.Errorf("serve: node %d trace stream: %w", nt.ID, nt.Err)
		}
	}
	// Node streams carry the identity-erased projection (no KindSend
	// steps), so the tcp runtime reports no send count.
	tr.Complete = tr.Complete && complete
	return tr, nil
}

// AdversaryRequest is the body of POST /v1/adversary: one Algorithm 1
// construction against a candidate implementation.
type AdversaryRequest struct {
	Candidate string `json:"candidate"`
	K         int    `json:"k,omitempty"` // agreement degree, default 3 (k+1 processes)
	N         int    `json:"n,omitempty"` // solo self-deliveries per process, default 2
}

func (q *AdversaryRequest) normalize() error {
	if q.Candidate == "" {
		q.Candidate = "first-k"
	}
	if q.K == 0 {
		q.K = 3
	}
	if q.K < 2 || q.K > maxAdvK {
		return fmt.Errorf("k must be in 2..%d, got %d", maxAdvK, q.K)
	}
	if q.N == 0 {
		q.N = 2
	}
	if q.N < 1 || q.N > maxAdvN {
		return fmt.Errorf("n must be in 1..%d, got %d", maxAdvN, q.N)
	}
	if _, err := broadcast.Lookup(q.Candidate); err != nil {
		return err
	}
	return nil
}

// LemmaReport is one mechanical lemma verdict in the adversary summary.
type LemmaReport struct {
	Lemma string `json:"lemma"`
	OK    bool   `json:"ok"`
	Err   string `json:"err,omitempty"`
}

// AdversaryResponse is the β projection summary of one construction.
type AdversaryResponse struct {
	Candidate  string         `json:"candidate"`
	K          int            `json:"k"`
	N          int            `json:"n"`
	AlphaSteps int            `json:"alpha_steps"`
	BetaEvents int            `json:"beta_events"`
	Resets     int            `json:"resets"`
	Adoptions  int            `json:"adoptions"`
	Counted    map[string]int `json:"counted"` // per-process counted N-solo messages
	LemmasOK   bool           `json:"lemmas_ok"`
	Lemmas     []LemmaReport  `json:"lemmas"`
}

func (s *Server) handleAdversary(w http.ResponseWriter, r *http.Request) {
	var q AdversaryRequest
	if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if err := q.normalize(); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	hash := canonicalHash("adversary", &q)
	s.runManaged(w, r, "adversary", hash, uint64(q.K)<<32|uint64(q.N), func(ctx context.Context) (jobOutput, error) {
		return s.executeAdversary(ctx, &q)
	})
}

func (s *Server) executeAdversary(ctx context.Context, q *AdversaryRequest) (jobOutput, error) {
	if err := ctx.Err(); err != nil {
		return jobOutput{}, err
	}
	cand, err := broadcast.Lookup(q.Candidate)
	if err != nil {
		return jobOutput{}, err
	}
	res, err := adversary.Run(adversary.Options{K: q.K, N: q.N, NewAutomaton: cand.NewAutomaton, Obs: s.reg})
	if err != nil {
		return jobOutput{}, err
	}
	reports, ok := res.Verify()
	resp := AdversaryResponse{
		Candidate:  cand.Name,
		K:          q.K,
		N:          q.N,
		AlphaSteps: res.Alpha.X.Len(),
		BetaEvents: res.Beta.X.Len(),
		Resets:     res.Resets,
		Adoptions:  res.Adoptions,
		Counted:    make(map[string]int, len(res.Counted)),
		LemmasOK:   ok,
	}
	for p, ms := range res.Counted {
		resp.Counted[fmt.Sprintf("p%d", int(p))] = len(ms)
	}
	for _, rep := range reports {
		resp.Lemmas = append(resp.Lemmas, LemmaReport{Lemma: rep.Lemma, OK: rep.OK, Err: rep.Err})
	}
	return encodeBody(&resp, res.Alpha)
}
