package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/obs"
	"nobroadcast/internal/sched"
	"nobroadcast/internal/trace"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Obs == nil {
		cfg.Obs = obs.New()
	}
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp, b
}

// TestRunCacheByteIdentical is the acceptance criterion: a repeated
// identical POST /v1/run is served from the cache with a byte-identical
// body, and serve.cache_hits increments.
func TestRunCacheByteIdentical(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	req := `{"candidate":"fifo","n":3,"workload":{"messages":6}}`

	r1, b1 := postJSON(t, ts.URL+"/v1/run", req)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("first run: status %d, body %s", r1.StatusCode, b1)
	}
	if got := r1.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first run X-Cache = %q, want miss", got)
	}
	r2, b2 := postJSON(t, ts.URL+"/v1/run", req)
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("second run: status %d, body %s", r2.StatusCode, b2)
	}
	if got := r2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("second run X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("cached body differs:\n first: %s\nsecond: %s", b1, b2)
	}
	if hits := s.hits.Value(); hits != 1 {
		t.Fatalf("serve.cache_hits = %d, want 1", hits)
	}
	if misses := s.misses.Value(); misses != 1 {
		t.Fatalf("serve.cache_misses = %d, want 1", misses)
	}
	var doc RunResponse
	if err := json.Unmarshal(b1, &doc); err != nil {
		t.Fatalf("result document: %v", err)
	}
	if doc.Verdict != "" {
		t.Fatalf("fifo run rejected: %s", doc.Verdict)
	}
	if !doc.Complete || doc.Deliveries != 6*3 {
		t.Fatalf("unexpected result: complete=%v deliveries=%d", doc.Complete, doc.Deliveries)
	}

	// An equivalent request with defaults spelled out normalizes to the
	// same hash and also hits.
	r3, _ := postJSON(t, ts.URL+"/v1/run", `{"candidate":"fifo","runtime":"sched","n":3,"k":2,"workload":{"kind":"uniform","messages":6}}`)
	if got := r3.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("normalized-equal request X-Cache = %q, want hit", got)
	}
}

// TestRunValidation: malformed parameters are rejected up front with 400,
// before touching the job machinery.
func TestRunValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, body := range []string{
		`{"candidate":"no-such-candidate"}`,
		`{"candidate":"fifo","n":-2}`,
		`{"candidate":"fifo","n":100000}`,
		`{"candidate":"fifo","k":9,"n":4}`,
		`{"candidate":"fifo","runtime":"quantum"}`,
		`{"candidate":"fifo","workload":{"kind":"prime"}}`,
		`{"candidate":"fifo","drop":0.5}`,
		`not json`,
	} {
		resp, b := postJSON(t, ts.URL+"/v1/run", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s: status %d (%s), want 400", body, resp.StatusCode, b)
		}
	}
}

// blockingJob submits a managed job whose body blocks until release is
// closed, through the real handler path.
func blockingJob(s *Server, hash string, start chan<- struct{}, release <-chan struct{}) *httptest.ResponseRecorder {
	w := httptest.NewRecorder()
	r := httptest.NewRequest("POST", "/test", nil)
	s.runManaged(w, r, "test", hash, 0, func(ctx context.Context) (jobOutput, error) {
		start <- struct{}{}
		select {
		case <-release:
			return jobOutput{body: []byte(`{"ok":true}`)}, nil
		case <-ctx.Done():
			return jobOutput{}, ctx.Err()
		}
	})
	return w
}

// TestSaturationReturns429: with one worker and a queue of one, a third
// distinct job bounces off the admission queue with 429 + Retry-After and
// is counted by serve.jobs_rejected; the accepted jobs still finish.
func TestSaturationReturns429(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	start := make(chan struct{}, 8)
	release := make(chan struct{})

	var wg sync.WaitGroup
	results := make([]*httptest.ResponseRecorder, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = blockingJob(s, fmt.Sprintf("h%d", i), start, release)
		}(i)
	}
	<-start // the running job occupies the single slot

	// Wait until the second job holds its admission ticket (queued).
	// queue_depth counts only jobs waiting for a slot — the executing job
	// left the queue when it claimed its slot — so both tickets are held
	// exactly when one job is in flight and one is queued.
	deadline := time.Now().Add(5 * time.Second)
	for s.inflight.Value() < 1 || s.queueDepth.Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second job never queued")
		}
		time.Sleep(time.Millisecond)
	}

	w := httptest.NewRecorder()
	r := httptest.NewRequest("POST", "/test", nil)
	s.runManaged(w, r, "test", "h-overflow", 0, func(ctx context.Context) (jobOutput, error) {
		t.Error("overflow job must not execute")
		return jobOutput{}, nil
	})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %d, want 429; body %s", w.Code, w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if got := s.rejected.Value(); got != 1 {
		t.Errorf("serve.jobs_rejected = %d, want 1", got)
	}

	close(release)
	<-start // the queued job starts once the slot frees
	wg.Wait()
	for i, w := range results {
		if w.Code != http.StatusOK {
			t.Errorf("job %d status = %d, want 200; body %s", i, w.Code, w.Body)
		}
	}
	if got := s.completed.Value(); got != 2 {
		t.Errorf("serve.jobs_completed = %d, want 2", got)
	}
}

// TestCancellationMidJob: cancelling the request context mid-execution
// settles the job as cancelled, counts it, and frees the slot for the
// next job.
func TestCancellationMidJob(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	start := make(chan struct{}, 1)
	ctx, cancel := context.WithCancel(context.Background())

	w := httptest.NewRecorder()
	r := httptest.NewRequest("POST", "/test", nil).WithContext(ctx)
	done := make(chan struct{})
	var jobID string
	go func() {
		defer close(done)
		s.runManaged(w, r, "test", "h-cancel", 0, func(ctx context.Context) (jobOutput, error) {
			start <- struct{}{}
			<-ctx.Done()
			return jobOutput{}, ctx.Err()
		})
	}()
	<-start
	s.mu.Lock()
	if j := s.flight["h-cancel"]; j != nil {
		jobID = j.ID
	}
	s.mu.Unlock()
	cancel()
	<-done
	if w.Code != http.StatusRequestTimeout {
		t.Fatalf("cancelled job status = %d, want 408; body %s", w.Code, w.Body)
	}
	if got := s.cancel.Value(); got != 1 {
		t.Errorf("serve.jobs_cancelled = %d, want 1", got)
	}
	if j := s.lookup(jobID); j == nil || j.Status != StatusCancelled {
		t.Errorf("job record not cancelled: %+v", j)
	}

	// The slot is free again: a fresh job runs to completion.
	w2 := httptest.NewRecorder()
	r2 := httptest.NewRequest("POST", "/test", nil)
	s.runManaged(w2, r2, "test", "h-after", 0, func(ctx context.Context) (jobOutput, error) {
		return jobOutput{body: []byte(`{}`)}, nil
	})
	if w2.Code != http.StatusOK {
		t.Fatalf("post-cancel job status = %d, want 200", w2.Code)
	}
}

// TestGracefulDrain: drain mode rejects new work with 503 while the jobs
// already accepted run to completion, and Drain returns once they settle.
func TestGracefulDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	start := make(chan struct{}, 1)
	release := make(chan struct{})

	var w *httptest.ResponseRecorder
	done := make(chan struct{})
	go func() {
		defer close(done)
		w = blockingJob(s, "h-drain", start, release)
	}()
	<-start

	s.StopAdmitting()
	resp, body := postJSON(t, ts.URL+"/v1/run", `{"candidate":"fifo"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining run status = %d (%s), want 503", resp.StatusCode, body)
	}
	// Liveness and readiness split: the draining process is still alive
	// (200, so orchestrators don't kill it mid-drain) but not ready (503
	// with a Retry-After, so coordinators stop dispatching to it).
	hresp, _ := http.Get(ts.URL + "/healthz")
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("draining healthz status = %d, want 200 (liveness)", hresp.StatusCode)
	}
	rresp, _ := http.Get(ts.URL + "/readyz")
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz status = %d, want 503", rresp.StatusCode)
	}
	if rresp.Header.Get("Retry-After") == "" {
		t.Fatal("draining readyz has no Retry-After")
	}

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	select {
	case err := <-drained:
		t.Fatalf("Drain returned before the in-flight job settled: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	<-done
	if w.Code != http.StatusOK {
		t.Fatalf("in-flight job during drain: status = %d, want 200", w.Code)
	}

	// A bounded drain against a stuck job reports the interruption.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("second drain with nothing in flight: %v", err)
	}
}

// TestCoalescing: identical in-flight requests share one execution.
func TestCoalescing(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 2})
	start := make(chan struct{}, 1)
	release := make(chan struct{})
	executions := 0

	var wg sync.WaitGroup
	var w1 *httptest.ResponseRecorder
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := httptest.NewRecorder()
		r := httptest.NewRequest("POST", "/test", nil)
		s.runManaged(w, r, "test", "h-shared", 0, func(ctx context.Context) (jobOutput, error) {
			executions++ // safe: the follower must not execute at all
			start <- struct{}{}
			<-release
			return jobOutput{body: []byte(`{"shared":true}`)}, nil
		})
		w1 = w
	}()
	<-start

	var w2 *httptest.ResponseRecorder
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := httptest.NewRecorder()
		r := httptest.NewRequest("POST", "/test", nil)
		s.runManaged(w, r, "test", "h-shared", 0, func(ctx context.Context) (jobOutput, error) {
			t.Error("coalesced follower executed its own job")
			return jobOutput{}, nil
		})
		w2 = w
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.coalesced.Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never coalesced")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if executions != 1 {
		t.Fatalf("executions = %d, want 1", executions)
	}
	if w1.Code != http.StatusOK || w2.Code != http.StatusOK {
		t.Fatalf("statuses = %d, %d, want 200, 200", w1.Code, w2.Code)
	}
	if !bytes.Equal(w1.Body.Bytes(), w2.Body.Bytes()) {
		t.Fatalf("coalesced bodies differ: %s vs %s", w1.Body, w2.Body)
	}
	if got := w2.Header().Get("X-Cache"); got != "coalesced" {
		t.Fatalf("follower X-Cache = %q, want coalesced", got)
	}
}

// TestAdversaryEndpoint: a construction returns the β summary with every
// lemma verified, and the α trace streams from the jobs endpoint.
func TestAdversaryEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, body := postJSON(t, ts.URL+"/v1/adversary", `{"candidate":"first-k","k":2,"n":2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("adversary: status %d, body %s", resp.StatusCode, body)
	}
	var doc AdversaryResponse
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("decoding summary: %v", err)
	}
	if !doc.LemmasOK {
		t.Fatalf("lemmas failed: %+v", doc.Lemmas)
	}
	if doc.AlphaSteps == 0 || doc.BetaEvents == 0 || len(doc.Counted) != doc.K+1 {
		t.Fatalf("degenerate summary: %+v", doc)
	}

	// The α trace is downloadable and parses back as JSONL.
	id := resp.Header.Get("X-Job-Id")
	tresp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("trace download: status %d", tresp.StatusCode)
	}
	sr, err := trace.NewStepReader(tresp.Body)
	if err != nil {
		t.Fatalf("downloaded trace header: %v", err)
	}
	steps := 0
	for {
		_, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("downloaded trace step %d: %v", steps, err)
		}
		steps++
	}
	if steps != doc.AlphaSteps {
		t.Fatalf("downloaded %d steps, summary says %d", steps, doc.AlphaSteps)
	}

	// Job status view embeds the settled result.
	jresp, jbody := getBody(t, ts.URL+"/v1/jobs/"+id)
	if jresp.StatusCode != http.StatusOK {
		t.Fatalf("job view: status %d", jresp.StatusCode)
	}
	var view struct {
		Status string          `json:"status"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(jbody, &view); err != nil {
		t.Fatalf("job view: %v", err)
	}
	if view.Status != StatusDone || len(view.Result) == 0 {
		t.Fatalf("job view = %s", jbody)
	}
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// sampleTrace runs a small fifo workload on the deterministic runtime —
// a genuinely admissible execution, not a handcrafted approximation.
func sampleTrace(t *testing.T) *trace.Trace {
	t.Helper()
	cand, err := broadcast.Lookup("fifo")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := sched.New(sched.Config{N: 2, NewAutomaton: cand.NewAutomaton, Oracle: cand.OracleFor(2)})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := rt.RunFair(sched.RunOptions{Broadcasts: []sched.BroadcastReq{
		{Proc: 1, Payload: "a"}, {Proc: 2, Payload: "b"}, {Proc: 1, Payload: "c"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// sampleJSONL renders the sample trace in streaming form.
func sampleJSONL(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sampleTrace(t).EncodeJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCheckEndpoint: an uploaded JSONL trace is checked against every
// spec in streaming form, with per-spec verdict lines and a summary.
func TestCheckEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	resp, body := postJSON(t, ts.URL+"/v1/check?spec=all&k=2", string(sampleJSONL(t)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("check: status %d, body %s", resp.StatusCode, body)
	}
	sum, err := summaryLine(body)
	if err != nil {
		t.Fatalf("summary line: %v (body %s)", err, body)
	}
	wantSteps := float64(sampleTrace(t).X.Len())
	if sum["steps"].(float64) != wantSteps {
		t.Fatalf("summary steps = %v, want %v", sum["steps"], wantSteps)
	}
	if sum["specs"].(float64) < 10 {
		t.Fatalf("summary specs = %v, want the full registry", sum["specs"])
	}
	// The sample is well-formed and fifo-ordered; both verdict lines say so.
	for _, want := range []string{`"spec":"well-formed","rejected":false`, `"spec":"fifo-order","rejected":false`} {
		if !strings.Contains(string(body), want) {
			t.Errorf("check body missing %s:\n%s", want, body)
		}
	}
	if got := s.checks.Value(); got != 1 {
		t.Errorf("serve.checks = %d, want 1", got)
	}

	// A single named spec checks just that spec.
	resp, body = postJSON(t, ts.URL+"/v1/check?spec=fifo&k=2", string(sampleJSONL(t)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single-spec check: status %d, body %s", resp.StatusCode, body)
	}
	if sum, _ := summaryLine(body); sum["specs"].(float64) != 1 {
		t.Fatalf("single-spec summary = %v", sum)
	}

	// Unknown spec name is a 400 before any job is created.
	resp, _ = postJSON(t, ts.URL+"/v1/check?spec=nope", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown spec: status %d, want 400", resp.StatusCode)
	}
}

// TestCheckTruncatedUpload is the satellite acceptance: a truncated JSONL
// upload is answered 400 with a "truncated upload" error, not a generic
// parse failure or a hang.
func TestCheckTruncatedUpload(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	full := sampleJSONL(t)
	cut := bytes.TrimRight(full, "\n")
	cut = cut[:len(cut)-7] // mid-way through the final step line

	resp, body := postJSON(t, ts.URL+"/v1/check?spec=well-formed", string(cut))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated check: status %d, body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "truncated upload") {
		t.Fatalf("truncated check body = %s, want 'truncated upload'", body)
	}

	// A stray second header mid-stream is a 400 too, named as such.
	lines := bytes.SplitN(full, []byte("\n"), 2)
	dup := append(append(append([]byte{}, lines[0]...), '\n'), full...)
	resp, body = postJSON(t, ts.URL+"/v1/check?spec=well-formed", string(dup))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("double-header check: status %d, body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "second header") {
		t.Fatalf("double-header body = %s, want 'second header'", body)
	}
}

// TestNetRuntimeRun: the concurrent runtime path works end to end but
// bypasses the result cache — its documents depend on real goroutine
// scheduling against wall-clock convergence budgets, so a cached copy
// could freeze a timing accident (an incomplete faulty run, a different
// send count) as the permanent verdict for that parameter hash. A repeat
// therefore re-executes.
func TestNetRuntimeRun(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	req := `{"candidate":"reliable","runtime":"net","n":3,"seed":7,"workload":{"messages":6}}`
	resp, body := postJSON(t, ts.URL+"/v1/run", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("net run: status %d, body %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != "uncached" {
		t.Fatalf("net run X-Cache = %q, want uncached", got)
	}
	var doc RunResponse
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Complete || doc.Sends == 0 {
		t.Fatalf("net run degenerate: %+v", doc)
	}
	resp2, body2 := postJSON(t, ts.URL+"/v1/run", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("net repeat: status %d, body %s", resp2.StatusCode, body2)
	}
	if got := resp2.Header.Get("X-Cache"); got != "uncached" {
		t.Fatalf("net repeat X-Cache = %q, want uncached (timing-sensitive results must not be replayed)", got)
	}
	if id1, id2 := resp.Header.Get("X-Job-Id"), resp2.Header.Get("X-Job-Id"); id1 == id2 {
		t.Fatalf("net repeat reused job %s instead of re-executing", id1)
	}
	if hits := s.hits.Value(); hits != 0 {
		t.Fatalf("serve.cache_hits = %d, want 0 (net jobs bypass the cache)", hits)
	}
	// The uncached job records are still parked and resolvable by id.
	jresp, jbody := getBody(t, ts.URL+"/v1/jobs/"+resp.Header.Get("X-Job-Id"))
	if jresp.StatusCode != http.StatusOK || !strings.Contains(string(jbody), `"status":"done"`) {
		t.Fatalf("net job record not resolvable: %d %s", jresp.StatusCode, jbody)
	}
}

// TestTCPRuntimeRun: the socket-transport path works end to end —
// loopback TCP nodes, per-node trace streams merged by the harness —
// and bypasses the result cache for the same reason the net runtime
// does: the documents race real sockets against wall-clock budgets.
func TestTCPRuntimeRun(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := `{"candidate":"send-to-all","runtime":"tcp","n":3,"seed":11,"workload":{"messages":6}}`
	resp, body := postJSON(t, ts.URL+"/v1/run", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tcp run: status %d, body %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != "uncached" {
		t.Fatalf("tcp run X-Cache = %q, want uncached", got)
	}
	var doc RunResponse
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Runtime != "tcp" || !doc.Complete {
		t.Fatalf("tcp run degenerate: %+v", doc)
	}
	if doc.Verdict != "" {
		t.Fatalf("tcp run rejected by spec: %s", doc.Verdict)
	}
	if want := 3 * 6; doc.Deliveries != want {
		t.Fatalf("tcp run deliveries = %d, want %d", doc.Deliveries, want)
	}
	// The tcp runtime shares the n ceiling enforcement with the others
	// but at a tighter bound (a full TCP mesh per extra node).
	resp2, body2 := postJSON(t, ts.URL+"/v1/run", `{"candidate":"send-to-all","runtime":"tcp","n":32,"workload":{"messages":6}}`)
	if resp2.StatusCode != http.StatusBadRequest || !strings.Contains(string(body2), "tcp runtime") {
		t.Fatalf("oversize tcp run: status %d, body %s", resp2.StatusCode, body2)
	}
}

// TestJobViewDuringExecution: the job GET endpoints are safe while the
// job is still running and while it settles concurrently — the
// regression was handleJob/handleJobTrace reading Status/Err/Body
// without s.mu while settle mutated them under the lock, which tests
// that only poll after completion never exercise under -race.
func TestJobViewDuringExecution(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	start := make(chan struct{}, 1)
	release := make(chan struct{})
	jobDone := make(chan struct{})
	go func() {
		defer close(jobDone)
		blockingJob(s, "h-live", start, release)
	}()
	<-start
	s.mu.Lock()
	j := s.flight["h-live"]
	s.mu.Unlock()
	if j == nil {
		t.Fatal("running job not registered in flight")
	}

	// Readers hammer both endpoints across the running→done transition.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID)
				if err != nil {
					t.Errorf("job view: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("job view status = %d, want 200", resp.StatusCode)
					return
				}
				tresp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID + "/trace")
				if err != nil {
					t.Errorf("trace view: %v", err)
					return
				}
				io.Copy(io.Discard, tresp.Body)
				tresp.Body.Close()
				// 409 while running (no blocking wait), 404 once settled:
				// this job records no trace.
				if tresp.StatusCode != http.StatusConflict && tresp.StatusCode != http.StatusNotFound {
					t.Errorf("trace view status = %d, want 409 or 404", tresp.StatusCode)
					return
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond) // let readers observe the running state
	close(release)
	<-jobDone
	close(stop)
	wg.Wait()

	// Settled: the view embeds the result and the trace endpoint answers
	// definitively without waiting.
	jresp, jbody := getBody(t, ts.URL+"/v1/jobs/"+j.ID)
	if jresp.StatusCode != http.StatusOK || !strings.Contains(string(jbody), `"status":"done"`) {
		t.Fatalf("settled job view: %d %s", jresp.StatusCode, jbody)
	}
}

// TestCacheEviction: the LRU keeps the job index bounded.
func TestCacheEviction(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 2, CacheEntries: 2})
	for i := 0; i < 5; i++ {
		w := httptest.NewRecorder()
		r := httptest.NewRequest("POST", "/test", nil)
		body := []byte(fmt.Sprintf(`{"i":%d}`, i))
		s.runManaged(w, r, "test", fmt.Sprintf("h-ev-%d", i), 0, func(ctx context.Context) (jobOutput, error) {
			return jobOutput{body: body}, nil
		})
		if w.Code != http.StatusOK {
			t.Fatalf("job %d: status %d", i, w.Code)
		}
	}
	s.mu.Lock()
	cached, jobs := s.cache.len(), len(s.jobs)
	s.mu.Unlock()
	if cached != 2 {
		t.Fatalf("cache holds %d entries, want 2", cached)
	}
	if jobs != 2 {
		t.Fatalf("job index holds %d records, want 2 (evictions must release them)", jobs)
	}
}

// sampleBinary renders the sample trace in wire format v1.
func sampleBinary(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sampleTrace(t).EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCheckBinaryUpload: the same trace uploaded in wire format v1 —
// with the explicit Content-Type or sniffed without one — produces a
// check document identical to its JSONL upload, and a truncated binary
// upload is the same 400 "truncated upload" the JSONL path answers.
func TestCheckBinaryUpload(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	url := ts.URL + "/v1/check?spec=all&k=2"

	resp, jsonlBody := postJSON(t, url, string(sampleJSONL(t)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("jsonl check: status %d, body %s", resp.StatusCode, jsonlBody)
	}

	bin := sampleBinary(t)
	for _, ct := range []string{trace.ContentTypeBinary, ""} {
		req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(bin))
		if err != nil {
			t.Fatal(err)
		}
		if ct != "" {
			req.Header.Set("Content-Type", ct)
		}
		bresp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		binBody, err := io.ReadAll(bresp.Body)
		bresp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if bresp.StatusCode != http.StatusOK {
			t.Fatalf("binary check (ct=%q): status %d, body %s", ct, bresp.StatusCode, binBody)
		}
		if !bytes.Equal(binBody, jsonlBody) {
			t.Fatalf("binary check (ct=%q) body differs from jsonl upload:\n%s\nvs\n%s", ct, binBody, jsonlBody)
		}
	}

	// A cut binary upload is detected as truncation, not a parse error.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/check?spec=well-formed", bytes.NewReader(bin[:len(bin)-5]))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", trace.ContentTypeBinary)
	tresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	tbody, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusBadRequest || !strings.Contains(string(tbody), "truncated upload") {
		t.Fatalf("truncated binary check: status %d, body %s", tresp.StatusCode, tbody)
	}
}

// TestJobTraceBinaryDownload: Accept: application/x-ksatrace on the
// trace endpoint streams wire format v1 (a .ktr attachment) carrying
// exactly the execution the default JSONL download carries.
func TestJobTraceBinaryDownload(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, body := postJSON(t, ts.URL+"/v1/adversary", `{"candidate":"first-k","k":2,"n":2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("adversary: status %d, body %s", resp.StatusCode, body)
	}
	id := resp.Header.Get("X-Job-Id")

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+id+"/trace", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", trace.ContentTypeBinary)
	bresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	if bresp.StatusCode != http.StatusOK {
		t.Fatalf("binary trace download: status %d", bresp.StatusCode)
	}
	if got := bresp.Header.Get("Content-Type"); got != trace.ContentTypeBinary {
		t.Fatalf("binary download Content-Type = %q", got)
	}
	if got := bresp.Header.Get("Content-Disposition"); !strings.Contains(got, ".ktr") {
		t.Fatalf("binary download Content-Disposition = %q, want a .ktr attachment", got)
	}
	fromBin, err := trace.DecodeBinary(bresp.Body)
	if err != nil {
		t.Fatalf("decoding binary download: %v", err)
	}

	jresp, jbody := getBody(t, ts.URL+"/v1/jobs/"+id+"/trace")
	if jresp.StatusCode != http.StatusOK {
		t.Fatalf("jsonl trace download: status %d", jresp.StatusCode)
	}
	if got := jresp.Header.Get("Content-Disposition"); !strings.Contains(got, ".jsonl") {
		t.Fatalf("jsonl download Content-Disposition = %q", got)
	}
	fromJSONL, err := trace.DecodeJSONL(bytes.NewReader(jbody))
	if err != nil {
		t.Fatalf("decoding jsonl download: %v", err)
	}
	if len(fromBin.X.Steps) != len(fromJSONL.X.Steps) || fromBin.X.N != fromJSONL.X.N {
		t.Fatalf("downloads disagree: %d/%d steps, N %d/%d",
			len(fromBin.X.Steps), len(fromJSONL.X.Steps), fromBin.X.N, fromJSONL.X.N)
	}
	for i := range fromBin.X.Steps {
		if fromBin.X.Steps[i] != fromJSONL.X.Steps[i] {
			t.Fatalf("step %d differs between formats: %+v vs %+v", i, fromBin.X.Steps[i], fromJSONL.X.Steps[i])
		}
	}
}
