package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"nobroadcast/internal/obs"
)

// benchDaemon builds one in-process daemon for benchmarking.
func benchDaemon(b *testing.B, cfg Config) *httptest.Server {
	b.Helper()
	if cfg.Obs == nil {
		cfg.Obs = obs.New()
	}
	ts := httptest.NewServer(New(cfg))
	b.Cleanup(ts.Close)
	return ts
}

// BenchmarkFabricCorpus is the PR 9 headline: aggregate throughput of
// the conformance corpus on a single daemon versus a coordinator
// sharding it over 2 and 4 in-process workers. The corpus is
// latency-bound — each cell's concurrent network spends most of its
// wall-clock waiting on timers — so sharding overlaps those waits and
// the job speeds up even on one core. Every iteration uses a fresh seed,
// so no result cache (local or fleet) short-circuits the measurement.
func BenchmarkFabricCorpus(b *testing.B) {
	seed := uint64(1 << 32)
	run := func(b *testing.B, url string) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			seed++
			resp, err := http.Post(url+"/v1/corpus", "application/json",
				strings.NewReader(fmt.Sprintf(`{"seed":%d}`, seed)))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("corpus: status %d", resp.StatusCode)
			}
		}
	}
	b.Run("single", func(b *testing.B) {
		ts := benchDaemon(b, Config{Workers: 1})
		b.ResetTimer()
		run(b, ts.URL)
	})
	for _, n := range []int{2, 4} {
		b.Run(fmt.Sprintf("workers=%d", n), func(b *testing.B) {
			urls := make([]string, n)
			for i := range urls {
				urls[i] = benchDaemon(b, Config{Workers: 1}).URL
			}
			coord := benchDaemon(b, Config{Workers: 1, FabricWorkers: urls})
			b.ResetTimer()
			run(b, coord.URL)
		})
	}
}
