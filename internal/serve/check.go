package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"nobroadcast/internal/spec"
	"nobroadcast/internal/trace"
)

// checkVerdict is one per-spec verdict line of a /v1/check response.
// LatchedStep is the index of the step that latched the violation, or -1
// when the spec was not rejected or rejected only at finish time (a
// liveness clause on the complete trace).
type checkVerdict struct {
	Spec        string `json:"spec"`
	Rejected    bool   `json:"rejected"`
	Violation   string `json:"violation,omitempty"`
	LatchedStep int    `json:"latched_step"`
}

// handleCheck serves POST /v1/check?spec=all&k=2: the uploaded trace is
// streamed through the selected online checkers — only checker state is
// resident, never the trace — and the response is JSONL: a header echo,
// one verdict line per spec, and a summary line. The upload format is
// negotiated by Content-Type: application/x-ksatrace is decoded as wire
// format v1 (the fast path), anything else is sniffed, so both binary
// and JSONL bodies work with or without the header. Checks are
// admission-controlled managed jobs like runs, but uncached: the input
// arrives in the request body, so there is no parameter hash to key a
// cache by.
func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	defer func() { s.totalUS.Observe(time.Since(t0).Microseconds()) }()
	specName := r.URL.Query().Get("spec")
	if specName == "" {
		specName = "all"
	}
	k := 2
	if ks := r.URL.Query().Get("k"); ks != "" {
		v, err := strconv.Atoi(ks)
		if err != nil || v < 1 {
			httpError(w, http.StatusBadRequest, "k must be a positive integer, got "+ks)
			return
		}
		k = v
	}
	if specName != "all" {
		if _, err := spec.ByName(specName, k); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		w.Header().Set("Retry-After", "5")
		httpError(w, http.StatusServiceUnavailable, "draining: not admitting new jobs")
		return
	}
	j := s.newJobLocked("check", "")
	s.wg.Add(1)
	s.mu.Unlock()
	defer s.wg.Done()

	qsp, _ := s.reg.StartSpanIfTraced(r.Context(), "serve.queue")
	release, err := s.acquire(r.Context())
	qsp.End()
	if err != nil {
		if errors.Is(err, errSaturated) {
			s.rejected.Inc()
			s.settle(j, jobOutput{}, err)
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, "admission queue saturated; retry later")
			return
		}
		s.settle(j, jobOutput{}, err)
		httpError(w, http.StatusRequestTimeout, "cancelled while queued: "+err.Error())
		return
	}
	defer release()
	s.admitted.Inc()
	s.checks.Inc()

	jsp, jctx := s.reg.StartSpanIfTraced(r.Context(), "serve.job")
	ctx, cancel := context.WithTimeout(jctx, s.cfg.JobTimeout)
	defer cancel()
	execStart := time.Now()
	out, err := s.execute(ctx, 0, func(ctx context.Context) (jobOutput, error) {
		return s.runCheck(ctx, specName, k, r.Header.Get("Content-Type"), r.Body)
	})
	s.execUS.Observe(time.Since(execStart).Microseconds())
	jsp.End()
	s.settle(j, out, err)
	switch {
	case err == nil:
		w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
		w.Header().Set("X-Job-Id", j.ID)
		w.Write(j.Body)
	case errors.Is(err, trace.ErrTruncated):
		httpError(w, http.StatusBadRequest, "truncated upload: "+err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		httpError(w, http.StatusGatewayTimeout, "check exceeded the server-side timeout")
	case errors.Is(err, context.Canceled):
		httpError(w, http.StatusRequestTimeout, "check cancelled")
	default:
		// Every remaining error is a malformed upload: a stray second
		// header, an invalid step kind, or broken JSON.
		httpError(w, http.StatusBadRequest, err.Error())
	}
}

// runCheck streams one uploaded trace through the selected checkers,
// accounting the decode time (header parse plus every Next call) to
// serve.check_decode_us — on large JSONL uploads decode dominates the
// check, which is why the binary format exists; the histogram makes the
// difference visible. An explicit application/x-ksatrace Content-Type
// selects the binary reader outright; otherwise the format is sniffed.
func (s *Server) runCheck(ctx context.Context, specName string, k int, contentType string, body io.Reader) (jobOutput, error) {
	var decodeNS int64
	defer func() { s.decodeUS.Observe(decodeNS / 1e3) }()
	decodeStart := time.Now()
	var sr trace.Reader
	var err error
	if strings.HasPrefix(contentType, trace.ContentTypeBinary) {
		sr, err = trace.NewBinaryReader(body)
	} else {
		sr, err = trace.NewAnyReader(body)
	}
	decodeNS += time.Since(decodeStart).Nanoseconds()
	if err != nil {
		return jobOutput{}, err
	}
	hdr := sr.Header()

	// Verdict lines carry the registry key (the name a client selects
	// by), not the spec's display name.
	type selected struct {
		key string
		sp  spec.Spec
	}
	var specs []selected
	if specName == "all" {
		for _, e := range spec.Registry() {
			specs = append(specs, selected{e.Key, e.New(k)})
		}
	} else {
		sp, err := spec.ByName(specName, k)
		if err != nil {
			return jobOutput{}, err
		}
		specs = append(specs, selected{specName, sp})
	}
	checkers := make([]spec.Checker, len(specs))
	verdicts := make([]checkVerdict, len(specs))
	for i, sel := range specs {
		checkers[i] = spec.NewCheckerFor(sel.sp, hdr.N)
		verdicts[i] = checkVerdict{Spec: sel.key, LatchedStep: -1}
	}

	steps := 0
	for {
		nextStart := time.Now()
		st, err := sr.Next()
		decodeNS += time.Since(nextStart).Nanoseconds()
		if err == io.EOF {
			break
		}
		if err != nil {
			return jobOutput{}, err
		}
		for i := range checkers {
			if verdicts[i].Rejected {
				continue
			}
			if v := checkers[i].Feed(st); v != nil {
				verdicts[i].Rejected = true
				verdicts[i].Violation = v.String()
				verdicts[i].LatchedStep = steps
			}
		}
		steps++
		if steps%4096 == 0 {
			if err := ctx.Err(); err != nil {
				return jobOutput{}, err
			}
		}
	}
	rejected := 0
	for i := range checkers {
		if !verdicts[i].Rejected {
			if v := checkers[i].Finish(hdr.Complete); v != nil {
				verdicts[i].Rejected = true
				verdicts[i].Violation = v.String()
			}
		}
		if verdicts[i].Rejected {
			rejected++
		}
	}

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(map[string]any{
		"trace": hdr.Name, "n": hdr.N, "complete": hdr.Complete, "k": k,
	}); err != nil {
		return jobOutput{}, err
	}
	for i := range verdicts {
		if err := enc.Encode(&verdicts[i]); err != nil {
			return jobOutput{}, err
		}
	}
	if err := enc.Encode(map[string]any{
		"steps": steps, "specs": len(verdicts), "rejected": rejected,
	}); err != nil {
		return jobOutput{}, err
	}
	return jobOutput{body: buf.Bytes()}, nil
}

// summaryLine decodes a check body's trailing summary line (test seam).
func summaryLine(body []byte) (map[string]any, error) {
	lines := bytes.Split(bytes.TrimSpace(body), []byte("\n"))
	if len(lines) == 0 {
		return nil, fmt.Errorf("empty check body")
	}
	var m map[string]any
	if err := json.Unmarshal(lines[len(lines)-1], &m); err != nil {
		return nil, err
	}
	return m, nil
}
