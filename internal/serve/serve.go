// Package serve is the long-lived simulation service behind cmd/ksasimd:
// it runs workload simulations, adversary (Algorithm 1) constructions,
// and streaming trace checks as managed jobs over HTTP.
//
// The job manager exploits the repository's central invariant: a
// deterministic-runtime execution is fully determined by (workload,
// parameters, seed). Every request is normalized to a canonical
// parameter set and hashed; repeats are served byte-identical from a
// bounded LRU result cache, and identical in-flight requests coalesce
// onto one execution (singleflight). Determinism makes these cache hits
// exact — the cached body is the body a fresh run would produce — not
// approximate. Net-runtime results are the exception: they depend on
// real goroutine scheduling against wall-clock budgets, so they are
// never cached (X-Cache: uncached), only coalesced while in flight.
//
// New work passes a bounded admission queue (HTTP 429 + Retry-After when
// saturated) onto a bounded worker pool; each job runs as a single-cell
// sweep (internal/sweep), which buys the daemon panic isolation — a
// panicking candidate fails one job, not the process — and the sweep.*
// metrics for free. Jobs carry a per-request context with a server-side
// timeout; a client that disconnects cancels its job. Shutdown is a
// graceful drain: stop admitting, finish the jobs already accepted,
// then let the caller flush its sinks.
//
// Endpoints:
//
//	POST /v1/run            workload simulation on either runtime
//	POST /v1/adversary      Algorithm 1 construction, β projection summary
//	POST /v1/check          upload a JSONL trace, per-spec verdicts (streamed checking)
//	GET  /v1/jobs/{id}      job status and result
//	GET  /v1/jobs/{id}/trace  streaming JSONL trace download
//	GET  /metrics, /vars, /   observability views (internal/obs)
//	GET  /healthz           liveness/drain status
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"nobroadcast/internal/obs"
	"nobroadcast/internal/sweep"
	"nobroadcast/internal/trace"
)

// Config parameterizes the service.
type Config struct {
	// Workers bounds the jobs executing at once. Zero or negative means
	// runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds the jobs admitted but not yet executing; a request
	// arriving with the queue full is rejected with 429. Default 64.
	QueueDepth int
	// CacheEntries bounds the LRU result cache (completed jobs, including
	// their traces). Default 128.
	CacheEntries int
	// JobTimeout is the server-side ceiling on one job's execution.
	// Default 60s.
	JobTimeout time.Duration
	// MaxBodyBytes bounds an uploaded request body. Default 64 MiB (trace
	// uploads are line-streamed, never resident).
	MaxBodyBytes int64
	// Obs receives service metrics (serve.* counters and gauges) and is
	// threaded through to the runtimes. Nil constructs a fresh registry so
	// /metrics is always live.
	Obs *obs.Registry
}

func (c *Config) defaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 128
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 60 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.Obs == nil {
		c.Obs = obs.New()
	}
}

// Server is the HTTP service. Create with New; it implements
// http.Handler.
type Server struct {
	cfg Config
	reg *obs.Registry
	mux *http.ServeMux

	mu       sync.Mutex
	draining bool
	seq      int
	jobs     map[string]*Job // id -> job (running, cached, or recently failed)
	flight   map[string]*Job // param hash -> running job (singleflight)
	cache    *lru            // param hash -> completed job, bounded
	parked   []string        // uncacheable job ids (failed, cancelled, checks), FIFO-evicted

	admit chan struct{} // admission tickets: Workers+QueueDepth
	slots chan struct{} // execution slots: Workers
	wg    sync.WaitGroup

	hits, misses, coalesced    *obs.Counter
	admitted, rejected         *obs.Counter
	completed, failedC, cancel *obs.Counter
	checks                     *obs.Counter
	queueDepth, inflight       *obs.Gauge
}

// New builds the service.
func New(cfg Config) *Server {
	cfg.defaults()
	s := &Server{
		cfg:    cfg,
		reg:    cfg.Obs,
		jobs:   make(map[string]*Job),
		flight: make(map[string]*Job),
		admit:  make(chan struct{}, cfg.Workers+cfg.QueueDepth),
		slots:  make(chan struct{}, cfg.Workers),
	}
	s.cache = newLRU(cfg.CacheEntries, func(j *Job) { delete(s.jobs, j.ID) })
	s.hits = s.reg.Counter("serve.cache_hits")
	s.misses = s.reg.Counter("serve.cache_misses")
	s.coalesced = s.reg.Counter("serve.coalesced")
	s.admitted = s.reg.Counter("serve.jobs_admitted")
	s.rejected = s.reg.Counter("serve.jobs_rejected")
	s.completed = s.reg.Counter("serve.jobs_completed")
	s.failedC = s.reg.Counter("serve.jobs_failed")
	s.cancel = s.reg.Counter("serve.jobs_cancelled")
	s.checks = s.reg.Counter("serve.checks")
	s.queueDepth = s.reg.Gauge("serve.queue_depth")
	s.inflight = s.reg.Gauge("serve.inflight")

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/adversary", s.handleAdversary)
	mux.HandleFunc("POST /v1/check", s.handleCheck)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.Handle("GET /metrics", s.reg)
	mux.Handle("GET /vars", s.reg)
	mux.Handle("GET /{$}", s.reg)
	s.mux = mux
	return s
}

// Registry exposes the service's observability registry (for the daemon's
// -metrics summary at exit).
func (s *Server) Registry() *obs.Registry { return s.reg }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.cfg.MaxBodyBytes > 0 && r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	}
	s.mux.ServeHTTP(w, r)
}

// StopAdmitting switches the server into drain mode: every subsequent
// request that would start work is answered 503; jobs already accepted
// keep running.
func (s *Server) StopAdmitting() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Drain stops admission and waits for every accepted job to settle, or
// for ctx. The SIGTERM half of "stop admitting, finish running jobs".
func (s *Server) Drain(ctx context.Context) error {
	s.StopAdmitting()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted: %w", ctx.Err())
	}
}

// errSaturated is the admission-queue-full rejection (HTTP 429).
var errSaturated = errors.New("serve: admission queue saturated")

// acquire claims an admission ticket (non-blocking; saturation is an
// immediate 429) and then an execution slot (blocking; the queued wait
// respects ctx). The returned release frees both.
func (s *Server) acquire(ctx context.Context) (release func(), err error) {
	select {
	case s.admit <- struct{}{}:
	default:
		return nil, errSaturated
	}
	s.queueDepth.Inc()
	select {
	case s.slots <- struct{}{}:
		// Queued → executing: the job leaves the queue the moment it
		// claims a slot, so queue_depth counts only waiting jobs and never
		// double-counts with serve.inflight.
		s.queueDepth.Dec()
	case <-ctx.Done():
		s.queueDepth.Dec()
		<-s.admit
		return nil, context.Cause(ctx)
	}
	s.inflight.Inc()
	return func() {
		s.inflight.Dec()
		<-s.slots
		<-s.admit
	}, nil
}

// jobOutput is what one executed job yields: the response body served to
// this and every future identical request, and the recorded trace behind
// GET /v1/jobs/{id}/trace. uncacheable marks results that are not pure
// functions of the request hash (the net runtime races real goroutines
// against wall-clock budgets) and must not be replayed from the cache.
type jobOutput struct {
	body        []byte
	tr          *trace.Trace
	uncacheable bool
}

// execute runs one job body as a single-cell sweep: a panic in a
// candidate implementation surfaces as a structured error on this job
// instead of tearing the daemon down.
func (s *Server) execute(ctx context.Context, seed uint64, fn func(ctx context.Context) (jobOutput, error)) (jobOutput, error) {
	out, err := sweep.Run(ctx, 1, sweep.Options{Workers: 1, Seed: seed, Obs: s.reg},
		func(ctx context.Context, _ sweep.Cell) (jobOutput, error) { return fn(ctx) })
	if err != nil {
		var es sweep.Errors
		if errors.As(err, &es) && len(es) > 0 {
			return jobOutput{}, es[0].Err
		}
		return jobOutput{}, err
	}
	return out[0], nil
}

// runManaged is the shared lifecycle of the cacheable endpoints: cache
// lookup, singleflight coalescing, admission, execution with per-job
// timeout, and result publication.
func (s *Server) runManaged(w http.ResponseWriter, r *http.Request, kind, hash string, seed uint64, fn func(ctx context.Context) (jobOutput, error)) {
	s.mu.Lock()
	if j := s.cache.get(hash); j != nil {
		s.mu.Unlock()
		s.hits.Inc()
		serveResult(w, j, "hit")
		return
	}
	if j := s.flight[hash]; j != nil {
		s.mu.Unlock()
		s.coalesced.Inc()
		select {
		case <-j.done:
			if j.Status == StatusDone {
				serveResult(w, j, "coalesced")
			} else {
				httpError(w, http.StatusInternalServerError, j.Err)
			}
		case <-r.Context().Done():
			httpError(w, http.StatusRequestTimeout, "client went away while coalesced on "+j.ID)
		}
		return
	}
	if s.draining {
		s.mu.Unlock()
		w.Header().Set("Retry-After", "5")
		httpError(w, http.StatusServiceUnavailable, "draining: not admitting new jobs")
		return
	}
	s.misses.Inc()
	j := s.newJobLocked(kind, hash)
	s.flight[hash] = j
	s.wg.Add(1)
	s.mu.Unlock()
	defer s.wg.Done()

	release, err := s.acquire(r.Context())
	if err != nil {
		if errors.Is(err, errSaturated) {
			s.rejected.Inc()
			s.settle(j, jobOutput{}, err)
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, "admission queue saturated; retry later")
			return
		}
		s.settle(j, jobOutput{}, err)
		httpError(w, http.StatusRequestTimeout, "cancelled while queued: "+err.Error())
		return
	}
	defer release()
	s.admitted.Inc()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.JobTimeout)
	defer cancel()
	out, err := s.execute(ctx, seed, fn)
	s.settle(j, out, err)
	switch {
	case err == nil:
		status := "miss"
		if out.uncacheable {
			status = "uncached"
		}
		serveResult(w, j, status)
	case errors.Is(err, context.DeadlineExceeded):
		httpError(w, http.StatusGatewayTimeout, "job exceeded the server-side timeout")
	case errors.Is(err, context.Canceled):
		httpError(w, http.StatusRequestTimeout, "job cancelled")
	default:
		httpError(w, http.StatusInternalServerError, err.Error())
	}
}

func serveResult(w http.ResponseWriter, j *Job, cacheStatus string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("X-Cache", cacheStatus)
	w.Header().Set("X-Job-Id", j.ID)
	w.Write(j.Body)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(map[string]any{"ok": !draining, "draining": draining})
}
