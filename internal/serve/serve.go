// Package serve is the long-lived simulation service behind cmd/ksasimd:
// it runs workload simulations, adversary (Algorithm 1) constructions,
// and streaming trace checks as managed jobs over HTTP.
//
// The job manager exploits the repository's central invariant: a
// deterministic-runtime execution is fully determined by (workload,
// parameters, seed). Every request is normalized to a canonical
// parameter set and hashed; repeats are served byte-identical from a
// bounded LRU result cache, and identical in-flight requests coalesce
// onto one execution (singleflight). Determinism makes these cache hits
// exact — the cached body is the body a fresh run would produce — not
// approximate. Net-runtime results are the exception: they depend on
// real goroutine scheduling against wall-clock budgets, so they are
// never cached (X-Cache: uncached), only coalesced while in flight.
//
// New work passes a bounded admission queue (HTTP 429 + Retry-After when
// saturated) onto a bounded worker pool; each job runs as a single-cell
// sweep (internal/sweep), which buys the daemon panic isolation — a
// panicking candidate fails one job, not the process — and the sweep.*
// metrics for free. Jobs carry a per-request context with a server-side
// timeout; a client that disconnects cancels its job. Shutdown is a
// graceful drain: stop admitting, finish the jobs already accepted,
// then let the caller flush its sinks.
//
// Endpoints:
//
//	POST /v1/run            workload simulation on either runtime
//	POST /v1/adversary      Algorithm 1 construction, β projection summary
//	POST /v1/check          upload a trace (binary ksatrace or JSONL, by
//	                        Content-Type), per-spec verdicts (streamed checking)
//	POST /v1/explore        violation-hunting schedule-space sweep with
//	                        delta-debugged minimized counterexamples
//	                        (internal/explore); the first finding's .ktr is
//	                        the job trace
//	POST /v1/corpus         differential conformance battery (both runtimes,
//	                        every registered candidate or a subset)
//	POST /v1/shards         one cell range of a sweep-shaped job — the worker
//	                        side of the distributed fabric (internal/fabric)
//	GET  /v1/cache/{hash}   fleet-shared result cache probe (content-addressed
//	PUT  /v1/cache/{hash}   by the canonical parameter hash); PUT replicates
//	                        a settled result into this daemon's cache
//	GET  /v1/jobs/{id}      job status and result
//	GET  /v1/jobs/{id}/trace  streaming trace download (binary ksatrace or
//	                          JSONL, by Accept)
//	GET  /metrics, /vars, /   observability views (internal/obs)
//	GET  /healthz           liveness (always 200 while the process serves)
//	GET  /readyz            readiness: 503 + Retry-After while draining or
//	                        queue-saturated
//
// With Config.FabricWorkers set the daemon is a cluster coordinator:
// sweep-shaped jobs (/v1/explore, /v1/corpus) are split into cell-range
// shards, fanned out to the worker daemons (internal/fabric: work-
// stealing, retry, readiness-aware backoff), and merged in grid order —
// byte-identical to a single-host run, because every cell's randomness
// derives positionally from the root seed.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"time"

	"nobroadcast/internal/fabric"
	"nobroadcast/internal/obs"
	"nobroadcast/internal/sweep"
	"nobroadcast/internal/trace"
)

// Config parameterizes the service.
type Config struct {
	// Workers bounds the jobs executing at once. Zero or negative means
	// runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds the jobs admitted but not yet executing; a request
	// arriving with the queue full is rejected with 429. Default 64.
	QueueDepth int
	// CacheEntries bounds the LRU result cache (completed jobs, including
	// their traces). Default 128.
	CacheEntries int
	// JobTimeout is the server-side ceiling on one job's execution.
	// Default 60s.
	JobTimeout time.Duration
	// MaxBodyBytes bounds an uploaded request body. Default 64 MiB (trace
	// uploads are line-streamed, never resident).
	MaxBodyBytes int64
	// Obs receives service metrics (serve.* counters and gauges) and is
	// threaded through to the runtimes. Nil constructs a fresh registry so
	// /metrics is always live.
	Obs *obs.Registry
	// Trace enables request-scoped tracing: every request gets a trace id
	// (the X-Trace-Id header, validated, or a generated one), an
	// http.request root span, and nested serve.queue / serve.job /
	// sweep.cell / serve.runtime spans, all emitted through the obs event
	// sink with trace/span/parent fields. Off by default; when off the
	// serving path does no trace work at all.
	Trace bool
	// Pprof mounts net/http/pprof under /debug/pprof/ and a Go runtime
	// metrics view at /debug/runtime. Off by default: the profile
	// endpoints can block for seconds and expose internals, so they are
	// strictly opt-in.
	Pprof bool
	// FabricWorkers lists worker daemons' base URLs. Non-empty switches
	// this server into coordinator mode: sweep-shaped jobs (/v1/explore,
	// /v1/corpus) are split into cell-range shards fanned out over the
	// fleet (internal/fabric) and merged byte-identical to a single-host
	// run, and the result cache becomes fleet-shared (peer-fill on miss,
	// push on completion). Other endpoints still execute locally.
	FabricWorkers []string
	// StealAge is how long a dispatched shard must run before an idle
	// worker may cancel-and-resplit it (coordinator mode). Zero selects
	// the fabric default (100ms); negative disables work-stealing.
	StealAge time.Duration
	// ShardLag injects artificial latency before each /v1/shards
	// execution on this daemon — a straggler fault injection hook for
	// exercising work-stealing in tests and smoke targets. Zero (the
	// default) means no injected lag.
	ShardLag time.Duration
}

func (c *Config) defaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 128
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 60 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.Obs == nil {
		c.Obs = obs.New()
	}
}

// Server is the HTTP service. Create with New; it implements
// http.Handler.
type Server struct {
	cfg Config
	reg *obs.Registry
	mux *http.ServeMux
	fab *fabric.Coordinator // non-nil in coordinator mode

	mu       sync.Mutex
	draining bool
	seq      int
	jobs     map[string]*Job // id -> job (running, cached, or recently failed)
	flight   map[string]*Job // param hash -> running job (singleflight)
	cache    *lru            // param hash -> completed job, bounded
	parked   []string        // uncacheable job ids (failed, cancelled, checks), FIFO-evicted

	admit chan struct{} // admission tickets: Workers+QueueDepth
	slots chan struct{} // execution slots: Workers
	wg    sync.WaitGroup

	hits, misses, coalesced    *obs.Counter
	admitted, rejected         *obs.Counter
	completed, failedC, cancel *obs.Counter
	checks, explores           *obs.Counter
	uncached, timeouts, panics *obs.Counter
	queueDepth, inflight       *obs.Gauge
	exploreRate                *obs.Histogram

	// Stage histograms (microseconds): where a request's time went.
	queueWaitUS, execUS, totalUS, decodeUS *obs.Histogram
}

// serveLatencyBuckets covers the serving path's range: sub-100µs cache
// hits up to the 60s default job timeout (values in microseconds).
var serveLatencyBuckets = []int64{
	10, 25, 50, 100, 250, 500,
	1000, 2500, 5000, 10000, 25000, 50000, 100000, 250000, 500000,
	1000000, 2500000, 5000000, 10000000, 30000000, 60000000,
}

// New builds the service.
func New(cfg Config) *Server {
	cfg.defaults()
	s := &Server{
		cfg:    cfg,
		reg:    cfg.Obs,
		jobs:   make(map[string]*Job),
		flight: make(map[string]*Job),
		admit:  make(chan struct{}, cfg.Workers+cfg.QueueDepth),
		slots:  make(chan struct{}, cfg.Workers),
	}
	s.cache = newLRU(cfg.CacheEntries, func(j *Job) { delete(s.jobs, j.ID) })
	s.hits = s.reg.Counter("serve.cache_hits")
	s.misses = s.reg.Counter("serve.cache_misses")
	s.coalesced = s.reg.Counter("serve.coalesced")
	s.admitted = s.reg.Counter("serve.jobs_admitted")
	s.rejected = s.reg.Counter("serve.jobs_rejected")
	s.completed = s.reg.Counter("serve.jobs_completed")
	s.failedC = s.reg.Counter("serve.jobs_failed")
	s.cancel = s.reg.Counter("serve.jobs_cancelled")
	s.checks = s.reg.Counter("serve.checks")
	s.explores = s.reg.Counter("serve.explores")
	s.exploreRate = s.reg.Histogram("serve.explore_sched_per_sec",
		10, 50, 100, 500, 1000, 5000, 10000, 50000, 100000, 500000)
	s.uncached = s.reg.Counter("serve.uncached")
	s.timeouts = s.reg.Counter("serve.timeouts")
	s.panics = s.reg.Counter("serve.panics")
	s.queueDepth = s.reg.Gauge("serve.queue_depth")
	s.inflight = s.reg.Gauge("serve.inflight")
	s.queueWaitUS = s.reg.Histogram("serve.queue_wait_us", serveLatencyBuckets...)
	s.execUS = s.reg.Histogram("serve.exec_us", serveLatencyBuckets...)
	s.totalUS = s.reg.Histogram("serve.total_us", serveLatencyBuckets...)
	s.decodeUS = s.reg.Histogram("serve.check_decode_us", serveLatencyBuckets...)

	if len(cfg.FabricWorkers) > 0 {
		// len > 0 satisfies fabric.New's only error condition.
		s.fab, _ = fabric.New(fabric.Config{
			Workers:  cfg.FabricWorkers,
			StealAge: cfg.StealAge,
			Obs:      s.reg,
		})
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/adversary", s.handleAdversary)
	mux.HandleFunc("POST /v1/check", s.handleCheck)
	mux.HandleFunc("POST /v1/explore", s.handleExplore)
	mux.HandleFunc("POST /v1/corpus", s.handleCorpus)
	mux.HandleFunc("POST /v1/shards", s.handleShard)
	mux.HandleFunc("GET /v1/cache/{hash}", s.handleCacheGet)
	mux.HandleFunc("PUT /v1/cache/{hash}", s.handleCachePut)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.Handle("GET /metrics", s.reg)
	mux.Handle("GET /vars", s.reg)
	mux.Handle("GET /{$}", s.reg)
	if cfg.Pprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		mux.HandleFunc("GET /debug/runtime", handleRuntimeMetrics)
	}
	s.mux = mux
	return s
}

// handleRuntimeMetrics serves a JSON snapshot of the Go runtime: the
// numbers a profiler reaches for before attaching pprof — goroutine
// count, heap occupancy, GC activity. Mounted only with Config.Pprof.
func handleRuntimeMetrics(w http.ResponseWriter, r *http.Request) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(map[string]any{
		"goroutines":        runtime.NumGoroutine(),
		"gomaxprocs":        runtime.GOMAXPROCS(0),
		"heap_alloc_bytes":  ms.HeapAlloc,
		"heap_objects":      ms.HeapObjects,
		"total_alloc_bytes": ms.TotalAlloc,
		"sys_bytes":         ms.Sys,
		"gc_runs":           ms.NumGC,
		"gc_pause_total_ns": ms.PauseTotalNs,
		"next_gc_bytes":     ms.NextGC,
	})
}

// Registry exposes the service's observability registry (for the daemon's
// -metrics summary at exit).
func (s *Server) Registry() *obs.Registry { return s.reg }

// ServeHTTP implements http.Handler. With Config.Trace set it is also
// the tracing middleware: the request's trace id comes from a valid
// X-Trace-Id header or is generated, an http.request root span wraps
// the handler, and the id is echoed back in the response's X-Trace-Id
// so clients can correlate. With tracing off this is exactly the old
// two-line dispatch — no ids, no spans, no allocations.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.cfg.MaxBodyBytes > 0 && r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	}
	if !s.cfg.Trace {
		s.mux.ServeHTTP(w, r)
		return
	}
	tid := r.Header.Get("X-Trace-Id")
	if !validTraceID(tid) {
		tid = obs.NewTraceID()
	}
	ctx := obs.ContextWithTrace(r.Context(), obs.TraceContext{TraceID: tid})
	sp, ctx := s.reg.StartSpanCtx(ctx, "http.request")
	w.Header().Set("X-Trace-Id", tid)
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	s.mux.ServeHTTP(sw, r.WithContext(ctx))
	d := sp.End()
	s.reg.Emit("serve.request",
		obs.Str("trace", tid), obs.Str("method", r.Method), obs.Str("path", r.URL.Path),
		obs.Int("status", int64(sw.code)), obs.Int("dur_us", d.Microseconds()))
}

// statusWriter captures the response status for the serve.request event.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// validTraceID bounds what the daemon accepts from the network as a
// trace id: 1–64 characters of [A-Za-z0-9._-]. Anything else — empty,
// oversized, or with characters that could corrupt a JSONL consumer's
// assumptions — is replaced by a generated id.
func validTraceID(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// StopAdmitting switches the server into drain mode: every subsequent
// request that would start work is answered 503; jobs already accepted
// keep running.
func (s *Server) StopAdmitting() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Drain stops admission and waits for every accepted job to settle, or
// for ctx. The SIGTERM half of "stop admitting, finish running jobs".
func (s *Server) Drain(ctx context.Context) error {
	s.StopAdmitting()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted: %w", ctx.Err())
	}
}

// errSaturated is the admission-queue-full rejection (HTTP 429).
var errSaturated = errors.New("serve: admission queue saturated")

// acquire claims an admission ticket (non-blocking; saturation is an
// immediate 429) and then an execution slot (blocking; the queued wait
// respects ctx). The returned release frees both.
func (s *Server) acquire(ctx context.Context) (release func(), err error) {
	select {
	case s.admit <- struct{}{}:
	default:
		return nil, errSaturated
	}
	s.queueDepth.Inc()
	waitStart := time.Now()
	select {
	case s.slots <- struct{}{}:
		// Queued → executing: the job leaves the queue the moment it
		// claims a slot, so queue_depth counts only waiting jobs and never
		// double-counts with serve.inflight.
		s.queueDepth.Dec()
		s.queueWaitUS.Observe(time.Since(waitStart).Microseconds())
	case <-ctx.Done():
		s.queueDepth.Dec()
		<-s.admit
		return nil, context.Cause(ctx)
	}
	s.inflight.Inc()
	return func() {
		s.inflight.Dec()
		<-s.slots
		<-s.admit
	}, nil
}

// jobOutput is what one executed job yields: the response body served to
// this and every future identical request, and the recorded trace behind
// GET /v1/jobs/{id}/trace. uncacheable marks results that are not pure
// functions of the request hash (the net runtime races real goroutines
// against wall-clock budgets) and must not be replayed from the cache.
type jobOutput struct {
	body        []byte
	tr          *trace.Trace
	uncacheable bool
}

// execute runs one job body as a single-cell sweep: a panic in a
// candidate implementation surfaces as a structured error on this job
// instead of tearing the daemon down.
func (s *Server) execute(ctx context.Context, seed uint64, fn func(ctx context.Context) (jobOutput, error)) (jobOutput, error) {
	out, err := sweep.Run(ctx, 1, sweep.Options{Workers: 1, Seed: seed, Obs: s.reg},
		func(ctx context.Context, _ sweep.Cell) (jobOutput, error) { return fn(ctx) })
	if err != nil {
		var es sweep.Errors
		if errors.As(err, &es) && len(es) > 0 {
			return jobOutput{}, es[0].Err
		}
		return jobOutput{}, err
	}
	return out[0], nil
}

// runManaged is the shared lifecycle of the cacheable endpoints: cache
// lookup, singleflight coalescing, admission, execution with per-job
// timeout, and result publication.
func (s *Server) runManaged(w http.ResponseWriter, r *http.Request, kind, hash string, seed uint64, fn func(ctx context.Context) (jobOutput, error)) {
	t0 := time.Now()
	defer func() { s.totalUS.Observe(time.Since(t0).Microseconds()) }()
	s.mu.Lock()
	if j := s.cache.get(hash); j != nil {
		s.mu.Unlock()
		s.hits.Inc()
		serveResult(w, j, "hit")
		return
	}
	if j := s.flight[hash]; j != nil {
		s.mu.Unlock()
		s.coalesced.Inc()
		select {
		case <-j.done:
			if j.Status == StatusDone {
				serveResult(w, j, "coalesced")
			} else {
				httpError(w, http.StatusInternalServerError, j.Err)
			}
		case <-r.Context().Done():
			httpError(w, http.StatusRequestTimeout, "client went away while coalesced on "+j.ID)
		}
		return
	}
	if s.draining {
		s.mu.Unlock()
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		httpError(w, http.StatusServiceUnavailable, "draining: not admitting new jobs")
		return
	}
	s.misses.Inc()
	j := s.newJobLocked(kind, hash)
	s.flight[hash] = j
	s.wg.Add(1)
	s.mu.Unlock()
	defer s.wg.Done()

	// Coordinator mode: before paying for an execution, ask the fleet.
	// Results are content-addressed by the canonical hash, so any
	// worker's cache entry IS the byte-exact answer. Only the expensive
	// sweep-shaped kinds are worth a network probe; identical concurrent
	// requests are already coalesced onto this flight slot.
	if s.fab != nil && fleetCached(kind) {
		if body, _, ok := s.fab.PeerFill(r.Context(), hash); ok {
			s.settle(j, jobOutput{body: body}, nil)
			serveResult(w, j, "peer")
			return
		}
	}

	qsp, _ := s.reg.StartSpanIfTraced(r.Context(), "serve.queue")
	release, err := s.acquire(r.Context())
	qsp.End()
	if err != nil {
		if errors.Is(err, errSaturated) {
			s.rejected.Inc()
			s.settle(j, jobOutput{}, err)
			w.Header().Set("Retry-After", s.retryAfterSeconds())
			httpError(w, http.StatusTooManyRequests, "admission queue saturated; retry later")
			return
		}
		s.settle(j, jobOutput{}, err)
		httpError(w, http.StatusRequestTimeout, "cancelled while queued: "+err.Error())
		return
	}
	defer release()
	s.admitted.Inc()

	jsp, jctx := s.reg.StartSpanIfTraced(r.Context(), "serve.job")
	ctx, cancel := context.WithTimeout(jctx, s.cfg.JobTimeout)
	defer cancel()
	execStart := time.Now()
	out, err := s.execute(ctx, seed, fn)
	s.execUS.Observe(time.Since(execStart).Microseconds())
	jsp.End()
	s.settle(j, out, err)
	switch {
	case err == nil:
		status := "miss"
		if out.uncacheable {
			status = "uncached"
			s.uncached.Inc()
		}
		if s.fab != nil && fleetCached(kind) && !out.uncacheable {
			// Replicate the settled result across the fleet so any worker
			// can serve this replay without a peer probe.
			s.fab.Push(hash, kind, out.body)
		}
		serveResult(w, j, status)
	case errors.Is(err, context.DeadlineExceeded):
		httpError(w, http.StatusGatewayTimeout, "job exceeded the server-side timeout")
	case errors.Is(err, context.Canceled):
		httpError(w, http.StatusRequestTimeout, "job cancelled")
	default:
		httpError(w, http.StatusInternalServerError, err.Error())
	}
}

// fleetCached marks the job kinds whose results travel through the
// fleet-shared cache (peer-fill on miss, push on completion): the
// sweep-shaped jobs whose execution cost dwarfs a cache probe. Cheap
// single-cell kinds stay local — a peer round-trip would often cost more
// than re-executing them.
func fleetCached(kind string) bool { return kind == "explore" || kind == "corpus" }

func serveResult(w http.ResponseWriter, j *Job, cacheStatus string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("X-Cache", cacheStatus)
	w.Header().Set("X-Job-Id", j.ID)
	w.Write(j.Body)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// handleHealth is pure liveness: the process is up and serving HTTP.
// Always 200 — a draining daemon is still alive (kubernetes would
// restart a liveness-failing pod mid-drain, which is exactly wrong).
// Routing decisions belong to /readyz.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	json.NewEncoder(w).Encode(map[string]any{"ok": true, "draining": draining})
}

// handleReady is readiness: 503 while draining or with the admission
// queue saturated, so a coordinator (or load balancer) stops dispatching
// to this worker instead of eating per-request 429/503s. The Retry-After
// estimate tells the caller when capacity should free up.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	saturated := len(s.admit) >= cap(s.admit)
	ready := !draining && !saturated
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if !ready {
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(map[string]any{
		"ready":           ready,
		"draining":        draining,
		"queue_saturated": saturated,
		"queue_depth":     s.queueDepth.Value(),
		"inflight":        s.inflight.Value(),
	})
}

// retryAfterSeconds estimates when admission capacity frees up: the jobs
// ahead (queued + executing + this one) spread over the worker pool,
// times the observed mean execution time. Before any job has completed
// the estimate uses a 10ms prior; the result is clamped to [1, 60]s.
// Serving a measured figure instead of a constant lets the fabric
// coordinator's backoff track the worker's actual load.
func (s *Server) retryAfterSeconds() string {
	meanUS := 10_000.0
	if snap := s.execUS.Snapshot(); snap.Count > 0 {
		meanUS = float64(snap.Sum) / float64(snap.Count)
	}
	ahead := float64(s.queueDepth.Value()+s.inflight.Value()) + 1
	secs := int64(math.Ceil(ahead * meanUS / float64(s.cfg.Workers) / 1e6))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return strconv.FormatInt(secs, 10)
}
