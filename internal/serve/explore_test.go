package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"nobroadcast/internal/explore"
	"nobroadcast/internal/spec"
	"nobroadcast/internal/trace"
)

// TestExploreEndpoint: POST /v1/explore hunts the seeded-fault target
// (send-to-all cannot solve k-SA for k<n), returns minimized findings,
// caches the result byte-identically, and serves the first finding's
// minimized counterexample as the job trace.
func TestExploreEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := `{"candidate":"send-to-all","n":3,"k":1,"strategy":"random","schedules":12,"seed":42,"minimize":1}`

	r1, b1 := postJSON(t, ts.URL+"/v1/explore", req)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("explore: status %d, body %s", r1.StatusCode, b1)
	}
	var res explore.Result
	if err := json.Unmarshal(b1, &res); err != nil {
		t.Fatalf("result document: %v", err)
	}
	if res.Violations == 0 || len(res.Findings) == 0 {
		t.Fatalf("no violations found: %s", b1)
	}
	f := res.Findings[0]
	if f.Property != "k-SA-Agreement" || f.MinLen == 0 || len(f.KTR) == 0 {
		t.Fatalf("finding not minimized: %+v", f)
	}

	// Determinism makes the repeat an exact cache hit.
	r2, b2 := postJSON(t, ts.URL+"/v1/explore", req)
	if got := r2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("second explore X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("cached explore body differs")
	}

	// The job trace is the minimized .ktr counterexample.
	jobID := r1.Header.Get("X-Job-Id")
	httpReq, err := http.NewRequest("GET", ts.URL+"/v1/jobs/"+jobID+"/trace", nil)
	if err != nil {
		t.Fatal(err)
	}
	httpReq.Header.Set("Accept", trace.ContentTypeBinary)
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace download: status %d", resp.StatusCode)
	}
	tr, err := trace.DecodeBinary(resp.Body)
	if err != nil {
		t.Fatalf("downloaded trace: %v", err)
	}
	if tr.X.Len() != f.MinSteps {
		t.Fatalf("downloaded %d steps, finding says %d", tr.X.Len(), f.MinSteps)
	}
	if v := spec.KSA(1).Check(tr); v == nil || v.Property != f.Property {
		t.Fatalf("downloaded counterexample does not re-check: %v", v)
	}
}

// TestExploreValidationHTTP: malformed explorations are 400s, before any
// work is admitted.
func TestExploreValidationHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	bad := []string{
		`{"candidate":"no-such"}`,
		`{"candidate":"kbo","n":200}`,
		`{"candidate":"kbo","k":9}`,
		`{"candidate":"kbo","strategy":"zigzag"}`,
		`{"candidate":"kbo","schedules":1000000}`,
		`{"candidate":"kbo","schedules":65536,"max_events":100000}`,
		`{"candidate":"kbo","crashes":4}`,
		`{"candidate":"kbo","minimize":99}`,
	}
	for _, body := range bad {
		resp, b := postJSON(t, ts.URL+"/v1/explore", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", body, resp.StatusCode, b)
		}
	}
}
