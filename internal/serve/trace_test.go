package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"

	"nobroadcast/internal/obs"
)

// syncWriter lets the test read the event log while the daemon
// goroutines are still writing.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) Lines() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	s := strings.TrimSpace(w.buf.String())
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// spanEvent is the JSONL shape of one emitted span.
type spanEvent struct {
	Event  string `json:"event"`
	Name   string `json:"name"`
	Trace  string `json:"trace"`
	Span   uint64 `json:"span"`
	Parent uint64 `json:"parent"`
}

func spanEvents(t *testing.T, w *syncWriter) map[string]spanEvent {
	t.Helper()
	out := map[string]spanEvent{}
	for _, line := range w.Lines() {
		var ev spanEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		if ev.Event == "span" {
			out[ev.Name] = ev
		}
	}
	return out
}

// TestTraceSpanTree is the acceptance criterion: a single traced request
// yields a connected span tree — http.request → {serve.queue, serve.job
// → sweep.wall → sweep.cell → serve.runtime} — in the JSONL event
// stream, every span sharing the trace id the client supplied in
// X-Trace-Id.
func TestTraceSpanTree(t *testing.T) {
	events := &syncWriter{}
	reg := obs.New()
	reg.AttachEvents(obs.NewEventLog(events))
	_, ts := newTestServer(t, Config{Workers: 2, Obs: reg, Trace: true})

	req, err := http.NewRequest("POST", ts.URL+"/v1/run",
		strings.NewReader(`{"candidate":"fifo","n":3}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Trace-Id", "client-trace-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != "client-trace-1" {
		t.Fatalf("response X-Trace-Id = %q, want the client's id echoed", got)
	}

	spans := spanEvents(t, events)
	want := []string{"http.request", "serve.queue", "serve.job", "sweep.wall", "sweep.cell", "serve.runtime"}
	for _, name := range want {
		ev, ok := spans[name]
		if !ok {
			t.Fatalf("span %q missing; have %v", name, spans)
		}
		if ev.Trace != "client-trace-1" {
			t.Errorf("span %q trace = %q, want client-trace-1", name, ev.Trace)
		}
	}
	// Connectivity: the parent chain walks back to the http.request root.
	edges := map[string]string{
		"serve.queue":   "http.request",
		"serve.job":     "http.request",
		"sweep.wall":    "serve.job",
		"sweep.cell":    "sweep.wall",
		"serve.runtime": "sweep.cell",
	}
	for child, parent := range edges {
		if spans[child].Parent != spans[parent].Span {
			t.Errorf("%s.parent = %d, want %s.span = %d",
				child, spans[child].Parent, parent, spans[parent].Span)
		}
	}
	if spans["http.request"].Parent != 0 {
		t.Errorf("http.request parent = %d, want 0 (root)", spans["http.request"].Parent)
	}

	// The serve.request event carries the verdict fields for the same trace.
	var reqEvents int
	for _, line := range events.Lines() {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad line %q: %v", line, err)
		}
		if m["event"] == "serve.request" {
			reqEvents++
			if m["trace"] != "client-trace-1" || m["status"] != float64(200) || m["path"] != "/v1/run" {
				t.Errorf("serve.request fields wrong: %v", m)
			}
		}
	}
	if reqEvents != 1 {
		t.Errorf("serve.request events = %d, want 1", reqEvents)
	}
}

// TestTraceIDGenerated: a traced request without (or with an invalid)
// X-Trace-Id gets a server-generated id, echoed on the response.
func TestTraceIDGenerated(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Trace: true})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	got := resp.Header.Get("X-Trace-Id")
	if len(got) != 16 || !validTraceID(got) {
		t.Fatalf("generated X-Trace-Id = %q, want 16 valid chars", got)
	}

	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Trace-Id", "bad id with spaces!")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	echoed := resp2.Header.Get("X-Trace-Id")
	if echoed == "" || strings.Contains(echoed, " ") || len(echoed) != 16 {
		t.Fatalf("invalid client id not replaced: %q", echoed)
	}
}

// TestTraceDisabledByDefault: without Config.Trace there is no trace id
// on responses and no span events beyond the untraced sweep.wall.
func TestTraceDisabledByDefault(t *testing.T) {
	events := &syncWriter{}
	reg := obs.New()
	reg.AttachEvents(obs.NewEventLog(events))
	_, ts := newTestServer(t, Config{Workers: 1, Obs: reg})
	resp, _ := postJSON(t, ts.URL+"/v1/run", `{"candidate":"fifo","n":3}`)
	if got := resp.Header.Get("X-Trace-Id"); got != "" {
		t.Fatalf("untraced response carries X-Trace-Id %q", got)
	}
	for _, line := range events.Lines() {
		if strings.Contains(line, `"trace"`) {
			t.Fatalf("untraced run emitted a trace-linked event: %s", line)
		}
		if strings.Contains(line, "serve.request") || strings.Contains(line, "sweep.cell") {
			t.Fatalf("untraced run emitted tracing-only event: %s", line)
		}
	}
}

func TestValidTraceID(t *testing.T) {
	for id, want := range map[string]bool{
		"abc":                   true,
		"A-b_c.9":               true,
		strings.Repeat("x", 64): true,
		"":                      false,
		strings.Repeat("x", 65): false,
		"has space":             false,
		"new\nline":             false,
		"uni¢ode":               false,
	} {
		if got := validTraceID(id); got != want {
			t.Errorf("validTraceID(%q) = %v, want %v", id, got, want)
		}
	}
}

// TestStageHistograms: one served run populates the queue-wait, exec,
// and total stage histograms; a check populates the decode histogram.
func TestStageHistograms(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	if resp, body := postJSON(t, ts.URL+"/v1/run", `{"candidate":"fifo","n":3}`); resp.StatusCode != 200 {
		t.Fatalf("run failed: %d %s", resp.StatusCode, body)
	}
	for name, h := range map[string]*obs.Histogram{
		"serve.queue_wait_us": s.queueWaitUS,
		"serve.exec_us":       s.execUS,
		"serve.total_us":      s.totalUS,
	} {
		if snap := h.Snapshot(); snap.Count == 0 {
			t.Errorf("%s unobserved after a run", name)
		}
	}
	if snap := s.decodeUS.Snapshot(); snap.Count != 0 {
		t.Errorf("decode histogram observed %d before any check", snap.Count)
	}
	if resp, body := postJSON(t, ts.URL+"/v1/check?spec=fifo&k=2", string(sampleJSONL(t))); resp.StatusCode != 200 {
		t.Fatalf("check failed: %d %s", resp.StatusCode, body)
	}
	if snap := s.decodeUS.Snapshot(); snap.Count != 1 {
		t.Errorf("serve.check_decode_us count = %d, want 1", snap.Count)
	}
	// A cache hit still lands in total_us (the serving path covers hits).
	before := s.totalUS.Snapshot().Count
	postJSON(t, ts.URL+"/v1/run", `{"candidate":"fifo","n":3}`)
	if after := s.totalUS.Snapshot().Count; after != before+1 {
		t.Errorf("total_us count = %d after hit, want %d", after, before+1)
	}
}

// TestPprofOptIn: the profiling and runtime endpoints exist only with
// Config.Pprof.
func TestPprofOptIn(t *testing.T) {
	_, off := newTestServer(t, Config{Workers: 1})
	for _, path := range []string{"/debug/pprof/", "/debug/runtime"} {
		resp, err := http.Get(off.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("pprof off: GET %s = %d, want 404", path, resp.StatusCode)
		}
	}

	_, on := newTestServer(t, Config{Workers: 1, Pprof: true})
	resp, err := http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof on: GET /debug/pprof/ = %d, want 200", resp.StatusCode)
	}
	rresp, err := http.Get(on.URL + "/debug/runtime")
	if err != nil {
		t.Fatal(err)
	}
	var rt map[string]any
	err = json.NewDecoder(rresp.Body).Decode(&rt)
	rresp.Body.Close()
	if err != nil {
		t.Fatalf("/debug/runtime not JSON: %v", err)
	}
	for _, key := range []string{"goroutines", "heap_alloc_bytes", "gc_runs"} {
		if _, ok := rt[key]; !ok {
			t.Errorf("/debug/runtime missing %q: %v", key, rt)
		}
	}
	if rt["goroutines"].(float64) < 1 {
		t.Errorf("goroutines = %v, want >= 1", rt["goroutines"])
	}
}

// TestOutcomeCounters: the new per-outcome counters move — uncached on a
// net-runtime result, panics on a panicking job.
func TestOutcomeCounters(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	resp, body := postJSON(t, ts.URL+"/v1/run",
		`{"candidate":"fifo","runtime":"net","n":3,"workload":{"messages":3}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("net run failed: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != "uncached" {
		t.Fatalf("net run X-Cache = %q, want uncached", got)
	}
	if got := s.uncached.Value(); got != 1 {
		t.Errorf("serve.uncached = %d, want 1", got)
	}
	if got := s.timeouts.Value(); got != 0 {
		t.Errorf("serve.timeouts = %d, want 0", got)
	}
}
