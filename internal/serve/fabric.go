package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"nobroadcast/internal/explore"
	"nobroadcast/internal/fabric"
	"nobroadcast/internal/trace"
)

// This file is the serving side of the distributed sweep fabric
// (internal/fabric): the worker endpoints every daemon exposes —
// POST /v1/shards executes one cell range of a sweep-shaped job,
// GET/PUT /v1/cache/{hash} expose the result cache to the fleet — and
// the coordinator-side execution paths that fan a job out and merge the
// partials byte-identical to a single-host run.

// shardKey is the canonical cache identity of one shard: the normalized
// embedded request plus the cell range. Two daemons hashing the same
// range of the same job agree on the key, so shard results replay from
// any worker's cache.
type shardKey struct {
	Lo  int `json:"lo"`
	Hi  int `json:"hi"`
	Req any `json:"req"`
}

// handleShard serves POST /v1/shards: one cell range [lo, hi) of an
// embedded explore or corpus request, run through the same managed-job
// lifecycle as every endpoint (admission, caching, panic isolation,
// tracing). Determinism makes the response a pure function of the
// envelope, which is what lets the coordinator retry or re-split a
// shard on any worker without coordination.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	var env fabric.ShardEnvelope
	if err := json.NewDecoder(r.Body).Decode(&env); err != nil {
		httpError(w, http.StatusBadRequest, "bad shard envelope: "+err.Error())
		return
	}
	var (
		cells int
		seed  uint64
		key   any
		fn    func(ctx context.Context) (jobOutput, error)
	)
	switch env.Kind {
	case "explore":
		var q ExploreRequest
		if err := json.Unmarshal(env.Req, &q); err != nil {
			httpError(w, http.StatusBadRequest, "bad explore shard request: "+err.Error())
			return
		}
		if err := q.normalize(); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		cells, seed, key = q.Schedules, q.Seed, &q
		lo, hi := env.Lo, env.Hi
		fn = func(ctx context.Context) (jobOutput, error) {
			return s.executeExploreShard(ctx, &q, lo, hi)
		}
	case "corpus":
		var q CorpusRequest
		if err := json.Unmarshal(env.Req, &q); err != nil {
			httpError(w, http.StatusBadRequest, "bad corpus shard request: "+err.Error())
			return
		}
		if err := q.normalize(); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		cfgs := corpusConfigs(&q)
		cells, seed, key = len(cfgs), q.Seed, &q
		lo, hi := env.Lo, env.Hi
		fn = func(ctx context.Context) (jobOutput, error) {
			return s.executeCorpusShard(ctx, cfgs, lo, hi)
		}
	default:
		httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown shard kind %q", env.Kind))
		return
	}
	if env.Lo < 0 || env.Hi > cells || env.Lo >= env.Hi {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("shard range [%d,%d) outside the job's cells [0,%d)", env.Lo, env.Hi, cells))
		return
	}
	hash := canonicalHash("shard."+env.Kind, &shardKey{Lo: env.Lo, Hi: env.Hi, Req: key})
	s.runManaged(w, r, "shard", hash, seed, fn)
}

// lagShard injects the configured straggler latency (Config.ShardLag)
// before a shard executes; the test hook behind `-shard-lag`.
func (s *Server) lagShard(ctx context.Context) error {
	if s.cfg.ShardLag <= 0 {
		return nil
	}
	t := time.NewTimer(s.cfg.ShardLag)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

// executeExploreShard scans one cell range of an exploration. The body
// is the explore.Shard document the coordinator merges.
func (s *Server) executeExploreShard(ctx context.Context, q *ExploreRequest, lo, hi int) (jobOutput, error) {
	if err := s.lagShard(ctx); err != nil {
		return jobOutput{}, err
	}
	sh, err := explore.Scan(ctx, s.exploreOptions(q), lo, hi)
	if err != nil {
		return jobOutput{}, err
	}
	return encodeBody(sh, nil)
}

// executeExploreFabric is the coordinator path of POST /v1/explore: fan
// the schedule range out over the fleet and merge the shards. Merge
// reconstructs exactly the Result a local explore.Run would have built —
// same bytes, same cache identity — so clients cannot tell (except by
// speed) whether a daemon is a coordinator.
func (s *Server) executeExploreFabric(ctx context.Context, q *ExploreRequest) (jobOutput, error) {
	s.explores.Inc()
	start := time.Now()
	req, err := json.Marshal(q)
	if err != nil {
		return jobOutput{}, err
	}
	parts, err := s.fab.Run(ctx, "explore", req, q.Schedules)
	if err != nil {
		return jobOutput{}, err
	}
	shards := make([]*explore.Shard, len(parts))
	for i, p := range parts {
		sh := new(explore.Shard)
		if err := json.Unmarshal(p.Body, sh); err != nil {
			return jobOutput{}, fmt.Errorf("serve: shard [%d,%d) body does not decode: %w", p.Lo, p.Hi, err)
		}
		shards[i] = sh
	}
	res, err := explore.Merge(s.exploreOptions(q), shards)
	if err != nil {
		return jobOutput{}, err
	}
	if secs := time.Since(start).Seconds(); secs > 0 {
		s.exploreRate.Observe(int64(float64(res.Schedules) / secs))
	}
	var tr *trace.Trace
	if len(res.Findings) > 0 && len(res.Findings[0].KTR) > 0 {
		if tr, err = trace.DecodeBinary(bytes.NewReader(res.Findings[0].KTR)); err != nil {
			return jobOutput{}, fmt.Errorf("serve: minimized trace does not decode: %w", err)
		}
	}
	return encodeBody(res, tr)
}

// handleCacheGet serves GET /v1/cache/{hash}: the fleet-shared face of
// the result cache. 200 with the cached body and its job kind on a hit,
// 404 on a miss. Only completed cacheable results live here, so the
// bytes are exact replays by the determinism argument.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if !validHash(hash) {
		httpError(w, http.StatusBadRequest, "malformed hash")
		return
	}
	s.mu.Lock()
	j := s.cache.get(hash)
	s.mu.Unlock()
	if j == nil {
		httpError(w, http.StatusNotFound, "not cached here")
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("X-Job-Kind", j.Kind)
	w.Header().Set("X-Job-Id", j.ID)
	w.Write(j.Body)
}

// handleCachePut serves PUT /v1/cache/{hash}: a peer (the coordinator,
// after merging a fleet job) replicates a settled result into this
// daemon's cache. The entry is inserted as an already-settled job, so
// subsequent identical requests and GET /v1/cache probes hit. First
// write wins — by determinism a second body under the same hash is the
// same bytes.
func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if !validHash(hash) {
		httpError(w, http.StatusBadRequest, "malformed hash")
		return
	}
	kind := r.Header.Get("X-Job-Kind")
	if !fleetCached(kind) {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("kind %q is not fleet-cached", kind))
		return
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(r.Body); err != nil {
		httpError(w, http.StatusBadRequest, "short body: "+err.Error())
		return
	}
	s.mu.Lock()
	if s.cache.get(hash) != nil || s.flight[hash] != nil {
		s.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
		return
	}
	j := s.newJobLocked(kind, hash)
	j.Status = StatusDone
	j.Body = body.Bytes()
	close(j.done)
	s.cache.put(hash, j)
	s.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// validHash bounds what the cache endpoints accept as a parameter hash:
// exactly the 32 lowercase hex digits canonicalHash produces.
func validHash(h string) bool {
	if len(h) != 32 {
		return false
	}
	for i := 0; i < len(h); i++ {
		c := h[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
