package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"nobroadcast/internal/explore"
	"nobroadcast/internal/trace"
)

// newFleet builds nworkers single-pool worker daemons plus a coordinator
// daemon fanning out to them, all in-process. workerCfg customizes one
// worker (nil means Workers: 1).
func newFleet(t *testing.T, nworkers int, workerCfg func(i int) Config, coordCfg Config) (*Server, *httptest.Server) {
	t.Helper()
	urls := make([]string, nworkers)
	for i := range urls {
		cfg := Config{Workers: 1}
		if workerCfg != nil {
			cfg = workerCfg(i)
		}
		_, wts := newTestServer(t, cfg)
		urls[i] = wts.URL
	}
	coordCfg.FabricWorkers = urls
	if coordCfg.Workers == 0 {
		coordCfg.Workers = 1
	}
	return newTestServer(t, coordCfg)
}

// fetchKTR downloads the response's job trace in binary wire format.
func fetchKTR(t *testing.T, base string, resp *http.Response) []byte {
	t.Helper()
	id := resp.Header.Get("X-Job-Id")
	if id == "" {
		t.Fatal("response carries no X-Job-Id")
	}
	req, err := http.NewRequest("GET", base+"/v1/jobs/"+id+"/trace", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", trace.ContentTypeBinary)
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET trace: %v", err)
	}
	b, err := io.ReadAll(r.Body)
	r.Body.Close()
	if err != nil || r.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: status %d, err %v", r.StatusCode, err)
	}
	return b
}

// The byte-identity workload: a violation-rich exploration small enough
// to run four times in a test, with minimization on so the merged
// first-finding .ktr bytes are part of the comparison.
const fabricExploreReq = `{"candidate":"kbo","n":4,"k":2,"strategy":"random","schedules":24,"seed":1,"minimize":1}`

// TestFabricExploreByteIdentical is the tentpole acceptance criterion
// for /v1/explore: the merged body of a sharded exploration — and the
// minimized counterexample trace behind it — is byte-identical to the
// single-host run at every fleet width.
func TestFabricExploreByteIdentical(t *testing.T) {
	_, single := newTestServer(t, Config{Workers: 1})
	resp, want := postJSON(t, single.URL+"/v1/explore", fabricExploreReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single-host explore: status %d (%s)", resp.StatusCode, want)
	}
	var doc explore.Result
	if err := json.Unmarshal(want, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Violations == 0 || len(doc.Findings) == 0 {
		t.Fatalf("workload found no violations (violations=%d findings=%d); byte-identity would be vacuous",
			doc.Violations, len(doc.Findings))
	}
	wantKTR := fetchKTR(t, single.URL, resp)

	for _, n := range []int{1, 2, 4} {
		s, coord := newFleet(t, n, nil, Config{})
		r, got := postJSON(t, coord.URL+"/v1/explore", fabricExploreReq)
		if r.StatusCode != http.StatusOK {
			t.Fatalf("%d-worker explore: status %d (%s)", n, r.StatusCode, got)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%d-worker explore body differs from single-host:\n want: %s\n  got: %s", n, want, got)
		}
		if gotKTR := fetchKTR(t, coord.URL, r); !bytes.Equal(gotKTR, wantKTR) {
			t.Fatalf("%d-worker minimized .ktr differs from single-host (%d vs %d bytes)", n, len(gotKTR), len(wantKTR))
		}
		if shards := s.reg.Counter("fabric.shards").Value(); shards < int64(n) {
			t.Errorf("%d-worker explore dispatched %d shards, want >= %d", n, shards, n)
		}
	}
}

// TestFabricCorpusByteIdentical: the conformance battery sharded over
// 1/2/4 workers merges to the exact single-host document.
func TestFabricCorpusByteIdentical(t *testing.T) {
	_, single := newTestServer(t, Config{Workers: 1})
	resp, want := postJSON(t, single.URL+"/v1/corpus", `{"seed":7}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single-host corpus: status %d (%s)", resp.StatusCode, want)
	}
	var doc CorpusResponse
	if err := json.Unmarshal(want, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Cells == 0 || len(doc.Rows) != doc.Cells {
		t.Fatalf("corpus document malformed: cells=%d rows=%d", doc.Cells, len(doc.Rows))
	}
	for _, n := range []int{1, 2, 4} {
		_, coord := newFleet(t, n, nil, Config{})
		r, got := postJSON(t, coord.URL+"/v1/corpus", `{"seed":7}`)
		if r.StatusCode != http.StatusOK {
			t.Fatalf("%d-worker corpus: status %d (%s)", n, r.StatusCode, got)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%d-worker corpus body differs from single-host:\n want: %s\n  got: %s", n, want, got)
		}
	}
}

// TestFabricRetryRecoversKilledShard: one worker's connection is severed
// mid-shard (hijack + close, no response); the coordinator retries the
// range — idempotent by determinism — and the merged body is still
// byte-identical to single-host.
func TestFabricRetryRecoversKilledShard(t *testing.T) {
	_, single := newTestServer(t, Config{Workers: 1})
	resp, want := postJSON(t, single.URL+"/v1/corpus", `{"seed":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single-host corpus: status %d", resp.StatusCode)
	}

	_, healthy := newTestServer(t, Config{Workers: 1})
	_, victim := newTestServer(t, Config{Workers: 1})
	var killed atomic.Bool
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/shards" && killed.CompareAndSwap(false, true) {
			conn, _, err := w.(http.Hijacker).Hijack()
			if err != nil {
				t.Errorf("hijack: %v", err)
				return
			}
			conn.Close() // worker death mid-shard, as seen by the coordinator
			return
		}
		req, err := http.NewRequest(r.Method, victim.URL+r.URL.Path, r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		req.Header = r.Header.Clone()
		fwd, err := http.DefaultClient.Do(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer fwd.Body.Close()
		for k, vs := range fwd.Header {
			w.Header()[k] = vs
		}
		w.WriteHeader(fwd.StatusCode)
		io.Copy(w, fwd.Body)
	}))
	t.Cleanup(proxy.Close)

	s, coord := newTestServer(t, Config{Workers: 1, FabricWorkers: []string{healthy.URL, proxy.URL}})
	r, got := postJSON(t, coord.URL+"/v1/corpus", `{"seed":3}`)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("fleet corpus after shard kill: status %d (%s)", r.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("merged body after shard kill differs from single-host:\n want: %s\n  got: %s", want, got)
	}
	if !killed.Load() {
		t.Fatal("kill hook never fired; test exercised nothing")
	}
	if retries := s.reg.Counter("fabric.retries").Value(); retries == 0 {
		t.Error("fabric.retries = 0, want > 0 after a severed shard")
	}
	if fails := s.reg.Counter("fabric.worker_fail").Value(); fails == 0 {
		t.Error("fabric.worker_fail = 0, want > 0 after a severed shard")
	}
}

// TestFabricSmoke is the cluster smoke: an in-process coordinator with
// two workers, one an injected straggler, runs one sweep job — the
// merged body must be byte-identical to single-host and work-stealing
// must demonstrably engage. `make fabric-smoke` runs exactly this.
func TestFabricSmoke(t *testing.T) {
	_, single := newTestServer(t, Config{Workers: 1})
	resp, want := postJSON(t, single.URL+"/v1/corpus", `{"seed":11}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single-host corpus: status %d", resp.StatusCode)
	}
	workerCfg := func(i int) Config {
		cfg := Config{Workers: 1}
		if i == 0 {
			cfg.ShardLag = 250 * time.Millisecond // the straggler
		}
		return cfg
	}
	s, coord := newFleet(t, 2, workerCfg, Config{StealAge: 30 * time.Millisecond})
	r, got := postJSON(t, coord.URL+"/v1/corpus", `{"seed":11}`)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("fleet corpus: status %d (%s)", r.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("fleet corpus body differs from single-host:\n want: %s\n  got: %s", want, got)
	}
	steals := s.reg.Counter("fabric.steals").Value()
	if steals == 0 {
		t.Error("fabric.steals = 0, want > 0 with an injected straggler")
	}
	t.Logf("fabric-smoke: shards=%d steals=%d retries=%d",
		s.reg.Counter("fabric.shards").Value(), steals, s.reg.Counter("fabric.retries").Value())
}

// TestFleetCacheEndpoints: the GET/PUT /v1/cache surface — validation,
// round trip, and the replicated entry serving a real job as a cache hit
// under the canonical parameter hash.
func TestFleetCacheEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	put := func(hash, kind string, body []byte) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/cache/"+hash, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if kind != "" {
			req.Header.Set("X-Job-Kind", kind)
		}
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		return r
	}
	q := ExploreRequest{Candidate: "fifo"}
	if err := q.normalize(); err != nil {
		t.Fatal(err)
	}
	hash := canonicalHash("explore", &q)

	if r := put("not-a-hash", "explore", nil); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("PUT malformed hash: status %d, want 400", r.StatusCode)
	}
	if r := put(hash, "run", []byte("{}")); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("PUT non-fleet kind: status %d, want 400", r.StatusCode)
	}
	if r, err := http.Get(ts.URL + "/v1/cache/" + hash); err != nil || r.StatusCode != http.StatusNotFound {
		t.Fatalf("GET before PUT: status %d err %v, want 404", r.StatusCode, err)
	}

	body := []byte(`{"pushed":true}` + "\n")
	if r := put(hash, "explore", body); r.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT: status %d, want 204", r.StatusCode)
	}
	r, err := http.Get(ts.URL + "/v1/cache/" + hash)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK || !bytes.Equal(got, body) {
		t.Fatalf("GET after PUT: status %d body %q, want the pushed bytes", r.StatusCode, got)
	}
	if kind := r.Header.Get("X-Job-Kind"); kind != "explore" {
		t.Fatalf("GET X-Job-Kind = %q, want explore", kind)
	}

	// The replicated entry IS the job's cache identity: an equivalent
	// /v1/explore request replays it as a hit without executing.
	jr, jb := postJSON(t, ts.URL+"/v1/explore", `{"candidate":"fifo"}`)
	if jr.StatusCode != http.StatusOK || jr.Header.Get("X-Cache") != "hit" {
		t.Fatalf("explore after cache PUT: status %d X-Cache %q, want 200 hit", jr.StatusCode, jr.Header.Get("X-Cache"))
	}
	if !bytes.Equal(jb, body) {
		t.Fatalf("explore served %q, want the replicated bytes %q", jb, body)
	}
}

// TestFabricPeerFill: a result already settled on a worker is served by
// the coordinator via peer-fill (X-Cache: peer), never re-executed.
func TestFabricPeerFill(t *testing.T) {
	_, wts := newTestServer(t, Config{Workers: 1})
	q := ExploreRequest{Candidate: "fifo"}
	if err := q.normalize(); err != nil {
		t.Fatal(err)
	}
	hash := canonicalHash("explore", &q)
	body := []byte(`{"peer":"filled"}` + "\n")
	req, err := http.NewRequest(http.MethodPut, wts.URL+"/v1/cache/"+hash, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Job-Kind", "explore")
	if r, err := http.DefaultClient.Do(req); err != nil || r.StatusCode != http.StatusNoContent {
		t.Fatalf("seeding worker cache: status %d err %v", r.StatusCode, err)
	}

	s, coord := newTestServer(t, Config{Workers: 1, FabricWorkers: []string{wts.URL}})
	r, got := postJSON(t, coord.URL+"/v1/explore", `{"candidate":"fifo"}`)
	if r.StatusCode != http.StatusOK || r.Header.Get("X-Cache") != "peer" {
		t.Fatalf("explore via peer-fill: status %d X-Cache %q, want 200 peer", r.StatusCode, r.Header.Get("X-Cache"))
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("peer-filled body %q, want %q", got, body)
	}
	if hits := s.reg.Counter("fabric.peer_hits").Value(); hits != 1 {
		t.Errorf("fabric.peer_hits = %d, want 1", hits)
	}
}

// TestRetryAfterFromLoad: the 429/503 Retry-After figure follows the
// measured mean execution time and is clamped to [1, 60] seconds.
func TestRetryAfterFromLoad(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 1})
	if got := s.retryAfterSeconds(); got != "1" {
		t.Errorf("cold retryAfterSeconds = %q, want 1 (10ms prior, clamped up)", got)
	}
	s.execUS.Observe(5_000_000) // one 5s job observed
	if got := s.retryAfterSeconds(); got != "5" {
		t.Errorf("retryAfterSeconds after a 5s mean = %q, want 5", got)
	}
	s.execUS.Observe(500_000_000) // absurd mean clamps at the ceiling
	if got := s.retryAfterSeconds(); got != "60" {
		t.Errorf("retryAfterSeconds with a 252s mean = %q, want 60", got)
	}
}

// TestReadyzSaturation: /readyz flips to 503 while the admission queue
// is full and recovers when tickets free up.
func TestReadyzSaturation(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	r, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("fresh readyz status = %d, want 200", r.StatusCode)
	}
	for i := 0; i < cap(s.admit); i++ {
		s.admit <- struct{}{}
	}
	r, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated readyz status = %d, want 503", r.StatusCode)
	}
	if r.Header.Get("Retry-After") == "" {
		t.Fatal("saturated readyz has no Retry-After")
	}
	for i := 0; i < cap(s.admit); i++ {
		<-s.admit
	}
	r, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("recovered readyz status = %d, want 200", r.StatusCode)
	}
}
