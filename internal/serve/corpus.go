package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/conformance"
)

// CorpusRequest is the body of POST /v1/corpus: the standard
// differential conformance battery (internal/conformance.Corpus) — every
// registered candidate crossed with the standard (N, K, workload)
// points — optionally filtered to a candidate subset. The grid and its
// per-cell seeds are a pure function of Seed, and filtering happens
// after seed derivation, so a filtered cell is bit-identical to the same
// cell of the full corpus.
type CorpusRequest struct {
	Seed       uint64   `json:"seed,omitempty"`
	Candidates []string `json:"candidates,omitempty"`
}

func (q *CorpusRequest) normalize() error {
	seen := make(map[string]bool, len(q.Candidates))
	for _, name := range q.Candidates {
		if _, err := broadcast.Lookup(name); err != nil {
			return err
		}
		if seen[name] {
			return fmt.Errorf("duplicate candidate %q", name)
		}
		seen[name] = true
	}
	return nil
}

// corpusConfigs derives the request's cell list. Both the coordinator
// (to size the shard plan) and every worker (to slice its range) compute
// this from the normalized request, so they always agree on the grid.
func corpusConfigs(q *CorpusRequest) []conformance.Config {
	cfgs := conformance.Corpus(q.Seed)
	if len(q.Candidates) == 0 {
		return cfgs
	}
	want := make(map[string]bool, len(q.Candidates))
	for _, name := range q.Candidates {
		want[name] = true
	}
	var out []conformance.Config
	for _, cfg := range cfgs {
		if want[cfg.Candidate.Name] {
			out = append(out, cfg)
		}
	}
	return out
}

// CorpusCell is one corpus cell's comparable outcome in the response
// document (conformance.CellSummary with wire names).
//
// The raw (VerdictsAgree, CounterexampleFound) pair is interleaving-
// dependent for schedule-sensitive candidates: the concurrent runtime's
// real interleaving decides whether the sanctioned counterexample shows
// up on a given run, and either outcome is conforming. The document
// therefore folds the pair into VerdictsConsistent — true unless the
// verdicts diverge *without* the sanctioned asymmetry — which is the
// timing-independent bit. That keeps the corpus response a pure function
// of the request, and so cacheable, shardable, and byte-identical at any
// fleet width.
type CorpusCell struct {
	Candidate          string `json:"candidate"`
	N                  int    `json:"n"`
	K                  int    `json:"k"`
	Steps              int    `json:"steps"`
	VerdictsConsistent bool   `json:"verdicts_consistent"`
	DeliverySetsAgree  bool   `json:"delivery_sets_agree"`
	NetComplete        bool   `json:"net_complete"`
	LiveAgrees         bool   `json:"live_agrees"`
}

// corpusCells maps summaries to wire rows, preserving cell order.
func corpusCells(sums []conformance.CellSummary) []CorpusCell {
	rows := make([]CorpusCell, len(sums))
	for i, s := range sums {
		rows[i] = CorpusCell{
			Candidate:          s.Candidate,
			N:                  s.N,
			K:                  s.K,
			Steps:              s.Steps,
			VerdictsConsistent: s.VerdictsAgree || s.CounterexampleFound,
			DeliverySetsAgree:  s.DeliverySetsAgree,
			NetComplete:        s.NetComplete,
			LiveAgrees:         s.LiveAgrees,
		}
	}
	return rows
}

// CorpusResponse is the result document of a /v1/corpus job.
// Disagreements counts the cells whose verdict bits indicate a real
// runtime divergence: verdicts differing without the sanctioned
// counterexample asymmetry, delivery sets differing, or live/batch
// verdicts differing.
type CorpusResponse struct {
	Seed          uint64       `json:"seed"`
	Cells         int          `json:"cells"`
	Disagreements int          `json:"disagreements"`
	Rows          []CorpusCell `json:"rows"`
}

func buildCorpusResponse(q *CorpusRequest, rows []CorpusCell) *CorpusResponse {
	resp := &CorpusResponse{Seed: q.Seed, Cells: len(rows), Rows: rows}
	for _, c := range rows {
		if !c.VerdictsConsistent || !c.DeliverySetsAgree || !c.LiveAgrees {
			resp.Disagreements++
		}
	}
	return resp
}

func (s *Server) handleCorpus(w http.ResponseWriter, r *http.Request) {
	var q CorpusRequest
	if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if err := q.normalize(); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	cfgs := corpusConfigs(&q)
	if len(cfgs) == 0 {
		httpError(w, http.StatusBadRequest, "candidate filter selects no corpus cells")
		return
	}
	hash := canonicalHash("corpus", &q)
	s.runManaged(w, r, "corpus", hash, q.Seed, func(ctx context.Context) (jobOutput, error) {
		if s.fab != nil && len(cfgs) >= 2 {
			return s.executeCorpusFabric(ctx, &q, cfgs)
		}
		return s.executeCorpus(ctx, &q, cfgs)
	})
}

// executeCorpus runs the whole battery locally on the sweep pool.
func (s *Server) executeCorpus(ctx context.Context, q *CorpusRequest, cfgs []conformance.Config) (jobOutput, error) {
	sums, err := conformance.RunCorpus(ctx, cfgs, s.cfg.Workers, s.reg)
	if err != nil {
		return jobOutput{}, err
	}
	return encodeBody(buildCorpusResponse(q, corpusCells(sums)), nil)
}

// executeCorpusShard runs one cell range of the battery (the worker side
// of a sharded corpus). Slicing the config list is all the sharding
// there is: each cell's seed is embedded in its Config by Corpus, so any
// partition reproduces the full-grid cells exactly.
func (s *Server) executeCorpusShard(ctx context.Context, cfgs []conformance.Config, lo, hi int) (jobOutput, error) {
	if err := s.lagShard(ctx); err != nil {
		return jobOutput{}, err
	}
	sums, err := conformance.RunCorpus(ctx, cfgs[lo:hi], s.cfg.Workers, s.reg)
	if err != nil {
		return jobOutput{}, err
	}
	return encodeBody(corpusCells(sums), nil)
}

// executeCorpusFabric is the coordinator path: shard the grid over the
// fleet and concatenate the row ranges in cell order. The merged body is
// byte-identical to executeCorpus on one host.
func (s *Server) executeCorpusFabric(ctx context.Context, q *CorpusRequest, cfgs []conformance.Config) (jobOutput, error) {
	req, err := json.Marshal(q)
	if err != nil {
		return jobOutput{}, err
	}
	parts, err := s.fab.Run(ctx, "corpus", req, len(cfgs))
	if err != nil {
		return jobOutput{}, err
	}
	rows := make([]CorpusCell, 0, len(cfgs))
	for _, p := range parts {
		var rs []CorpusCell
		if err := json.Unmarshal(p.Body, &rs); err != nil {
			return jobOutput{}, fmt.Errorf("serve: corpus shard [%d,%d) body does not decode: %w", p.Lo, p.Hi, err)
		}
		if len(rs) != p.Hi-p.Lo {
			return jobOutput{}, fmt.Errorf("serve: corpus shard [%d,%d) returned %d rows", p.Lo, p.Hi, len(rs))
		}
		rows = append(rows, rs...)
	}
	return encodeBody(buildCorpusResponse(q, rows), nil)
}
