package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"nobroadcast/internal/obs"
)

// fakeWorker is a minimal /v1/shards + /readyz daemon whose shard
// handler is injectable per test.
func fakeWorker(t *testing.T, shards http.HandlerFunc, ready http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/shards", shards)
	if ready == nil {
		ready = func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) }
	}
	mux.HandleFunc("GET /readyz", ready)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// echoShard answers a shard request with its own range, so tests can
// verify coverage and ordering of the merged partials.
func echoShard(w http.ResponseWriter, r *http.Request) {
	var env ShardEnvelope
	if err := json.NewDecoder(r.Body).Decode(&env); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	json.NewEncoder(w).Encode(map[string]int{"lo": env.Lo, "hi": env.Hi})
}

// checkCoverage asserts the partials tile [0, cells) in order.
func checkCoverage(t *testing.T, parts []Partial, cells int) {
	t.Helper()
	next := 0
	for _, p := range parts {
		if p.Lo != next || p.Hi <= p.Lo {
			t.Fatalf("partial [%d,%d) does not continue coverage at %d", p.Lo, p.Hi, next)
		}
		var got map[string]int
		if err := json.Unmarshal(p.Body, &got); err != nil {
			t.Fatalf("partial body: %v", err)
		}
		if got["lo"] != p.Lo || got["hi"] != p.Hi {
			t.Fatalf("partial body range [%d,%d) mismatches position [%d,%d)", got["lo"], got["hi"], p.Lo, p.Hi)
		}
		next = p.Hi
	}
	if next != cells {
		t.Fatalf("partials cover [0,%d), want [0,%d)", next, cells)
	}
}

func TestRunCoversAllCells(t *testing.T) {
	w1 := fakeWorker(t, echoShard, nil)
	w2 := fakeWorker(t, echoShard, nil)
	reg := obs.New()
	c, err := New(Config{Workers: []string{w1.URL, w2.URL}, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := c.Run(context.Background(), "test", json.RawMessage(`{}`), 37)
	if err != nil {
		t.Fatal(err)
	}
	checkCoverage(t, parts, 37)
	if got := reg.Counter("fabric.shards").Value(); got < 8 {
		t.Errorf("fabric.shards = %d, want >= 8 (4 per worker)", got)
	}
}

func TestRunSingleCellSingleWorker(t *testing.T) {
	w1 := fakeWorker(t, echoShard, nil)
	c, err := New(Config{Workers: []string{w1.URL}})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := c.Run(context.Background(), "test", json.RawMessage(`{}`), 1)
	if err != nil {
		t.Fatal(err)
	}
	checkCoverage(t, parts, 1)
}

// TestRetryAfterWorkerFailure: a worker whose first two shard attempts
// die with 500s still converges — the ranges requeue and complete, and
// the retry/failure counters record it.
func TestRetryAfterWorkerFailure(t *testing.T) {
	var calls atomic.Int64
	flaky := func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "injected failure", http.StatusInternalServerError)
			return
		}
		echoShard(w, r)
	}
	w1 := fakeWorker(t, flaky, nil)
	reg := obs.New()
	c, err := New(Config{
		Workers: []string{w1.URL}, Obs: reg,
		BackoffBase: time.Millisecond, BackoffMax: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := c.Run(context.Background(), "test", json.RawMessage(`{}`), 16)
	if err != nil {
		t.Fatal(err)
	}
	checkCoverage(t, parts, 16)
	if reg.Counter("fabric.retries").Value() != 2 {
		t.Errorf("fabric.retries = %d, want 2", reg.Counter("fabric.retries").Value())
	}
	if reg.Counter("fabric.worker_fail").Value() != 2 {
		t.Errorf("fabric.worker_fail = %d, want 2", reg.Counter("fabric.worker_fail").Value())
	}
}

// TestShardFailsAfterMaxAttempts: a permanently broken fleet fails the
// run with the shard's last error instead of spinning forever.
func TestShardFailsAfterMaxAttempts(t *testing.T) {
	broken := func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "permanently broken", http.StatusInternalServerError)
	}
	w1 := fakeWorker(t, broken, nil)
	c, err := New(Config{
		Workers: []string{w1.URL}, MaxAttempts: 3,
		BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(context.Background(), "test", json.RawMessage(`{}`), 8)
	if err == nil {
		t.Fatal("run succeeded against a permanently broken fleet")
	}
}

// TestStealResplitsStraggler: with one worker stalling on every shard,
// the idle fast worker must steal — cancel the straggler's range, split
// it, and finish the tail itself.
func TestStealResplitsStraggler(t *testing.T) {
	slow := func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(2 * time.Second):
		case <-r.Context().Done():
			return
		}
		echoShard(w, r)
	}
	w1 := fakeWorker(t, slow, nil)
	w2 := fakeWorker(t, echoShard, nil)
	reg := obs.New()
	c, err := New(Config{
		Workers: []string{w1.URL, w2.URL}, Obs: reg,
		StealAge: 20 * time.Millisecond, ShardsPer: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	parts, err := c.Run(ctx, "test", json.RawMessage(`{}`), 32)
	if err != nil {
		t.Fatal(err)
	}
	checkCoverage(t, parts, 32)
	if got := reg.Counter("fabric.steals").Value(); got == 0 {
		t.Error("fabric.steals = 0, want > 0 under an injected straggler")
	}
}

// TestDrainingWorkerBenched: a worker answering 503 (draining) with a
// dead /readyz must not burn the shards' retry budget — the healthy
// worker completes the run.
func TestDrainingWorkerBenched(t *testing.T) {
	draining := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining", http.StatusServiceUnavailable)
	}
	w1 := fakeWorker(t, draining, draining)
	w2 := fakeWorker(t, echoShard, nil)
	c, err := New(Config{
		Workers: []string{w1.URL, w2.URL}, MaxAttempts: 2,
		BackoffBase: time.Millisecond, BackoffMax: 5 * time.Millisecond,
		StealAge: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := c.Run(context.Background(), "test", json.RawMessage(`{}`), 24)
	if err != nil {
		t.Fatal(err)
	}
	checkCoverage(t, parts, 24)
}

// TestPeerFillAndPush exercises the fleet cache path against fake cache
// endpoints.
func TestPeerFillAndPush(t *testing.T) {
	store := map[string][]byte{}
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	cacheMux := http.NewServeMux()
	cacheMux.HandleFunc("GET /v1/cache/{hash}", func(w http.ResponseWriter, r *http.Request) {
		<-mu
		b, ok := store[r.PathValue("hash")]
		mu <- struct{}{}
		if !ok {
			http.Error(w, "miss", http.StatusNotFound)
			return
		}
		w.Header().Set("X-Job-Kind", "explore")
		w.Write(b)
	})
	cacheMux.HandleFunc("PUT /v1/cache/{hash}", func(w http.ResponseWriter, r *http.Request) {
		var buf [64]byte
		n, _ := r.Body.Read(buf[:])
		<-mu
		store[r.PathValue("hash")] = append([]byte(nil), buf[:n]...)
		mu <- struct{}{}
		w.WriteHeader(http.StatusNoContent)
	})
	ts := httptest.NewServer(cacheMux)
	t.Cleanup(ts.Close)

	reg := obs.New()
	c, err := New(Config{Workers: []string{ts.URL}, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.PeerFill(context.Background(), "deadbeef"); ok {
		t.Fatal("PeerFill hit on an empty fleet cache")
	}
	c.Push("deadbeef", "explore", []byte(`{"x":1}`))
	deadline := time.Now().Add(5 * time.Second)
	for {
		if body, kind, ok := c.PeerFill(context.Background(), "deadbeef"); ok {
			if string(body) != `{"x":1}` || kind != "explore" {
				t.Fatalf("PeerFill = %q kind %q", body, kind)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pushed entry never became peer-fillable")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if reg.Counter("fabric.cache_push").Value() != 1 {
		t.Errorf("fabric.cache_push = %d, want 1", reg.Counter("fabric.cache_push").Value())
	}
}

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2024, 10, 29, 16, 56, 30, 0, time.UTC)
	const max = 5 * time.Second
	for _, tc := range []struct {
		h    string
		want time.Duration
	}{
		{"", 0},
		{"0", 0},
		{"2", 2 * time.Second},
		{" 2 ", 2 * time.Second},
		{"-3", 0},      // negative seconds clamp to zero
		{"9999", max},  // seconds clamp to BackoffMax
		{"garbage", 0}, // unparseable falls back to backoff
		{"Tue, 29 Oct 2024 16:56:32 GMT", 2 * time.Second},   // HTTP-date
		{"Tue, 29 Oct 2024 16:56:20 GMT", 0},                 // date in the past
		{"Tue, 29 Oct 2024 17:56:32 GMT", max},               // far date clamps
		{"Tuesday, 29-Oct-24 16:56:32 GMT", 2 * time.Second}, // RFC 850 form
	} {
		if got := parseRetryAfter(tc.h, now, max); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.h, got, tc.want)
		}
	}
}

// TestHungWorkerRecovered: a worker that accepts the TCP connection but
// never writes a byte of response must not pin the dispatch until the
// job context dies. The default transport's response-header timeout
// fails the attempt, the range requeues, and steal + retry complete the
// run within a bound far below the hang.
func TestHungWorkerRecovered(t *testing.T) {
	hung := make(chan struct{})
	defer close(hung)
	hang := func(w http.ResponseWriter, r *http.Request) {
		conn, _, err := http.NewResponseController(w).Hijack()
		if err != nil {
			t.Errorf("hijack: %v", err)
			return
		}
		defer conn.Close()
		<-hung // hold the connection open, never write
	}
	w1 := fakeWorker(t, hang, nil)
	w2 := fakeWorker(t, echoShard, nil)
	reg := obs.New()
	c, err := New(Config{
		Workers: []string{w1.URL, w2.URL}, Obs: reg,
		ResponseHeaderTimeout: 100 * time.Millisecond,
		BackoffBase:           time.Millisecond, BackoffMax: 20 * time.Millisecond,
		StealAge: 25 * time.Millisecond, ShardsPer: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	parts, err := c.Run(ctx, "test", json.RawMessage(`{}`), 16)
	if err != nil {
		t.Fatal(err)
	}
	checkCoverage(t, parts, 16)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("run took %v against a hung worker, want well under the job bound", elapsed)
	}
	if reg.Counter("fabric.retries").Value()+reg.Counter("fabric.steals").Value() == 0 {
		t.Error("neither retries nor steals engaged against a hung worker")
	}
}

// TestOversizeBodyFailsShard: a worker answering with a body over
// MaxBodyBytes fails the shard with ErrBodyTooLarge instead of buffering
// it, and the error survives the retry wrapping.
func TestOversizeBodyFailsShard(t *testing.T) {
	huge := func(w http.ResponseWriter, r *http.Request) {
		w.Write(bytes.Repeat([]byte("x"), 4096))
	}
	w1 := fakeWorker(t, huge, nil)
	c, err := New(Config{
		Workers: []string{w1.URL}, MaxAttempts: 2, MaxBodyBytes: 1024,
		BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(context.Background(), "test", json.RawMessage(`{}`), 4)
	if !errors.Is(err, ErrBodyTooLarge) {
		t.Fatalf("Run error = %v, want ErrBodyTooLarge", err)
	}
}

func TestBackoffBoundedAndGrowing(t *testing.T) {
	c := &Coordinator{cfg: Config{BackoffBase: 10 * time.Millisecond, BackoffMax: 100 * time.Millisecond}}
	for fails := 0; fails < 100; fails++ {
		d := c.backoff(fails)
		if d < 5*time.Millisecond || d > 150*time.Millisecond {
			t.Fatalf("backoff(%d) = %v outside jittered [base/2, 1.25*max]", fails, d)
		}
	}
}

func TestNewRejectsEmptyFleet(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted an empty worker list")
	}
}

func TestRunRejectsZeroCells(t *testing.T) {
	w1 := fakeWorker(t, echoShard, nil)
	c, err := New(Config{Workers: []string{w1.URL}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background(), "test", nil, 0); err == nil {
		t.Fatal("Run accepted 0 cells")
	}
}
