// Package fabric is the coordinator side of the distributed sweep
// cluster (ROADMAP item 1): it splits a sweep-shaped job — a grid of
// independent cells whose randomness derives positionally from one root
// seed — into contiguous cell-range shards, fans the shards out to
// worker daemons over HTTP (POST /v1/shards), and hands the partial
// bodies back in grid order for the caller to merge.
//
// Everything here leans on one invariant: a shard's result is a pure
// function of (request, lo, hi). That makes shard retry idempotent — a
// worker dying mid-shard loses nothing, the range just runs again
// elsewhere — and it makes work-stealing free of coordination: a stolen
// straggler is cancelled outright and its range re-split, because
// re-executing half a shard costs only time, never correctness. It is
// also why the fleet can share one result cache: the canonical parameter
// hash names the bytes, so any worker's cache entry (GET /v1/cache/) is
// the answer.
//
// Robustness model:
//
//   - Per-shard retry with capped exponential backoff + jitter; a shard
//     that fails MaxAttempts times fails the run.
//   - A worker's 429/503 Retry-After is honored as the backoff floor,
//     and the worker is probed via /readyz before it is dispatched to
//     again — a SIGTERM-draining worker drops out of rotation instead of
//     eating its shards' retry budget.
//   - Work-stealing: an idle worker with an empty queue cancels the
//     oldest big in-flight shard (age ≥ StealAge, span ≥ 2 cells),
//     splits its range in half, and requeues both — recursively, so a
//     straggler's tail shrinks geometrically.
//
// Observability: fabric.{shards,steals,retries,worker_fail,peer_hits,
// peer_misses,cache_push} counters, fabric.workers / fabric.workers_ready
// gauges, and per-shard spans (fabric.dispatch → fabric.shard) joined to
// the request's trace context; the X-Trace-Id travels to workers so one
// trace id names the whole fan-out.
package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"nobroadcast/internal/obs"
)

// ErrBodyTooLarge marks a worker response whose body exceeded
// Config.MaxBodyBytes. It is distinct from a truncated read: the worker
// sent more than the coordinator is willing to buffer, so the shard
// fails (and retries elsewhere) instead of OOMing the coordinator.
var ErrBodyTooLarge = errors.New("fabric: worker response body over the configured maximum")

// ShardEnvelope is the body of POST /v1/shards: one cell range of the
// embedded request. Kind selects the worker-side executor ("explore" or
// "corpus"); Req is the normalized request whose cells [Lo, Hi) this
// shard covers.
type ShardEnvelope struct {
	Kind string          `json:"kind"`
	Lo   int             `json:"lo"`
	Hi   int             `json:"hi"`
	Req  json.RawMessage `json:"req"`
}

// Partial is one shard's result body, positioned in the grid.
type Partial struct {
	Lo, Hi int
	Body   []byte
}

// Config parameterizes a Coordinator.
type Config struct {
	// Workers are the worker daemons' base URLs (e.g.
	// "http://10.0.0.2:8321"). At least one is required.
	Workers []string
	// ShardsPer is the initial shard count per worker (default 4): small
	// enough to amortize HTTP round-trips, large enough that the natural
	// tail is short before stealing even starts.
	ShardsPer int
	// StealAge is how long an in-flight shard must have been running
	// before an idle worker may cancel-and-resplit it. Zero selects the
	// 100ms default; negative disables stealing.
	StealAge time.Duration
	// MaxAttempts bounds one shard's dispatch attempts (default 5).
	MaxAttempts int
	// BackoffBase/BackoffMax bound the per-worker retry backoff
	// (defaults 50ms / 2s); a worker's Retry-After raises the floor.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// ProbeTimeout bounds one /readyz or /v1/cache probe (default 1s).
	ProbeTimeout time.Duration
	// DialTimeout bounds connection establishment (and the TLS
	// handshake) to a worker on the default client (default 5s).
	DialTimeout time.Duration
	// ResponseHeaderTimeout bounds how long the default client waits,
	// after writing a shard request, for the worker to start answering
	// (default 90s — above serve's 60s job ceiling, so legitimate slow
	// shards still finish). A worker that accepts the connection and then
	// hangs fails the attempt instead of pinning the dispatch until the
	// whole job context dies.
	ResponseHeaderTimeout time.Duration
	// MaxBodyBytes caps one worker response body (default 64 MiB, the
	// same bound the daemons put on request bodies and trace blocks).
	// Larger bodies fail the shard with ErrBodyTooLarge.
	MaxBodyBytes int64
	// Client is the HTTP client for all worker traffic; nil uses a
	// dedicated client with dial/TLS-handshake/response-header timeouts
	// but no global timeout (shard contexts bound each request).
	Client *http.Client
	// Obs receives the fabric.* counters, gauges, and spans.
	Obs *obs.Registry
}

func (c *Config) defaults() {
	if c.ShardsPer <= 0 {
		c.ShardsPer = 4
	}
	if c.StealAge == 0 {
		c.StealAge = 100 * time.Millisecond
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.ResponseHeaderTimeout <= 0 {
		c.ResponseHeaderTimeout = 90 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.Client == nil {
		c.Client = &http.Client{Transport: &http.Transport{
			DialContext: (&net.Dialer{
				Timeout:   c.DialTimeout,
				KeepAlive: 30 * time.Second,
			}).DialContext,
			TLSHandshakeTimeout:   c.DialTimeout,
			ResponseHeaderTimeout: c.ResponseHeaderTimeout,
			MaxIdleConnsPerHost:   4,
			IdleConnTimeout:       90 * time.Second,
		}}
	}
	if c.Obs == nil {
		c.Obs = obs.New()
	}
}

// Coordinator fans shard ranges out to a fixed worker fleet. It is safe
// for concurrent Runs; per-run dispatch state is private to each Run.
type Coordinator struct {
	cfg Config
	reg *obs.Registry

	shards, steals, retries *obs.Counter
	workerFail              *obs.Counter
	peerHits, peerMisses    *obs.Counter
	cachePush               *obs.Counter
	workersG, readyG        *obs.Gauge
}

// New builds a coordinator over cfg.Workers.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("fabric: no workers configured")
	}
	cfg.defaults()
	c := &Coordinator{
		cfg:        cfg,
		reg:        cfg.Obs,
		shards:     cfg.Obs.Counter("fabric.shards"),
		steals:     cfg.Obs.Counter("fabric.steals"),
		retries:    cfg.Obs.Counter("fabric.retries"),
		workerFail: cfg.Obs.Counter("fabric.worker_fail"),
		peerHits:   cfg.Obs.Counter("fabric.peer_hits"),
		peerMisses: cfg.Obs.Counter("fabric.peer_misses"),
		cachePush:  cfg.Obs.Counter("fabric.cache_push"),
		workersG:   cfg.Obs.Gauge("fabric.workers"),
		readyG:     cfg.Obs.Gauge("fabric.workers_ready"),
	}
	c.workersG.Set(int64(len(cfg.Workers)))
	c.readyG.Set(int64(len(cfg.Workers)))
	return c, nil
}

// Workers reports the fleet size.
func (c *Coordinator) Workers() int { return len(c.cfg.Workers) }

// task is one queued cell range; attempts survive requeues (a steal
// carries attempts over, a failure increments them).
type task struct {
	lo, hi   int
	attempts int
}

// running is one dispatched task: who runs it, since when, and the
// cancel that a stealer pulls to reclaim the range.
type running struct {
	t      *task
	worker int
	start  time.Time
	ctx    context.Context
	cancel context.CancelFunc
	stolen bool
}

// runState is the per-Run dispatch ledger. done closes when the run
// settles (full coverage or first fatal error), waking sleepers.
type runState struct {
	mu       sync.Mutex
	queue    []*task
	inflight map[*task]*running
	parts    []Partial
	covered  int
	cells    int
	err      error
	done     chan struct{}
	finished bool
}

func (st *runState) settleLocked() {
	if !st.finished && (st.err != nil || st.covered == st.cells) {
		st.finished = true
		close(st.done)
	}
}

// failLocked records the first fatal error; later ones lose the race and
// are dropped (the first is what aborted the run).
func (st *runState) failLocked(err error) {
	if st.err == nil {
		st.err = err
	}
	st.settleLocked()
}

// Run splits cells into shards, dispatches them across the fleet until
// [0, cells) is covered, and returns the partial bodies sorted in grid
// order. kind and req travel verbatim in each shard's envelope; ctx
// cancellation aborts every in-flight shard request.
func (c *Coordinator) Run(ctx context.Context, kind string, req json.RawMessage, cells int) ([]Partial, error) {
	if cells < 1 {
		return nil, fmt.Errorf("fabric: run has %d cells", cells)
	}
	sp, ctx := c.reg.StartSpanIfTraced(ctx, "fabric.dispatch")
	defer sp.End()
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()

	st := &runState{
		inflight: make(map[*task]*running),
		cells:    cells,
		done:     make(chan struct{}),
	}
	nshards := min(cells, c.cfg.ShardsPer*len(c.cfg.Workers))
	for i := 0; i < nshards; i++ {
		st.queue = append(st.queue, &task{lo: i * cells / nshards, hi: (i + 1) * cells / nshards})
	}

	var wg sync.WaitGroup
	for wi := range c.cfg.Workers {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			c.workerLoop(rctx, st, wi, kind, req)
		}(wi)
	}
	wg.Wait()

	st.mu.Lock()
	defer st.mu.Unlock()
	if st.err != nil {
		return nil, st.err
	}
	if err := context.Cause(ctx); err != nil {
		return nil, err
	}
	if st.covered != cells {
		return nil, fmt.Errorf("fabric: internal: covered %d of %d cells", st.covered, cells)
	}
	sort.Slice(st.parts, func(i, j int) bool { return st.parts[i].Lo < st.parts[j].Lo })
	return st.parts, nil
}

// workerLoop is one worker's dispatch pump: claim a range (or steal
// one), POST it, publish or requeue, back off on failure, and re-probe
// readiness before rejoining the rotation.
func (c *Coordinator) workerLoop(ctx context.Context, st *runState, wi int, kind string, req json.RawMessage) {
	fails := 0
	for {
		rec := c.next(ctx, st, wi)
		if rec == nil {
			return
		}
		body, retryAfter, err := c.dispatch(rec, wi, kind, req)
		if err == nil {
			fails = 0
			c.shards.Inc()
			st.mu.Lock()
			if !rec.stolen {
				delete(st.inflight, rec.t)
				st.parts = append(st.parts, Partial{Lo: rec.t.lo, Hi: rec.t.hi, Body: body})
				st.covered += rec.t.hi - rec.t.lo
				st.settleLocked()
			}
			st.mu.Unlock()
			continue
		}
		st.mu.Lock()
		if rec.stolen {
			// The range was reclaimed and re-split while we were in
			// flight; the failure is the steal's cancel, not ours.
			st.mu.Unlock()
			continue
		}
		delete(st.inflight, rec.t)
		rec.t.attempts++
		if rec.t.attempts >= c.cfg.MaxAttempts {
			st.failLocked(fmt.Errorf("fabric: shard [%d,%d) failed after %d attempts: %w",
				rec.t.lo, rec.t.hi, rec.t.attempts, err))
			st.mu.Unlock()
			c.workerFail.Inc()
			return
		}
		st.queue = append(st.queue, rec.t)
		st.mu.Unlock()
		c.workerFail.Inc()
		c.retries.Inc()
		fails++

		// This worker just failed a shard: sit out the backoff (the
		// worker's own Retry-After raises the floor), then stay benched
		// until /readyz answers 200 — meanwhile the requeued range is
		// free for healthy workers to claim.
		c.readyG.Dec()
		delay := c.backoff(fails)
		if retryAfter > delay {
			delay = retryAfter
		}
		ok := sleepRun(ctx, st, delay) && c.awaitReady(ctx, st, wi)
		c.readyG.Inc()
		if !ok {
			return
		}
	}
}

// next claims the front of the queue for worker wi. With the queue empty
// it tries to steal: cancel the biggest in-flight range older than
// StealAge and ≥ 2 cells, requeue its halves, and claim one. nil means
// the run settled (or ctx ended) and the loop should exit.
func (c *Coordinator) next(ctx context.Context, st *runState, wi int) *running {
	for {
		st.mu.Lock()
		if st.finished || ctx.Err() != nil {
			st.mu.Unlock()
			return nil
		}
		if len(st.queue) > 0 {
			t := st.queue[0]
			st.queue = st.queue[1:]
			tctx, cancel := context.WithCancel(ctx)
			rec := &running{t: t, worker: wi, start: time.Now(), ctx: tctx, cancel: cancel}
			st.inflight[t] = rec
			st.mu.Unlock()
			return rec
		}
		if c.cfg.StealAge >= 0 {
			if v := stealVictim(st, c.cfg.StealAge); v != nil {
				v.stolen = true
				v.cancel()
				delete(st.inflight, v.t)
				mid := (v.t.lo + v.t.hi) / 2
				st.queue = append(st.queue,
					&task{lo: v.t.lo, hi: mid, attempts: v.t.attempts},
					&task{lo: mid, hi: v.t.hi, attempts: v.t.attempts})
				c.steals.Inc()
				st.mu.Unlock()
				continue
			}
		}
		st.mu.Unlock()
		if !sleepRun(ctx, st, 2*time.Millisecond) {
			return nil
		}
	}
}

// stealVictim picks the in-flight shard most worth reclaiming: the
// widest range at least minAge old with room to split. The caller holds
// st.mu.
func stealVictim(st *runState, minAge time.Duration) *running {
	var best *running
	now := time.Now()
	for _, rec := range st.inflight {
		if rec.stolen || rec.t.hi-rec.t.lo < 2 || now.Sub(rec.start) < minAge {
			continue
		}
		if best == nil || rec.t.hi-rec.t.lo > best.t.hi-best.t.lo {
			best = rec
		}
	}
	return best
}

// dispatch POSTs one shard envelope to worker wi and returns the body.
// A non-200 answer or transport error is returned with the parsed
// Retry-After (zero when absent); the caller distinguishes steals.
func (c *Coordinator) dispatch(rec *running, wi int, kind string, req json.RawMessage) ([]byte, time.Duration, error) {
	env, err := json.Marshal(ShardEnvelope{Kind: kind, Lo: rec.t.lo, Hi: rec.t.hi, Req: req})
	if err != nil {
		return nil, 0, err
	}
	sp, sctx := c.reg.StartSpanIfTraced(rec.ctx, "fabric.shard")
	defer sp.End()
	url := c.cfg.Workers[wi] + "/v1/shards"
	hreq, err := http.NewRequestWithContext(sctx, http.MethodPost, url, bytes.NewReader(env))
	if err != nil {
		return nil, 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if tc, ok := obs.TraceFrom(sctx); ok {
		hreq.Header.Set("X-Trace-Id", tc.TraceID)
	}
	resp, err := c.cfg.Client.Do(hreq)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := c.readBody(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		ra := c.retryAfter(resp.Header.Get("Retry-After"))
		msg := string(body)
		if len(msg) > 200 {
			msg = msg[:200]
		}
		return nil, ra, fmt.Errorf("fabric: worker %s: shard [%d,%d): %s: %s",
			c.cfg.Workers[wi], rec.t.lo, rec.t.hi, resp.Status, msg)
	}
	return body, 0, nil
}

// awaitReady polls worker wi's /readyz until it answers 200, the run
// settles, or ctx ends. Transport errors count as not ready — a dead
// worker stays benched instead of burning shard attempts — and each miss
// waits the worker's Retry-After or the capped backoff.
func (c *Coordinator) awaitReady(ctx context.Context, st *runState, wi int) bool {
	probes := 0
	for {
		if runOver(ctx, st) {
			return false
		}
		probes++
		pctx, cancel := context.WithTimeout(ctx, c.cfg.ProbeTimeout)
		req, err := http.NewRequestWithContext(pctx, http.MethodGet, c.cfg.Workers[wi]+"/readyz", nil)
		if err != nil {
			cancel()
			return false
		}
		resp, err := c.cfg.Client.Do(req)
		wait := c.backoff(probes)
		if err == nil {
			if resp.StatusCode == http.StatusOK {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				cancel()
				return true
			}
			if ra := c.retryAfter(resp.Header.Get("Retry-After")); ra > wait {
				wait = ra
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		cancel()
		if !sleepRun(ctx, st, wait) {
			return false
		}
	}
}

// backoff is the capped exponential retry delay with ±25% jitter.
func (c *Coordinator) backoff(fails int) time.Duration {
	if fails < 1 {
		fails = 1
	}
	d := c.cfg.BackoffMax
	if fails-1 < 20 {
		if v := c.cfg.BackoffBase << (fails - 1); v > 0 && v < d {
			d = v
		}
	}
	j := 1 + (rand.Float64()-0.5)/2
	return time.Duration(float64(d) * j)
}

// PeerFill probes the fleet's caches for hash and returns the first hit:
// body bytes and the job kind that produced them. Determinism makes the
// bytes exact — a cache entry under the canonical hash is the result.
func (c *Coordinator) PeerFill(ctx context.Context, hash string) (body []byte, kind string, ok bool) {
	for _, w := range c.cfg.Workers {
		pctx, cancel := context.WithTimeout(ctx, c.cfg.ProbeTimeout)
		req, err := http.NewRequestWithContext(pctx, http.MethodGet, w+"/v1/cache/"+hash, nil)
		if err != nil {
			cancel()
			continue
		}
		resp, err := c.cfg.Client.Do(req)
		if err != nil {
			cancel()
			continue
		}
		b, rerr := c.readBody(resp.Body)
		resp.Body.Close()
		cancel()
		if resp.StatusCode != http.StatusOK || rerr != nil {
			continue
		}
		c.peerHits.Inc()
		return b, resp.Header.Get("X-Job-Kind"), true
	}
	c.peerMisses.Inc()
	return nil, "", false
}

// Push replicates a settled result to every worker's cache (PUT
// /v1/cache/{hash}), asynchronously and best-effort: a worker that
// misses the push simply peer-fills later.
func (c *Coordinator) Push(hash, kind string, body []byte) {
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		for _, w := range c.cfg.Workers {
			req, err := http.NewRequestWithContext(ctx, http.MethodPut, w+"/v1/cache/"+hash, bytes.NewReader(body))
			if err != nil {
				continue
			}
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set("X-Job-Kind", kind)
			resp, err := c.cfg.Client.Do(req)
			if err != nil {
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode < 300 {
				c.cachePush.Inc()
			}
		}
	}()
}

// runOver reports that the run settled or ctx ended.
func runOver(ctx context.Context, st *runState) bool {
	if ctx.Err() != nil {
		return true
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.finished
}

// sleepRun sleeps d but wakes early (returning false) when the run
// settles or ctx ends, so backed-off workers never stall a finished Run.
func sleepRun(ctx context.Context, st *runState, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return !runOver(ctx, st)
	case <-st.done:
		return false
	case <-ctx.Done():
		return false
	}
}

// readBody reads one worker response body, capped at MaxBodyBytes. A
// body over the cap fails with ErrBodyTooLarge — distinct from a
// truncated read, whose transport error passes through unchanged.
func (c *Coordinator) readBody(r io.Reader) ([]byte, error) {
	max := c.cfg.MaxBodyBytes
	b, err := io.ReadAll(io.LimitReader(r, max+1))
	if err != nil {
		return nil, err
	}
	if int64(len(b)) > max {
		return nil, fmt.Errorf("%w (%d-byte cap)", ErrBodyTooLarge, max)
	}
	return b, nil
}

// retryAfter parses a worker's Retry-After header, clamped to
// [0, BackoffMax] so a confused worker cannot park the coordinator.
func (c *Coordinator) retryAfter(h string) time.Duration {
	return parseRetryAfter(h, time.Now(), c.cfg.BackoffMax)
}

// parseRetryAfter reads both Retry-After forms — delay-seconds and the
// HTTP-date formats http.ParseTime accepts — and clamps the result to
// [0, max]. Garbage (and dates already past) parse to zero, so the
// caller falls back to its own backoff.
func parseRetryAfter(h string, now time.Time, max time.Duration) time.Duration {
	h = strings.TrimSpace(h)
	var d time.Duration
	switch {
	case h == "":
		return 0
	default:
		if secs, err := strconv.Atoi(h); err == nil {
			d = time.Duration(secs) * time.Second
		} else if t, err := http.ParseTime(h); err == nil {
			d = t.Sub(now)
		}
	}
	if d < 0 {
		d = 0
	}
	if d > max {
		d = max
	}
	return d
}
