// Package vc implements vector clocks and Lamport clocks, the logical-time
// substrates used by the causal and total-order broadcast implementations.
//
// Vector clocks track the "happened before" partial order of Lamport's
// seminal paper (reference [17] of the reproduced paper); the causal
// broadcast of [24] delays deliveries until all causal predecessors are
// delivered, which the VC comparison operators decide.
package vc

import (
	"fmt"
	"strconv"
	"strings"
)

// VC is a vector clock over processes 1..n, stored at indices 0..n-1.
// The zero-length VC compares as all-zeros.
type VC []uint64

// New returns an all-zero vector clock for n processes.
func New(n int) VC {
	return make(VC, n)
}

// Clone returns a copy of the clock.
func (v VC) Clone() VC {
	c := make(VC, len(v))
	copy(c, v)
	return c
}

// Get returns the component for process p (1-based). Out-of-range
// components read as zero.
func (v VC) Get(p int) uint64 {
	if p < 1 || p > len(v) {
		return 0
	}
	return v[p-1]
}

// Tick increments the component of process p (1-based) and returns the
// clock for chaining. It panics if p is out of range: a tick on an unknown
// process is a programming error, not a recoverable condition.
func (v VC) Tick(p int) VC {
	if p < 1 || p > len(v) {
		panic(fmt.Sprintf("vc: Tick(%d) on clock of width %d", p, len(v)))
	}
	v[p-1]++
	return v
}

// Merge sets v to the component-wise maximum of v and other.
func (v VC) Merge(other VC) {
	for i := 0; i < len(v) && i < len(other); i++ {
		if other[i] > v[i] {
			v[i] = other[i]
		}
	}
}

// LessEq reports whether v ≤ other component-wise (v happened before or
// equals other).
func (v VC) LessEq(other VC) bool {
	for i := range v {
		var o uint64
		if i < len(other) {
			o = other[i]
		}
		if v[i] > o {
			return false
		}
	}
	return true
}

// Less reports whether v < other: v ≤ other and v ≠ other (strict
// happened-before).
func (v VC) Less(other VC) bool {
	return v.LessEq(other) && !other.LessEq(v)
}

// Concurrent reports whether neither clock precedes the other.
func (v VC) Concurrent(other VC) bool {
	return !v.LessEq(other) && !other.LessEq(v)
}

// Equal reports component-wise equality (missing components read as zero).
func (v VC) Equal(other VC) bool {
	return v.LessEq(other) && other.LessEq(v)
}

// String renders the clock as "[1 0 2]".
func (v VC) String() string {
	b := make([]byte, 0, 2+4*len(v))
	b = append(b, '[')
	for i, x := range v {
		if i > 0 {
			b = append(b, ' ')
		}
		b = strconv.AppendUint(b, x, 10)
	}
	b = append(b, ']')
	return string(b)
}

// Encode serializes the clock to a compact string for embedding in message
// payloads ("1,0,2"). Decode inverts it. The encoding is on the wire path
// of every causal-broadcast message, so it builds the string with a single
// allocation (strconv.AppendUint into a sized buffer) instead of the
// per-component fmt round trips it used before.
func (v VC) Encode() string {
	if len(v) == 0 {
		return ""
	}
	b := make([]byte, 0, 4*len(v))
	for i, x := range v {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendUint(b, x, 10)
	}
	return string(b)
}

// Decode parses a clock produced by Encode. It returns an error on
// malformed input. Components are scanned in place (string slicing, no
// Split allocation); each must be a plain decimal uint64 — Decode rejects
// trailing garbage such as "1x" that the old fmt.Sscanf-based scanner
// silently tolerated.
func Decode(s string) (VC, error) {
	if s == "" {
		return VC{}, nil
	}
	v := make(VC, 0, strings.Count(s, ",")+1)
	start := 0
	for i := 0; i <= len(s); i++ {
		if i < len(s) && s[i] != ',' {
			continue
		}
		x, err := strconv.ParseUint(s[start:i], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("vc: bad component %q: %w", s[start:i], err)
		}
		v = append(v, x)
		start = i + 1
	}
	return v, nil
}

// Lamport is a scalar Lamport clock. The zero value is ready to use.
type Lamport struct {
	t uint64
}

// Now returns the current clock value.
func (l *Lamport) Now() uint64 { return l.t }

// Tick advances the clock for a local event and returns the new value.
func (l *Lamport) Tick() uint64 {
	l.t++
	return l.t
}

// Witness merges a remote timestamp and advances past it, returning the
// new value (the receive rule of Lamport clocks).
func (l *Lamport) Witness(remote uint64) uint64 {
	if remote > l.t {
		l.t = remote
	}
	l.t++
	return l.t
}
