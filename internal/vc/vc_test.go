package vc

import (
	"testing"
	"testing/quick"
)

func TestTickAndGet(t *testing.T) {
	v := New(3)
	v.Tick(1).Tick(1).Tick(3)
	if v.Get(1) != 2 || v.Get(2) != 0 || v.Get(3) != 1 {
		t.Errorf("clock = %v", v)
	}
	if v.Get(0) != 0 || v.Get(4) != 0 {
		t.Error("out-of-range Get should read zero")
	}
}

func TestTickPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Tick(4) on width-3 clock did not panic")
		}
	}()
	New(3).Tick(4)
}

func TestOrdering(t *testing.T) {
	a := New(3)
	a.Tick(1)
	b := a.Clone()
	b.Tick(2)
	if !a.Less(b) {
		t.Error("a should precede b")
	}
	if b.Less(a) {
		t.Error("b should not precede a")
	}
	if a.Concurrent(b) {
		t.Error("a,b are ordered, not concurrent")
	}

	c := New(3)
	c.Tick(3)
	if !a.Concurrent(c) || !c.Concurrent(a) {
		t.Error("a and c should be concurrent")
	}
	if !a.Equal(a.Clone()) {
		t.Error("clock should equal its clone")
	}
	if a.Less(a) {
		t.Error("Less must be irreflexive")
	}
}

func TestMerge(t *testing.T) {
	a := VC{3, 0, 1}
	b := VC{1, 2, 1}
	a.Merge(b)
	if !a.Equal(VC{3, 2, 1}) {
		t.Errorf("merge = %v", a)
	}
}

func TestMergeDifferentWidths(t *testing.T) {
	a := VC{1, 2}
	a.Merge(VC{0, 5, 9}) // extra component ignored
	if !a.Equal(VC{1, 5}) {
		t.Errorf("merge = %v", a)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(a, b, c uint16) bool {
		v := VC{uint64(a), uint64(b), uint64(c)}
		d, err := Decode(v.Encode())
		if err != nil {
			return false
		}
		return d.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeEmpty(t *testing.T) {
	v, err := Decode("")
	if err != nil || len(v) != 0 {
		t.Errorf("Decode(\"\") = %v, %v", v, err)
	}
}

func TestDecodeMalformed(t *testing.T) {
	if _, err := Decode("1,x,3"); err == nil {
		t.Error("expected error for malformed clock")
	}
}

func TestString(t *testing.T) {
	if got := (VC{1, 0, 2}).String(); got != "[1 0 2]" {
		t.Errorf("String() = %q", got)
	}
}

// Property: merge is the least upper bound — both inputs are ≤ the result.
func TestMergeIsUpperBoundQuick(t *testing.T) {
	f := func(a1, a2, b1, b2 uint8) bool {
		a := VC{uint64(a1), uint64(a2)}
		b := VC{uint64(b1), uint64(b2)}
		m := a.Clone()
		m.Merge(b)
		return a.LessEq(m) && b.LessEq(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: happened-before is transitive.
func TestLessTransitiveQuick(t *testing.T) {
	f := func(x, y, z uint8) bool {
		a := VC{uint64(x % 4), uint64(y % 4)}
		b := a.Clone()
		b.Tick(1 + int(z)%2)
		c := b.Clone()
		c.Tick(1)
		return a.Less(b) && b.Less(c) && a.Less(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLamport(t *testing.T) {
	var l Lamport
	if l.Now() != 0 {
		t.Error("zero value should read 0")
	}
	if l.Tick() != 1 || l.Tick() != 2 {
		t.Error("Tick should increment")
	}
	if got := l.Witness(10); got != 11 {
		t.Errorf("Witness(10) = %d, want 11", got)
	}
	if got := l.Witness(3); got != 12 {
		t.Errorf("Witness(3) = %d, want 12 (monotone)", got)
	}
}
