package vc

import (
	"fmt"
	"strings"
	"testing"
)

// oldEncode and oldDecode are the pre-overhaul implementations (fmt.Sprintf
// per component joined by strings.Join; strings.Split + fmt.Sscanf per
// component), kept verbatim as the benchmark baseline and as the behavioral
// reference the pinning tests compare against.

func oldEncode(v VC) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%d", x)
	}
	return strings.Join(parts, ",")
}

func oldDecode(s string) (VC, error) {
	if s == "" {
		return VC{}, nil
	}
	parts := strings.Split(s, ",")
	v := make(VC, len(parts))
	for i, p := range parts {
		var x uint64
		if _, err := fmt.Sscanf(p, "%d", &x); err != nil {
			return nil, fmt.Errorf("vc: bad component %q: %w", p, err)
		}
		v[i] = x
	}
	return v, nil
}

// TestDecodePinnedAgainstOld pins the new Decode against the old
// implementation's verdict on every input class the causal automaton can
// produce or receive: well-formed encodings (accepted, identical value) and
// the malformed frames both scanners reject. The one intentional divergence
// — the old fmt.Sscanf scanner silently tolerated trailing garbage inside a
// component ("1x" parsed as 1) — is pinned as stricter-only below.
func TestDecodePinnedAgainstOld(t *testing.T) {
	accepted := []string{
		"",
		"0",
		"1,0,2",
		"7,7,7,7,7,7,7,7",
		"18446744073709551615",         // max uint64 round-trips
		"0,18446744073709551615,12345", // mixed magnitudes
	}
	for _, in := range accepted {
		oldV, oldErr := oldDecode(in)
		newV, newErr := Decode(in)
		if oldErr != nil || newErr != nil {
			t.Errorf("Decode(%q): old err=%v new err=%v, want both nil", in, oldErr, newErr)
			continue
		}
		if !oldV.Equal(newV) || len(oldV) != len(newV) {
			t.Errorf("Decode(%q): old=%v new=%v", in, oldV, newV)
		}
	}
	rejected := []string{
		"x", "1,x,3", "1,", ",1", "1,,2", ",", "-1", "one",
		"18446744073709551616", // uint64 overflow
	}
	for _, in := range rejected {
		if _, err := oldDecode(in); err == nil {
			t.Errorf("oldDecode(%q) unexpectedly accepted (pin set wrong)", in)
		}
		if _, err := Decode(in); err == nil {
			t.Errorf("Decode(%q) accepted input the old implementation rejected", in)
		}
	}
	// Stricter-only divergence: the old scanner stopped at the first
	// non-digit and accepted the prefix; the new scanner rejects the whole
	// component. Being stricter is safe — the causal automaton treats a
	// decode error exactly like a never-deliverable frame — but it is a
	// divergence, so it is pinned explicitly.
	for _, in := range []string{"1x", "2,1x", "1 2"} {
		if _, err := oldDecode(in); err != nil {
			t.Errorf("oldDecode(%q) unexpectedly rejected (pin set wrong)", in)
		}
		if _, err := Decode(in); err == nil {
			t.Errorf("Decode(%q) should reject trailing garbage", in)
		}
	}
}

// TestEncodeMatchesOld: the new encoder emits byte-identical strings, so
// wire frames are unchanged across the overhaul.
func TestEncodeMatchesOld(t *testing.T) {
	for _, v := range []VC{{}, {0}, {1, 0, 2}, {9, 18446744073709551615, 0, 3}} {
		if got, want := v.Encode(), oldEncode(v); got != want {
			t.Errorf("Encode(%v) = %q, old = %q", v, got, want)
		}
	}
}

// clocks8 is a realistic hot-path workload: 8-process clocks with mixed
// component magnitudes, the shape every causal broadcast message carries.
var clocks8 = []VC{
	{0, 0, 0, 0, 0, 0, 0, 0},
	{1, 0, 2, 0, 17, 3, 0, 1},
	{100, 250, 99, 1024, 7, 0, 31, 12},
	{1 << 40, 3, 1 << 20, 0, 5, 77, 123456, 9},
}

// BenchmarkVCEncodeDecode measures one encode+decode round trip per op —
// the per-message cost the causal automaton pays on the wire path. The
// "old" sub-benchmark runs the pre-overhaul fmt/strings implementation,
// "new" the strconv.AppendUint + index-scanning one; `make bench-pr4`
// records both in BENCH_PR4.json.
func BenchmarkVCEncodeDecode(b *testing.B) {
	b.Run("old", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := oldEncode(clocks8[i%len(clocks8)])
			if _, err := oldDecode(s); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("new", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := clocks8[i%len(clocks8)].Encode()
			if _, err := Decode(s); err != nil {
				b.Fatal(err)
			}
		}
	})
}
