package model

import "testing"

func mkStep(i int) Step {
	return Step{Proc: ProcID(i%5 + 1), Kind: KindInternal, Msg: MsgID(i)}
}

func TestStepBufferAppendAtLen(t *testing.T) {
	var b StepBuffer
	const n = 3*chunkSize + 17 // cross several chunk boundaries
	for i := 0; i < n; i++ {
		b.Append(mkStep(i))
		if b.Len() != i+1 {
			t.Fatalf("Len = %d after %d appends", b.Len(), i+1)
		}
	}
	for _, i := range []int{0, 1, chunkSize - 1, chunkSize, 2*chunkSize + 5, n - 1} {
		if got := b.At(i); got != mkStep(i) {
			t.Errorf("At(%d) = %+v, want %+v", i, got, mkStep(i))
		}
	}
}

func TestStepBufferAtPanicsOutOfRange(t *testing.T) {
	var b StepBuffer
	b.Append(mkStep(0))
	for _, i := range []int{-1, 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d) on len-1 buffer did not panic", i)
				}
			}()
			b.At(i)
		}()
	}
}

func TestStepBufferAppendToIncremental(t *testing.T) {
	var b StepBuffer
	var dst []Step
	total := 0
	// Materialize at irregular boundaries, including mid-chunk and
	// zero-growth calls, and check the canonical slice matches throughout.
	for _, grow := range []int{0, 1, chunkSize - 1, 3, 2 * chunkSize, 0, 7} {
		for i := 0; i < grow; i++ {
			b.Append(mkStep(total + i))
		}
		total += grow
		dst = b.AppendTo(dst)
		if len(dst) != total {
			t.Fatalf("after growth to %d: len(dst) = %d", total, len(dst))
		}
		for i, s := range dst {
			if s != mkStep(i) {
				t.Fatalf("dst[%d] = %+v, want %+v", i, s, mkStep(i))
			}
		}
	}
	// Steps() is an independent exact-size materialization.
	all := b.Steps()
	if len(all) != total || cap(all) != total {
		t.Errorf("Steps(): len=%d cap=%d, want both %d", len(all), cap(all), total)
	}
}

func TestStepBufferAppendToRejectsLongerDst(t *testing.T) {
	var b StepBuffer
	b.Append(mkStep(0))
	defer func() {
		if recover() == nil {
			t.Error("AppendTo with over-long dst did not panic")
		}
	}()
	b.AppendTo(make([]Step, 2))
}
