package model

import "testing"

// BenchmarkTraceAppend compares the two ways of recording a long trace:
// the pre-overhaul representation (one []Step grown through append, each
// growth a realloc-and-copy of everything recorded so far) against the
// chunked StepBuffer, including the final contiguous materialization the
// buffer's readers pay. Run with -benchmem: the headline is allocated
// bytes per recorded step, not time.
func BenchmarkTraceAppend(b *testing.B) {
	const steps = 100_000
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var x Execution
			for j := 0; j < steps; j++ {
				x.Steps = append(x.Steps, Step{Proc: ProcID(j%5 + 1), Kind: KindInternal, Msg: MsgID(j)})
			}
			if x.Len() != steps {
				b.Fatal("bad length")
			}
		}
	})
	b.Run("chunked", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var buf StepBuffer
			for j := 0; j < steps; j++ {
				buf.Append(Step{Proc: ProcID(j%5 + 1), Kind: KindInternal, Msg: MsgID(j)})
			}
			x := Execution{Steps: buf.Steps()}
			if x.Len() != steps {
				b.Fatal("bad length")
			}
		}
	})
}
