package model

import (
	"strings"
	"testing"
	"testing/quick"
)

// buildSample returns a small execution exercising every step kind:
// p1 broadcasts m1, sends it to p2, p2 receives and delivers it, both touch
// a k-SA object, and p2 crashes at the end.
func buildSample() *Execution {
	x := NewExecution(3)
	x.Append(
		Step{Proc: 1, Kind: KindBroadcastInvoke, Msg: 1, Payload: "a"},
		Step{Proc: 1, Kind: KindSend, Peer: 2, Msg: 1, Payload: "a"},
		Step{Proc: 1, Kind: KindDeliver, Peer: 1, Msg: 1, Payload: "a"},
		Step{Proc: 1, Kind: KindBroadcastReturn, Msg: 1},
		Step{Proc: 2, Kind: KindReceive, Peer: 1, Msg: 1, Payload: "a"},
		Step{Proc: 2, Kind: KindDeliver, Peer: 1, Msg: 1, Payload: "a"},
		Step{Proc: 2, Kind: KindPropose, Obj: 1, Val: "v2"},
		Step{Proc: 2, Kind: KindDecide, Obj: 1, Val: "v2"},
		Step{Proc: 1, Kind: KindPropose, Obj: 1, Val: "v1"},
		Step{Proc: 1, Kind: KindDecide, Obj: 1, Val: "v2"},
		Step{Proc: 3, Kind: KindBroadcastInvoke, Msg: 2, Payload: "b"},
		Step{Proc: 3, Kind: KindDeliver, Peer: 3, Msg: 2, Payload: "b"},
		Step{Proc: 3, Kind: KindBroadcastReturn, Msg: 2},
		Step{Proc: 2, Kind: KindCrash},
	)
	return x
}

func TestStepString(t *testing.T) {
	tests := []struct {
		step Step
		want string
	}{
		{Step{Proc: 1, Kind: KindSend, Peer: 2, Msg: 7, Payload: "x"}, `<p1: send m7("x") to p2>`},
		{Step{Proc: 2, Kind: KindReceive, Peer: 1, Msg: 7, Payload: "x"}, `<p2: receive m7("x") from p1>`},
		{Step{Proc: 1, Kind: KindBroadcastInvoke, Msg: 3, Payload: "m"}, `<p1: B.broadcast(m3("m"))>`},
		{Step{Proc: 1, Kind: KindBroadcastReturn, Msg: 3}, `<p1: return from B.broadcast(m3)>`},
		{Step{Proc: 2, Kind: KindDeliver, Peer: 1, Msg: 3, Payload: "m"}, `<p2: B.deliver m3("m") from p1>`},
		{Step{Proc: 1, Kind: KindPropose, Obj: 4, Val: "v"}, `<p1: ksa4.propose("v")>`},
		{Step{Proc: 1, Kind: KindDecide, Obj: 4, Val: "w"}, `<p1: ksa4.decide("w")>`},
		{Step{Proc: 1, Kind: KindInternal, Note: "tick"}, `<p1: internal tick>`},
		{Step{Proc: 1, Kind: KindCrash}, `<p1: crash>`},
	}
	for _, tt := range tests {
		if got := tt.step.String(); got != tt.want {
			t.Errorf("Step.String() = %q, want %q", got, tt.want)
		}
	}
}

func TestStepKindString(t *testing.T) {
	kinds := []StepKind{KindSend, KindReceive, KindBroadcastInvoke, KindBroadcastReturn,
		KindDeliver, KindPropose, KindDecide, KindInternal, KindCrash}
	seen := make(map[string]bool)
	for _, k := range kinds {
		if !k.Valid() {
			t.Errorf("kind %d should be valid", int(k))
		}
		s := k.String()
		if s == "" || strings.HasPrefix(s, "StepKind(") {
			t.Errorf("kind %d has no name", int(k))
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
	if StepKind(0).Valid() || StepKind(99).Valid() {
		t.Error("invalid kinds reported valid")
	}
	if got := StepKind(99).String(); got != "StepKind(99)" {
		t.Errorf("StepKind(99).String() = %q", got)
	}
}

func TestProcIDString(t *testing.T) {
	if got := ProcID(3).String(); got != "p3" {
		t.Errorf("ProcID(3).String() = %q, want p3", got)
	}
	if got := NoProc.String(); got != "p?" {
		t.Errorf("NoProc.String() = %q, want p?", got)
	}
	if got := KSAID(2).String(); got != "ksa2" {
		t.Errorf("KSAID(2).String() = %q", got)
	}
	if got := NoKSA.String(); got != "ksa?" {
		t.Errorf("NoKSA.String() = %q", got)
	}
}

func TestCorrect(t *testing.T) {
	x := buildSample()
	if !x.Correct(1) {
		t.Error("p1 should be correct")
	}
	if x.Correct(2) {
		t.Error("p2 crashed, should be faulty")
	}
	cs := x.CorrectSet()
	if !cs[1] || cs[2] || !cs[3] {
		t.Errorf("CorrectSet = %v", cs)
	}
}

func TestMessagesAndOrders(t *testing.T) {
	x := buildSample()
	msgs := x.Messages()
	if len(msgs) != 2 || msgs[0] != 1 || msgs[1] != 2 {
		t.Fatalf("Messages() = %v, want [1 2]", msgs)
	}
	if got := x.DeliveryOrder(2); len(got) != 1 || got[0] != 1 {
		t.Errorf("DeliveryOrder(2) = %v", got)
	}
	if got := x.BroadcastOrder(1); len(got) != 1 || got[0] != 1 {
		t.Errorf("BroadcastOrder(1) = %v", got)
	}
	if got := x.Broadcaster(2); got != 3 {
		t.Errorf("Broadcaster(2) = %v, want p3", got)
	}
	if got := x.Broadcaster(42); got != NoProc {
		t.Errorf("Broadcaster(42) = %v, want NoProc", got)
	}
	if got := x.PayloadOf(1); got != "a" {
		t.Errorf("PayloadOf(1) = %q", got)
	}
	if got := x.PayloadOf(42); got != "" {
		t.Errorf("PayloadOf(42) = %q, want empty", got)
	}
}

func TestDecidedValues(t *testing.T) {
	x := buildSample()
	dv := x.DecidedValues()
	vals := dv[1]
	if len(vals) != 1 || vals[0] != "v2" {
		t.Errorf("DecidedValues()[1] = %v, want [v2]", vals)
	}
}

func TestRestrict(t *testing.T) {
	x := buildSample()
	r := x.Restrict(map[MsgID]bool{1: true})
	for _, s := range r.Steps {
		if s.IsBroadcastEvent() && s.Msg != 1 {
			t.Errorf("restricted execution contains broadcast event for m%d", s.Msg)
		}
	}
	// Non-broadcast steps are preserved.
	var sends, proposes int
	for _, s := range r.Steps {
		switch s.Kind {
		case KindSend:
			sends++
		case KindPropose:
			proposes++
		}
	}
	if sends != 1 || proposes != 2 {
		t.Errorf("restriction dropped non-broadcast steps: sends=%d proposes=%d", sends, proposes)
	}
	// Restriction to the full message set is the identity on broadcast events.
	all := map[MsgID]bool{1: true, 2: true}
	full := x.Restrict(all)
	if full.Len() != x.Len() {
		t.Errorf("restriction to full set changed length: %d != %d", full.Len(), x.Len())
	}
}

func TestRestrictBroadcastOnly(t *testing.T) {
	x := buildSample()
	r := x.RestrictBroadcastOnly(map[MsgID]bool{2: true})
	if r.Len() != 3 {
		t.Fatalf("expected 3 broadcast events for m2, got %d:\n%s", r.Len(), r)
	}
	for _, s := range r.Steps {
		if !s.IsBroadcastEvent() || s.Msg != 2 {
			t.Errorf("unexpected step %v", s)
		}
	}
}

func TestProjectProc(t *testing.T) {
	x := buildSample()
	p2 := x.ProjectProc(2)
	if p2.Len() != 5 {
		t.Fatalf("ProjectProc(2) has %d steps, want 5", p2.Len())
	}
	for _, s := range p2.Steps {
		if s.Proc != 2 {
			t.Errorf("projection contains step of %v", s.Proc)
		}
	}
}

func TestProjectBroadcast(t *testing.T) {
	x := buildSample()
	b := x.ProjectBroadcast()
	for _, s := range b.Steps {
		if !s.IsBroadcastEvent() {
			t.Errorf("β projection contains non-broadcast step %v", s)
		}
	}
	if b.Len() != 7 {
		t.Errorf("β projection has %d steps, want 7", b.Len())
	}
}

func TestRenameInjective(t *testing.T) {
	x := buildSample()
	y, err := x.Rename(Renaming{"a": "z"})
	if err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if got := y.PayloadOf(1); got != "z" {
		t.Errorf("renamed payload = %q, want z", got)
	}
	if got := y.PayloadOf(2); got != "b" {
		t.Errorf("unmapped payload changed: %q", got)
	}
	// Non-broadcast steps keep their payloads (the substitution is on
	// broadcast messages; the send of m1 belongs to the lower layer).
	if y.Steps[1].Payload != "a" {
		t.Errorf("send payload changed by Rename: %q", y.Steps[1].Payload)
	}
}

func TestRenameRejectsNonInjective(t *testing.T) {
	x := buildSample()
	if _, err := x.Rename(Renaming{"a": "b"}); err == nil {
		t.Error("expected injectivity error mapping a onto existing b")
	}
	if _, err := x.Rename(Renaming{"a": "c", "b": "c"}); err == nil {
		t.Error("expected injectivity error for a,b -> c")
	}
}

func TestRenamingValidate(t *testing.T) {
	r := Renaming{"a": "b", "b": "a"}
	if err := r.Validate([]Payload{"a", "b"}); err != nil {
		t.Errorf("swap should be injective: %v", err)
	}
}

func TestRenameByMsg(t *testing.T) {
	x := buildSample()
	y := x.RenameByMsg(map[MsgID]Payload{1: "solo-1"})
	if got := y.PayloadOf(1); got != "solo-1" {
		t.Errorf("RenameByMsg payload = %q", got)
	}
	if got := y.PayloadOf(2); got != "b" {
		t.Errorf("unmapped message changed: %q", got)
	}
	// Deliveries of m1 carry the new payload too.
	for _, s := range y.Steps {
		if s.Kind == KindDeliver && s.Msg == 1 && s.Payload != "solo-1" {
			t.Errorf("delivery payload not substituted: %v", s)
		}
	}
}

func TestClone(t *testing.T) {
	x := buildSample()
	c := x.Clone()
	c.Steps[0].Payload = "mutated"
	if x.Steps[0].Payload == "mutated" {
		t.Error("Clone shares step storage with the original")
	}
}

func TestExecutionString(t *testing.T) {
	x := buildSample()
	s := x.String()
	if !strings.Contains(s, "B.broadcast") || !strings.Contains(s, "crash") {
		t.Errorf("String() missing content:\n%s", s)
	}
}

// Property: Restrict then Restrict with the same set is idempotent.
func TestRestrictIdempotent(t *testing.T) {
	x := buildSample()
	keep := map[MsgID]bool{1: true}
	once := x.Restrict(keep)
	twice := once.Restrict(keep)
	if once.Len() != twice.Len() {
		t.Errorf("Restrict not idempotent: %d then %d steps", once.Len(), twice.Len())
	}
}

// Property (testing/quick): renaming by a generated injection preserves the
// step structure — kinds, processes, and message identities are unchanged.
func TestRenamePreservesStructureQuick(t *testing.T) {
	f := func(seed uint8) bool {
		x := buildSample()
		// Derive an injective renaming from the seed by suffixing.
		r := Renaming{
			"a": Payload("a" + strings.Repeat("x", int(seed%5)+1)),
			"b": Payload("b" + strings.Repeat("y", int(seed%7)+1)),
		}
		y, err := x.Rename(r)
		if err != nil {
			return false
		}
		if y.Len() != x.Len() {
			return false
		}
		for i := range x.Steps {
			a, b := x.Steps[i], y.Steps[i]
			if a.Kind != b.Kind || a.Proc != b.Proc || a.Msg != b.Msg || a.Peer != b.Peer {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the per-process projections partition the execution's steps.
func TestProjectionsPartitionQuick(t *testing.T) {
	x := buildSample()
	total := 0
	for p := 1; p <= x.N; p++ {
		total += x.ProjectProc(ProcID(p)).Len()
	}
	if total != x.Len() {
		t.Errorf("projections cover %d steps, execution has %d", total, x.Len())
	}
}

// Property: restriction and renaming commute — renaming then restricting
// equals restricting then renaming (they touch disjoint aspects of steps).
func TestRestrictRenameCommuteQuick(t *testing.T) {
	f := func(mask uint8) bool {
		x := buildSample()
		keep := map[MsgID]bool{}
		if mask&1 != 0 {
			keep[1] = true
		}
		if mask&2 != 0 {
			keep[2] = true
		}
		r := Renaming{"a": "z1", "b": "z2"}
		a, err := x.Restrict(keep).Rename(r)
		if err != nil {
			return false
		}
		b0, err := x.Rename(r)
		if err != nil {
			return false
		}
		b := b0.Restrict(keep)
		if a.Len() != b.Len() {
			return false
		}
		for i := range a.Steps {
			if a.Steps[i] != b.Steps[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ProjectBroadcast of a restriction equals RestrictBroadcastOnly.
func TestRestrictBroadcastOnlyConsistent(t *testing.T) {
	x := buildSample()
	keep := map[MsgID]bool{1: true}
	a := x.Restrict(keep).ProjectBroadcast()
	b := x.RestrictBroadcastOnly(keep)
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Steps {
		if a.Steps[i] != b.Steps[i] {
			t.Errorf("step %d differs: %v vs %v", i, a.Steps[i], b.Steps[i])
		}
	}
}

// Property: renaming with the identity map is the identity.
func TestRenameIdentity(t *testing.T) {
	x := buildSample()
	y, err := x.Rename(Renaming{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x.Steps {
		if x.Steps[i] != y.Steps[i] {
			t.Errorf("identity renaming changed step %d", i)
		}
	}
}

// Property: renaming twice by r then its inverse restores the original.
func TestRenameInvertible(t *testing.T) {
	x := buildSample()
	r := Renaming{"a": "tmp-a", "b": "tmp-b"}
	inv := Renaming{"tmp-a": "a", "tmp-b": "b"}
	y, err := x.Rename(r)
	if err != nil {
		t.Fatal(err)
	}
	z, err := y.Rename(inv)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x.Steps {
		if x.Steps[i] != z.Steps[i] {
			t.Errorf("round-trip changed step %d: %v vs %v", i, x.Steps[i], z.Steps[i])
		}
	}
}
