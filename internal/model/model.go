// Package model defines the formal objects of the crash-prone asynchronous
// message-passing model CAMP_n[H] used throughout the repository: process
// identities, messages, k-set-agreement object identities, steps, and
// executions (sequences of steps, Section 2 of the paper).
//
// The package also implements the three execution transformations on which
// the paper's proof rests:
//
//   - Restrict: the restriction of an execution onto a subset of its
//     messages (Definition 2, compositionality);
//   - Rename: the injective replacement of message contents
//     (Definition 3, content-neutrality);
//   - ProjectProc / ProjectBroadcast: per-process and broadcast-event
//     projections (used to build the executions β and γ of Definition 4).
//
// Everything here is a pure value type: executions are immutable once
// built, and every transformation returns a fresh execution.
package model

import (
	"fmt"
	"strings"
)

// ProcID identifies a process. Processes are numbered 1..n as in the paper
// (p_1, ..., p_n). The zero value is not a valid process identity.
type ProcID int

// NoProc is the absent process identity (used for steps that have no peer).
const NoProc ProcID = 0

// String returns the paper's notation for the process, e.g. "p3".
func (p ProcID) String() string {
	if p == NoProc {
		return "p?"
	}
	return fmt.Sprintf("p%d", int(p))
}

// MsgID uniquely identifies a message instance within an execution. The
// paper stipulates that "each sent message is unique" even when contents
// coincide; MsgID is that identity. The zero value denotes "no message".
type MsgID int64

// NoMsg is the absent message identity.
const NoMsg MsgID = 0

// Payload is the content of a message. Contents may repeat across distinct
// message instances. Content-neutrality (Definition 3) is expressed as an
// injective substitution on payloads.
type Payload string

// KSAID identifies a k-set-agreement object instance. The model CAMP_n[k-SA]
// gives processes access to as many instances as needed; instances are
// identified by small integers allocated by the runtime. The zero value is
// not a valid object.
type KSAID int

// NoKSA is the absent k-SA object identity.
const NoKSA KSAID = 0

// String returns a short printable form, e.g. "ksa4".
func (o KSAID) String() string {
	if o == NoKSA {
		return "ksa?"
	}
	return fmt.Sprintf("ksa%d", int(o))
}

// Value is a value proposed to or decided on a k-SA object.
type Value string

// StepKind enumerates the kinds of actions a step can carry. They mirror
// the action vocabulary of Section 2 ("Execution"): low-level send/receive,
// broadcast-abstraction events (invocation, response, delivery), high-level
// k-SA operations (propose, decide), internal computation, and crashes.
type StepKind int

// The step kinds. KindInternal covers local computation the proof never
// inspects; KindCrash marks the point after which a process takes no steps.
const (
	KindSend            StepKind = iota + 1 // <p : send m to q>
	KindReceive                             // <p : receive m from q>
	KindBroadcastInvoke                     // <p : B.broadcast(m)>
	KindBroadcastReturn                     // <p : return from B.broadcast(m)>
	KindDeliver                             // <p : B.deliver m from q>
	KindPropose                             // <p : ksa.propose(v)>
	KindDecide                              // <p : ksa.decide(w)>
	KindInternal                            // local computation
	KindCrash                               // p crashes (takes no further step)
)

var stepKindNames = map[StepKind]string{
	KindSend:            "send",
	KindReceive:         "receive",
	KindBroadcastInvoke: "broadcast",
	KindBroadcastReturn: "return-broadcast",
	KindDeliver:         "deliver",
	KindPropose:         "propose",
	KindDecide:          "decide",
	KindInternal:        "internal",
	KindCrash:           "crash",
}

// String returns the lower-case name of the kind.
func (k StepKind) String() string {
	if s, ok := stepKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("StepKind(%d)", int(k))
}

// Valid reports whether k is one of the declared kinds.
func (k StepKind) Valid() bool {
	_, ok := stepKindNames[k]
	return ok
}

// Step is one element of an execution: a pair <p_i : a> of a process and an
// action. The fields that are meaningful depend on Kind:
//
//   - KindSend:            Proc sends Msg/Payload to Peer.
//   - KindReceive:         Proc receives Msg/Payload from Peer.
//   - KindBroadcastInvoke: Proc invokes B.broadcast; Msg is the fresh
//     message instance, Payload its content.
//   - KindBroadcastReturn: Proc returns from the invocation that
//     broadcast Msg.
//   - KindDeliver:         Proc B-delivers Msg/Payload from Peer (the
//     original broadcaster).
//   - KindPropose:         Proc proposes Val to Obj.
//   - KindDecide:          Proc decides Val on Obj.
//   - KindInternal:        Note describes the local computation.
//   - KindCrash:           no other field is meaningful.
type Step struct {
	Proc    ProcID   `json:"proc"`
	Kind    StepKind `json:"kind"`
	Peer    ProcID   `json:"peer,omitempty"`
	Msg     MsgID    `json:"msg,omitempty"`
	Payload Payload  `json:"payload,omitempty"`
	Obj     KSAID    `json:"obj,omitempty"`
	Val     Value    `json:"val,omitempty"`
	Note    string   `json:"note,omitempty"`
	// Batch groups deliveries into sets for set-delivery abstractions
	// (the SCD family of Section 3.1's remark): deliveries by the same
	// process with the same positive Batch belong to one delivered set.
	// Zero means ungrouped (ordinary single-message delivery).
	Batch int64 `json:"batch,omitempty"`
}

// String renders the step in the paper's notation.
func (s Step) String() string {
	switch s.Kind {
	case KindSend:
		return fmt.Sprintf("<%v: send m%d(%q) to %v>", s.Proc, s.Msg, string(s.Payload), s.Peer)
	case KindReceive:
		return fmt.Sprintf("<%v: receive m%d(%q) from %v>", s.Proc, s.Msg, string(s.Payload), s.Peer)
	case KindBroadcastInvoke:
		return fmt.Sprintf("<%v: B.broadcast(m%d(%q))>", s.Proc, s.Msg, string(s.Payload))
	case KindBroadcastReturn:
		return fmt.Sprintf("<%v: return from B.broadcast(m%d)>", s.Proc, s.Msg)
	case KindDeliver:
		return fmt.Sprintf("<%v: B.deliver m%d(%q) from %v>", s.Proc, s.Msg, string(s.Payload), s.Peer)
	case KindPropose:
		return fmt.Sprintf("<%v: %v.propose(%q)>", s.Proc, s.Obj, string(s.Val))
	case KindDecide:
		return fmt.Sprintf("<%v: %v.decide(%q)>", s.Proc, s.Obj, string(s.Val))
	case KindInternal:
		return fmt.Sprintf("<%v: internal %s>", s.Proc, s.Note)
	case KindCrash:
		return fmt.Sprintf("<%v: crash>", s.Proc)
	default:
		return fmt.Sprintf("<%v: ?kind=%d>", s.Proc, int(s.Kind))
	}
}

// IsBroadcastEvent reports whether the step is an event of the broadcast
// abstraction interface (invocation, response, or delivery). These are the
// steps retained by the β projection of Definition 4.
func (s Step) IsBroadcastEvent() bool {
	switch s.Kind {
	case KindBroadcastInvoke, KindBroadcastReturn, KindDeliver:
		return true
	default:
		return false
	}
}

// Execution is a finite sequence of steps (Section 2). N is the number of
// processes of the system the execution belongs to; steps must only involve
// processes 1..N (well-formedness, Definition 1, first condition).
type Execution struct {
	N     int    `json:"n"`
	Steps []Step `json:"steps"`
}

// NewExecution returns an empty execution over n processes.
func NewExecution(n int) *Execution {
	return &Execution{N: n}
}

// Len returns the number of steps.
func (x *Execution) Len() int { return len(x.Steps) }

// Append adds steps at the end of the execution (the ⊕ of Algorithm 1).
func (x *Execution) Append(steps ...Step) {
	x.Steps = append(x.Steps, steps...)
}

// Clone returns a deep copy of the execution.
func (x *Execution) Clone() *Execution {
	c := &Execution{N: x.N, Steps: make([]Step, len(x.Steps))}
	copy(c.Steps, x.Steps)
	return c
}

// Correct reports whether process p is correct (non-faulty) in the
// execution, i.e. takes no crash step. Per Section 2, a process that
// crashes in a run is faulty; all others are correct.
func (x *Execution) Correct(p ProcID) bool {
	for _, s := range x.Steps {
		if s.Kind == KindCrash && s.Proc == p {
			return false
		}
	}
	return true
}

// CorrectSet returns the set of correct processes.
func (x *Execution) CorrectSet() map[ProcID]bool {
	out := make(map[ProcID]bool, x.N)
	for p := 1; p <= x.N; p++ {
		out[ProcID(p)] = true
	}
	for _, s := range x.Steps {
		if s.Kind == KindCrash {
			out[s.Proc] = false
		}
	}
	return out
}

// Messages returns the identities of all messages broadcast in the
// execution (the set M of Section 3.1), in order of first broadcast.
func (x *Execution) Messages() []MsgID {
	seen := make(map[MsgID]bool)
	var out []MsgID
	for _, s := range x.Steps {
		if s.Kind == KindBroadcastInvoke && !seen[s.Msg] {
			seen[s.Msg] = true
			out = append(out, s.Msg)
		}
	}
	return out
}

// Restrict returns the restriction of the execution onto the messages of
// keep (Definition 2). Broadcast events (invocations, responses,
// deliveries) whose message is not in keep are removed; all non-broadcast
// steps are preserved. Restricting over broadcast events only matches the
// paper's usage: compositionality constrains the broadcast abstraction's
// view of an execution, and specifications only inspect broadcast events.
func (x *Execution) Restrict(keep map[MsgID]bool) *Execution {
	out := &Execution{N: x.N, Steps: make([]Step, 0, len(x.Steps))}
	for _, s := range x.Steps {
		if s.IsBroadcastEvent() && !keep[s.Msg] {
			continue
		}
		out.Steps = append(out.Steps, s)
	}
	return out
}

// RestrictBroadcastOnly returns the restriction of the broadcast projection
// of x onto keep: only broadcast events of messages in keep survive. This
// is the composition ProjectBroadcast∘Restrict used when comparing
// broadcast-level executions.
func (x *Execution) RestrictBroadcastOnly(keep map[MsgID]bool) *Execution {
	out := &Execution{N: x.N, Steps: make([]Step, 0, len(x.Steps))}
	for _, s := range x.Steps {
		if s.IsBroadcastEvent() && keep[s.Msg] {
			out.Steps = append(out.Steps, s)
		}
	}
	return out
}

// Renaming is an injective substitution on message contents, the function r
// of Definition 3 (content-neutrality). Payloads absent from the map are
// left unchanged; the mapping including those identity pairs must remain
// injective, which Validate checks.
type Renaming map[Payload]Payload

// Validate returns an error if the renaming is not injective, taking into
// account that unmapped payloads are implicitly mapped to themselves; the
// payloads argument lists the payloads occurring in the execution the
// renaming will be applied to.
func (r Renaming) Validate(payloads []Payload) error {
	image := make(map[Payload]Payload, len(payloads))
	for _, p := range payloads {
		q, ok := r[p]
		if !ok {
			q = p
		}
		if prev, dup := image[q]; dup && prev != p {
			return fmt.Errorf("renaming not injective: %q and %q both map to %q", prev, p, q)
		}
		image[q] = p
	}
	return nil
}

// Apply returns r(p), defaulting to the identity.
func (r Renaming) Apply(p Payload) Payload {
	if q, ok := r[p]; ok {
		return q
	}
	return p
}

// Payloads returns the payloads of all messages broadcast in the execution,
// deduplicated, in order of first appearance.
func (x *Execution) Payloads() []Payload {
	seen := make(map[Payload]bool)
	var out []Payload
	for _, s := range x.Steps {
		if s.Kind == KindBroadcastInvoke && !seen[s.Payload] {
			seen[s.Payload] = true
			out = append(out, s.Payload)
		}
	}
	return out
}

// Rename returns the execution obtained by replacing every broadcast
// message content m by r(m) (Definition 3). The substitution applies to the
// payloads of broadcast events; message identities and all other steps are
// unchanged. It returns an error if r is not injective on the payloads of x.
func (x *Execution) Rename(r Renaming) (*Execution, error) {
	if err := r.Validate(x.Payloads()); err != nil {
		return nil, err
	}
	out := &Execution{N: x.N, Steps: make([]Step, len(x.Steps))}
	for i, s := range x.Steps {
		if s.IsBroadcastEvent() {
			s.Payload = r.Apply(s.Payload)
		}
		out.Steps[i] = s
	}
	return out, nil
}

// RenameByMsg returns the execution obtained by replacing the payload of
// each broadcast message instance id by subst[id] (ids absent from subst
// keep their payload). This is the per-instance form of Definition 3's
// substitution used by Lemma 9, where each of p_i's N_i messages is
// replaced by the corresponding message of the solo execution α_i. The
// resulting assignment payloads need not be injective across *instances*
// that the caller knows are distinct messages; the caller is responsible
// for injectivity at the message level (each instance is a distinct
// message, so any per-instance substitution is injective on messages).
func (x *Execution) RenameByMsg(subst map[MsgID]Payload) *Execution {
	out := &Execution{N: x.N, Steps: make([]Step, len(x.Steps))}
	for i, s := range x.Steps {
		if s.IsBroadcastEvent() {
			if p, ok := subst[s.Msg]; ok {
				s.Payload = p
			}
		}
		out.Steps[i] = s
	}
	return out
}

// ProjectProc returns the subsequence of steps taken by process p.
func (x *Execution) ProjectProc(p ProcID) *Execution {
	out := &Execution{N: x.N}
	for _, s := range x.Steps {
		if s.Proc == p {
			out.Steps = append(out.Steps, s)
		}
	}
	return out
}

// ProjectBroadcast returns the subsequence of broadcast events (the β
// construction of Definition 4: invocations of and responses from
// B.broadcast, and B-delivery events).
func (x *Execution) ProjectBroadcast() *Execution {
	out := &Execution{N: x.N}
	for _, s := range x.Steps {
		if s.IsBroadcastEvent() {
			out.Steps = append(out.Steps, s)
		}
	}
	return out
}

// DeliveryOrder returns, for process p, the sequence of message identities
// it B-delivers, in delivery order.
func (x *Execution) DeliveryOrder(p ProcID) []MsgID {
	var out []MsgID
	for _, s := range x.Steps {
		if s.Kind == KindDeliver && s.Proc == p {
			out = append(out, s.Msg)
		}
	}
	return out
}

// BroadcastOrder returns, for process p, the sequence of message
// identities it B-broadcasts, in invocation order.
func (x *Execution) BroadcastOrder(p ProcID) []MsgID {
	var out []MsgID
	for _, s := range x.Steps {
		if s.Kind == KindBroadcastInvoke && s.Proc == p {
			out = append(out, s.Msg)
		}
	}
	return out
}

// Broadcaster returns the process that broadcast message id, or NoProc if
// the message is never broadcast in the execution.
func (x *Execution) Broadcaster(id MsgID) ProcID {
	for _, s := range x.Steps {
		if s.Kind == KindBroadcastInvoke && s.Msg == id {
			return s.Proc
		}
	}
	return NoProc
}

// PayloadOf returns the content of message id as of its broadcast
// invocation, or the empty payload if the message is never broadcast.
func (x *Execution) PayloadOf(id MsgID) Payload {
	for _, s := range x.Steps {
		if s.Kind == KindBroadcastInvoke && s.Msg == id {
			return s.Payload
		}
	}
	return ""
}

// DecidedValues returns, per k-SA object, the set of decided values in
// decision order (duplicates removed).
func (x *Execution) DecidedValues() map[KSAID][]Value {
	out := make(map[KSAID][]Value)
	for _, s := range x.Steps {
		if s.Kind != KindDecide {
			continue
		}
		vals := out[s.Obj]
		dup := false
		for _, v := range vals {
			if v == s.Val {
				dup = true
				break
			}
		}
		if !dup {
			out[s.Obj] = append(vals, s.Val)
		}
	}
	return out
}

// String renders the execution one step per line.
func (x *Execution) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "execution over %d processes, %d steps\n", x.N, len(x.Steps))
	for i, s := range x.Steps {
		fmt.Fprintf(&b, "%4d  %s\n", i, s.String())
	}
	return b.String()
}
