package model

// StepBuffer accumulates the steps of a growing execution in fixed-size
// chunks. A plain []Step grows by realloc-and-copy: recording a 100k-step
// trace through append copies every step several times over and leaves a
// trail of abandoned backing arrays roughly 4× the final size. The buffer
// never moves a step once written — each chunk is allocated once and filled
// in place — so recording is one chunk allocation per chunkSize steps and
// zero copying. Materializing a contiguous []Step (for the readers that
// index executions directly) is a single exactly-sized allocation plus one
// copy, paid only when a reader actually asks.
//
// The zero value is an empty buffer ready for use. A StepBuffer is not safe
// for concurrent use; callers that share one across goroutines (the
// concurrent runtime's recorder) serialize access themselves.
type StepBuffer struct {
	// chunks are all full except the last; the invariant lets At and
	// AppendTo address step i as chunks[i/chunkSize][i%chunkSize].
	chunks [][]Step
	n      int
}

// chunkSize is the number of steps per chunk: 1024 steps ≈ 100 KiB per
// chunk, large enough to amortize allocation, small enough that short
// traces don't overcommit.
const chunkSize = 1024

// ChunkSteps exposes the chunk size so downstream encoders (the binary
// trace wire format blocks its steps identically) can align their block
// boundaries with the buffer's chunk boundaries.
const ChunkSteps = chunkSize

// Append adds one step at the end of the buffer.
func (b *StepBuffer) Append(s Step) {
	last := len(b.chunks) - 1
	if last < 0 || len(b.chunks[last]) == chunkSize {
		b.chunks = append(b.chunks, make([]Step, 0, chunkSize))
		last++
	}
	b.chunks[last] = append(b.chunks[last], s)
	b.n++
}

// Len returns the number of buffered steps.
func (b *StepBuffer) Len() int { return b.n }

// At returns step i (0-based). It panics when i is out of range, matching
// slice indexing.
func (b *StepBuffer) At(i int) Step {
	if i < 0 || i >= b.n {
		panic("model: StepBuffer index out of range")
	}
	return b.chunks[i/chunkSize][i%chunkSize]
}

// AppendTo copies the steps dst does not yet hold — those at indices
// len(dst)..Len()-1 — onto dst and returns the result. When dst lacks
// capacity it is reallocated once, exactly sized, so repeated calls against
// a growing buffer (the runtime materializes its execution at phase
// boundaries) copy each step into the canonical slice at most once per
// materialization, never through append's geometric over-allocation.
func (b *StepBuffer) AppendTo(dst []Step) []Step {
	if len(dst) > b.n {
		panic("model: StepBuffer.AppendTo on a destination longer than the buffer")
	}
	if cap(dst) < b.n {
		grown := make([]Step, len(dst), b.n)
		copy(grown, dst)
		dst = grown
	}
	for len(dst) < b.n {
		i := len(dst)
		dst = append(dst, b.chunks[i/chunkSize][i%chunkSize:]...)
	}
	return dst
}

// Steps materializes the whole buffer as a fresh, exactly-sized slice.
func (b *StepBuffer) Steps() []Step {
	return b.AppendTo(make([]Step, 0, b.n))
}
