package ksa

import (
	"nobroadcast/internal/model"
	"nobroadcast/internal/obs"
	"nobroadcast/internal/sched"
)

// InstrumentedOracle wraps any k-SA oracle with observability: it counts
// proposals and decisions, counts adoptions (decisions that differ from
// the proposal — the proposer was forced onto an already-decided value),
// and emits one structured event per decision. It changes no decision
// values, so wrapping is behaviour-preserving.
type InstrumentedOracle struct {
	inner     sched.Oracle
	reg       *obs.Registry
	proposals *obs.Counter
	decisions *obs.Counter
	adoptions *obs.Counter
}

var _ sched.Oracle = (*InstrumentedOracle)(nil)

// Instrument wraps inner with counters registered under ksa.* names.
// With a nil registry it returns inner unchanged (zero overhead).
func Instrument(inner sched.Oracle, reg *obs.Registry) sched.Oracle {
	if reg == nil {
		return inner
	}
	return &InstrumentedOracle{
		inner:     inner,
		reg:       reg,
		proposals: reg.Counter("ksa.proposals"),
		decisions: reg.Counter("ksa.decisions"),
		adoptions: reg.Counter("ksa.adoptions"),
	}
}

// Propose implements sched.Oracle.
func (o *InstrumentedOracle) Propose(obj model.KSAID, proc model.ProcID, v model.Value) model.Value {
	o.proposals.Inc()
	out := o.inner.Propose(obj, proc, v)
	o.decisions.Inc()
	if out != v {
		o.adoptions.Inc()
	}
	o.reg.Emit("ksa.decision",
		obs.Int("obj", int64(obj)), obs.Int("proc", int64(proc)),
		obs.Str("proposed", string(v)), obs.Str("decided", string(out)))
	return out
}
