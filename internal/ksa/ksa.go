// Package ksa provides k-set-agreement building blocks beyond the default
// oracle of internal/sched: alternative oracle behaviours used to probe
// algorithms (adversarial value choice, forced adoption), the trivial
// boundary cases of Section 4 (k = n needs no communication; k = 1 is
// consensus), and analysis helpers over decision tables.
//
// The paper's Theorem 1 concerns 1 < k < n exactly because both boundaries
// collapse: n-set agreement is solved without communication (every process
// decides its own value — equivalent to Send-To-All broadcast), and
// consensus is characterized by Total Order broadcast [7]. This package
// makes both boundary arguments executable.
package ksa

import (
	"fmt"
	"sort"

	"nobroadcast/internal/model"
	"nobroadcast/internal/sched"
)

// MaxDistinctOracle is a k-SA oracle that adversarially maximizes
// disagreement: it hands out distinct decided values for as long as
// k-SA-Agreement permits, then adopts round-robin among the decided ones.
// It is the harshest legal oracle for algorithms built on k-SA.
type MaxDistinctOracle struct {
	k       int
	decided map[model.KSAID][]model.Value
	next    map[model.KSAID]int
}

var _ sched.Oracle = (*MaxDistinctOracle)(nil)

// NewMaxDistinctOracle returns the oracle for agreement degree k.
func NewMaxDistinctOracle(k int) *MaxDistinctOracle {
	return &MaxDistinctOracle{
		k:       k,
		decided: make(map[model.KSAID][]model.Value),
		next:    make(map[model.KSAID]int),
	}
}

// Propose implements sched.Oracle.
func (o *MaxDistinctOracle) Propose(obj model.KSAID, proc model.ProcID, v model.Value) model.Value {
	vals := o.decided[obj]
	fresh := true
	for _, d := range vals {
		if d == v {
			fresh = false
			break
		}
	}
	if fresh && len(vals) < o.k {
		o.decided[obj] = append(vals, v)
		return v
	}
	if len(vals) == 0 {
		// v was not fresh yet nothing is decided: impossible; decide v.
		o.decided[obj] = []model.Value{v}
		return v
	}
	i := o.next[obj] % len(vals)
	o.next[obj]++
	return vals[i]
}

// ConsensusOracle is the k = 1 oracle: every proposer adopts the first
// proposed value. It is NewFreeOracle(1) under a sharper name.
func ConsensusOracle() sched.Oracle {
	return sched.NewFreeOracle(1)
}

// SingleValueOracle always decides the fixed value, regardless of
// proposals. It violates k-SA-Validity unless the value is proposed, so it
// exists for negative testing of the specification checkers.
type SingleValueOracle struct {
	Value model.Value
}

var _ sched.Oracle = SingleValueOracle{}

// Propose implements sched.Oracle.
func (o SingleValueOracle) Propose(model.KSAID, model.ProcID, model.Value) model.Value {
	return o.Value
}

// TrivialNSA is the k = n boundary of Section 4: n-set agreement is solved
// with no communication at all — every process decides its own proposal.
// As an App it never broadcasts anything.
type TrivialNSA struct{}

var _ sched.App = TrivialNSA{}

// NewTrivialNSA constructs the app for one process.
func NewTrivialNSA(model.ProcID) sched.App { return TrivialNSA{} }

// Init implements sched.App: decide immediately.
func (TrivialNSA) Init(env sched.AppEnv, input model.Value) {
	env.Decide(input)
}

// OnDeliver implements sched.App.
func (TrivialNSA) OnDeliver(sched.AppEnv, model.ProcID, model.MsgID, model.Payload) {}

// OnReturn implements sched.App.
func (TrivialNSA) OnReturn(sched.AppEnv, model.MsgID) {}

// DecisionStats summarizes the decisions on one object.
type DecisionStats struct {
	Obj      model.KSAID
	Deciders int
	Distinct []model.Value
}

// Analyze aggregates per-object decision statistics from a decision table
// (proc -> value per object), sorted by object id.
func Analyze(decisions map[model.KSAID]map[model.ProcID]model.Value) []DecisionStats {
	out := make([]DecisionStats, 0, len(decisions))
	for obj, m := range decisions {
		set := make(map[model.Value]bool, len(m))
		for _, v := range m {
			set[v] = true
		}
		distinct := make([]model.Value, 0, len(set))
		for v := range set {
			distinct = append(distinct, v)
		}
		sort.Slice(distinct, func(i, j int) bool { return distinct[i] < distinct[j] })
		out = append(out, DecisionStats{Obj: obj, Deciders: len(m), Distinct: distinct})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Obj < out[j].Obj })
	return out
}

// String renders the stats compactly.
func (s DecisionStats) String() string {
	return fmt.Sprintf("%v: %d decider(s), %d distinct value(s)", s.Obj, s.Deciders, len(s.Distinct))
}
