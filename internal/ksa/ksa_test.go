package ksa_test

import (
	"fmt"
	"strings"
	"testing"

	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/ksa"
	"nobroadcast/internal/model"
	"nobroadcast/internal/obs"
	"nobroadcast/internal/sched"
	"nobroadcast/internal/spec"
	"nobroadcast/internal/trace"
)

func TestMaxDistinctOracleAgreement(t *testing.T) {
	o := ksa.NewMaxDistinctOracle(2)
	if got := o.Propose(1, 1, "a"); got != "a" {
		t.Errorf("first = %q", got)
	}
	if got := o.Propose(1, 2, "b"); got != "b" {
		t.Errorf("second = %q", got)
	}
	// Third distinct proposal must adopt; round-robin over {a, b}.
	third := o.Propose(1, 3, "c")
	fourth := o.Propose(1, 4, "d")
	if third == "c" || fourth == "d" {
		t.Errorf("adoption failed: %q %q", third, fourth)
	}
	if third == fourth {
		t.Errorf("round-robin should alternate, got %q twice", third)
	}
	// Re-proposing a decided value keeps it fresh=false but legal.
	if got := o.Propose(2, 1, "x"); got != "x" {
		t.Errorf("fresh object: %q", got)
	}
}

func TestMaxDistinctOracleSatisfiesKSASpec(t *testing.T) {
	// Drive the oracle through a synthetic trace and check the k-SA spec.
	o := ksa.NewMaxDistinctOracle(3)
	x := model.NewExecution(6)
	for p := 1; p <= 6; p++ {
		v := model.Value(fmt.Sprintf("v%d", p))
		w := o.Propose(7, model.ProcID(p), v)
		x.Append(
			model.Step{Proc: model.ProcID(p), Kind: model.KindPropose, Obj: 7, Val: v},
			model.Step{Proc: model.ProcID(p), Kind: model.KindDecide, Obj: 7, Val: w},
		)
	}
	if v := spec.KSA(3).Check(&trace.Trace{X: x, Complete: true}); v != nil {
		t.Errorf("MaxDistinctOracle violated 3-SA: %s", v)
	}
}

func TestConsensusOracle(t *testing.T) {
	o := ksa.ConsensusOracle()
	if got := o.Propose(1, 1, "first"); got != "first" {
		t.Errorf("got %q", got)
	}
	if got := o.Propose(1, 2, "second"); got != "first" {
		t.Errorf("consensus should adopt the first value, got %q", got)
	}
}

func TestSingleValueOracleViolatesValidity(t *testing.T) {
	// The spec checker must catch the illegal oracle — negative testing
	// of the checker itself.
	o := ksa.SingleValueOracle{Value: "evil"}
	x := model.NewExecution(1)
	x.Append(
		model.Step{Proc: 1, Kind: model.KindPropose, Obj: 1, Val: "good"},
		model.Step{Proc: 1, Kind: model.KindDecide, Obj: 1, Val: o.Propose(1, 1, "good")},
	)
	v := spec.KSA(1).Check(trace.New(x))
	if v == nil || v.Property != "k-SA-Validity" {
		t.Errorf("expected k-SA-Validity violation, got %v", v)
	}
}

// TestNSATrivial (experiment E8): for k = n, set agreement needs no
// communication — the trivial decide-own-value app satisfies n-SA and
// sends nothing.
func TestNSATrivial(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		inputs := make([]model.Value, n)
		for i := range inputs {
			inputs[i] = model.Value(fmt.Sprintf("v%d", i+1))
		}
		rt, err := sched.New(sched.Config{
			N:            n,
			NewAutomaton: broadcast.NewSendToAll,
			NewApp:       ksa.NewTrivialNSA,
			Inputs:       inputs,
		})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := rt.RunFair(sched.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !tr.Complete {
			t.Fatalf("n=%d: incomplete", n)
		}
		if v := spec.KSA(n).Check(tr); v != nil {
			t.Errorf("n=%d: %s", n, v)
		}
		ix := trace.BuildIndex(tr)
		if got := len(ix.Decisions[sched.DefaultAppObject]); got != n {
			t.Errorf("n=%d: %d deciders", n, got)
		}
		if got := len(ix.DistinctDecisions(sched.DefaultAppObject)); got != n {
			t.Errorf("n=%d: %d distinct (all inputs distinct, all decided own)", n, got)
		}
		for _, s := range tr.X.Steps {
			if s.Kind == model.KindSend {
				t.Fatalf("n=%d: trivial n-SA sent a message", n)
			}
		}
	}
}

// TestNSATrivialWithMaxCrashes: the trivial solver is wait-free — k = n
// holds with n-1 initial crashes too.
func TestNSATrivialWithMaxCrashes(t *testing.T) {
	const n = 4
	rt, err := sched.New(sched.Config{
		N:            n,
		NewAutomaton: broadcast.NewSendToAll,
		NewApp:       ksa.NewTrivialNSA,
		Inputs:       []model.Value{"a", "b", "c", "d"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for p := 2; p <= n; p++ {
		if err := rt.Crash(model.ProcID(p)); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := rt.RunFair(sched.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v := spec.KSA(n).Check(tr); v != nil {
		t.Error(v)
	}
}

// TestFirstKUnderMaxDistinctOracle: the First-k solver keeps its k-SA
// guarantee even against the harshest legal oracle.
func TestFirstKUnderMaxDistinctOracle(t *testing.T) {
	c, err := broadcast.Lookup("first-k")
	if err != nil {
		t.Fatal(err)
	}
	sawDisagreement := false
	for seed := uint64(1); seed <= 8; seed++ {
		rt, err := sched.New(sched.Config{
			N:            5,
			NewAutomaton: c.NewAutomaton,
			Oracle:       ksa.NewMaxDistinctOracle(2),
			NewApp:       broadcast.NewFirstDecider,
			Inputs:       []model.Value{"v1", "v2", "v3", "v4", "v5"},
		})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := rt.RunRandom(sched.RunOptions{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if v := spec.KSA(2).Check(tr); v != nil {
			t.Errorf("seed %d: %s", seed, v)
		}
		ix := trace.BuildIndex(tr)
		got := len(ix.DistinctDecisions(sched.DefaultAppObject))
		if got > 2 {
			t.Errorf("seed %d: %d distinct decisions exceed k=2", seed, got)
		}
		if got == 2 {
			sawDisagreement = true
		}
	}
	// The oracle cannot invent values nobody proposed (a schedule where
	// every process's first candidate coincides yields one decision), but
	// across seeds it must realize the full disagreement at least once.
	if !sawDisagreement {
		t.Error("MaxDistinctOracle never realized 2 distinct decisions across 8 seeds")
	}
}

func TestAnalyze(t *testing.T) {
	stats := ksa.Analyze(map[model.KSAID]map[model.ProcID]model.Value{
		2: {1: "a", 2: "b", 3: "a"},
		1: {1: "x"},
	})
	if len(stats) != 2 {
		t.Fatalf("stats: %v", stats)
	}
	if stats[0].Obj != 1 || stats[1].Obj != 2 {
		t.Errorf("not sorted by object: %v", stats)
	}
	if stats[1].Deciders != 3 || len(stats[1].Distinct) != 2 {
		t.Errorf("stats[1] = %+v", stats[1])
	}
	if s := stats[1].String(); !strings.Contains(s, "3 decider(s)") || !strings.Contains(s, "2 distinct") {
		t.Errorf("String = %q", s)
	}
}

// TestInstrumentedOracle: the wrapper preserves decisions exactly and
// counts proposals/decisions/adoptions; a nil registry is a pass-through.
func TestInstrumentedOracle(t *testing.T) {
	if got := ksa.Instrument(sched.NewFreeOracle(1), nil); got == nil {
		t.Fatal("nil-registry Instrument returned nil")
	} else if _, wrapped := got.(*ksa.InstrumentedOracle); wrapped {
		t.Error("nil-registry Instrument should return the inner oracle unchanged")
	}

	reg := obs.New()
	plain := sched.NewFreeOracle(1)
	inst := ksa.Instrument(sched.NewFreeOracle(1), reg)
	props := []struct {
		proc model.ProcID
		v    model.Value
	}{{1, "a"}, {2, "b"}, {3, "a"}}
	for _, p := range props {
		want := plain.Propose(1, p.proc, p.v)
		got := inst.Propose(1, p.proc, p.v)
		if got != want {
			t.Errorf("instrumented decision %q differs from plain %q", got, want)
		}
	}
	if n := reg.Counter("ksa.proposals").Value(); n != 3 {
		t.Errorf("proposals = %d, want 3", n)
	}
	if n := reg.Counter("ksa.decisions").Value(); n != 3 {
		t.Errorf("decisions = %d, want 3", n)
	}
	// Consensus (k=1) on "a" forces p2's "b" to adopt: exactly 1 adoption.
	if n := reg.Counter("ksa.adoptions").Value(); n != 1 {
		t.Errorf("adoptions = %d, want 1", n)
	}
}
