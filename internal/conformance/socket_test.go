package conformance

import (
	"testing"
	"time"

	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/net"
	"nobroadcast/internal/workload"
)

// TestSocketCorpusVerdictEquivalence runs the socket verdict-equivalence
// corpus: every registered candidate's 3-process cell, deterministic
// runtime vs TCP cluster. The assertion is the transport contract —
// same spec verdicts (modulo the sanctioned ScheduleSensitive
// asymmetry) and same per-process delivery sets.
func TestSocketCorpusVerdictEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("socket corpus spins a TCP cluster per candidate")
	}
	for _, cfg := range SocketCorpus(0xC0FFEE) {
		cfg := cfg
		t.Run(cfg.Candidate.Name, func(t *testing.T) {
			t.Parallel()
			res, err := CheckSockets(cfg)
			if err != nil {
				t.Fatalf("socket conformance: %v", err)
			}
			if !res.VerdictsAgree && !res.CounterexampleFound {
				t.Errorf("verdicts diverge: sched=%v socket=%v", res.Sched.Verdict, res.Socket.Verdict)
			}
		})
	}
}

// TestSocketConformanceUnderFaults is the corpus's fault-plan cell:
// seeded message loss on the socket side only. Safety verdicts must
// still agree — drops never excuse a mis-ordered or duplicated
// delivery — while liveness is vacuous on the non-converged trace.
func TestSocketConformanceUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("socket fault cell spins a TCP cluster")
	}
	cand, err := broadcast.Lookup("send-to-all")
	if err != nil {
		t.Fatal(err)
	}
	res, err := CheckSockets(SocketConfig{Config: Config{
		Candidate:   cand,
		N:           3,
		K:           1,
		Seed:        99,
		Faults:      &net.FaultPlan{Drop: 0.4},
		Workload:    workload.Config{Kind: workload.Uniform, Messages: 6, Seed: 99},
		WaitTimeout: 3 * time.Second,
	}})
	if err != nil {
		t.Fatalf("fault cell diverged: %v", err)
	}
	if res.Sched.Verdict != nil {
		t.Errorf("fault-free deterministic side rejected: %v", res.Sched.Verdict)
	}
	if res.Socket.Verdict != nil {
		t.Errorf("drops must not produce a safety violation, got: %v", res.Socket.Verdict)
	}
}

// TestSocketDeterministicOrder pins the strict sequence comparison on a
// deterministic-order candidate: a single broadcaster under FIFO must
// deliver identically on both transports, byte for byte.
func TestSocketDeterministicOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("socket run spins a TCP cluster")
	}
	cand, err := broadcast.Lookup("fifo")
	if err != nil {
		t.Fatal(err)
	}
	res, err := CheckSockets(SocketConfig{Config: Config{
		Candidate: cand,
		N:         3,
		K:         1,
		Seed:      7,
		Workload:  workload.Config{Kind: workload.Single, Messages: 6, Seed: 7},
	}})
	if err != nil {
		t.Fatalf("socket conformance: %v", err)
	}
	if !res.DeterministicOrder {
		t.Fatal("single-broadcaster FIFO cell should assert strict order")
	}
	if !res.DeliveriesAgree {
		t.Error("per-process delivery sequences diverge between transports")
	}
}

// TestSocketRebroadcastConformance runs the reliable-broadcast
// candidate in flood mode: hash-dedup rebroadcast must not change the
// verdict or the delivery sets.
func TestSocketRebroadcastConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("socket run spins a TCP cluster")
	}
	cand, err := broadcast.Lookup("reliable")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CheckSockets(SocketConfig{
		Config: Config{
			Candidate: cand,
			N:         3,
			K:         1,
			Seed:      21,
			Workload:  workload.Config{Kind: workload.Uniform, Messages: 6, Seed: 21},
		},
		Rebroadcast: true,
	}); err != nil {
		t.Fatalf("rebroadcast conformance: %v", err)
	}
}
