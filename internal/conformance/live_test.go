package conformance_test

import (
	"testing"

	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/conformance"
	"nobroadcast/internal/workload"
)

// TestLiveVerdictMatchesBatchOnCorpus: across the candidate corpus and
// several workload shapes, the verdict the candidate spec's incremental
// checker latches while the concurrent run executes agrees (on
// admissibility) with the post-hoc batch check of the recorded trace.
// This is the conformance-level differential for the online checkers: the
// same linearization judged two ways.
func TestLiveVerdictMatchesBatchOnCorpus(t *testing.T) {
	kinds := []workload.Kind{workload.Uniform, workload.Single}
	for _, cand := range broadcast.AllCandidates() {
		cand := cand
		t.Run(cand.Name, func(t *testing.T) {
			t.Parallel()
			for _, kind := range kinds {
				res, err := conformance.Run(conformance.Config{
					Candidate: cand,
					N:         3,
					K:         2,
					Workload:  workload.Config{Kind: kind, Messages: 6, Seed: 23},
					Seed:      23,
				})
				if err != nil {
					t.Fatal(err)
				}
				if !res.LiveAgrees {
					t.Errorf("workload %v: live and batch verdicts diverge: live=%v batch=%v",
						kind, res.NetLive, res.Net.Verdict)
				}
			}
		})
	}
}
