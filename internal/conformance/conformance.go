// Package conformance differentially checks the repository's two runtimes
// against each other. DESIGN §4 claims "two runtimes, one automaton model":
// an algorithm verified on the deterministic step-driven runtime
// (internal/sched) runs unchanged on the concurrent goroutine runtime
// (internal/net). This package turns that claim into a tested invariant:
// it runs the same broadcast automaton family under the same workload
// script on both runtimes, projects both recorded traces to per-process
// broadcast-event sequences, and asserts
//
//   - identical specification verdicts (the candidate's own spec admits
//     both traces, or rejects both for the same property) — with one
//     sanctioned asymmetry: for candidates marked ScheduleSensitive (the
//     paper's doomed attempts, e.g. kbo) a concurrent-side violation
//     under a deterministic-side pass is a found counterexample schedule,
//     the expected refutation, not a divergence; and
//   - identical per-process delivery sequences, on fault-free runs of
//     candidates whose delivery order is deterministic (single
//     broadcaster, FIFO-or-stronger ordering).
//
// Message identities are runtime-specific, so cross-runtime comparison
// uses the identity-erased projections of internal/trace (events keyed by
// origin and content; workload payloads are unique per message).
//
// A net.FaultPlan may be applied to the concurrent side only, in which
// case the harness shows which specification clauses survive the model
// violation: safety must still hold (drops and duplicates never excuse a
// mis-ordered or duplicated delivery), while liveness is vacuous on the
// now-incomplete trace.
package conformance

import (
	"fmt"
	"time"

	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/model"
	"nobroadcast/internal/net"
	"nobroadcast/internal/sched"
	"nobroadcast/internal/spec"
	"nobroadcast/internal/trace"
	"nobroadcast/internal/workload"
)

// Config parameterizes one differential run.
type Config struct {
	// Candidate is the broadcast abstraction under test. Required.
	Candidate broadcast.Candidate
	// N is the number of processes; K the workload's agreement degree.
	N, K int
	// Requests is the workload script: the broadcast requests submitted,
	// in order, to both runtimes. When empty it is generated from
	// Workload.
	Requests []sched.BroadcastReq
	// Workload generates Requests when none are given (its N is forced to
	// Config.N).
	Workload workload.Config
	// Seed feeds the concurrent runtime's delay generator and fault plan.
	Seed uint64
	// MaxDelay is the concurrent runtime's transit-delay bound (default
	// 100µs; enough to exercise reordering without slowing the run).
	MaxDelay time.Duration
	// Faults, if set, is applied to the concurrent runtime only.
	Faults *net.FaultPlan
	// WaitTimeout bounds the concurrent side's convergence wait (default
	// 10s).
	WaitTimeout time.Duration
}

// Side is one runtime's recorded half of a differential run.
type Side struct {
	// Trace is the recorded execution.
	Trace *trace.Trace
	// Verdict is the candidate specification's judgment of Trace (nil =
	// admissible).
	Verdict *spec.Violation
	// Deliveries is the identity-erased per-process delivery sequence.
	Deliveries map[model.ProcID][]trace.DeliveryEvent
}

// Result is the outcome of one differential run.
type Result struct {
	Sched, Net Side
	// VerdictsAgree reports that both sides are admissible, or both are
	// rejected for the same property.
	VerdictsAgree bool
	// CounterexampleFound reports the one sanctioned verdict asymmetry:
	// the deterministic fair schedule passed while the concurrent runtime
	// violated the spec, on a candidate marked ScheduleSensitive (a
	// doomed attempt). The concurrent runtime found a refuting schedule —
	// the paper's expected outcome — so Check does not treat it as a
	// divergence.
	CounterexampleFound bool
	// DeliveriesAgree reports that every process delivered the identical
	// sequence of (origin, content) pairs on both runtimes.
	DeliveriesAgree bool
	// DeliverySetsAgree reports the weaker set-equality: every process
	// delivered the same multiset of messages on both runtimes, in some
	// order.
	DeliverySetsAgree bool
	// DeterministicOrder reports whether the strict sequence check
	// applies: fault-free, single broadcaster, and a candidate with
	// deterministic delivery order.
	DeterministicOrder bool
	// NetLive is the verdict the candidate spec's incremental checker
	// latched while the concurrent run was still in flight (the same
	// spec.Monitor the recorder feeds under its mutex), with liveness
	// clauses evaluated against the run's actual convergence status.
	NetLive *spec.Violation
	// LiveAgrees reports that the live verdict and the post-hoc batch
	// verdict of the concurrent trace agree on admissibility. Only
	// nil-ness is compared: a composite spec's batch check blames the
	// first violated member in declaration order while the live monitor
	// blames the first in time order, so Property may legitimately
	// differ; admissibility never does.
	LiveAgrees bool
	// NetComplete reports that the concurrent side converged: every
	// broadcast returned and every process delivered the full script.
	NetComplete bool
	// NetStats is the concurrent network's final counter snapshot
	// (fault-injection experiments read the net.faults.* counts here).
	NetStats net.StatsSnapshot
}

func (cfg *Config) defaults() error {
	if cfg.Candidate.NewAutomaton == nil {
		return fmt.Errorf("conformance: Candidate is required")
	}
	if cfg.N < 1 {
		return fmt.Errorf("conformance: N must be positive, got %d", cfg.N)
	}
	if cfg.K < 1 {
		cfg.K = 1
	}
	if cfg.MaxDelay == 0 {
		cfg.MaxDelay = 100 * time.Microsecond
	}
	if cfg.WaitTimeout == 0 {
		cfg.WaitTimeout = 10 * time.Second
	}
	if len(cfg.Requests) == 0 {
		w := cfg.Workload
		w.N = cfg.N
		if w.Messages == 0 {
			w.Messages = 3 * cfg.N
		}
		reqs, err := workload.Generate(w)
		if err != nil {
			return err
		}
		cfg.Requests = reqs
	}
	return nil
}

// oracleDegree resolves the candidate's oracle need against the workload's
// k (the same rule the cmd tools apply).
func oracleDegree(c broadcast.Candidate, k int) int {
	switch c.OracleK {
	case 0:
		return 1
	case -1:
		return k
	default:
		return c.OracleK
	}
}

// singleBroadcaster reports whether every request names the same process.
func singleBroadcaster(reqs []sched.BroadcastReq) bool {
	for _, r := range reqs[1:] {
		if r.Proc != reqs[0].Proc {
			return false
		}
	}
	return len(reqs) > 0
}

// runSched executes the script on the deterministic runtime under the
// fair scheduler and returns its trace.
func runSched(cfg *Config) (*trace.Trace, error) {
	rt, err := sched.New(sched.Config{
		N:            cfg.N,
		NewAutomaton: cfg.Candidate.NewAutomaton,
		Oracle:       cfg.Candidate.OracleFor(cfg.K),
	})
	if err != nil {
		return nil, err
	}
	tr, err := rt.RunFair(sched.RunOptions{Broadcasts: cfg.Requests})
	if err != nil {
		return nil, err
	}
	if !tr.Complete {
		return nil, fmt.Errorf("conformance: deterministic run did not quiesce (%d steps)", tr.X.Len())
	}
	return tr, nil
}

// runNet executes the script on the concurrent runtime and returns its
// trace, convergence status, live verdict, and counter snapshot. The
// candidate's own spec runs incrementally inside the recorder while the
// run is in flight; its latched verdict is the differential counterpart
// to the post-hoc batch check. Submissions respect well-formedness: a
// process's next invocation waits for the previous one to return (mutual
// broadcast, for instance, returns only after a quorum of echoes).
func runNet(cfg *Config, sp spec.Spec) (*trace.Trace, bool, *spec.Violation, net.StatsSnapshot, error) {
	nw, err := net.New(net.Config{
		N:            cfg.N,
		NewAutomaton: cfg.Candidate.NewAutomaton,
		K:            oracleDegree(cfg.Candidate, cfg.K),
		MaxDelay:     cfg.MaxDelay,
		Seed:         cfg.Seed,
		Faults:       cfg.Faults,
		RecordTrace:  true,
		LiveSpecs:    []spec.Spec{sp},
	})
	if err != nil {
		return nil, false, nil, net.StatsSnapshot{}, err
	}
	defer nw.Stop()
	submitted := make(map[model.ProcID]int64)
	for _, req := range cfg.Requests {
		p := req.Proc
		if !nw.WaitUntil(func() bool { return nw.Returned(p) >= submitted[p] }, cfg.WaitTimeout) {
			return nil, false, nil, nw.StatsSnapshot(), fmt.Errorf("conformance: %v's B.broadcast never returned (%d/%d)", p, nw.Returned(p), submitted[p])
		}
		if _, err := nw.Broadcast(p, req.Payload); err != nil {
			return nil, false, nil, nw.StatsSnapshot(), err
		}
		submitted[p]++
	}
	want := int64(len(cfg.Requests))
	complete := nw.WaitUntil(func() bool {
		for p := 1; p <= cfg.N; p++ {
			if nw.Delivered(model.ProcID(p)) < want {
				return false
			}
		}
		for p, n := range submitted {
			if nw.Returned(p) < n {
				return false
			}
		}
		return true
	}, cfg.WaitTimeout)
	nw.Stop()
	tr := nw.Trace()
	tr.Complete = complete
	var live *spec.Violation
	for _, sv := range nw.FinishLive(complete) {
		if sv.Spec == sp.Name() {
			live = sv.Violation
		}
	}
	return tr, complete, live, nw.StatsSnapshot(), nil
}

func sameVerdict(a, b *spec.Violation) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || a.Property == b.Property
}

func sameSequences(a, b map[model.ProcID][]trace.DeliveryEvent, n int) bool {
	for p := 1; p <= n; p++ {
		da, db := a[model.ProcID(p)], b[model.ProcID(p)]
		if len(da) != len(db) {
			return false
		}
		for i := range da {
			if da[i] != db[i] {
				return false
			}
		}
	}
	return true
}

func sameSets(a, b map[model.ProcID][]trace.DeliveryEvent, n int) bool {
	for p := 1; p <= n; p++ {
		da, db := a[model.ProcID(p)], b[model.ProcID(p)]
		if len(da) != len(db) {
			return false
		}
		count := make(map[trace.DeliveryEvent]int, len(da))
		for _, d := range da {
			count[d]++
		}
		for _, d := range db {
			count[d]--
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
	}
	return true
}

// Run executes the script on both runtimes and compares the projections.
// It returns an error only when a run itself fails; disagreements are
// reported in the Result (use Check for a pass/fail answer).
func Run(cfg Config) (*Result, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	schedTr, err := runSched(&cfg)
	if err != nil {
		return nil, err
	}
	sp := cfg.Candidate.Spec(cfg.K)
	netTr, complete, live, stats, err := runNet(&cfg, sp)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Sched: Side{Trace: schedTr, Verdict: sp.Check(schedTr), Deliveries: trace.ProjectDeliveries(schedTr)},
		Net:   Side{Trace: netTr, Verdict: sp.Check(netTr), Deliveries: trace.ProjectDeliveries(netTr)},
		DeterministicOrder: cfg.Faults == nil && cfg.Candidate.DeterministicOrder &&
			singleBroadcaster(cfg.Requests),
		NetLive:     live,
		NetComplete: complete,
		NetStats:    stats,
	}
	res.VerdictsAgree = sameVerdict(res.Sched.Verdict, res.Net.Verdict)
	res.LiveAgrees = (res.NetLive == nil) == (res.Net.Verdict == nil)
	res.CounterexampleFound = cfg.Candidate.ScheduleSensitive &&
		res.Sched.Verdict == nil && res.Net.Verdict != nil
	res.DeliveriesAgree = sameSequences(res.Sched.Deliveries, res.Net.Deliveries, cfg.N)
	res.DeliverySetsAgree = sameSets(res.Sched.Deliveries, res.Net.Deliveries, cfg.N)
	return res, nil
}

// Check runs the differential comparison and returns a descriptive error
// on any divergence: disagreeing verdicts, a fault-free concurrent run
// that failed to converge or delivered different message sets, or — for
// deterministic-order cases — different delivery sequences.
func Check(cfg Config) (*Result, error) {
	res, err := Run(cfg)
	if err != nil {
		return nil, err
	}
	if !res.VerdictsAgree && !res.CounterexampleFound {
		return res, fmt.Errorf("conformance: %s verdicts diverge: sched=%v net=%v",
			cfg.Candidate.Name, res.Sched.Verdict, res.Net.Verdict)
	}
	if !res.LiveAgrees {
		return res, fmt.Errorf("conformance: %s live and batch verdicts diverge on the concurrent trace: live=%v batch=%v",
			cfg.Candidate.Name, res.NetLive, res.Net.Verdict)
	}
	if cfg.Faults == nil {
		if !res.NetComplete {
			return res, fmt.Errorf("conformance: %s fault-free concurrent run did not converge", cfg.Candidate.Name)
		}
		if !res.DeliverySetsAgree {
			return res, fmt.Errorf("conformance: %s per-process delivery sets diverge across runtimes", cfg.Candidate.Name)
		}
	}
	if res.DeterministicOrder && !res.DeliveriesAgree {
		return res, fmt.Errorf("conformance: %s per-process delivery sequences diverge on a deterministic-order run", cfg.Candidate.Name)
	}
	return res, nil
}
