package conformance_test

import (
	"testing"
	"time"

	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/conformance"
	"nobroadcast/internal/net"
	"nobroadcast/internal/workload"
)

// TestAllCandidatesConform is the headline differential check: every
// registered broadcast abstraction, run under the same workload script on
// the deterministic runtime and the concurrent runtime, produces the same
// specification verdict, converges on the concurrent side, and delivers
// the same per-process message sets.
func TestAllCandidatesConform(t *testing.T) {
	for _, cand := range broadcast.AllCandidates() {
		cand := cand
		t.Run(cand.Name, func(t *testing.T) {
			t.Parallel()
			res, err := conformance.Check(conformance.Config{
				Candidate: cand,
				N:         3,
				K:         2,
				Workload:  workload.Config{Kind: workload.Uniform, Messages: 6, Seed: 11},
				Seed:      11,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Sched.Verdict != nil {
				t.Errorf("deterministic run violates the candidate's own spec: %v", res.Sched.Verdict)
			}
		})
	}
}

// TestDeterministicOrderCandidates: with a single broadcaster and no
// faults, FIFO-or-stronger candidates must deliver the identical sequence
// at every process on both runtimes — not just the same set.
func TestDeterministicOrderCandidates(t *testing.T) {
	for _, cand := range broadcast.AllCandidates() {
		if !cand.DeterministicOrder {
			continue
		}
		cand := cand
		t.Run(cand.Name, func(t *testing.T) {
			t.Parallel()
			res, err := conformance.Check(conformance.Config{
				Candidate: cand,
				N:         3,
				K:         1,
				Workload:  workload.Config{Kind: workload.Single, Messages: 8, Seed: 5},
				Seed:      5,
				// A real delay spread makes the sequence assertion earn its
				// keep: the transport reorders, the abstraction must not.
				MaxDelay: 500 * time.Microsecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.DeterministicOrder {
				t.Fatal("single-sender fault-free run not classified deterministic-order")
			}
			if !res.DeliveriesAgree {
				t.Error("per-process delivery sequences diverge across runtimes")
			}
		})
	}
}

// TestConformanceUnderFaults: with 10% loss and 5% duplication on the
// concurrent side only, reliable broadcast's safety clauses must hold on
// both runtimes (verdicts still agree: both admissible — liveness is
// vacuous on the incomplete concurrent trace) and the injections must be
// visible in the counters.
func TestConformanceUnderFaults(t *testing.T) {
	cand, err := broadcast.Lookup("reliable")
	if err != nil {
		t.Fatal(err)
	}
	res, err := conformance.Run(conformance.Config{
		Candidate:   cand,
		N:           3,
		K:           1,
		Workload:    workload.Config{Kind: workload.Uniform, Messages: 9, Seed: 3},
		Seed:        3,
		Faults:      &net.FaultPlan{Drop: 0.10, Dup: 0.05},
		WaitTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.VerdictsAgree {
		t.Errorf("verdicts diverge under faults: sched=%v net=%v", res.Sched.Verdict, res.Net.Verdict)
	}
	if res.Net.Verdict != nil {
		t.Errorf("faulty concurrent run violates a safety clause: %v", res.Net.Verdict)
	}
	if res.NetStats.FaultDrops == 0 {
		t.Error("FaultDrops = 0 with Drop = 0.10 over 9 broadcasts; injection not applied?")
	}
}

// TestCheckValidation: Check surfaces configuration errors.
func TestCheckValidation(t *testing.T) {
	if _, err := conformance.Check(conformance.Config{N: 3}); err == nil {
		t.Error("expected error for missing candidate")
	}
	cand, _ := broadcast.Lookup("send-to-all")
	if _, err := conformance.Check(conformance.Config{Candidate: cand, N: 0}); err == nil {
		t.Error("expected error for N = 0")
	}
}
