package conformance

import (
	"context"
	"fmt"

	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/obs"
	"nobroadcast/internal/rng"
	"nobroadcast/internal/sweep"
	"nobroadcast/internal/workload"
)

// Corpus returns the standard differential battery: every registered
// candidate crossed with a few (N, K, workload) points. The list — order,
// sizes, and per-cell seeds (derived from the root seed by position) — is
// a pure function of seed, so two parties holding the same root seed run
// the identical corpus.
func Corpus(seed uint64) []Config {
	points := []struct {
		n, k     int
		kind     workload.Kind
		messages int
	}{
		{n: 2, k: 1, kind: workload.Single, messages: 6},
		{n: 3, k: 2, kind: workload.Uniform, messages: 6},
		{n: 4, k: 2, kind: workload.Uniform, messages: 8},
	}
	var cfgs []Config
	i := uint64(0)
	for _, cand := range broadcast.AllCandidates() {
		for _, pt := range points {
			s := rng.Derive(seed, i)
			i++
			cfgs = append(cfgs, Config{
				Candidate: cand,
				N:         pt.n,
				K:         pt.k,
				Workload:  workload.Config{Kind: pt.kind, Messages: pt.messages, Seed: s},
				Seed:      s,
			})
		}
	}
	return cfgs
}

// CellSummary is the comparable outcome of one corpus cell: the verdict
// bits the corpus asserts on, stripped of traces and runtime handles.
type CellSummary struct {
	Candidate string
	N, K      int
	Steps     int

	VerdictsAgree       bool
	CounterexampleFound bool
	DeliverySetsAgree   bool
	NetComplete         bool
	LiveAgrees          bool
}

// String renders the summary as one stable line (the corpus determinism
// test compares these byte-for-byte across worker counts).
func (s CellSummary) String() string {
	return fmt.Sprintf("%s n=%d k=%d verdicts=%t cex=%t sets=%t complete=%t live=%t",
		s.Candidate, s.N, s.K, s.VerdictsAgree, s.CounterexampleFound,
		s.DeliverySetsAgree, s.NetComplete, s.LiveAgrees)
}

// RunCorpus runs the configs concurrently on the sweep engine and returns
// one summary per config, in config order. Each cell is a full
// differential check (Check), so a corpus over C candidates exercises C
// concurrent networks' worth of goroutines bounded by workers cells at a
// time. Failures are aggregated per cell (sweep.Errors); the summaries of
// the cells that did succeed are returned alongside.
func RunCorpus(ctx context.Context, cfgs []Config, workers int, reg *obs.Registry) ([]CellSummary, error) {
	return sweep.Run(ctx, len(cfgs), sweep.Options{Workers: workers, Obs: reg},
		func(ctx context.Context, c sweep.Cell) (CellSummary, error) {
			cfg := cfgs[c.Index]
			res, err := Check(cfg)
			if err != nil {
				return CellSummary{}, err
			}
			return CellSummary{
				Candidate:           cfg.Candidate.Name,
				N:                   cfg.N,
				K:                   cfg.K,
				Steps:               res.Sched.Trace.X.Len(),
				VerdictsAgree:       res.VerdictsAgree,
				CounterexampleFound: res.CounterexampleFound,
				DeliverySetsAgree:   res.DeliverySetsAgree,
				NetComplete:         res.NetComplete,
				LiveAgrees:          res.LiveAgrees,
			}, nil
		})
}
