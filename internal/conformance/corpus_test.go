package conformance_test

import (
	"context"
	"testing"

	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/conformance"
	"nobroadcast/internal/obs"
)

// TestCorpusIsPureInSeed: two Corpus calls with the same root seed produce
// the identical config list; a different root changes the workload seeds
// but not the grid shape.
func TestCorpusIsPureInSeed(t *testing.T) {
	t.Parallel()
	a, b := conformance.Corpus(11), conformance.Corpus(11)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("corpus sizes: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Candidate.Name != b[i].Candidate.Name || a[i].Seed != b[i].Seed ||
			a[i].N != b[i].N || a[i].K != b[i].K {
			t.Fatalf("cell %d differs between identical-seed corpora", i)
		}
	}
	c := conformance.Corpus(12)
	if len(c) != len(a) {
		t.Fatalf("grid shape depends on seed: %d vs %d cells", len(c), len(a))
	}
	if c[0].Seed == a[0].Seed {
		t.Error("different roots derived the same cell seed")
	}
}

// TestRunCorpusConcurrent is the concurrent differential battery: the full
// corpus — every candidate × every grid point, each cell spinning up its
// own concurrent network — run through the sweep engine at 4 workers. The
// summaries come back in config order with every cell's identity intact.
func TestRunCorpusConcurrent(t *testing.T) {
	t.Parallel()
	cfgs := conformance.Corpus(31)
	reg := obs.New()
	sums, err := conformance.RunCorpus(context.Background(), cfgs, 4, reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != len(cfgs) {
		t.Fatalf("%d summaries for %d configs", len(sums), len(cfgs))
	}
	for i, s := range sums {
		if s.Candidate != cfgs[i].Candidate.Name || s.N != cfgs[i].N || s.K != cfgs[i].K {
			t.Errorf("summary %d = %v, want cell for %s n=%d k=%d",
				i, s, cfgs[i].Candidate.Name, cfgs[i].N, cfgs[i].K)
		}
		if s.Steps == 0 {
			t.Errorf("summary %d records an empty deterministic trace", i)
		}
	}
	if got, want := reg.Counter("sweep.cells_completed").Value(), int64(len(cfgs)); got != want {
		t.Errorf("cells_completed = %d, want %d", got, want)
	}
	// Sanity on the corpus coverage: every registered candidate appears.
	seen := map[string]bool{}
	for _, s := range sums {
		seen[s.Candidate] = true
	}
	for _, cand := range broadcast.AllCandidates() {
		if !seen[cand.Name] {
			t.Errorf("corpus misses candidate %s", cand.Name)
		}
	}
}
