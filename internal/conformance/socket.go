package conformance

import (
	"fmt"
	"time"

	"nobroadcast/internal/model"
	"nobroadcast/internal/nettcp"
	"nobroadcast/internal/trace"
)

// This file extends the differential harness to the third transport:
// the same workload script runs on the deterministic runtime and on a
// nettcp socket cluster (each CAMP node behind a real TCP connection,
// in-process by default, forked processes via SocketConfig.Spawn), and
// the two traces are compared by the identity-erased projections.
//
// Socket runs are conformance-checked, not byte-replayable: kernels and
// schedulers order socket events, so the assertion is verdict
// equivalence plus delivery-set equality, exactly the contract the
// in-process concurrent runtime is held to.

// SocketConfig parameterizes one in-proc-vs-socket differential run.
type SocketConfig struct {
	// Config carries the shared parameters (candidate, N, K, script,
	// seed, fault plan). Faults apply to the socket side only, like the
	// concurrent side of Run.
	Config
	// Rebroadcast floods copies with hash dedup on the socket side.
	Rebroadcast bool
	// Spawn overrides how node processes start (nil = goroutine nodes
	// in this process; nettcp.ExecSpawn forks real processes).
	Spawn nettcp.SpawnFunc
	// Listen is the harness bind address (default loopback ephemeral;
	// bind an explicit port for multi-host runs).
	Listen string
	// External awaits operator-started node processes on other hosts
	// instead of spawning any.
	External bool
	// StartTimeout bounds cluster startup (default 30s; raise it for
	// multi-host runs where operators start nodes by hand).
	StartTimeout time.Duration
}

// SocketResult is the outcome of one socket differential run.
type SocketResult struct {
	// Sched is the deterministic baseline; Socket the merged trace of
	// the TCP cluster's per-node streams.
	Sched, Socket Side
	// VerdictsAgree reports that both sides are admissible, or rejected
	// for the same property.
	VerdictsAgree bool
	// CounterexampleFound is the sanctioned asymmetry for
	// ScheduleSensitive candidates: socket scheduling found a refuting
	// schedule the deterministic fair run admits.
	CounterexampleFound bool
	// DeliveriesAgree / DeliverySetsAgree mirror Result.
	DeliveriesAgree   bool
	DeliverySetsAgree bool
	// DeterministicOrder reports whether the strict sequence check
	// applies.
	DeterministicOrder bool
	// SocketComplete reports the socket side converged (every broadcast
	// returned, every node delivered the full script).
	SocketComplete bool
	// Truncated lists node ids whose trace streams ended without the
	// end marker (killed processes); empty on clean runs.
	Truncated []int
}

// RunSockets executes the script on the deterministic runtime and on a
// socket cluster and compares the projections. Errors are reserved for
// runs that fail outright; disagreements land in the result.
func RunSockets(cfg SocketConfig) (*SocketResult, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	schedTr, err := runSched(&cfg.Config)
	if err != nil {
		return nil, err
	}
	sp := cfg.Candidate.Spec(cfg.K)
	sockTr, complete, truncated, err := runSocket(&cfg)
	if err != nil {
		return nil, err
	}
	res := &SocketResult{
		Sched:  Side{Trace: schedTr, Verdict: sp.Check(schedTr), Deliveries: trace.ProjectDeliveries(schedTr)},
		Socket: Side{Trace: sockTr, Verdict: sp.Check(sockTr), Deliveries: trace.ProjectDeliveries(sockTr)},
		DeterministicOrder: cfg.Faults == nil && cfg.Candidate.DeterministicOrder &&
			singleBroadcaster(cfg.Requests),
		SocketComplete: complete,
		Truncated:      truncated,
	}
	res.VerdictsAgree = sameVerdict(res.Sched.Verdict, res.Socket.Verdict)
	res.CounterexampleFound = cfg.Candidate.ScheduleSensitive &&
		res.Sched.Verdict == nil && res.Socket.Verdict != nil
	res.DeliveriesAgree = sameSequences(res.Sched.Deliveries, res.Socket.Deliveries, cfg.N)
	res.DeliverySetsAgree = sameSets(res.Sched.Deliveries, res.Socket.Deliveries, cfg.N)
	return res, nil
}

// CheckSockets runs the socket differential comparison and returns a
// descriptive error on any divergence, under the same rules Check
// applies to the concurrent runtime.
func CheckSockets(cfg SocketConfig) (*SocketResult, error) {
	res, err := RunSockets(cfg)
	if err != nil {
		return nil, err
	}
	name := cfg.Candidate.Name
	if !res.VerdictsAgree && !res.CounterexampleFound {
		return res, fmt.Errorf("conformance: %s verdicts diverge: sched=%v socket=%v",
			name, res.Sched.Verdict, res.Socket.Verdict)
	}
	if len(res.Truncated) > 0 {
		return res, fmt.Errorf("conformance: %s socket run lost node streams %v", name, res.Truncated)
	}
	if cfg.Faults == nil {
		if !res.SocketComplete {
			return res, fmt.Errorf("conformance: %s fault-free socket run did not converge", name)
		}
		if !res.DeliverySetsAgree {
			return res, fmt.Errorf("conformance: %s per-process delivery sets diverge between runtimes", name)
		}
	}
	if res.DeterministicOrder && !res.DeliveriesAgree {
		return res, fmt.Errorf("conformance: %s per-process delivery sequences diverge on a deterministic-order run", name)
	}
	return res, nil
}

// runSocket executes the script on a nettcp cluster, respecting
// well-formedness exactly like runNet: a process's next invocation
// waits for the previous one to return.
func runSocket(cfg *SocketConfig) (*trace.Trace, bool, []int, error) {
	cl, err := nettcp.StartCluster(nettcp.ClusterConfig{
		N:            cfg.N,
		K:            oracleDegree(cfg.Candidate, cfg.K),
		Candidate:    cfg.Candidate.Name,
		NewAutomaton: cfg.Candidate.NewAutomaton,
		Seed:         cfg.Seed,
		MaxDelay:     cfg.MaxDelay,
		Faults:       cfg.Faults,
		Rebroadcast:  cfg.Rebroadcast,
		Spawn:        cfg.Spawn,
		Listen:       cfg.Listen,
		External:     cfg.External,
		StartTimeout: cfg.StartTimeout,
	})
	if err != nil {
		return nil, false, nil, err
	}
	defer cl.Stop()
	submitted := make(map[model.ProcID]int64)
	for _, req := range cfg.Requests {
		p := req.Proc
		if !cl.WaitUntil(func() bool { return cl.Returned(p) >= submitted[p] }, cfg.WaitTimeout) {
			return nil, false, nil, fmt.Errorf("conformance: %v's B.broadcast never returned on the socket side (%d/%d)",
				p, cl.Returned(p), submitted[p])
		}
		if _, err := cl.Broadcast(p, req.Payload); err != nil {
			return nil, false, nil, err
		}
		submitted[p]++
	}
	want := int64(len(cfg.Requests))
	complete := cl.WaitUntil(func() bool {
		for p := 1; p <= cfg.N; p++ {
			if cl.Delivered(model.ProcID(p)) < want {
				return false
			}
		}
		for p, n := range submitted {
			if cl.Returned(p) < n {
				return false
			}
		}
		return true
	}, cfg.WaitTimeout)
	cl.Stop()
	tr, perNode, err := cl.Collect()
	if err != nil {
		return nil, false, nil, err
	}
	var truncated []int
	for _, nt := range perNode {
		if nt.Err != nil {
			truncated = append(truncated, nt.ID)
		}
	}
	// Liveness clauses apply only to converged runs with intact streams.
	tr.Complete = tr.Complete && complete
	return tr, complete, truncated, nil
}

// SocketCorpus crosses a representative candidate set with socket runs,
// including a fault-plan cell — the verdict-equivalence battery the
// socket transport is held to. Like Corpus, it is a pure function of
// seed.
func SocketCorpus(seed uint64) []SocketConfig {
	cfgs := Corpus(seed)
	var out []SocketConfig
	for _, cfg := range cfgs {
		// Socket clusters cost real connections per cell; keep the
		// 3-process points and every candidate.
		if cfg.N != 3 {
			continue
		}
		out = append(out, SocketConfig{Config: cfg})
	}
	return out
}
