package trace_test

// Golden-file tests for the human-facing renderers. The fixture is the
// paper's Figure 1 execution: Algorithm 1 driving first-k with k=3 and
// N=2, which is fully deterministic, so the rendered diagram, summary,
// decision table, and DOT graph must match the checked-in goldens byte
// for byte. Regenerate after an intentional format change with
//
//	go test ./internal/trace -run Golden -update
//
// and review the diff like any other code change.

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"nobroadcast/internal/adversary"
	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/model"
	"nobroadcast/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current renderer output")

// figure1 reproduces the deterministic Figure 1 execution.
func figure1(t *testing.T) (*adversary.Result, map[model.MsgID]bool) {
	t.Helper()
	cand, err := broadcast.Lookup("first-k")
	if err != nil {
		t.Fatal(err)
	}
	res, err := adversary.Run(adversary.Options{K: 3, N: 2, NewAutomaton: cand.NewAutomaton})
	if err != nil {
		t.Fatal(err)
	}
	highlight := make(map[model.MsgID]bool)
	for _, ms := range res.Counted {
		for _, m := range ms {
			highlight[m] = true
		}
	}
	return res, highlight
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestGoldenDiagram(t *testing.T) {
	res, highlight := figure1(t)
	got := trace.RenderDiagram(res.Beta, trace.DiagramOptions{Highlight: highlight, HideReturns: true})
	checkGolden(t, "figure1_diagram.golden", got)
}

func TestGoldenDiagramWithReturns(t *testing.T) {
	res, highlight := figure1(t)
	got := trace.RenderDiagram(res.Beta, trace.DiagramOptions{Highlight: highlight})
	checkGolden(t, "figure1_diagram_returns.golden", got)
}

func TestGoldenDeliverySummary(t *testing.T) {
	res, highlight := figure1(t)
	checkGolden(t, "figure1_summary.golden", trace.RenderDeliverySummary(res.Beta, highlight))
}

func TestGoldenDecisionTable(t *testing.T) {
	res, _ := figure1(t)
	checkGolden(t, "figure1_decisions.golden", trace.RenderDecisionTable(res.Alpha))
}

func TestGoldenDOT(t *testing.T) {
	res, highlight := figure1(t)
	checkGolden(t, "figure1_dot.golden", trace.RenderDOT(res.Beta, highlight))
}

// TestGoldenWireFormats pins both wire encodings of the Figure 1 trace
// byte for byte — the binary golden guards wire format v1 against silent
// layout drift (old readers must keep reading old streams) — and proves
// the two formats carry identical information: decoding either one and
// re-encoding it as the other reproduces the other golden exactly.
func TestGoldenWireFormats(t *testing.T) {
	res, _ := figure1(t)

	var jsonl, bin bytes.Buffer
	if err := res.Beta.EncodeJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	if err := res.Beta.EncodeBinary(&bin); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figure1_trace.jsonl.golden", jsonl.String())
	checkGolden(t, "figure1_trace.ktr.golden", bin.String())

	// Cross-format equivalence: JSONL → binary and binary → JSONL both
	// land exactly on the other golden.
	fromJSONL, err := trace.DecodeJSONL(bytes.NewReader(jsonl.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var reBin bytes.Buffer
	if err := fromJSONL.EncodeBinary(&reBin); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reBin.Bytes(), bin.Bytes()) {
		t.Error("JSONL → binary conversion does not reproduce the binary golden byte-for-byte")
	}

	fromBin, err := trace.DecodeBinary(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var reJSONL bytes.Buffer
	if err := fromBin.EncodeJSONL(&reJSONL); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reJSONL.Bytes(), jsonl.Bytes()) {
		t.Error("binary → JSONL conversion does not reproduce the JSONL golden byte-for-byte")
	}
}
