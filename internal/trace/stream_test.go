package trace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"nobroadcast/internal/model"
)

// TestIndexMemoized: Trace.Index builds the index once and reuses it for
// repeated calls, invalidating only when the step log grows.
func TestIndexMemoized(t *testing.T) {
	tr := sample()
	ix1 := tr.Index()
	if ix1 == nil {
		t.Fatal("Index returned nil")
	}
	if ix2 := tr.Index(); ix2 != ix1 {
		t.Fatal("repeated Index call rebuilt the index instead of reusing it")
	}
	// Appending a step invalidates the memo.
	tr.X.Append(model.Step{Proc: 1, Kind: model.KindDeliver, Peer: 2, Msg: 2, Payload: "b"})
	ix3 := tr.Index()
	if ix3 == ix1 {
		t.Fatal("Index did not rebuild after the trace grew")
	}
	if got := len(ix3.Deliveries[1]); got != 3 {
		t.Fatalf("rebuilt index misses the appended delivery: %d deliveries", got)
	}
	if ix4 := tr.Index(); ix4 != ix3 {
		t.Fatal("rebuilt index not memoized")
	}
}

// TestJSONLRoundTrip: EncodeJSONL → DecodeJSONL is the identity on traces.
func TestJSONLRoundTrip(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := tr.EncodeJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.Complete != tr.Complete || got.X.N != tr.X.N {
		t.Fatalf("header mismatch: %q/%v/%d vs %q/%v/%d", got.Name, got.Complete, got.X.N, tr.Name, tr.Complete, tr.X.N)
	}
	if len(got.X.Steps) != len(tr.X.Steps) {
		t.Fatalf("step count mismatch: %d vs %d", len(got.X.Steps), len(tr.X.Steps))
	}
	for i := range got.X.Steps {
		if got.X.Steps[i] != tr.X.Steps[i] {
			t.Fatalf("step %d mismatch: %v vs %v", i, got.X.Steps[i], tr.X.Steps[i])
		}
	}
}

// TestStepReaderIncremental: the reader yields steps one at a time with
// the header available up front, and ends with io.EOF.
func TestStepReaderIncremental(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := tr.EncodeJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sr, err := NewStepReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if hdr := sr.Header(); hdr.N != 2 || !hdr.Complete || hdr.Name != "sample" {
		t.Fatalf("bad header: %+v", hdr)
	}
	n := 0
	for {
		s, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if s != tr.X.Steps[n] {
			t.Fatalf("step %d mismatch: %v vs %v", n, s, tr.X.Steps[n])
		}
		n++
	}
	if n != tr.X.Len() {
		t.Fatalf("read %d steps, want %d", n, tr.X.Len())
	}
}

// TestStepReaderRejectsGarbage: invalid headers and step kinds are errors,
// not silently skipped steps.
func TestStepReaderRejectsGarbage(t *testing.T) {
	if _, err := NewStepReader(strings.NewReader(`{"n":0}` + "\n")); err == nil {
		t.Fatal("header with n=0 accepted")
	}
	sr, err := NewStepReader(strings.NewReader(`{"n":2}` + "\n" + `{"proc":1,"kind":99}` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Next(); err == nil || err == io.EOF {
		t.Fatalf("invalid step kind accepted: %v", err)
	}
}

// TestStepReaderTruncation: a stream cut off mid-line surfaces
// ErrTruncated — distinct from a corrupt complete line — from both the
// header and the step positions, and DecodeJSONL propagates it.
func TestStepReaderTruncation(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := tr.EncodeJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()

	// Cut the final step line in half.
	cut := whole[:len(whole)-8]
	sr, err := NewStepReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, err = sr.Next()
		if err != nil {
			break
		}
	}
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated step error = %v, want ErrTruncated", err)
	}
	if _, err := DecodeJSONL(bytes.NewReader(cut)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("DecodeJSONL on truncated stream = %v, want ErrTruncated", err)
	}

	// Cut inside the header line.
	if _, err := NewStepReader(bytes.NewReader(whole[:5])); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated header error = %v, want ErrTruncated", err)
	}

	// A corrupt complete line is NOT a truncation.
	sr, err = NewStepReader(strings.NewReader(`{"n":2}` + "\n" + `{"proc":1,"kind":99}` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Next(); err == nil || errors.Is(err, ErrTruncated) {
		t.Fatalf("corrupt step reported as truncation: %v", err)
	}
}

// TestStepReaderRejectsSecondHeader: a stray header object mid-stream is
// reported as such, not as a step with an invalid kind.
func TestStepReaderRejectsSecondHeader(t *testing.T) {
	in := `{"n":2}` + "\n" + `{"proc":1,"kind":1,"msg":1,"payload":"a"}` + "\n" + `{"n":2,"complete":true}` + "\n"
	sr, err := NewStepReader(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Next(); err != nil {
		t.Fatalf("first step: %v", err)
	}
	_, err = sr.Next()
	if err == nil || !strings.Contains(err.Error(), "second header") {
		t.Fatalf("second header error = %v, want explicit rejection", err)
	}
}
