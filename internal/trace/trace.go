// Package trace wraps recorded executions with the index structures the
// specification checkers need (per-process delivery orders, send/receive
// matching, proposal/decision tables), JSON serialization for the cmd
// tools, and the ASCII space-time diagram renderer that regenerates the
// paper's Figure 1.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"nobroadcast/internal/model"
)

// Trace is a recorded execution together with run metadata.
//
// Complete indicates that the run terminated normally: every process either
// crashed or reached quiescence with no message in flight. Liveness
// properties (the two termination properties of broadcasts, SR-Termination,
// k-SA-Termination) are only meaningful on complete traces; safety
// properties are checked on any trace.
type Trace struct {
	X        *model.Execution `json:"execution"`
	Complete bool             `json:"complete"`
	Name     string           `json:"name,omitempty"`

	// ix memoizes BuildIndex for Index(); ixLen is the step count it was
	// built at, so appending to X invalidates it naturally.
	ix    *Index
	ixLen int
}

// New wraps an execution in a trace.
func New(x *model.Execution) *Trace {
	return &Trace{X: x}
}

// Index returns the trace's lookup index, building it on first use and
// memoizing it for subsequent calls. The batch spec predicates all go
// through here, so checking many specs against one trace scans it once. A
// trace whose execution grew since the last call is re-indexed. Not safe
// for concurrent use (neither is appending to an Execution).
func (t *Trace) Index() *Index {
	if t.ix == nil || t.ixLen != len(t.X.Steps) {
		t.ix = BuildIndex(t)
		t.ixLen = len(t.X.Steps)
	}
	return t.ix
}

// Index holds the derived lookup structures over a trace. Build it once and
// share it between spec checks; it is read-only after construction.
type Index struct {
	// Deliveries[p] is the sequence of messages p B-delivers, in order.
	Deliveries map[model.ProcID][]model.MsgID
	// DeliveryPos[p][m] is the position of m in Deliveries[p] (0-based);
	// absent if p never delivers m.
	DeliveryPos map[model.ProcID]map[model.MsgID]int
	// DeliverOrigin[m] is the origin process recorded on deliveries of m.
	DeliverOrigin map[model.MsgID]model.ProcID
	// Broadcasts[m] holds the broadcaster, payload, and invocation step
	// index of every broadcast message.
	Broadcasts map[model.MsgID]BroadcastInfo
	// BroadcastSeq[p] is the sequence of messages p broadcasts, in order.
	BroadcastSeq map[model.ProcID][]model.MsgID
	// Proposals[obj][p] is the value p proposed to obj (one-shot).
	Proposals map[model.KSAID]map[model.ProcID]model.Value
	// Decisions[obj][p] is the value p decided on obj.
	Decisions map[model.KSAID]map[model.ProcID]model.Value
	// Sends[m] lists (step index, sender, receiver) of point-to-point
	// sends of message instance m; Receives likewise.
	Sends    map[model.MsgID][]Transfer
	Receives map[model.MsgID][]Transfer
	// Correct[p] reports whether p is correct in the trace.
	Correct map[model.ProcID]bool
}

// BroadcastInfo records the broadcast invocation of a message.
type BroadcastInfo struct {
	From    model.ProcID
	Payload model.Payload
	StepIdx int
	// Returned is the step index of the matching return, or -1.
	Returned int
}

// Transfer records one point-to-point transfer event.
type Transfer struct {
	StepIdx int
	From    model.ProcID
	To      model.ProcID
	Payload model.Payload
}

// BuildIndex scans the trace once and produces the lookup structures.
func BuildIndex(t *Trace) *Index {
	x := t.X
	ix := &Index{
		Deliveries:    make(map[model.ProcID][]model.MsgID),
		DeliveryPos:   make(map[model.ProcID]map[model.MsgID]int),
		DeliverOrigin: make(map[model.MsgID]model.ProcID),
		Broadcasts:    make(map[model.MsgID]BroadcastInfo),
		BroadcastSeq:  make(map[model.ProcID][]model.MsgID),
		Proposals:     make(map[model.KSAID]map[model.ProcID]model.Value),
		Decisions:     make(map[model.KSAID]map[model.ProcID]model.Value),
		Sends:         make(map[model.MsgID][]Transfer),
		Receives:      make(map[model.MsgID][]Transfer),
		Correct:       x.CorrectSet(),
	}
	for i, s := range x.Steps {
		switch s.Kind {
		case model.KindBroadcastInvoke:
			if _, dup := ix.Broadcasts[s.Msg]; !dup {
				ix.Broadcasts[s.Msg] = BroadcastInfo{From: s.Proc, Payload: s.Payload, StepIdx: i, Returned: -1}
				ix.BroadcastSeq[s.Proc] = append(ix.BroadcastSeq[s.Proc], s.Msg)
			}
		case model.KindBroadcastReturn:
			if info, ok := ix.Broadcasts[s.Msg]; ok && info.Returned < 0 {
				info.Returned = i
				ix.Broadcasts[s.Msg] = info
			}
		case model.KindDeliver:
			pos := ix.DeliveryPos[s.Proc]
			if pos == nil {
				pos = make(map[model.MsgID]int)
				ix.DeliveryPos[s.Proc] = pos
			}
			if _, dup := pos[s.Msg]; !dup {
				pos[s.Msg] = len(ix.Deliveries[s.Proc])
			}
			ix.Deliveries[s.Proc] = append(ix.Deliveries[s.Proc], s.Msg)
			ix.DeliverOrigin[s.Msg] = s.Peer
		case model.KindPropose:
			m := ix.Proposals[s.Obj]
			if m == nil {
				m = make(map[model.ProcID]model.Value)
				ix.Proposals[s.Obj] = m
			}
			if _, dup := m[s.Proc]; !dup {
				m[s.Proc] = s.Val
			}
		case model.KindDecide:
			m := ix.Decisions[s.Obj]
			if m == nil {
				m = make(map[model.ProcID]model.Value)
				ix.Decisions[s.Obj] = m
			}
			if _, dup := m[s.Proc]; !dup {
				m[s.Proc] = s.Val
			}
		case model.KindSend:
			ix.Sends[s.Msg] = append(ix.Sends[s.Msg], Transfer{StepIdx: i, From: s.Proc, To: s.Peer, Payload: s.Payload})
		case model.KindReceive:
			ix.Receives[s.Msg] = append(ix.Receives[s.Msg], Transfer{StepIdx: i, From: s.Peer, To: s.Proc, Payload: s.Payload})
		}
	}
	return ix
}

// DeliversBefore reports whether process p delivers a strictly before b.
// If p delivers a but never b, a counts as before b (b can only appear
// later in any extension). If p delivers neither, it reports false.
func (ix *Index) DeliversBefore(p model.ProcID, a, b model.MsgID) bool {
	pos := ix.DeliveryPos[p]
	if pos == nil {
		return false
	}
	pa, oka := pos[a]
	pb, okb := pos[b]
	switch {
	case oka && okb:
		return pa < pb
	case oka:
		return true
	default:
		return false
	}
}

// MessagesSorted returns all broadcast message ids in increasing order.
func (ix *Index) MessagesSorted() []model.MsgID {
	out := make([]model.MsgID, 0, len(ix.Broadcasts))
	for m := range ix.Broadcasts {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DistinctDecisions returns the distinct values decided on obj.
func (ix *Index) DistinctDecisions(obj model.KSAID) []model.Value {
	set := make(map[model.Value]bool)
	for _, v := range ix.Decisions[obj] {
		set[v] = true
	}
	out := make([]model.Value, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EncodeJSON writes the trace as indented JSON.
func (t *Trace) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("trace: encode: %w", err)
	}
	return nil
}

// DecodeJSON reads a trace previously written by EncodeJSON.
func DecodeJSON(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if t.X == nil {
		return nil, fmt.Errorf("trace: decode: missing execution")
	}
	for i, s := range t.X.Steps {
		if !s.Kind.Valid() {
			return nil, fmt.Errorf("trace: decode: step %d has invalid kind %d", i, int(s.Kind))
		}
	}
	return &t, nil
}
