package trace

import (
	"fmt"
	"sort"
	"strings"

	"nobroadcast/internal/model"
)

// DiagramOptions configures the space-time diagram renderer.
type DiagramOptions struct {
	// Kinds selects the step kinds drawn. Nil selects the broadcast and
	// k-SA events (the events Figure 1 shows: B-broadcasts, B-deliveries,
	// propositions and decisions), plus sends and receives, which the
	// figure draws as plain arrows.
	Kinds map[model.StepKind]bool
	// Highlight marks message instances to decorate with a '*' (the grey
	// boxes of Figure 1: the final N messages of each process, which are
	// incompatible with an implementation of k-set agreement).
	Highlight map[model.MsgID]bool
	// HideReturns suppresses broadcast-return steps to keep rows compact.
	HideReturns bool
}

func defaultKinds() map[model.StepKind]bool {
	return map[model.StepKind]bool{
		model.KindBroadcastInvoke: true,
		model.KindBroadcastReturn: true,
		model.KindDeliver:         true,
		model.KindPropose:         true,
		model.KindDecide:          true,
		model.KindSend:            true,
		model.KindReceive:         true,
		model.KindCrash:           true,
	}
}

// glyph renders one step as a compact cell label.
func glyph(s model.Step, hl map[model.MsgID]bool) string {
	star := ""
	if hl[s.Msg] && s.Msg != model.NoMsg {
		star = "*"
	}
	switch s.Kind {
	case model.KindBroadcastInvoke:
		return fmt.Sprintf("B(m%d%s)", s.Msg, star)
	case model.KindBroadcastReturn:
		return "ret"
	case model.KindDeliver:
		return fmt.Sprintf("D(m%d%s<%v)", s.Msg, star, s.Peer)
	case model.KindPropose:
		return fmt.Sprintf("P(%v:%s)", s.Obj, string(s.Val))
	case model.KindDecide:
		return fmt.Sprintf("=%s", string(s.Val))
	case model.KindSend:
		return fmt.Sprintf("s(m%d>%v)", s.Msg, s.Peer)
	case model.KindReceive:
		return fmt.Sprintf("r(m%d<%v)", s.Msg, s.Peer)
	case model.KindCrash:
		return "CRASH"
	case model.KindInternal:
		return "."
	default:
		return "?"
	}
}

// RenderDiagram draws the trace as an ASCII space-time diagram: one row per
// process, one column per drawn step, time flowing left to right. This is
// the renderer behind examples/figure1, which regenerates the paper's
// Figure 1 from an actual run of the adversarial scheduler.
func RenderDiagram(t *Trace, opts DiagramOptions) string {
	kinds := opts.Kinds
	if kinds == nil {
		kinds = defaultKinds()
	}
	x := t.X

	type cell struct {
		proc  model.ProcID
		label string
	}
	var cells []cell
	for _, s := range x.Steps {
		if !kinds[s.Kind] {
			continue
		}
		if opts.HideReturns && s.Kind == model.KindBroadcastReturn {
			continue
		}
		cells = append(cells, cell{proc: s.Proc, label: glyph(s, opts.Highlight)})
	}

	var b strings.Builder
	if t.Name != "" {
		fmt.Fprintf(&b, "%s\n", t.Name)
	}
	if len(cells) == 0 {
		b.WriteString("(no drawable steps)\n")
		return b.String()
	}

	widths := make([]int, len(cells))
	for i, c := range cells {
		widths[i] = len(c.label)
	}

	for p := 1; p <= x.N; p++ {
		fmt.Fprintf(&b, "p%-2d |", p)
		for i, c := range cells {
			s := ""
			if c.proc == model.ProcID(p) {
				s = c.label
			}
			fmt.Fprintf(&b, " %-*s", widths[i], s)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderDeliverySummary prints, for each process, the sequence of messages
// it B-delivers with their origins, decorating highlighted messages with a
// '*'. This is the compact view of the N-solo structure of Definition 5.
func RenderDeliverySummary(t *Trace, highlight map[model.MsgID]bool) string {
	ix := BuildIndex(t)
	var b strings.Builder
	for p := 1; p <= t.X.N; p++ {
		pid := model.ProcID(p)
		fmt.Fprintf(&b, "p%-2d delivers:", p)
		for _, m := range ix.Deliveries[pid] {
			star := ""
			if highlight[m] {
				star = "*"
			}
			fmt.Fprintf(&b, " m%d%s(from %v)", m, star, ix.DeliverOrigin[m])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderDecisionTable prints, per k-SA object, each process's proposed and
// decided values and the number of distinct decisions.
func RenderDecisionTable(t *Trace) string {
	ix := BuildIndex(t)
	objs := make([]model.KSAID, 0, len(ix.Proposals))
	for o := range ix.Proposals {
		objs = append(objs, o)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })

	var b strings.Builder
	for _, o := range objs {
		distinct := ix.DistinctDecisions(o)
		fmt.Fprintf(&b, "%v: %d distinct decision(s)\n", o, len(distinct))
		procs := make([]model.ProcID, 0, len(ix.Proposals[o]))
		for p := range ix.Proposals[o] {
			procs = append(procs, p)
		}
		sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
		for _, p := range procs {
			dec, ok := ix.Decisions[o][p]
			decs := string(dec)
			if !ok {
				decs = "(undecided)"
			}
			fmt.Fprintf(&b, "  %v proposed %q decided %q\n", p, string(ix.Proposals[o][p]), decs)
		}
	}
	return b.String()
}
