package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"nobroadcast/internal/model"
)

// Wire format v1 ("ksatrace"): a compact length-prefixed binary step
// stream, the transport the checkers and the daemon exchange traces in.
// JSONL (stream.go) remains the human-debuggable view; the two formats
// are informationally identical and convert losslessly in both
// directions (cmd/ksatrace).
//
// Layout:
//
//	stream  := magic header block* end
//	magic   := "KSATRC1\n" (8 bytes; the trailing version digit + newline
//	           keep accidental text-mode corruption detectable)
//	header  := uvarint(len(body)) body
//	          body := zigzag(N) flags [uvarint(steps)] uvarint(len(name)) name
//	          flags bit0 = Complete, bit1 = step count present
//	block   := uvarint(len(body)) body          (len > 0)
//	          body := uvarint(stepsInBlock) step*
//	end     := uvarint(0)                        (a zero-length block)
//
// Steps are grouped into blocks of BlockSteps (aligned with
// model.StepBuffer's chunk size, so a recorder can encode chunk by chunk
// without re-slicing), each block length-prefixed so a reader can pull a
// whole block into one reused buffer and decode steps from it without
// further reads — and so truncation anywhere, including exactly at a
// block boundary, is detectable: a cut stream is missing the end marker,
// and a header-carried step count cross-checks the total.
//
// One step:
//
//	step := flags byte, zigzag(kind), zigzag(proc), then present fields
//	        in order: zigzag(peer), zigzag(msg), str(payload),
//	        zigzag(obj), str(val), str(note), zigzag(batch)
//
// A field is present iff nonzero (bit i of the flags byte, in the order
// above), mirroring the JSONL omitempty contract, so the two encodings
// carry exactly the same information.
//
// Strings are interned: str is a uvarint v where v == 0 is the empty
// string, odd v introduces a literal of (v-1)/2 bytes that follows
// inline, and even v references literal number v/2 - 1 (in order of
// first appearance, shared across payload/val/note, persistent for the
// whole stream). Repeated payloads — the common case, every delivery
// repeats its broadcast's payload — cost two bytes and zero allocations
// after their first occurrence.

// wireMagic identifies a ksatrace stream; the final "1" is the version.
const wireMagic = "KSATRC1\n"

// ContentTypeBinary and ContentTypeJSONL are the media types the daemon
// negotiates trace bodies with (/v1/check uploads by Content-Type,
// /v1/jobs/{id}/trace downloads by Accept).
const (
	ContentTypeBinary = "application/x-ksatrace"
	ContentTypeJSONL  = "application/x-ndjson"
)

// BlockSteps is the number of steps per block, aligned with
// model.StepBuffer's chunk size so recorders encode chunk by chunk.
const BlockSteps = model.ChunkSteps

// Decoder hardening bounds: corrupt or adversarial length fields must
// not translate into huge allocations.
const (
	maxHeaderBytes = 1 << 20 // header block (the name is the only variable part)
	maxBlockBytes  = 1 << 26 // one step block; the writer emits ~100KiB blocks
	maxInterned    = 1 << 20 // interned strings per stream; later literals are not tabled
)

// errBadMagic reports input that is not a ksatrace stream at all.
var errBadMagic = errors.New("trace: not a ksatrace stream (bad magic)")

// corruptError is the structured "complete but invalid input" error: the
// stream was not cut short, its bytes are wrong. Distinct from
// ErrTruncated by construction.
type corruptError struct{ msg string }

func (e *corruptError) Error() string { return "trace: corrupt ksatrace stream: " + e.msg }

func corruptf(format string, args ...any) error {
	return &corruptError{msg: fmt.Sprintf(format, args...)}
}

// zigzag maps signed to unsigned so small negatives stay small on the
// wire; zagzig inverts it.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }
func zagzig(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Step field presence bits, in field order.
const (
	fPeer = 1 << iota
	fMsg
	fPayload
	fObj
	fVal
	fNote
	fBatch
)

// header flags.
const (
	hComplete = 1 << iota
	hHasCount
)

// BinaryWriter encodes a step stream in wire format v1. It implements
// Sink, so a runtime recorder can tee steps straight into it; errors are
// sticky (Step is error-free by signature) and surface from Err and
// Close. Close writes the final partial block and the end marker —
// without it the stream is, by design, detectably truncated.
type BinaryWriter struct {
	w      *bufio.Writer
	hdr    StreamHeader
	body   []byte // current block body (steps only; count prefixed at flush)
	steps  int    // steps in current block
	total  int
	intern map[string]uint64
	err    error
	closed bool
}

// NewBinaryWriter writes the magic and header immediately and returns a
// writer ready for steps. hdr.Steps < 0 means the total is unknown (a
// live recorder); a known count is cross-checked at Close.
func NewBinaryWriter(w io.Writer, hdr StreamHeader) (*BinaryWriter, error) {
	bw := &BinaryWriter{
		w:      bufio.NewWriter(w),
		hdr:    hdr,
		intern: make(map[string]uint64),
	}
	if _, err := bw.w.WriteString(wireMagic); err != nil {
		return nil, fmt.Errorf("trace: write ksatrace magic: %w", err)
	}
	var flags byte
	if hdr.Complete {
		flags |= hComplete
	}
	if hdr.Steps >= 0 {
		flags |= hHasCount
	}
	body := binary.AppendUvarint(nil, zigzag(int64(hdr.N)))
	body = append(body, flags)
	if hdr.Steps >= 0 {
		body = binary.AppendUvarint(body, uint64(hdr.Steps))
	}
	body = binary.AppendUvarint(body, uint64(len(hdr.Name)))
	body = append(body, hdr.Name...)
	pre := binary.AppendUvarint(nil, uint64(len(body)))
	if _, err := bw.w.Write(pre); err != nil {
		return nil, fmt.Errorf("trace: write ksatrace header: %w", err)
	}
	if _, err := bw.w.Write(body); err != nil {
		return nil, fmt.Errorf("trace: write ksatrace header: %w", err)
	}
	return bw, nil
}

// appendStr appends one interned string reference, registering first
// occurrences in the table.
func (bw *BinaryWriter) appendStr(b []byte, s string) []byte {
	if s == "" {
		return append(b, 0)
	}
	if id, ok := bw.intern[s]; ok {
		return binary.AppendUvarint(b, (id+1)<<1)
	}
	if uint64(len(bw.intern)) < maxInterned {
		bw.intern[s] = uint64(len(bw.intern))
	}
	b = binary.AppendUvarint(b, uint64(len(s))<<1|1)
	return append(b, s...)
}

// Step implements Sink: encode one step into the current block, flushing
// a full block to the underlying writer. Errors are sticky.
func (bw *BinaryWriter) Step(s model.Step) {
	if bw.err != nil || bw.closed {
		if bw.err == nil {
			bw.err = errors.New("trace: Step after Close on BinaryWriter")
		}
		return
	}
	var flags byte
	if s.Peer != 0 {
		flags |= fPeer
	}
	if s.Msg != 0 {
		flags |= fMsg
	}
	if s.Payload != "" {
		flags |= fPayload
	}
	if s.Obj != 0 {
		flags |= fObj
	}
	if s.Val != "" {
		flags |= fVal
	}
	if s.Note != "" {
		flags |= fNote
	}
	if s.Batch != 0 {
		flags |= fBatch
	}
	b := append(bw.body, flags)
	b = binary.AppendUvarint(b, zigzag(int64(s.Kind)))
	b = binary.AppendUvarint(b, zigzag(int64(s.Proc)))
	if flags&fPeer != 0 {
		b = binary.AppendUvarint(b, zigzag(int64(s.Peer)))
	}
	if flags&fMsg != 0 {
		b = binary.AppendUvarint(b, zigzag(int64(s.Msg)))
	}
	if flags&fPayload != 0 {
		b = bw.appendStr(b, string(s.Payload))
	}
	if flags&fObj != 0 {
		b = binary.AppendUvarint(b, zigzag(int64(s.Obj)))
	}
	if flags&fVal != 0 {
		b = bw.appendStr(b, string(s.Val))
	}
	if flags&fNote != 0 {
		b = bw.appendStr(b, s.Note)
	}
	if flags&fBatch != 0 {
		b = binary.AppendUvarint(b, zigzag(s.Batch))
	}
	bw.body = b
	bw.steps++
	bw.total++
	if bw.steps == BlockSteps {
		bw.flushBlock()
	}
}

// flushBlock writes the accumulated block (length prefix, step count,
// step bytes) and resets the body buffer for reuse.
func (bw *BinaryWriter) flushBlock() {
	if bw.err != nil || bw.steps == 0 {
		return
	}
	var pre [2 * binary.MaxVarintLen64]byte
	cnt := binary.PutUvarint(pre[:], uint64(bw.steps))
	blen := binary.AppendUvarint(nil, uint64(cnt+len(bw.body)))
	if _, err := bw.w.Write(blen); err != nil {
		bw.err = fmt.Errorf("trace: write ksatrace block: %w", err)
		return
	}
	if _, err := bw.w.Write(pre[:cnt]); err != nil {
		bw.err = fmt.Errorf("trace: write ksatrace block: %w", err)
		return
	}
	if _, err := bw.w.Write(bw.body); err != nil {
		bw.err = fmt.Errorf("trace: write ksatrace block: %w", err)
		return
	}
	bw.body = bw.body[:0]
	bw.steps = 0
}

// Err returns the sticky error, if any — the streaming-Sink counterpart
// of a return value on Step.
func (bw *BinaryWriter) Err() error { return bw.err }

// Close flushes the final partial block, writes the end marker, and
// flushes the underlying writer. A header that promised a step count is
// cross-checked against the steps actually written. Idempotent.
func (bw *BinaryWriter) Close() error {
	if bw.closed {
		return bw.err
	}
	bw.closed = true
	bw.flushBlock()
	if bw.err != nil {
		return bw.err
	}
	if bw.hdr.Steps >= 0 && bw.total != bw.hdr.Steps {
		bw.err = fmt.Errorf("trace: ksatrace header promised %d steps, wrote %d", bw.hdr.Steps, bw.total)
		return bw.err
	}
	if err := bw.w.WriteByte(0); err != nil {
		bw.err = fmt.Errorf("trace: write ksatrace end marker: %w", err)
		return bw.err
	}
	if err := bw.w.Flush(); err != nil {
		bw.err = fmt.Errorf("trace: flush ksatrace stream: %w", err)
		return bw.err
	}
	return nil
}

// EncodeBinary writes the trace in wire format v1, the counterpart of
// EncodeJSONL. The header carries the exact step count.
func (t *Trace) EncodeBinary(w io.Writer) error {
	bw, err := NewBinaryWriter(w, StreamHeader{
		N: t.X.N, Complete: t.Complete, Name: t.Name, Steps: t.X.Len(),
	})
	if err != nil {
		return err
	}
	for i := range t.X.Steps {
		bw.Step(t.X.Steps[i])
	}
	return bw.Close()
}

// BinaryReader reads a wire-format-v1 stream one step at a time. It
// reads whole blocks into one reused buffer and decodes steps from it,
// so the steady-state read path allocates only for first-occurrence
// string literals (amortized toward zero allocations per step on
// payload-repeating traces).
type BinaryReader struct {
	r      *bufio.Reader
	hdr    StreamHeader
	body   []byte // current block body
	off    int
	left   int // steps left in current block
	read   int // steps returned so far
	intern []string
	done   bool
	err    error // sticky
}

// NewBinaryReader consumes the magic and header and returns a reader
// positioned at the first step.
func NewBinaryReader(r io.Reader) (*BinaryReader, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	return newBinaryReader(br)
}

func newBinaryReader(br *bufio.Reader) (*BinaryReader, error) {
	var magic [len(wireMagic)]byte
	n, err := io.ReadFull(br, magic[:])
	if err != nil {
		if bytes.HasPrefix([]byte(wireMagic), magic[:n]) {
			return nil, fmt.Errorf("trace: ksatrace magic: %w", ErrTruncated)
		}
		return nil, errBadMagic
	}
	if string(magic[:]) != wireMagic {
		return nil, errBadMagic
	}
	blen, err := readUvarint(br, "header length")
	if err != nil {
		return nil, err
	}
	if blen > maxHeaderBytes {
		return nil, corruptf("header length %d exceeds %d", blen, maxHeaderBytes)
	}
	body := make([]byte, blen)
	if _, err := io.ReadFull(br, body); err != nil {
		return nil, fmt.Errorf("trace: ksatrace header: %w", ErrTruncated)
	}
	d := &sliceDecoder{b: body, what: "header"}
	nProcs := d.zig()
	flags := d.byte()
	steps := -1
	if flags&hHasCount != 0 {
		steps = int(d.uv())
	}
	nameLen := d.uv()
	if d.err == nil && nameLen > uint64(len(d.b)-d.off) {
		d.err = corruptf("header name length %d exceeds remaining %d bytes", nameLen, len(d.b)-d.off)
	}
	var name string
	if d.err == nil && nameLen > 0 {
		name = string(d.b[d.off : d.off+int(nameLen)])
		d.off += int(nameLen)
	}
	if d.err != nil {
		return nil, d.err
	}
	if nProcs <= 0 {
		return nil, corruptf("invalid process count %d", nProcs)
	}
	if steps != -1 && steps < 0 {
		return nil, corruptf("invalid step count %d", steps)
	}
	return &BinaryReader{
		r: br,
		hdr: StreamHeader{
			N: int(nProcs), Complete: flags&hComplete != 0, Name: name, Steps: steps,
		},
	}, nil
}

// Header returns the stream metadata; Steps is -1 when the writer did
// not know the total.
func (r *BinaryReader) Header() StreamHeader { return r.hdr }

// nextBlock pulls the next block into the reused buffer, or handles the
// end marker / truncation.
func (r *BinaryReader) nextBlock() error {
	blen, err := readUvarint(r.r, "block length")
	if err != nil {
		return err
	}
	if blen == 0 {
		// End marker. A header-carried count cross-checks the total, so a
		// stream reassembled from dropped whole blocks is still rejected.
		r.done = true
		if r.hdr.Steps >= 0 && r.read != r.hdr.Steps {
			if r.read < r.hdr.Steps {
				return fmt.Errorf("trace: ksatrace stream ends after %d of %d steps: %w",
					r.read, r.hdr.Steps, ErrTruncated)
			}
			return corruptf("stream carries %d steps, header promised %d", r.read, r.hdr.Steps)
		}
		// The marker must be the last byte: trailing data means the
		// stream was reassembled or overwritten, not merely cut short.
		if _, err := r.r.ReadByte(); err == nil {
			return corruptf("trailing data after end marker")
		} else if err != io.EOF {
			return fmt.Errorf("trace: ksatrace end marker: %w", err)
		}
		return io.EOF
	}
	if blen > maxBlockBytes {
		return corruptf("block length %d exceeds %d", blen, maxBlockBytes)
	}
	if cap(r.body) < int(blen) {
		r.body = make([]byte, blen)
	}
	r.body = r.body[:blen]
	if _, err := io.ReadFull(r.r, r.body); err != nil {
		return fmt.Errorf("trace: ksatrace block: %w", ErrTruncated)
	}
	r.off = 0
	cnt, n := binary.Uvarint(r.body)
	if n <= 0 {
		return corruptf("bad block step count")
	}
	r.off = n
	// Every step is at least 3 bytes (flags, kind, proc), so the count is
	// bounded by the body size; a huge count is corruption, not work.
	if cnt == 0 || cnt > uint64(len(r.body)-r.off) {
		return corruptf("block step count %d inconsistent with %d body bytes", cnt, len(r.body)-r.off)
	}
	r.left = int(cnt)
	return nil
}

// Next returns the next step, or io.EOF once the end marker (and, when
// the header carried one, the exact step count) has been seen and the
// underlying stream is exhausted — the marker must be its last byte. A stream
// cut anywhere — mid-block, mid-header, or at a block boundary before
// the end marker — fails with an error wrapping ErrTruncated; complete
// but invalid bytes fail with a corruption error. Errors are sticky.
func (r *BinaryReader) Next() (model.Step, error) {
	if r.err != nil {
		return model.Step{}, r.err
	}
	for r.left == 0 {
		if r.done {
			return model.Step{}, io.EOF
		}
		if err := r.nextBlock(); err != nil {
			r.err = err
			return model.Step{}, err
		}
	}
	s, err := r.decodeStep()
	if err != nil {
		r.err = err
		return model.Step{}, err
	}
	r.left--
	r.read++
	return s, nil
}

// decodeStep decodes one step from the current block buffer.
func (r *BinaryReader) decodeStep() (model.Step, error) {
	d := &sliceDecoder{b: r.body, off: r.off, what: "step"}
	flags := d.byte()
	var s model.Step
	s.Kind = model.StepKind(d.zig())
	s.Proc = model.ProcID(d.zig())
	if flags&fPeer != 0 {
		s.Peer = model.ProcID(d.zig())
	}
	if flags&fMsg != 0 {
		s.Msg = model.MsgID(d.zig())
	}
	if flags&fPayload != 0 {
		s.Payload = model.Payload(r.str(d))
	}
	if flags&fObj != 0 {
		s.Obj = model.KSAID(d.zig())
	}
	if flags&fVal != 0 {
		s.Val = model.Value(r.str(d))
	}
	if flags&fNote != 0 {
		s.Note = r.str(d)
	}
	if flags&fBatch != 0 {
		s.Batch = d.zig()
	}
	if d.err != nil {
		return model.Step{}, d.err
	}
	if !s.Kind.Valid() {
		return model.Step{}, corruptf("step %d has invalid kind %d", r.read, int(s.Kind))
	}
	r.off = d.off
	return s, nil
}

// str decodes one interned string reference against the reader's table.
func (r *BinaryReader) str(d *sliceDecoder) string {
	v := d.uv()
	if d.err != nil || v == 0 {
		return ""
	}
	if v&1 == 0 {
		id := v>>1 - 1
		if id >= uint64(len(r.intern)) {
			d.err = corruptf("string reference %d beyond %d interned", id, len(r.intern))
			return ""
		}
		return r.intern[id]
	}
	n := v >> 1
	if n > uint64(len(d.b)-d.off) {
		d.err = corruptf("string literal length %d exceeds remaining %d block bytes", n, len(d.b)-d.off)
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	if uint64(len(r.intern)) < maxInterned {
		r.intern = append(r.intern, s)
	}
	return s
}

// sliceDecoder decodes varints from an in-memory block with a sticky
// error, keeping the per-field call sites branch-free.
type sliceDecoder struct {
	b    []byte
	off  int
	what string
	err  error
}

func (d *sliceDecoder) uv() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.err = corruptf("bad varint in %s", d.what)
		return 0
	}
	d.off += n
	return v
}

func (d *sliceDecoder) zig() int64 { return zagzig(d.uv()) }

func (d *sliceDecoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.err = corruptf("unexpected end of %s", d.what)
		return 0
	}
	c := d.b[d.off]
	d.off++
	return c
}

// readUvarint reads a varint from the stream, mapping EOF inside or
// before it to ErrTruncated (a stream may not end without its marker).
func readUvarint(br *bufio.Reader, what string) (uint64, error) {
	v, err := binary.ReadUvarint(br)
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, fmt.Errorf("trace: ksatrace %s: %w", what, ErrTruncated)
		}
		return 0, fmt.Errorf("trace: ksatrace %s: %w", what, err)
	}
	if v > 1<<62 {
		return 0, corruptf("%s overflows", what)
	}
	return v, nil
}

// DecodeBinary materializes a full trace from a wire-format-v1 stream —
// the inverse of EncodeBinary.
func DecodeBinary(r io.Reader) (*Trace, error) {
	br, err := NewBinaryReader(r)
	if err != nil {
		return nil, err
	}
	return readAll(br)
}

// Reader is a step-stream reader over either wire format: JSONL
// (*StepReader) or binary (*BinaryReader). Next returns io.EOF at a
// clean end of stream and an error wrapping ErrTruncated on a cut one.
type Reader interface {
	Header() StreamHeader
	Next() (model.Step, error)
}

// NewAnyReader sniffs the stream format — binary streams open with the
// ksatrace magic, JSONL ones with a JSON object — and returns the
// matching reader. This is what the consumers that accept uploads of
// either format (checker -stream, /v1/check) build on.
func NewAnyReader(r io.Reader) (Reader, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	head, err := br.Peek(len(wireMagic))
	if len(head) == 0 && err != nil {
		return nil, fmt.Errorf("trace: empty stream: %w", ErrTruncated)
	}
	if string(head) == wireMagic {
		return newBinaryReader(br)
	}
	if bytes.HasPrefix([]byte(wireMagic), head) {
		// A strict prefix of the magic cannot open a JSONL stream ("K" is
		// not valid JSON), so this is a cut binary stream.
		return nil, fmt.Errorf("trace: ksatrace magic: %w", ErrTruncated)
	}
	return NewStepReader(br)
}

// DecodeAny materializes a full trace from a stream of either format.
func DecodeAny(r io.Reader) (*Trace, error) {
	sr, err := NewAnyReader(r)
	if err != nil {
		return nil, err
	}
	return readAll(sr)
}

// readAll drains a Reader into a materialized trace.
func readAll(sr Reader) (*Trace, error) {
	hdr := sr.Header()
	x := model.NewExecution(hdr.N)
	if hdr.Steps > 0 {
		x.Steps = make([]model.Step, 0, hdr.Steps)
	}
	for {
		s, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		x.Append(s)
	}
	return &Trace{X: x, Complete: hdr.Complete, Name: hdr.Name}, nil
}
