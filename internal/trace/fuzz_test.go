package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// fuzzSeeds returns representative streams in both wire formats: valid
// encodings of varied traces, their truncations, and corrupt variants.
// Each is a starting point the fuzzer mutates.
func fuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	var seeds [][]byte
	for _, tr := range []*Trace{sample(), randTrace(11, 3, 40), randTrace(12, 5, BlockSteps+3)} {
		var jb, bb bytes.Buffer
		if err := tr.EncodeJSONL(&jb); err != nil {
			tb.Fatal(err)
		}
		if err := tr.EncodeBinary(&bb); err != nil {
			tb.Fatal(err)
		}
		seeds = append(seeds, jb.Bytes(), bb.Bytes())
		// Truncations: header-only, mid-block, missing end marker.
		seeds = append(seeds,
			bb.Bytes()[:12], bb.Bytes()[:len(bb.Bytes())/2], bb.Bytes()[:len(bb.Bytes())-1],
			jb.Bytes()[:len(jb.Bytes())/2])
		// Corruptions: flipped magic, garbage after a valid header.
		bad := append([]byte(nil), bb.Bytes()...)
		bad[0] ^= 0xff
		seeds = append(seeds, bad, append(append([]byte(nil), bb.Bytes()[:12]...), 0xff, 0xff, 0xff))
	}
	seeds = append(seeds, nil, []byte("{}"), []byte("not a trace"), []byte(wireMagic))
	return seeds
}

// FuzzStepReader drains arbitrary bytes through the format-sniffing
// reader path (the same entry /v1/check uses on uploads). Invariants:
// never panic, bounded work per input, and every failure is a returned
// error — with ErrTruncated reserved for genuine truncation: any input
// that decodes cleanly must fail with ErrTruncated once its last byte
// is cut (binary streams; JSONL tolerates a missing final newline).
func FuzzStepReader(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sr, err := NewAnyReader(bytes.NewReader(data))
		if err != nil {
			return // structured rejection at the header is a valid outcome
		}
		steps := 0
		for {
			_, err := sr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return
			}
			if steps++; steps > 1<<22 {
				t.Fatalf("decoder yielded over 4M steps from a %d-byte input", len(data))
			}
		}
		// The input decoded cleanly end to end. A binary stream cut one
		// byte short must now report truncation, not success or a
		// corruption error: the byte removed is (part of) the end marker
		// or a length the decoder is still owed.
		if _, ok := sr.(*BinaryReader); ok && len(data) > 0 {
			if _, err := DecodeBinary(bytes.NewReader(data[:len(data)-1])); !errors.Is(err, ErrTruncated) {
				t.Fatalf("cut binary stream: error = %v, want ErrTruncated", err)
			}
		}
	})
}

// TestCrossFormatPropertyRoundTrip: for seeded random traces, converting
// between the wire formats through a decode/encode cycle reproduces the
// canonical bytes of the target format exactly. This is the property
// behind ksatrace convert: the formats are informationally identical,
// so JSONL → binary → JSONL (and the reverse) are bit-exact.
func TestCrossFormatPropertyRoundTrip(t *testing.T) {
	for seed := uint64(100); seed < 120; seed++ {
		tr := randTrace(seed, int(seed%7)+1, int(seed%5)*700+int(seed%11))
		var jsonl, bin bytes.Buffer
		if err := tr.EncodeJSONL(&jsonl); err != nil {
			t.Fatal(err)
		}
		if err := tr.EncodeBinary(&bin); err != nil {
			t.Fatal(err)
		}

		// JSONL → trace → binary lands on the canonical binary bytes.
		fromJSONL, err := DecodeJSONL(bytes.NewReader(jsonl.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: decode jsonl: %v", seed, err)
		}
		var bin2 bytes.Buffer
		if err := fromJSONL.EncodeBinary(&bin2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bin2.Bytes(), bin.Bytes()) {
			t.Fatalf("seed %d: jsonl→binary not bit-exact (%d vs %d bytes)",
				seed, bin2.Len(), bin.Len())
		}

		// Binary → trace → JSONL lands on the canonical JSONL bytes.
		fromBin, err := DecodeBinary(bytes.NewReader(bin.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: decode binary: %v", seed, err)
		}
		var jsonl2 bytes.Buffer
		if err := fromBin.EncodeJSONL(&jsonl2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(jsonl2.Bytes(), jsonl.Bytes()) {
			t.Fatalf("seed %d: binary→jsonl not bit-exact:\n%s\nvs\n%s",
				seed, jsonl2.Bytes(), jsonl.Bytes())
		}
		sameTrace(t, fromBin, tr)
	}
}
