package trace

import "nobroadcast/internal/model"

// This file provides runtime-independent projections of a trace's
// broadcast events. The two runtimes allocate message identities
// differently (the deterministic runtime shares one counter between
// broadcast messages and point-to-point instances; the concurrent runtime
// numbers broadcasts densely), so cross-runtime comparison — the job of
// internal/conformance — must erase identities and key events by
// (origin, content) instead. Broadcast contents are unique per message in
// the generated workloads, which makes the erased form lossless there.

// BEvent is one identity-erased broadcast-interface event: the step kind,
// the broadcasting process, and the message content. For invocations and
// returns Origin is the acting process itself; for deliveries it is the
// original broadcaster.
type BEvent struct {
	Kind    model.StepKind
	Origin  model.ProcID
	Payload model.Payload
}

// DeliveryEvent is one identity-erased B-delivery.
type DeliveryEvent struct {
	Origin  model.ProcID
	Payload model.Payload
}

// ProjectBEvents returns, per process, the sequence of broadcast-interface
// events (invocations, returns, deliveries) the process takes, in trace
// order, identity-erased. Return steps carry no payload of their own; it
// is resolved from the matching invocation.
func ProjectBEvents(t *Trace) map[model.ProcID][]BEvent {
	payloadOf := make(map[model.MsgID]model.Payload)
	out := make(map[model.ProcID][]BEvent)
	for _, s := range t.X.Steps {
		switch s.Kind {
		case model.KindBroadcastInvoke:
			payloadOf[s.Msg] = s.Payload
			out[s.Proc] = append(out[s.Proc], BEvent{Kind: s.Kind, Origin: s.Proc, Payload: s.Payload})
		case model.KindBroadcastReturn:
			out[s.Proc] = append(out[s.Proc], BEvent{Kind: s.Kind, Origin: s.Proc, Payload: payloadOf[s.Msg]})
		case model.KindDeliver:
			out[s.Proc] = append(out[s.Proc], BEvent{Kind: s.Kind, Origin: s.Peer, Payload: s.Payload})
		}
	}
	return out
}

// ProjectDeliveries returns, per process, the identity-erased sequence of
// B-deliveries, in delivery order.
func ProjectDeliveries(t *Trace) map[model.ProcID][]DeliveryEvent {
	out := make(map[model.ProcID][]DeliveryEvent)
	for _, s := range t.X.Steps {
		if s.Kind == model.KindDeliver {
			out[s.Proc] = append(out[s.Proc], DeliveryEvent{Origin: s.Peer, Payload: s.Payload})
		}
	}
	return out
}
