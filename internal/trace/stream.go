package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"nobroadcast/internal/model"
)

// ErrTruncated reports a trace stream that was cut short — a JSONL
// stream ending in the middle of a line, or a binary stream missing its
// end marker or part of a block. It is distinct from a decode error on
// complete input — callers such as an upload endpoint can tell "resend
// the file" from "the file is corrupt". Test with errors.Is.
var ErrTruncated = errors.New("truncated trace stream")

// Streaming trace support: a JSONL wire format (one header object, then
// one step object per line) and the Sink interface the runtimes tee
// recorded steps into. Together they let a consumer — typically an online
// spec checker — process an execution of any length in O(checker state)
// memory, without the full step log ever being resident.

// Sink receives the steps of an execution as they are recorded, in order.
// It is the streaming alternative to materializing a Trace.
type Sink interface {
	Step(s model.Step)
}

// SinkFunc adapts a function to a Sink.
type SinkFunc func(s model.Step)

// Step implements Sink.
func (f SinkFunc) Step(s model.Step) { f(s) }

// StreamHeader is the metadata at the head of a trace stream: the first
// line of a JSONL stream, or the header block of a binary one.
type StreamHeader struct {
	N        int    `json:"n"`
	Complete bool   `json:"complete"`
	Name     string `json:"name,omitempty"`
	// Steps is the total step count when the producer knew it (the binary
	// header can carry one; JSONL never does), else -1. Not serialized:
	// the binary encoding carries it in its own header field.
	Steps int `json:"-"`
}

// EncodeJSONL writes the trace in streaming JSONL form: a header line
// followed by one step per line. The counterpart of DecodeJSONL and
// NewStepReader. The encoder does not HTML-escape: a payload containing
// `<`, `>`, or `&` round-trips byte-identical instead of coming back as
// < escapes — the stream is a wire format, not an HTML fragment.
func (t *Trace) EncodeJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(StreamHeader{N: t.X.N, Complete: t.Complete, Name: t.Name}); err != nil {
		return fmt.Errorf("trace: encode jsonl header: %w", err)
	}
	for i := range t.X.Steps {
		if err := enc.Encode(&t.X.Steps[i]); err != nil {
			return fmt.Errorf("trace: encode jsonl step %d: %w", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: encode jsonl: %w", err)
	}
	return nil
}

// StepReader reads a JSONL trace stream one step at a time.
type StepReader struct {
	hdr StreamHeader
	dec *json.Decoder
	i   int
}

// NewStepReader consumes the header line and returns a reader positioned
// at the first step.
func NewStepReader(r io.Reader) (*StepReader, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var hdr StreamHeader
	if err := dec.Decode(&hdr); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("trace: jsonl header: %w", ErrTruncated)
		}
		return nil, fmt.Errorf("trace: jsonl header: %w", err)
	}
	if hdr.N <= 0 {
		return nil, fmt.Errorf("trace: jsonl header: invalid process count %d", hdr.N)
	}
	hdr.Steps = -1 // JSONL headers never carry a step count
	return &StepReader{hdr: hdr, dec: dec}, nil
}

// Header returns the stream metadata.
func (r *StepReader) Header() StreamHeader { return r.hdr }

// stepLine is a step with the header-only keys alongside, so a stray
// second header line mid-stream is rejected as such rather than
// misreported as a step with an invalid kind.
type stepLine struct {
	model.Step
	N        *int  `json:"n"`
	Complete *bool `json:"complete"`
}

// Next returns the next step, or io.EOF when the stream is exhausted. A
// stream cut off mid-line fails with an error wrapping ErrTruncated —
// distinct from a corrupt complete line — and a second header object
// appearing after the first is rejected explicitly.
func (r *StepReader) Next() (model.Step, error) {
	var line stepLine
	if err := r.dec.Decode(&line); err != nil {
		if err == io.EOF {
			return line.Step, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return line.Step, fmt.Errorf("trace: jsonl step %d: %w", r.i, ErrTruncated)
		}
		return line.Step, fmt.Errorf("trace: jsonl step %d: %w", r.i, err)
	}
	if line.N != nil || line.Complete != nil {
		return line.Step, fmt.Errorf("trace: jsonl step %d: unexpected second header line", r.i)
	}
	if !line.Kind.Valid() {
		return line.Step, fmt.Errorf("trace: jsonl step %d has invalid kind %d", r.i, int(line.Kind))
	}
	r.i++
	return line.Step, nil
}

// DecodeJSONL materializes a full trace from a JSONL stream — the inverse
// of EncodeJSONL, for callers that do want the whole step log.
func DecodeJSONL(r io.Reader) (*Trace, error) {
	sr, err := NewStepReader(r)
	if err != nil {
		return nil, err
	}
	return readAll(sr)
}
