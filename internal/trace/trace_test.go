package trace

import (
	"bytes"
	"strings"
	"testing"

	"nobroadcast/internal/model"
)

// sample builds an execution where p1 and p2 each broadcast one message;
// p1 delivers m1 then m2, p2 delivers m2 then m1 (a mutual first-delivery
// disagreement), and both use a k-SA object.
func sample() *Trace {
	x := model.NewExecution(2)
	x.Append(
		model.Step{Proc: 1, Kind: model.KindBroadcastInvoke, Msg: 1, Payload: "a"},
		model.Step{Proc: 1, Kind: model.KindSend, Peer: 2, Msg: 1, Payload: "a"},
		model.Step{Proc: 1, Kind: model.KindDeliver, Peer: 1, Msg: 1, Payload: "a"},
		model.Step{Proc: 1, Kind: model.KindBroadcastReturn, Msg: 1},
		model.Step{Proc: 2, Kind: model.KindBroadcastInvoke, Msg: 2, Payload: "b"},
		model.Step{Proc: 2, Kind: model.KindDeliver, Peer: 2, Msg: 2, Payload: "b"},
		model.Step{Proc: 2, Kind: model.KindBroadcastReturn, Msg: 2},
		model.Step{Proc: 2, Kind: model.KindReceive, Peer: 1, Msg: 1, Payload: "a"},
		model.Step{Proc: 2, Kind: model.KindDeliver, Peer: 1, Msg: 1, Payload: "a"},
		model.Step{Proc: 1, Kind: model.KindDeliver, Peer: 2, Msg: 2, Payload: "b"},
		model.Step{Proc: 1, Kind: model.KindPropose, Obj: 1, Val: "a"},
		model.Step{Proc: 1, Kind: model.KindDecide, Obj: 1, Val: "a"},
		model.Step{Proc: 2, Kind: model.KindPropose, Obj: 1, Val: "b"},
		model.Step{Proc: 2, Kind: model.KindDecide, Obj: 1, Val: "b"},
	)
	tr := New(x)
	tr.Complete = true
	tr.Name = "sample"
	return tr
}

func TestBuildIndexDeliveries(t *testing.T) {
	ix := BuildIndex(sample())
	if got := ix.Deliveries[1]; len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("p1 deliveries = %v", got)
	}
	if got := ix.Deliveries[2]; len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Errorf("p2 deliveries = %v", got)
	}
	if ix.DeliveryPos[1][1] != 0 || ix.DeliveryPos[1][2] != 1 {
		t.Errorf("p1 delivery positions wrong: %v", ix.DeliveryPos[1])
	}
	if ix.DeliverOrigin[1] != 1 || ix.DeliverOrigin[2] != 2 {
		t.Errorf("origins wrong: %v", ix.DeliverOrigin)
	}
}

func TestBuildIndexBroadcasts(t *testing.T) {
	ix := BuildIndex(sample())
	info, ok := ix.Broadcasts[1]
	if !ok || info.From != 1 || info.Payload != "a" || info.StepIdx != 0 {
		t.Errorf("broadcast info for m1 = %+v", info)
	}
	if info.Returned != 3 {
		t.Errorf("m1 return index = %d, want 3", info.Returned)
	}
	if got := ix.BroadcastSeq[1]; len(got) != 1 || got[0] != 1 {
		t.Errorf("p1 broadcast seq = %v", got)
	}
}

func TestBuildIndexKSA(t *testing.T) {
	ix := BuildIndex(sample())
	if ix.Proposals[1][1] != "a" || ix.Proposals[1][2] != "b" {
		t.Errorf("proposals = %v", ix.Proposals[1])
	}
	if ix.Decisions[1][1] != "a" || ix.Decisions[1][2] != "b" {
		t.Errorf("decisions = %v", ix.Decisions[1])
	}
	dd := ix.DistinctDecisions(1)
	if len(dd) != 2 {
		t.Errorf("distinct decisions = %v", dd)
	}
}

func TestBuildIndexTransfers(t *testing.T) {
	ix := BuildIndex(sample())
	sends := ix.Sends[1]
	if len(sends) != 1 || sends[0].From != 1 || sends[0].To != 2 {
		t.Errorf("sends of m1 = %v", sends)
	}
	recvs := ix.Receives[1]
	if len(recvs) != 1 || recvs[0].From != 1 || recvs[0].To != 2 {
		t.Errorf("receives of m1 = %v", recvs)
	}
}

func TestDeliversBefore(t *testing.T) {
	ix := BuildIndex(sample())
	if !ix.DeliversBefore(1, 1, 2) {
		t.Error("p1 delivers m1 before m2")
	}
	if ix.DeliversBefore(1, 2, 1) {
		t.Error("p1 does not deliver m2 before m1")
	}
	if !ix.DeliversBefore(2, 2, 1) {
		t.Error("p2 delivers m2 before m1")
	}
	// Delivered vs never-delivered: delivered counts as before.
	if !ix.DeliversBefore(1, 1, 99) {
		t.Error("delivered m1 should precede never-delivered m99")
	}
	if ix.DeliversBefore(1, 99, 1) {
		t.Error("never-delivered m99 cannot precede m1")
	}
	// A process with no deliveries orders nothing.
	if ix.DeliversBefore(7, 1, 2) {
		t.Error("unknown process should order nothing")
	}
}

func TestMessagesSorted(t *testing.T) {
	ix := BuildIndex(sample())
	ms := ix.MessagesSorted()
	if len(ms) != 2 || ms[0] != 1 || ms[1] != 2 {
		t.Errorf("MessagesSorted = %v", ms)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := tr.EncodeJSON(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Name != "sample" || !got.Complete {
		t.Errorf("metadata lost: %+v", got)
	}
	if got.X.Len() != tr.X.Len() || got.X.N != tr.X.N {
		t.Errorf("execution shape lost: %d/%d steps, n=%d", got.X.Len(), tr.X.Len(), got.X.N)
	}
	for i := range tr.X.Steps {
		if got.X.Steps[i] != tr.X.Steps[i] {
			t.Errorf("step %d mismatch: %v != %v", i, got.X.Steps[i], tr.X.Steps[i])
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeJSON(strings.NewReader("{not json")); err == nil {
		t.Error("expected error for malformed JSON")
	}
	if _, err := DecodeJSON(strings.NewReader(`{"complete":true}`)); err == nil {
		t.Error("expected error for missing execution")
	}
	if _, err := DecodeJSON(strings.NewReader(`{"execution":{"n":2,"steps":[{"proc":1,"kind":99}]}}`)); err == nil {
		t.Error("expected error for invalid step kind")
	}
}

func TestRenderDiagram(t *testing.T) {
	tr := sample()
	out := RenderDiagram(tr, DiagramOptions{Highlight: map[model.MsgID]bool{2: true}})
	if !strings.Contains(out, "p1 ") || !strings.Contains(out, "p2 ") {
		t.Errorf("diagram missing process rows:\n%s", out)
	}
	if !strings.Contains(out, "B(m1)") {
		t.Errorf("diagram missing broadcast glyph:\n%s", out)
	}
	if !strings.Contains(out, "m2*") {
		t.Errorf("diagram missing highlight star:\n%s", out)
	}
	if !strings.Contains(out, "sample") {
		t.Errorf("diagram missing trace name:\n%s", out)
	}
	// Rows must align: all lines equal length.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("expected name + 2 rows, got %d lines", len(lines))
	}
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("rows not aligned: %d vs %d chars", len(lines[1]), len(lines[2]))
	}
}

func TestRenderDiagramHideReturns(t *testing.T) {
	out := RenderDiagram(sample(), DiagramOptions{HideReturns: true})
	if strings.Contains(out, "ret") {
		t.Errorf("returns not hidden:\n%s", out)
	}
}

func TestRenderDiagramEmpty(t *testing.T) {
	tr := New(model.NewExecution(2))
	out := RenderDiagram(tr, DiagramOptions{})
	if !strings.Contains(out, "no drawable steps") {
		t.Errorf("empty diagram output: %q", out)
	}
}

func TestRenderDeliverySummary(t *testing.T) {
	out := RenderDeliverySummary(sample(), map[model.MsgID]bool{1: true})
	if !strings.Contains(out, "p1  delivers: m1*(from p1) m2(from p2)") {
		t.Errorf("summary:\n%s", out)
	}
	if !strings.Contains(out, "p2  delivers: m2(from p2) m1*(from p1)") {
		t.Errorf("summary:\n%s", out)
	}
}

func TestRenderDecisionTable(t *testing.T) {
	out := RenderDecisionTable(sample())
	if !strings.Contains(out, "ksa1: 2 distinct decision(s)") {
		t.Errorf("decision table:\n%s", out)
	}
	if !strings.Contains(out, `p1 proposed "a" decided "a"`) {
		t.Errorf("decision table:\n%s", out)
	}
}

func TestRenderDecisionTableUndecided(t *testing.T) {
	x := model.NewExecution(1)
	x.Append(model.Step{Proc: 1, Kind: model.KindPropose, Obj: 3, Val: "v"})
	out := RenderDecisionTable(New(x))
	if !strings.Contains(out, "(undecided)") {
		t.Errorf("expected undecided marker:\n%s", out)
	}
}

func TestRenderDiagramKindsFilter(t *testing.T) {
	tr := sample()
	out := RenderDiagram(tr, DiagramOptions{Kinds: map[model.StepKind]bool{model.KindDeliver: true}})
	if strings.Contains(out, "B(m") || strings.Contains(out, "P(") {
		t.Errorf("filter leaked other kinds:\n%s", out)
	}
	if !strings.Contains(out, "D(m1") {
		t.Errorf("filter dropped deliveries:\n%s", out)
	}
}

func TestRenderDOT(t *testing.T) {
	tr := sample()
	out := RenderDOT(tr, map[model.MsgID]bool{2: true})
	for _, want := range []string{
		"digraph execution {",
		"rankdir=LR",
		"B(m1)",
		"style=dashed",        // invoke -> deliver edge
		"fillcolor=lightgrey", // highlighted m2
		"style=invis",         // process lanes
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Balanced braces.
	if strings.Count(out, "{") != strings.Count(out, "}") {
		t.Error("unbalanced braces in DOT output")
	}
}

func TestRenderDOTSendReceiveEdges(t *testing.T) {
	tr := sample()
	out := RenderDOT(tr, nil)
	// The sample sends m1 from p1 to p2 and p2 receives it: a solid edge.
	if !strings.Contains(out, "color=black") {
		t.Errorf("missing transfer edge:\n%s", out)
	}
}
