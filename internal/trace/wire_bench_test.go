package trace

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"nobroadcast/internal/model"
)

// wireBenchTrace builds a broadcast-shaped trace of roughly `steps`
// steps (round-robin broadcasters, every process delivering each
// message), the payload-repeating profile real runs produce: one
// payload literal per message, referenced by every delivery. That is
// the shape the binary format's interning is designed for.
func wireBenchTrace(n, steps int) *Trace {
	msgs := steps / (n + 2)
	x := model.NewExecution(n)
	for m := 1; m <= msgs; m++ {
		from := model.ProcID(1 + (m-1)%n)
		pay := model.Payload(fmt.Sprintf("payload-%d", m))
		x.Append(
			model.Step{Proc: from, Kind: model.KindBroadcastInvoke, Msg: model.MsgID(m), Payload: pay},
			model.Step{Proc: from, Kind: model.KindBroadcastReturn, Msg: model.MsgID(m)},
		)
		for p := 1; p <= n; p++ {
			x.Append(model.Step{Proc: model.ProcID(p), Kind: model.KindDeliver, Peer: from, Msg: model.MsgID(m), Payload: pay})
		}
	}
	tr := New(x)
	tr.Complete = true
	return tr
}

// BenchmarkWireDecode is the pure decode comparison between the two
// wire formats: one full pass of a step reader over a pre-encoded
// 100k-step trace, no checking. The binary path's block decode +
// string interning is where the steps/sec headline and the
// ~zero-allocs-per-step property come from.
func BenchmarkWireDecode(b *testing.B) {
	tr := wireBenchTrace(5, 100_000)
	steps := tr.X.Len()
	var jsonl, bin bytes.Buffer
	if err := tr.EncodeJSONL(&jsonl); err != nil {
		b.Fatal(err)
	}
	if err := tr.EncodeBinary(&bin); err != nil {
		b.Fatal(err)
	}
	drain := func(b *testing.B, sr Reader) {
		b.Helper()
		got := 0
		for {
			_, err := sr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			got++
		}
		if got != steps {
			b.Fatalf("decoded %d steps, want %d", got, steps)
		}
	}
	b.Run("jsonl", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sr, err := NewStepReader(bytes.NewReader(jsonl.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			drain(b, sr)
		}
		b.ReportMetric(float64(steps), "trace-steps")
	})
	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sr, err := NewBinaryReader(bytes.NewReader(bin.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			drain(b, sr)
		}
		b.ReportMetric(float64(steps), "trace-steps")
	})
}
