package trace

import (
	"fmt"
	"strings"

	"nobroadcast/internal/model"
)

// RenderDOT exports the trace as a Graphviz digraph in the space-time
// style of the paper's Figure 1: one horizontal chain of events per
// process (rank-constrained), solid edges for point-to-point transfers,
// dashed edges from broadcast invocations to their deliveries, and
// highlighted (grey-box) nodes for the given messages. Render with:
//
//	dot -Tsvg figure1.dot -o figure1.svg
func RenderDOT(t *Trace, highlight map[model.MsgID]bool) string {
	x := t.X
	var b strings.Builder
	b.WriteString("digraph execution {\n")
	b.WriteString("  rankdir=LR;\n  node [shape=box, fontsize=10];\n")
	if t.Name != "" {
		fmt.Fprintf(&b, "  label=%q;\n", t.Name)
	}

	// One node per drawn step; per-process chains keep lanes horizontal.
	nodeName := func(idx int) string { return fmt.Sprintf("s%d", idx) }
	perProc := make(map[model.ProcID][]int)
	// Track emission/first-delivery nodes for edges.
	sendNode := make(map[model.MsgID]int)
	invokeNode := make(map[model.MsgID]int)

	label := func(s model.Step) (string, bool) {
		switch s.Kind {
		case model.KindBroadcastInvoke:
			return fmt.Sprintf("B(m%d)", s.Msg), true
		case model.KindDeliver:
			return fmt.Sprintf("D(m%d<%v)", s.Msg, s.Peer), true
		case model.KindPropose:
			return fmt.Sprintf("P(%v:%s)", s.Obj, string(s.Val)), true
		case model.KindDecide:
			return fmt.Sprintf("=%s", string(s.Val)), true
		case model.KindSend:
			return fmt.Sprintf("s(m%d)", s.Msg), true
		case model.KindReceive:
			return fmt.Sprintf("r(m%d)", s.Msg), true
		case model.KindCrash:
			return "CRASH", true
		default:
			return "", false
		}
	}

	for idx, s := range x.Steps {
		lbl, ok := label(s)
		if !ok {
			continue
		}
		attrs := fmt.Sprintf("label=%q", fmt.Sprintf("%v %s", s.Proc, lbl))
		if highlight[s.Msg] && s.Msg != model.NoMsg &&
			(s.Kind == model.KindBroadcastInvoke || s.Kind == model.KindDeliver) {
			attrs += ", style=filled, fillcolor=lightgrey"
		}
		fmt.Fprintf(&b, "  %s [%s];\n", nodeName(idx), attrs)
		perProc[s.Proc] = append(perProc[s.Proc], idx)
		switch s.Kind {
		case model.KindSend:
			sendNode[s.Msg] = idx
		case model.KindBroadcastInvoke:
			invokeNode[s.Msg] = idx
		case model.KindReceive:
			if from, ok := sendNode[s.Msg]; ok {
				fmt.Fprintf(&b, "  %s -> %s [color=black];\n", nodeName(from), nodeName(idx))
			}
		case model.KindDeliver:
			if from, ok := invokeNode[s.Msg]; ok && from != idx {
				fmt.Fprintf(&b, "  %s -> %s [style=dashed, color=gray40];\n", nodeName(from), nodeName(idx))
			}
		}
	}

	// Process lanes: invisible chains keep each process's events ordered
	// left to right.
	for p := 1; p <= x.N; p++ {
		chain := perProc[model.ProcID(p)]
		if len(chain) == 0 {
			continue
		}
		names := make([]string, len(chain))
		for i, idx := range chain {
			names[i] = nodeName(idx)
		}
		fmt.Fprintf(&b, "  { rank=same; }\n")
		fmt.Fprintf(&b, "  %s [style=invis];\n", strings.Join(names, " -> "))
	}
	b.WriteString("}\n")
	return b.String()
}
