package trace

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"strings"
	"testing"

	"nobroadcast/internal/model"
)

// randTrace builds a seeded pseudo-random trace exercising every step
// kind, optional-field combination, repeated and awkward payloads
// (including the HTML-escape characters and empty-vs-absent strings),
// and negative batch ids. Shared with the fuzz and property tests.
func randTrace(seed uint64, n, steps int) *Trace {
	rng := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	payloads := []model.Payload{"a", "b", "<tag>&amp;", "répété", "", "x\n\"y\"", model.Payload("long-" + strings.Repeat("z", 100))}
	kinds := []model.StepKind{
		model.KindBroadcastInvoke, model.KindBroadcastReturn, model.KindDeliver,
		model.KindSend, model.KindReceive, model.KindPropose, model.KindDecide,
		model.KindCrash, model.KindInternal,
	}
	x := model.NewExecution(n)
	for i := 0; i < steps; i++ {
		s := model.Step{
			Proc: model.ProcID(rng.IntN(n) + 1),
			Kind: kinds[rng.IntN(len(kinds))],
		}
		if rng.IntN(2) == 0 {
			s.Peer = model.ProcID(rng.IntN(n) + 1)
		}
		if rng.IntN(2) == 0 {
			s.Msg = model.MsgID(rng.Int64N(1 << 40))
		}
		if rng.IntN(2) == 0 {
			s.Payload = payloads[rng.IntN(len(payloads))]
		}
		if rng.IntN(4) == 0 {
			s.Obj = model.KSAID(rng.IntN(8))
		}
		if rng.IntN(4) == 0 {
			s.Val = model.Value(payloads[rng.IntN(len(payloads))])
		}
		if rng.IntN(8) == 0 {
			s.Note = "note-" + string(payloads[rng.IntN(len(payloads))])
		}
		if rng.IntN(8) == 0 {
			s.Batch = rng.Int64N(1<<50) - 1<<49 // negative batches too
		}
		x.Append(s)
	}
	tr := New(x)
	tr.Complete = rng.IntN(2) == 0
	tr.Name = fmt.Sprintf("rand-%d", seed)
	return tr
}

func sameTrace(t *testing.T, got, want *Trace) {
	t.Helper()
	if got.Name != want.Name || got.Complete != want.Complete || got.X.N != want.X.N {
		t.Fatalf("header mismatch: %q/%v/%d vs %q/%v/%d",
			got.Name, got.Complete, got.X.N, want.Name, want.Complete, want.X.N)
	}
	if len(got.X.Steps) != len(want.X.Steps) {
		t.Fatalf("step count mismatch: %d vs %d", len(got.X.Steps), len(want.X.Steps))
	}
	for i := range got.X.Steps {
		if got.X.Steps[i] != want.X.Steps[i] {
			t.Fatalf("step %d mismatch:\n got %+v\nwant %+v", i, got.X.Steps[i], want.X.Steps[i])
		}
	}
}

// TestBinaryRoundTrip: EncodeBinary → DecodeBinary is the identity, on
// the sample fixture and on multi-block random traces covering every
// kind and field combination.
func TestBinaryRoundTrip(t *testing.T) {
	traces := []*Trace{
		sample(),
		randTrace(1, 3, 7),
		randTrace(2, 5, BlockSteps),     // exactly one full block
		randTrace(3, 4, BlockSteps+1),   // block boundary + 1
		randTrace(4, 6, 3*BlockSteps+9), // several blocks + partial tail
	}
	for _, tr := range traces {
		var buf bytes.Buffer
		if err := tr.EncodeBinary(&buf); err != nil {
			t.Fatalf("%s: %v", tr.Name, err)
		}
		got, err := DecodeBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", tr.Name, err)
		}
		sameTrace(t, got, tr)
	}
}

// TestBinaryInterning: repeated payloads cost a 1–2 byte reference, so a
// payload-repeating trace is dramatically smaller than its JSONL view.
func TestBinaryInterning(t *testing.T) {
	x := model.NewExecution(3)
	for i := 0; i < 2000; i++ {
		x.Append(model.Step{
			Proc: model.ProcID(i%3 + 1), Kind: model.KindDeliver,
			Peer: 1, Msg: model.MsgID(i % 5), Payload: "the-same-longish-payload-every-time",
		})
	}
	tr := New(x)
	var bin, jsonl bytes.Buffer
	if err := tr.EncodeBinary(&bin); err != nil {
		t.Fatal(err)
	}
	if err := tr.EncodeJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	if bin.Len()*5 > jsonl.Len() {
		t.Fatalf("binary %d bytes vs jsonl %d: expected ≥5× compression on repeated payloads", bin.Len(), jsonl.Len())
	}
	got, err := DecodeBinary(&bin)
	if err != nil {
		t.Fatal(err)
	}
	sameTrace(t, got, tr)
}

// TestBinaryHeaderSteps: EncodeBinary stamps the exact step count into
// the header; a streaming BinaryWriter with an unknown total writes
// Steps = -1 and the reader reports it as such.
func TestBinaryHeaderSteps(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := tr.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	br, err := NewBinaryReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := br.Header().Steps; got != tr.X.Len() {
		t.Fatalf("header Steps = %d, want %d", got, tr.X.Len())
	}

	// Streaming writer: total unknown up front.
	buf.Reset()
	bw, err := NewBinaryWriter(&buf, StreamHeader{N: 2, Complete: true, Name: "live", Steps: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.X.Steps {
		bw.Step(tr.X.Steps[i])
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	br, err = NewBinaryReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := br.Header().Steps; got != -1 {
		t.Fatalf("streaming header Steps = %d, want -1", got)
	}
	n := 0
	for {
		if _, err := br.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != tr.X.Len() {
		t.Fatalf("read %d steps, want %d", n, tr.X.Len())
	}
}

// TestBinaryWriterCountMismatch: a header that promised a step count is
// cross-checked at Close.
func TestBinaryWriterCountMismatch(t *testing.T) {
	var buf bytes.Buffer
	bw, err := NewBinaryWriter(&buf, StreamHeader{N: 2, Steps: 5})
	if err != nil {
		t.Fatal(err)
	}
	bw.Step(model.Step{Proc: 1, Kind: model.KindInternal})
	if err := bw.Close(); err == nil || !strings.Contains(err.Error(), "promised 5") {
		t.Fatalf("Close after count mismatch = %v, want promised-count error", err)
	}
}

// TestBinaryWriterStepAfterClose: stepping a closed writer is a sticky
// error, not silent data loss.
func TestBinaryWriterStepAfterClose(t *testing.T) {
	var buf bytes.Buffer
	bw, err := NewBinaryWriter(&buf, StreamHeader{N: 1, Steps: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	bw.Step(model.Step{Proc: 1, Kind: model.KindInternal})
	if bw.Err() == nil {
		t.Fatal("Step after Close left no error")
	}
}

// TestBinaryTruncation: EVERY strict prefix of a valid stream fails with
// an error wrapping ErrTruncated — cuts inside the magic, the header, a
// block, at a block boundary, and just before the end marker all count.
func TestBinaryTruncation(t *testing.T) {
	tr := randTrace(7, 3, BlockSteps+17) // spans a block boundary
	var buf bytes.Buffer
	if err := tr.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for cut := 0; cut < len(whole); cut++ {
		_, err := DecodeBinary(bytes.NewReader(whole[:cut]))
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", cut, len(whole))
		}
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("prefix of %d/%d bytes: %v, want ErrTruncated", cut, len(whole), err)
		}
	}
	// The whole stream still decodes.
	if _, err := DecodeBinary(bytes.NewReader(whole)); err != nil {
		t.Fatal(err)
	}
}

// TestBinaryTruncationUnknownCount: even without a header step count, a
// stream cut at a block boundary (missing only the end marker) is
// detected as truncated.
func TestBinaryTruncationUnknownCount(t *testing.T) {
	var buf bytes.Buffer
	bw, err := NewBinaryWriter(&buf, StreamHeader{N: 2, Steps: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < BlockSteps; i++ { // exactly one full block, flushed by Step
		bw.Step(model.Step{Proc: 1, Kind: model.KindInternal})
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	cut := whole[:len(whole)-1] // drop exactly the end marker
	_, err = DecodeBinary(bytes.NewReader(cut))
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("stream missing only the end marker: %v, want ErrTruncated", err)
	}
}

// TestBinaryCorruptNotTruncated: complete-but-wrong inputs are reported
// as corruption, never as ErrTruncated.
func TestBinaryCorruptNotTruncated(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := tr.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()

	// A stream carrying a step with an invalid kind: the writer does not
	// validate kinds, so it can produce one for the reader to reject.
	var badKind bytes.Buffer
	bw, err := NewBinaryWriter(&badKind, StreamHeader{N: 2, Steps: -1})
	if err != nil {
		t.Fatal(err)
	}
	bw.Step(model.Step{Proc: 1, Kind: model.StepKind(99)})
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"bad magic":         append([]byte("NOTKSATR"), whole[8:]...),
		"invalid step kind": badKind.Bytes(),
	}
	for name, in := range cases {
		_, err := DecodeBinary(bytes.NewReader(in))
		if err == nil {
			t.Fatalf("%s: decoded without error", name)
		}
		if errors.Is(err, ErrTruncated) {
			t.Fatalf("%s: reported as truncation: %v", name, err)
		}
	}
}

// TestBinaryCorruptOverpromise: a stream whose header under-promises
// (more steps arrive than the count) is corruption; one that
// over-promises (fewer arrive before the end marker) is truncation —
// whole blocks were dropped even though the marker survived.
func TestBinaryCorruptOverpromise(t *testing.T) {
	encode := func(promised, actual int) []byte {
		// Close would catch the mismatch, so write the tail by hand: a real
		// writer emits the lying header and the steps, then we flush and
		// append the end marker ourselves.
		var buf bytes.Buffer
		bw, err := NewBinaryWriter(&buf, StreamHeader{N: 2, Steps: promised})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < actual; i++ {
			bw.Step(model.Step{Proc: 1, Kind: model.KindInternal})
		}
		bw.flushBlock()
		bw.w.WriteByte(0)
		bw.w.Flush()
		return buf.Bytes()
	}

	if _, err := DecodeBinary(bytes.NewReader(encode(1, 3))); err == nil || errors.Is(err, ErrTruncated) {
		t.Fatalf("under-promised count: %v, want corruption error", err)
	}
	if _, err := DecodeBinary(bytes.NewReader(encode(5, 3))); !errors.Is(err, ErrTruncated) {
		t.Fatalf("over-promised count: %v, want ErrTruncated", err)
	}
}

// TestBinaryReaderHardeningBounds: adversarial length fields fail as
// corruption before any oversized allocation happens.
func TestBinaryReaderHardeningBounds(t *testing.T) {
	// Giant header length.
	in := append([]byte(wireMagic), 0xff, 0xff, 0xff, 0xff, 0x7f)
	if _, err := NewBinaryReader(bytes.NewReader(in)); err == nil || errors.Is(err, ErrTruncated) {
		t.Fatalf("giant header length: %v, want corruption error", err)
	}

	// Valid header, then a giant block length.
	var buf bytes.Buffer
	bw, err := NewBinaryWriter(&buf, StreamHeader{N: 2, Steps: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	in = append(bytes.Clone(good[:len(good)-1]), 0xff, 0xff, 0xff, 0xff, 0x7f)
	br, err := NewBinaryReader(bytes.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := br.Next(); err == nil || errors.Is(err, ErrTruncated) {
		t.Fatalf("giant block length: %v, want corruption error", err)
	}

	// Block step count larger than the block body.
	in = append(bytes.Clone(good[:len(good)-1]), 2, 200, 1)
	br, err = NewBinaryReader(bytes.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := br.Next(); err == nil || errors.Is(err, ErrTruncated) {
		t.Fatalf("inconsistent block step count: %v, want corruption error", err)
	}
}

// TestBinaryReaderStickyError: after a decode error, Next keeps
// returning the same error rather than resynchronizing on garbage.
func TestBinaryReaderStickyError(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := tr.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-3]
	br, err := NewBinaryReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	var first error
	for {
		_, err := br.Next()
		if err != nil {
			first = err
			break
		}
	}
	if _, again := br.Next(); again != first {
		t.Fatalf("error not sticky: %v then %v", first, again)
	}
}

// TestAnyReaderSniffing: NewAnyReader routes binary streams to the
// binary reader and JSONL ones to the JSONL reader, transparently.
func TestAnyReaderSniffing(t *testing.T) {
	tr := sample()
	var bin, jsonl bytes.Buffer
	if err := tr.EncodeBinary(&bin); err != nil {
		t.Fatal(err)
	}
	if err := tr.EncodeJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	for name, in := range map[string][]byte{"binary": bin.Bytes(), "jsonl": jsonl.Bytes()} {
		got, err := DecodeAny(bytes.NewReader(in))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sameTrace(t, got, tr)
	}

	// A strict prefix of the magic is a cut binary stream, not JSONL.
	if _, err := NewAnyReader(strings.NewReader(wireMagic[:3])); !errors.Is(err, ErrTruncated) {
		t.Fatalf("magic prefix: %v, want ErrTruncated", err)
	}
	// An empty stream is truncated too.
	if _, err := NewAnyReader(strings.NewReader("")); !errors.Is(err, ErrTruncated) {
		t.Fatalf("empty stream: %v, want ErrTruncated", err)
	}
	// Neither magic nor JSON: the JSONL reader rejects it (not truncation).
	if _, err := NewAnyReader(strings.NewReader("garbage here")); err == nil || errors.Is(err, ErrTruncated) {
		t.Fatalf("garbage stream: %v, want non-truncation error", err)
	}
}

// TestJSONLNoHTMLEscaping: payloads containing <, >, & round-trip
// byte-identically through EncodeJSONL — the regression test for the
// SetEscapeHTML fix.
func TestJSONLNoHTMLEscaping(t *testing.T) {
	x := model.NewExecution(2)
	x.Append(
		model.Step{Proc: 1, Kind: model.KindBroadcastInvoke, Msg: 1, Payload: "<a>&<b>"},
		model.Step{Proc: 1, Kind: model.KindPropose, Obj: 1, Val: "x&y<z>"},
		model.Step{Proc: 1, Kind: model.KindInternal, Note: "m -> n && p"},
	)
	tr := New(x)
	var buf bytes.Buffer
	if err := tr.EncodeJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if s := buf.String(); strings.Contains(s, `\u003c`) || strings.Contains(s, `\u0026`) || !strings.Contains(s, `<a>&<b>`) {
		t.Fatalf("JSONL stream HTML-escapes payload bytes:\n%s", s)
	}
	got, err := DecodeJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sameTrace(t, got, tr)

	// And the binary form agrees byte-for-byte after conversion back.
	var bin bytes.Buffer
	if err := tr.EncodeBinary(&bin); err != nil {
		t.Fatal(err)
	}
	got2, err := DecodeBinary(&bin)
	if err != nil {
		t.Fatal(err)
	}
	sameTrace(t, got2, tr)
}
