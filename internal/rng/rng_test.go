package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestKnownVector(t *testing.T) {
	// splitmix64 reference values for seed 0 (from the original C
	// reference implementation by Sebastiano Vigna).
	s := New(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
	}
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Errorf("value %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestIntnRange(t *testing.T) {
	s := New(7)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnCoversAllValues(t *testing.T) {
	s := New(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		seen[s.Intn(5)] = true
	}
	for v := 0; v < 5; v++ {
		if !seen[v] {
			t.Errorf("value %d never produced", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(11)
	for i := 0; i < 1000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint16) bool {
		s := New(uint64(seed))
		n := 1 + int(seed)%20
		p := s.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	child := parent.Split()
	// The child must not replay the parent's stream.
	same := 0
	for i := 0; i < 64; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("parent and child streams coincide on %d/64 draws", same)
	}
}

func TestShuffle(t *testing.T) {
	s := New(5)
	v := []int{0, 1, 2, 3, 4, 5, 6, 7}
	s.Shuffle(len(v), func(i, j int) { v[i], v[j] = v[j], v[i] })
	seen := make([]bool, len(v))
	for _, x := range v {
		seen[x] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Errorf("Shuffle lost element %d", i)
		}
	}
}

func TestBoolBothValues(t *testing.T) {
	s := New(8)
	var trues, falses int
	for i := 0; i < 200; i++ {
		if s.Bool() {
			trues++
		} else {
			falses++
		}
	}
	if trues == 0 || falses == 0 {
		t.Errorf("Bool() biased: %d true, %d false", trues, falses)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var s Source
	_ = s.Uint64() // must not panic
}
