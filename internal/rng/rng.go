// Package rng provides a small, deterministic, splittable pseudo-random
// number generator (splitmix64) used for seeded schedules, randomized spec
// testing, and workload generation.
//
// The standard library's math/rand would work, but a self-contained
// generator guarantees identical sequences across Go versions, which
// matters for reproducible adversarial schedules recorded in
// EXPERIMENTS.md.
package rng

// Source is a splitmix64 generator. The zero value is a valid generator
// seeded with 0.
type Source struct {
	state uint64
}

// New returns a generator with the given seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Uint64 returns the next 64-bit value.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0, mirroring
// math/rand's contract.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Rejection sampling to avoid modulo bias.
	max := uint64(n)
	limit := (^uint64(0) / max) * max
	for {
		v := s.Uint64()
		if v < limit {
			return int(v % max)
		}
	}
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns a uniform boolean.
func (s *Source) Bool() bool {
	return s.Uint64()&1 == 1
}

// Split returns a new generator whose stream is independent of the
// receiver's future outputs (it is seeded from the receiver).
func (s *Source) Split() *Source {
	return New(s.Uint64())
}

// Derive returns the seed of sub-stream i of the stream rooted at root.
// Unlike Split, the derivation is a pure function of (root, i): any party
// that knows the root seed and the sub-stream index obtains the same seed,
// in any order. The parallel sweep engine (internal/sweep) relies on this
// to hand every grid cell its own deterministic generator regardless of
// which worker picks the cell up, keeping sweep results bit-identical
// across worker counts.
//
// The derivation is one splitmix64 step at state root + (i+1)·golden — the
// same increment the generator itself uses — so distinct indices land on
// distinct states of the underlying Weyl sequence.
func Derive(root uint64, i uint64) uint64 {
	return New(root + (i+1)*0x9e3779b97f4a7c15).Uint64()
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap function.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
