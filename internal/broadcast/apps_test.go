package broadcast_test

import (
	"fmt"
	"testing"

	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/model"
	"nobroadcast/internal/sched"
	"nobroadcast/internal/spec"
	"nobroadcast/internal/trace"
)

// TestSATagDeciderSolvesKSA: the SA-tagged solver over the SA-tagged
// broadcast solves k-SA — the per-object election bounds the distinct
// first SA-tagged deliveries.
func TestSATagDeciderSolvesKSA(t *testing.T) {
	c, err := broadcast.Lookup("sa-tagged")
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 8; seed++ {
		inputs := []model.Value{"v1", "v2", "v3", "v4"}
		rt, err := sched.New(sched.Config{
			N:            4,
			NewAutomaton: c.NewAutomaton,
			Oracle:       c.OracleFor(2),
			NewApp:       c.SolverFor(),
			Inputs:       inputs,
		})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := rt.RunRandom(sched.RunOptions{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !tr.Complete {
			t.Fatalf("seed %d: incomplete", seed)
		}
		if v := spec.KSA(2).Check(tr); v != nil {
			t.Errorf("seed %d: %s", seed, v)
		}
		if v := spec.SATaggedBroadcast(2).Check(tr); v != nil {
			t.Errorf("seed %d: %s", seed, v)
		}
		ix := trace.BuildIndex(tr)
		if got := len(ix.Decisions[sched.DefaultAppObject]); got != 4 {
			t.Errorf("seed %d: %d deciders", seed, got)
		}
	}
}

// TestSATaggedMixedTraffic: tagged and plain messages coexist — plain
// traffic flows without elections, tagged traffic is gated per object.
func TestSATaggedMixedTraffic(t *testing.T) {
	c, err := broadcast.Lookup("sa-tagged")
	if err != nil {
		t.Fatal(err)
	}
	reqs := []sched.BroadcastReq{
		{Proc: 1, Payload: spec.SATag(1, "a")},
		{Proc: 1, Payload: "plain-1"},
		{Proc: 2, Payload: spec.SATag(1, "b")},
		{Proc: 2, Payload: spec.SATag(2, "c")},
		{Proc: 3, Payload: "plain-2"},
	}
	for seed := uint64(1); seed <= 6; seed++ {
		rt, err := sched.New(sched.Config{N: 3, NewAutomaton: c.NewAutomaton, Oracle: c.OracleFor(1)})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := rt.RunRandom(sched.RunOptions{Seed: seed, Broadcasts: reqs})
		if err != nil {
			t.Fatal(err)
		}
		if !tr.Complete {
			t.Fatalf("seed %d: incomplete", seed)
		}
		for _, s := range []spec.Spec{spec.BasicBroadcast(), spec.SATaggedOrder(1), spec.Channels()} {
			if v := s.Check(tr); v != nil {
				t.Errorf("seed %d: %s", seed, v)
			}
		}
	}
}

// TestDepthDeciderDepths: the depth-d solver delivers d messages before
// deciding and still solves k-SA over first-k.
func TestDepthDeciderDepths(t *testing.T) {
	c, err := broadcast.Lookup("first-k")
	if err != nil {
		t.Fatal(err)
	}
	for _, depth := range []int{1, 2, 4} {
		rt, err := sched.New(sched.Config{
			N:            3,
			NewAutomaton: c.NewAutomaton,
			Oracle:       c.OracleFor(2),
			NewApp:       broadcast.NewDepthDecider(depth),
			Inputs:       []model.Value{"x1", "x2", "x3"},
		})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := rt.RunRandom(sched.RunOptions{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if !tr.Complete {
			t.Fatalf("depth %d: incomplete", depth)
		}
		if v := spec.KSA(2).Check(tr); v != nil {
			t.Errorf("depth %d: %s", depth, v)
		}
		// Each process broadcasts exactly depth messages.
		ix := trace.BuildIndex(tr)
		for p := 1; p <= 3; p++ {
			if got := len(ix.BroadcastSeq[model.ProcID(p)]); got != depth {
				t.Errorf("depth %d: p%d broadcast %d messages", depth, p, got)
			}
		}
	}
}

// TestFlooderPipelines: the flooder broadcasts its full count, pipelining
// on returns, over any abstraction.
func TestFlooderPipelines(t *testing.T) {
	c, err := broadcast.Lookup("reliable")
	if err != nil {
		t.Fatal(err)
	}
	const count = 5
	rt, err := sched.New(sched.Config{
		N:            3,
		NewAutomaton: c.NewAutomaton,
		NewApp:       broadcast.NewFlooder("chat", count),
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := rt.RunFair(sched.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Complete {
		t.Fatal("incomplete")
	}
	ix := trace.BuildIndex(tr)
	for p := 1; p <= 3; p++ {
		if got := len(ix.BroadcastSeq[model.ProcID(p)]); got != count {
			t.Errorf("p%d broadcast %d messages, want %d", p, got, count)
		}
		if got := len(ix.Deliveries[model.ProcID(p)]); got != 3*count {
			t.Errorf("p%d delivered %d, want %d", p, got, 3*count)
		}
	}
	if v := spec.BasicBroadcast().Check(tr); v != nil {
		t.Error(v)
	}
}

// TestFirstDeciderIgnoresLateDeliveries: decisions are one-shot.
func TestFirstDeciderIgnoresLateDeliveries(t *testing.T) {
	app := broadcast.NewFirstDecider(1)
	env := &fakeAppEnv{}
	app.Init(env, "mine")
	app.OnDeliver(env, 2, 5, "other")
	app.OnDeliver(env, 3, 6, "late")
	app.OnReturn(env, 1)
	if env.decided != "other" || env.decisions != 1 {
		t.Errorf("decided %q (%d times)", env.decided, env.decisions)
	}
	if len(env.broadcasts) != 1 || env.broadcasts[0] != "mine" {
		t.Errorf("broadcasts: %v", env.broadcasts)
	}
}

// fakeAppEnv is a minimal AppEnv for direct app unit tests.
type fakeAppEnv struct {
	broadcasts []model.Payload
	decided    model.Value
	decisions  int
}

var _ sched.AppEnv = (*fakeAppEnv)(nil)

func (f *fakeAppEnv) ID() model.ProcID { return 1 }
func (f *fakeAppEnv) N() int           { return 3 }
func (f *fakeAppEnv) Broadcast(p model.Payload) {
	f.broadcasts = append(f.broadcasts, p)
}
func (f *fakeAppEnv) Decide(v model.Value) {
	f.decisions++
	if f.decisions == 1 {
		f.decided = v
	}
}

// TestSATagDeciderIgnoresForeignTags: deliveries of other objects' tags
// and plain payloads do not decide.
func TestSATagDeciderIgnoresForeignTags(t *testing.T) {
	app := broadcast.NewSATagDecider(1)
	env := &fakeAppEnv{}
	app.Init(env, "v")
	app.OnDeliver(env, 2, 5, "plain")
	app.OnDeliver(env, 2, 6, spec.SATag(9, "other-object"))
	if env.decisions != 0 {
		t.Fatal("decided on a non-matching payload")
	}
	app.OnDeliver(env, 3, 7, spec.SATag(1, "w"))
	app.OnReturn(env, 1)
	if env.decided != "w" || env.decisions != 1 {
		t.Errorf("decided %q (%d)", env.decided, env.decisions)
	}
	if len(env.broadcasts) != 1 || env.broadcasts[0] != spec.SATag(1, "v") {
		t.Errorf("broadcasts: %v", env.broadcasts)
	}
}

// TestDepthDeciderUnit: depth counting and first-value capture.
func TestDepthDeciderUnit(t *testing.T) {
	app := broadcast.NewDepthDecider(3)(1)
	env := &fakeAppEnv{}
	app.Init(env, "in")
	app.OnReturn(env, 1)
	app.OnReturn(env, 2)
	app.OnReturn(env, 3) // beyond depth: no further broadcast
	if len(env.broadcasts) != 3 {
		t.Fatalf("broadcasts: %v", env.broadcasts)
	}
	app.OnDeliver(env, 1, 1, "first")
	app.OnDeliver(env, 1, 2, "second")
	if env.decisions != 0 {
		t.Fatal("decided before reaching depth")
	}
	app.OnDeliver(env, 1, 3, "third")
	if env.decided != "first" || env.decisions != 1 {
		t.Errorf("decided %q (%d)", env.decided, env.decisions)
	}
	app.OnDeliver(env, 1, 4, "extra")
	if env.decisions != 1 {
		t.Error("decided twice")
	}
}

// TestRoundAgreementInitNoop covers the trivial Init paths of the
// diffusion automata (no state depends on Init except Causal's clock).
func TestRoundAgreementInitNoop(t *testing.T) {
	for _, name := range []string{"total-order", "fifo", "first-k", "k-stepped", "sa-tagged"} {
		c, err := broadcast.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		a := c.NewAutomaton(1)
		a.Init(sched.NewEnv(1, 3)) // must not panic or emit anything
	}
}

// TestOnDecideIgnoredByOracleFreeAutomata: stray decisions do not disturb
// the diffusion automata.
func TestOnDecideIgnoredByOracleFreeAutomata(t *testing.T) {
	for _, name := range []string{"send-to-all", "reliable", "fifo", "causal", "mutual"} {
		c, err := broadcast.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		a := c.NewAutomaton(1)
		env := sched.NewEnv(1, 3)
		a.Init(env)
		a.OnDecide(env, 99, "stray")
		if got := len(env.TakeActions()); got != 0 {
			t.Errorf("%s: stray decide emitted %d actions", name, got)
		}
	}
}

// TestSolverForDefault: candidates without a dedicated solver fall back to
// FirstDecider.
func TestSolverForDefault(t *testing.T) {
	c, err := broadcast.Lookup("first-k")
	if err != nil {
		t.Fatal(err)
	}
	app := c.SolverFor()(1)
	if _, ok := app.(*broadcast.FirstDecider); !ok {
		t.Errorf("default solver is %T, want *FirstDecider", app)
	}
	c2, err := broadcast.Lookup("sa-tagged")
	if err != nil {
		t.Fatal(err)
	}
	app2 := c2.SolverFor()(1)
	if _, ok := app2.(*broadcast.SATagDecider); !ok {
		t.Errorf("sa-tagged solver is %T, want *SATagDecider", app2)
	}
}

// TestMalformedDecidedValuesIgnored: automata tolerate decided values that
// do not decode as message records.
func TestMalformedDecidedValuesIgnored(t *testing.T) {
	for _, name := range []string{"total-order", "first-k", "k-stepped", "sa-tagged"} {
		c, err := broadcast.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		a := c.NewAutomaton(1)
		env := sched.NewEnv(1, 2)
		a.Init(env)
		a.OnDecide(env, 1, "not-json")
		for _, act := range env.TakeActions() {
			if act.Kind == model.KindDeliver {
				t.Errorf("%s delivered from a malformed decision", name)
			}
		}
	}
}

// TestStdBroadcastsShape sanity-checks the test helper itself.
func TestStdBroadcastsShape(t *testing.T) {
	reqs := stdBroadcasts(3, 2)
	if len(reqs) != 6 {
		t.Fatalf("len = %d", len(reqs))
	}
	seen := map[string]bool{}
	for _, r := range reqs {
		key := fmt.Sprintf("%v-%s", r.Proc, r.Payload)
		if seen[key] {
			t.Errorf("duplicate request %s", key)
		}
		seen[key] = true
	}
}
