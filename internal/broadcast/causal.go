package broadcast

import (
	"nobroadcast/internal/model"
	"nobroadcast/internal/sched"
	"nobroadcast/internal/vc"
)

// Causal implements causal broadcast in the style of Raynal, Schiper and
// Toueg [24]: reliable diffusion where every message carries a vector
// clock, and delivery is gated until all causal predecessors have been
// delivered locally.
//
// The clock C attached to a message m from origin o reads: C[o] is the
// number of messages o broadcast before m, and C[j] (j ≠ o) is the number
// of j's messages o had delivered before broadcasting m. A process q
// delivers m once q's per-origin delivered counts D satisfy D[o] = C[o]
// and D[j] ≥ C[j] for all j ≠ o.
type Causal struct {
	id model.ProcID
	n  int
	// delivered[j] counts messages from p_j delivered locally.
	delivered vc.VC
	// scratch is the reusable clock for stamping outgoing broadcasts:
	// the stamp is delivered with the own component swapped for the
	// broadcast count, so building it is a copy into scratch rather than
	// a fresh Clone per invocation.
	scratch vc.VC
	// broadcasts counts local broadcast invocations.
	broadcasts uint64
	seen       map[model.MsgID]bool
	pending    []pendingFrame
}

// pendingFrame is a received frame awaiting delivery together with its
// decoded clock. Decoding once at enqueue keeps the delivery check — run
// over every pending frame after every delivery — free of per-check
// Decode allocations.
type pendingFrame struct {
	fr    Frame
	clock vc.VC
}

var _ sched.Automaton = (*Causal)(nil)

// NewCausal constructs the automaton for one process.
func NewCausal(id model.ProcID) sched.Automaton {
	return &Causal{id: id, seen: make(map[model.MsgID]bool)}
}

// Init implements sched.Automaton.
func (c *Causal) Init(env *sched.Env) {
	c.n = env.N()
	c.delivered = vc.New(env.N())
}

// OnBroadcast implements sched.Automaton.
func (c *Causal) OnBroadcast(env *sched.Env, msg model.MsgID, payload model.Payload) {
	c.scratch = append(c.scratch[:0], c.delivered...)
	c.scratch[c.id-1] = c.broadcasts
	c.broadcasts++
	env.SendAll(encodeFrame(Frame{
		T: "msg", Origin: env.ID(), Msg: msg, Content: payload, Clock: c.scratch.Encode(),
	}))
	env.ReturnBroadcast(msg)
}

// OnReceive implements sched.Automaton.
func (c *Causal) OnReceive(env *sched.Env, from model.ProcID, payload model.Payload) {
	fr, err := decodeFrame(payload)
	if err != nil || (fr.T != "msg" && fr.T != "echo") || !fr.validOrigin(env.N()) {
		return
	}
	if c.seen[fr.Msg] {
		return
	}
	c.seen[fr.Msg] = true
	env.SendAll(encodeFrame(Frame{
		T: "echo", Origin: fr.Origin, Msg: fr.Msg, Content: fr.Content, Clock: fr.Clock,
	}))
	clock, err := vc.Decode(fr.Clock)
	if err != nil {
		// Malformed clock: the frame could never become deliverable, so
		// it is dropped rather than parked forever (the pre-overhaul code
		// re-decoded — and re-failed — on every delivery check).
		return
	}
	c.pending = append(c.pending, pendingFrame{fr: fr, clock: clock})
	c.drain(env)
}

// deliverable reports whether the frame's causal predecessors have all
// been delivered locally.
func (c *Causal) deliverable(pf pendingFrame) bool {
	for j := 1; j <= c.n; j++ {
		cj := pf.clock.Get(j)
		dj := c.delivered.Get(j)
		if model.ProcID(j) == pf.fr.Origin {
			if dj != cj {
				return false
			}
		} else if dj < cj {
			return false
		}
	}
	return true
}

// drain repeatedly delivers pending deliverable frames until a fixpoint.
func (c *Causal) drain(env *sched.Env) {
	for {
		progress := false
		for i := 0; i < len(c.pending); i++ {
			pf := c.pending[i]
			if !c.deliverable(pf) {
				continue
			}
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			c.delivered.Tick(int(pf.fr.Origin))
			env.Deliver(pf.fr.Msg, pf.fr.Origin, pf.fr.Content)
			progress = true
			break
		}
		if !progress {
			return
		}
	}
}

// OnDecide implements sched.Automaton. Causal uses no k-SA object.
func (c *Causal) OnDecide(*sched.Env, model.KSAID, model.Value) {}
