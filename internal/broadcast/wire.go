// Package broadcast implements the candidate broadcast abstractions as
// deterministic automata in the model CAMP_n[k-SA]:
//
//   - SendToAll: the basic broadcast (Section 3.1), send to all and
//     deliver on receipt.
//   - Reliable: crash-tolerant reliable broadcast by message echo [13].
//   - FIFO: reliable diffusion plus per-sender sequence numbers [3, 24].
//   - Causal: reliable diffusion plus vector-clock gating [3, 24].
//   - TotalOrder: rounds of consensus (1-SA objects) on pending message
//     sets — the abstraction equivalent to consensus [7, 21].
//   - FirstK: the one-shot strawman of Section 1.4 — a single k-SA object
//     elects the messages eligible for first delivery.
//   - KStepped: the iterated strawman of Section 3.2 — one k-SA object
//     per step index a elects the first delivery within each set S_a.
//   - KBOAttempt: a natural but necessarily doomed attempt to implement
//     k-Bounded Order Broadcast [15] on k-SA objects in message passing —
//     the paper's corollary says no correct such implementation exists,
//     and the adversary of internal/adversary exhibits each attempt's
//     failure.
//
// All automata exchange JSON-encoded wire frames over the point-to-point
// network and are deterministic, as the runtime requires.
package broadcast

import (
	"encoding/json"
	"fmt"
	"sort"

	"nobroadcast/internal/model"
)

// Frame is the wire format shared by the automata. Type tags:
//
//	"msg"  — diffusion of a broadcast message
//	"echo" — reliable re-diffusion
type Frame struct {
	T       string        `json:"t"`
	Origin  model.ProcID  `json:"o"`
	Msg     model.MsgID   `json:"m"`
	Seq     int           `json:"s,omitempty"`
	Content model.Payload `json:"c"`
	Clock   string        `json:"vc,omitempty"`
	// Prior carries previously-echoed messages (Mutual broadcast echoes).
	Prior []msgRec `json:"p,omitempty"`
}

// encodeFrame serializes a frame into a network payload. Marshalling a
// Frame cannot fail; the function is total.
func encodeFrame(f Frame) model.Payload {
	b, err := json.Marshal(f)
	if err != nil {
		// Frame contains only marshalable field types; this is untestable
		// but kept as a guard against future field additions.
		panic(fmt.Sprintf("broadcast: marshal frame: %v", err))
	}
	return model.Payload(b)
}

// decodeFrame parses a network payload into a frame.
func decodeFrame(p model.Payload) (Frame, error) {
	var f Frame
	if err := json.Unmarshal([]byte(p), &f); err != nil {
		return Frame{}, fmt.Errorf("broadcast: decode frame: %w", err)
	}
	return f, nil
}

// validOrigin reports whether the frame's origin identifies a process of
// an n-process system and its message id is plausible. Automata drop
// frames that fail it: on the reliable network of the model such frames
// cannot occur, and a malformed frame must never corrupt automaton state
// (found by FuzzAutomataOnGarbage).
func (f Frame) validOrigin(n int) bool {
	return f.Origin >= 1 && int(f.Origin) <= n && f.Msg > 0
}

// msgRec identifies a broadcast message inside k-SA proposal values.
type msgRec struct {
	Origin  model.ProcID  `json:"o"`
	Msg     model.MsgID   `json:"m"`
	Seq     int           `json:"s,omitempty"`
	Content model.Payload `json:"c"`
}

// encodeRecs serializes a deterministic, id-sorted message list into a
// k-SA value.
func encodeRecs(recs []msgRec) model.Value {
	sorted := make([]msgRec, len(recs))
	copy(sorted, recs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Msg < sorted[j].Msg })
	b, err := json.Marshal(sorted)
	if err != nil {
		panic(fmt.Sprintf("broadcast: marshal recs: %v", err))
	}
	return model.Value(b)
}

// decodeRecs parses a k-SA value produced by encodeRecs.
func decodeRecs(v model.Value) ([]msgRec, error) {
	var recs []msgRec
	if err := json.Unmarshal([]byte(v), &recs); err != nil {
		return nil, fmt.Errorf("broadcast: decode recs: %w", err)
	}
	return recs, nil
}
