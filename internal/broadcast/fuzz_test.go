package broadcast

import (
	"testing"

	"nobroadcast/internal/model"
	"nobroadcast/internal/sched"
)

// White-box fuzz targets: the wire decoders must never panic and must
// round-trip what the encoders produce; the automata must tolerate
// arbitrary byte payloads arriving from the network.

func FuzzDecodeFrame(f *testing.F) {
	f.Add(string(encodeFrame(Frame{T: "msg", Origin: 1, Msg: 2, Content: "x"})))
	f.Add(string(encodeFrame(Frame{T: "echo", Origin: 3, Msg: 9, Seq: 4, Clock: "1,2,3"})))
	f.Add(`{"t":"msg"`)
	f.Add(``)
	f.Add(`[]`)
	f.Fuzz(func(t *testing.T, s string) {
		fr, err := decodeFrame(model.Payload(s))
		if err != nil {
			return
		}
		// Whatever decoded must re-encode and decode to the same frame
		// (Prior contents included).
		fr2, err := decodeFrame(encodeFrame(fr))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if fr.T != fr2.T || fr.Origin != fr2.Origin || fr.Msg != fr2.Msg || fr.Seq != fr2.Seq || fr.Content != fr2.Content || fr.Clock != fr2.Clock || len(fr.Prior) != len(fr2.Prior) {
			t.Fatalf("round trip changed frame: %+v vs %+v", fr, fr2)
		}
	})
}

func FuzzDecodeRecs(f *testing.F) {
	f.Add(string(encodeRecs([]msgRec{{Origin: 1, Msg: 2, Content: "a"}})))
	f.Add(`[{"o":1}]`)
	f.Add(`{}`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, s string) {
		recs, err := decodeRecs(model.Value(s))
		if err != nil {
			return
		}
		if _, err := decodeRecs(encodeRecs(recs)); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}

// FuzzAutomataOnGarbage: every automaton's OnReceive must tolerate
// arbitrary payloads without panicking and without emitting deliveries of
// never-broadcast messages.
func FuzzAutomataOnGarbage(f *testing.F) {
	f.Add("not json at all")
	f.Add(`{"t":"msg","o":1,"m":1,"c":"x"}`)
	f.Add(`{"t":"echo","o":-5,"m":-1,"c":""}`)
	f.Add(`{"t":"zzz"}`)
	f.Fuzz(func(t *testing.T, s string) {
		for _, c := range AllCandidates() {
			a := c.NewAutomaton(1)
			env := sched.NewEnv(1, 3)
			a.Init(env)
			env.TakeActions()
			a.OnReceive(env, 2, model.Payload(s))
			env.TakeActions() // must not panic
		}
	})
}
