package broadcast

import (
	"nobroadcast/internal/model"
	"nobroadcast/internal/sched"
)

// KStepped implements the iterated strawman of Section 3.2, k-Stepped
// Broadcast: messages are grouped by their broadcast step index a (message
// m is in S_a when it is the a-th message broadcast by its sender), and
// for each a, a dedicated k-SA object elects the message a process must
// deliver first within S_a. At most k distinct messages of each S_a are
// therefore delivered first, which is exactly the k-stepped ordering
// predicate — an ordering that characterizes iterated k-SA but, as the
// paper shows and the symmetry testers confirm, is not compositional.
//
// The election object for step a is KSAID(a).
type KStepped struct {
	seen      map[model.MsgID]bool
	delivered map[model.MsgID]bool
	groups    map[int]*steppedGroup
	// seq counts local broadcast invocations (the sender-side step index).
	seq int
}

type steppedGroup struct {
	proposed  bool
	firstDone bool
	buffered  []msgRec
}

var _ sched.Automaton = (*KStepped)(nil)

// NewKStepped constructs the automaton for one process.
func NewKStepped(model.ProcID) sched.Automaton {
	return &KStepped{
		seen:      make(map[model.MsgID]bool),
		delivered: make(map[model.MsgID]bool),
		groups:    make(map[int]*steppedGroup),
	}
}

// Init implements sched.Automaton.
func (s *KStepped) Init(*sched.Env) {}

// OnBroadcast implements sched.Automaton.
func (s *KStepped) OnBroadcast(env *sched.Env, msg model.MsgID, payload model.Payload) {
	s.seq++
	env.SendAll(encodeFrame(Frame{T: "msg", Origin: env.ID(), Msg: msg, Seq: s.seq, Content: payload}))
	env.ReturnBroadcast(msg)
}

func (s *KStepped) group(a int) *steppedGroup {
	g := s.groups[a]
	if g == nil {
		g = &steppedGroup{}
		s.groups[a] = g
	}
	return g
}

// OnReceive implements sched.Automaton.
func (s *KStepped) OnReceive(env *sched.Env, from model.ProcID, payload model.Payload) {
	fr, err := decodeFrame(payload)
	if err != nil || (fr.T != "msg" && fr.T != "echo") || fr.Seq < 1 || !fr.validOrigin(env.N()) {
		return
	}
	if s.seen[fr.Msg] {
		return
	}
	s.seen[fr.Msg] = true
	env.SendAll(encodeFrame(Frame{T: "echo", Origin: fr.Origin, Msg: fr.Msg, Seq: fr.Seq, Content: fr.Content}))
	rec := msgRec{Origin: fr.Origin, Msg: fr.Msg, Seq: fr.Seq, Content: fr.Content}
	g := s.group(fr.Seq)
	if g.firstDone {
		s.deliver(env, rec)
		return
	}
	// Buffer in any case: if the election picks a different message, the
	// candidate is still delivered right after the elected one.
	g.buffered = append(g.buffered, rec)
	if !g.proposed {
		g.proposed = true
		env.Propose(model.KSAID(fr.Seq), encodeRecs([]msgRec{rec}))
	}
}

// OnDecide implements sched.Automaton: the decided message is the first
// delivery within its step group; the group's backlog follows.
func (s *KStepped) OnDecide(env *sched.Env, obj model.KSAID, val model.Value) {
	recs, err := decodeRecs(val)
	if err != nil || len(recs) != 1 {
		return
	}
	g := s.group(int(obj))
	g.firstDone = true
	s.deliver(env, recs[0])
	for _, rec := range g.buffered {
		s.deliver(env, rec)
	}
	g.buffered = nil
}

func (s *KStepped) deliver(env *sched.Env, rec msgRec) {
	if s.delivered[rec.Msg] {
		return
	}
	s.delivered[rec.Msg] = true
	env.Deliver(rec.Msg, rec.Origin, rec.Content)
}
