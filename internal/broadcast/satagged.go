package broadcast

import (
	"nobroadcast/internal/model"
	"nobroadcast/internal/sched"
	"nobroadcast/internal/spec"
)

// SATagged implements the non-content-neutral strawman of Section 3.3: the
// ordering property applies only to messages of the special form
// SA(ksa, v). Plain messages diffuse and deliver immediately; for each ksa
// identifier, a dedicated k-SA election object picks the SA(ksa, _)
// message each process must deliver first among the SA(ksa, _) messages.
//
// The abstraction is compositional (the predicate is evaluated identically
// on any message subset) but not content-neutral: renaming plain messages
// into SA tags, or tags into plain payloads, changes which executions are
// admissible — which is exactly what the Theorem 1 pipeline exhibits for
// it (outcome: not content-neutral).
//
// The election object for tag identifier ksa is ElectionBase + ksa.
type SATagged struct {
	seen      map[model.MsgID]bool
	delivered map[model.MsgID]bool
	elections map[model.KSAID]*saElection
}

type saElection struct {
	proposed  bool
	firstDone bool
	buffered  []msgRec
}

// ElectionBase offsets election object identifiers away from the small
// integers used by round-based automata.
const ElectionBase model.KSAID = 100

var _ sched.Automaton = (*SATagged)(nil)

// NewSATagged constructs the automaton for one process.
func NewSATagged(model.ProcID) sched.Automaton {
	return &SATagged{
		seen:      make(map[model.MsgID]bool),
		delivered: make(map[model.MsgID]bool),
		elections: make(map[model.KSAID]*saElection),
	}
}

// Init implements sched.Automaton.
func (s *SATagged) Init(*sched.Env) {}

// OnBroadcast implements sched.Automaton.
func (s *SATagged) OnBroadcast(env *sched.Env, msg model.MsgID, payload model.Payload) {
	env.SendAll(encodeFrame(Frame{T: "msg", Origin: env.ID(), Msg: msg, Content: payload}))
	env.ReturnBroadcast(msg)
}

// OnReceive implements sched.Automaton.
func (s *SATagged) OnReceive(env *sched.Env, from model.ProcID, payload model.Payload) {
	fr, err := decodeFrame(payload)
	if err != nil || (fr.T != "msg" && fr.T != "echo") || !fr.validOrigin(env.N()) {
		return
	}
	if s.seen[fr.Msg] {
		return
	}
	s.seen[fr.Msg] = true
	env.SendAll(encodeFrame(Frame{T: "echo", Origin: fr.Origin, Msg: fr.Msg, Content: fr.Content}))
	rec := msgRec{Origin: fr.Origin, Msg: fr.Msg, Content: fr.Content}
	obj, _, tagged := spec.ParseSATag(fr.Content)
	if !tagged {
		// Plain content: the ordering property does not apply.
		s.deliver(env, rec)
		return
	}
	el := s.elections[obj]
	if el == nil {
		el = &saElection{}
		s.elections[obj] = el
	}
	if el.firstDone {
		s.deliver(env, rec)
		return
	}
	el.buffered = append(el.buffered, rec)
	if !el.proposed {
		el.proposed = true
		env.Propose(ElectionBase+obj, encodeRecs([]msgRec{rec}))
	}
}

// OnDecide implements sched.Automaton: the elected SA(ksa, _) message is
// delivered first among its tag group, then the group's backlog.
func (s *SATagged) OnDecide(env *sched.Env, obj model.KSAID, val model.Value) {
	recs, err := decodeRecs(val)
	if err != nil || len(recs) != 1 {
		return
	}
	el := s.elections[obj-ElectionBase]
	if el == nil {
		el = &saElection{}
		s.elections[obj-ElectionBase] = el
	}
	el.firstDone = true
	s.deliver(env, recs[0])
	for _, rec := range el.buffered {
		s.deliver(env, rec)
	}
	el.buffered = nil
}

func (s *SATagged) deliver(env *sched.Env, rec msgRec) {
	if s.delivered[rec.Msg] {
		return
	}
	s.delivered[rec.Msg] = true
	env.Deliver(rec.Msg, rec.Origin, rec.Content)
}

// SATagDecider is the k-SA solver matching SATagged: it broadcasts its
// proposal wrapped in an SA(1, v) tag and decides the value of the first
// SA(1, _) message delivered.
type SATagDecider struct {
	decided bool
}

var _ sched.App = (*SATagDecider)(nil)

// NewSATagDecider constructs the app for one process.
func NewSATagDecider(model.ProcID) sched.App {
	return &SATagDecider{}
}

// Init implements sched.App.
func (a *SATagDecider) Init(env sched.AppEnv, input model.Value) {
	env.Broadcast(spec.SATag(1, input))
}

// OnDeliver implements sched.App.
func (a *SATagDecider) OnDeliver(env sched.AppEnv, from model.ProcID, msg model.MsgID, payload model.Payload) {
	if a.decided {
		return
	}
	obj, v, ok := spec.ParseSATag(payload)
	if !ok || obj != 1 {
		return
	}
	a.decided = true
	env.Decide(v)
}

// OnReturn implements sched.App.
func (a *SATagDecider) OnReturn(sched.AppEnv, model.MsgID) {}
