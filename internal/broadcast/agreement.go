package broadcast

import (
	"nobroadcast/internal/model"
	"nobroadcast/internal/sched"
)

// RoundAgreement is a round-based agreement broadcast: messages diffuse
// reliably, and each process repeatedly proposes its set of known
// undelivered messages to a fresh agreement object (one per round),
// delivering the decided set in deterministic order.
//
// Instantiated over consensus objects (a 1-SA oracle) it implements Total
// Order Broadcast: every round decides a single common set, so all
// processes deliver in the same order — the classical equivalence with
// consensus [7]. Instantiated over k-SA objects with k > 1 it is
// KBOAttempt, a natural candidate implementation of k-Bounded Order
// Broadcast [15]: per round, at most k distinct sets are decided, bounding
// the divergence. The paper's corollary (Section 1.3) says no such
// implementation can be correct in message passing; internal/adversary
// exhibits the failure by driving it into an N-solo execution.
type RoundAgreement struct {
	id model.ProcID
	// known holds received-but-undelivered messages.
	known map[model.MsgID]msgRec
	// delivered marks locally delivered messages.
	delivered map[model.MsgID]bool
	seen      map[model.MsgID]bool
	round     int
	proposing bool
}

var _ sched.Automaton = (*RoundAgreement)(nil)

// NewTotalOrder constructs the round-agreement automaton; pair it with a
// consensus oracle (sched.NewFreeOracle(1)) to obtain Total Order
// Broadcast.
func NewTotalOrder(id model.ProcID) sched.Automaton {
	return &RoundAgreement{
		id:        id,
		known:     make(map[model.MsgID]msgRec),
		delivered: make(map[model.MsgID]bool),
		seen:      make(map[model.MsgID]bool),
	}
}

// NewKBOAttempt constructs the same automaton under its other role: a
// doomed candidate implementation of k-BO broadcast; pair it with a k-SA
// oracle, k > 1.
func NewKBOAttempt(id model.ProcID) sched.Automaton {
	return NewTotalOrder(id)
}

// Init implements sched.Automaton.
func (g *RoundAgreement) Init(*sched.Env) {}

// OnBroadcast implements sched.Automaton.
func (g *RoundAgreement) OnBroadcast(env *sched.Env, msg model.MsgID, payload model.Payload) {
	env.SendAll(encodeFrame(Frame{T: "msg", Origin: env.ID(), Msg: msg, Content: payload}))
	env.ReturnBroadcast(msg)
}

// OnReceive implements sched.Automaton.
func (g *RoundAgreement) OnReceive(env *sched.Env, from model.ProcID, payload model.Payload) {
	fr, err := decodeFrame(payload)
	if err != nil || (fr.T != "msg" && fr.T != "echo") || !fr.validOrigin(env.N()) {
		return
	}
	if g.seen[fr.Msg] {
		return
	}
	g.seen[fr.Msg] = true
	env.SendAll(encodeFrame(Frame{T: "echo", Origin: fr.Origin, Msg: fr.Msg, Content: fr.Content}))
	if !g.delivered[fr.Msg] {
		g.known[fr.Msg] = msgRec{Origin: fr.Origin, Msg: fr.Msg, Content: fr.Content}
	}
	g.maybePropose(env)
}

// maybePropose starts the next round when undelivered messages are known
// and no proposition is outstanding.
func (g *RoundAgreement) maybePropose(env *sched.Env) {
	if g.proposing || len(g.known) == 0 {
		return
	}
	recs := make([]msgRec, 0, len(g.known))
	for _, rec := range g.known {
		recs = append(recs, rec)
	}
	g.round++
	g.proposing = true
	env.Propose(model.KSAID(g.round), encodeRecs(recs))
}

// OnDecide implements sched.Automaton: deliver the decided set in id
// order, then move to the next round if messages remain.
func (g *RoundAgreement) OnDecide(env *sched.Env, obj model.KSAID, val model.Value) {
	recs, err := decodeRecs(val)
	if err != nil {
		// A decided value not produced by encodeRecs would indicate a
		// foreign proposer on our round objects; ignore the round.
		g.proposing = false
		g.maybePropose(env)
		return
	}
	for _, rec := range recs { // encodeRecs sorted by message id
		if g.delivered[rec.Msg] {
			continue
		}
		g.delivered[rec.Msg] = true
		delete(g.known, rec.Msg)
		env.Deliver(rec.Msg, rec.Origin, rec.Content)
	}
	g.proposing = false
	g.maybePropose(env)
}
