package broadcast_test

import (
	"fmt"
	"testing"

	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/model"
	"nobroadcast/internal/sched"
	"nobroadcast/internal/spec"
	"nobroadcast/internal/trace"
)

// runCandidate builds a runtime for the candidate and runs the given
// schedule over preloaded broadcasts.
func runCandidate(t *testing.T, c broadcast.Candidate, n, k int, opts sched.RunOptions, fair bool) *trace.Trace {
	t.Helper()
	rt, err := sched.New(sched.Config{
		N:            n,
		NewAutomaton: c.NewAutomaton,
		Oracle:       c.OracleFor(k),
	})
	if err != nil {
		t.Fatalf("sched.New: %v", err)
	}
	var tr *trace.Trace
	if fair {
		tr, err = rt.RunFair(opts)
	} else {
		tr, err = rt.RunRandom(opts)
	}
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return tr
}

func stdBroadcasts(n, perProc int) []sched.BroadcastReq {
	var out []sched.BroadcastReq
	for p := 1; p <= n; p++ {
		for j := 0; j < perProc; j++ {
			out = append(out, sched.BroadcastReq{
				Proc:    model.ProcID(p),
				Payload: model.Payload(fmt.Sprintf("msg-%d-%d", p, j)),
			})
		}
	}
	return out
}

// TestCandidatesSatisfySpecsFair: every candidate satisfies its own spec
// (and the universal broadcast properties and channel properties) under
// the fair scheduler with everyone correct.
func TestCandidatesSatisfySpecsFair(t *testing.T) {
	const n, k = 4, 2
	for _, c := range broadcast.AllCandidates() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			tr := runCandidate(t, c, n, k, sched.RunOptions{Broadcasts: stdBroadcasts(n, 3)}, true)
			if !tr.Complete {
				t.Fatal("fair run did not reach quiescence")
			}
			checks := []spec.Spec{
				spec.WellFormed(),
				spec.Channels(),
				c.Spec(k),
			}
			for _, s := range checks {
				if v := s.Check(tr); v != nil {
					t.Errorf("%s: %s", s.Name(), v)
				}
			}
		})
	}
}

// TestCandidatesSatisfySpecsRandom: same under adverseness-free random
// schedules (message reorder, interleaving), several seeds.
func TestCandidatesSatisfySpecsRandom(t *testing.T) {
	const n, k = 3, 2
	for _, c := range broadcast.AllCandidates() {
		c := c
		if c.Name == "kbo" {
			// The k-BO attempt is doomed by the paper's corollary: its
			// ordering spec can be violated. The universal properties
			// are still checked in TestKBOAttemptUniversalProperties.
			continue
		}
		t.Run(c.Name, func(t *testing.T) {
			for seed := uint64(1); seed <= 8; seed++ {
				tr := runCandidate(t, c, n, k, sched.RunOptions{
					Seed:       seed,
					Broadcasts: stdBroadcasts(n, 2),
				}, false)
				if !tr.Complete {
					t.Fatalf("seed %d: run did not reach quiescence", seed)
				}
				for _, s := range []spec.Spec{spec.WellFormed(), spec.Channels(), c.Spec(k)} {
					if v := s.Check(tr); v != nil {
						t.Errorf("seed %d: %s: %s", seed, s.Name(), v)
					}
				}
			}
		})
	}
}

// TestKBOAttemptUniversalProperties: even though the k-BO ordering cannot
// be guaranteed, the attempt still satisfies the four universal broadcast
// properties under arbitrary schedules.
func TestKBOAttemptUniversalProperties(t *testing.T) {
	c, err := broadcast.Lookup("kbo")
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 8; seed++ {
		tr := runCandidate(t, c, 3, 2, sched.RunOptions{Seed: seed, Broadcasts: stdBroadcasts(3, 2)}, false)
		if !tr.Complete {
			t.Fatalf("seed %d: incomplete", seed)
		}
		if v := spec.BasicBroadcast().Check(tr); v != nil {
			t.Errorf("seed %d: %s", seed, v)
		}
	}
}

// TestCandidatesWithCrashes: safety holds and liveness for correct
// processes holds when a process crashes mid-run.
func TestCandidatesWithCrashes(t *testing.T) {
	const n, k = 4, 2
	for _, c := range broadcast.AllCandidates() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			for seed := uint64(1); seed <= 4; seed++ {
				tr := runCandidate(t, c, n, k, sched.RunOptions{
					Seed:       seed,
					Broadcasts: stdBroadcasts(n, 2),
					CrashAt:    map[int]model.ProcID{12: 2},
				}, false)
				if !tr.Complete {
					t.Fatalf("seed %d: incomplete", seed)
				}
				// Safety always; ordering specs are safety plus the
				// universal liveness, which tolerates the crashed sender.
				s := c.Spec(k)
				if c.Name == "kbo" {
					s = spec.BasicBroadcast()
				}
				if v := s.Check(tr); v != nil {
					t.Errorf("seed %d: %s: %s", seed, s.Name(), v)
				}
				if v := spec.Channels().Check(tr); v != nil {
					t.Errorf("seed %d: %s", seed, v)
				}
			}
		})
	}
}

// TestReliableAgreementUnderSenderCrash: with the echo-based reliable
// broadcast, when the sender crashes mid-broadcast either all correct
// processes deliver or none do — exercised over many seeds and crash
// points.
func TestReliableAgreementUnderSenderCrash(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		for crashAt := 0; crashAt < 6; crashAt++ {
			rt, err := sched.New(sched.Config{N: 3, NewAutomaton: broadcast.NewReliable})
			if err != nil {
				t.Fatal(err)
			}
			tr, err := rt.RunRandom(sched.RunOptions{
				Seed:       seed,
				Broadcasts: []sched.BroadcastReq{{Proc: 1, Payload: "solo"}},
				CrashAt:    map[int]model.ProcID{crashAt: 1},
			})
			if err != nil {
				t.Fatal(err)
			}
			if !tr.Complete {
				t.Fatal("incomplete")
			}
			ix := trace.BuildIndex(tr)
			d2 := len(ix.Deliveries[2]) > 0
			d3 := len(ix.Deliveries[3]) > 0
			if d2 != d3 {
				t.Errorf("seed %d crash@%d: reliable agreement broken: p2=%v p3=%v", seed, crashAt, d2, d3)
			}
		}
	}
}

// ksaRun runs FirstDecider over the candidate and returns the trace.
func ksaRun(t *testing.T, name string, n, k int, seed uint64, crashAt map[int]model.ProcID) *trace.Trace {
	t.Helper()
	c, err := broadcast.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]model.Value, n)
	for i := range inputs {
		inputs[i] = model.Value(fmt.Sprintf("v%d", i+1))
	}
	rt, err := sched.New(sched.Config{
		N:            n,
		NewAutomaton: c.NewAutomaton,
		Oracle:       c.OracleFor(k),
		NewApp:       broadcast.NewFirstDecider,
		Inputs:       inputs,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := rt.RunRandom(sched.RunOptions{Seed: seed, CrashAt: crashAt})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Complete {
		t.Fatal("incomplete run")
	}
	return tr
}

// TestFirstKSolvesKSA (experiment E6): FirstDecider over the First-k
// broadcast solves k-SA — at most k distinct decisions, every correct
// process decides — for any number of crashes (wait-freedom, t = n-1).
func TestFirstKSolvesKSA(t *testing.T) {
	for _, n := range []int{3, 5} {
		for k := 2; k < n; k++ {
			for seed := uint64(1); seed <= 6; seed++ {
				tr := ksaRun(t, "first-k", n, k, seed, nil)
				ix := trace.BuildIndex(tr)
				dd := ix.DistinctDecisions(sched.DefaultAppObject)
				if len(dd) > k {
					t.Errorf("n=%d k=%d seed=%d: %d distinct decisions: %v", n, k, seed, len(dd), dd)
				}
				if v := spec.KSA(k).Check(tr); v != nil {
					t.Errorf("n=%d k=%d seed=%d: %s", n, k, seed, v)
				}
			}
		}
	}
}

func TestFirstKSolvesKSAWithCrashes(t *testing.T) {
	// n-1 = 3 crashes: wait-free requirement of the paper's model.
	tr := ksaRun(t, "first-k", 4, 2, 5, map[int]model.ProcID{6: 2, 9: 3, 12: 4})
	if v := spec.KSA(2).Check(tr); v != nil {
		t.Error(v)
	}
	if !tr.X.Correct(1) {
		t.Fatal("p1 should be correct")
	}
	ix := trace.BuildIndex(tr)
	if _, ok := ix.Decisions[sched.DefaultAppObject][1]; !ok {
		t.Error("correct p1 never decided (k-SA-Termination)")
	}
}

// TestTotalOrderConsensusEquivalence (experiment E7): FirstDecider over
// Total Order broadcast solves consensus (1-SA): a single decided value.
func TestTotalOrderConsensusEquivalence(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		for seed := uint64(1); seed <= 6; seed++ {
			tr := ksaRun(t, "total-order", n, 1, seed, nil)
			ix := trace.BuildIndex(tr)
			dd := ix.DistinctDecisions(sched.DefaultAppObject)
			if len(dd) != 1 {
				t.Errorf("n=%d seed=%d: consensus decided %d values: %v", n, seed, len(dd), dd)
			}
			if v := spec.KSA(1).Check(tr); v != nil {
				t.Errorf("n=%d seed=%d: %s", n, seed, v)
			}
			if v := spec.TotalOrderBroadcast().Check(tr); v != nil {
				t.Errorf("n=%d seed=%d: %s", n, seed, v)
			}
		}
	}
}

// TestKSteppedSolvesIteratedKSA: FirstDecider over k-Stepped broadcast
// solves k-SA through the step-1 election.
func TestKSteppedSolvesIteratedKSA(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		tr := ksaRun(t, "k-stepped", 4, 2, seed, nil)
		if v := spec.KSA(2).Check(tr); v != nil {
			t.Errorf("seed=%d: %s", seed, v)
		}
	}
}

// TestCandidateDeterminism: identical seeds produce identical traces.
func TestCandidateDeterminism(t *testing.T) {
	for _, c := range broadcast.AllCandidates() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			run := func() string {
				tr := runCandidate(t, c, 3, 2, sched.RunOptions{Seed: 42, Broadcasts: stdBroadcasts(3, 2)}, false)
				return tr.X.String()
			}
			if run() != run() {
				t.Error("non-deterministic trace for equal seeds")
			}
		})
	}
}

func TestRegistry(t *testing.T) {
	if _, err := broadcast.Lookup("nope"); err == nil {
		t.Error("expected error for unknown candidate")
	}
	names := broadcast.Names()
	if len(names) != 10 {
		t.Errorf("expected 10 candidates, got %v", names)
	}
	all := broadcast.AllCandidates()
	if len(all) != len(names) {
		t.Errorf("AllCandidates/Names mismatch")
	}
	for _, c := range all {
		if c.Describe == "" || c.Spec == nil || c.NewAutomaton == nil {
			t.Errorf("candidate %q incompletely registered", c.Name)
		}
		if c.OracleFor(2) == nil {
			t.Errorf("candidate %q has no oracle", c.Name)
		}
	}
}

// TestFramesIgnoreGarbage: automata must ignore undecodable payloads
// rather than corrupt their state.
func TestFramesIgnoreGarbage(t *testing.T) {
	for _, c := range broadcast.AllCandidates() {
		rt, err := sched.New(sched.Config{N: 2, NewAutomaton: c.NewAutomaton, Oracle: c.OracleFor(2)})
		if err != nil {
			t.Fatal(err)
		}
		// Inject a raw garbage send from an automaton-free path: use a
		// broadcast whose content is garbage — the frames wrap it, so
		// instead simulate by a foreign frame type.
		if _, err := rt.InvokeBroadcast(1, "legit"); err != nil {
			t.Fatal(err)
		}
		if _, err := rt.RunFair(sched.RunOptions{}); err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
	}
}
