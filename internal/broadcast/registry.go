package broadcast

import (
	"fmt"
	"sort"

	"nobroadcast/internal/model"
	"nobroadcast/internal/sched"
	"nobroadcast/internal/spec"
)

// Candidate bundles everything the proof pipeline and the cmd tools need
// to know about one broadcast abstraction: its specification (the
// predicate defining admissible executions), its implementation in
// CAMP_n[k-SA], and how it uses the k-SA oracle.
type Candidate struct {
	// Name identifies the abstraction ("send-to-all", "kbo", ...).
	Name string
	// Describe is a one-line human description.
	Describe string
	// Spec builds the abstraction's specification; k parameterizes the
	// ordering degree where applicable (ignored otherwise).
	Spec func(k int) spec.Spec
	// NewAutomaton builds the implementation 𝓑 for one process.
	NewAutomaton func(id model.ProcID) sched.Automaton
	// OracleK reports the agreement degree of the k-SA oracle the
	// implementation needs: 0 means "no oracle used", -1 means "the
	// workload's k", and 1 means consensus.
	OracleK int
	// SolvesKSA reports whether the solver app over this abstraction
	// solves k-SA (the B → k-SA direction of the claimed equivalence).
	SolvesKSA bool
	// DeterministicOrder reports that, on a fault-free run with a single
	// broadcaster, every process must deliver in exactly the broadcast
	// order — regardless of scheduling or runtime. The conformance
	// harness (internal/conformance) uses it to assert identical
	// per-process delivery sequences across the two runtimes.
	DeterministicOrder bool
	// ScheduleSensitive reports that the implementation's spec compliance
	// depends on the schedule: the deterministic fair scheduler admits its
	// runs, while adversarial or genuinely concurrent schedules can
	// violate the spec. Set for the doomed attempts the paper refutes
	// (kbo). The conformance harness accepts a concurrent-side violation
	// paired with a deterministic-side pass for such candidates — the
	// concurrent runtime found a counterexample schedule, which is the
	// expected outcome, not a runtime divergence.
	ScheduleSensitive bool
	// NewSolver builds the k-SA-solving app 𝓐 matched to this
	// abstraction. Nil means the generic FirstDecider.
	NewSolver func(id model.ProcID) sched.App
}

// SolverFor returns the candidate's k-SA solver app factory.
func (c Candidate) SolverFor() func(id model.ProcID) sched.App {
	if c.NewSolver != nil {
		return c.NewSolver
	}
	return NewFirstDecider
}

// OracleFor returns the oracle the candidate's implementation needs for a
// workload of agreement degree k.
func (c Candidate) OracleFor(k int) sched.Oracle {
	switch c.OracleK {
	case 0:
		// No oracle used; supply a consensus oracle to satisfy the
		// runtime, it will never be consulted.
		return sched.NewFreeOracle(1)
	case -1:
		return sched.NewFreeOracle(k)
	default:
		return sched.NewFreeOracle(c.OracleK)
	}
}

// candidates is the registry, keyed by name.
var candidates = map[string]Candidate{
	"send-to-all": {
		Name:         "send-to-all",
		Describe:     "basic broadcast: send to all, deliver on receipt (Section 3.1)",
		Spec:         func(int) spec.Spec { return spec.SendToAll() },
		NewAutomaton: NewSendToAll,
		OracleK:      0,
	},
	"reliable": {
		Name:         "reliable",
		Describe:     "reliable broadcast by message echo [13]",
		Spec:         func(int) spec.Spec { return spec.BasicBroadcast() },
		NewAutomaton: NewReliable,
		OracleK:      0,
	},
	"fifo": {
		Name:               "fifo",
		Describe:           "FIFO broadcast: per-sender delivery order [3,24]",
		Spec:               func(int) spec.Spec { return spec.FIFOBroadcast() },
		NewAutomaton:       NewFIFO,
		OracleK:            0,
		DeterministicOrder: true,
	},
	"causal": {
		Name:               "causal",
		Describe:           "causal broadcast: vector-clock gated delivery [24]",
		Spec:               func(int) spec.Spec { return spec.CausalBroadcast() },
		NewAutomaton:       NewCausal,
		OracleK:            0,
		DeterministicOrder: true,
	},
	"mutual": {
		Name:         "mutual",
		Describe:     "mutual broadcast: register-equivalent quorum-echo pattern [9] (needs a correct majority)",
		Spec:         func(int) spec.Spec { return spec.MutualBroadcast() },
		NewAutomaton: NewMutual,
		OracleK:      0,
	},
	"total-order": {
		Name:         "total-order",
		Describe:     "total order broadcast on consensus rounds [7,21]",
		Spec:         func(int) spec.Spec { return spec.TotalOrderBroadcast() },
		NewAutomaton: NewTotalOrder,
		OracleK:      1,
		SolvesKSA:    true, // with k = 1: consensus
		// Not DeterministicOrder: plain total order fixes one agreed
		// delivery sequence per run, not the broadcast order — consensus
		// rounds may elect single-sender messages out of send order when
		// the transport reorders their arrival.
	},
	"first-k": {
		Name:         "first-k",
		Describe:     "one-shot strawman: a k-SA object elects the first deliveries (Section 1.4)",
		Spec:         spec.FirstKBroadcast,
		NewAutomaton: NewFirstK,
		OracleK:      -1,
		SolvesKSA:    true,
	},
	"k-stepped": {
		Name:         "k-stepped",
		Describe:     "iterated strawman: per-step k-SA elections (Section 3.2)",
		Spec:         spec.KSteppedBroadcast,
		NewAutomaton: NewKStepped,
		OracleK:      -1,
		SolvesKSA:    true,
	},
	"sa-tagged": {
		Name:         "sa-tagged",
		Describe:     "non-content-neutral strawman: ordering applies only to SA(ksa,v) messages (Section 3.3)",
		Spec:         spec.SATaggedBroadcast,
		NewAutomaton: NewSATagged,
		OracleK:      -1,
		SolvesKSA:    true,
		NewSolver:    NewSATagDecider,
	},
	"kbo": {
		Name:              "kbo",
		Describe:          "k-Bounded Order broadcast attempt on k-SA rounds [15] (doomed in message passing)",
		Spec:              spec.KBOBroadcast,
		NewAutomaton:      NewKBOAttempt,
		OracleK:           -1,
		SolvesKSA:         true,
		ScheduleSensitive: true,
	},
}

// Lookup returns the registered candidate with the given name.
func Lookup(name string) (Candidate, error) {
	c, ok := candidates[name]
	if !ok {
		return Candidate{}, fmt.Errorf("broadcast: unknown abstraction %q (have %v)", name, Names())
	}
	return c, nil
}

// Names lists the registered abstraction names, sorted.
func Names() []string {
	out := make([]string, 0, len(candidates))
	for name := range candidates {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// AllCandidates returns the registered candidates sorted by name.
func AllCandidates() []Candidate {
	names := Names()
	out := make([]Candidate, len(names))
	for i, n := range names {
		out[i] = candidates[n]
	}
	return out
}
