package broadcast

import (
	"nobroadcast/internal/model"
	"nobroadcast/internal/sched"
)

// FirstDecider is the canonical algorithm 𝓐 solving k-SA in CAMP_n[B] for
// ordering-constrained broadcasts B: broadcast the proposed value, decide
// the content of the first delivered message. Its agreement degree is
// inherited from B's ordering property — at most k distinct first
// deliveries (First-k, k-BO with everyone correct, Total Order with k = 1)
// yield at most k distinct decisions. This is also the algorithm whose
// solo executions α_i drive Lemma 9: the substitution argument replays it
// against the δ execution and exhibits k+1 distinct decisions.
type FirstDecider struct {
	decided bool
}

var _ sched.App = (*FirstDecider)(nil)

// NewFirstDecider constructs the app for one process.
func NewFirstDecider(model.ProcID) sched.App {
	return &FirstDecider{}
}

// Init implements sched.App: broadcast the proposal.
func (a *FirstDecider) Init(env sched.AppEnv, input model.Value) {
	env.Broadcast(model.Payload(input))
}

// OnDeliver implements sched.App: the first delivery decides.
func (a *FirstDecider) OnDeliver(env sched.AppEnv, from model.ProcID, msg model.MsgID, payload model.Payload) {
	if a.decided {
		return
	}
	a.decided = true
	env.Decide(model.Value(payload))
}

// OnReturn implements sched.App.
func (a *FirstDecider) OnReturn(sched.AppEnv, model.MsgID) {}

// DepthDecider is a k-SA solver that stretches its decision point: it
// broadcasts its proposal depth times (pipelined on returns, all carrying
// the proposal as content) and decides the content of its first delivery
// only once depth messages have been delivered. Functionally it solves
// k-SA exactly like FirstDecider; its purpose is to force N_i = depth > 1
// in the solo runs, so the Theorem 1 pipeline (internal/core) exercises
// the multi-message branch of Lemma 9's substitution.
type DepthDecider struct {
	depth     int
	sent      int
	delivered int
	first     model.Value
	haveFirst bool
	decided   bool
	input     model.Value
}

var _ sched.App = (*DepthDecider)(nil)

// NewDepthDecider returns a factory for solvers of the given depth
// (depth >= 1; 1 behaves like FirstDecider).
func NewDepthDecider(depth int) func(model.ProcID) sched.App {
	return func(model.ProcID) sched.App {
		return &DepthDecider{depth: depth}
	}
}

// Init implements sched.App.
func (a *DepthDecider) Init(env sched.AppEnv, input model.Value) {
	a.input = input
	a.sent = 1
	env.Broadcast(model.Payload(input))
}

// OnDeliver implements sched.App.
func (a *DepthDecider) OnDeliver(env sched.AppEnv, from model.ProcID, msg model.MsgID, payload model.Payload) {
	if !a.haveFirst {
		a.haveFirst = true
		a.first = model.Value(payload)
	}
	a.delivered++
	if !a.decided && a.delivered >= a.depth {
		a.decided = true
		env.Decide(a.first)
	}
}

// OnReturn implements sched.App: pipeline the next copy.
func (a *DepthDecider) OnReturn(env sched.AppEnv, _ model.MsgID) {
	if a.sent < a.depth {
		a.sent++
		env.Broadcast(model.Payload(a.input))
	}
}

// Flooder is a load-generating app used by benchmarks and composition
// examples: it broadcasts Count messages, the next one as soon as the
// previous invocation returns, and never decides.
type Flooder struct {
	id     model.ProcID
	prefix string
	count  int
	sent   int
}

var _ sched.App = (*Flooder)(nil)

// NewFlooder returns a factory producing flooders broadcasting count
// messages tagged with the prefix.
func NewFlooder(prefix string, count int) func(model.ProcID) sched.App {
	return func(id model.ProcID) sched.App {
		return &Flooder{id: id, prefix: prefix, count: count}
	}
}

// Init implements sched.App.
func (f *Flooder) Init(env sched.AppEnv, _ model.Value) {
	f.next(env)
}

func (f *Flooder) next(env sched.AppEnv) {
	if f.sent >= f.count {
		return
	}
	f.sent++
	env.Broadcast(model.Payload(f.prefix))
}

// OnDeliver implements sched.App.
func (f *Flooder) OnDeliver(sched.AppEnv, model.ProcID, model.MsgID, model.Payload) {}

// OnReturn implements sched.App: pipeline the next broadcast.
func (f *Flooder) OnReturn(env sched.AppEnv, _ model.MsgID) {
	f.next(env)
}
