package broadcast

import (
	"nobroadcast/internal/model"
	"nobroadcast/internal/sched"
)

// FIFO implements FIFO broadcast [3, 24]: reliable diffusion plus
// per-sender sequence numbers. A message carrying sequence number s from
// origin o is buffered until the s-1 previous messages of o have been
// delivered, so deliveries respect each sender's broadcast order.
type FIFO struct {
	seen map[model.MsgID]bool
	// next[o] is the sequence number of o's next deliverable message.
	next map[model.ProcID]int
	// buffer[o][s] holds o's message with sequence number s, received but
	// not yet deliverable.
	buffer map[model.ProcID]map[int]Frame
	// seq is the local broadcast counter.
	seq int
}

var _ sched.Automaton = (*FIFO)(nil)

// NewFIFO constructs the automaton for one process.
func NewFIFO(model.ProcID) sched.Automaton {
	return &FIFO{
		seen:   make(map[model.MsgID]bool),
		next:   make(map[model.ProcID]int),
		buffer: make(map[model.ProcID]map[int]Frame),
	}
}

// Init implements sched.Automaton.
func (f *FIFO) Init(*sched.Env) {}

// OnBroadcast implements sched.Automaton.
func (f *FIFO) OnBroadcast(env *sched.Env, msg model.MsgID, payload model.Payload) {
	f.seq++
	env.SendAll(encodeFrame(Frame{T: "msg", Origin: env.ID(), Msg: msg, Seq: f.seq, Content: payload}))
	env.ReturnBroadcast(msg)
}

// OnReceive implements sched.Automaton.
func (f *FIFO) OnReceive(env *sched.Env, from model.ProcID, payload model.Payload) {
	fr, err := decodeFrame(payload)
	if err != nil || (fr.T != "msg" && fr.T != "echo") || !fr.validOrigin(env.N()) {
		return
	}
	if f.seen[fr.Msg] {
		return
	}
	f.seen[fr.Msg] = true
	env.SendAll(encodeFrame(Frame{T: "echo", Origin: fr.Origin, Msg: fr.Msg, Seq: fr.Seq, Content: fr.Content}))
	buf := f.buffer[fr.Origin]
	if buf == nil {
		buf = make(map[int]Frame)
		f.buffer[fr.Origin] = buf
	}
	buf[fr.Seq] = fr
	f.drain(env, fr.Origin)
}

// drain delivers the origin's buffered messages while the next expected
// sequence number is present.
func (f *FIFO) drain(env *sched.Env, origin model.ProcID) {
	buf := f.buffer[origin]
	for {
		want := f.next[origin] + 1 // sequence numbers start at 1
		fr, ok := buf[want]
		if !ok {
			return
		}
		delete(buf, want)
		f.next[origin] = want
		env.Deliver(fr.Msg, fr.Origin, fr.Content)
	}
}

// OnDecide implements sched.Automaton. FIFO uses no k-SA object.
func (f *FIFO) OnDecide(*sched.Env, model.KSAID, model.Value) {}
