package broadcast

import (
	"nobroadcast/internal/model"
	"nobroadcast/internal/sched"
)

// Mutual implements Mutual Broadcast [9], the abstraction computationally
// equivalent to read/write registers, with a quorum-echo pattern:
//
//   - a broadcaster sends its message to all and waits for echoes from a
//     majority of processes;
//   - an echoer records the message in its echo log, delivers it if new,
//     and returns an echo carrying ALL messages it has echoed so far;
//   - before delivering its own message (and returning), the broadcaster
//     first delivers every message learned from the received echoes.
//
// Two majorities intersect in some process r, and r echoed the two
// messages in some order; its echo for the later one carries the earlier
// one, so at least one of the two broadcasters delivers the other's
// message before its own — the Mutual-Order property, the broadcast-level
// reflection of register atomicity.
//
// The implementation requires a majority of correct processes (t < n/2),
// exactly like register emulation in message passing. Under the paper's
// wait-free model (t = n - 1) it cannot make solo progress: driving it
// with the adversary of internal/adversary trips the Lemma 7 guard — a
// faithful demonstration that Mutual Broadcast (and with it shared
// memory) is out of reach when a majority may crash.
type Mutual struct {
	id model.ProcID
	n  int
	// delivered marks locally delivered messages.
	delivered map[model.MsgID]bool
	// echoed is the ordered log of messages this process has echoed.
	echoed []msgRec
	inLog  map[model.MsgID]bool
	// echoes counts echo senders per own in-flight broadcast.
	echoes map[model.MsgID]map[model.ProcID]bool
	// learned accumulates the prior messages carried by echoes, in
	// arrival order, per own in-flight broadcast.
	learned map[model.MsgID][]msgRec
	// pending holds the content of own in-flight broadcasts.
	pending map[model.MsgID]model.Payload
}

var _ sched.Automaton = (*Mutual)(nil)

// NewMutual constructs the automaton for one process.
func NewMutual(id model.ProcID) sched.Automaton {
	return &Mutual{
		id:        id,
		delivered: make(map[model.MsgID]bool),
		inLog:     make(map[model.MsgID]bool),
		echoes:    make(map[model.MsgID]map[model.ProcID]bool),
		learned:   make(map[model.MsgID][]msgRec),
		pending:   make(map[model.MsgID]model.Payload),
	}
}

// Init implements sched.Automaton.
func (m *Mutual) Init(env *sched.Env) { m.n = env.N() }

// majority is the quorum size.
func (m *Mutual) majority() int { return m.n/2 + 1 }

// OnBroadcast implements sched.Automaton: diffuse and await a majority of
// echoes before delivering locally and returning.
func (m *Mutual) OnBroadcast(env *sched.Env, msg model.MsgID, payload model.Payload) {
	m.pending[msg] = payload
	m.echoes[msg] = make(map[model.ProcID]bool, m.n)
	env.SendAll(encodeFrame(Frame{T: "msg", Origin: env.ID(), Msg: msg, Content: payload}))
}

// OnReceive implements sched.Automaton.
func (m *Mutual) OnReceive(env *sched.Env, from model.ProcID, payload model.Payload) {
	fr, err := decodeFrame(payload)
	if err != nil || !fr.validOrigin(env.N()) {
		return
	}
	switch fr.T {
	case "msg":
		rec := msgRec{Origin: fr.Origin, Msg: fr.Msg, Content: fr.Content}
		if !m.inLog[fr.Msg] {
			m.inLog[fr.Msg] = true
			m.echoed = append(m.echoed, rec)
		}
		// Others' messages deliver on receipt; one's own message only
		// delivers at its echo quorum.
		if fr.Origin != m.id {
			m.deliver(env, rec)
		}
		// The echo carries everything echoed so far (including rec).
		prior := make([]msgRec, len(m.echoed))
		copy(prior, m.echoed)
		env.Send(fr.Origin, encodeFrame(Frame{T: "echo", Origin: m.id, Msg: fr.Msg, Prior: prior}))
	case "echo":
		set, mine := m.echoes[fr.Msg]
		if !mine {
			return
		}
		set[fr.Origin] = true
		m.learned[fr.Msg] = append(m.learned[fr.Msg], fr.Prior...)
		if len(set) >= m.majority() {
			// Quorum: deliver everything learned — skipping one's own
			// message, which echoes carry back — then the own message.
			for _, rec := range m.learned[fr.Msg] {
				if rec.Origin == m.id {
					continue
				}
				m.deliver(env, rec)
			}
			m.deliver(env, msgRec{Origin: m.id, Msg: fr.Msg, Content: m.pending[fr.Msg]})
			env.ReturnBroadcast(fr.Msg)
			delete(m.pending, fr.Msg)
			delete(m.echoes, fr.Msg)
			delete(m.learned, fr.Msg)
		}
	}
}

func (m *Mutual) deliver(env *sched.Env, rec msgRec) {
	if m.delivered[rec.Msg] {
		return
	}
	m.delivered[rec.Msg] = true
	env.Deliver(rec.Msg, rec.Origin, rec.Content)
}

// OnDecide implements sched.Automaton. Mutual uses no k-SA object.
func (m *Mutual) OnDecide(*sched.Env, model.KSAID, model.Value) {}
