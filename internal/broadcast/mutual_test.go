package broadcast_test

import (
	"fmt"
	"testing"

	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/model"
	"nobroadcast/internal/sched"
	"nobroadcast/internal/spec"
	"nobroadcast/internal/trace"
)

// TestMutualOrderHolds: the quorum-echo implementation preserves the
// mutual ordering property across many adversarial random schedules —
// including schedules that delay the direct msg frames arbitrarily (the
// scenario that breaks a naive majority-ack design).
func TestMutualOrderHolds(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		for seed := uint64(1); seed <= 30; seed++ {
			c, err := broadcast.Lookup("mutual")
			if err != nil {
				t.Fatal(err)
			}
			tr := runCandidate(t, c, n, 1, sched.RunOptions{
				Seed:       seed,
				Broadcasts: stdBroadcasts(n, 2),
			}, false)
			if !tr.Complete {
				t.Fatalf("n=%d seed=%d: incomplete", n, seed)
			}
			if v := spec.MutualBroadcast().Check(tr); v != nil {
				t.Errorf("n=%d seed=%d: %s", n, seed, v)
			}
		}
	}
}

// TestMutualToleratesMinorityCrashes: with a correct majority, broadcasts
// of correct processes still return and deliver everywhere correct.
func TestMutualToleratesMinorityCrashes(t *testing.T) {
	c, err := broadcast.Lookup("mutual")
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 10; seed++ {
		tr := runCandidate(t, c, 5, 1, sched.RunOptions{
			Seed:       seed,
			Broadcasts: stdBroadcasts(5, 1),
			CrashAt:    map[int]model.ProcID{8: 4, 15: 5},
		}, false)
		if !tr.Complete {
			t.Fatalf("seed %d: incomplete", seed)
		}
		if v := spec.MutualBroadcast().Check(tr); v != nil {
			t.Errorf("seed %d: %s", seed, v)
		}
	}
}

// TestMutualBlocksWithoutMajority: with a majority crashed, a broadcast
// cannot return — the run stalls incomplete rather than violating safety.
// This is the t < n/2 requirement of register emulation made visible.
func TestMutualBlocksWithoutMajority(t *testing.T) {
	c, err := broadcast.Lookup("mutual")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := sched.New(sched.Config{N: 3, NewAutomaton: c.NewAutomaton})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Crash(2); err != nil {
		t.Fatal(err)
	}
	if err := rt.Crash(3); err != nil {
		t.Fatal(err)
	}
	tr, err := rt.RunFair(sched.RunOptions{
		Broadcasts: []sched.BroadcastReq{{Proc: 1, Payload: "stuck"}},
		MaxEvents:  5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	ix := trace.BuildIndex(tr)
	if _, delivered := ix.DeliveryPos[1][1]; delivered {
		t.Error("p1 delivered its own message without a quorum")
	}
	// Safety still intact on the stalled run.
	if v := spec.MutualOrder().Check(tr); v != nil {
		t.Error(v)
	}
	// Liveness genuinely fails: with a crashed majority the broadcast can
	// never return — exactly the t < n/2 lower bound for register-strength
	// abstractions, reported by the checker as a termination violation.
	v := spec.BasicBroadcast().Check(tr)
	if v == nil || v.Property != "BC-Local-Termination" {
		t.Errorf("expected BC-Local-Termination violation for the majority-crash stall, got %v", v)
	}
}

// TestReliableIsUniform: the echo-before-deliver pattern makes Reliable
// uniformly reliable — even when the sender crashes mid-broadcast, either
// nobody delivers or all correct processes do. SendToAll, by contrast, is
// provably not uniform: a partial send crash makes one process deliver
// and leaves the others empty-handed.
func TestReliableIsUniform(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		for crashAt := 0; crashAt < 8; crashAt++ {
			rt, err := sched.New(sched.Config{N: 3, NewAutomaton: broadcast.NewReliable})
			if err != nil {
				t.Fatal(err)
			}
			tr, err := rt.RunRandom(sched.RunOptions{
				Seed:       seed,
				Broadcasts: []sched.BroadcastReq{{Proc: 1, Payload: "u"}},
				CrashAt:    map[int]model.ProcID{crashAt: 1},
			})
			if err != nil {
				t.Fatal(err)
			}
			if !tr.Complete {
				t.Fatal("incomplete")
			}
			if v := spec.UniformReliable().Check(tr); v != nil {
				t.Errorf("seed=%d crash@%d: %s", seed, crashAt, v)
			}
		}
	}
}

// TestSendToAllNotUniform: crash the sender between its send actions so
// that the message reaches p2 but never p3 — p2 delivers, p3 cannot, and
// uniformity is violated while the plain (CS) spec tolerates it.
func TestSendToAllNotUniform(t *testing.T) {
	rt, err := sched.New(sched.Config{N: 3, NewAutomaton: broadcast.NewSendToAll})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.InvokeBroadcast(1, "partial"); err != nil {
		t.Fatal(err)
	}
	// Queue: send(p1), send(p2), send(p3), return. Execute the self-send
	// and the send to p2, deliver the latter at p2, then crash p1 before
	// the send to p3 executes.
	var toP2 model.MsgID
	for i := 0; i < 2; i++ {
		step, ok, err := rt.ExecNext(1)
		if err != nil || !ok || step.Kind != model.KindSend {
			t.Fatalf("unexpected action %d: %v %v %v", i, step, ok, err)
		}
		if step.Peer == 2 {
			toP2 = step.Msg
		}
	}
	if toP2 == model.NoMsg {
		t.Fatal("send to p2 not observed")
	}
	if _, err := rt.ReceiveInstance(toP2); err != nil {
		t.Fatal(err)
	}
	if err := rt.Crash(1); err != nil {
		t.Fatal(err)
	}
	tr, err := rt.RunFair(sched.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Complete {
		t.Fatal("incomplete")
	}
	ix := trace.BuildIndex(tr)
	if len(ix.Deliveries[2]) != 1 {
		t.Fatalf("p2 should have delivered the message: %v", ix.Deliveries[2])
	}
	if len(ix.Deliveries[3]) != 0 {
		t.Fatalf("p3 cannot have delivered: %v", ix.Deliveries[3])
	}
	v := spec.UniformReliable().Check(tr)
	if v == nil || v.Property != "BC-Uniform-Termination" {
		t.Fatalf("expected uniform-termination violation, got %v", v)
	}
	// The plain spec is satisfied: the sender was faulty, so its message
	// is exempt from the CS-termination guarantee.
	if v := spec.BasicBroadcast().Check(tr); v != nil {
		t.Errorf("plain reliable spec should tolerate this: %s", v)
	}
}

// TestMutualDeliversAtCorrectProcesses: content and origins survive the
// quorum-echo path (learned deliveries carry full records).
func TestMutualDeliversAtCorrectProcesses(t *testing.T) {
	c, err := broadcast.Lookup("mutual")
	if err != nil {
		t.Fatal(err)
	}
	tr := runCandidate(t, c, 3, 1, sched.RunOptions{
		Seed: 3,
		Broadcasts: []sched.BroadcastReq{
			{Proc: 1, Payload: "alpha"},
			{Proc: 2, Payload: "beta"},
		},
	}, false)
	if !tr.Complete {
		t.Fatal("incomplete")
	}
	ix := trace.BuildIndex(tr)
	for p := 1; p <= 3; p++ {
		pid := model.ProcID(p)
		if got := len(ix.Deliveries[pid]); got != 2 {
			t.Errorf("p%d delivered %d messages, want 2", p, got)
		}
	}
	for m, info := range ix.Broadcasts {
		if ix.DeliverOrigin[m] != info.From {
			t.Errorf("m%d origin recorded as %v, broadcast by %v", m, ix.DeliverOrigin[m], info.From)
		}
	}
	if v := spec.Channels().Check(tr); v != nil {
		t.Error(v)
	}
}

// TestMutualEchoPriorGrows: later echoes carry earlier messages — the
// mechanism behind the quorum-intersection argument, verified through the
// observable effect: across many seeds, whenever two processes broadcast
// concurrently, at least one delivers the other's message before its own.
func TestMutualEchoPriorGrows(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		c, _ := broadcast.Lookup("mutual")
		tr := runCandidate(t, c, 3, 1, sched.RunOptions{
			Seed: seed,
			Broadcasts: []sched.BroadcastReq{
				{Proc: 1, Payload: model.Payload(fmt.Sprintf("a%d", seed))},
				{Proc: 2, Payload: model.Payload(fmt.Sprintf("b%d", seed))},
			},
		}, false)
		ix := trace.BuildIndex(tr)
		m1 := ix.BroadcastSeq[1][0]
		m2 := ix.BroadcastSeq[2][0]
		p1OwnFirst := ix.DeliveryPos[1][m1] < ix.DeliveryPos[1][m2]
		p2OwnFirst := ix.DeliveryPos[2][m2] < ix.DeliveryPos[2][m1]
		if p1OwnFirst && p2OwnFirst {
			t.Errorf("seed %d: both broadcasters delivered their own message first", seed)
		}
	}
}
