package broadcast

import (
	"nobroadcast/internal/model"
	"nobroadcast/internal/sched"
)

// SendToAll is the basic broadcast abstraction of Section 3.1: broadcast
// sends the message to every process (including the sender) and returns;
// delivery happens on receipt. It satisfies exactly the four universal
// properties — BC-Validity, BC-No-Duplication, BC-Local-Termination, and
// BC-Global-CS-Termination — and nothing more: a sender that crashes
// mid-broadcast may be delivered by some processes and not others.
type SendToAll struct {
	delivered map[model.MsgID]bool
}

var _ sched.Automaton = (*SendToAll)(nil)

// NewSendToAll constructs the automaton for one process.
func NewSendToAll(model.ProcID) sched.Automaton {
	return &SendToAll{delivered: make(map[model.MsgID]bool)}
}

// Init implements sched.Automaton.
func (s *SendToAll) Init(*sched.Env) {}

// OnBroadcast implements sched.Automaton.
func (s *SendToAll) OnBroadcast(env *sched.Env, msg model.MsgID, payload model.Payload) {
	env.SendAll(encodeFrame(Frame{T: "msg", Origin: env.ID(), Msg: msg, Content: payload}))
	env.ReturnBroadcast(msg)
}

// OnReceive implements sched.Automaton.
func (s *SendToAll) OnReceive(env *sched.Env, from model.ProcID, payload model.Payload) {
	f, err := decodeFrame(payload)
	if err != nil || f.T != "msg" || !f.validOrigin(env.N()) {
		return
	}
	if s.delivered[f.Msg] {
		return
	}
	s.delivered[f.Msg] = true
	env.Deliver(f.Msg, f.Origin, f.Content)
}

// OnDecide implements sched.Automaton. SendToAll uses no k-SA object.
func (s *SendToAll) OnDecide(*sched.Env, model.KSAID, model.Value) {}

// Reliable is the echo-based reliable broadcast [13]: every process
// re-diffuses the first copy of each message it receives before delivering
// it, so if any correct process delivers a message, all correct processes
// do — even when the sender crashes mid-broadcast.
type Reliable struct {
	seen map[model.MsgID]bool
}

var _ sched.Automaton = (*Reliable)(nil)

// NewReliable constructs the automaton for one process.
func NewReliable(model.ProcID) sched.Automaton {
	return &Reliable{seen: make(map[model.MsgID]bool)}
}

// Init implements sched.Automaton.
func (r *Reliable) Init(*sched.Env) {}

// OnBroadcast implements sched.Automaton.
func (r *Reliable) OnBroadcast(env *sched.Env, msg model.MsgID, payload model.Payload) {
	env.SendAll(encodeFrame(Frame{T: "msg", Origin: env.ID(), Msg: msg, Content: payload}))
	env.ReturnBroadcast(msg)
}

// OnReceive implements sched.Automaton.
func (r *Reliable) OnReceive(env *sched.Env, from model.ProcID, payload model.Payload) {
	f, err := decodeFrame(payload)
	if err != nil || (f.T != "msg" && f.T != "echo") || !f.validOrigin(env.N()) {
		return
	}
	if r.seen[f.Msg] {
		return
	}
	r.seen[f.Msg] = true
	// Echo before delivering: once delivered anywhere, the message is on
	// its way to every correct process.
	env.SendAll(encodeFrame(Frame{T: "echo", Origin: f.Origin, Msg: f.Msg, Content: f.Content}))
	env.Deliver(f.Msg, f.Origin, f.Content)
}

// OnDecide implements sched.Automaton. Reliable uses no k-SA object.
func (r *Reliable) OnDecide(*sched.Env, model.KSAID, model.Value) {}
