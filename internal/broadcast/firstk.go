package broadcast

import (
	"nobroadcast/internal/model"
	"nobroadcast/internal/sched"
)

// FirstK implements the one-shot strawman of Section 1.4: a single k-SA
// object elects, among the candidate messages, the ones eligible for
// initial delivery, so that at most k distinct messages are delivered
// first across all processes. Subsequent messages are delivered in receipt
// order (reliable diffusion). As the paper observes, the abstraction can
// solve exactly one instance of k-SA (decide the first delivered value);
// its ordering property is content-neutral but not compositional, which
// internal/spec's symmetry testers demonstrate (experiment E4 bis).
//
// The election object is FirstKObject.
type FirstK struct {
	seen      map[model.MsgID]bool
	delivered map[model.MsgID]bool
	// buffered holds messages received before the first delivery.
	buffered  []msgRec
	proposed  bool
	firstDone bool
}

// FirstKObject is the k-SA object identity used for the first-delivery
// election.
const FirstKObject model.KSAID = 1

var _ sched.Automaton = (*FirstK)(nil)

// NewFirstK constructs the automaton for one process.
func NewFirstK(model.ProcID) sched.Automaton {
	return &FirstK{
		seen:      make(map[model.MsgID]bool),
		delivered: make(map[model.MsgID]bool),
	}
}

// Init implements sched.Automaton.
func (f *FirstK) Init(*sched.Env) {}

// OnBroadcast implements sched.Automaton.
func (f *FirstK) OnBroadcast(env *sched.Env, msg model.MsgID, payload model.Payload) {
	env.SendAll(encodeFrame(Frame{T: "msg", Origin: env.ID(), Msg: msg, Content: payload}))
	env.ReturnBroadcast(msg)
}

// OnReceive implements sched.Automaton.
func (f *FirstK) OnReceive(env *sched.Env, from model.ProcID, payload model.Payload) {
	fr, err := decodeFrame(payload)
	if err != nil || (fr.T != "msg" && fr.T != "echo") || !fr.validOrigin(env.N()) {
		return
	}
	if f.seen[fr.Msg] {
		return
	}
	f.seen[fr.Msg] = true
	env.SendAll(encodeFrame(Frame{T: "echo", Origin: fr.Origin, Msg: fr.Msg, Content: fr.Content}))
	rec := msgRec{Origin: fr.Origin, Msg: fr.Msg, Content: fr.Content}
	if f.firstDone {
		f.deliver(env, rec)
		return
	}
	// Buffer in any case: if the election picks a different message, the
	// candidate is still delivered right after the elected one.
	f.buffered = append(f.buffered, rec)
	if !f.proposed {
		// First candidate: let the k-SA object elect the first delivery.
		f.proposed = true
		env.Propose(FirstKObject, encodeRecs([]msgRec{rec}))
	}
}

// OnDecide implements sched.Automaton: the decided message is delivered
// first, then the buffered backlog in receipt order.
func (f *FirstK) OnDecide(env *sched.Env, obj model.KSAID, val model.Value) {
	recs, err := decodeRecs(val)
	if err != nil || len(recs) != 1 {
		return
	}
	f.firstDone = true
	f.deliver(env, recs[0])
	for _, rec := range f.buffered {
		f.deliver(env, rec)
	}
	f.buffered = nil
}

func (f *FirstK) deliver(env *sched.Env, rec msgRec) {
	if f.delivered[rec.Msg] {
		return
	}
	f.delivered[rec.Msg] = true
	env.Deliver(rec.Msg, rec.Origin, rec.Content)
}
