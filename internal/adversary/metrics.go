package adversary

import (
	"fmt"

	"nobroadcast/internal/obs"
)

// advMetrics instruments Algorithm 1 line by line: sync-broadcast
// invocations (lines 6-7), immediate self-receives (lines 10-11), the
// local_del watermark (lines 14-15), resets (line 25), the final flush
// (line 26), and per-phase spans with a step-count histogram. Adoption
// counting (line 18) lives on the tableOracle, where the branch executes.
// A nil *advMetrics records nothing.
type advMetrics struct {
	broadcasts   *obs.Counter
	selfReceives *obs.Counter
	resets       *obs.Counter
	flushCount   *obs.Counter
	localDel     *obs.Gauge
	phaseSteps   *obs.Histogram
}

func newAdvMetrics(reg *obs.Registry) *advMetrics {
	if reg == nil {
		return nil
	}
	return &advMetrics{
		broadcasts:   reg.Counter("adversary.sync_broadcasts"),
		selfReceives: reg.Counter("adversary.self_receives"),
		resets:       reg.Counter("adversary.resets"),
		flushCount:   reg.Counter("adversary.flushed_messages"),
		localDel:     reg.Gauge("adversary.local_del"),
		phaseSteps:   reg.Histogram("adversary.phase_steps", 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536),
	}
}

// phaseEnter opens the span for process p_i's solo phase (line 3).
func (m *advMetrics) phaseEnter(reg *obs.Registry, i int) *obs.Span {
	if m == nil {
		return nil
	}
	reg.Emit("adversary.phase.enter", obs.Int("proc", int64(i)))
	return reg.StartSpan(fmt.Sprintf("adversary.phase.p%d", i))
}

// phaseExit closes the phase span and records its cost.
func (m *advMetrics) phaseExit(reg *obs.Registry, span *obs.Span, i, steps, counted int) {
	if m == nil {
		return
	}
	span.End()
	m.phaseSteps.Observe(int64(steps))
	reg.Emit("adversary.phase.exit",
		obs.Int("proc", int64(i)), obs.Int("steps", int64(steps)), obs.Int("counted", int64(counted)))
}

// watermark tracks local_del; the gauge's Max is the deepest solo
// progress any phase reached.
func (m *advMetrics) watermark(localDel int) {
	if m == nil {
		return
	}
	m.localDel.Set(int64(localDel))
}

// reset records one execution of line 25.
func (m *advMetrics) reset(reg *obs.Registry, i, boundary int) {
	if m == nil {
		return
	}
	m.resets.Inc()
	reg.Emit("adversary.reset", obs.Int("proc", int64(i)), obs.Int("alpha_len", int64(boundary)))
}

// broadcast records one sync-broadcast invocation.
func (m *advMetrics) broadcast() {
	if m == nil {
		return
	}
	m.broadcasts.Inc()
}

// selfReceive records one immediate self-receive (lines 10-11).
func (m *advMetrics) selfReceive() {
	if m == nil {
		return
	}
	m.selfReceives.Inc()
}

// flushed records the size of the line 26 flush.
func (m *advMetrics) flushed(n int) {
	if m == nil {
		return
	}
	m.flushCount.Add(int64(n))
}
