package adversary

import (
	"fmt"

	"nobroadcast/internal/model"
	"nobroadcast/internal/spec"
	"nobroadcast/internal/trace"
)

// This file implements the mechanical verification of the adversarial
// construction: the N-solo checker of Definition 5, and Verify, which
// re-establishes Lemmas 1-8 (α is admitted by CAMP_{k+1}[k-SA]) and
// Lemma 10's conclusion (β is N-solo) on the concrete trace.

// CheckNSolo verifies Definition 5 on an execution: witness maps each
// process to N messages it broadcast, and for every pair of distinct
// processes p_i, p_j, p_i must B-deliver all of witness[p_i] before
// B-delivering any message of witness[p_j]. It returns nil if the
// execution is N-solo with this witness, else a description of the
// failure.
func CheckNSolo(t *trace.Trace, n int, witness map[model.ProcID][]model.MsgID) error {
	ix := trace.BuildIndex(t)
	procs := make([]model.ProcID, 0, len(witness))
	for p := range witness {
		procs = append(procs, p)
	}
	for _, p := range procs {
		if len(witness[p]) != n {
			return fmt.Errorf("adversary: %v has %d witness messages, want %d", p, len(witness[p]), n)
		}
		for _, m := range witness[p] {
			info, ok := ix.Broadcasts[m]
			if !ok || info.From != p {
				return fmt.Errorf("adversary: witness m%d of %v was not broadcast by %v", m, p, p)
			}
		}
	}
	for _, pi := range procs {
		pos := ix.DeliveryPos[pi]
		// Last delivery position of p_i's own witness messages.
		lastOwn := -1
		for _, m := range witness[pi] {
			q, ok := pos[m]
			if !ok {
				return fmt.Errorf("adversary: %v never B-delivers its own witness m%d", pi, m)
			}
			if q > lastOwn {
				lastOwn = q
			}
		}
		for _, pj := range procs {
			if pj == pi {
				continue
			}
			for _, m := range witness[pj] {
				if q, ok := pos[m]; ok && q < lastOwn {
					return fmt.Errorf("adversary: %v B-delivers %v's witness m%d (position %d) before finishing its own witness (position %d)", pi, pj, m, q, lastOwn)
				}
			}
		}
	}
	return nil
}

// FindNSoloWitness searches an execution for an N-solo witness: for each
// process it tries the last N messages the process broadcast and
// delivered. It returns the witness if the execution is N-solo with it.
func FindNSoloWitness(t *trace.Trace, n int) (map[model.ProcID][]model.MsgID, error) {
	ix := trace.BuildIndex(t)
	witness := make(map[model.ProcID][]model.MsgID, t.X.N)
	for p := 1; p <= t.X.N; p++ {
		pid := model.ProcID(p)
		var own []model.MsgID
		for _, m := range ix.BroadcastSeq[pid] {
			if _, ok := ix.DeliveryPos[pid][m]; ok {
				own = append(own, m)
			}
		}
		if len(own) < n {
			return nil, fmt.Errorf("adversary: %v broadcast-and-delivered only %d messages, need %d", pid, len(own), n)
		}
		witness[pid] = own[len(own)-n:]
	}
	if err := CheckNSolo(t, n, witness); err != nil {
		return nil, err
	}
	return witness, nil
}

// LemmaReport records the outcome of one mechanical lemma check.
type LemmaReport struct {
	Lemma string
	OK    bool
	Err   string
}

// Verify re-establishes the paper's lemmas on the concrete construction:
//
//	Lemma 1-3: k-SA-Validity/Agreement/Termination on α and every γ_i
//	Lemma 4-5: SR-Validity/No-Duplication on α and every γ_i
//	Lemma 6:   well-formedness of α and every γ_i
//	Lemma 7:   α is finite (trivially: Run returned)
//	Lemma 8:   SR-Termination on α (the line 26 flush emptied the network)
//	Lemma 10:  β is N-solo with the counted witness
//
// It returns one report per lemma; Ok reports whether all passed.
func (r *Result) Verify() (reports []LemmaReport, ok bool) {
	add := func(lemma string, err error) {
		rep := LemmaReport{Lemma: lemma, OK: err == nil}
		if err != nil {
			rep.Err = err.Error()
		}
		reports = append(reports, rep)
	}
	violationErr := func(v *spec.Violation) error {
		if v == nil {
			return nil
		}
		return fmt.Errorf("%s", v.String())
	}

	gammas := make([]*trace.Trace, 0, r.K+1)
	for i := 1; i <= r.K+1; i++ {
		gammas = append(gammas, r.Gamma(model.ProcID(i)))
	}
	// alphaVerdict prefers the verdict the live checkers latched while
	// Algorithm 1 ran (Result.Live) over rescanning α; runs constructed
	// without a live monitor (old serialized results) fall back to the
	// batch check.
	alphaVerdict := func(s spec.Spec) *spec.Violation {
		if r.Live != nil {
			if v, ok := r.Live.Verdict(s.Name()); ok {
				return v
			}
		}
		return s.Check(r.Alpha)
	}
	onAll := func(lemma string, s spec.Spec) {
		if err := violationErr(alphaVerdict(s)); err != nil {
			add(lemma+" (alpha)", err)
			return
		}
		for i, g := range gammas {
			if err := violationErr(s.Check(g)); err != nil {
				add(fmt.Sprintf("%s (gamma_%d)", lemma, i+1), err)
				return
			}
		}
		add(lemma, nil)
	}

	// Lemmas 1-2 and 4-5 are the safety halves of the k-SA and channel
	// specifications (liveness is skipped on incomplete traces).
	onAll("Lemma 1-2 (k-SA-Validity, k-SA-Agreement)", spec.KSA(r.K))
	onAll("Lemma 4-5 (SR-Validity, SR-No-Duplication)", spec.Channels())
	onAll("Lemma 6 (Well-Formed)", spec.WellFormed())

	// Lemma 3 (k-SA-Termination): every propose in α is followed by a
	// decide by the same process on the same object.
	add("Lemma 3 (k-SA-Termination)", checkEveryProposeDecides(r.Alpha))
	for i, g := range gammas {
		if err := checkEveryProposeDecides(g); err != nil {
			add(fmt.Sprintf("Lemma 3 (gamma_%d)", i+1), err)
		}
	}

	// Lemma 7: α finite — Run returned, so record the step count.
	add(fmt.Sprintf("Lemma 7 (termination, |alpha| = %d steps)", r.Alpha.X.Len()), nil)

	// Lemma 8: every sent message was received (line 26 flush).
	add("Lemma 8 (SR-Termination)", checkAllSendsReceived(r.Alpha))

	// Lemma 10: β is N-solo with the counted witness.
	add("Lemma 10 (beta is N-solo)", CheckNSolo(r.Beta, r.N, r.Counted))

	ok = true
	for _, rep := range reports {
		if !rep.OK {
			ok = false
		}
	}
	return reports, ok
}

// checkEveryProposeDecides verifies that each propose step is eventually
// followed by a decide by the same process on the same object.
func checkEveryProposeDecides(t *trace.Trace) error {
	type key struct {
		p   model.ProcID
		obj model.KSAID
	}
	open := make(map[key]bool)
	for _, s := range t.X.Steps {
		switch s.Kind {
		case model.KindPropose:
			open[key{s.Proc, s.Obj}] = true
		case model.KindDecide:
			delete(open, key{s.Proc, s.Obj})
		}
	}
	for k := range open {
		return fmt.Errorf("%v proposed on %v but never decides", k.p, k.obj)
	}
	return nil
}

// checkAllSendsReceived verifies SR-Termination positionally: every send
// has a matching receive.
func checkAllSendsReceived(t *trace.Trace) error {
	sent := make(map[model.MsgID]bool)
	for _, s := range t.X.Steps {
		switch s.Kind {
		case model.KindSend:
			sent[s.Msg] = true
		case model.KindReceive:
			delete(sent, s.Msg)
		}
	}
	if len(sent) > 0 {
		return fmt.Errorf("%d sent messages were never received", len(sent))
	}
	return nil
}
