package adversary_test

import (
	"testing"

	"nobroadcast/internal/spec"
)

// TestLiveMonitorAgreesWithBatch: the Lemma 1-6 specs checked
// incrementally while Algorithm 1 runs latch the same verdicts a batch
// re-scan of α produces, and Verify consumes them (Result.Live is set on
// every fresh run).
func TestLiveMonitorAgreesWithBatch(t *testing.T) {
	res := mustRun(t, "first-k", 3, 2)
	if res.Live == nil {
		t.Fatal("Run did not attach the live monitor")
	}
	if res.Live.Steps() != res.Alpha.X.Len() {
		t.Fatalf("monitor saw %d steps, alpha has %d", res.Live.Steps(), res.Alpha.X.Len())
	}
	for _, s := range []spec.Spec{spec.KSA(3), spec.Channels(), spec.WellFormed()} {
		live, ok := res.Live.Verdict(s.Name())
		if !ok {
			t.Fatalf("%s not monitored", s.Name())
		}
		batch := s.Check(res.Alpha)
		if !spec.SameVerdict(live, batch) {
			t.Errorf("%s: live=%v batch=%v", s.Name(), live, batch)
		}
	}
	if reports, ok := res.Verify(); !ok {
		t.Fatalf("Verify failed with live verdicts: %+v", reports)
	}
}
