package adversary_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"nobroadcast/internal/adversary"
	"nobroadcast/internal/broadcast"
	"nobroadcast/internal/model"
	"nobroadcast/internal/sched"
	"nobroadcast/internal/spec"
	"nobroadcast/internal/sweep"
	"nobroadcast/internal/trace"
)

func mustRun(t *testing.T, name string, k, n int) *adversary.Result {
	t.Helper()
	c, err := broadcast.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := adversary.Run(adversary.Options{K: k, N: n, NewAutomaton: c.NewAutomaton})
	if err != nil {
		t.Fatalf("adversary.Run(%s, k=%d, N=%d): %v", name, k, n, err)
	}
	return res
}

func TestRunValidation(t *testing.T) {
	c, _ := broadcast.Lookup("send-to-all")
	if _, err := adversary.Run(adversary.Options{K: 1, N: 1, NewAutomaton: c.NewAutomaton}); err == nil {
		t.Error("expected error for K=1")
	}
	if _, err := adversary.Run(adversary.Options{K: 2, N: 0, NewAutomaton: c.NewAutomaton}); err == nil {
		t.Error("expected error for N=0")
	}
	if _, err := adversary.Run(adversary.Options{K: 2, N: 1}); err == nil {
		t.Error("expected error for missing automaton")
	}
}

// TestAlphaAdmissibleAllCandidates (experiment E2): for every candidate
// implementation, the adversarial execution α is admitted by
// CAMP_{k+1}[k-SA] — the mechanical Lemma 1-8 checks all pass — and β is
// N-solo (Lemma 10, experiment E1).
func TestAlphaAdmissibleAllCandidates(t *testing.T) {
	for _, c := range broadcast.AllCandidates() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			if c.Name == "mutual" {
				// Mutual broadcast needs a correct majority: it cannot
				// progress solo, and the adversary must say so (the
				// Lemma 7 guard) rather than loop. This is the expected
				// behaviour for register-strength abstractions in the
				// wait-free model.
				_, err := adversary.Run(adversary.Options{
					K: 2, N: 2, NewAutomaton: c.NewAutomaton, MaxStepsPerPhase: 2000,
				})
				var stall *adversary.ErrNotSoloProgressing
				if !errorsAs(err, &stall) {
					t.Fatalf("expected ErrNotSoloProgressing for mutual, got %v", err)
				}
				return
			}
			res := mustRun(t, c.Name, 2, 2)
			reports, ok := res.Verify()
			if !ok {
				for _, rep := range reports {
					if !rep.OK {
						t.Errorf("%s: %s", rep.Lemma, rep.Err)
					}
				}
			}
		})
	}
}

// TestSweepKAndN (experiment E1): the construction succeeds across the
// (k, N) grid for a representative implementation. The grid runs on the
// parallel sweep engine; each cell's checks are pure functions of its own
// adversary.Result, so failures map back to cells by index.
func TestSweepKAndN(t *testing.T) {
	t.Parallel()
	c, err := broadcast.Lookup("kbo")
	if err != nil {
		t.Fatal(err)
	}
	grid := sweep.Pairs([]int{2, 3, 4}, []int{1, 2, 5})
	_, err = sweep.Run(context.Background(), len(grid), sweep.Options{},
		func(_ context.Context, cell sweep.Cell) (struct{}, error) {
			k, n := grid[cell.Index].A, grid[cell.Index].B
			res, err := adversary.Run(adversary.Options{K: k, N: n, NewAutomaton: c.NewAutomaton})
			if err != nil {
				return struct{}{}, err
			}
			if _, ok := res.Verify(); !ok {
				return struct{}{}, fmt.Errorf("k=%d N=%d: verification failed", k, n)
			}
			if len(res.Counted) != k+1 {
				return struct{}{}, fmt.Errorf("k=%d N=%d: %d counted sets, want %d", k, n, len(res.Counted), k+1)
			}
			for p, msgs := range res.Counted {
				if len(msgs) != n {
					return struct{}{}, fmt.Errorf("k=%d N=%d: %v counted %d messages, want %d", k, n, p, len(msgs), n)
				}
			}
			return struct{}{}, nil
		})
	if err != nil {
		t.Error(err)
	}
}

// TestNSoloStructure: the β projection contains, for each process, its own
// deliveries first (Definition 5), checked directly on delivery orders.
func TestNSoloStructure(t *testing.T) {
	res := mustRun(t, "first-k", 3, 2)
	ix := trace.BuildIndex(res.Beta)
	for p := 1; p <= 4; p++ {
		pid := model.ProcID(p)
		counted := make(map[model.MsgID]bool, len(res.Counted[pid]))
		for _, m := range res.Counted[pid] {
			counted[m] = true
		}
		// Find the position of the last counted self-delivery.
		last := -1
		for pos, m := range ix.Deliveries[pid] {
			if counted[m] {
				last = pos
			}
		}
		if last < 0 {
			t.Fatalf("%v delivers none of its counted messages", pid)
		}
		// No other process's counted message may appear before it.
		for pos := 0; pos < last; pos++ {
			m := ix.Deliveries[pid][pos]
			for q := 1; q <= 4; q++ {
				if q == p {
					continue
				}
				for _, cm := range res.Counted[model.ProcID(q)] {
					if m == cm {
						t.Errorf("%v delivers p%d's counted m%d at position %d before its own last counted at %d", pid, q, m, pos, last)
					}
				}
			}
		}
	}
}

// TestResetHappensForPk: implementations that propose on shared objects
// force line 21-25 resets for p_k — the mechanism that keeps p_{k+1}'s
// adoption consistent. The k-SA-using candidates must show resets; the
// oracle-free ones must not.
func TestResetHappensForPk(t *testing.T) {
	tests := []struct {
		name       string
		wantResets bool
	}{
		{"send-to-all", false},
		{"reliable", false},
		{"fifo", false},
		{"causal", false},
		{"first-k", true},
		{"k-stepped", true},
		{"kbo", true},
		{"total-order", true},
	}
	for _, tt := range tests {
		res := mustRun(t, tt.name, 2, 2)
		if got := res.Resets > 0; got != tt.wantResets {
			t.Errorf("%s: resets=%d, wantResets=%v", tt.name, res.Resets, tt.wantResets)
		}
	}
}

// TestPkPlus1AdoptsPk: with a k-SA-using implementation, p_{k+1} adopts
// p_k's value on fully-decided objects (lines 17-18), and as a
// consequence delivers messages of p_k — which is precisely why p_k's
// early messages are excluded from its N count.
func TestPkPlus1AdoptsPk(t *testing.T) {
	res := mustRun(t, "first-k", 2, 2)
	if res.Adoptions == 0 {
		t.Error("p_{k+1} never took the line 18 adoption branch; first-k shares its election object, so it must")
	}
	// Observable consequence: p_3 delivers some message of p_2, and only
	// uncounted ones before finishing its own counted messages (the
	// N-solo check already enforces the latter; here we check the former).
	ix := trace.BuildIndex(res.Alpha)
	deliversFromPk := false
	for _, m := range ix.Deliveries[3] {
		if ix.DeliverOrigin[m] == 2 {
			deliversFromPk = true
		}
	}
	if !deliversFromPk {
		t.Error("p_{k+1} delivers no message of p_k despite adopting its decisions")
	}
	// Oracle-free implementations never adopt.
	res2 := mustRun(t, "send-to-all", 2, 2)
	if res2.Adoptions != 0 {
		t.Errorf("send-to-all uses no k-SA object; adoptions = %d", res2.Adoptions)
	}
}

// TestGammaProjections: γ_i contains only steps of p_i and p_k, and is a
// subsequence of α.
func TestGammaProjections(t *testing.T) {
	res := mustRun(t, "kbo", 2, 2)
	for i := 1; i <= 3; i++ {
		g := res.Gamma(model.ProcID(i))
		for _, s := range g.X.Steps {
			if s.Proc != model.ProcID(i) && s.Proc != model.ProcID(res.K) {
				t.Errorf("gamma_%d contains step of %v", i, s.Proc)
			}
		}
		if g.X.Len() == 0 {
			t.Errorf("gamma_%d is empty", i)
		}
		if v := spec.WellFormed().Check(g); v != nil {
			t.Errorf("gamma_%d not well-formed: %s", i, v)
		}
	}
}

// TestStalledImplementationDetected (Lemma 7 contrapositive): an
// implementation that waits for other processes before delivering makes no
// solo progress; the adversary reports it rather than looping forever.
func TestStalledImplementationDetected(t *testing.T) {
	_, err := adversary.Run(adversary.Options{
		K: 2, N: 1,
		NewAutomaton:     func(model.ProcID) sched.Automaton { return &waitForPeerAutomaton{} },
		MaxStepsPerPhase: 500,
	})
	if err == nil {
		t.Fatal("expected ErrNotSoloProgressing")
	}
	var stall *adversary.ErrNotSoloProgressing
	if !errorsAs(err, &stall) {
		t.Fatalf("unexpected error type: %v", err)
	}
	if stall.Proc != 1 {
		t.Errorf("stall reported for %v, want p1", stall.Proc)
	}
	if !strings.Contains(err.Error(), "Lemma 7") {
		t.Errorf("error should cite Lemma 7: %v", err)
	}
}

// waitForPeerAutomaton broadcasts by sending only to its successor and
// delivers only messages received from others — it can never deliver its
// own message running solo.
type waitForPeerAutomaton struct{}

func (w *waitForPeerAutomaton) Init(*sched.Env) {}
func (w *waitForPeerAutomaton) OnBroadcast(env *sched.Env, msg model.MsgID, payload model.Payload) {
	next := model.ProcID(int(env.ID())%env.N() + 1)
	env.Send(next, payload)
	env.ReturnBroadcast(msg)
}
func (w *waitForPeerAutomaton) OnReceive(env *sched.Env, from model.ProcID, payload model.Payload) {
}
func (w *waitForPeerAutomaton) OnDecide(*sched.Env, model.KSAID, model.Value) {}

func errorsAs(err error, target **adversary.ErrNotSoloProgressing) bool {
	e, ok := err.(*adversary.ErrNotSoloProgressing)
	if ok {
		*target = e
	}
	return ok
}

// TestKBOAttemptFails (experiment E10): completing the adversarial run
// with fair deliveries makes every process deliver everyone's counted
// messages after its own — the k+1 first counted messages become pairwise
// conflicting, violating the k-BO ordering property. This is the paper's
// corollary made concrete: the k-BO-on-k-SA attempt cannot be a correct
// k-BO implementation.
func TestKBOAttemptFails(t *testing.T) {
	for _, k := range []int{2, 3} {
		res := mustRun(t, "kbo", k, 1)
		ext, err := res.Extend(0)
		if err != nil {
			t.Fatalf("k=%d: extend: %v", k, err)
		}
		if !ext.Complete {
			t.Fatalf("k=%d: extension did not reach quiescence", k)
		}
		v := spec.KBOOrder(k).Check(ext)
		if v == nil {
			t.Fatalf("k=%d: completed adversarial run still satisfies %d-BO; the attempt should be refuted", k, k)
		}
		if v.Property != "k-Bounded-Order" {
			t.Errorf("k=%d: unexpected violation %s", k, v)
		}
		// The universal properties still hold: the attempt fails on
		// ordering, not on plumbing.
		if bv := spec.BasicBroadcast().Check(ext); bv != nil {
			t.Errorf("k=%d: universal property broken: %s", k, bv)
		}
	}
}

// TestDeterministicConstruction: the adversarial construction is fully
// deterministic.
func TestDeterministicConstruction(t *testing.T) {
	run := func() string {
		res := mustRun(t, "kbo", 2, 2)
		return res.Alpha.X.String()
	}
	if run() != run() {
		t.Error("adversarial construction is not deterministic")
	}
}

// TestCheckNSoloRejects: the checker rejects fabricated witnesses.
func TestCheckNSoloRejects(t *testing.T) {
	res := mustRun(t, "send-to-all", 2, 2)
	// Wrong count.
	bad := map[model.ProcID][]model.MsgID{1: res.Counted[1][:1], 2: res.Counted[2], 3: res.Counted[3]}
	if err := adversary.CheckNSolo(res.Beta, 2, bad); err == nil {
		t.Error("expected witness-size error")
	}
	// Wrong broadcaster.
	bad = map[model.ProcID][]model.MsgID{1: res.Counted[2], 2: res.Counted[1], 3: res.Counted[3]}
	if err := adversary.CheckNSolo(res.Beta, 2, bad); err == nil {
		t.Error("expected wrong-broadcaster error")
	}
	// Non-existent message.
	bad = map[model.ProcID][]model.MsgID{1: {9999, 9998}, 2: res.Counted[2], 3: res.Counted[3]}
	if err := adversary.CheckNSolo(res.Beta, 2, bad); err == nil {
		t.Error("expected unknown-message error")
	}
}

func TestCheckNSoloRejectsInterleaved(t *testing.T) {
	// Build a trace where p1 delivers p2's message before its own.
	x := model.NewExecution(2)
	x.Append(
		model.Step{Proc: 1, Kind: model.KindBroadcastInvoke, Msg: 1, Payload: "a"},
		model.Step{Proc: 2, Kind: model.KindBroadcastInvoke, Msg: 2, Payload: "b"},
		model.Step{Proc: 1, Kind: model.KindDeliver, Peer: 2, Msg: 2, Payload: "b"},
		model.Step{Proc: 1, Kind: model.KindDeliver, Peer: 1, Msg: 1, Payload: "a"},
		model.Step{Proc: 2, Kind: model.KindDeliver, Peer: 2, Msg: 2, Payload: "b"},
	)
	w := map[model.ProcID][]model.MsgID{1: {1}, 2: {2}}
	if err := adversary.CheckNSolo(trace.New(x), 1, w); err == nil {
		t.Error("expected interleaving violation")
	}
}

// TestFindNSoloWitness: the search recovers a witness on adversarial
// output and fails on ordinary fair executions.
func TestFindNSoloWitness(t *testing.T) {
	res := mustRun(t, "send-to-all", 2, 2)
	w, err := adversary.FindNSoloWitness(res.Beta, 2)
	if err != nil {
		t.Fatalf("FindNSoloWitness on adversarial beta: %v", err)
	}
	if len(w) != 3 {
		t.Errorf("witness covers %d processes, want 3", len(w))
	}

	// A fair run interleaves deliveries, so no 2-solo witness exists.
	c, _ := broadcast.Lookup("send-to-all")
	rt, err := sched.New(sched.Config{N: 3, NewAutomaton: c.NewAutomaton})
	if err != nil {
		t.Fatal(err)
	}
	var reqs []sched.BroadcastReq
	for p := 1; p <= 3; p++ {
		for j := 0; j < 3; j++ {
			reqs = append(reqs, sched.BroadcastReq{Proc: model.ProcID(p), Payload: model.Payload(fmt.Sprintf("x%d-%d", p, j))})
		}
	}
	tr, err := rt.RunFair(sched.RunOptions{Broadcasts: reqs})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := adversary.FindNSoloWitness(tr, 2); err == nil {
		t.Error("fair execution should not be 2-solo")
	}
}

// TestFigure1Shape (experiment F1): for k=3, N=2, the construction matches
// Figure 1's shape — 4 sequential phases, each process's counted messages
// grey-boxed, p_{k+1} adopting p_k on fully decided objects.
func TestFigure1Shape(t *testing.T) {
	res := mustRun(t, "first-k", 3, 2)
	if len(res.Counted) != 4 {
		t.Fatalf("counted sets: %d", len(res.Counted))
	}
	// Sequential phases: all broadcast invocations of p_i precede those
	// of p_{i+1}.
	lastInvoke := make(map[model.ProcID]int)
	firstInvoke := make(map[model.ProcID]int)
	for idx, s := range res.Alpha.X.Steps {
		if s.Kind == model.KindBroadcastInvoke {
			if _, ok := firstInvoke[s.Proc]; !ok {
				firstInvoke[s.Proc] = idx
			}
			lastInvoke[s.Proc] = idx
		}
	}
	for i := 1; i < 4; i++ {
		if lastInvoke[model.ProcID(i)] > firstInvoke[model.ProcID(i+1)] {
			t.Errorf("phases not sequential: p%d invokes after p%d starts", i, i+1)
		}
	}
	// The diagram renders with highlighted counted messages.
	hl := make(map[model.MsgID]bool)
	for _, ms := range res.Counted {
		for _, m := range ms {
			hl[m] = true
		}
	}
	diagram := trace.RenderDiagram(res.Beta, trace.DiagramOptions{Highlight: hl, HideReturns: true})
	if !strings.Contains(diagram, "*") {
		t.Error("diagram missing highlights")
	}
	summary := trace.RenderDeliverySummary(res.Beta, hl)
	if !strings.Contains(summary, "p4") {
		t.Errorf("summary missing p4:\n%s", summary)
	}
}

// TestLargeSweep pushes the construction to larger k and N (guarded by
// -short). The counted sets stay exact and the lemma checks stay green as
// the construction grows.
func TestLargeSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("large sweep skipped in -short mode")
	}
	t.Parallel()
	c, err := broadcast.Lookup("kbo")
	if err != nil {
		t.Fatal(err)
	}
	grid := sweep.Pairs([]int{5, 6}, []int{8, 16})
	_, err = sweep.Run(context.Background(), len(grid), sweep.Options{},
		func(_ context.Context, cell sweep.Cell) (struct{}, error) {
			k, n := grid[cell.Index].A, grid[cell.Index].B
			res, err := adversary.Run(adversary.Options{K: k, N: n, NewAutomaton: c.NewAutomaton})
			if err != nil {
				return struct{}{}, err
			}
			if _, ok := res.Verify(); !ok {
				return struct{}{}, fmt.Errorf("k=%d N=%d: verification failed", k, n)
			}
			return struct{}{}, nil
		})
	if err != nil {
		t.Error(err)
	}
}

// TestExtendRequiresRuntime: Extend on a hand-built Result reports a clear
// error instead of panicking.
func TestExtendRequiresRuntime(t *testing.T) {
	var res adversary.Result
	if _, err := res.Extend(10); err == nil {
		t.Error("expected error for Extend without retained runtime")
	}
}

// TestBroadcastCounts: the adversary records how many sync-broadcasts each
// process needed; p_k needs strictly more than N whenever resets occur.
func TestBroadcastCounts(t *testing.T) {
	res := mustRun(t, "first-k", 2, 2)
	if res.Resets == 0 {
		t.Fatal("expected resets for first-k")
	}
	if res.Broadcasts[2] <= res.N {
		t.Errorf("p_k broadcast %d messages; resets should force more than N=%d", res.Broadcasts[2], res.N)
	}
	if res.Broadcasts[1] != res.N {
		t.Errorf("p_1 broadcast %d messages, want exactly N=%d", res.Broadcasts[1], res.N)
	}
}
